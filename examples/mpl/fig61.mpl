
chan c12[0];
chan c23[0];

func p2() {
  var x = 0;
  recv(c12, x);
  send(c23, x + 1);
}

func p3() {
  var y = 0;
  recv(c23, y);
  print(y);
}

func main() {
  var a = spawn p2();
  var b = spawn p3();
  send(c12, 41);
  join(a);
  join(b);
}
