
func min3(x, y, z) {
  var m = x;
  if (y < m) {
    m = y;
  }
  if (z < m) {
    m = z;  // bug would be: m = y;
  }
  return m;
}

func main() {
  var a = 7;
  var b = 3;
  var c = 5;
  var m = min3(a, b, c);
  // deliberately wrong expectation so flowback has an error to explain
  assert(m == 2);
}
