
chan call[0];
chan reply[0];

func server() {
  var req = 0;
  recv(call, req);
  send(reply, req * req);
}

func main() {
  var srv = spawn server();
  send(call, 7);
  var result = 0;
  recv(reply, result);
  print(result);
  join(srv);
}
