// Two-round semaphore alternation over a shared board.
//
// The locksets are disjoint (pinger holds only 'ping', ponger only
// 'pong'), so the lockset analysis alone flags every access pair on
// 'board' — but the protocol forces strict alternation: P(ping) can
// only succeed after the ponger's V(ping), so the accesses can never
// overlap. `ppd race --static --proto` discharges all of them.

sem ping = 1;
sem pong = 0;

shared int board = 0;

func pinger() {
  P(ping);
  board = board + 1;
  V(pong);
  P(ping);
  board = board + 1;
  V(pong);
}

func ponger() {
  P(pong);
  board = board * 2;
  V(ping);
  P(pong);
  board = board * 2;
  V(ping);
}

func main() {
  var a = spawn pinger();
  var b = spawn ponger();
  join(a);
  join(b);
  print(board);
}
