
sem a = 1;
sem b = 1;

func left() {
  P(a);
  P(b);
  V(b);
  V(a);
}

func right() {
  P(b);
  P(a);
  V(a);
  V(b);
}

func main() {
  var p1 = spawn left();
  var p2 = spawn right();
  join(p1);
  join(p2);
}
