
shared int SV = 0;

func writer1() {
  SV = 1;
}

func writer2() {
  SV = 2;
}

func reader() {
  var x = SV;
  print(x);
}

func main() {
  var p1 = spawn writer1();
  var p2 = spawn writer2();
  var p3 = spawn reader();
  join(p1);
  join(p2);
  join(p3);
}
