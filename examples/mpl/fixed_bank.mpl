
shared int balance = 100;
sem mutex = 1;

func withdraw(n) {
  P(mutex);
  var tmp = balance;
  tmp = tmp - n;
  balance = tmp;
  V(mutex);
}

func main() {
  var p1 = spawn withdraw(30);
  var p2 = spawn withdraw(50);
  join(p1);
  join(p2);
  print(balance);
}
