
func subd(a, b, x) {
  return a * b - x;
}

func isqrt(n) {
  var r = 0;
  while ((r + 1) * (r + 1) <= n) {
    r = r + 1;
  }
  return r;
}

func main() {
  var a = 1;
  var b = 2;
  var c = 3;
  var d = subd(a, b, a + b + c);
  var sq = 0;
  if (d > 0) {
    sq = isqrt(d);
  } else {
    sq = isqrt(-d);
  }
  a = a + sq;
  assert(a == 99);
}
