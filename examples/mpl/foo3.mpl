
shared int SV = 0;

func foo3(p, q) {
  var a = 1;
  var b = 2;
  var c = 0;
  if (p == 1) {
    if (q == 1) {
      c = a;
    } else {
      c = b;
    }
  } else {
    SV = a + b + SV;
    c = 3;
  }
  return c;
}

func main() {
  var r = foo3(0, 1);
  print(SV);
  print(r);
}
