
shared int balance = 100;

func withdraw(n) {
  var tmp = balance;
  tmp = tmp - n;
  balance = tmp;
}

func main() {
  var p1 = spawn withdraw(30);
  var p2 = spawn withdraw(50);
  join(p1);
  join(p2);
  print(balance);
}
