(* Differential tests: the bytecode VM against the AST-walking
   interpreter oracle.

   The VM claims observational identity with the interpreter — same
   event stream (pid, seq, step, event), same halt, same output, same
   step count, same final stores — under every scheduler, budget and
   breakpoint set. These tests quantify over random programs and
   schedules (qcheck) and pin the VM-specific edge cases: register
   arena growth under deep recursion, receive defining its own target,
   a burst budget collapsing mid-statement, breakpoints landing inside
   a burst, and the peephole-fused instruction forms (literal operands,
   local-scalar operands, counter statements, fused loop tests) which
   must preserve fault messages and fault points exactly. *)

let ( = ) : int -> int -> bool = Stdlib.( = )

let trace_with engine ?(sched = Runtime.Sched.default) ?(max_steps = 200_000)
    ?(breakpoints = []) prog =
  let ft = Trace.Full_trace.create () in
  let m =
    Runtime.Machine.create ~engine ~sched ~max_steps ~breakpoints
      ~hooks:(Trace.Full_trace.factory ft) prog
  in
  let halt = Runtime.Machine.run m in
  (halt, Trace.Full_trace.finish ft, m)

let bare_with engine ?(sched = Runtime.Sched.default) ?(max_steps = 200_000)
    ?(breakpoints = []) prog =
  let m = Runtime.Machine.create ~engine ~sched ~max_steps ~breakpoints prog in
  let halt = Runtime.Machine.run m in
  (halt, m)

let pp_halt = Util.halt_name

let show_rec (r : Trace.Full_trace.rec_) =
  Format.asprintf "p%d #%d @%d %a" r.tr_pid r.tr_seq r.tr_step Runtime.Event.pp
    r.tr_ev

(* Structural machine-state comparison shared by every differential
   check: halt, output, step clock, per-process event counts, final
   globals. *)
let check_machines what mi mv hi hv =
  if Stdlib.( <> ) hi hv then
    Alcotest.failf "%s: halt differs\ninterp: %s\nvm:     %s" what (pp_halt hi)
      (pp_halt hv);
  Alcotest.(check string)
    (what ^ ": output") (Runtime.Machine.output mi) (Runtime.Machine.output mv);
  Alcotest.(check int)
    (what ^ ": nsteps") (Runtime.Machine.nsteps mi) (Runtime.Machine.nsteps mv);
  Alcotest.(check int)
    (what ^ ": nprocs") (Runtime.Machine.nprocs mi) (Runtime.Machine.nprocs mv);
  for pid = 0 to Runtime.Machine.nprocs mi - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: proc %d seq" what pid)
      (Runtime.Machine.proc_seq mi pid)
      (Runtime.Machine.proc_seq mv pid)
  done;
  let p = Runtime.Machine.prog mi in
  Array.iteri
    (fun slot _ ->
      let gi = Runtime.Machine.read_global mi slot
      and gv = Runtime.Machine.read_global mv slot in
      if Stdlib.( <> ) gi gv then
        Alcotest.failf "%s: global slot %d differs: %s vs %s" what slot
          (Runtime.Value.to_string gi) (Runtime.Value.to_string gv))
    p.Lang.Prog.global_inits

let check_traces what (ti : Trace.Full_trace.t) (tv : Trace.Full_trace.t) =
  let ni = Array.length ti.recs and nv = Array.length tv.recs in
  let n = min ni nv in
  for i = 0 to n - 1 do
    if Stdlib.( <> ) ti.recs.(i) tv.recs.(i) then
      Alcotest.failf "%s: trace diverges at event %d\ninterp: %s\nvm:     %s"
        what i (show_rec ti.recs.(i)) (show_rec tv.recs.(i))
  done;
  if ni <> nv then
    Alcotest.failf "%s: trace lengths differ: interp %d, vm %d" what ni nv

(* The whole contract at once, instrumented and bare. *)
let assert_identical ?sched ?max_steps ?breakpoints what src =
  let prog = Util.compile src in
  let hi, ti, mi =
    trace_with Runtime.Machine.Interp_engine ?sched ?max_steps ?breakpoints prog
  in
  let hv, tv, mv =
    trace_with Runtime.Machine.Vm_engine ?sched ?max_steps ?breakpoints prog
  in
  check_traces what ti tv;
  check_machines what mi mv hi hv;
  let hib, mib =
    bare_with Runtime.Machine.Interp_engine ?sched ?max_steps ?breakpoints prog
  in
  let hvb, mvb =
    bare_with Runtime.Machine.Vm_engine ?sched ?max_steps ?breakpoints prog
  in
  check_machines (what ^ " (bare)") mib mvb hib hvb

(* ------------------------------------------------------------------ *)
(* qcheck: random programs x random schedules.                          *)
(* ------------------------------------------------------------------ *)

let schedulers seed =
  [
    Runtime.Sched.Round_robin 1;
    Runtime.Sched.Round_robin 4;
    Runtime.Sched.Random_seed seed;
    Runtime.Sched.Random_seed ((seed * 31) + 7);
  ]

let oracle_seq seed =
  assert_identical "sequential" (Gen.sequential seed);
  true

let oracle_par seed =
  let src = Gen.parallel ~protect:`Sometimes seed in
  List.iter
    (fun sched -> assert_identical ~sched "parallel" src)
    (schedulers seed);
  true

(* Budget collapse: truncating the run at every fuel level must agree —
   a burst cut short mid-quantum is observationally the same as single
   stepping. The full run for this source is a few hundred steps; probe
   a spread of prefixes including 0 and 1. *)
let oracle_budget seed =
  let src = Gen.parallel ~protect:`Always seed in
  List.iter
    (fun max_steps ->
      assert_identical ~sched:(Runtime.Sched.Round_robin 3) ~max_steps
        (Printf.sprintf "budget %d" max_steps)
        src)
    [ 1; 2; 3; 7; 20; 53; 101 ];
  true

let qcheck_seq =
  Util.qtest ~count:40 "vm = interp on random sequential programs"
    QCheck2.Gen.(int_range 0 100_000)
    oracle_seq

let qcheck_par =
  Util.qtest ~count:25 "vm = interp on random parallel programs x scheds"
    QCheck2.Gen.(int_range 0 100_000)
    oracle_par

let qcheck_budget =
  Util.qtest ~count:15 "vm = interp under truncated budgets"
    QCheck2.Gen.(int_range 0 100_000)
    oracle_budget

(* ------------------------------------------------------------------ *)
(* Edge cases.                                                          *)
(* ------------------------------------------------------------------ *)

(* Deep call nesting grows the register arena (each live frame holds a
   window) and exercises frame release on the way back down. *)
let test_deep_nesting () =
  assert_identical "deep recursion"
    {|
func down(n) {
  var r = 0;
  if (n > 0) {
    r = down(n - 1);
  }
  return r + 1;
}
func main() {
  var d = down(200);
  print(d);
}
|}

(* recv defines its target — including an array element whose index is
   itself read at delivery time. *)
let test_recv_defines_target () =
  assert_identical "recv defines target"
    {|
chan c[2];
func main() {
  var a[3];
  var i = 1;
  send(c, 41);
  send(c, 42);
  var x = 0;
  recv(c, x);
  recv(c, a[i + 1]);
  print(x);
  print(a[2]);
}
|}

(* Breakpoints at every statement: a halt landing mid-burst must stop
   the VM at the same event as single-stepping the interpreter. *)
let test_breakpoint_sweep () =
  let src = Workloads.counter ~workers:2 ~incs:3 ~mutex:true in
  let prog = Util.compile src in
  let nsids = Array.length prog.Lang.Prog.stmts in
  for sid = 0 to nsids - 1 do
    assert_identical ~breakpoints:[ sid ]
      (Printf.sprintf "breakpoint at s%d" sid)
      src
  done

(* Fused-instruction faults: literal divisors and uninitialised
   operands must fault with the interpreter's message at the
   interpreter's statement. *)
let test_fused_faults () =
  assert_identical "div by literal zero"
    "func main() {\n  var x = 5;\n  var y = x / 0;\n  print(y);\n}\n";
  assert_identical "mod by literal zero"
    "func main() {\n  var x = 5;\n  var y = x % 0;\n  print(y);\n}\n";
  assert_identical "uninitialised fused operand"
    "func main() {\n  var x;\n  var y = 1 + x;\n  print(y);\n}\n";
  assert_identical "uninitialised fused loop test"
    "func main() {\n  var i;\n  while (i < 3) {\n    i = 0;\n  }\n}\n";
  assert_identical "uninitialised fused increment"
    "func main() {\n  var i;\n  i = i + 1;\n}\n"

(* Fused-instruction arithmetic: literal-left commutative swaps, the
   subtraction increment, mirrored loop tests, global counters. *)
let test_fused_forms () =
  assert_identical "fused forms"
    {|
shared int g = 10;
func main() {
  var i = 6;
  var acc = 0;
  while (3 < i) {
    i = i - 1;
    acc = 2 * (acc + 1);
    acc = acc + i;
  }
  var j = 0;
  while (j < 4) {
    j = j + 1;
    g = g + 2;
  }
  print(i);
  print(acc);
  print(g);
  print(100 - acc);
  print(acc == 10);
  print(7 * acc + acc * 7);
}
|}

let suite =
  ( "vm",
    [
      qcheck_seq;
      qcheck_par;
      qcheck_budget;
      Alcotest.test_case "deep call nesting" `Quick test_deep_nesting;
      Alcotest.test_case "recv defines target" `Quick test_recv_defines_target;
      Alcotest.test_case "breakpoint sweep" `Quick test_breakpoint_sweep;
      Alcotest.test_case "fused faults" `Quick test_fused_faults;
      Alcotest.test_case "fused forms" `Quick test_fused_forms;
    ] )
