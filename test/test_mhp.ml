(* Statement-level may-happen-in-parallel analysis: the ordering
   regressions the function-granular detector could not pass (join- and
   message-ordered programs must report no race), plus direct unit tests
   of the MHP queries and the sync-prelog pruning predicate. *)

open Analysis
module P = Lang.Prog

let race_vars src =
  Static_race.analyze (Util.compile src)
  |> List.map (fun r -> r.Static_race.pr_var.P.vname)
  |> List.sort_uniq compare

let find_stmt p fname pred =
  match P.find_func p fname with
  | None -> Alcotest.failf "no function %s" fname
  | Some f ->
    let found = ref None in
    P.iter_stmts
      (fun s -> if !found = None && pred s then found := Some s.P.sid)
      f.P.body;
    (match !found with
    | Some sid -> sid
    | None -> Alcotest.failf "no matching statement in %s" fname)

let print_sid p fname =
  find_stmt p fname (fun s ->
      match s.P.desc with P.Sprint _ -> true | _ -> false)

let write_sid p fname vname =
  find_stmt p fname (fun s ->
      match s.P.desc with
      | P.Sassign (lhs, _) -> (P.lhs_writes lhs).P.vname = vname
      | _ -> false)

let vid p vname =
  let v =
    Array.to_list p.P.vars |> List.find (fun v -> v.P.vname = vname)
  in
  v.P.vid

(* --- the two ISSUE regressions ------------------------------------- *)

let join_ordered =
  {|
  shared int g = 0;
  func w() { g = g + 1; }
  func main() {
    var p = spawn w();
    join(p);
    print(g);
  }
  |}

let test_join_ordered_no_race () =
  (* spawn -> join -> access: the child is provably finished when main
     reads g, so nothing may race *)
  Alcotest.(check (list string)) "join-ordered clean" [] (race_vars join_ordered);
  let p = Util.compile join_ordered in
  let m = Mhp.compute p in
  let w_write = write_sid p "w" "g" and m_print = print_sid p "main" in
  Alcotest.(check bool) "write || print" false (Mhp.may_parallel m w_write m_print);
  Alcotest.(check bool) "write before print" true
    (Mhp.ordered_before m w_write m_print);
  Alcotest.(check bool) "print not before write" false
    (Mhp.ordered_before m m_print w_write)

let msg_ordered =
  {|
  shared int g = 0;
  chan c[0];
  func w() { g = 5; send(c, 1); }
  func main() {
    var p = spawn w();
    var x = 0;
    recv(c, x);
    print(g);
    join(p);
  }
  |}

let test_send_recv_ordered_no_race () =
  (* the read sits after the recv, the write before the send; the join
     comes too late to help, so the sync chain must do the ordering *)
  Alcotest.(check (list string)) "message-ordered clean" []
    (race_vars msg_ordered);
  let p = Util.compile msg_ordered in
  let m = Mhp.compute p in
  Alcotest.(check bool) "write chained before print" true
    (Mhp.ordered_before m (write_sid p "w" "g") (print_sid p "main"))

(* --- more orderings ------------------------------------------------ *)

let test_vp_ordered_no_race () =
  let src =
    {|
    shared int g = 0;
    sem s = 0;
    func w() { g = 7; V(s); }
    func main() {
      var p = spawn w();
      P(s);
      print(g);
      join(p);
    }
    |}
  in
  Alcotest.(check (list string)) "V/P token passing clean" [] (race_vars src)

let test_write_after_send_still_races () =
  (* soundness: moving the write past the send breaks the ordering *)
  let src =
    {|
    shared int g = 0;
    chan c[0];
    func w() { send(c, 1); g = 5; }
    func main() {
      var p = spawn w();
      var x = 0;
      recv(c, x);
      print(g);
      join(p);
    }
    |}
  in
  Alcotest.(check (list string)) "late write flagged" [ "g" ] (race_vars src)

let test_conditional_spawn_join_shields () =
  (* the join does not dominate the print (the spawn may not run), yet
     every spawned instance is joined on the way there *)
  let src =
    {|
    shared int g = 0;
    shared int flag = 0;
    func w() { g = 1; }
    func main() {
      if (flag > 0) {
        var p = spawn w();
        join(p);
      }
      print(g);
    }
    |}
  in
  Alcotest.(check (list string)) "conditional spawn/join clean" []
    (race_vars src)

let test_loop_spawn_join_each_iteration () =
  (* one instance at a time, each joined before the next spawn and
     before the final read: self-sequential, nothing races *)
  let src =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() {
      var i = 0;
      while (i < 3) {
        var p = spawn w();
        join(p);
        i = i + 1;
      }
      print(g);
    }
    |}
  in
  Alcotest.(check (list string)) "looped spawn+join clean" [] (race_vars src)

let test_loop_spawn_without_join_self_parallel () =
  let src =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() {
      var i = 0;
      while (i < 3) {
        spawn w();
        i = i + 1;
      }
    }
    |}
  in
  Alcotest.(check (list string)) "unjoined loop spawn races" [ "g" ]
    (race_vars src);
  let p = Util.compile src in
  let m = Mhp.compute p in
  let w_write = write_sid p "w" "g" in
  Alcotest.(check bool) "instance may race with itself" true
    (Mhp.may_parallel m w_write w_write)

(* --- query units --------------------------------------------------- *)

let test_same_sequential () =
  let p = Util.compile join_ordered in
  let m = Mhp.compute p in
  let m_print = print_sid p "main" and w_write = write_sid p "w" "g" in
  Alcotest.(check bool) "main with itself" true
    (Mhp.same_sequential m m_print m_print);
  Alcotest.(check bool) "main vs child" false
    (Mhp.same_sequential m m_print w_write)

let test_function_live_and_classes () =
  let src =
    {|
    shared int g = 0;
    func dead() { g = 9; }
    func w() { g = g + 1; }
    func main() { var p = spawn w(); join(p); }
    |}
  in
  let p = Util.compile src in
  let m = Mhp.compute p in
  let fid name = (Option.get (P.find_func p name)).P.fid in
  Alcotest.(check bool) "main live" true (Mhp.function_live m (fid "main"));
  Alcotest.(check bool) "w live" true (Mhp.function_live m (fid "w"));
  Alcotest.(check bool) "dead not live" false (Mhp.function_live m (fid "dead"));
  Alcotest.(check int) "main + one spawn class" 2 (Mhp.nclasses m);
  (* dead code must not contribute races *)
  Alcotest.(check (list string)) "dead writer ignored" [] (race_vars src)

(* --- prelog pruning ------------------------------------------------ *)

let test_prelog_required () =
  (* a child's write flowing into main's later read still needs the
     sync-unit prelog: sequential replay of main never executes it *)
  let p = Util.compile join_ordered in
  let m = Mhp.compute p in
  Alcotest.(check bool) "joined child write still needs prelog" true
    (Mhp.prelog_required m ~read_sid:(print_sid p "main") ~vid:(vid p "g"));
  (* a config written only before every spawn is covered by the
     e-block entry prelogs: prune it *)
  let cfg_src =
    {|
    shared int cfg = 0;
    func w() { print(cfg); }
    func main() {
      cfg = 41;
      var p = spawn w();
      join(p);
    }
    |}
  in
  let p = Util.compile cfg_src in
  let m = Mhp.compute p in
  Alcotest.(check bool) "pre-spawn config needs no prelog" false
    (Mhp.prelog_required m ~read_sid:(print_sid p "w") ~vid:(vid p "cfg"))

let test_pruning_drops_entries_on_config_pipeline () =
  let src = Workloads.config_pipeline ~workers:3 ~rounds:5 in
  let p = Util.compile src in
  let sync_vars prune =
    let eb = Eblock.analyze ~prune_sync_prelogs:prune p in
    let _, log, _ = Trace.Logger.run_logged eb in
    Array.to_seq log.Trace.Log.entries
    |> Seq.fold_left
         (fun acc entries ->
           Array.fold_left
             (fun acc e ->
               match e with
               | Trace.Log.Sync_prelog { vals; _ } -> acc + List.length vals
               | _ -> acc)
             acc entries)
         0
  in
  let unpruned = sync_vars false and pruned = sync_vars true in
  Alcotest.(check bool)
    (Printf.sprintf "pruned %d < unpruned %d" pruned unpruned)
    true
    (pruned < unpruned);
  (* and the pruned trace still replays faithfully: the round-trip
     oracle diffs every interval's emulation against the full trace *)
  let eb, _halt, log, tr, _m = Util.run_instrumented src in
  let checked = Util.check_replay_equivalence eb log tr in
  Alcotest.(check bool) "intervals replayed" true (checked > 0)

let suite =
  ( "mhp",
    [
      Alcotest.test_case "join-ordered: no race" `Quick
        test_join_ordered_no_race;
      Alcotest.test_case "send/recv-ordered: no race" `Quick
        test_send_recv_ordered_no_race;
      Alcotest.test_case "V/P-ordered: no race" `Quick test_vp_ordered_no_race;
      Alcotest.test_case "write after send races" `Quick
        test_write_after_send_still_races;
      Alcotest.test_case "conditional spawn+join shields" `Quick
        test_conditional_spawn_join_shields;
      Alcotest.test_case "loop spawn+join sequential" `Quick
        test_loop_spawn_join_each_iteration;
      Alcotest.test_case "loop spawn unjoined self-races" `Quick
        test_loop_spawn_without_join_self_parallel;
      Alcotest.test_case "same_sequential" `Quick test_same_sequential;
      Alcotest.test_case "liveness and classes" `Quick
        test_function_live_and_classes;
      Alcotest.test_case "prelog_required" `Quick test_prelog_required;
      Alcotest.test_case "pruning shrinks config prelogs" `Quick
        test_pruning_drops_entries_on_config_pipeline;
    ] )
