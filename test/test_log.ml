(* Log structure: entries, interval nesting, persistence. *)

module L = Trace.Log

let test_interval_nesting () =
  let eb, halt, log, _tr, _m = Util.run_instrumented (Workloads.deep_calls ~depth:5) in
  ignore eb;
  (match halt with Runtime.Machine.Finished -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  let ivs = L.intervals log ~pid:0 in
  (* main + f4..f0 *)
  Alcotest.(check int) "six intervals" 6 (Array.length ivs);
  (* each nested interval's range is inside its parent's *)
  Array.iter
    (fun (iv : L.interval) ->
      match iv.iv_parent with
      | None -> ()
      | Some pid_iv ->
        let parent = ivs.(pid_iv) in
        Alcotest.(check bool) "child starts after parent" true
          (iv.iv_seq_start > parent.iv_seq_start);
        (match (iv.iv_seq_end, parent.iv_seq_end) with
        | Some ce, Some pe ->
          Alcotest.(check bool) "child ends before parent" true (ce <= pe)
        | _ -> Alcotest.fail "closed run must close all intervals");
        Alcotest.(check bool) "parent lists child" true
          (List.mem iv.iv_id parent.iv_children))
    ivs;
  (* exactly one root *)
  Alcotest.(check int) "one root" 1
    (Array.to_list ivs |> List.filter (fun iv -> iv.L.iv_parent = None) |> List.length)

let test_find_enclosing () =
  let _eb, _h, log, _tr, _m = Util.run_instrumented (Workloads.deep_calls ~depth:3) in
  let ivs = L.intervals log ~pid:0 in
  (* seq 0 is in the root; the innermost block covers its own start *)
  (match L.find_enclosing ivs ~seq:0 with
  | Some iv -> Alcotest.(check bool) "root" true (iv.L.iv_parent = None)
  | None -> Alcotest.fail "no interval for seq 0");
  Array.iter
    (fun (iv : L.interval) ->
      match L.find_enclosing ivs ~seq:iv.iv_seq_start with
      | Some found -> Alcotest.(check int) "innermost at start" iv.iv_id found.L.iv_id
      | None -> Alcotest.fail "uncovered seq")
    ivs

let test_open_interval_on_fault () =
  let _eb, halt, log, _tr, _m = Util.run_instrumented Workloads.buggy_min in
  (match halt with
  | Runtime.Machine.Fault _ -> ()
  | h -> Alcotest.failf "expected fault, got %s" (Util.halt_name h));
  let ivs = L.intervals log ~pid:0 in
  let opens = Array.to_list ivs |> List.filter (fun iv -> iv.L.iv_seq_end = None) in
  (* main's interval never closed *)
  Alcotest.(check int) "one open interval" 1 (List.length opens);
  Alcotest.(check bool) "the open one is the root" true
    ((List.hd opens).L.iv_parent = None)

let test_log_much_smaller_than_trace () =
  let _eb, _h, log, tr, _m = Util.run_instrumented (Workloads.matmul 6) in
  let entries = L.entry_count log in
  let events = Trace.Full_trace.nevents tr in
  Alcotest.(check bool)
    (Printf.sprintf "log (%d) << trace (%d)" entries events)
    true
    (entries * 10 < events)

let test_io_roundtrip () =
  let _eb, _h, log, _tr, _m = Util.run_instrumented Workloads.fig61 in
  let path = Filename.temp_file "ppd_test" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Log_io.save path log;
      let log' = Trace.Log_io.load path in
      Alcotest.(check int) "nprocs" log.L.nprocs log'.L.nprocs;
      Alcotest.(check int) "entries" (L.entry_count log) (L.entry_count log');
      (* loaded intervals are identical *)
      for pid = 0 to log.L.nprocs - 1 do
        Alcotest.(check bool) "intervals equal" true
          (L.intervals log ~pid = L.intervals log' ~pid)
      done)

let test_io_bad_magic () =
  let path = Filename.temp_file "ppd_test" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc "not a log");
      match Trace.Log_io.load path with
      | exception Trace.Log_io.Unreadable { reason; _ } ->
        Alcotest.(check bool) "mentions magic" true
          (Util.contains ~sub:"magic" reason)
      | _ -> Alcotest.fail "expected Unreadable on bad magic")

let test_per_process_files () =
  let _eb, _h, log, _tr, _m = Util.run_instrumented Workloads.fig61 in
  let dir = Filename.temp_file "ppd_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let paths = Trace.Log_io.save_per_process ~dir ~basename:"run" log in
      Alcotest.(check int) "one file per process" log.L.nprocs (List.length paths);
      List.iteri
        (fun pid path ->
          let one = Trace.Log_io.load path in
          Alcotest.(check int) "single process" 1 one.L.nprocs;
          Alcotest.(check int) "entry count preserved"
            (Array.length log.L.entries.(pid))
            (Array.length one.L.entries.(0)))
        paths)

let test_sync_records_present () =
  let _eb, _h, log, _tr, _m = Util.run_instrumented Workloads.fig61 in
  (* every sync event of every process appears as a Sync entry *)
  let count_kind pred =
    Array.fold_left
      (fun acc entries ->
        acc
        + (Array.to_list entries
          |> List.filter (fun e ->
                 match e with
                 | L.Sync { data = L.S_kind k; _ } -> pred k
                 | _ -> false)
          |> List.length))
      0 log.L.entries
  in
  Alcotest.(check int) "sends" 2
    (count_kind (function Runtime.Event.K_send _ -> true | _ -> false));
  Alcotest.(check int) "recvs" 2
    (count_kind (function Runtime.Event.K_recv _ -> true | _ -> false));
  Alcotest.(check int) "unblocks" 2
    (count_kind (function Runtime.Event.K_send_unblocked _ -> true | _ -> false));
  Alcotest.(check int) "spawns" 2
    (count_kind (function Runtime.Event.K_spawn _ -> true | _ -> false));
  Alcotest.(check int) "joins" 2
    (count_kind (function Runtime.Event.K_join _ -> true | _ -> false))

let interval_wellformed_prop =
  Util.qtest ~count:40 "random programs: intervals well-formed"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1000))
    (fun (seed, sseed) ->
      let src = Gen.parallel ~protect:`Always seed in
      let _eb, _h, log, _tr, _m =
        Util.run_instrumented ~sched:(Runtime.Sched.Random_seed sseed) src
      in
      let ok = ref true in
      for pid = 0 to log.L.nprocs - 1 do
        let ivs = L.intervals log ~pid in
        Array.iter
          (fun (iv : L.interval) ->
            (match iv.L.iv_seq_end with
            | Some e -> if e < iv.L.iv_seq_start then ok := false
            | None -> ());
            match iv.L.iv_parent with
            | Some par ->
              let parent = ivs.(par) in
              if iv.L.iv_seq_start <= parent.L.iv_seq_start then ok := false
            | None -> ())
          ivs
      done;
      !ok)

(* The regression: the logger's per-pid tables used to regrow by exactly
   one slot per new pid (O(pids²) copying overall). Growth is geometric
   now — O(log pids) regrowths, counted by the obs layer — and [finish]
   trims the slack, so the emitted log never reports phantom
   processes. *)
let test_logger_geometric_growth () =
  Obs.enable ();
  Obs.reset ();
  let _eb, halt, log, _tr, _m =
    Util.run_instrumented (Workloads.token_ring ~procs:12 ~rounds:2)
  in
  let regrowths = List.assoc "trace.pid_regrowths" (Obs.counters ()) in
  Obs.disable ();
  Obs.reset ();
  (match halt with
  | Runtime.Machine.Finished -> ()
  | h -> Alcotest.failf "expected finish, got %s" (Util.halt_name h));
  (* 11 spawned nodes plus main *)
  Alcotest.(check int) "many processes spawned" 12 log.L.nprocs;
  Alcotest.(check int) "entry rows match the logical process count"
    log.L.nprocs
    (Array.length log.L.entries);
  Alcotest.(check int) "stop marks match the logical process count"
    log.L.nprocs
    (Array.length log.L.stops);
  Array.iteri
    (fun pid entries ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d actually logged" pid)
        true
        (Array.length entries > 0))
    log.L.entries;
  (* doubling from the initial single slot: 1→2→4→8→16 covers twelve
     pids in four regrowths; the old exact-fit growth needed eleven *)
  Alcotest.(check bool)
    (Printf.sprintf "regrowth count %d is logarithmic" regrowths)
    true
    (regrowths >= 1 && regrowths <= 5)

let suite =
  ( "log",
    [
      Alcotest.test_case "interval nesting" `Quick test_interval_nesting;
      Alcotest.test_case "find_enclosing" `Quick test_find_enclosing;
      Alcotest.test_case "open interval on fault" `Quick test_open_interval_on_fault;
      Alcotest.test_case "log much smaller than trace" `Quick
        test_log_much_smaller_than_trace;
      Alcotest.test_case "save/load round trip" `Quick test_io_roundtrip;
      Alcotest.test_case "bad magic rejected" `Quick test_io_bad_magic;
      Alcotest.test_case "per-process files" `Quick test_per_process_files;
      Alcotest.test_case "sync records present" `Quick test_sync_records_present;
      Alcotest.test_case "geometric pid-table growth, exact nprocs" `Quick
        test_logger_geometric_growth;
      interval_wellformed_prop;
    ] )
