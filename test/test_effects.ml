(* Per-process communication automata: shape, regions, completeness. *)

open Analysis

let build src =
  let p = Util.compile src in
  let mhp = Mhp.compute p in
  (p, Effects.compute mhp p)

let actions_of (a : Effects.aut) =
  Array.to_list a.Effects.au_out
  |> List.concat_map (List.map (fun t -> t.Effects.tr_act))

let test_deadlock_ab_shape () =
  let _, eff = build Workloads.deadlock_ab in
  Alcotest.(check bool) "complete" true eff.Effects.complete;
  Alcotest.(check int) "three automata (main, left, right)" 3
    (Array.length eff.Effects.auts);
  (* left: P(a) P(b) V(b) V(a) -> a 5-state chain *)
  let left = eff.Effects.auts.(1) in
  Alcotest.(check int) "left has 5 states" 5 left.Effects.au_nstates;
  Alcotest.(check int) "left has 4 transitions" 4 (Effects.ntrans left);
  let is_p = function Effects.SemP _ -> true | _ -> false in
  Alcotest.(check int) "left does two Ps" 2
    (List.length (List.filter is_p (actions_of left)));
  (* main: spawn spawn join join *)
  let main = eff.Effects.auts.(0) in
  let spawns =
    List.filter (function Effects.Spawn _ -> true | _ -> false)
      (actions_of main)
  in
  Alcotest.(check int) "main spawns two classes" 2 (List.length spawns)

let test_loops_become_cycles () =
  let src =
    {|
sem s = 1;
func worker() {
  var i = 0;
  while (i < 3) {
    P(s);
    V(s);
    i = i + 1;
  }
}
func main() {
  var p = spawn worker();
  join(p);
}
|}
  in
  let _, eff = build src in
  Alcotest.(check bool) "complete" true eff.Effects.complete;
  let w = eff.Effects.auts.(1) in
  Alcotest.(check bool) "worker has a cyclic state" true
    (Array.exists Fun.id w.Effects.au_on_cycle)

let test_comm_free_calls_are_epsilon () =
  let src =
    {|
sem s = 1;
func helper(x) {
  return x * 2;
}
func worker() {
  var a = helper(1);
  P(s);
  var b = helper(a);
  V(s);
}
func main() {
  var p = spawn worker();
  join(p);
}
|}
  in
  let p, eff = build src in
  Alcotest.(check bool) "complete" true eff.Effects.complete;
  let w = eff.Effects.auts.(1) in
  Alcotest.(check int) "only P and V remain" 2 (Effects.ntrans w);
  (* the helper body's statements live inside some region of the
     worker's automaton *)
  let helper_fid =
    let f =
      Array.to_seq p.Lang.Prog.funcs
      |> Seq.find (fun (f : Lang.Prog.func) -> f.fname = "helper")
    in
    (Option.get f).fid
  in
  let helper_sid =
    let found = ref (-1) in
    Array.iter
      (fun (s : Lang.Prog.stmt) ->
        if !found < 0 && p.Lang.Prog.stmt_fid.(s.sid) = helper_fid then
          found := s.sid)
      p.Lang.Prog.stmts;
    !found
  in
  Alcotest.(check bool) "helper sid covered by a region" true
    (Effects.states_of eff helper_sid <> [])

let test_inlined_comm_calls () =
  (* a P hidden behind a call still shows up as a transition *)
  let src =
    {|
sem s = 1;
func lock() {
  P(s);
}
func unlock() {
  V(s);
}
func worker() {
  lock();
  unlock();
}
func main() {
  var p = spawn worker();
  join(p);
}
|}
  in
  let _, eff = build src in
  Alcotest.(check bool) "complete" true eff.Effects.complete;
  let w = eff.Effects.auts.(1) in
  let acts = actions_of w in
  Alcotest.(check bool) "P through call" true
    (List.mem (Effects.SemP 0) acts);
  Alcotest.(check bool) "V through call" true
    (List.mem (Effects.SemV 0) acts)

let test_recursion_degrades () =
  let src =
    {|
sem s = 1;
func rec_lock(n) {
  if (n > 0) {
    P(s);
    var x = rec_lock(n - 1);
    V(s);
  }
  return 0;
}
func main() {
  var x = rec_lock(3);
}
|}
  in
  let _, eff = build src in
  Alcotest.(check bool) "recursion through comm -> incomplete" false
    eff.Effects.complete;
  Alcotest.(check bool) "a note explains it" true (eff.Effects.notes <> [])

let test_multi_spawn_still_modelled () =
  (* two spawns of the same function are two distinct classes *)
  let _, eff = build (Workloads.counter ~workers:2 ~incs:1 ~mutex:true) in
  Alcotest.(check int) "main + 2 worker classes" 3
    (Array.length eff.Effects.auts)

let suite =
  ( "effects",
    [
      Alcotest.test_case "deadlock_ab shape" `Quick test_deadlock_ab_shape;
      Alcotest.test_case "loops become cycles" `Quick test_loops_become_cycles;
      Alcotest.test_case "comm-free calls are epsilon" `Quick
        test_comm_free_calls_are_epsilon;
      Alcotest.test_case "comm calls inlined" `Quick test_inlined_comm_calls;
      Alcotest.test_case "recursion degrades to incomplete" `Quick
        test_recursion_degrades;
      Alcotest.test_case "multi-spawn classes" `Quick
        test_multi_spawn_still_modelled;
    ] )
