The ppd command line, end to end. First, materialise some programs.

  $ ppd example buggy_min > buggy.mpl
  $ ppd example racy_bank > racy.mpl
  $ ppd example fixed_bank > fixed.mpl
  $ ppd example fig61 > fig61.mpl

Compiling and running:

  $ ppd check buggy.mpl
  ok: 2 function(s), 11 statement(s), 8 variable(s), 0 shared, 0 semaphore(s), 0 channel(s)
  $ ppd run fig61.mpl
  42
  $ ppd run buggy.mpl
  fault in process 0: assertion failed
  [2]

Front-end errors are reported with positions:

  $ echo 'func main() { print(nope); }' > bad.mpl
  $ ppd check bad.mpl
  error at 1:21: unknown variable 'nope'
  [1]

The preparatory-phase analyses:

  $ ppd analyze fixed.mpl --show modref
  withdraw: GMOD={balance} GREF={balance}
  main: GMOD={} GREF={balance}
  $ ppd analyze fixed.mpl --show mhp
  mhp: 3 live class(es)
    #0 main (main)
    #1 spawn s5 in main -> withdraw joined@n4
    #2 spawn s6 in main -> withdraw joined@n5

Execution under the logger, and the debugging phase:

  $ ppd flowback buggy.mpl --depth 2
  fault in process 0 at s10 (assert(m == 2)): assertion failed
  flowback from:
    [p0] assert(m == 2) = 0
      <- data(m) [p0] m = call#0(a, b, c) = 3
        <- data(a) [p0] a = 7 = 7
        <- data(b) [p0] b = 3 = 3
        <- data(c) [p0] c = 5 = 5
        <- control [p0] ENTRY main
        <- returns [p0] return m = 3
      <- control [p0] ENTRY main
  emulated 2 of 2 log intervals (10 replay steps)

Race detection, dynamic and static (exit code 3 when races are found):

  $ ppd race racy.mpl
  execution finished normally
  2 race(s) detected:
  - write/write conflict on shared 'balance' between edges e5 and e6
      e5 (process 1, after proc-start f0 by p0:1, before proc-exit f0 result=-)
      e6 (process 2, after proc-start f0 by p0:2, before proc-exit f0 result=-)
  - read/write conflict on shared 'balance' between edges e5 and e6
      e5 (process 1, after proc-start f0 by p0:1, before proc-exit f0 result=-)
      e6 (process 2, after proc-start f0 by p0:2, before proc-exit f0 result=-)
  (4 edge pairs examined)
  [3]
  $ ppd race fixed.mpl
  execution finished normally
  no races detected: execution instance is race-free
  (4 edge pairs examined)
  $ ppd race racy.mpl --static
  2 potential race(s):
  - 'balance': s0 in withdraw (read) vs s2 in withdraw (write)
  - 'balance': s2 in withdraw (write) vs s2 in withdraw (write) [write/write]
  [3]
  $ ppd race racy.mpl --static --format=json
  {"findings":[{"code":"PPD010","severity":"warning","loc":{"line":5,"col":3},"message":"potential read/write race on shared 'balance': read of 'balance' at s0 in withdraw may happen in parallel with write of 'balance' at s2 in withdraw","related":[{"loc":{"line":7,"col":3},"message":"write of 'balance' at s2 in withdraw"}]},{"code":"PPD011","severity":"warning","loc":{"line":7,"col":3},"message":"potential write/write race on shared 'balance': write of 'balance' at s2 in withdraw may happen in parallel with write of 'balance' at s2 in withdraw","related":[{"loc":{"line":7,"col":3},"message":"write of 'balance' at s2 in withdraw"}]}],"count":2}
  [3]

The unified lint driver (exit code 5 when there are findings):

  $ ppd lint --list-passes
  races        MHP-refined potential data races (PPD010, PPD011)
  deadlocks    lock-order cycles over must-held semaphores (PPD020)
  unreachable  unreachable statements and dead functions (PPD030, PPD031)
  uninit       possibly-uninitialised local reads (PPD040)
  proto-deadlock communication-protocol deadlock certificates (PPD070)
  orphan-comm  orphaned sends and dead receives (PPD071)
  sem-leak     semaphores still held at program exit (PPD072)
  $ ppd lint racy.mpl
  PPD010 warning at 5:3: potential read/write race on shared 'balance': read of 'balance' at s0 in withdraw may happen in parallel with write of 'balance' at s2 in withdraw
    - at 7:3: write of 'balance' at s2 in withdraw
  PPD011 warning at 7:3: potential write/write race on shared 'balance': write of 'balance' at s2 in withdraw may happen in parallel with write of 'balance' at s2 in withdraw
    - at 7:3: write of 'balance' at s2 in withdraw
  2 finding(s): 0 error(s), 2 warning(s), 0 note(s)
  [5]
  $ ppd lint fixed.mpl
  no findings
  $ ppd lint racy.mpl --pass deadlocks
  no findings
  $ ppd example deadlock_ab > dl.mpl
  $ ppd lint dl.mpl
  PPD020 warning at 7:3: potential deadlock: lock-order cycle between 'a' and 'b' (P on 'b' while holding 'a' at s1 in left can run in parallel with the reverse order)
    - at 14:3: P on 'a' while holding 'b' at s5 in right
  PPD070 warning at 22:3: potential deadlock (cyclic wait): main blocked at join#1 (s10) after 4 protocol step(s); run 'ppd proto' for the certificate
    - at 7:3: left blocked at P(b) (s1)
    - at 14:3: right blocked at P(a) (s5)
  2 finding(s): 0 error(s), 2 warning(s), 0 note(s)
  [5]
  $ ppd lint fixed.mpl --format=json
  {"findings":[],"count":0}
  $ ppd lint bad.mpl
  PPD001 error at 1:21: unknown variable 'nope'
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [1]
  $ ppd lint racy.mpl --pass nosuch
  unknown lint pass 'nosuch'; available: races, deadlocks, unreachable, uninit, proto-deadlock, orphan-comm, sem-leak
  [124]

The communication-protocol analysis: per-process automata, a bounded
product exploration, deadlock certificates validated by guided replay
(exit 5), and protocol-refined static race reports:

  $ ppd proto dl.mpl
  proto: deadlock
    certificate (cyclic wait), 4 step(s):
      #0 spawn#1 (s8)
      #0 spawn#2 (s9)
      #1 P(a) (s0)
      #2 P(b) (s4)
      -> main blocked at join#1 (s10)
      -> left blocked at P(b) (s1)
      -> right blocked at P(a) (s5)
    states: 53 full, 44 reduced
  certificate 1: confirmed by guided replay (schedule: 0 0 0 1 1 2 2 0 1 2)
  [5]
  $ ppd proto fig61.mpl
  proto: deadlock-free
    2 must-ordering fact(s):
      s8 -> s1 (chan c12)
      s2 -> s4 (chan c23)
    states: 12 full, 10 reduced
  $ ppd proto dl.mpl --format=json
  {"verdict":"deadlock","states_full":53,"states_reduced":44,"truncated":false,"certificates":[{"kind":"cyclic wait","steps":[{"cls":0,"sid":8,"act":"#0 spawn#1 (s8)"},{"cls":0,"sid":9,"act":"#0 spawn#2 (s9)"},{"cls":1,"sid":0,"act":"#1 P(a) (s0)"},{"cls":2,"sid":4,"act":"#2 P(b) (s4)"}],"confirmed":true,"schedule":[0,0,0,1,1,2,2,0,1,2]}],"facts":0,"orphan_sends":0,"dead_recvs":0,"sem_leaks":0,"conflicting_pairs":0,"discharged_base":0,"discharged_proto":0}
  [5]
  $ ppd proto dl.mpl --dot | head -n 3
  digraph effects {
    rankdir=LR;
    subgraph cluster_0 {
  $ ppd example ping_pong > pp.mpl
  $ ppd run pp.mpl
  6
  $ ppd race --static pp.mpl
  12 potential race(s):
  - 'board': s1 in pinger (read, holds ping) vs s7 in ponger (write, holds pong)
  - 'board': s1 in pinger (read, holds ping) vs s10 in ponger (write, holds pong)
  - 'board': s1 in pinger (write, holds ping) vs s7 in ponger (read, holds pong)
  - 'board': s1 in pinger (write, holds ping) vs s7 in ponger (write, holds pong) [write/write]
  - 'board': s1 in pinger (write, holds ping) vs s10 in ponger (read, holds pong)
  - 'board': s1 in pinger (write, holds ping) vs s10 in ponger (write, holds pong) [write/write]
  - 'board': s4 in pinger (read, holds ping) vs s7 in ponger (write, holds pong)
  - 'board': s4 in pinger (read, holds ping) vs s10 in ponger (write, holds pong)
  - 'board': s4 in pinger (write, holds ping) vs s7 in ponger (read, holds pong)
  - 'board': s4 in pinger (write, holds ping) vs s7 in ponger (write, holds pong) [write/write]
  - 'board': s4 in pinger (write, holds ping) vs s10 in ponger (read, holds pong)
  - 'board': s4 in pinger (write, holds ping) vs s10 in ponger (write, holds pong) [write/write]
  [3]
  $ ppd race --static --proto pp.mpl
  protocol refinement: 30 conflicting pair(s) discharged (vs 18 by spawn/join structure alone)
  no potential races: every conflicting access pair is ordered or protected
  $ ppd proto pp.mpl
  proto: deadlock-free
    3 must-ordering fact(s):
      s8 -> s3 (sem ping)
      s2 -> s6 (sem pong)
      s5 -> s9 (sem pong)
    states: 24 full, 21 reduced

What-if experiments (§5.7):

  $ cat > limit.mpl <<'MPL'
  > shared int limit = 10;
  > func main() {
  >   var i = 0;
  >   var n = 0;
  >   while (i < limit) { n = n + i; i = i + 1; }
  >   print(n);
  > }
  > MPL
  $ ppd run limit.mpl
  45
  $ ppd whatif limit.mpl --set limit=3
  execution finished normally
  what-if replay of process 0 interval 0 with limit=3:
    completed (17 events)
    output:
      3

The scripted debugger:

  $ printf 'why\nstats\nquit\n' > script.txt
  $ ppd debug buggy.mpl --script script.txt
  fault in process 0 at s10 (assert(m == 2)): assertion failed
  fault in process 0 at s10 (assert(m == 2)): assertion failed
  focus: #5 p0 s10 "assert(m == 2)" = 0
  ppd> why
  #5 p0 s10 "assert(m == 2)" = 0
    <- data:m #4 m = call#0(a, b, c)
    <- ctrl #0 ENTRY main
  ppd> stats
  emulated 1 of 2 intervals (5 replay steps)
  bye

Logs persist and reload:

  $ ppd log fig61.mpl --save run.log > /dev/null
  $ test -f run.log && echo saved
  saved

The durable segmented store (v2) is the default save format; stats
inspects a file without replaying anything:

  $ ppd log stats run.log
  run.log: v2, 291 bytes, interval index intact
  3 process(es), 22 record(s), 3 interval(s)
  $ ppd verify-log run.log
  run.log: v2, 291 bytes, 22 record(s) in 3 page(s), index intact
  no damage detected

Crash recovery: truncate the file mid-page, as if the machine died
while the logger was appending. Verification pinpoints the damage
(exit code 4), and loading salvages every complete page before the
cut — 12 of the original 22 records:

  $ head -c 150 run.log > cut.log
  $ ppd verify-log cut.log
  cut.log: v2, 150 bytes, 12 record(s) in 2 page(s), index unusable
  damage at byte 127: frame extends past the end of the file
  [4]
  $ ppd log stats cut.log
  cut.log: v2, 150 bytes, recovered by salvage scan
  3 process(es), 12 record(s), 2 interval(s)
  damage at byte 127: frame extends past the end of the file

Legacy v1 (Marshal) files are still written on request and readable
through the same commands:

  $ ppd log fig61.mpl --save old.log --v1 > /dev/null
  $ ppd log stats old.log
  old.log: v1, 265 bytes, marshal blob
  3 process(es), 22 record(s), 3 interval(s)
  $ ppd verify-log old.log
  old.log: v1, 265 bytes, 22 record(s)
  no damage detected

A file that is not a log at all is refused with PPD050 (exit code 6):

  $ echo garbage > bad.log
  $ ppd verify-log bad.log
  PPD050 error at ?: unreadable log bad.log: not a PPD log file (bad magic)
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [6]

The debugging phase parallelises over a domain pool (-j/--jobs).
Every pool size produces byte-identical output; -j 1 is the plain
serial path:

  $ ppd flowback buggy.mpl --depth 2 -j 1 > serial.out
  $ ppd flowback buggy.mpl --depth 2 -j 4 > pooled.out
  $ cmp serial.out pooled.out && echo identical
  identical

Batch replay of every interval agrees with the serial path as well,
down to the full graph dump:

  $ ppd replay fig61.mpl -j 1
  execution finished normally
  replayed 3 of 3 log intervals (14 replay steps); graph: 19 nodes, 41 edges
  $ ppd replay fig61.mpl -j 1 --dump > serial.dump
  $ ppd replay fig61.mpl -j 4 --dump > pooled.dump
  $ cmp serial.dump pooled.dump && echo identical
  identical

Profiling: --profile-out writes a machine-readable JSON profile after
the normal output. The counters must be coherent — every interval
cache lookup is either a hit or a miss, and the emulator replays at
least as many intervals as the controller asks for:

  $ ppd flowback buggy.mpl --depth 2 --profile-out prof.json > /dev/null
  $ python3 -m json.tool prof.json > /dev/null && echo valid
  valid
  $ python3 - prof.json <<'PY'
  > import json, sys
  > p = json.load(open(sys.argv[1]))
  > names = [s["name"] for s in p["spans"]]
  > assert "execution" in names and "debugging" in names, names
  > c = p["counters"]
  > assert c["ppd.controller.cache.hits"] + c["ppd.controller.cache.misses"] \
  >        == c["ppd.controller.cache.lookups"]
  > assert c["ppd.emulator.replays"] >= c["ppd.controller.replays"]
  > print("profile coherent")
  > PY
  profile coherent

`ppd profile` wraps any subcommand, and --trace emits a Chrome
trace_event file (load it at chrome://tracing):

  $ ppd profile -o prof2.json --trace trace.json replay fig61.mpl -j 2 > /dev/null
  $ python3 - trace.json <<'PY'
  > import json, sys
  > events = json.load(open(sys.argv[1]))
  > assert events and all(e["ph"] in ("X", "C") for e in events)
  > complete = [e for e in events if e["ph"] == "X"]
  > assert complete and all(
  >     k in e for e in complete for k in ("name", "cat", "ts", "dur", "pid", "tid"))
  > print("trace well-formed")
  > PY
  trace well-formed

Edge cases of the log-file contract: a 0-byte file and a directory are
PPD050 (exit 6); a file holding only the v2 magic is structural damage
(exit 4), though stats still salvages the (empty) prefix; a bare v1
magic with no payload is damage too:

  $ : > empty.log
  $ ppd verify-log empty.log
  PPD050 error at ?: unreadable log empty.log: file shorter than the 8-byte magic
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [6]
  $ ppd log stats empty.log
  PPD050 error at ?: unreadable log empty.log: file shorter than the 8-byte magic
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [6]
  $ mkdir dirlog
  $ ppd log stats dirlog
  PPD050 error at ?: unreadable log dirlog: Is a directory
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [6]
  $ printf 'PPDLOG2\n' > v2empty.log
  $ ppd verify-log v2empty.log
  v2empty.log: v2, 8 bytes, 0 record(s) in 0 page(s), index unusable
  damage at byte 8: file ends without a footer frame
  [4]
  $ ppd log stats v2empty.log
  v2empty.log: v2, 8 bytes, recovered by salvage scan
  0 process(es), 0 record(s), 0 interval(s)
  damage at byte 8: file ends without a footer frame
  $ printf 'PPDLOG1\n' > v1empty.log
  $ ppd verify-log v1empty.log
  v1empty.log: v1, 8 bytes, 0 record(s)
  damage at byte 8: truncated or corrupt v1 marshal payload
  [4]

`ppd fsck` checks every page the footer index names — not just the
prefix verify-log walks — and emits a machine-readable damage report:

  $ ppd fsck run.log
  {
    "path": "run.log",
    "version": 2,
    "bytes": 291,
    "indexed": true,
    "clean": true,
    "tier": "content",
    "checkpoints": 0,
    "procs": 3,
    "records": 22,
    "intervals": 3,
    "pages": [
      {"pid": 0, "page": 0, "offset": 127, "count": 10, "error": null},
      {"pid": 1, "page": 0, "offset": 59, "count": 7, "error": null},
      {"pid": 2, "page": 0, "offset": 8, "count": 5, "error": null}
    ],
    "damage": []
  }
  $ ppd fsck cut.log > cut.json
  [4]
  $ python3 -m json.tool cut.json > /dev/null && echo valid
  valid

Deterministic fault injection (--fault POINT:N[:KIND]): crash the log
sink at byte 100 and exactly 100 bytes reach disk — the durable
prefix — while the run itself completes; fsck then reports what
survived:

  $ ppd log fig61.mpl --save crash.log --fault trace.sink:100 | tail -n 2
  saved to crash.log
  log sink died: injected crash in the log sink at byte 100; only the durable prefix reached disk (see `ppd fsck crash.log`)
  $ wc -c < crash.log
  100
  $ ppd fsck crash.log > crash.json
  [4]

A malformed spec is a usage error:

  $ ppd flowback fig61.mpl --fault nope
  ppd: --fault: malformed fault spec entry "nope" (expected POINT:N[:KIND])
  [124]

Flowback can skip the execution phase and debug a saved log directly
(--load, demand-paged). On a damaged or fault-ridden log, --degraded
turns unreplayable history into explicit holes instead of crashing:

  $ ppd flowback fig61.mpl --load run.log --depth 2
  debugging saved log run.log (v2, 3 process(es))
  flowback from:
    [p0] EXIT main
  emulated 1 of 3 log intervals (6 replay steps)
  $ ppd flowback fig61.mpl --load run.log --degraded --fault store.segment.read:1
  debugging saved log run.log (v2, 3 process(es))
  no events to debug
  history unavailable for p0 steps 0-8 (log page damaged: injected read fault at page 0 of process 0)
  emulated 0 of 3 log intervals (0 replay steps), 1 hole(s)
  $ ppd replay fig61.mpl --load cut.log --degraded
  debugging saved log cut.log (v2, 3 process(es))
  replayed 2 of 2 log intervals (8 replay steps); graph: 11 nodes, 20 edges

The replay watchdog bounds runaway replays: PPD060 (exit 7) by
default, a hole under --degraded:

  $ ppd flowback fig61.mpl --max-replay-steps 1
  execution finished normally
  PPD060 error at ?: replay watchdog: process 0 interval 0 exhausted the 1-step budget (raise --max-replay-steps, or --degraded to debug around it)
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [7]
  $ ppd flowback fig61.mpl --max-replay-steps 1 --degraded
  execution finished normally
  no events to debug
  history unavailable for p0 steps 0-8 (replay step budget exhausted)
  emulated 0 of 3 log intervals (0 replay steps), 1 hole(s)

A transient fault in a pooled replay is retried serially, so -j4
output under injected faults stays byte-identical to a clean -j1 run:

  $ ppd flowback fig61.mpl --depth 2 -j 1 > clean.out
  $ ppd flowback fig61.mpl --depth 2 -j 4 --fault exec.pool.task:1 > faulted.out
  $ cmp clean.out faulted.out && echo identical
  identical

The two execution engines (DESIGN §15): the default bytecode VM and
the AST-walking interpreter oracle are observationally identical —
same run output, byte-identical saved log segments, and byte-identical
flowback answers, including under -j4 replay with an injected
transient fault:

  $ ppd run fig61.mpl --engine interp
  42
  $ ppd log fig61.mpl --save vm.seg --engine vm > /dev/null
  $ ppd log fig61.mpl --save oracle.seg --engine interp > /dev/null
  $ cmp vm.seg oracle.seg && echo identical
  identical
  $ ppd flowback buggy.mpl --depth 2 > fb-vm.out
  $ ppd flowback buggy.mpl --depth 2 --engine interp > fb-oracle.out
  $ cmp fb-vm.out fb-oracle.out && echo identical
  identical
  $ ppd flowback fig61.mpl --depth 2 -j 4 --fault exec.pool.task:1 --engine interp > faulted-oracle.out
  $ cmp clean.out faulted-oracle.out && echo identical
  identical

The ordering-based logging tier (DESIGN §16): --log-mode order records
only the sync-event partial order plus a full-state checkpoint every
--ckpt-every machine steps. Stats and fsck expose the tier and the
checkpoint count:

  $ ppd log fig61.mpl --save order.seg --log-mode order --ckpt-every 8 | tail -n 3
  16 entries, 253 bytes serialized (v2; 228 as v1)
  order tier (rr:3, vm engine), 2 checkpoint(s)
  saved to order.seg
  $ ppd log stats order.seg
  order.seg: v2, 253 bytes, interval index intact
  3 process(es), 16 record(s), 0 interval(s)
  order tier (rr:3, vm engine, 1000000-step budget), 2 checkpoint(s)
  $ ppd fsck order.seg | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["tier"], d["checkpoints"], d["clean"])'
  order 2 True

Debugging an order log reconstructs the content log by re-executing
under the recorded scheduler, so the answers are byte-identical to
debugging the content recording (line 1 names the loaded file, so the
comparison starts at line 2) — also under -j4 with an injected
transient fault:

  $ ppd flowback fig61.mpl --load run.log --depth 2 | tail -n +2 > fb.content
  $ ppd flowback fig61.mpl --load order.seg --depth 2 | tail -n +2 > fb.order
  $ cmp fb.content fb.order && echo identical
  identical
  $ ppd flowback fig61.mpl --load order.seg --depth 2 -j 4 --fault exec.pool.task:1 | tail -n +2 > fb.order4
  $ cmp fb.content fb.order4 && echo identical
  identical

`ppd log compact` turns a saved content log into the order tier — the
sync skeleton is extracted and the checkpoints are synthesized from
the recorded snapshots, then the result is verified by a full
reconstruction before it is written:

  $ ppd log compact fig61.mpl run.log -o compacted.seg --ckpt-every 8
  run.log: 291 bytes (content) -> compacted.seg: 253 bytes (order, 16 sync record(s), 2 checkpoint(s))
  $ ppd flowback fig61.mpl --load compacted.seg --depth 2 | tail -n +2 > fb.compact
  $ cmp fb.content fb.compact && echo identical
  identical

Reconstruction validates the re-execution against the recorded order.
A different scheduler or a different program is a different
computation: PPD061, exit 8 — never silently wrong history:

  $ ppd log compact fig61.mpl run.log -o bad.seg --sched rr:1
  PPD061 error at ?: order-log reconstruction diverged: process 0 diverged: log records [sync s7 seq=2 step=3 spawn p2 (f1)], re-execution did [sync s7 seq=2 step=4 spawn p2 (f1)] (the program text, analysis flags and build must match the recording run)
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [8]
  $ ppd flowback buggy.mpl --load order.seg --depth 2 > /dev/null
  PPD061 error at ?: order-log reconstruction diverged: re-execution created 1 process(es), the log records 3 (the program text, analysis flags and build must match the recording run)
  1 finding(s): 1 error(s), 0 warning(s), 0 note(s)
  [8]

The replay watchdog charges speculative prefetch replays against
--max-replay-steps too: once the budget is spent, the controller stops
speculating (ppd.controller.prefetched stays 0) instead of burning
unbounded work behind --degraded holes:

  $ ppd flowback fig61.mpl --depth 2 -j 2 --degraded --max-replay-steps 1 --profile-out exhausted.json > /dev/null
  $ python3 -c 'import json; print(json.load(open("exhausted.json"))["counters"].get("ppd.controller.prefetched", 0))'
  0
  $ ppd flowback fig61.mpl --depth 2 -j 2 --profile-out roomy.json > /dev/null
  $ python3 -c 'import json; print(json.load(open("roomy.json"))["counters"].get("ppd.controller.prefetched", 0))'
  2

Damage reports carry the exact absolute offset of the enclosing frame
start, including for cuts inside the footer (run.log's footer frame
starts at byte 224):

  $ head -c 230 run.log > footcut.log
  $ ppd fsck footcut.log | python3 -c 'import json,sys; print(json.load(sys.stdin)["damage"])'
  [{'offset': 224, 'reason': 'frame extends past the end of the file'}]

`ppd log repair` rewrites everything salvageable from a damaged log
into a fresh, fully verified segment. On a clean input it is a
byte-faithful rebuild (exit 0); on the truncated log it keeps the
clean page prefix and reports each dropped page (exit 4); the output
always fscks clean:

  $ ppd log repair run.log -o run.repaired
  run.log: v2 content tier -> run.repaired: 292 bytes, 3 page(s), 22 record(s), 0 checkpoint(s)
  clean: no bytes dropped
  $ ppd log repair cut.log -o cut.repaired
  cut.log: v2 content tier -> cut.repaired: 184 bytes, 2 page(s), 12 record(s), 0 checkpoint(s)
  dropped: suffix at byte 127 (frame extends past the end of the file)
  [4]
  $ ppd fsck cut.repaired | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["clean"], d["records"])'
  True 12

A mid-page bit flip (the chaos sweep's flip artifact) damages one
page; repair drops exactly that page, keeps the rest, and the
repaired log is clean again:

  $ ppd log fig61.mpl --save flip.log --fault store.segment.write:2:flip --fault-seed 7 > /dev/null
  $ ppd fsck flip.log > /dev/null
  [4]
  $ ppd log repair flip.log -o flip.repaired
  flip.log: v2 content tier -> flip.repaired: 226 bytes, 2 page(s), 17 record(s), 0 checkpoint(s)
  dropped: pid 2 page 0 at byte 8, 5 record(s) (payload fails its CRC-32 check)
  [4]
  $ ppd fsck flip.repaired | python3 -c 'import json,sys; d=json.load(sys.stdin); print(d["clean"], d["procs"])'
  True 2
