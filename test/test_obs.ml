(* The observability layer (lib/obs): counters must be exact under
   domain parallelism, spans must nest per domain, everything must be a
   no-op while disabled, and both export formats must be well-formed.

   The registry is global state, so every test restores the disabled
   default on the way out. *)

let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_counter_basics () =
  with_obs (fun () ->
      let c = Obs.counter "test.basic" in
      Alcotest.(check int) "starts at zero" 0 (Obs.value c);
      Obs.add c 5;
      Obs.incr c;
      Alcotest.(check int) "sums" 6 (Obs.value c);
      Alcotest.(check int) "same name returns the same counter" 6
        (Obs.value (Obs.counter "test.basic"));
      let g = Obs.gauge_max "test.gauge" in
      Obs.observe g 4;
      Obs.observe g 9;
      Obs.observe g 2;
      Alcotest.(check int) "gauge keeps the max" 9 (Obs.value g);
      Alcotest.(check bool) "registered names are exported" true
        (List.mem_assoc "test.basic" (Obs.counters ())))

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.disabled" in
  Obs.add c 100;
  Obs.incr c;
  Obs.observe (Obs.gauge_max "test.disabled.max") 7;
  Alcotest.(check int) "counter untouched while off" 0 (Obs.value c);
  let r = Obs.with_span "dead" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span is transparent while off" 42 r;
  Alcotest.(check int) "no spans recorded while off" 0
    (List.length (Obs.spans ()))

let test_span_nesting () =
  with_obs (fun () ->
      Obs.phase "outer" (fun () ->
          Obs.with_span "inner1" (fun () -> ());
          Obs.with_span ~arg:"p0#1" "inner2" (fun () -> ()));
      (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Obs.with_span "after" (fun () -> ());
      let sp = Obs.spans () in
      let names = List.map (fun s -> s.Obs.sp_name) sp in
      Alcotest.(check (list string))
        "completion order" [ "inner1"; "inner2"; "outer"; "boom"; "after" ]
        names;
      let depth n =
        (List.find (fun s -> s.Obs.sp_name = n) sp).Obs.sp_depth
      in
      Alcotest.(check int) "inner1 nested" 1 (depth "inner1");
      Alcotest.(check int) "inner2 nested" 1 (depth "inner2");
      Alcotest.(check int) "outer is a root" 0 (depth "outer");
      (* the raising span closed itself and restored the depth *)
      Alcotest.(check int) "boom recorded despite the exception" 0
        (depth "boom");
      Alcotest.(check int) "depth restored after the exception" 0
        (depth "after");
      let outer = List.find (fun s -> s.Obs.sp_name = "outer") sp in
      Alcotest.(check string) "phase category" "phase" outer.Obs.sp_cat;
      let inner2 = List.find (fun s -> s.Obs.sp_name = "inner2") sp in
      Alcotest.(check (option string)) "arg carried" (Some "p0#1")
        inner2.Obs.sp_arg;
      Alcotest.(check bool) "durations are non-negative" true
        (List.for_all (fun s -> s.Obs.sp_dur_ns >= 0) sp))

(* Nesting depth is domain-local: a span opened on a worker domain is a
   root of that domain's track, not a child of whatever the spawning
   domain had open. *)
let test_span_depth_per_domain () =
  with_obs (fun () ->
      Obs.with_span "main-outer" (fun () ->
          let d =
            Domain.spawn (fun () -> Obs.with_span "worker" (fun () -> ()))
          in
          Domain.join d);
      let sp = Obs.spans () in
      let worker = List.find (fun s -> s.Obs.sp_name = "worker") sp in
      let outer = List.find (fun s -> s.Obs.sp_name = "main-outer") sp in
      Alcotest.(check int) "worker span is a root in its own domain" 0
        worker.Obs.sp_depth;
      Alcotest.(check bool) "distinct domain ids" true
        (worker.Obs.sp_domain <> outer.Obs.sp_domain))

let test_json_export () =
  with_obs (fun () ->
      Obs.add (Obs.counter "test.json.count") 3;
      Obs.with_span ~cat:"phase" ~arg:"a\"b\\c" "ph" (fun () -> ());
      let j = Obs.to_json () in
      Alcotest.(check bool) "object prefix" true
        (String.length j > 13 && String.sub j 0 13 = "{\"version\":1,");
      Alcotest.(check bool) "counter serialized" true
        (contains j "\"test.json.count\":3");
      Alcotest.(check bool) "arg escaped" true
        (contains j "\"a\\\"b\\\\c\"");
      let t = Obs.to_chrome_trace () in
      Alcotest.(check bool) "trace is a JSON array" true
        (String.length t >= 2 && t.[0] = '[' && t.[String.length t - 1] = ']');
      Alcotest.(check bool) "complete event present" true
        (contains t "\"ph\":\"X\"");
      Alcotest.(check bool) "counter sample present" true
        (contains t "\"ph\":\"C\""))

let test_reset () =
  with_obs (fun () ->
      let c = Obs.counter "test.reset" in
      Obs.add c 9;
      Obs.with_span "s" (fun () -> ());
      Obs.reset ();
      Alcotest.(check int) "counter zeroed" 0 (Obs.value c);
      Alcotest.(check int) "spans dropped" 0 (List.length (Obs.spans ())))

(* The load-bearing property: concurrent [incr]/[add] from several
   domains lose no updates (the counters the gate checks for coherence
   are bumped from pool workers), and a gauge keeps the global max. *)
let counter_atomicity_prop =
  Util.qtest ~count:20 "counter sums are exact across domains"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 2_000))
    (fun (domains, per) ->
      Obs.enable ();
      Obs.reset ();
      let c = Obs.counter "test.atomic" in
      let g = Obs.gauge_max "test.atomic.max" in
      let ds =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per do
                  Obs.incr c;
                  Obs.observe g ((d * per) + i)
                done))
      in
      List.iter Domain.join ds;
      let total = Obs.value c in
      let mx = Obs.value g in
      Obs.disable ();
      Obs.reset ();
      total = domains * per && mx = domains * per)

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter basics" `Quick test_counter_basics;
      Alcotest.test_case "disabled mode is a no-op" `Quick
        test_disabled_is_noop;
      Alcotest.test_case "span nesting and exception safety" `Quick
        test_span_nesting;
      Alcotest.test_case "span depth is per-domain" `Quick
        test_span_depth_per_domain;
      Alcotest.test_case "JSON and Chrome trace export" `Quick
        test_json_export;
      Alcotest.test_case "reset" `Quick test_reset;
      counter_atomicity_prop;
    ] )
