The multi-session debugging daemon, driven in --rpc mode: one JSON
request per line on stdin, one id-matched response per line on
stdout — the same dispatcher the socket transports use, minus the
socket.

Record an execution to debug, and capture the one-shot CLI answers
the daemon must reproduce byte for byte:

  $ ppd example fig61 > fig61.mpl
  $ ppd log fig61.mpl --save fig61.seg > /dev/null
  $ ppd flowback fig61.mpl --load fig61.seg --depth 2 > flowback.one
  $ ppd replay fig61.mpl --load fig61.seg > replay.one

A helper that pulls the "output" field of the response with a given
id back out of a transcript:

  $ extract() { python3 -c '
  > import json, sys
  > want = int(sys.argv[1])
  > for line in sys.stdin:
  >     r = json.loads(line)
  >     if r["id"] == want:
  >         sys.stdout.write(r["result"]["output"])
  > ' "$1"; }

A full conversation — open, query twice (the second is answered from
the shared fragment cache), inspect, close — plus every way a client
can get it wrong. Responses arrive in request order with ids echoed;
protocol failures are error responses, never dropped lines:

  $ ppd serve --rpc <<'EOF' > rpc.out
  > {"id":1,"method":"ping"}
  > {"id":2,"method":"open","params":{"log":"fig61.seg","program":"fig61.mpl"}}
  > {"id":3,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":4,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":5,"method":"stats","params":{"handle":1}}
  > {"id":6,"method":"serverStats"}
  > {"id":7,"method":"close","params":{"handle":1}}
  > {"id":8,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":9,"method":"frobnicate"}
  > {"id":10,"method":"flowback","params":{}}
  > this is not json
  > EOF
  $ sed -E 's/"(uptimeNs|queueWaitNs|totalWaitNs)":[0-9]+/"\1":_/g' rpc.out
  {"id":1,"result":{"pong":true}}
  {"id":2,"result":{"handle":1,"version":2,"nprocs":3,"bytes":291,"refs":1}}
  {"id":3,"result":{"output":"debugging saved log fig61.seg (v2, 3 process(es))\nflowback from:\n  [p0] EXIT main\nemulated 1 of 3 log intervals (6 replay steps)\n","replays":1,"replaySteps":6,"holes":0,"cacheHits":0,"cacheMisses":1}}
  {"id":4,"result":{"output":"debugging saved log fig61.seg (v2, 3 process(es))\nflowback from:\n  [p0] EXIT main\nemulated 1 of 3 log intervals (6 replay steps)\n","replays":1,"replaySteps":6,"holes":0,"cacheHits":1,"cacheMisses":0}}
  {"id":5,"result":{"log":"fig61.seg","version":2,"nprocs":3,"bytes":291,"refs":1,"fragCache":{"size":1,"hits":1,"misses":1,"inserts":1,"hitRate":0.5}}}
  {"id":6,"result":{"uptimeNs":_,"jobs":1,"openLogs":1,"openHandles":1,"recoverable":0,"gate":{"active":0,"queued":0,"admitted":2,"shed":0,"deadlineDrops":0,"totalWaitNs":_},"breakers":[{"key":"fig61.seg","state":"closed","failures":0,"trips":0,"fastFails":0}],"memory":{"budgetCap":0,"budgetUsed":0,"pageBytes":768,"fragBytes":480},"sessions":[{"id":1,"requests":6,"errors":0,"openLogs":1,"cacheHits":1,"cacheMisses":1,"replaySteps":12,"queueWaitNs":_,"shed":0}]}}
  {"id":7,"result":{"closed":true,"refs":0}}
  {"id":8,"error":{"code":"PPD083","message":"no open log with handle 1 in this session"}}
  {"id":9,"error":{"code":"PPD081","message":"unknown method \"frobnicate\" (known: ping open close attach flowback replay race proto fsck profile stats serverStats)"}}
  {"id":10,"error":{"code":"PPD082","message":"missing param \"handle\""}}
  {"id":null,"error":{"code":"PPD080","message":"invalid JSON: invalid literal (expected true)"}}

The daemon's flowback answer is byte-identical to the one-shot CLI:

  $ extract 3 < rpc.out | cmp - flowback.one && echo byte-identical
  byte-identical
  $ extract 4 < rpc.out | cmp - flowback.one && echo byte-identical
  byte-identical

The same holds with the shared pool (-j 4), for both flowback and
replay:

  $ ppd serve --rpc -j 4 <<'EOF' > rpc4.out
  > {"id":1,"method":"open","params":{"log":"fig61.seg","program":"fig61.mpl"}}
  > {"id":2,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":3,"method":"replay","params":{"handle":1}}
  > {"id":4,"method":"close","params":{"handle":1}}
  > EOF
  $ extract 2 < rpc4.out | cmp - flowback.one && echo byte-identical
  byte-identical
  $ extract 3 < rpc4.out | cmp - replay.one && echo byte-identical
  byte-identical

An injected transient pool fault degrades only the request it hits:
the pooled replay retries serially, the answer is still
byte-identical, and the rest of the conversation never notices:

  $ ppd serve --rpc -j 4 --fault exec.pool.task:1 <<'EOF' > rpcf.out
  > {"id":1,"method":"open","params":{"log":"fig61.seg","program":"fig61.mpl"}}
  > {"id":2,"method":"replay","params":{"handle":1,"degraded":true}}
  > {"id":3,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":4,"method":"close","params":{"handle":1}}
  > EOF
  $ extract 2 < rpcf.out | cmp - replay.one && echo byte-identical
  byte-identical
  $ extract 3 < rpcf.out | cmp - flowback.one && echo byte-identical
  byte-identical

Order-tier logs (DESIGN §16) are served too: the per-request
controller reconstructs the content log behind the scenes, so the
flowback answer matches the content recording from line 2 on (line 1
names the loaded file). A program that does not match the recording
diverges as a PPD061 error response on that request — the daemon keeps
serving:

  $ ppd example buggy_min > buggy.mpl
  $ ppd log fig61.mpl --save order.seg --log-mode order --ckpt-every 8 > /dev/null
  $ ppd serve --rpc <<'EOF' > rpco.out
  > {"id":1,"method":"open","params":{"log":"order.seg","program":"fig61.mpl"}}
  > {"id":2,"method":"flowback","params":{"handle":1,"depth":2}}
  > {"id":3,"method":"open","params":{"log":"order.seg","program":"buggy.mpl"}}
  > {"id":4,"method":"flowback","params":{"handle":2,"depth":2}}
  > {"id":5,"method":"ping"}
  > EOF
  $ cat rpco.out
  {"id":1,"result":{"handle":1,"version":2,"nprocs":3,"bytes":253,"refs":1}}
  {"id":2,"result":{"output":"debugging saved log order.seg (v2, 3 process(es))\nflowback from:\n  [p0] EXIT main\nemulated 1 of 3 log intervals (6 replay steps)\n","replays":1,"replaySteps":6,"holes":0,"cacheHits":0,"cacheMisses":1}}
  {"id":3,"result":{"handle":2,"version":2,"nprocs":3,"bytes":253,"refs":1}}
  {"id":4,"error":{"code":"PPD061","message":"order-log reconstruction diverged: re-execution created 1 process(es), the log records 3 (the program text, analysis flags and build must match the recording run)"}}
  {"id":5,"result":{"pong":true}}
  $ extract 2 < rpco.out | tail -n +2 > fb.order.body
  $ tail -n +2 flowback.one > fb.content.body
  $ cmp fb.order.body fb.content.body && echo identical
  identical
