(* Static potential-race detection (§7) and its relationship to the
   dynamic detector: static flags ⊇ dynamic findings. *)

open Analysis

let reports src = Static_race.analyze (Util.compile src)

let race_vars src =
  List.map (fun r -> r.Static_race.pr_var.Lang.Prog.vname) (reports src)
  |> List.sort_uniq compare

let test_racy_bank_flagged () =
  Alcotest.(check (list string)) "balance flagged" [ "balance" ]
    (race_vars Workloads.racy_bank);
  let ww =
    List.exists (fun r -> r.Static_race.pr_write_write) (reports Workloads.racy_bank)
  in
  Alcotest.(check bool) "write/write present" true ww

let test_fixed_bank_mutex_discharges_writes () =
  (* the two withdraw instances hold the mutex: no write/write race
     remains. main's final read of balance sits after both joins, which
     the statement-level MHP analysis now proves, so the whole program
     is race-free *)
  Alcotest.(check (list string)) "fixed bank race-free" []
    (race_vars Workloads.fixed_bank)

let test_sv_race_flagged () =
  Alcotest.(check (list string)) "SV flagged" [ "SV" ] (race_vars Workloads.sv_race)

let test_counter_policy () =
  let ww src =
    List.exists (fun r -> r.Static_race.pr_write_write) (reports src)
  in
  Alcotest.(check bool) "racy counter has write/write" true
    (ww (Workloads.counter ~workers:3 ~incs:2 ~mutex:false));
  Alcotest.(check bool) "locked counter has none" false
    (ww (Workloads.counter ~workers:3 ~incs:2 ~mutex:true))

let test_self_concurrency () =
  (* one worker spawned twice races with itself *)
  let src =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() {
      var a = spawn w();
      var b = spawn w();
      join(a); join(b);
    }
    |}
  in
  Alcotest.(check (list string)) "self race" [ "g" ] (race_vars src);
  (* spawned once and main never touching g: nothing to flag *)
  let single =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() { var a = spawn w(); join(a); }
    |}
  in
  Alcotest.(check (list string)) "single spawn clean" [] (race_vars single)

let test_spawn_in_loop_is_many () =
  let src =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() {
      var i = 0;
      while (i < 3) {
        spawn w();
        i = i + 1;
      }
    }
    |}
  in
  Alcotest.(check (list string)) "loop spawn flagged" [ "g" ] (race_vars src)

let test_main_vs_worker () =
  let src =
    {|
    shared int g = 0;
    func w() { g = 1; }
    func main() {
      spawn w();
      print(g);
    }
    |}
  in
  (* read in main vs write in w, unordered (no join) *)
  Alcotest.(check (list string)) "main races with worker" [ "g" ] (race_vars src)

let test_lockset_must_hold () =
  (* a conditional release breaks must-hold *)
  let src =
    {|
    shared int g = 0;
    sem m = 1;
    func w(c) {
      P(m);
      if (c > 0) {
        V(m);
      }
      g = g + 1;   // lock NOT must-held here
      if (c <= 0) {
        V(m);
      }
    }
    func main() {
      var a = spawn w(1);
      var b = spawn w(0);
      join(a); join(b);
    }
    |}
  in
  Alcotest.(check (list string)) "conditional unlock flagged" [ "g" ] (race_vars src)

let test_held_at () =
  let p =
    Util.compile
      {|
      shared int g = 0;
      sem m = 1;
      func main() {
        P(m);
        g = 1;
        V(m);
        g = 2;
      }
      |}
  in
  let f = p.funcs.(p.main_fid) in
  let cfg = Cfg.build p f in
  (* g = 1 holds m; g = 2 does not *)
  let sid_of label =
    let s = ref (-1) in
    Array.iter
      (fun (st : Lang.Prog.stmt) ->
        if Lang.Prog.stmt_label st = label then s := st.sid)
      p.stmts;
    !s
  in
  Alcotest.(check (list int)) "held inside" [ 0 ]
    (Static_race.held_at p cfg cfg.Cfg.node_of_sid.(sid_of "g = 1"));
  Alcotest.(check (list int)) "released after" []
    (Static_race.held_at p cfg cfg.Cfg.node_of_sid.(sid_of "g = 2"))

(* Soundness w.r.t. the dynamic detector: any variable the dynamic
   detector catches in some schedule is statically flagged. *)
let static_covers_dynamic =
  Util.qtest ~count:30 "static potential races cover dynamic races"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let src = Gen.parallel ~protect:`Sometimes seed in
      let prog = Util.compile src in
      let obs = Ppd.Pardyn.observer prog in
      let m =
        Runtime.Machine.create
          ~sched:(Runtime.Sched.Random_seed sseed)
          ~hooks:(Ppd.Pardyn.factory obs) prog
      in
      ignore (Runtime.Machine.run m);
      let dynamic =
        (Ppd.Race.detect (Ppd.Pardyn.finish obs)).Ppd.Race.races
        |> List.map (fun r -> r.Ppd.Race.rc_var.Lang.Prog.vid)
        |> List.sort_uniq compare
      in
      let static =
        Static_race.analyze prog
        |> List.map (fun r -> r.Static_race.pr_var.Lang.Prog.vid)
        |> List.sort_uniq compare
      in
      List.for_all (fun v -> List.mem v static) dynamic)

let test_report_rendering () =
  let p = Util.compile Workloads.racy_bank in
  let s = Format.asprintf "%a" (Static_race.pp_report p) (Static_race.analyze p) in
  Alcotest.(check bool) "names the variable" true (Util.contains ~sub:"balance" s);
  Alcotest.(check bool) "names the function" true (Util.contains ~sub:"withdraw" s);
  let clean =
    Util.compile
      "shared int g = 0;\nfunc w() { g = g + 1; }\nfunc main() { var a = spawn w(); join(a); }"
  in
  let s2 =
    Format.asprintf "%a" (Static_race.pp_report clean) (Static_race.analyze clean)
  in
  Alcotest.(check bool) "clean message" true (Util.contains ~sub:"no potential" s2)

let test_interprocedural_locksets () =
  (* a lock acquired in a helper protects the caller's accesses: the
     must-acquire summary keeps it held across the call return, and the
     may-release summary is what clobbers — not the mere presence of a
     call *)
  let src which =
    Printf.sprintf
      {|
    shared int g = 0;
    sem m = 1;
    func lock() { P(m); }
    func unlock() { V(m); }
    func worker() {
      %s
      g = g + 1;
      %s
    }
    func main() {
      var a = spawn worker();
      var b = spawn worker();
      join(a);
      join(b);
    }
    |}
      (fst which) (snd which)
  in
  Alcotest.(check int) "helper-wrapped lock discharges the race" 0
    (List.length (reports (src ("lock();", "unlock();"))));
  Alcotest.(check bool) "without the lock helpers the race stays" true
    (reports (src ("", "")) <> []);
  (* a helper that conditionally releases must clobber (may-release) *)
  let leaky =
    {|
    shared int g = 0;
    sem m = 1;
    func maybe_unlock(x) {
      if (x > 0) {
        V(m);
      }
    }
    func worker(x) {
      P(m);
      maybe_unlock(x);
      g = g + 1;
      V(m);
    }
    func main() {
      var a = spawn worker(0);
      var b = spawn worker(1);
      join(a);
      join(b);
    }
    |}
  in
  Alcotest.(check bool) "may-release helper breaks must-held" true
    (reports leaky <> [])

let test_summaries_recursion_conservative () =
  (* a recursive lock helper promises nothing: the access is not
     considered protected *)
  let src =
    {|
    shared int g = 0;
    sem m = 1;
    func lockr(n) {
      if (n > 0) {
        var x = lockr(n - 1);
      }
      P(m);
      return 0;
    }
    func worker() {
      var x = lockr(0);
      g = g + 1;
      V(m);
    }
    func main() {
      var a = spawn worker();
      var b = spawn worker();
      join(a);
      join(b);
    }
    |}
  in
  Alcotest.(check bool) "recursive helper keeps the race flagged" true
    (reports src <> [])

let suite =
  ( "static-race",
    [
      Alcotest.test_case "interprocedural locksets" `Quick
        test_interprocedural_locksets;
      Alcotest.test_case "recursive summaries conservative" `Quick
        test_summaries_recursion_conservative;
      Alcotest.test_case "racy bank flagged" `Quick test_racy_bank_flagged;
      Alcotest.test_case "fixed bank: mutex discharges writes" `Quick
        test_fixed_bank_mutex_discharges_writes;
      Alcotest.test_case "sv race flagged" `Quick test_sv_race_flagged;
      Alcotest.test_case "counter policy" `Quick test_counter_policy;
      Alcotest.test_case "self concurrency" `Quick test_self_concurrency;
      Alcotest.test_case "spawn in loop" `Quick test_spawn_in_loop_is_many;
      Alcotest.test_case "main vs worker" `Quick test_main_vs_worker;
      Alcotest.test_case "must-hold locksets" `Quick test_lockset_must_hold;
      Alcotest.test_case "held_at" `Quick test_held_at;
      static_covers_dynamic;
      Alcotest.test_case "report rendering" `Quick test_report_rendering;
    ] )
