(* The fault-injection substrate (lib/fault) and the degraded-mode
   debugging built on it: crash-at-byte log sinks, torn and flipped
   pages, transient pool failures with bounded retry, the replay
   watchdog, and the explicit holes damaged history leaves in the
   dynamic graph. *)

module L = Trace.Log
module S = Store.Segment
module C = Ppd.Controller

let with_faults ?seed spec f =
  match Fault.arm ?seed spec with
  | Error e -> Alcotest.failf "arm %S failed unexpectedly: %s" spec e
  | Ok () -> Fun.protect ~finally:Fault.disarm f

let with_tmp f =
  let path = Filename.temp_file "ppd_fault" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let logged src =
  let prog = Lang.Compile.compile src in
  let eb = Analysis.Eblock.analyze prog in
  let _, log, _ = Trace.Logger.run_logged eb in
  (eb, log)

(* Stream an instrumented run of [src] into a segment writer at [path],
   with whatever fault plan is armed; returns the in-memory log and the
   writer's cause of death (if any). *)
let stream_to ~path src =
  let prog = Lang.Compile.compile src in
  let eb = Analysis.Eblock.analyze prog in
  let w = S.Writer.to_file path in
  let logger = Trace.Logger.create ~sink:(S.Writer.sink w) eb in
  let m = Runtime.Machine.create ~hooks:(Trace.Logger.factory logger) prog in
  ignore (Runtime.Machine.run m);
  let log = Trace.Logger.finish logger in
  S.Writer.close w;
  (log, S.Writer.failure w)

(* -------------------------------------------------------------- *)
(* Spec parsing and firing semantics *)

let test_spec_parsing () =
  let ok s = match Fault.arm s with Ok () -> Fault.disarm () | Error e ->
    Alcotest.failf "spec %S rejected: %s" s e
  in
  let err s =
    match Fault.arm s with
    | Error _ -> Alcotest.(check bool) "stays disarmed" false (Fault.armed ())
    | Ok () ->
      Fault.disarm ();
      Alcotest.failf "spec %S accepted" s
  in
  ok "trace.sink:100";
  ok "store.segment.write:2:flip";
  ok "a:1, b:2:torn ,c:3";
  ok "exec.pool.task:1:transient";
  err "";
  err "trace.sink";
  err "trace.sink:x";
  err "trace.sink:-1";
  err "trace.sink:1:frobnicate";
  err "a:1,b";
  (* all-or-nothing: one bad entry arms nothing *)
  err "trace.sink:100,bad"

let test_fire_once_at_nth_arrival () =
  let s = Fault.site "test.point" in
  Alcotest.(check bool) "disarmed fires nothing" true (Fault.fire s = None);
  with_faults "test.point:3" (fun () ->
      let hits =
        List.init 6 (fun _ ->
            match Fault.fire s with Some _ -> 1 | None -> 0)
      in
      Alcotest.(check (list int)) "only the 3rd arrival" [ 0; 0; 1; 0; 0; 0 ]
        hits;
      Alcotest.(check int) "fired count" 1 (Fault.fired_count ()));
  (* re-arming resets arrivals: the same spec fires again *)
  with_faults "test.point:3" (fun () ->
      ignore (Fault.fire s);
      ignore (Fault.fire s);
      Alcotest.(check bool) "3rd arrival after re-arm" true
        (Fault.fire s <> None))

let test_fire_at_threshold () =
  let s = Fault.site "test.bytes" in
  with_faults "test.bytes:100:crash" (fun () ->
      Alcotest.(check bool) "below threshold" true
        (Fault.fire_at s ~pos:99 = None);
      (match Fault.fire_at s ~pos:130 with
      | Some (Fault.Crash, 100) -> ()
      | _ -> Alcotest.fail "crossing pos fires with the exact threshold");
      Alcotest.(check bool) "fires only once" true
        (Fault.fire_at s ~pos:200 = None))

let test_mix_deterministic () =
  let s = Fault.site "test.mix" in
  with_faults ~seed:7 "test.mix:1" (fun () ->
      let a = Fault.mix s 42 in
      Alcotest.(check int) "same seed, same salt" a (Fault.mix s 42);
      Alcotest.(check bool) "salt matters" true (a <> Fault.mix s 43);
      Alcotest.(check bool) "non-negative" true (a >= 0))

(* -------------------------------------------------------------- *)
(* Store faults: the durable prefix always survives *)

let test_sink_crash_leaves_durable_prefix () =
  (* crash the sink at byte 120: exactly 120 bytes reach disk, fsck
     reports the damage, and the salvage recovers intact records only *)
  let log, failure =
    with_tmp (fun path ->
        let r =
          with_faults "trace.sink:120" (fun () ->
              stream_to ~path Workloads.fig61)
        in
        let size =
          In_channel.with_open_bin path (fun ic ->
              Int64.to_int (In_channel.length ic))
        in
        Alcotest.(check int) "exactly 120 bytes on disk" 120 size;
        let rp = S.fsck path in
        Alcotest.(check bool) "fsck flags the damage" false rp.S.fk_clean;
        (* the salvaged log is a per-pid prefix of the real one *)
        let salvaged = S.load path in
        Alcotest.(check bool) "salvage returns a prefix" true
          (salvaged.L.nprocs <= (fst r).L.nprocs);
        r)
  in
  (match failure with
  | Some reason ->
    Alcotest.(check bool) "death names the byte" true
      (Util.contains ~sub:"120" reason)
  | None -> Alcotest.fail "writer must report its injected death");
  Alcotest.(check bool) "in-memory log unaffected" true (L.entry_count log > 0)

let test_flip_detected_by_fsck () =
  with_tmp (fun path ->
      let _log, failure =
        with_faults ~seed:3 "store.segment.write:2:flip" (fun () ->
            stream_to ~path Workloads.fig61)
      in
      Alcotest.(check bool) "flip is not fatal to the writer" true
        (failure = None);
      let rp = S.fsck path in
      Alcotest.(check bool) "fsck finds the corrupt page" false rp.S.fk_clean;
      Alcotest.(check bool) "a page row carries the error" true
        (List.exists (fun p -> p.S.fp_error <> None) rp.S.fk_pages))

let test_enospc_and_torn_recoverable () =
  List.iter
    (fun kind ->
      with_tmp (fun path ->
          let _log, _failure =
            with_faults
              (Printf.sprintf "store.segment.write:2:%s" kind)
              (fun () -> stream_to ~path Workloads.fig61)
          in
          (* damage or not, the file must stay loadable (salvage) and
             fsck must terminate with a report *)
          let rp = S.fsck path in
          ignore (S.load path);
          Alcotest.(check bool)
            (kind ^ " keeps a parsable prefix")
            true
            (rp.S.fk_records >= 0)))
    [ "torn"; "short"; "enospc" ]

let test_fsck_clean_run () =
  with_tmp (fun path ->
      let log, failure = stream_to ~path Workloads.fig61 in
      Alcotest.(check bool) "no injected death" true (failure = None);
      let rp = S.fsck path in
      Alcotest.(check bool) "clean" true rp.S.fk_clean;
      Alcotest.(check bool) "indexed" true rp.S.fk_indexed;
      Alcotest.(check int) "every record accounted for"
        (L.entry_count log) rp.S.fk_records;
      Alcotest.(check bool) "no page errors" true
        (List.for_all (fun p -> p.S.fp_error = None) rp.S.fk_pages))

(* fsck checks every indexed page, not just the prefix: corrupt a page
   in the middle of the file without touching the footer and it is
   still pinpointed, with its offset *)
let test_fsck_finds_mid_file_damage () =
  let _eb, log = logged Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      let rp = S.fsck path in
      let victim =
        match rp.S.fk_pages with
        | _ :: p :: _ -> p
        | [ p ] -> p
        | [] -> Alcotest.fail "no pages"
      in
      let full = In_channel.with_open_bin path In_channel.input_all in
      let b = Bytes.of_string full in
      (* flip one payload byte inside the victim frame (skip the 9-byte
         frame header so the length field stays sane) *)
      let off = victim.S.fp_offset + 12 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
      let rp' = S.fsck path in
      Alcotest.(check bool) "damage found" false rp'.S.fk_clean;
      Alcotest.(check bool) "the victim page is the one flagged" true
        (List.exists
           (fun p ->
             p.S.fp_offset = victim.S.fp_offset && p.S.fp_error <> None)
           rp'.S.fk_pages))

(* -------------------------------------------------------------- *)
(* Degraded-mode controller: holes, retries, watchdog *)

let degraded = { C.default_config with degraded = true }

let test_transient_pool_fault_retried () =
  (* a transient failure in a pooled replay is retried serially and the
     -j4 graph stays byte-identical to the clean -j1 one *)
  let eb, log = logged Workloads.fig61 in
  let all_keys ctl =
    List.concat
      (List.init log.L.nprocs (fun pid ->
           List.init
             (Array.length (C.intervals ctl ~pid))
             (fun iv_id -> (pid, iv_id))))
  in
  let dump ctl = Format.asprintf "%a" Ppd.Dyn_graph.pp (C.graph ctl) in
  let serial = C.start eb log in
  C.build_intervals_par serial (all_keys serial);
  let clean = dump serial in
  with_faults "exec.pool.task:1" (fun () ->
      Exec.Pool.with_pool ~jobs:4 (fun pool ->
          let ctl = C.start ~pool eb log in
          C.build_intervals_par ctl (all_keys ctl);
          Alcotest.(check string) "graph identical under transient fault"
            clean (dump ctl);
          Alcotest.(check bool) "the retry was counted" true
            ((C.stats ctl).C.retried > 0);
          Alcotest.(check int) "no holes" 0 (C.stats ctl).C.holes))

let test_exhausted_retries_become_hole () =
  (* more transient failures than the retry budget: degraded mode
     declares a hole instead of propagating Fault.Injected *)
  let eb, log = logged Workloads.fig61 in
  with_faults "ppd.emulator.replay:1:transient,ppd.emulator.replay:2:transient,ppd.emulator.replay:3:transient"
    (fun () ->
      (* serial replays hit the emulator site every attempt: first
         build + 0 retries with retries = 0 *)
      let ctl =
        C.start ~config:{ degraded with C.retries = 0 } eb log
      in
      (* the budget fault clamps the replay; with degraded on we get a
         hole, not an exception *)
      ignore (C.build_interval ctl ~pid:0 ~iv_id:0);
      let holes = C.holes ctl in
      Alcotest.(check int) "one hole" 1 (List.length holes);
      let h = List.hd holes in
      Alcotest.(check int) "hole names the process" 0 h.C.h_pid;
      Alcotest.(check bool) "hole spans steps" true (h.C.h_seq_hi >= h.C.h_seq_lo))

let test_watchdog_raises_ppd060 () =
  let eb, log = logged Workloads.fig61 in
  let tight = { C.default_config with C.max_replay_steps = 1 } in
  let ctl = C.start ~config:tight eb log in
  (match C.build_interval ctl ~pid:0 ~iv_id:0 with
  | _ -> Alcotest.fail "expected Replay_overrun"
  | exception C.Replay_overrun { pid; iv_id; budget } ->
    Alcotest.(check int) "pid" 0 pid;
    Alcotest.(check int) "iv" 0 iv_id;
    Alcotest.(check int) "budget" 1 budget);
  (* same budget, degraded: a hole, and the query completes *)
  let ctl' = C.start ~config:{ tight with C.degraded = true } eb log in
  ignore (C.build_interval ctl' ~pid:0 ~iv_id:0);
  Alcotest.(check int) "hole declared" 1 (C.stats ctl').C.holes;
  Alcotest.(check bool) "reason mentions the budget" true
    (List.exists
       (fun h -> Util.contains ~sub:"budget" h.C.h_reason)
       (C.holes ctl'))

let test_damaged_page_is_hole_not_crash () =
  (* degraded paged flowback over an injected read fault: the query
     answers, with the damage spelled out *)
  let eb, log = logged Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      with_faults "store.segment.read:1" (fun () ->
          let ctl = C.start_paged ~config:degraded eb (S.open_file path) in
          (* build everything; the faulted page becomes holes, the rest
             assembles *)
          for pid = 0 to log.L.nprocs - 1 do
            Array.iteri
              (fun iv_id _ -> ignore (C.build_interval ctl ~pid ~iv_id))
              (C.intervals ctl ~pid)
          done;
          let holes = C.holes ctl in
          Alcotest.(check bool) "at least one hole" true (holes <> []);
          List.iter
            (fun h ->
              Alcotest.(check bool) "reason says damaged" true
                (Util.contains ~sub:"damaged" h.C.h_reason))
            holes;
          Alcotest.(check bool) "other intervals still built" true
            ((C.stats ctl).C.replays > 0);
          (* the hole lines render *)
          let txt =
            Format.asprintf "%t" (fun ppf -> Ppd.Flowback.pp_holes ctl ppf)
          in
          Alcotest.(check bool) "pp_holes mentions history" true
            (Util.contains ~sub:"history unavailable" txt)))

(* The acceptance sweep, library edition: truncate a saved v2 log at
   every byte offset; fsck always terminates with a report (or a clean
   PPD050 refusal), and a degraded paged debug pass over the remains
   never raises. *)
let test_truncation_sweep_degraded_debug () =
  let eb, log = logged Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      let full = In_channel.with_open_bin path In_channel.input_all in
      for len = 0 to String.length full - 1 do
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 len));
        (match S.fsck path with
        | rp -> Alcotest.(check bool) "truncation is never clean" false
                  rp.S.fk_clean
        | exception Trace.Log_io.Unreadable _ -> ());
        match S.open_file path with
        | exception Trace.Log_io.Unreadable _ -> ()
        | r ->
          let ctl = C.start_paged ~config:degraded eb r in
          for pid = 0 to S.nprocs r - 1 do
            match C.last_event_node ctl ~pid with
            | None -> ()
            | Some root -> ignore (Ppd.Flowback.backward_slice ctl root)
          done
      done)

(* -------------------------------------------------------------- *)
(* Satellite: v1 loader maps any decode failure to PPD050 *)

let expect_unreadable name path =
  match Trace.Log_io.load path with
  | _ -> Alcotest.failf "%s: expected Unreadable" name
  | exception Trace.Log_io.Unreadable { reason; _ } ->
    Alcotest.(check bool) (name ^ " has a reason") true (reason <> "")

let test_v1_garbage_is_ppd050 () =
  with_tmp (fun path ->
      (* valid v1 magic, garbage payload: Marshal raises something other
         than End_of_file/Failure on many inputs — all must map to
         Unreadable, never escape *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "PPDLOG1\n";
          Out_channel.output_string oc
            (String.init 64 (fun i -> Char.chr (i * 7 mod 256))));
      expect_unreadable "garbage after v1 magic" path;
      (* truncated magic *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "PPDL");
      expect_unreadable "truncated magic" path;
      (* valid magic, empty body *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "PPDLOG1\n");
      expect_unreadable "v1 magic, empty body" path)

let suite =
  ( "fault",
    [
      Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
      Alcotest.test_case "fires once at the Nth arrival" `Quick
        test_fire_once_at_nth_arrival;
      Alcotest.test_case "byte-positioned firing" `Quick test_fire_at_threshold;
      Alcotest.test_case "seeded mix is deterministic" `Quick
        test_mix_deterministic;
      Alcotest.test_case "sink crash leaves the durable prefix" `Quick
        test_sink_crash_leaves_durable_prefix;
      Alcotest.test_case "bit flip detected by fsck" `Quick
        test_flip_detected_by_fsck;
      Alcotest.test_case "torn/short/enospc stay recoverable" `Quick
        test_enospc_and_torn_recoverable;
      Alcotest.test_case "fsck on a clean file" `Quick test_fsck_clean_run;
      Alcotest.test_case "fsck pinpoints mid-file damage" `Quick
        test_fsck_finds_mid_file_damage;
      Alcotest.test_case "transient pool fault retried, graph identical"
        `Quick test_transient_pool_fault_retried;
      Alcotest.test_case "exhausted retries become a hole" `Quick
        test_exhausted_retries_become_hole;
      Alcotest.test_case "replay watchdog: raise vs degrade" `Quick
        test_watchdog_raises_ppd060;
      Alcotest.test_case "damaged page degrades to a hole" `Quick
        test_damaged_page_is_hole_not_crash;
      Alcotest.test_case "every-byte truncation sweep debugs cleanly" `Quick
        test_truncation_sweep_degraded_debug;
      Alcotest.test_case "v1 decode failures all map to PPD050" `Quick
        test_v1_garbage_is_ppd050;
    ] )
