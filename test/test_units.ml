(* Unit coverage for the small foundational modules: locations, values,
   tokens, schedulers and the dynamic-graph container. *)

let test_loc () =
  let a = Lang.Loc.make ~line:3 ~col:7 in
  let b = Lang.Loc.make ~line:3 ~col:9 in
  Alcotest.(check string) "pp" "3:7" (Lang.Loc.to_string a);
  Alcotest.(check string) "none" "?" (Lang.Loc.to_string Lang.Loc.none);
  Alcotest.(check bool) "order" true (Lang.Loc.compare a b < 0);
  Alcotest.(check bool) "line dominates" true
    (Lang.Loc.compare b (Lang.Loc.make ~line:4 ~col:1) < 0);
  Alcotest.(check bool) "is_none" true (Lang.Loc.is_none Lang.Loc.none);
  Alcotest.(check bool) "equal" true (Lang.Loc.equal a a)

let test_diag () =
  (match Lang.Diag.protect (fun () -> 42) with
  | Ok n -> Alcotest.(check int) "ok" 42 n
  | Error _ -> Alcotest.fail "expected ok");
  match
    Lang.Diag.protect (fun () ->
        Lang.Diag.error (Lang.Loc.make ~line:1 ~col:2) "boom %d" 7)
  with
  | Error (loc, msg) ->
    Alcotest.(check string) "msg" "boom 7" msg;
    Alcotest.(check int) "line" 1 loc.Lang.Loc.line
  | Ok _ -> Alcotest.fail "expected error"

let test_value () =
  let open Runtime.Value in
  Alcotest.(check int) "to_int" 5 (to_int (Vint 5));
  Alcotest.check_raises "undef" Undefined (fun () -> ignore (to_int Vundef));
  let a = Varr [| 1; 2 |] in
  let c = copy a in
  (match (a, c) with
  | Varr x, Varr y ->
    y.(0) <- 99;
    Alcotest.(check int) "deep copy" 1 x.(0)
  | _ -> Alcotest.fail "arrays");
  Alcotest.(check bool) "array equality by contents" true
    (equal (Varr [| 1; 2 |]) (Varr [| 1; 2 |]));
  Alcotest.(check bool) "inequality" false (equal (Vint 1) Vundef);
  Alcotest.(check string) "pp array" "[1, 2]" (to_string (Varr [| 1; 2 |]));
  Alcotest.(check string) "pp undef" "undef" (to_string Vundef)

let test_token_describe () =
  Alcotest.(check string) "keyword" "while" (Lang.Token.describe Lang.Token.WHILE);
  Alcotest.(check string) "ident class" "identifier"
    (Lang.Token.describe (Lang.Token.IDENT "zzz"));
  Alcotest.(check string) "pp carries payload" "IDENT(zzz)"
    (Lang.Token.to_string (Lang.Token.IDENT "zzz"))

let test_sched_round_robin () =
  let s = Runtime.Sched.create (Runtime.Sched.Round_robin 2) in
  let picks = List.init 6 (fun _ -> Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ]) in
  Alcotest.(check (list int)) "quantum 2 rotation" [ 0; 0; 1; 1; 2; 2 ] picks;
  (* a blocked current process forfeits the rest of its quantum *)
  let s = Runtime.Sched.create (Runtime.Sched.Round_robin 3) in
  let _ = Runtime.Sched.pick s ~runnable:[ 0; 1 ] in
  let p = Runtime.Sched.pick s ~runnable:[ 1 ] in
  Alcotest.(check int) "skips blocked" 1 p

(* The regression: [round_robin] used to trust the runnable list to be
   sorted (taking the first pid greater than the current one), so a
   shuffled list mis-rotated — the schedule must be a function of the
   runnable *set*, not its order. *)
let test_sched_round_robin_unsorted () =
  let picks order =
    let s = Runtime.Sched.create (Runtime.Sched.Round_robin 1) in
    List.init 8 (fun _ -> Runtime.Sched.pick s ~runnable:order)
  in
  let sorted = picks [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int))
    "sorted baseline" [ 0; 1; 2; 3; 0; 1; 2; 3 ] sorted;
  List.iter
    (fun order ->
      Alcotest.(check (list int))
        (Printf.sprintf "order %s"
           (String.concat "," (List.map string_of_int order)))
        sorted (picks order))
    [ [ 3; 2; 1; 0 ]; [ 2; 0; 3; 1 ]; [ 1; 3; 0; 2 ]; [ 0; 2; 1; 3 ] ];
  (* duplicates in the runnable list must not extend the rotation *)
  Alcotest.(check (list int))
    "duplicates collapse" [ 0; 1; 2; 3; 0; 1; 2; 3 ]
    (picks [ 2; 0; 2; 3; 1; 0 ])

let test_sched_random_deterministic () =
  let run () =
    let s = Runtime.Sched.create (Runtime.Sched.Random_seed 5) in
    List.init 20 (fun _ -> Runtime.Sched.pick s ~runnable:[ 0; 1; 2; 3 ])
  in
  Alcotest.(check (list int)) "seeded" (run ()) (run ())

let test_sched_scripted () =
  let s = Runtime.Sched.create (Runtime.Sched.Scripted [ 2; 2; 0; 9; 1 ]) in
  let p1 = Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ] in
  let p2 = Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ] in
  let p3 = Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ] in
  let p4 = Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ] in
  (* 9 is never runnable and is skipped *)
  Alcotest.(check (list int)) "script" [ 2; 2; 0; 1 ] [ p1; p2; p3; p4 ];
  (* exhausted script falls back to round robin *)
  let p5 = Runtime.Sched.pick s ~runnable:[ 0; 1; 2 ] in
  Alcotest.(check bool) "fallback picks a runnable" true (List.mem p5 [ 0; 1; 2 ])

let test_dyn_graph_container () =
  let open Ppd.Dyn_graph in
  let g = create () in
  Alcotest.(check int) "empty" 0 (nnodes g);
  let p = Util.compile "func main() { }" in
  ignore p;
  let n1 = add_node g ~pid:0 ~kind:(N_entry 0) ~label:"entry" () in
  let n2 =
    add_node g
      ~ref_:{ Runtime.Event.epid = 0; eseq = 5 }
      ~value:(Runtime.Value.Vint 7) ~pid:0 ~kind:(N_singular 3) ~label:"x = 7" ()
  in
  let n3 = add_node g ~owner:n2 ~pid:0 ~kind:(N_param 1) ~label:"%1" () in
  Alcotest.(check int) "three nodes" 3 (nnodes g);
  add_edge g ~src:n1 ~dst:n2 ~kind:Control;
  add_edge g ~src:n1 ~dst:n2 ~kind:Control;
  (* duplicate ignored *)
  Alcotest.(check int) "dedup edges" 1 (nedges g);
  Alcotest.(check (list int)) "preds" [ n1 ] (List.map fst (preds g n2));
  Alcotest.(check (list int)) "succs" [ n2 ] (List.map fst (succs g n1));
  Alcotest.(check bool) "ref lookup" true
    (find_ref g { Runtime.Event.epid = 0; eseq = 5 } = Some n2);
  Alcotest.(check bool) "missing ref" true
    (find_ref g { Runtime.Event.epid = 1; eseq = 5 } = None);
  Alcotest.(check (list int)) "members" [ n3 ] (members g n2);
  Alcotest.(check bool) "value" true
    ((node g n2).nd_value = Some (Runtime.Value.Vint 7));
  set_value g n2 (Runtime.Value.Vint 9);
  Alcotest.(check bool) "set_value" true
    ((node g n2).nd_value = Some (Runtime.Value.Vint 9));
  (* growth beyond the initial capacity *)
  for i = 0 to 99 do
    ignore (add_node g ~pid:1 ~kind:(N_singular i) ~label:"n" ())
  done;
  Alcotest.(check int) "growth" 103 (nnodes g);
  Alcotest.check_raises "bad edge" (Invalid_argument "Dyn_graph.add_edge: bad node id")
    (fun () -> add_edge g ~src:0 ~dst:9999 ~kind:Flow)

let test_interp_frame () =
  let p =
    Util.compile "func f(a, b) { var x = a; var arr[2]; return x + b; } func main() { }"
  in
  let frame =
    Runtime.Interp.make_frame p ~fid:0
      ~args:[ Runtime.Value.Vint 1; Runtime.Value.Vint 2 ]
      ~ret_lhs:None ~call_sid:None
  in
  let binds = Runtime.Interp.binds_of_frame p frame in
  Alcotest.(check (list string)) "param names" [ "a"; "b" ]
    (List.map (fun ((v : Lang.Prog.var), _) -> v.vname) binds);
  (* arrays pre-allocated, scalars undefined *)
  let f = p.funcs.(0) in
  List.iter
    (fun (v : Lang.Prog.var) ->
      match (v.vname, v.vscope) with
      | "arr", Lang.Prog.Local slot ->
        Alcotest.(check bool) "array allocated" true
          (match frame.slots.(slot) with
          | Runtime.Value.Varr a -> Array.length a = 2
          | _ -> false)
      | "x", Lang.Prog.Local slot ->
        Alcotest.(check bool) "scalar undef" true
          (frame.slots.(slot) = Runtime.Value.Vundef)
      | _ -> ())
    f.locals

let suite =
  ( "units",
    [
      Alcotest.test_case "locations" `Quick test_loc;
      Alcotest.test_case "diagnostics" `Quick test_diag;
      Alcotest.test_case "values" `Quick test_value;
      Alcotest.test_case "tokens" `Quick test_token_describe;
      Alcotest.test_case "round robin" `Quick test_sched_round_robin;
      Alcotest.test_case "round robin on unsorted runnable lists" `Quick
        test_sched_round_robin_unsorted;
      Alcotest.test_case "random scheduler determinism" `Quick
        test_sched_random_deterministic;
      Alcotest.test_case "scripted scheduler" `Quick test_sched_scripted;
      Alcotest.test_case "dynamic graph container" `Quick test_dyn_graph_container;
      Alcotest.test_case "interpreter frames" `Quick test_interp_frame;
    ] )
