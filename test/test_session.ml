(* End-to-end sessions and dynamic soundness properties that tie the
   static analyses to observed executions. *)

module P = Lang.Prog

let test_session_surface () =
  let s = Ppd.Session.run Workloads.fixed_bank in
  Alcotest.(check string) "output" "20\n" (Ppd.Session.output s);
  Alcotest.(check bool) "halt" true (Ppd.Session.halt s = Runtime.Machine.Finished);
  Alcotest.(check (list int)) "no races" []
    (List.map (fun r -> r.Ppd.Race.rc_edge1) (Ppd.Session.races s));
  Alcotest.(check bool) "explain mentions finished" true
    (Util.contains ~sub:"finished" (Ppd.Session.explain_halt s))

(* Every dynamic read/write observed inside an interval must be inside
   the block's static USED/DEFINED sets — the soundness condition that
   makes prelogs/postlogs complete. *)
let used_defined_sound src sched =
  let eb, _h, _log, tr, _m = Util.run_instrumented ~sched src in
  let _p = eb.Analysis.Eblock.prog in
  (* map each event to the function whose frame executes it: track via
     enter/leave per process *)
  let stacks = Hashtbl.create 8 in
  let stack pid = Option.value ~default:[] (Hashtbl.find_opt stacks pid) in
  let ok = ref true in
  Array.iter
    (fun (r : Trace.Full_trace.rec_) ->
      let pid = r.tr_pid in
      match r.tr_ev with
      | Runtime.Event.E_proc_start { fid; _ } -> Hashtbl.replace stacks pid [ fid ]
      | Runtime.Event.E_enter { fid; _ } ->
        Hashtbl.replace stacks pid (fid :: stack pid)
      | Runtime.Event.E_leave _ | Runtime.Event.E_proc_exit _ ->
        Hashtbl.replace stacks pid (match stack pid with [] -> [] | _ :: t -> t)
      | Runtime.Event.E_loop_enter _ | Runtime.Event.E_loop_exit _ -> ()
      | Runtime.Event.E_stmt { reads; write; _ } -> (
        match stack pid with
        | [] -> ()
        | fid :: _ ->
          let in_scope (v : P.var) = P.is_global v || v.vfid = fid in
          List.iter
            (fun (rw : Runtime.Event.rw) ->
              if in_scope rw.var
                 && not (Analysis.Varset.mem rw.var.vid eb.Analysis.Eblock.used.(fid))
              then ok := false)
            reads;
          Option.iter
            (fun (rw : Runtime.Event.rw) ->
              if in_scope rw.var
                 && not
                      (Analysis.Varset.mem rw.var.vid
                         eb.Analysis.Eblock.defined.(fid))
              then ok := false)
            write))
    tr.Trace.Full_trace.recs;
  !ok

let test_soundness_fixed () =
  List.iter
    (fun (name, src) ->
      match Util.compile_err src with
      | Some _ -> ()
      | None ->
        Alcotest.(check bool) name true
          (used_defined_sound src Runtime.Sched.default))
    Workloads.all_fixed

let soundness_prop =
  Util.qtest ~count:30 "USED/DEFINED sound on random programs"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      used_defined_sound
        (Gen.parallel ~protect:`Sometimes seed)
        (Runtime.Sched.Random_seed sseed))

let test_error_node_on_finish () =
  let s = Ppd.Session.run Workloads.foo3 in
  match Ppd.Session.error_node s with
  | Some node ->
    let g = Ppd.Controller.graph (Ppd.Session.controller s) in
    (* the last event of a finished main is its EXIT *)
    Alcotest.(check bool) "exit node" true
      (match (Ppd.Dyn_graph.node g node).Ppd.Dyn_graph.nd_kind with
      | Ppd.Dyn_graph.N_exit _ -> true
      | _ -> false)
  | None -> Alcotest.fail "expected a node"

(* The lifecycle regression behind the serve registry: a closed
   session must keep answering queries (serially — the pool is
   detached before it is joined), and closing twice must be a no-op
   rather than a double pool join. *)
let test_close_then_query () =
  let s = Ppd.Session.run ~jobs:2 Workloads.fig61 in
  let ctl = Ppd.Session.controller s in
  Alcotest.(check bool) "open before close" false (Ppd.Session.closed s);
  Ppd.Session.close s;
  Alcotest.(check bool) "closed" true (Ppd.Session.closed s);
  Ppd.Session.close s;
  (* idempotent: a second close must not re-join the pool *)
  let o = Ppd.Controller.build_interval ctl ~pid:1 ~iv_id:0 in
  Alcotest.(check bool) "replay still works after close" true
    (o.Ppd.Emulator.steps > 0);
  let o' = Ppd.Controller.build_interval ctl ~pid:2 ~iv_id:0 in
  Alcotest.(check bool) "repeated queries stay safe" true
    (o'.Ppd.Emulator.steps > 0)

let test_close_before_first_query () =
  (* close before the controller ever exists: the lazy controller must
     come up poolless instead of resurrecting domains *)
  let s = Ppd.Session.run ~jobs:2 Workloads.fig61 in
  Ppd.Session.close s;
  let ctl = Ppd.Session.controller s in
  let o = Ppd.Controller.build_interval ctl ~pid:0 ~iv_id:0 in
  Alcotest.(check bool) "serial fallback replays" true
    (o.Ppd.Emulator.steps > 0)

let test_deadlocked_session () =
  let sched = Runtime.Sched.Scripted [ 0; 0; 0; 1; 1; 2; 2; 1; 2 ] in
  let s = Ppd.Session.run ~sched Workloads.deadlock_ab in
  Alcotest.(check bool) "deadlock reported" true
    (Util.contains ~sub:"deadlock" (Ppd.Session.explain_halt s));
  Alcotest.(check bool) "analysis positive" true
    (Ppd.Deadlock.is_deadlocked (Ppd.Session.deadlock s))

let suite =
  ( "session",
    [
      Alcotest.test_case "surface" `Quick test_session_surface;
      Alcotest.test_case "USED/DEFINED sound (fixed corpus)" `Quick
        test_soundness_fixed;
      soundness_prop;
      Alcotest.test_case "error node after finish" `Quick test_error_node_on_finish;
      Alcotest.test_case "close then query" `Quick test_close_then_query;
      Alcotest.test_case "close before first query" `Quick
        test_close_before_first_query;
      Alcotest.test_case "deadlocked session" `Quick test_deadlocked_session;
    ] )
