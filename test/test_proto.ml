(* Protocol product exploration: deadlock certificates (and their
   guided replay), verdicts, orphan/leak findings, must-ordering facts
   and the MHP refinement, plus the qcheck no-false-negative oracle. *)

open Analysis

let analyze ?budget ?bound src = Proto.analyze ?budget ?bound (Util.compile src)

let certs_of (r : Proto.t) =
  match r.Proto.verdict with Proto.Deadlocks cs -> cs | _ -> []

(* ------------------------------------------------------------------ *)
(* deadlock_ab: the canonical AB/BA inversion.                          *)
(* ------------------------------------------------------------------ *)

let test_deadlock_ab_certificate () =
  let r = analyze Workloads.deadlock_ab in
  (match r.Proto.verdict with
  | Proto.Deadlocks (c :: _) ->
    Alcotest.(check bool) "cyclic wait" true (c.cert_kind = Proto.Cyclic_wait);
    Alcotest.(check bool) "has steps" true (c.cert_steps <> []);
    Alcotest.(check int) "three parties blocked" 3
      (List.length c.cert_blocked)
  | v -> Alcotest.failf "expected deadlock, got %s" (Proto.verdict_name v));
  Alcotest.(check bool) "not truncated" false r.Proto.stats.truncated

let test_deadlock_ab_replays () =
  let p = Util.compile Workloads.deadlock_ab in
  let r = Proto.analyze p in
  match certs_of r with
  | [] -> Alcotest.fail "no certificate"
  | c :: _ -> (
    match Runtime.Cert_replay.validate p c with
    | Runtime.Cert_replay.Diverged why ->
      Alcotest.failf "certificate diverged: %s" why
    | Runtime.Cert_replay.Confirmed { schedule; blocked } ->
      Alcotest.(check bool) "nonempty schedule" true (schedule <> []);
      Alcotest.(check bool) "someone blocked" true (blocked <> []);
      (* the recorded interleaving reproduces the deadlock through the
         ordinary scripted scheduler *)
      Alcotest.(check bool) "scripted replay deadlocks" true
        (Runtime.Cert_replay.confirm_scripted p schedule))

(* ------------------------------------------------------------------ *)
(* Verdicts on the fixed corpus.                                        *)
(* ------------------------------------------------------------------ *)

let test_fixed_corpus_deadlock_free () =
  List.iter
    (fun (name, src) ->
      if name <> "deadlock_ab" then
        let r = analyze src in
        match r.Proto.verdict with
        | Proto.Deadlock_free | Proto.Deadlock_free_bounded -> ()
        | Proto.Unsupported _ -> () (* modelling limit, not a false alarm *)
        | Proto.Deadlocks _ ->
          Alcotest.failf "%s: spurious deadlock certificate" name)
    Workloads.all_fixed

let test_rpc_facts () =
  let r = analyze Workloads.rpc in
  Alcotest.(check bool) "deadlock-free" true
    (r.Proto.verdict = Proto.Deadlock_free);
  Alcotest.(check bool) "rendezvous produces must-ordering facts" true
    (r.Proto.facts <> [])

(* ------------------------------------------------------------------ *)
(* Orphans, dead receives, leaks.                                       *)
(* ------------------------------------------------------------------ *)

let test_orphan_send () =
  let r =
    analyze
      {|
chan c[4];
func main() {
  send(c, 1);
  send(c, 2);
  print(0);
}
|}
  in
  Alcotest.(check bool) "deadlock-free (buffered)" true
    (r.Proto.verdict = Proto.Deadlock_free);
  Alcotest.(check int) "both sends orphaned" 2
    (List.length r.Proto.orphan_sends)

let test_orphan_recv_certificate () =
  let r =
    analyze
      {|
chan c[0];
func waiter() {
  var x = 0;
  recv(c, x);
}
func main() {
  var p = spawn waiter();
  join(p);
}
|}
  in
  match certs_of r with
  | c :: _ ->
    Alcotest.(check bool) "orphan recv kind" true
      (c.Proto.cert_kind = Proto.Orphan_recv);
    Alcotest.(check bool) "dead recv recorded" true (r.Proto.dead_recvs <> [])
  | [] -> Alcotest.fail "expected an orphan-recv deadlock"

let test_sem_leak () =
  let r =
    analyze
      {|
sem lock = 1;
func main() {
  P(lock);
  print(1);
}
|}
  in
  Alcotest.(check (list (pair int int))) "lock leaks one token" [ (0, 1) ]
    r.Proto.sem_leaks

let test_sem_starvation_certificate () =
  let r =
    analyze
      {|
sem gate = 0;
func main() {
  P(gate);
}
|}
  in
  match certs_of r with
  | c :: _ ->
    Alcotest.(check bool) "starvation kind" true
      (c.Proto.cert_kind = Proto.Sem_starvation)
  | [] -> Alcotest.fail "expected a semaphore-starvation deadlock"

(* ------------------------------------------------------------------ *)
(* MHP refinement: protocol discharges strictly more pairs.             *)
(* ------------------------------------------------------------------ *)

let refinement_delta src =
  let p = Util.compile src in
  let base = Mhp.compute p in
  let r = Proto.analyze ~mhp:base p in
  let _, d0 = Proto.discharged_pairs p base in
  match r.Proto.refined with
  | None -> Alcotest.fail "refinement unavailable"
  | Some m ->
    let _, d1 = Proto.discharged_pairs p m in
    (d0, d1)

let test_ping_pong_discharges_everything () =
  let src = Workloads.ping_pong ~rounds:2 in
  let p = Util.compile src in
  let r = Proto.analyze p in
  Alcotest.(check bool) "deadlock-free" true
    (r.Proto.verdict = Proto.Deadlock_free);
  let d0, d1 = refinement_delta src in
  Alcotest.(check bool) "strictly more discharged" true (d1 > d0);
  (* and the race analysis agrees: no report survives the refinement *)
  match r.Proto.refined with
  | None -> Alcotest.fail "refinement unavailable"
  | Some m ->
    Alcotest.(check bool) "lockset alone keeps races" true
      (Static_race.analyze ~mhp:(Mhp.compute p) p <> []);
    Alcotest.(check int) "proto discharges them" 0
      (List.length (Static_race.analyze ~mhp:m p))

let test_config_pipeline_discharges_more () =
  List.iter
    (fun workers ->
      let d0, d1 =
        refinement_delta (Workloads.config_pipeline ~workers ~rounds:2)
      in
      if d1 <= d0 then
        Alcotest.failf "workers=%d: refined %d <= base %d" workers d1 d0)
    [ 2; 3 ]

let test_refinement_never_loses_pairs () =
  (* the refined relation is a superset of base discharge on every
     bundled workload that supports refinement *)
  List.iter
    (fun (name, src) ->
      let p = Util.compile src in
      let base = Mhp.compute p in
      let r = Proto.analyze ~mhp:base p in
      match r.Proto.refined with
      | None -> ()
      | Some m ->
        let _, d0 = Proto.discharged_pairs p base in
        let _, d1 = Proto.discharged_pairs p m in
        if d1 < d0 then Alcotest.failf "%s: refinement regressed" name)
    Workloads.all_fixed

let test_racy_bank_still_racy () =
  (* soundness: refinement must not discharge genuine races *)
  let p = Util.compile Workloads.racy_bank in
  let r = Proto.analyze p in
  match r.Proto.refined with
  | None -> ()
  | Some m ->
    Alcotest.(check bool) "racy bank keeps its races" true
      (Static_race.analyze ~mhp:m p <> [])

(* ------------------------------------------------------------------ *)
(* Refined MHP also reaches sync-unit prelog pruning through            *)
(* Eblock.analyze ?mhp: refinement may only shrink the logged values,   *)
(* and the pruned log still replays faithfully.                         *)
(* ------------------------------------------------------------------ *)

let sync_prelog_vals eb =
  let _, log, _ = Trace.Logger.run_logged eb in
  Array.to_seq log.Trace.Log.entries
  |> Seq.fold_left
       (fun acc entries ->
         Array.fold_left
           (fun acc e ->
             match e with
             | Trace.Log.Sync_prelog { vals; _ } -> acc + List.length vals
             | _ -> acc)
           acc entries)
       0

let test_refined_mhp_prunes_prelogs () =
  (* never more entries than the base relation, on any fixed workload *)
  List.iter
    (fun (name, src) ->
      let p = Util.compile src in
      let base = Mhp.compute p in
      match (Proto.analyze ~mhp:base p).Proto.refined with
      | None -> ()
      | Some m ->
        let b = sync_prelog_vals (Eblock.analyze ~mhp:base p) in
        let r = sync_prelog_vals (Eblock.analyze ~mhp:m p) in
        if r > b then
          Alcotest.failf "%s: refined MHP grew the sync prelog (%d > %d)"
            name r b)
    (List.filter (fun (n, _) -> n <> "deadlock_ab") Workloads.all_fixed);
  (* and strictly fewer where the protocol orders what spawn/join
     cannot: ping_pong's semaphore alternation *)
  let src = Workloads.ping_pong ~rounds:2 in
  let p = Util.compile src in
  let base = Mhp.compute p in
  match (Proto.analyze ~mhp:base p).Proto.refined with
  | None -> Alcotest.fail "refinement unavailable"
  | Some m ->
    let b = sync_prelog_vals (Eblock.analyze ~mhp:base p) in
    let r = sync_prelog_vals (Eblock.analyze ~mhp:m p) in
    Alcotest.(check bool)
      (Printf.sprintf "refined %d < base %d" r b)
      true (r < b);
    (* the slimmer log still replays: diff every interval's emulation
       against a full trace of the same execution *)
    let eb = Eblock.analyze ~mhp:m p in
    let logger = Trace.Logger.create eb in
    let ft = Trace.Full_trace.create () in
    let hooks =
      Runtime.Hooks.both
        (Trace.Logger.factory logger)
        (Trace.Full_trace.factory ft)
    in
    let machine = Runtime.Machine.create ~sched:Runtime.Sched.default ~hooks p in
    ignore (Runtime.Machine.run machine);
    let log = Trace.Logger.finish logger in
    let tr = Trace.Full_trace.finish ft in
    let checked = Util.check_replay_equivalence eb log tr in
    Alcotest.(check bool) "intervals replayed" true (checked > 0)

(* ------------------------------------------------------------------ *)
(* qcheck oracle over random protocol programs.                         *)
(*                                                                      *)
(* Gen.protocol emits straight-line two-worker programs, for which the  *)
(* abstract model is exact: any deadlock a concrete scheduler reaches   *)
(* must be predicted (no false negatives), and a complete deadlock-free *)
(* verdict must mean no scheduler can deadlock.                         *)
(* ------------------------------------------------------------------ *)

let schedulers seed =
  [
    Runtime.Sched.Round_robin 1;
    Runtime.Sched.Round_robin 3;
    Runtime.Sched.Random_seed seed;
    Runtime.Sched.Random_seed (seed + 1);
    Runtime.Sched.Random_seed ((seed * 7) + 13);
  ]

let machine_deadlocks p sched =
  let m = Runtime.Machine.create ~sched ~max_steps:50_000 p in
  match Runtime.Machine.run m with
  | Runtime.Machine.Deadlock _ -> true
  | _ -> false

let oracle seed =
  let src = Gen.protocol seed in
  let p = Util.compile src in
  let r = Proto.analyze p in
  let concrete =
    List.exists (fun s -> machine_deadlocks p s) (schedulers seed)
  in
  (match r.Proto.verdict with
  | Proto.Unsupported why ->
    QCheck2.Test.fail_reportf "unsupported protocol program: %s" why
  | _ -> ());
  if concrete && certs_of r = [] then
    QCheck2.Test.fail_reportf
      "false negative: a scheduler deadlocked but proto said %s\n%s"
      (Proto.verdict_name r.Proto.verdict)
      src;
  (if r.Proto.verdict = Proto.Deadlock_free && concrete then
     QCheck2.Test.fail_reportf "complete deadlock-free verdict contradicted\n%s"
       src);
  (* predicted deadlocks on straight-line programs must replay *)
  (match certs_of r with
  | [] -> ()
  | certs ->
    let confirmed =
      List.exists
        (fun c ->
          match Runtime.Cert_replay.validate p c with
          | Runtime.Cert_replay.Confirmed _ -> true
          | Runtime.Cert_replay.Diverged _ -> false)
        certs
    in
    if not confirmed then
      QCheck2.Test.fail_reportf "no certificate replays\n%s" src);
  true

let qcheck_oracle =
  Util.qtest ~count:60 "proto oracle on random protocol programs"
    QCheck2.Gen.(int_range 0 100_000)
    oracle

let suite =
  ( "proto",
    [
      Alcotest.test_case "deadlock_ab certificate" `Quick
        test_deadlock_ab_certificate;
      Alcotest.test_case "deadlock_ab replays" `Quick test_deadlock_ab_replays;
      Alcotest.test_case "fixed corpus deadlock-free" `Quick
        test_fixed_corpus_deadlock_free;
      Alcotest.test_case "rpc must-ordering facts" `Quick test_rpc_facts;
      Alcotest.test_case "orphan send" `Quick test_orphan_send;
      Alcotest.test_case "orphan recv certificate" `Quick
        test_orphan_recv_certificate;
      Alcotest.test_case "sem leak" `Quick test_sem_leak;
      Alcotest.test_case "sem starvation certificate" `Quick
        test_sem_starvation_certificate;
      Alcotest.test_case "ping_pong discharges everything" `Quick
        test_ping_pong_discharges_everything;
      Alcotest.test_case "config_pipeline discharges more" `Quick
        test_config_pipeline_discharges_more;
      Alcotest.test_case "refinement never regresses" `Quick
        test_refinement_never_loses_pairs;
      Alcotest.test_case "racy bank stays racy" `Quick
        test_racy_bank_still_racy;
      Alcotest.test_case "refined MHP prunes sync prelogs" `Quick
        test_refined_mhp_prunes_prelogs;
      qcheck_oracle;
    ] )
