(* The ordering-based logging tier (DESIGN §16): store round trips of
   sync-order + checkpoint pages, corruption fuzz over them, the
   reconstruction oracle (re-execution reproduces the content log
   entry for entry), and checkpoint-seeded restoration. *)

module L = Trace.Log
module S = Store.Segment

let compile = Lang.Compile.compile

let with_tmp f =
  let path = Filename.temp_file "ppd_order" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* Record the same execution twice — content tier and order tier — so
   tests can compare what reconstruction must reproduce. *)
let record ?(sched = Runtime.Sched.default) ?(max_steps = 200_000)
    ?ckpt_every src =
  let prog = compile src in
  let eb = Analysis.Eblock.analyze prog in
  let tier =
    L.T_order
      {
        L.o_sched = Runtime.Sched.string_of_policy sched;
        o_engine = "vm";
        o_max_steps = max_steps;
      }
  in
  let _, content, _ = Trace.Logger.run_logged ~sched ~max_steps eb in
  let _, order, _ =
    Trace.Logger.run_logged ~sched ~max_steps ~tier ?ckpt_every eb
  in
  (eb, content, order)

let corpus =
  [
    ("fig61", Workloads.fig61);
    ("counter", Workloads.counter ~workers:3 ~incs:6 ~mutex:true);
    ("prodcons", Workloads.producer_consumer ~items:6 ~cap:2);
    ("ring", Workloads.token_ring ~procs:3 ~rounds:2);
    ("hist", Workloads.locked_hist ~workers:2 ~rounds:4 ~cells:8);
    ("rpc", Workloads.rpc);
  ]

(* -------------------------------------------------------------- *)
(* The order tier on disk *)

let test_order_roundtrip () =
  List.iter
    (fun (name, src) ->
      let _eb, _content, order = record ~ckpt_every:16 src in
      Alcotest.(check bool)
        (name ^ " recorded checkpoints") true
        (Array.length order.L.ckpts > 0);
      with_tmp (fun path ->
          S.save path order;
          let order' = S.load path in
          Alcotest.(check bool)
            (name ^ " order log round-trips (tier, ckpts, entries)")
            true (order' = order);
          let r = S.verify path in
          Alcotest.(check bool) (name ^ " verifies clean") true
            (r.S.vr_damage = []);
          Alcotest.(check int)
            (name ^ " measured size")
            r.S.vr_bytes (S.encoded_size order)))
    corpus

(* An order log is dramatically smaller exactly when sync units read
   sizeable shared state (the content tier snapshots it every critical
   section, the order tier regenerates it). *)
let test_order_bytes_bounded () =
  let _eb, content, order =
    record (Workloads.locked_hist ~workers:3 ~rounds:8 ~cells:128)
  in
  let cb = S.encoded_size content and ob = S.encoded_size order in
  Alcotest.(check bool)
    (Printf.sprintf "order %dB well under content %dB" ob cb)
    true
    (ob * 3 < cb)

(* Salvage of a damaged order log never invents data: the recovered
   per-pid entries are a prefix of the original's. *)
let is_prefix_log (a : L.t) (b : L.t) =
  b.L.nprocs <= a.L.nprocs
  && Array.length b.L.entries = b.L.nprocs
  &&
  let ok = ref true in
  for pid = 0 to b.L.nprocs - 1 do
    let ea = a.L.entries.(pid) and eb = b.L.entries.(pid) in
    if Array.length eb > Array.length ea then ok := false
    else Array.iteri (fun i y -> if ea.(i) <> y then ok := false) eb
  done;
  !ok

let test_order_truncation_salvage () =
  let _eb, _content, order = record ~ckpt_every:8 Workloads.fig61 in
  with_tmp (fun path ->
      S.save path order;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let n = String.length full in
      let cut len =
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 len))
      in
      for len = 8 to n - 1 do
        cut len;
        let r = S.verify path in
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d detected" len)
          true (r.S.vr_damage <> []);
        let salvaged = S.load path in
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d salvages a prefix" len)
          true
          (is_prefix_log order salvaged)
      done;
      (* losing only the trailer keeps every sync record and checkpoint *)
      cut (n - 10);
      let salvaged = S.load path in
      Alcotest.(check bool) "footer-only damage loses no entry" true
        (salvaged.L.entries = order.L.entries
        && salvaged.L.ckpts = order.L.ckpts))

let test_order_byte_flip_detected () =
  let _eb, _content, order = record ~ckpt_every:8 Workloads.fig61 in
  with_tmp (fun path ->
      S.save path order;
      let full = In_channel.with_open_bin path In_channel.input_all in
      for i = 0 to String.length full - 1 do
        let b = Bytes.of_string full in
        Bytes.set b i (Char.chr (Char.code full.[i] lxor 0xFF));
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc b);
        (match S.verify path with
        | exception Trace.Log_io.Unreadable _ -> ()
        | r ->
          Alcotest.(check bool)
            (Printf.sprintf "flip at %d detected" i)
            true
            (r.S.vr_damage <> []));
        match S.load path with
        | exception Trace.Log_io.Unreadable _ -> ()
        | salvaged ->
          Alcotest.(check bool)
            (Printf.sprintf "flip at %d never mis-decodes" i)
            true
            (is_prefix_log order salvaged)
      done)

(* -------------------------------------------------------------- *)
(* Reconstruction *)

let test_reconstruct_corpus () =
  List.iter
    (fun (name, src) ->
      let eb, content, order = record ~ckpt_every:16 src in
      let recon = Ppd.Reconstruct.reconstruct eb order in
      Alcotest.(check bool)
        (name ^ " reconstruction = content log")
        true
        (recon.L.entries = content.L.entries
        && recon.L.stops = content.L.stops
        && recon.L.nprocs = content.L.nprocs);
      Alcotest.(check bool)
        (name ^ " reconstruction keeps the checkpoints")
        true
        (recon.L.ckpts = order.L.ckpts
        && recon.L.tier = L.T_content))
    corpus

(* The oracle over random parallel programs and schedules: whatever the
   recording run did, re-execution from the order log must reproduce
   the content log bit for bit — prelogs, postlogs, sync-unit prelogs,
   values and all. *)
let reconstruct_prop =
  Util.qtest ~count:40
    "random programs x schedules: reconstruct (order log) = content log"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1000))
    (fun (seed, sseed) ->
      let sched = Runtime.Sched.Random_seed sseed in
      let eb, content, order =
        record ~sched ~ckpt_every:32 (Gen.parallel ~protect:`Sometimes seed)
      in
      let recon = Ppd.Reconstruct.reconstruct eb order in
      recon.L.entries = content.L.entries
      && recon.L.stops = content.L.stops)

(* A different scheduler than the recorded one is a different
   computation: validation must refuse it, not hand back wrong
   history. *)
let test_reconstruct_divergence () =
  let prog = compile (Workloads.counter ~workers:3 ~incs:6 ~mutex:true) in
  let eb = Analysis.Eblock.analyze prog in
  let tier =
    L.T_order { L.o_sched = "rr:1"; o_engine = "vm"; o_max_steps = 200_000 }
  in
  let _, order, _ =
    Trace.Logger.run_logged ~sched:(Runtime.Sched.Random_seed 42)
      ~max_steps:200_000 ~tier eb
  in
  match Ppd.Reconstruct.reconstruct eb order with
  | exception Ppd.Reconstruct.Divergence _ -> ()
  | _ -> Alcotest.fail "expected Divergence under a mismatched scheduler"

(* A controller over an order log (in memory or paged) answers exactly
   like one over the content recording. *)
let test_controller_over_order_log () =
  let eb, content, order = record ~ckpt_every:16 Workloads.fig61 in
  let digest log =
    let ctl = Ppd.Controller.start eb log in
    let buf = Buffer.create 256 in
    for pid = 0 to log.L.nprocs - 1 do
      match Ppd.Controller.last_event_node ctl ~pid with
      | None -> Buffer.add_string buf (Printf.sprintf "p%d -\n" pid)
      | Some root ->
        List.iter
          (fun (d : Ppd.Flowback.dep) ->
            Buffer.add_string buf (Printf.sprintf "%d " d.Ppd.Flowback.d_node))
          (Ppd.Flowback.backward_slice ctl root);
        Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  in
  Alcotest.(check string) "flowback identical across tiers" (digest content)
    (digest order);
  with_tmp (fun path ->
      S.save path order;
      let ctl = Ppd.Controller.start_paged eb (S.open_file path) in
      Alcotest.(check bool) "paged order log debugs" true
        (Ppd.Controller.last_event_node ctl ~pid:0 <> None))

(* -------------------------------------------------------------- *)
(* Checkpoint-seeded restoration (satellite: the stale-clock bug) *)

(* Seeding from a checkpoint must be invisible where both sides have
   the same information. The sync-frontier clock must match a
   from-scratch scan at EVERY step (sync entries carry exact steps, so
   the scan clock is exact) — this is the regression for the stale
   vector-clock bug: a checkpoint cut at step S already covers the
   sync event at S, so restore must re-apply only strictly later
   entries, never count one twice. Globals are compared at checkpoint
   cuts (where the seeded answer must be exactly the snapshot) and
   past the last entry (where the scan has caught up); mid-block the
   checkpoint legitimately knows writes no postlog has recorded yet. *)
let test_ckpt_seeded_restore_equals_scan () =
  List.iter
    (fun (name, src) ->
      let eb, _content, order = record ~ckpt_every:8 src in
      let recon = Ppd.Reconstruct.reconstruct eb order in
      let bare = { recon with L.ckpts = [||] } in
      let prog = eb.Analysis.Eblock.prog in
      let last =
        Array.fold_left
          (fun acc ck -> max acc ck.L.ck_step)
          0 recon.L.ckpts
      in
      for step = 0 to last + 12 do
        let seeded = Ppd.Restore.shared_at prog recon ~step in
        let scanned = Ppd.Restore.shared_at prog bare ~step in
        if seeded.Ppd.Restore.clock <> scanned.Ppd.Restore.clock then
          Alcotest.failf "%s: sync clock differs at step %d (stale entry)"
            name step
      done;
      Array.iter
        (fun ck ->
          let seeded = Ppd.Restore.shared_at prog recon ~step:ck.L.ck_step in
          if seeded.Ppd.Restore.globals <> ck.L.ck_globals then
            Alcotest.failf "%s: restore at the step-%d cut is not the snapshot"
              name ck.L.ck_step)
        recon.L.ckpts;
      let horizon =
        Array.fold_left
          (fun acc es ->
            Array.fold_left
              (fun acc e -> max acc (L.entry_step_at e))
              acc es)
          0 recon.L.entries
      in
      let seeded = Ppd.Restore.shared_at prog recon ~step:horizon in
      let scanned = Ppd.Restore.shared_at prog bare ~step:horizon in
      if seeded.Ppd.Restore.globals <> scanned.Ppd.Restore.globals then
        Alcotest.failf "%s: globals differ once every postlog is in" name;
      (* and the seeding must actually bound the scan once past the
         first checkpoint *)
      if Array.length recon.L.ckpts > 1 then begin
        let seeded = Ppd.Restore.shared_at prog recon ~step:last in
        let scanned = Ppd.Restore.shared_at prog bare ~step:last in
        Alcotest.(check bool)
          (name ^ " checkpoint bounds the scan")
          true
          (seeded.Ppd.Restore.entries_scanned
          < scanned.Ppd.Restore.entries_scanned)
      end)
    corpus

let suite =
  ( "order-tier",
    [
      Alcotest.test_case "order log round-trips the store" `Quick
        test_order_roundtrip;
      Alcotest.test_case "order bytes bounded by sync skeleton" `Quick
        test_order_bytes_bounded;
      Alcotest.test_case "order truncation salvages a prefix" `Quick
        test_order_truncation_salvage;
      Alcotest.test_case "order byte flips detected" `Quick
        test_order_byte_flip_detected;
      Alcotest.test_case "reconstruction = content (corpus)" `Quick
        test_reconstruct_corpus;
      reconstruct_prop;
      Alcotest.test_case "mismatched scheduler diverges" `Quick
        test_reconstruct_divergence;
      Alcotest.test_case "controller over order log" `Quick
        test_controller_over_order_log;
      Alcotest.test_case "checkpoint-seeded restore = full scan" `Quick
        test_ckpt_seeded_restore_equals_scan;
    ] )
