(* The unified lint driver: every PPD0xx code fires on a witness
   program, clean programs stay clean, ordering is stable, and the JSON
   encoder matches the documented shape. *)

open Analysis
module D = Lang.Diag

let lint ?only src = Lint.run ?only (Util.compile src)

let codes diags = List.map (fun d -> d.D.d_code) diags |> List.sort_uniq compare

let has_code c diags = List.mem c (codes diags)

let test_racy_bank_codes () =
  let diags = lint Workloads.racy_bank in
  Alcotest.(check bool) "PPD010 read/write race" true (has_code "PPD010" diags);
  Alcotest.(check bool) "PPD011 write/write race" true (has_code "PPD011" diags);
  (* each race finding names the other access as a related location *)
  List.iter
    (fun d ->
      if d.D.d_code = "PPD010" || d.D.d_code = "PPD011" then
        Alcotest.(check bool) "race has related access" true
          (d.D.d_related <> []))
    diags

let test_fixed_bank_clean () =
  Alcotest.(check (list string)) "fixed bank lint-clean" []
    (codes (lint Workloads.fixed_bank))

let test_deadlock_candidate () =
  let diags = lint Workloads.deadlock_ab in
  Alcotest.(check bool) "PPD020 lock-order cycle" true (has_code "PPD020" diags)

let test_self_deadlock () =
  let src =
    {|
    sem m = 1;
    func main() {
      P(m);
      P(m);
    }
    |}
  in
  Alcotest.(check bool) "PPD020 self-deadlock" true
    (has_code "PPD020" (lint src))

let test_unreachable_and_dead () =
  let src =
    {|
    shared int g = 0;
    func orphan() { g = 3; }
    func f() {
      g = 1;
      return;
      g = 2;
    }
    func main() {
      f();
      print(g);
    }
    |}
  in
  let diags = lint src in
  Alcotest.(check bool) "PPD030 unreachable statement" true
    (has_code "PPD030" diags);
  Alcotest.(check bool) "PPD031 dead function" true (has_code "PPD031" diags)

let test_uninit_read () =
  let src =
    {|
    func main() {
      var x;
      print(x);
    }
    |}
  in
  Alcotest.(check bool) "PPD040 uninitialised read" true
    (has_code "PPD040" (lint src));
  let clean =
    {|
    func main() {
      var x = 1;
      print(x);
    }
    |}
  in
  Alcotest.(check bool) "initialised local clean" false
    (has_code "PPD040" (lint clean))

let test_pass_selection () =
  (* only the requested pass runs *)
  let diags = lint ~only:[ "deadlocks" ] Workloads.racy_bank in
  Alcotest.(check (list string)) "races suppressed" [] (codes diags);
  (match lint ~only:[ "nosuch" ] Workloads.racy_bank with
  | _ -> Alcotest.fail "expected Unknown_pass"
  | exception Lint.Unknown_pass n ->
    Alcotest.(check string) "pass name reported" "nosuch" n);
  Alcotest.(check (list string)) "registry names"
    [
      "races";
      "deadlocks";
      "unreachable";
      "uninit";
      "proto-deadlock";
      "orphan-comm";
      "sem-leak";
    ]
    Lint.pass_names

let test_stable_order () =
  let d1 = lint Workloads.racy_bank and d2 = lint Workloads.racy_bank in
  Alcotest.(check int) "same cardinality" (List.length d1) (List.length d2);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same code" a.D.d_code b.D.d_code;
      Alcotest.(check string) "same message" a.D.d_message b.D.d_message)
    d1 d2;
  (* sorted by code first *)
  let cs = List.map (fun d -> d.D.d_code) d1 in
  Alcotest.(check (list string)) "codes ascending" (List.sort compare cs) cs

let test_json_shape () =
  let diags = lint Workloads.racy_bank in
  let js = D.json_of_diagnostics diags in
  Alcotest.(check bool) "findings key" true (Util.contains ~sub:"\"findings\":[" js);
  Alcotest.(check bool) "count key" true
    (Util.contains ~sub:(Printf.sprintf "\"count\":%d" (List.length diags)) js);
  Alcotest.(check bool) "code field" true
    (Util.contains ~sub:"\"code\":\"PPD010\"" js);
  Alcotest.(check bool) "severity field" true
    (Util.contains ~sub:"\"severity\":\"warning\"" js);
  (* empty report *)
  Alcotest.(check string) "empty report" "{\"findings\":[],\"count\":0}"
    (D.json_of_diagnostics []);
  (* a Loc.none renders as null, and escaping keeps the JSON well formed *)
  let d =
    {
      D.d_code = "PPD010";
      d_severity = D.Sev_warning;
      d_loc = Lang.Loc.none;
      d_message = "quote \" and backslash \\";
      d_related = [];
    }
  in
  let js = D.json_of_diagnostic d in
  Alcotest.(check bool) "null loc" true (Util.contains ~sub:"\"loc\":null" js);
  Alcotest.(check bool) "escaped quote" true
    (Util.contains ~sub:"quote \\\" and backslash \\\\" js)

let test_front_end_error_diag () =
  match Lang.Compile.compile_result "func main( {" with
  | Ok _ -> Alcotest.fail "expected a front-end error"
  | Error err ->
    let d = D.of_error err in
    Alcotest.(check string) "PPD001" "PPD001" d.D.d_code;
    Alcotest.(check bool) "severity error" true (d.D.d_severity = D.Sev_error)

let test_regressions_lint_clean_races () =
  (* the ISSUE regressions, through the lint driver this time *)
  let join_ordered =
    {|
    shared int g = 0;
    func w() { g = g + 1; }
    func main() {
      var p = spawn w();
      join(p);
      print(g);
    }
    |}
  and msg_ordered =
    {|
    shared int g = 0;
    chan c[0];
    func w() { g = 5; send(c, 1); }
    func main() {
      var p = spawn w();
      var x = 0;
      recv(c, x);
      print(g);
      join(p);
    }
    |}
  in
  Alcotest.(check (list string)) "join-ordered: no race findings" []
    (codes (lint ~only:[ "races" ] join_ordered));
  Alcotest.(check (list string)) "send/recv-ordered: no race findings" []
    (codes (lint ~only:[ "races" ] msg_ordered))

let test_recv_initialises () =
  (* regression pin for the uninit pass: a recv's target variable is a
     definition, so reading it afterwards is NOT flagged... *)
  let clean =
    {|
    chan c[1];
    func main() {
      send(c, 42);
      var x;
      recv(c, x);
      print(x);
    }
    |}
  in
  Alcotest.(check bool) "recv defines its target" false
    (has_code "PPD040" (lint ~only:[ "uninit" ] clean));
  (* ...while an genuinely-unset local still is *)
  let dirty =
    {|
    func main() {
      var x;
      print(x);
    }
    |}
  in
  Alcotest.(check bool) "unset local still flagged" true
    (has_code "PPD040" (lint ~only:[ "uninit" ] dirty))

let test_proto_deadlock_pass () =
  let diags = lint ~only:[ "proto-deadlock" ] Workloads.deadlock_ab in
  Alcotest.(check bool) "PPD070 on deadlock_ab" true (has_code "PPD070" diags);
  Alcotest.(check (list string)) "clean program: no PPD070" []
    (codes (lint ~only:[ "proto-deadlock" ] Workloads.rpc))

let test_orphan_comm_pass () =
  let orphan =
    {|
    chan c[4];
    func main() {
      send(c, 1);
      print(0);
    }
    |}
  in
  Alcotest.(check bool) "PPD071 for an unreceived send" true
    (has_code "PPD071" (lint ~only:[ "orphan-comm" ] orphan));
  Alcotest.(check (list string)) "rpc has no orphans" []
    (codes (lint ~only:[ "orphan-comm" ] Workloads.rpc))

let test_sem_leak_pass () =
  let leak =
    {|
    sem lock = 1;
    func main() {
      P(lock);
      print(1);
    }
    |}
  in
  Alcotest.(check bool) "PPD072 for a held-at-exit semaphore" true
    (has_code "PPD072" (lint ~only:[ "sem-leak" ] leak));
  Alcotest.(check (list string)) "balanced P/V is clean" []
    (codes (lint ~only:[ "sem-leak" ] Workloads.fixed_bank))

let test_unknown_pass_raises () =
  match lint ~only:[ "no-such-pass" ] Workloads.rpc with
  | exception Lint.Unknown_pass n ->
    Alcotest.(check string) "names the pass" "no-such-pass" n
  | _ -> Alcotest.fail "expected Unknown_pass"

let suite =
  ( "lint",
    [
      Alcotest.test_case "recv initialises its target" `Quick
        test_recv_initialises;
      Alcotest.test_case "proto-deadlock: PPD070" `Quick
        test_proto_deadlock_pass;
      Alcotest.test_case "orphan-comm: PPD071" `Quick test_orphan_comm_pass;
      Alcotest.test_case "sem-leak: PPD072" `Quick test_sem_leak_pass;
      Alcotest.test_case "unknown pass raises" `Quick test_unknown_pass_raises;
      Alcotest.test_case "racy bank: PPD010/PPD011" `Quick test_racy_bank_codes;
      Alcotest.test_case "fixed bank clean" `Quick test_fixed_bank_clean;
      Alcotest.test_case "deadlock candidate: PPD020" `Quick
        test_deadlock_candidate;
      Alcotest.test_case "self-deadlock: PPD020" `Quick test_self_deadlock;
      Alcotest.test_case "unreachable/dead: PPD030/031" `Quick
        test_unreachable_and_dead;
      Alcotest.test_case "uninitialised read: PPD040" `Quick test_uninit_read;
      Alcotest.test_case "pass selection" `Quick test_pass_selection;
      Alcotest.test_case "stable order" `Quick test_stable_order;
      Alcotest.test_case "JSON shape" `Quick test_json_shape;
      Alcotest.test_case "front-end error: PPD001" `Quick
        test_front_end_error_diag;
      Alcotest.test_case "ordered regressions lint clean" `Quick
        test_regressions_lint_clean_races;
    ] )
