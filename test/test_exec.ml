(* The lib/exec domain pool (deque, futures) and the parallel emulation
   engine built on it: parallel and serial debugging must produce
   byte-identical dynamic graphs, and a failure in one replay must not
   wedge the pool. *)

module L = Trace.Log

(* ------------------------------------------------------------------ *)
(* Deque.                                                               *)
(* ------------------------------------------------------------------ *)

(* a strict left-to-right take sequence (list literals evaluate
   right-to-left in OCaml) *)
let takes ops = List.map (fun op -> op ()) ops

let test_deque_owner_lifo () =
  let d = Exec.Deque.create () in
  List.iter (fun i -> Exec.Deque.push d i) [ 1; 2; 3 ];
  let pop () = Exec.Deque.pop d in
  Alcotest.(check (list (option int)))
    "pop is LIFO"
    [ Some 3; Some 2; Some 1; None ]
    (takes [ pop; pop; pop; pop ])

let test_deque_thief_fifo () =
  let d = Exec.Deque.create () in
  List.iter (fun i -> Exec.Deque.push d i) [ 1; 2; 3 ];
  let pop () = Exec.Deque.pop d in
  let steal () = Exec.Deque.steal d in
  Alcotest.(check (list (option int)))
    "steal is FIFO, mixed with pop"
    [ Some 1; Some 3; Some 2; None ]
    (takes [ steal; pop; steal; pop ])

let test_deque_grows () =
  let d = Exec.Deque.create () in
  for i = 0 to 99 do
    Exec.Deque.push d i
  done;
  Alcotest.(check int) "length" 100 (Exec.Deque.length d);
  let sum = ref 0 in
  let rec drain () =
    match Exec.Deque.steal d with
    | Some v ->
      sum := !sum + v;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all elements survive growth" 4950 !sum

(* ------------------------------------------------------------------ *)
(* Pool.                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_futures () =
  Exec.Pool.with_pool ~jobs:3 (fun pool ->
      let futs =
        List.init 50 (fun i -> Exec.Pool.submit pool (fun () -> i * i))
      in
      List.iteri
        (fun i fut ->
          Alcotest.(check int) "future value" (i * i) (Exec.Pool.await fut))
        futs)

(* The satellite requirement: an exception inside one task is confined
   to its future — later tasks run, awaits return, shutdown joins. *)
let test_pool_survives_exception () =
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let before =
        List.init 8 (fun i -> Exec.Pool.submit pool (fun () -> i))
      in
      let bad = Exec.Pool.submit pool (fun () -> failwith "boom") in
      let after =
        List.init 8 (fun i -> Exec.Pool.submit pool (fun () -> i + 100))
      in
      List.iteri
        (fun i fut -> Alcotest.(check int) "before" i (Exec.Pool.await fut))
        before;
      (match Exec.Pool.await bad with
      | _ -> Alcotest.fail "await of a failed task must raise"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      List.iteri
        (fun i fut ->
          Alcotest.(check int) "after" (i + 100) (Exec.Pool.await fut))
        after)

let test_pool_shutdown_drains () =
  let pool = Exec.Pool.create ~jobs:2 () in
  let futs = List.init 20 (fun i -> Exec.Pool.submit pool (fun () -> i)) in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool (* idempotent *);
  List.iteri
    (fun i fut ->
      Alcotest.(check int) "queued work completes" i (Exec.Pool.await fut))
    futs;
  match Exec.Pool.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

(* The regression: a second concurrent [shutdown] caller used to see
   [closing = true] and return immediately, while the first caller was
   still joining the worker domains — so the late caller could observe
   queued tasks mid-flight. Now every caller blocks until the join
   completes: the moment any closer's [shutdown] returns, all queued
   work has fully finished. *)
let test_pool_concurrent_shutdown () =
  for _ = 1 to 25 do
    let pool = Exec.Pool.create ~jobs:2 () in
    let futs =
      List.init 32 (fun i ->
          Exec.Pool.submit pool (fun () ->
              let s = ref 0 in
              for j = 1 to 1_000 do
                s := !s + (i * j)
              done;
              !s))
    in
    let closer () =
      Domain.spawn (fun () ->
          Exec.Pool.shutdown pool;
          List.for_all
            (fun f ->
              match Exec.Pool.peek f with
              | Exec.Pool.Done _ -> true
              | Exec.Pool.Pending | Exec.Pool.Failed _ -> false)
            futs)
    in
    let d1 = closer () in
    let d2 = closer () in
    let ok1 = Domain.join d1 in
    let ok2 = Domain.join d2 in
    Alcotest.(check bool)
      "every shutdown caller returned only after the queue drained" true
      (ok1 && ok2)
  done

(* The regression: [peek] used to re-raise a failed task's exception on
   every call; a status poll must report the failure without raising
   (the exception surfaces exactly once, via [await]). *)
let test_pool_peek_no_raise () =
  Exec.Pool.with_pool ~jobs:1 (fun pool ->
      let ok = Exec.Pool.submit pool (fun () -> 42) in
      Alcotest.(check int) "await ok" 42 (Exec.Pool.await ok);
      (match Exec.Pool.peek ok with
      | Exec.Pool.Done v -> Alcotest.(check int) "peek done" 42 v
      | Exec.Pool.Pending | Exec.Pool.Failed _ ->
        Alcotest.fail "awaited future must peek as Done");
      let bad = Exec.Pool.submit pool (fun () -> failwith "peeked") in
      let rec settle () =
        match Exec.Pool.peek bad with
        | Exec.Pool.Pending ->
          Domain.cpu_relax ();
          settle ()
        | st -> st
      in
      (match settle () with
      | Exec.Pool.Failed (Failure m, _) ->
        Alcotest.(check string) "failure captured" "peeked" m
      | Exec.Pool.Failed _ -> Alcotest.fail "wrong exception in Failed"
      | Exec.Pool.Done _ -> Alcotest.fail "task should have failed"
      | Exec.Pool.Pending -> assert false);
      (* repeated peeks still do not raise *)
      (match Exec.Pool.peek bad with
      | Exec.Pool.Failed _ -> ()
      | _ -> Alcotest.fail "state must remain Failed");
      match Exec.Pool.await bad with
      | _ -> Alcotest.fail "await of a failed task must raise"
      | exception Failure m -> Alcotest.(check string) "await raises" "peeked" m)

(* The satellite regression: [await] from inside a pool task was
   documented-forbidden but silently risked deadlock (the worker waits
   on a future only another — possibly the same — worker can fill).
   It must now fail fast with Invalid_argument instead. *)
let test_pool_await_inside_task_rejected () =
  Exec.Pool.with_pool ~jobs:1 (fun pool ->
      let inner = Exec.Pool.submit pool (fun () -> 1) in
      let outer =
        Exec.Pool.submit pool (fun () -> Exec.Pool.await inner)
      in
      (match Exec.Pool.await outer with
      | _ -> Alcotest.fail "await inside a task must raise"
      | exception Invalid_argument m ->
        Alcotest.(check bool) "message names the hazard" true
          (Util.contains ~sub:"inside a pool task" m));
      (* the worker survives to run later tasks, and await still works
         on the caller's domain *)
      let again = Exec.Pool.submit pool (fun () -> 99) in
      Alcotest.(check int) "pool alive" 99 (Exec.Pool.await again))

(* ------------------------------------------------------------------ *)
(* Parallel = serial graph construction.                                *)
(* ------------------------------------------------------------------ *)

let all_keys ctl nprocs =
  List.concat
    (List.init nprocs (fun pid ->
         List.init
           (Array.length (Ppd.Controller.intervals ctl ~pid))
           (fun iv_id -> (pid, iv_id))))

let dump ctl =
  Format.asprintf "%a" Ppd.Dyn_graph.pp (Ppd.Controller.graph ctl)

let logged ?(sched = Runtime.Sched.default) src =
  let prog = Lang.Compile.compile src in
  let eb = Analysis.Eblock.analyze prog in
  let _, log, _ = Trace.Logger.run_logged ~sched eb in
  (eb, log)

(* Batch-build every interval serially and on a pool; the graphs (full
   deterministic dumps) and the assembly statistics must coincide, and
   prefetch must leave the graph untouched. *)
let par_eq_serial ?sched src =
  let eb, log = logged ?sched src in
  let serial = Ppd.Controller.start eb log in
  Ppd.Controller.build_intervals_par serial
    (all_keys serial log.L.nprocs);
  let d1 = dump serial in
  let s1 = Ppd.Controller.stats serial in
  Exec.Pool.with_pool ~jobs:3 (fun pool ->
      let ctl = Ppd.Controller.start ~pool eb log in
      Ppd.Controller.build_intervals_par ctl (all_keys ctl log.L.nprocs);
      ignore (Ppd.Controller.prefetch ctl);
      let d2 = dump ctl in
      let s2 = Ppd.Controller.stats ctl in
      d1 = d2
      && s1.Ppd.Controller.replays = s2.Ppd.Controller.replays
      && s1.Ppd.Controller.replay_steps = s2.Ppd.Controller.replay_steps)

let test_par_eq_serial_fixed () =
  List.iter
    (fun (name, src) ->
      Alcotest.(check bool) name true (par_eq_serial src))
    [
      ("fig61", Workloads.fig61);
      ("sv_race", Workloads.sv_race);
      ("fixed_bank", Workloads.fixed_bank);
      ("rpc", Workloads.rpc);
      ("ring", Workloads.token_ring ~procs:4 ~rounds:3);
      ("config", Workloads.config_pipeline ~workers:4 ~rounds:6);
    ]

(* Query-driven equality: the flowback slice expands intervals in
   demand order, interleaved with external resolution — with eager
   prefetch racing it on the pool in the parallel variant. *)
let test_par_eq_serial_flowback () =
  let slice_dump pool src =
    let eb, log = logged src in
    let ctl = Ppd.Controller.start ?pool eb log in
    (match Ppd.Controller.last_event_node ctl ~pid:0 with
    | Some root ->
      if pool <> None then ignore (Ppd.Controller.prefetch ctl);
      ignore (Ppd.Flowback.backward_slice ctl root);
      ignore (Ppd.Controller.prefetch ctl)
    | None -> ());
    (dump ctl, Ppd.Controller.stats ctl)
  in
  List.iter
    (fun (name, src) ->
      let d1, s1 = slice_dump None src in
      let d2, s2 =
        Exec.Pool.with_pool ~jobs:4 (fun pool -> slice_dump (Some pool) src)
      in
      Alcotest.(check string) (name ^ " graph") d1 d2;
      Alcotest.(check int)
        (name ^ " replays") s1.Ppd.Controller.replays
        s2.Ppd.Controller.replays)
    [
      ("config", Workloads.config_pipeline ~workers:3 ~rounds:5);
      ("counter", Workloads.counter ~workers:3 ~incs:4 ~mutex:true);
      ("fig61", Workloads.fig61);
    ]

(* Same equality through the demand-paged segment reader: pool workers
   decode pages concurrently through the sharded LRU. *)
let test_par_eq_serial_paged () =
  let eb, log = logged (Workloads.config_pipeline ~workers:4 ~rounds:8) in
  let path = Filename.temp_file "ppd_exec" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Segment.save path log;
      let serial = Ppd.Controller.start eb log in
      Ppd.Controller.build_intervals_par serial
        (all_keys serial log.L.nprocs);
      let d1 = dump serial in
      let d2 =
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            let r = Store.Segment.open_file path in
            let ctl = Ppd.Controller.start_paged ~pool eb r in
            Ppd.Controller.build_intervals_par ctl
              (all_keys ctl log.L.nprocs);
            dump ctl)
      in
      Alcotest.(check string) "paged parallel = in-memory serial" d1 d2)

(* An emulator exception inside a pooled replay surfaces at the await
   in [build_interval] (with its message intact), and neither the pool
   nor the controller wedges: the other intervals still assemble. *)
let test_emulator_exception_no_deadlock () =
  let eb, log = logged Workloads.fixed_bank in
  (* corrupt one worker-process sync record so its interval's replay
     hits a validation mismatch *)
  let corrupted = ref false in
  Array.iteri
    (fun pid entries ->
      if pid > 0 && not !corrupted then
        Array.iteri
          (fun i e ->
            match e with
            | L.Sync ({ sid = Some s; _ } as r) when not !corrupted ->
              entries.(i) <-
                L.Sync { r with sid = Some (if s = 0 then 1 else 0) };
              corrupted := true
            | _ -> ())
          entries)
    log.L.entries;
  Alcotest.(check bool) "found a sync record to corrupt" true !corrupted;
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let ctl = Ppd.Controller.start ~pool eb log in
      let keys = all_keys ctl log.L.nprocs in
      (match Ppd.Controller.build_intervals_par ctl keys with
      | () -> Alcotest.fail "expected a replay mismatch"
      | exception Ppd.Emulator.Replay_mismatch _ -> ());
      (* the pool is still alive: the untouched process's interval
         builds, and fresh tasks run *)
      ignore (Ppd.Controller.build_interval ctl ~pid:0 ~iv_id:0);
      let fut = Exec.Pool.submit pool (fun () -> 7) in
      Alcotest.(check int) "pool still serves" 7 (Exec.Pool.await fut))

(* The ISSUE's property: over the random parallel-program corpus,
   domain-pool replay and the serial path build byte-identical graphs. *)
let par_serial_prop =
  Util.qtest ~count:15 "parallel = serial graphs on random programs"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      par_eq_serial
        ~sched:(Runtime.Sched.Random_seed sseed)
        (Gen.parallel ~protect:`Sometimes seed))

let suite =
  ( "exec",
    [
      Alcotest.test_case "deque owner LIFO" `Quick test_deque_owner_lifo;
      Alcotest.test_case "deque thief FIFO" `Quick test_deque_thief_fifo;
      Alcotest.test_case "deque growth" `Quick test_deque_grows;
      Alcotest.test_case "pool futures" `Quick test_pool_futures;
      Alcotest.test_case "pool survives task exception" `Quick
        test_pool_survives_exception;
      Alcotest.test_case "pool shutdown drains queue" `Quick
        test_pool_shutdown_drains;
      Alcotest.test_case "concurrent shutdown blocks until joined" `Quick
        test_pool_concurrent_shutdown;
      Alcotest.test_case "peek reports failure without raising" `Quick
        test_pool_peek_no_raise;
      Alcotest.test_case "await inside a task fails fast" `Quick
        test_pool_await_inside_task_rejected;
      Alcotest.test_case "parallel = serial (fixed corpus)" `Quick
        test_par_eq_serial_fixed;
      Alcotest.test_case "parallel = serial (flowback slice)" `Quick
        test_par_eq_serial_flowback;
      Alcotest.test_case "parallel = serial (paged reader)" `Quick
        test_par_eq_serial_paged;
      Alcotest.test_case "emulator exception does not wedge the pool" `Quick
        test_emulator_exception_no_deadlock;
      par_serial_prop;
    ] )
