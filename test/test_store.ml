(* The durable segmented store (v2): wire round-trips, crash recovery,
   corruption detection, and demand-paged flowback equivalence. *)

module L = Trace.Log
module S = Store.Segment
module DG = Ppd.Dyn_graph


let run_log ?sched src =
  let eb, _h, log, _tr, _m = Util.run_instrumented ?sched src in
  (eb, log)

let with_tmp f =
  let path = Filename.temp_file "ppd_store" ".log" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Structural equality is a faithful oracle for Log.t: the type is pure
   data (ints, strings, arrays, no closures or cycles). *)
let check_log_equal name (a : L.t) (b : L.t) =
  Alcotest.(check bool) name true (a = b)

(* -------------------------------------------------------------- *)
(* Round trips *)

let roundtrip_prop =
  Util.qtest ~count:25 "random parallel programs: decode (encode log) = log"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1000))
    (fun (seed, sseed) ->
      let _eb, log =
        run_log
          ~sched:(Runtime.Sched.Random_seed sseed)
          (Gen.parallel ~protect:`Sometimes seed)
      in
      with_tmp (fun path ->
          S.save path log;
          let log' = S.load path in
          let r = S.verify path in
          log' = log && r.S.vr_version = 2 && r.S.vr_indexed
          && r.S.vr_damage = []
          && r.S.vr_records = L.entry_count log))

let test_fixed_corpus_roundtrip () =
  List.iter
    (fun (name, src) ->
      let _eb, log = run_log src in
      with_tmp (fun path ->
          S.save path log;
          check_log_equal name log (S.load path);
          let r = S.verify path in
          Alcotest.(check bool) (name ^ " clean") true (r.S.vr_damage = []);
          Alcotest.(check int)
            (name ^ " measured size")
            r.S.vr_bytes
            (S.encoded_size log)))
    Workloads.all_fixed

let test_streamed_equals_memory () =
  (* the sink writes entries in execution-interleaved order; the decoded
     log must still equal the one built in memory by the logger *)
  let prog = Lang.Compile.compile Workloads.fig61 in
  let eb = Analysis.Eblock.analyze prog in
  with_tmp (fun path ->
      let w = S.Writer.to_file path in
      let logger = Trace.Logger.create ~sink:(S.Writer.sink w) eb in
      let m =
        Runtime.Machine.create ~hooks:(Trace.Logger.factory logger) prog
      in
      ignore (Runtime.Machine.run m);
      let log = Trace.Logger.finish logger in
      S.Writer.close w;
      check_log_equal "streamed file decodes to the in-memory log" log
        (S.load path);
      let r = S.verify path in
      Alcotest.(check bool) "index intact" true r.S.vr_indexed;
      Alcotest.(check bool) "no damage" true (r.S.vr_damage = []))

let test_v1_still_readable () =
  let _eb, log = run_log Workloads.fig61 in
  with_tmp (fun path ->
      Trace.Log_io.save path log;
      check_log_equal "v1 file loads through the store" log (S.load path);
      let r = S.verify path in
      Alcotest.(check int) "reported as v1" 1 r.S.vr_version;
      Alcotest.(check bool) "v1 verifies clean" true (r.S.vr_damage = []))

let test_measure_matches_disk () =
  (* satellite: Log_io.measure must report the exact on-disk byte count *)
  let _eb, log = run_log (Workloads.counter ~workers:2 ~incs:5 ~mutex:true) in
  with_tmp (fun path ->
      Trace.Log_io.save path log;
      let size =
        In_channel.with_open_bin path (fun ic ->
            Int64.to_int (In_channel.length ic))
      in
      Alcotest.(check int) "measure = v1 file size" size
        (Trace.Log_io.measure log))

(* -------------------------------------------------------------- *)
(* Crash recovery *)

(* [b] holds, per pid, a prefix of [a]'s entries, equal element-wise.
   A salvage that recovers no record for the highest pids cannot know
   they existed, so [b] may have fewer processes than [a] — but never
   more, and never an entry that differs from the original. *)
let is_prefix_log (a : L.t) (b : L.t) =
  b.L.nprocs <= a.L.nprocs
  && Array.length b.L.entries = b.L.nprocs
  && (let ok = ref true in
      for pid = 0 to b.L.nprocs - 1 do
        let ea = a.L.entries.(pid) and eb = b.L.entries.(pid) in
        if Array.length eb > Array.length ea then ok := false
        else
          Array.iteri (fun i y -> if ea.(i) <> y then ok := false) eb
      done;
      !ok)

let test_truncation_salvage () =
  let _eb, log = run_log Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let n = String.length full in
      (* every cut point: the salvaged log is always a per-pid prefix,
         and cutting only the trailer/footer loses no record at all *)
      let cut len =
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (String.sub full 0 len))
      in
      for len = 8 to n - 1 do
        cut len;
        let r = S.verify path in
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d detected" len)
          true (r.S.vr_damage <> []);
        let salvaged = S.load path in
        Alcotest.(check bool)
          (Printf.sprintf "cut at %d salvages a prefix" len)
          true (is_prefix_log log salvaged)
      done;
      (* a cut that only destroys the trailer still recovers everything *)
      cut (n - 10);
      check_log_equal "footer-only damage loses no entry" log (S.load path);
      (* cutting into the magic makes the file unreadable, not garbage *)
      cut 5;
      (match S.load path with
      | exception Trace.Log_io.Unreadable _ -> ()
      | _ -> Alcotest.fail "expected Unreadable on a 5-byte file"))

let test_byte_flip_always_detected () =
  (* flip every single byte of the file in turn: verify must flag each
     corruption (or refuse the file outright), and load must never
     silently mis-decode — it either refuses or salvages a valid
     prefix. *)
  let _eb, log = run_log Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check int) "file size = encoded_size"
        (S.encoded_size log)
        (String.length full);
      for i = 0 to String.length full - 1 do
        let b = Bytes.of_string full in
        Bytes.set b i (Char.chr (Char.code full.[i] lxor 0xFF));
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_bytes oc b);
        (match S.verify path with
        | exception Trace.Log_io.Unreadable _ -> ()
        | r ->
          Alcotest.(check bool)
            (Printf.sprintf "flip at %d detected" i)
            true
            (r.S.vr_damage <> []));
        match S.load path with
        | exception Trace.Log_io.Unreadable _ -> ()
        | salvaged ->
          Alcotest.(check bool)
            (Printf.sprintf "flip at %d never mis-decodes" i)
            true (is_prefix_log log salvaged)
      done)

(* -------------------------------------------------------------- *)
(* Demand-paged debugging *)

(* Drive the same flowback session against a controller and digest
   everything observable: per-process roots, the slices hanging off
   them, and the final graph. Two controllers over the same execution
   must produce byte-identical digests. *)
let drive ctl ~nprocs =
  let buf = Buffer.create 1024 in
  let g = Ppd.Controller.graph ctl in
  for pid = 0 to nprocs - 1 do
    match Ppd.Controller.last_event_node ctl ~pid with
    | None -> Buffer.add_string buf (Printf.sprintf "p%d: no root\n" pid)
    | Some root ->
      Buffer.add_string buf (Printf.sprintf "p%d root %d\n" pid root);
      List.iter
        (fun (d : Ppd.Flowback.dep) ->
          let nd = DG.node g d.Ppd.Flowback.d_node in
          Buffer.add_string buf
            (Printf.sprintf "  %d p%d [%s] %s\n" d.Ppd.Flowback.d_node
               nd.DG.nd_pid nd.DG.nd_label
               (match nd.DG.nd_value with
               | None -> "-"
               | Some v -> Format.asprintf "%a" Runtime.Value.pp v)))
        (Ppd.Flowback.backward_slice ctl root)
  done;
  for i = 0 to DG.nnodes g - 1 do
    let nd = DG.node g i in
    Buffer.add_string buf
      (Printf.sprintf "node %d p%d [%s]\n" i nd.DG.nd_pid nd.DG.nd_label)
  done;
  let st = Ppd.Controller.stats ctl in
  Buffer.add_string buf
    (Printf.sprintf "replays=%d intervals=%d\n" st.Ppd.Controller.replays
       st.Ppd.Controller.intervals_total);
  Buffer.contents buf

let paged_corpus =
  [
    ("fig41", Workloads.fig41);
    ("fig61", Workloads.fig61);
    ("buggy_min", Workloads.buggy_min);
    ("racy_bank", Workloads.racy_bank);
    ("rpc", Workloads.rpc);
    ("deep_calls", Workloads.deep_calls ~depth:4);
    ("counter", Workloads.counter ~workers:2 ~incs:4 ~mutex:true);
    ("prodcons", Workloads.producer_consumer ~items:4 ~cap:2);
    ("ring", Workloads.token_ring ~procs:3 ~rounds:2);
    ("branchy", Workloads.branchy ~rounds:5);
    ("fib", Workloads.fib 6);
  ]

let test_paged_equals_memory () =
  List.iter
    (fun (name, src) ->
      let eb, log = run_log src in
      with_tmp (fun path ->
          S.save path log;
          let reader = S.open_file path in
          Alcotest.(check bool) (name ^ " paged") true (S.is_indexed reader);
          (* the footer interval tables must equal what Log.intervals
             computes from the decoded records *)
          let ctl_mem = Ppd.Controller.start eb log in
          let ctl_paged = Ppd.Controller.start_paged eb reader in
          for pid = 0 to log.L.nprocs - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "%s p%d intervals equal" name pid)
              true
              (Ppd.Controller.intervals ctl_mem ~pid
              = Ppd.Controller.intervals ctl_paged ~pid)
          done;
          let mem = drive ctl_mem ~nprocs:log.L.nprocs in
          let paged = drive ctl_paged ~nprocs:log.L.nprocs in
          Alcotest.(check string) (name ^ " flowback identical") mem paged))
    paged_corpus

let paged_prop =
  Util.qtest ~count:15 "random programs: paged flowback = in-memory"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1000))
    (fun (seed, sseed) ->
      let eb, log =
        run_log
          ~sched:(Runtime.Sched.Random_seed sseed)
          (Gen.parallel ~protect:`Always seed)
      in
      with_tmp (fun path ->
          S.save path log;
          let ctl_mem = Ppd.Controller.start eb log in
          let ctl_paged = Ppd.Controller.start_paged eb (S.open_file path) in
          drive ctl_mem ~nprocs:log.L.nprocs
          = drive ctl_paged ~nprocs:log.L.nprocs))

let test_salvaged_reader_still_debugs () =
  (* cut the file mid-record: the salvaged intervals that survived must
     still replay and answer queries *)
  let eb, log = run_log Workloads.fig61 in
  with_tmp (fun path ->
      S.save path log;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full * 2 / 3)));
      let reader = S.open_file path in
      Alcotest.(check bool) "salvage path" true (not (S.is_indexed reader));
      Alcotest.(check bool) "damage reported" true (S.damage reader <> []);
      let ctl = Ppd.Controller.start_paged eb reader in
      (* every surviving interval builds without raising *)
      for pid = 0 to S.nprocs reader - 1 do
        let ivs = Ppd.Controller.intervals ctl ~pid in
        Array.iteri
          (fun iv_id _ ->
            ignore (Ppd.Controller.build_interval ctl ~pid ~iv_id))
          ivs
      done;
      Alcotest.(check bool) "graph non-empty" true
        (DG.nnodes (Ppd.Controller.graph ctl) > 0))

let suite =
  ( "store",
    [
      roundtrip_prop;
      Alcotest.test_case "fixed corpus round trip" `Quick
        test_fixed_corpus_roundtrip;
      Alcotest.test_case "streamed sink = in-memory log" `Quick
        test_streamed_equals_memory;
      Alcotest.test_case "v1 readable through the store" `Quick
        test_v1_still_readable;
      Alcotest.test_case "measure matches disk size" `Quick
        test_measure_matches_disk;
      Alcotest.test_case "truncation salvages longest prefix" `Quick
        test_truncation_salvage;
      Alcotest.test_case "every byte flip detected" `Quick
        test_byte_flip_always_detected;
      Alcotest.test_case "paged flowback = in-memory (corpus)" `Quick
        test_paged_equals_memory;
      paged_prop;
      Alcotest.test_case "salvaged file still debugs" `Quick
        test_salvaged_reader_still_debugs;
    ] )
