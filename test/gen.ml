(* Random MPL program generation for property-based tests.

   Programs are generated as source text and are correct by
   construction: every variable is initialised at declaration, loops
   are bounded by reserved counters the loop body cannot touch,
   division is never generated, recursion is impossible (functions only
   call earlier functions), and the parallel generator can protect all
   shared accesses with one semaphore (race-free mode) or leave them
   unprotected (racy mode). *)

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable locals : string list;  (* initialised, assignable *)
  mutable fresh : int;
  funcs : (string * int) list;  (* callable earlier functions: name, arity *)
  shared : string list;  (* shared globals usable in this body *)
  protect : [ `Always | `Never | `Sometimes ];
  mutable budget : int;  (* remaining statements to emit *)
}

let rand ctx n = Random.State.int ctx.rng n

let pick ctx l = List.nth l (rand ctx (List.length l))

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let add ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf s) fmt

let indent depth = String.make (2 * depth) ' '

(* Integer expressions over initialised locals; no division, depth
   bounded. *)
let rec gen_expr ctx depth =
  if depth = 0 || ctx.locals = [] then
    match rand ctx 3 with
    | 0 | 1 when ctx.locals <> [] -> pick ctx ctx.locals
    | _ -> string_of_int (rand ctx 10)
  else
    match rand ctx 5 with
    | 0 -> Printf.sprintf "(%s + %s)" (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (gen_expr ctx (depth - 1)) (string_of_int (1 + rand ctx 4))
    | 3 -> Printf.sprintf "(-%s)" (gen_expr ctx (depth - 1))
    | _ -> ( match ctx.locals with [] -> "1" | l -> pick ctx l)

let gen_cond ctx depth =
  let cmp = pick ctx [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
  let base () =
    Printf.sprintf "%s %s %s" (gen_expr ctx depth) cmp (gen_expr ctx depth)
  in
  match rand ctx 4 with
  | 0 when depth > 0 ->
    Printf.sprintf "(%s && %s)" (base ()) (base ())
  | 1 when depth > 0 -> Printf.sprintf "(%s || !(%s))" (base ()) (base ())
  | _ -> base ()

let gen_call ctx depth =
  match ctx.funcs with
  | [] -> None
  | fs ->
    let name, arity = pick ctx fs in
    let args = List.init arity (fun _ -> gen_expr ctx depth) in
    Some (Printf.sprintf "%s(%s)" name (String.concat ", " args))

let rec gen_stmt ctx depth =
  if ctx.budget <= 0 then ()
  else begin
    ctx.budget <- ctx.budget - 1;
    match rand ctx 10 with
    | 0 | 1 ->
      (* declaration *)
      let x = fresh ctx "v" in
      add ctx "%svar %s = %s;\n" (indent depth) x (gen_expr ctx 2);
      ctx.locals <- x :: ctx.locals
    | 2 | 3 | 4 ->
      if ctx.locals <> [] then
        add ctx "%s%s = %s;\n" (indent depth) (pick ctx ctx.locals)
          (gen_expr ctx 2)
    | 5 ->
      add ctx "%sif (%s) {\n" (indent depth) (gen_cond ctx 1);
      let saved = ctx.locals in
      gen_stmts ctx (depth + 1) (1 + rand ctx 2);
      ctx.locals <- saved;
      if rand ctx 2 = 0 then begin
        add ctx "%s} else {\n" (indent depth);
        gen_stmts ctx (depth + 1) (1 + rand ctx 2);
        ctx.locals <- saved
      end;
      add ctx "%s}\n" (indent depth)
    | 6 ->
      (* bounded loop with a reserved counter (declared outside, so it
         stays in scope; body-local declarations must not leak) *)
      let i = fresh ctx "lc" in
      let bound = 1 + rand ctx 3 in
      add ctx "%svar %s = 0;\n" (indent depth) i;
      add ctx "%swhile (%s < %d) {\n" (indent depth) i bound;
      let saved = ctx.locals in
      gen_stmts ctx (depth + 1) (1 + rand ctx 2);
      ctx.locals <- saved;
      add ctx "%s%s = %s + 1;\n" (indent (depth + 1)) i i;
      add ctx "%s}\n" (indent depth)
    | 7 -> (
      match gen_call ctx 1 with
      | Some call ->
        let x = fresh ctx "r" in
        add ctx "%svar %s = %s;\n" (indent depth) x call;
        ctx.locals <- x :: ctx.locals
      | None ->
        if ctx.locals <> [] then
          add ctx "%s%s = %s;\n" (indent depth) (pick ctx ctx.locals)
            (gen_expr ctx 2))
    | 8 when ctx.shared <> [] ->
      (* shared access, optionally protected *)
      let g = pick ctx ctx.shared in
      let protected_ =
        match ctx.protect with
        | `Always -> true
        | `Never -> false
        | `Sometimes -> rand ctx 2 = 0
      in
      if protected_ then add ctx "%sP(gmutex);\n" (indent depth);
      (match rand ctx 2 with
      | 0 -> add ctx "%s%s = %s + %s;\n" (indent depth) g g (gen_expr ctx 1)
      | _ ->
        let x = fresh ctx "s" in
        add ctx "%svar %s = %s;\n" (indent depth) x g;
        ctx.locals <- x :: ctx.locals);
      if protected_ then add ctx "%sV(gmutex);\n" (indent depth)
    | _ ->
      if ctx.locals <> [] then
        add ctx "%sprint(%s);\n" (indent depth) (pick ctx ctx.locals)
  end

and gen_stmts ctx depth n =
  for _ = 1 to n do
    gen_stmt ctx depth
  done

let gen_func rng buf ~name ~arity ~funcs ~shared ~protect ~budget ~returns =
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) {\n" name (String.concat ", " params));
  let ctx =
    {
      rng;
      buf;
      locals = params;
      fresh = 0;
      funcs;
      shared;
      protect;
      budget;
    }
  in
  gen_stmts ctx 1 budget;
  if returns then
    Buffer.add_string buf (Printf.sprintf "  return %s;\n" (gen_expr ctx 2));
  Buffer.add_string buf "}\n\n"

(* A random sequential program: a few helper functions plus main. *)
let sequential ?(nfuncs = 3) ?(budget = 8) seed =
  let rng = Random.State.make [| seed |] in
  let buf = Buffer.create 1024 in
  let funcs = ref [] in
  for i = 0 to nfuncs - 1 do
    let name = Printf.sprintf "f%d" i in
    let arity = 1 + Random.State.int rng 2 in
    gen_func rng buf ~name ~arity ~funcs:!funcs ~shared:[] ~protect:`Never
      ~budget ~returns:true;
    funcs := (name, arity) :: !funcs
  done;
  gen_func rng buf ~name:"main" ~arity:0 ~funcs:!funcs ~shared:[]
    ~protect:`Never ~budget:(budget * 2) ~returns:false;
  Buffer.contents buf

(* A random parallel program: shared globals, one mutex, worker
   processes spawned and joined by main. [protect] controls whether
   shared accesses are always, never, or sometimes guarded. *)
let parallel ?(workers = 3) ?(budget = 6) ~protect seed =
  let rng = Random.State.make [| seed |] in
  let buf = Buffer.create 1024 in
  let shared = [ "g0"; "g1" ] in
  List.iter
    (fun g -> Buffer.add_string buf (Printf.sprintf "shared int %s = 0;\n" g))
    shared;
  Buffer.add_string buf "sem gmutex = 1;\n\n";
  let funcs = ref [] in
  for i = 0 to workers - 1 do
    let name = Printf.sprintf "w%d" i in
    gen_func rng buf ~name ~arity:1 ~funcs:[] ~shared ~protect ~budget
      ~returns:true;
    funcs := (name, 1) :: !funcs
  done;
  (* main spawns every worker, then joins *)
  Buffer.add_string buf "func main() {\n";
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  var pid%d = spawn %s(%d);\n" i name i))
    !funcs;
  List.iteri
    (fun i _ -> Buffer.add_string buf (Printf.sprintf "  join(pid%d);\n" i))
    !funcs;
  Buffer.add_string buf "  print(g0);\n  print(g1);\n}\n";
  Buffer.contents buf

(* A random protocol-heavy program: two straight-line workers that take
   two semaphores in a random (possibly inverted, possibly nested)
   order and perform a random sequence of rendezvous sends/receives;
   main spawns and joins both. No loops, branches or data-dependent
   control, so the abstract protocol model of [Analysis.Effects] is
   exact for these programs — [Analysis.Proto]'s verdict must agree
   with concrete scheduling in both directions, which is what the
   qcheck oracle in test_proto.ml exploits. Roughly half the seeds can
   deadlock (AB/BA lock inversion or mismatched rendezvous counts). *)
let protocol seed =
  let rng = Random.State.make [| seed |] in
  let r n = Random.State.int rng n in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "sem a = 1;\nsem b = 1;\nchan c[0];\n\n";
  let worker name =
    Buffer.add_string buf (Printf.sprintf "func %s() {\n" name);
    let x, y = if r 2 = 0 then ("a", "b") else ("b", "a") in
    if r 2 = 0 then
      Buffer.add_string buf
        (Printf.sprintf "  P(%s);\n  P(%s);\n  V(%s);\n  V(%s);\n" x y y x)
    else Buffer.add_string buf (Printf.sprintf "  P(%s);\n  V(%s);\n" x x);
    let ops = List.init (r 4) (fun _ -> r 2 = 0) in
    if List.exists not ops then Buffer.add_string buf "  var m = 0;\n";
    List.iter
      (fun send ->
        Buffer.add_string buf
          (if send then "  send(c, 1);\n" else "  recv(c, m);\n"))
      ops;
    Buffer.add_string buf "}\n\n"
  in
  worker "w1";
  worker "w2";
  Buffer.add_string buf
    "func main() {\n\
    \  var p1 = spawn w1();\n\
    \  var p2 = spawn w2();\n\
    \  join(p1);\n\
    \  join(p2);\n\
     }\n";
  Buffer.contents buf

(* Random raw ASTs for pretty-printer round-trips are easier to derive
   from the source generators: parse the generated text. *)
let sequential_ast seed = Lang.Parser.parse_program (sequential seed)
