(* The resilience substrate (DESIGN §17): deterministic backoff
   schedules, breaker state machines at exact thresholds, and
   deadlines that never fire early — all under a mocked monotonic
   clock, so every assertion is exact and nothing sleeps. *)

module R = Resil

(* -------------------------------------------------------------- *)
(* Backoff *)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let backoff_reproducible =
  Util.qtest ~count:200 "backoff schedule is a pure function of the seed"
    QCheck2.Gen.(pair seed_gen (int_range 0 20))
    (fun (seed, attempt) ->
      R.Backoff.delay_ms ~seed attempt = R.Backoff.delay_ms ~seed attempt)

let backoff_bounded =
  Util.qtest ~count:500 "backoff delays stay inside the jitter window"
    QCheck2.Gen.(pair seed_gen (int_range 0 30))
    (fun (seed, attempt) ->
      let p = R.Backoff.default in
      let rec expo acc n =
        if n <= 0 || acc >= p.R.Backoff.max_ms then min acc p.R.Backoff.max_ms
        else expo (acc * p.R.Backoff.multiplier) (n - 1)
      in
      let upper = expo p.R.Backoff.base_ms attempt in
      let lo = upper - (upper * p.R.Backoff.jitter_pct / 100) in
      let d = R.Backoff.delay_ms ~seed attempt in
      lo <= d && d <= upper)

let test_backoff_exact_without_jitter () =
  let policy =
    { R.Backoff.base_ms = 10; max_ms = 160; multiplier = 2; jitter_pct = 0 }
  in
  List.iteri
    (fun attempt expected ->
      Alcotest.(check int)
        (Printf.sprintf "attempt %d" attempt)
        expected
        (R.Backoff.delay_ms ~policy ~seed:42 attempt))
    [ 10; 20; 40; 80; 160; 160; 160 ]

let test_backoff_seed_variation () =
  (* distinct seeds should disagree somewhere in a short schedule —
     the jitter is real, not a constant offset *)
  let schedule seed = List.init 8 (fun a -> R.Backoff.delay_ms ~seed a) in
  Alcotest.(check bool) "seeds produce different schedules" true
    (schedule 1 <> schedule 2 || schedule 2 <> schedule 3)

(* -------------------------------------------------------------- *)
(* Deadlines under a mocked clock *)

let with_clock ns f =
  let now = ref ns in
  R.Clock.with_source (fun () -> !now) (fun () -> f now)

let test_deadline_never_early () =
  with_clock 1_000_000 (fun now ->
      let d = R.Deadline.after_ms 10 in
      (* sweep the whole open interval: not expired anywhere inside *)
      List.iter
        (fun delta ->
          now := 1_000_000 + delta;
          Alcotest.(check bool)
            (Printf.sprintf "alive at +%dns" delta)
            false (R.Deadline.expired d);
          R.Deadline.check d (* must not raise *))
        [ 0; 1; 9_999_999; 10_000_000 ];
      (* one nanosecond past the boundary: expired, and check raises *)
      now := 1_000_000 + 10_000_001;
      Alcotest.(check bool) "expired after the boundary" true
        (R.Deadline.expired d);
      (match R.Deadline.check d with
      | () -> Alcotest.fail "check did not raise past the deadline"
      | exception R.Deadline.Expired -> ());
      Alcotest.(check bool) "remaining is clamped at zero" true
        (R.Deadline.remaining_ns d = 0))

let deadline_never_early_qcheck =
  Util.qtest ~count:300 "deadline never fires inside its window"
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 99))
    (fun (ms, pct) ->
      with_clock 5_000_000 (fun now ->
          let d = R.Deadline.after_ms ms in
          (* a point strictly inside [now, now + ms) *)
          now := 5_000_000 + (ms * 1_000_000 * pct / 100);
          not (R.Deadline.expired d)))

let test_deadline_none () =
  with_clock 0 (fun now ->
      let d = R.Deadline.none in
      Alcotest.(check bool) "is_none" true (R.Deadline.is_none d);
      now := max_int / 2;
      Alcotest.(check bool) "none never expires" false (R.Deadline.expired d);
      R.Deadline.check d;
      Alcotest.(check bool) "after_ms 0 is none" true
        (R.Deadline.is_none (R.Deadline.after_ms 0));
      Alcotest.(check bool) "after_ms -5 is none" true
        (R.Deadline.is_none (R.Deadline.after_ms (-5))))

(* -------------------------------------------------------------- *)
(* Breakers at exact thresholds *)

let test_breaker_trips_at_threshold () =
  with_clock 0 (fun now ->
      let config = { R.Breaker.failure_threshold = 3; cooldown_ms = 50 } in
      let b = R.Breaker.create ~config "log-a" in
      (* threshold - 1 failures: still closed, still admitting *)
      for _ = 1 to 2 do
        Alcotest.(check bool) "closed admits" true (R.Breaker.acquire b);
        R.Breaker.failure b
      done;
      Alcotest.(check bool) "still closed" true
        (R.Breaker.state b = R.Breaker.Closed);
      (* the exact threshold failure trips it *)
      Alcotest.(check bool) "third acquire" true (R.Breaker.acquire b);
      R.Breaker.failure b;
      Alcotest.(check bool) "tripped open" true
        (R.Breaker.state b = R.Breaker.Open);
      Alcotest.(check bool) "open fast-fails" false (R.Breaker.acquire b);
      (* one nanosecond short of the cooldown: still quarantined *)
      now := (50 * 1_000_000) - 1;
      Alcotest.(check bool) "not yet cooled" false (R.Breaker.acquire b);
      (* at the cooldown boundary: the single half-open probe *)
      now := 50 * 1_000_000;
      Alcotest.(check bool) "cooled: probe admitted" true (R.Breaker.acquire b);
      Alcotest.(check bool) "half-open" true
        (R.Breaker.state b = R.Breaker.Half_open);
      Alcotest.(check bool) "probe token is exclusive" false
        (R.Breaker.acquire b);
      (* a failed probe re-opens and restarts the cooldown *)
      R.Breaker.failure b;
      Alcotest.(check bool) "probe failure re-opens" true
        (R.Breaker.state b = R.Breaker.Open);
      Alcotest.(check bool) "re-quarantined" false (R.Breaker.acquire b);
      now := 2 * 50 * 1_000_000;
      Alcotest.(check bool) "second probe" true (R.Breaker.acquire b);
      (* a successful probe closes and resets the failure count *)
      R.Breaker.success b;
      Alcotest.(check bool) "probe success closes" true
        (R.Breaker.state b = R.Breaker.Closed);
      let st = R.Breaker.stats b in
      Alcotest.(check int) "failure count reset" 0 st.R.Breaker.st_failures;
      Alcotest.(check int) "two trips recorded" 2 st.R.Breaker.st_trips;
      Alcotest.(check bool) "fast fails recorded" true
        (st.R.Breaker.st_fast_fails >= 3))

let test_breaker_abstain_returns_probe () =
  with_clock 0 (fun now ->
      let config = { R.Breaker.failure_threshold = 1; cooldown_ms = 10 } in
      let b = R.Breaker.create ~config "log-b" in
      Alcotest.(check bool) "admit" true (R.Breaker.acquire b);
      R.Breaker.failure b;
      now := 10 * 1_000_000;
      Alcotest.(check bool) "probe" true (R.Breaker.acquire b);
      (* inconclusive outcome: the probe token comes back, the state
         machine does not move *)
      R.Breaker.abstain b;
      Alcotest.(check bool) "still half-open" true
        (R.Breaker.state b = R.Breaker.Half_open);
      Alcotest.(check bool) "probe available again" true (R.Breaker.acquire b);
      R.Breaker.success b;
      Alcotest.(check bool) "closed" true (R.Breaker.state b = R.Breaker.Closed))

let test_breaker_success_resets_streak () =
  let config = { R.Breaker.failure_threshold = 3; cooldown_ms = 1000 } in
  let b = R.Breaker.create ~config "log-c" in
  (* failures interleaved with successes never reach the threshold *)
  for _ = 1 to 10 do
    Alcotest.(check bool) "admitted" true (R.Breaker.acquire b);
    R.Breaker.failure b;
    Alcotest.(check bool) "admitted" true (R.Breaker.acquire b);
    R.Breaker.failure b;
    Alcotest.(check bool) "admitted" true (R.Breaker.acquire b);
    R.Breaker.success b
  done;
  Alcotest.(check bool) "still closed" true (R.Breaker.state b = R.Breaker.Closed)

let test_breaker_group () =
  let g = R.Breaker.Group.create () in
  let a = R.Breaker.Group.get g "a" in
  let a' = R.Breaker.Group.get g "a" in
  Alcotest.(check bool) "same breaker per key" true (a == a');
  ignore (R.Breaker.Group.get g "b");
  let keys =
    List.map (fun s -> s.R.Breaker.st_key) (R.Breaker.Group.all g)
  in
  Alcotest.(check (list string)) "sorted stats" [ "a"; "b" ] keys;
  Alcotest.(check bool) "find" true (R.Breaker.Group.find g "a" <> None);
  R.Breaker.Group.remove g "a";
  Alcotest.(check bool) "removed" true (R.Breaker.Group.find g "a" = None)

(* -------------------------------------------------------------- *)
(* Byte budgets *)

let test_budget_accounting () =
  let b = R.Budget.create ~name:"t" ~cap:100 () in
  Alcotest.(check int) "cap" 100 (R.Budget.cap b);
  R.Budget.charge b 60;
  Alcotest.(check int) "used" 60 (R.Budget.used b);
  Alcotest.(check int) "not over" 0 (R.Budget.over b);
  R.Budget.charge b 80;
  Alcotest.(check int) "over by 40" 40 (R.Budget.over b);
  R.Budget.release b 90;
  Alcotest.(check int) "released" 50 (R.Budget.used b)

let test_budget_reclaim_order () =
  let b = R.Budget.create ~name:"t2" ~cap:100 () in
  let calls = ref [] in
  let cache name held =
    let bytes = ref held in
    R.Budget.add_reclaimer b ~name ~weight:(List.length !calls) (fun want ->
        calls := name :: !calls;
        let freed = min want !bytes in
        bytes := !bytes - freed;
        R.Budget.release b freed;
        freed)
  in
  (* weight 0 first, then weight 1 *)
  R.Budget.add_reclaimer b ~name:"pages" ~weight:0 (fun want ->
      calls := "pages" :: !calls;
      let freed = min want 30 in
      R.Budget.release b freed;
      freed);
  R.Budget.add_reclaimer b ~name:"frags" ~weight:1 (fun want ->
      calls := "frags" :: !calls;
      let freed = min want 1000 in
      R.Budget.release b freed;
      freed);
  ignore cache;
  R.Budget.charge b 150;
  R.Budget.rebalance b;
  Alcotest.(check (list string)) "pages reclaimed before frags"
    [ "pages"; "frags" ] (List.rev !calls);
  Alcotest.(check bool) "under cap after rebalance" true
    (R.Budget.used b <= 100)

let test_budget_unlimited () =
  let b = R.Budget.create ~cap:0 () in
  R.Budget.charge b 1_000_000;
  Alcotest.(check int) "accounting still runs" 1_000_000 (R.Budget.used b);
  Alcotest.(check int) "never over" 0 (R.Budget.over b);
  R.Budget.rebalance b (* and rebalance is a no-op, not a crash *)

let suite =
  ( "resil",
    [
      backoff_reproducible;
      backoff_bounded;
      Alcotest.test_case "backoff exact without jitter" `Quick
        test_backoff_exact_without_jitter;
      Alcotest.test_case "backoff seeds vary" `Quick test_backoff_seed_variation;
      Alcotest.test_case "deadline never fires early" `Quick
        test_deadline_never_early;
      deadline_never_early_qcheck;
      Alcotest.test_case "deadline none" `Quick test_deadline_none;
      Alcotest.test_case "breaker trips at the exact threshold" `Quick
        test_breaker_trips_at_threshold;
      Alcotest.test_case "breaker abstain returns the probe" `Quick
        test_breaker_abstain_returns_probe;
      Alcotest.test_case "breaker success resets the streak" `Quick
        test_breaker_success_resets_streak;
      Alcotest.test_case "breaker group" `Quick test_breaker_group;
      Alcotest.test_case "budget accounting" `Quick test_budget_accounting;
      Alcotest.test_case "budget reclaims in weight order" `Quick
        test_budget_reclaim_order;
      Alcotest.test_case "budget unlimited" `Quick test_budget_unlimited;
    ] )
