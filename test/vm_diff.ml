(* Standalone VM/interpreter differential fuzzer for CI.

   Runs random programs (sequential and parallel, race-free and racy)
   under a cycle of schedulers on both engines and requires identical
   observable behaviour: full event traces (pid, seq, step, event),
   halt state, program output, step count, per-process event counts,
   final globals, and the marshalled bytes of the saved incremental
   trace log. The alcotest suite (test_vm.ml) runs a smaller version of
   the same oracle on every `dune runtest`; this executable exists so
   the vm-differential CI job can push the count much higher and upload
   a counterexample artifact on failure.

   Environment:
     PPD_VM_DIFF_COUNT  seeds to try (default 60)
     PPD_VM_DIFF_SEED   base seed (default 1)

   On a mismatch the offending program is written to
   vm-diff-counterexample.mpl (with the seed and scheduler in a
   comment) and the process exits 1. *)

let count =
  match Sys.getenv_opt "PPD_VM_DIFF_COUNT" with
  | Some s -> ( try int_of_string s with _ -> 60)
  | None -> 60

let base_seed =
  match Sys.getenv_opt "PPD_VM_DIFF_SEED" with
  | Some s -> ( try int_of_string s with _ -> 1)
  | None -> 1

let sched_name = function
  | Runtime.Sched.Round_robin q -> Printf.sprintf "rr:%d" q
  | Runtime.Sched.Random_seed s -> Printf.sprintf "random:%d" s
  | Runtime.Sched.Scripted _ -> "scripted"
  | Runtime.Sched.Guided _ -> "guided"

exception Mismatch of string

let fail fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt

let run_engine engine prog eb sched =
  let logger = Trace.Logger.create eb in
  let ft = Trace.Full_trace.create () in
  let hooks =
    Runtime.Hooks.both (Trace.Logger.factory logger) (Trace.Full_trace.factory ft)
  in
  let m =
    Runtime.Machine.create ~engine ~sched ~max_steps:200_000 ~hooks prog
  in
  let halt = Runtime.Machine.run m in
  (halt, Trace.Full_trace.finish ft, Trace.Logger.finish logger, m)

let show_rec (r : Trace.Full_trace.rec_) =
  Format.asprintf "p%d #%d @%d %a" r.tr_pid r.tr_seq r.tr_step Runtime.Event.pp
    r.tr_ev

let halt_name = function
  | Runtime.Machine.Finished -> "finished"
  | Runtime.Machine.Deadlock _ -> "deadlock"
  | Runtime.Machine.Fault { msg; _ } -> "fault: " ^ msg
  | Runtime.Machine.Breakpoint { sid; _ } ->
    Printf.sprintf "breakpoint at s%d" sid
  | Runtime.Machine.Out_of_fuel -> "out of fuel"

let compare_runs prog eb sched =
  let hi, ti, li, mi = run_engine Runtime.Machine.Interp_engine prog eb sched in
  let hv, tv, lv, mv = run_engine Runtime.Machine.Vm_engine prog eb sched in
  if hi <> hv then fail "halt differs: %s vs %s" (halt_name hi) (halt_name hv);
  if Runtime.Machine.output mi <> Runtime.Machine.output mv then
    fail "output differs:\n--- interp\n%s--- vm\n%s" (Runtime.Machine.output mi)
      (Runtime.Machine.output mv);
  if Runtime.Machine.nsteps mi <> Runtime.Machine.nsteps mv then
    fail "nsteps differs: %d vs %d" (Runtime.Machine.nsteps mi)
      (Runtime.Machine.nsteps mv);
  if Runtime.Machine.nprocs mi <> Runtime.Machine.nprocs mv then
    fail "nprocs differs: %d vs %d" (Runtime.Machine.nprocs mi)
      (Runtime.Machine.nprocs mv);
  for pid = 0 to Runtime.Machine.nprocs mi - 1 do
    if Runtime.Machine.proc_seq mi pid <> Runtime.Machine.proc_seq mv pid then
      fail "proc %d event count differs: %d vs %d" pid
        (Runtime.Machine.proc_seq mi pid)
        (Runtime.Machine.proc_seq mv pid)
  done;
  Array.iteri
    (fun slot _ ->
      let gi = Runtime.Machine.read_global mi slot
      and gv = Runtime.Machine.read_global mv slot in
      if gi <> gv then
        fail "global slot %d differs: %s vs %s" slot
          (Runtime.Value.to_string gi) (Runtime.Value.to_string gv))
    prog.Lang.Prog.global_inits;
  let ni = Array.length ti.Trace.Full_trace.recs
  and nv = Array.length tv.Trace.Full_trace.recs in
  for i = 0 to min ni nv - 1 do
    if ti.recs.(i) <> tv.recs.(i) then
      fail "trace diverges at event %d:\ninterp: %s\nvm:     %s" i
        (show_rec ti.recs.(i)) (show_rec tv.recs.(i))
  done;
  if ni <> nv then fail "trace lengths differ: %d vs %d" ni nv;
  (* the byte-identity claim for saved logs, not just the event level *)
  let bi = Marshal.to_string li [] and bv = Marshal.to_string lv [] in
  if bi <> bv then
    fail "marshalled log bytes differ (%d vs %d bytes)" (String.length bi)
      (String.length bv)

let () =
  let failures = ref 0 in
  let cases = ref 0 in
  for i = 0 to count - 1 do
    let seed = base_seed + i in
    let programs =
      [
        ("sequential", Gen.sequential seed);
        ("parallel/protected", Gen.parallel ~protect:`Always seed);
        ("parallel/mixed", Gen.parallel ~protect:`Sometimes seed);
      ]
    in
    let scheds =
      [
        Runtime.Sched.Round_robin 1;
        Runtime.Sched.Round_robin 4;
        Runtime.Sched.Random_seed ((seed * 31) + 7);
      ]
    in
    List.iter
      (fun (kind, src) ->
        let prog = Lang.Compile.compile src in
        let eb = Analysis.Eblock.analyze prog in
        List.iter
          (fun sched ->
            incr cases;
            try compare_runs prog eb sched
            with Mismatch why ->
              incr failures;
              Printf.eprintf
                "MISMATCH seed=%d kind=%s sched=%s\n%s\n--- program ---\n%s\n"
                seed kind (sched_name sched) why src;
              let oc = open_out "vm-diff-counterexample.mpl" in
              Printf.fprintf oc "// vm-diff counterexample\n// seed=%d kind=%s sched=%s\n// %s\n%s"
                seed kind (sched_name sched)
                (String.map (function '\n' -> ' ' | c -> c) why)
                src;
              close_out oc)
          scheds)
      programs
  done;
  if !failures > 0 then begin
    Printf.eprintf "vm-diff: %d/%d cases mismatched (counterexample saved)\n"
      !failures !cases;
    exit 1
  end
  else
    Printf.printf "vm-diff: %d cases (seeds %d..%d), all identical\n" !cases
      base_seed
      (base_seed + count - 1)
