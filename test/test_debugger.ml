(* The interactive debugger engine (the §3.2.3 user loop). *)

let dbg src = Ppd.Debugger.create (Ppd.Session.run src)

let test_where_and_focus () =
  let d = dbg Workloads.buggy_min in
  let where = Ppd.Debugger.eval d "where" in
  Alcotest.(check bool) "halt shown" true (Util.contains ~sub:"assertion failed" where);
  Alcotest.(check bool) "focus shown" true (Util.contains ~sub:"assert(m == 2)" where);
  Alcotest.(check bool) "has focus" true (Ppd.Debugger.focus d <> None)

let test_why_walks_dependences () =
  let d = dbg Workloads.buggy_min in
  let why = Ppd.Debugger.eval d "why" in
  Alcotest.(check bool) "data edge to the call" true
    (Util.contains ~sub:"data:m" why);
  Alcotest.(check bool) "control edge to entry" true
    (Util.contains ~sub:"ENTRY main" why)

let test_focus_moves () =
  let d = dbg Workloads.buggy_min in
  let out = Ppd.Debugger.eval d "focus 0" in
  Alcotest.(check bool) "entry node" true (Util.contains ~sub:"ENTRY main" out);
  Alcotest.(check bool) "focus updated" true (Ppd.Debugger.focus d = Some 0)

let test_expand_call () =
  let d = dbg Workloads.buggy_min in
  ignore (Ppd.Debugger.eval d "where");
  (* find the call node id from the graph dump, then expand it *)
  let why = Ppd.Debugger.eval d "why" in
  (* "  <- data:m #N m = call#0(a, b, c)" *)
  let call_id =
    String.split_on_char '#' why |> fun parts ->
    List.nth parts 2 |> String.split_on_char ' ' |> List.hd
  in
  let out = Ppd.Debugger.eval d ("expand " ^ call_id) in
  Alcotest.(check bool) "expansion reported" true
    (Util.contains ~sub:"expanded" out);
  let stats = Ppd.Debugger.eval d "stats" in
  Alcotest.(check bool) "two intervals emulated" true
    (Util.contains ~sub:"emulated 2 of 2" stats)

let test_slice () =
  let d = dbg Workloads.buggy_min in
  let out = Ppd.Debugger.eval d "slice" in
  Alcotest.(check bool) "inputs reached" true (Util.contains ~sub:"a = 7" out)

let test_races_command () =
  let d = dbg Workloads.racy_bank in
  let out = Ppd.Debugger.eval d "races" in
  Alcotest.(check bool) "race reported" true (Util.contains ~sub:"balance" out);
  let d2 = dbg Workloads.fixed_bank in
  let out2 = Ppd.Debugger.eval d2 "races" in
  Alcotest.(check bool) "race-free" true (Util.contains ~sub:"race-free" out2);
  let static = Ppd.Debugger.eval d "races static" in
  Alcotest.(check bool) "static report" true
    (Util.contains ~sub:"potential race" static)

let test_proto_command () =
  let d = dbg Workloads.deadlock_ab in
  let out = Ppd.Debugger.eval d "proto" in
  Alcotest.(check bool) "deadlock certificate shown" true
    (Util.contains ~sub:"deadlock" out);
  let d2 = dbg Workloads.rpc in
  let out2 = Ppd.Debugger.eval d2 "proto" in
  Alcotest.(check bool) "clean protocol verdict" true
    (Util.contains ~sub:"deadlock-free" out2);
  Alcotest.(check bool) "help lists proto" true
    (Util.contains ~sub:"proto" (Ppd.Debugger.eval d "help"))

let test_restore_command () =
  let d = dbg Workloads.fixed_bank in
  let out = Ppd.Debugger.eval d "restore 100000" in
  Alcotest.(check bool) "final balance" true (Util.contains ~sub:"balance = 20" out)

let test_whatif_command () =
  let d = dbg "shared int limit = 10;\nfunc main() {\n  var i = 0;\n  var n = 0;\n  while (i < limit) { n = n + i; i = i + 1; }\n  print(n);\n}\n" in
  let out = Ppd.Debugger.eval d "whatif limit=3" in
  Alcotest.(check bool) "what-if output" true (Util.contains ~sub:"output: 3" out);
  let bad = Ppd.Debugger.eval d "whatif nope" in
  Alcotest.(check bool) "parse error surfaced" true
    (Util.contains ~sub:"name=value" bad)

let test_vars_command () =
  let d = dbg Workloads.racy_bank in
  let out = Ppd.Debugger.eval d "vars balance" in
  Alcotest.(check bool) "declared" true (Util.contains ~sub:"shared global" out);
  Alcotest.(check bool) "def sites" true (Util.contains ~sub:"defined at" out)

let test_intervals_and_log () =
  let d = dbg Workloads.fig61 in
  let ivs = Ppd.Debugger.eval d "intervals" in
  Alcotest.(check bool) "three processes" true
    (Util.contains ~sub:"p2#0" ivs);
  let log = Ppd.Debugger.eval d "log 1" in
  Alcotest.(check bool) "p1 log shown" true (Util.contains ~sub:"prelog" log)

let test_help_and_quit () =
  let d = dbg Workloads.foo3 in
  Alcotest.(check bool) "help lists commands" true
    (Util.contains ~sub:"slice" (Ppd.Debugger.eval d "help"));
  Alcotest.(check bool) "unknown commands get help" true
    (Util.contains ~sub:"unknown command" (Ppd.Debugger.eval d "frobnicate"));
  Alcotest.(check bool) "quit" true (Ppd.Debugger.is_quit "  QUIT ");
  Alcotest.(check bool) "q" true (Ppd.Debugger.is_quit "q");
  Alcotest.(check bool) "not quit" false (Ppd.Debugger.is_quit "quitter")

let suite =
  ( "debugger",
    [
      Alcotest.test_case "where/focus" `Quick test_where_and_focus;
      Alcotest.test_case "why" `Quick test_why_walks_dependences;
      Alcotest.test_case "focus moves" `Quick test_focus_moves;
      Alcotest.test_case "expand" `Quick test_expand_call;
      Alcotest.test_case "slice" `Quick test_slice;
      Alcotest.test_case "races" `Quick test_races_command;
      Alcotest.test_case "proto" `Quick test_proto_command;
      Alcotest.test_case "restore" `Quick test_restore_command;
      Alcotest.test_case "whatif" `Quick test_whatif_command;
      Alcotest.test_case "vars" `Quick test_vars_command;
      Alcotest.test_case "intervals/log" `Quick test_intervals_and_log;
      Alcotest.test_case "help/quit" `Quick test_help_and_quit;
    ] )
