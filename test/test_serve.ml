(* The serve subsystem: the JSON codec, the RPC framing, the admission
   gate, and the daemon dispatcher driven in-process via [handle_line]
   — everything the transports share, without a socket in sight. *)

module J = Serve.Json
module Rpc = Serve.Rpc
module Gate = Serve.Gate
module Server = Serve.Server

(* -------------------------------------------------------------- *)
(* JSON codec *)

(* Values whose printed form must parse back unchanged. Strings stay
   printable ASCII here: the printer passes bytes >= 0x20 through raw,
   so arbitrary bytes would test UTF-8 validation (covered separately),
   not the round trip. *)
let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) (int_range (-1_000_000_000) 1_000_000_000);
        map (fun f -> J.Float f) (float_range (-1e6) 1e6);
        map
          (fun s -> J.Str s)
          (string_size ~gen:(char_range ' ' '~') (int_range 0 12));
      ]
  in
  let rec node depth =
    if depth = 0 then scalar
    else
      oneof
        [
          scalar;
          map (fun vs -> J.List vs) (list_size (int_range 0 4) (node (depth - 1)));
          map
            (fun kvs -> J.Obj kvs)
            (list_size (int_range 0 4)
               (pair
                  (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                  (node (depth - 1))));
        ]
  in
  node 3

let json_roundtrip =
  Util.qtest ~count:200 "JSON print/parse round trip" json_gen (fun v ->
      J.parse (J.to_string v) = Ok v)

let test_json_accepts () =
  let ok input expected =
    match J.parse input with
    | Ok v -> Alcotest.(check string) input (J.to_string expected) (J.to_string v)
    | Error e -> Alcotest.failf "%s rejected: %s" input e
  in
  ok " { } " (J.Obj []);
  ok "[ ]" (J.List []);
  ok "-350" (J.Int (-350));
  ok "-3.5e2" (J.Float (-350.));
  ok {|"a\/b"|} (J.Str "a/b");
  ok {|"café"|} (J.Str "caf\xc3\xa9");
  (* surrogate pair combines to one 4-byte code point *)
  ok {|"😀"|} (J.Str "\xf0\x9f\x98\x80");
  (* raw multi-byte UTF-8 passes validation and survives *)
  ok "\"caf\xc3\xa9\"" (J.Str "caf\xc3\xa9");
  (* an integer too large for a native int degrades to a float *)
  (match J.parse "99999999999999999999" with
  | Ok (J.Float _) -> ()
  | _ -> Alcotest.fail "big integer should parse as a float")

let test_json_rejects () =
  let bad input =
    match J.parse input with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "%S accepted as %s" input (J.to_string v)
  in
  bad "";
  bad "{";
  bad "[1,2";
  bad {|{"a":1,}|};
  bad "1 2";
  bad "truex";
  bad "nul";
  bad {|"\q"|};
  bad {|"\ud800"|};
  (* lone surrogate escape *)
  bad "\"\xff\"";
  (* invalid UTF-8 byte *)
  bad "\"\xc0\x80\"";
  (* overlong encoding *)
  bad "\"\xed\xa0\x80\"";
  (* surrogate encoded as UTF-8 *)
  bad "\"a\nb\"";
  (* raw control character in a string *)
  bad (String.make 70 '[' ^ "1" ^ String.make 70 ']')
(* nesting beyond the depth cap *)

(* -------------------------------------------------------------- *)
(* RPC framing *)

let test_rpc_parse () =
  (match Rpc.parse_request {|{"id":7,"method":"ping"}|} with
  | Ok rq ->
    Alcotest.(check bool) "id echoed" true (rq.Rpc.rq_id = J.Int 7);
    Alcotest.(check string) "method" "ping" rq.Rpc.rq_method;
    Alcotest.(check bool) "params default" true (rq.Rpc.rq_params = J.Obj [])
  | Error (c, m) -> Alcotest.failf "rejected: %s %s" c m);
  match Rpc.parse_request {|{"id":"x","method":"m","params":{"a":1}}|} with
  | Ok rq -> Alcotest.(check bool) "string id" true (rq.Rpc.rq_id = J.Str "x")
  | Error (c, m) -> Alcotest.failf "rejected: %s %s" c m

let test_rpc_rejects () =
  let bad line =
    match Rpc.parse_request line with
    | Error (code, _) ->
      Alcotest.(check string) ("code for " ^ line) Rpc.err_protocol code
    | Ok _ -> Alcotest.failf "%S accepted" line
  in
  bad "not json";
  bad "[1,2,3]";
  (* not an object *)
  bad {|{"method":"ping"}|};
  (* missing id *)
  bad {|{"id":null,"method":"ping"}|};
  bad {|{"id":[1],"method":"ping"}|};
  (* structured id *)
  bad {|{"id":1}|};
  (* missing method *)
  bad {|{"id":1,"method":2}|};
  bad {|{"id":1,"method":"ping","params":[]}|};
  (* params not an object *)
  bad ("{\"id\":1,\"method\":\"" ^ String.make Rpc.max_line_bytes 'x' ^ "\"}")
(* oversized line *)

let test_rpc_lines () =
  let parsed line =
    match J.parse line with
    | Ok v -> v
    | Error e -> Alcotest.failf "unparsable response %s: %s" line e
  in
  let r = parsed (Rpc.result_line ~id:(J.Int 3) (J.Obj [ ("x", J.Int 1) ])) in
  Alcotest.(check bool) "result id" true (J.member "id" r = Some (J.Int 3));
  Alcotest.(check bool) "result member" true (J.member "result" r <> None);
  let e =
    parsed (Rpc.error_line ~id:J.Null ~code:"PPD080" ~message:"broken")
  in
  Alcotest.(check bool) "error id null" true (J.member "id" e = Some J.Null);
  match J.member "error" e with
  | Some err ->
    Alcotest.(check bool) "code" true (J.member "code" err = Some (J.Str "PPD080"))
  | None -> Alcotest.fail "no error member"

(* -------------------------------------------------------------- *)
(* Admission gate *)

let test_gate_shed () =
  let g = Gate.create ~max_active:1 ~max_queue:0 in
  (match Gate.admit g with Ok _ -> () | Error _ -> Alcotest.fail "admit 1");
  (match Gate.admit g with
  | Error `Busy -> ()
  | Error `Deadline -> Alcotest.fail "no deadline was set"
  | Ok _ -> Alcotest.fail "should shed with a full queue");
  Gate.release g;
  (match Gate.admit g with Ok _ -> () | Error _ -> Alcotest.fail "admit 2");
  Gate.release g;
  let st = Gate.stats g in
  Alcotest.(check int) "admitted" 2 st.Gate.admitted;
  Alcotest.(check int) "shed" 1 st.Gate.shed;
  Alcotest.(check int) "active" 0 st.Gate.active

let test_gate_queues () =
  let g = Gate.create ~max_active:1 ~max_queue:1 in
  (match Gate.admit g with Ok _ -> () | Error _ -> Alcotest.fail "admit");
  let entered = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        match Gate.admit g with
        | Ok _ ->
          Atomic.set entered true;
          Gate.release g
        | Error _ -> ())
      ()
  in
  (* wait until the thread is parked in the queue *)
  let rec spin n =
    if n = 0 then Alcotest.fail "waiter never queued"
    else if (Gate.stats g).Gate.queued = 0 then begin
      Thread.yield ();
      Thread.delay 0.001;
      spin (n - 1)
    end
  in
  spin 2000;
  Alcotest.(check bool) "not yet admitted" false (Atomic.get entered);
  Gate.release g;
  Thread.join th;
  Alcotest.(check bool) "admitted after release" true (Atomic.get entered);
  let st = Gate.stats g in
  Alcotest.(check int) "both admitted" 2 st.Gate.admitted;
  Alcotest.(check int) "nothing shed" 0 st.Gate.shed

let test_gate_with_slot_releases_on_raise () =
  let g = Gate.create ~max_active:1 ~max_queue:0 in
  (try ignore (Gate.with_slot g (fun ~queue_wait_ns:_ -> failwith "boom"))
   with Failure _ -> ());
  match Gate.admit g with
  | Ok _ -> Gate.release g
  | Error _ -> Alcotest.fail "slot leaked by a raising callback"

(* Satellite: wakeup fairness. Waiters must be served in arrival
   order — the pre-ticket condvar allowed a late waiter to barge past
   a parked earlier one on a lucky wakeup. Each waiter is parked
   before the next is spawned, so arrival order is pinned; the service
   order must equal it exactly. *)
let test_gate_fifo_order () =
  let g = Gate.create ~max_active:1 ~max_queue:8 in
  (match Gate.admit g with Ok _ -> () | Error _ -> Alcotest.fail "admit");
  let order = ref [] in
  let olock = Mutex.create () in
  let spawn i =
    Thread.create
      (fun () ->
        match Gate.admit g with
        | Ok _ ->
          Mutex.lock olock;
          order := i :: !order;
          Mutex.unlock olock;
          Gate.release g
        | Error _ -> ())
      ()
  in
  let threads =
    List.map
      (fun i ->
        let th = spawn i in
        let rec spin n =
          if n = 0 then Alcotest.fail "waiter never queued"
          else if (Gate.stats g).Gate.queued < i + 1 then begin
            Thread.yield ();
            Thread.delay 0.001;
            spin (n - 1)
          end
        in
        spin 2000;
        th)
      [ 0; 1; 2; 3; 4 ]
  in
  Gate.release g;
  List.iter Thread.join threads;
  Alcotest.(check (list int)) "FIFO service order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

let test_gate_deadline () =
  let g = Gate.create ~max_active:1 ~max_queue:4 in
  (match Gate.admit g with Ok _ -> () | Error _ -> Alcotest.fail "admit");
  (* an already-expired deadline abandons the queue instead of parking *)
  (match Gate.admit ~deadline:(Resil.Deadline.at_ns 1) g with
  | Error `Deadline -> ()
  | Error `Busy -> Alcotest.fail "expired deadline shed as busy"
  | Ok _ -> Alcotest.fail "expired deadline admitted");
  Alcotest.(check int) "deadline drop counted" 1
    (Gate.stats g).Gate.deadline_drops;
  (* the abandoned ticket must not wedge the queue for later arrivals *)
  let entered = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        match Gate.admit g with
        | Ok _ ->
          Atomic.set entered true;
          Gate.release g
        | Error _ -> ())
      ()
  in
  let rec spin n =
    if n > 0 && (Gate.stats g).Gate.queued = 0 then begin
      Thread.yield ();
      Thread.delay 0.001;
      spin (n - 1)
    end
  in
  spin 2000;
  Gate.release g;
  Thread.join th;
  Alcotest.(check bool) "later arrival served past the tombstone" true
    (Atomic.get entered)

(* -------------------------------------------------------------- *)
(* The daemon, in-process *)

(* One recorded fig61 execution on disk: the program file and its
   durable segment, which is what `open` wants. *)
let with_fixture f =
  let mpl = Filename.temp_file "serve_fig61" ".mpl" in
  let seg = Filename.temp_file "serve_fig61" ".seg" in
  Out_channel.with_open_text mpl (fun oc ->
      Out_channel.output_string oc Workloads.fig61);
  let prog = Lang.Compile.compile Workloads.fig61 in
  let eb = Analysis.Eblock.analyze prog in
  let w = Store.Segment.Writer.to_file seg in
  let logger = Trace.Logger.create ~sink:(Store.Segment.Writer.sink w) eb in
  let m = Runtime.Machine.create ~hooks:(Trace.Logger.factory logger) prog in
  ignore (Runtime.Machine.run m);
  ignore (Trace.Logger.finish logger);
  Store.Segment.Writer.close w;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove mpl with Sys_error _ -> ());
      try Sys.remove seg with Sys_error _ -> ())
    (fun () -> f ~mpl ~seg)

let parsed line =
  match J.parse line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparsable response %s: %s" line e

let result_of line =
  let v = parsed line in
  match J.member "result" v with
  | Some r -> r
  | None -> Alcotest.failf "expected a result, got %s" line

let error_code_of line =
  let v = parsed line in
  match J.member "error" v with
  | Some err -> (
    match Option.bind (J.member "code" err) J.to_str with
    | Some c -> c
    | None -> Alcotest.failf "error without code: %s" line)
  | None -> Alcotest.failf "expected an error, got %s" line

let jint r name =
  match Option.bind (J.member name r) J.to_int with
  | Some i -> i
  | None -> Alcotest.failf "missing int %s in %s" name (J.to_string r)

let jstr r name =
  match Option.bind (J.member name r) J.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string %s in %s" name (J.to_string r)

let open_line ~id ?(inline = 0) ~mpl ~seg () =
  J.to_string
    (J.Obj
       [
         ("id", J.Int id);
         ("method", J.Str "open");
         ( "params",
           J.Obj
             [
               ("log", J.Str seg);
               ("program", J.Str mpl);
               ("inline", J.Int inline);
             ] );
       ])

let req ~id meth params =
  J.to_string
    (J.Obj [ ("id", J.Int id); ("method", J.Str meth); ("params", J.Obj params) ])

let open_handle srv sess ~mpl ~seg =
  jint (result_of (Server.handle_line srv sess (open_line ~id:1 ~mpl ~seg ()))) "handle"

let test_dispatch_basics () =
  let srv = Server.create () in
  let s = Server.session srv in
  let pong = parsed (Server.handle_line srv s {|{"id":9,"method":"ping"}|}) in
  Alcotest.(check bool) "id echoed" true (J.member "id" pong = Some (J.Int 9));
  Alcotest.(check string) "unknown method" Rpc.err_unknown_method
    (error_code_of (Server.handle_line srv s {|{"id":1,"method":"nope"}|}));
  let mal = parsed (Server.handle_line srv s "not json at all") in
  Alcotest.(check bool) "malformed gets id null" true
    (J.member "id" mal = Some J.Null);
  Alcotest.(check string) "malformed is protocol error" Rpc.err_protocol
    (error_code_of (Server.handle_line srv s "not json at all"));
  Alcotest.(check string) "missing params rejected" Rpc.err_bad_params
    (error_code_of (Server.handle_line srv s {|{"id":2,"method":"open"}|}));
  Alcotest.(check string) "unknown handle" Rpc.err_unknown_handle
    (error_code_of
       (Server.handle_line srv s {|{"id":3,"method":"flowback","params":{"handle":99}}|}));
  Server.end_session srv s;
  Server.shutdown srv

let test_registry_refcounts () =
  with_fixture (fun ~mpl ~seg ->
      let srv = Server.create () in
      let s1 = Server.session srv in
      let s2 = Server.session srv in
      let r1 = result_of (Server.handle_line srv s1 (open_line ~id:1 ~mpl ~seg ())) in
      let h1 = jint r1 "handle" in
      Alcotest.(check int) "first open refs" 1 (jint r1 "refs");
      let r2 = result_of (Server.handle_line srv s2 (open_line ~id:2 ~mpl ~seg ())) in
      let h2 = jint r2 "handle" in
      Alcotest.(check int) "second open shares the entry" 2 (jint r2 "refs");
      (* handle numbering is session-scoped: every session's first
         open is handle 1, so scripted clients need not parse it *)
      Alcotest.(check int) "s1 first handle" 1 h1;
      Alcotest.(check int) "s2 first handle" 1 h2;
      let st = result_of (Server.handle_line srv s2 (req ~id:3 "stats" [ ("handle", J.Int h2) ])) in
      Alcotest.(check int) "stats sees both refs" 2 (jint st "refs");
      let cl = result_of (Server.handle_line srv s1 (req ~id:4 "close" [ ("handle", J.Int h1) ])) in
      Alcotest.(check int) "close drops a ref" 1 (jint cl "refs");
      Alcotest.(check string) "closed handle is unknown" Rpc.err_unknown_handle
        (error_code_of (Server.handle_line srv s1 (req ~id:5 "close" [ ("handle", J.Int h1) ])));
      Alcotest.(check string) "handles are per-session" Rpc.err_unknown_handle
        (error_code_of (Server.handle_line srv s1 (req ~id:6 "stats" [ ("handle", J.Int h2) ])));
      Server.end_session srv s2;
      Server.end_session srv s2;
      (* idempotent *)
      let s3 = Server.session srv in
      let ss = result_of (Server.handle_line srv s3 (req ~id:7 "serverStats" [])) in
      Alcotest.(check int) "registry empty after last ref" 0 (jint ss "openLogs");
      Alcotest.(check int) "no handles leak" 0 (jint ss "openHandles");
      Server.end_session srv s1;
      Server.end_session srv s3;
      Server.shutdown srv)

let test_open_quota () =
  with_fixture (fun ~mpl ~seg ->
      let config = { Server.default_config with max_open_logs = 1 } in
      let srv = Server.create ~config () in
      let s = Server.session srv in
      ignore (open_handle srv s ~mpl ~seg);
      Alcotest.(check string) "open quota" Rpc.err_quota
        (error_code_of
           (Server.handle_line srv s (open_line ~id:2 ~inline:1 ~mpl ~seg ())));
      Server.end_session srv s;
      Server.shutdown srv)

let flowback_result srv sess ~h ~id =
  result_of
    (Server.handle_line srv sess (req ~id "flowback" [ ("handle", J.Int h); ("depth", J.Int 2) ]))

let test_shared_cache_across_sessions () =
  with_fixture (fun ~mpl ~seg ->
      let srv = Server.create () in
      let s1 = Server.session srv in
      let h1 = open_handle srv s1 ~mpl ~seg in
      let r1 = flowback_result srv s1 ~h:h1 ~id:2 in
      Alcotest.(check int) "cold run misses" 0 (jint r1 "cacheHits");
      Alcotest.(check bool) "cold run replays" true (jint r1 "cacheMisses" > 0);
      (* same session, warm *)
      let r2 = flowback_result srv s1 ~h:h1 ~id:3 in
      Alcotest.(check string) "byte-identical answer (warm)" (jstr r1 "output")
        (jstr r2 "output");
      Alcotest.(check bool) "warm run hits" true (jint r2 "cacheHits" > 0);
      Alcotest.(check int) "warm run never misses" 0 (jint r2 "cacheMisses");
      Alcotest.(check int) "assembly count unchanged (byte-identity)"
        (jint r1 "replays") (jint r2 "replays");
      (* second session on the same log inherits the warm cache *)
      let s2 = Server.session srv in
      let h2 = open_handle srv s2 ~mpl ~seg in
      let r3 = flowback_result srv s2 ~h:h2 ~id:4 in
      Alcotest.(check string) "byte-identical across sessions" (jstr r1 "output")
        (jstr r3 "output");
      Alcotest.(check bool) "other session hits the shared cache" true
        (jint r3 "cacheHits" > 0);
      let st = result_of (Server.handle_line srv s2 (req ~id:5 "stats" [ ("handle", J.Int h2) ])) in
      (match J.member "fragCache" st with
      | Some fc -> Alcotest.(check bool) "fragCache reports hits" true (jint fc "hits" > 0)
      | None -> Alcotest.fail "stats without fragCache");
      Server.end_session srv s1;
      Server.end_session srv s2;
      Server.shutdown srv)

let test_replay_parallel_matches_serial () =
  with_fixture (fun ~mpl ~seg ->
      let serial = Server.create () in
      let par = Server.create ~config:{ Server.default_config with jobs = 4 } () in
      let out srv =
        let s = Server.session srv in
        let h = open_handle srv s ~mpl ~seg in
        let r = result_of (Server.handle_line srv s (req ~id:2 "replay" [ ("handle", J.Int h) ])) in
        let o = jstr r "output" in
        Server.end_session srv s;
        Server.shutdown srv;
        o
      in
      Alcotest.(check string) "-j4 replay is byte-identical" (out serial) (out par))

let test_watchdog_and_degraded () =
  with_fixture (fun ~mpl ~seg ->
      let srv = Server.create () in
      let s = Server.session srv in
      let h = open_handle srv s ~mpl ~seg in
      Alcotest.(check string) "tiny budget trips PPD060" "PPD060"
        (error_code_of
           (Server.handle_line srv s
              (req ~id:2 "flowback"
                 [ ("handle", J.Int h); ("maxReplaySteps", J.Int 1) ])));
      let r =
        result_of
          (Server.handle_line srv s
             (req ~id:3 "flowback"
                [
                  ("handle", J.Int h);
                  ("maxReplaySteps", J.Int 1);
                  ("degraded", J.Bool true);
                ]))
      in
      Alcotest.(check bool) "degraded mode declares holes" true (jint r "holes" > 0);
      Alcotest.(check string) "over-cap budget is a quota error" Rpc.err_quota
        (error_code_of
           (Server.handle_line srv s
              (req ~id:4 "flowback"
                 [ ("handle", J.Int h); ("maxReplaySteps", J.Int 20_000_000) ])));
      Server.end_session srv s;
      Server.shutdown srv)

let test_step_quota () =
  with_fixture (fun ~mpl ~seg ->
      let config = { Server.default_config with step_quota = 1 } in
      let srv = Server.create ~config () in
      let s = Server.session srv in
      let h = open_handle srv s ~mpl ~seg in
      let r = flowback_result srv s ~h ~id:2 in
      Alcotest.(check bool) "first heavy request spends steps" true
        (jint r "replaySteps" > 0);
      Alcotest.(check string) "then the lifetime quota trips" Rpc.err_quota
        (error_code_of (Server.handle_line srv s (req ~id:3 "flowback" [ ("handle", J.Int h) ])));
      (* light methods still answer *)
      ignore (result_of (Server.handle_line srv s (req ~id:4 "stats" [ ("handle", J.Int h) ])));
      ignore (result_of (Server.handle_line srv s (req ~id:5 "serverStats" [])));
      Server.end_session srv s;
      Server.shutdown srv)

let test_fsck_method () =
  with_fixture (fun ~mpl:_ ~seg ->
      let srv = Server.create () in
      let s = Server.session srv in
      let r = result_of (Server.handle_line srv s (req ~id:1 "fsck" [ ("log", J.Str seg) ])) in
      Alcotest.(check bool) "clean" true (J.member "clean" r = Some (J.Bool true));
      Alcotest.(check bool) "records counted" true (jint r "records" > 0);
      Alcotest.(check string) "unreadable log is PPD050" "PPD050"
        (error_code_of
           (Server.handle_line srv s
              (req ~id:2 "fsck" [ ("log", J.Str "/nonexistent/file.seg") ])));
      Server.end_session srv s;
      Server.shutdown srv)

let test_obs_namespace_invariant () =
  with_fixture (fun ~mpl ~seg ->
      Obs.enable ();
      Obs.reset ();
      Fun.protect ~finally:Obs.disable (fun () ->
          let srv = Server.create () in
          let s1 = Server.session srv in
          let s2 = Server.session srv in
          let h1 = open_handle srv s1 ~mpl ~seg in
          ignore (flowback_result srv s1 ~h:h1 ~id:2);
          let h2 = open_handle srv s2 ~mpl ~seg in
          ignore (flowback_result srv s2 ~h:h2 ~id:2);
          ignore (Server.handle_line srv s2 {|{"id":3,"method":"nope"}|});
          let counters = Obs.counters () in
          let total name =
            List.fold_left
              (fun acc (k, v) ->
                if String.length k > 7 && String.sub k 0 7 = "serve.s"
                   && String.length k > String.length name
                   && String.sub k (String.length k - String.length name)
                        (String.length name) = name
                then acc + v
                else acc)
              0 counters
          in
          let global name =
            match List.assoc_opt ("serve." ^ name) counters with
            | Some v -> v
            | None -> 0
          in
          List.iter
            (fun name ->
              Alcotest.(check int)
                (Printf.sprintf "serve.%s = sum of serve.s<ID>.%s" name name)
                (global name) (total ("." ^ name)))
            [ "requests"; "errors"; "cache.hits"; "cache.misses"; "shed" ];
          Alcotest.(check bool) "requests were counted at all" true
            (global "requests" > 0);
          Server.end_session srv s1;
          Server.end_session srv s2;
          Server.shutdown srv))

(* -------------------------------------------------------------- *)
(* Survivability (DESIGN §17): deadlines, quarantine, memory budget,
   crash recovery *)

(* A clock whose first reading is sane and every later reading is far
   in the future: the deadline is minted live, then found expired at
   the first e-block replay boundary. *)
let with_expiring_clock f =
  let calls = ref 0 in
  Resil.Clock.with_source
    (fun () ->
      incr calls;
      if !calls <= 1 then 1_000 else max_int / 2)
    f

let test_deadline_ppd090 () =
  with_fixture (fun ~mpl ~seg ->
      let srv = Server.create () in
      let s = Server.session srv in
      let h = open_handle srv s ~mpl ~seg in
      let code =
        with_expiring_clock (fun () ->
            error_code_of
              (Server.handle_line srv s
                 (req ~id:2 "flowback"
                    [ ("handle", J.Int h); ("deadlineMs", J.Int 5) ])))
      in
      Alcotest.(check string) "expired deadline answers PPD090"
        Rpc.err_deadline code;
      (* the slot was released and no breaker moved: the same query
         without a deadline still succeeds *)
      ignore (flowback_result srv s ~h ~id:3);
      Server.end_session srv s;
      Server.shutdown srv)

(* Flip one byte inside every page frame (offsets via fsck on the
   clean file), leaving checkpoints, footer and trailer intact: the
   file still opens indexed, and every page decode fails its CRC —
   a deterministic hard fault (PPD050) at query time. *)
let poison_pages seg =
  let pages = (Store.Segment.fsck seg).Store.Segment.fk_pages in
  let raw = In_channel.with_open_bin seg In_channel.input_all in
  let b = Bytes.of_string raw in
  List.iter
    (fun (p : Store.Segment.fsck_page) ->
      let off = p.Store.Segment.fp_offset + 4 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff)))
    pages;
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc (Bytes.to_string b))

let test_quarantine_ppd091 () =
  with_fixture (fun ~mpl ~seg ->
      poison_pages seg;
      let config =
        {
          Server.default_config with
          breaker =
            { Resil.Breaker.failure_threshold = 2; cooldown_ms = 3_600_000 };
        }
      in
      let srv = Server.create ~config () in
      let s = Server.session srv in
      let h = open_handle srv s ~mpl ~seg in
      let fb id =
        error_code_of
          (Server.handle_line srv s (req ~id "flowback" [ ("handle", J.Int h) ]))
      in
      Alcotest.(check string) "hard fault 1" "PPD050" (fb 2);
      Alcotest.(check string) "hard fault 2" "PPD050" (fb 3);
      Alcotest.(check string) "breaker trips: fast-fail PPD091"
        Rpc.err_quarantined (fb 4);
      Alcotest.(check string) "stays quarantined through the cooldown"
        Rpc.err_quarantined (fb 5);
      (* serverStats exposes the breaker *)
      let ss = result_of (Server.handle_line srv s (req ~id:6 "serverStats" [])) in
      (match J.member "breakers" ss with
      | Some (J.List (b :: _)) ->
        Alcotest.(check string) "breaker key is the log" seg (jstr b "key");
        Alcotest.(check string) "breaker is open" "open" (jstr b "state");
        Alcotest.(check bool) "fast fails counted" true (jint b "fastFails" >= 2)
      | _ -> Alcotest.fail "serverStats without breakers");
      (* light methods on the quarantined log still answer *)
      ignore (result_of (Server.handle_line srv s (req ~id:7 "stats" [ ("handle", J.Int h) ])));
      Server.end_session srv s;
      Server.shutdown srv)

(* Quarantine isolates: a healthy co-tenant log keeps answering while
   the poisoned one fast-fails. *)
let test_quarantine_isolates () =
  with_fixture (fun ~mpl ~seg ->
      let bad = Filename.temp_file "serve_bad" ".seg" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
        (fun () ->
          let raw = In_channel.with_open_bin seg In_channel.input_all in
          Out_channel.with_open_bin bad (fun oc ->
              Out_channel.output_string oc raw);
          poison_pages bad;
          let config =
            {
              Server.default_config with
              breaker =
                { Resil.Breaker.failure_threshold = 1; cooldown_ms = 3_600_000 };
            }
          in
          let srv = Server.create ~config () in
          let s = Server.session srv in
          let hg = open_handle srv s ~mpl ~seg in
          let hb =
            jint
              (result_of
                 (Server.handle_line srv s
                    (J.to_string
                       (J.Obj
                          [
                            ("id", J.Int 2);
                            ("method", J.Str "open");
                            ( "params",
                              J.Obj
                                [ ("log", J.Str bad); ("program", J.Str mpl) ]
                            );
                          ]))))
              "handle"
          in
          let code h id =
            error_code_of
              (Server.handle_line srv s
                 (req ~id "flowback" [ ("handle", J.Int h) ]))
          in
          Alcotest.(check string) "poisoned log faults" "PPD050" (code hb 3);
          Alcotest.(check string) "poisoned log quarantined"
            Rpc.err_quarantined (code hb 4);
          (* the healthy log is untouched by its co-tenant's breaker *)
          ignore (flowback_result srv s ~h:hg ~id:5);
          Server.end_session srv s;
          Server.shutdown srv))

let test_mem_budget () =
  with_fixture (fun ~mpl ~seg ->
      let unbudgeted = Server.create () in
      let s0 = Server.session unbudgeted in
      let h0 = open_handle unbudgeted s0 ~mpl ~seg in
      let r0 = flowback_result unbudgeted s0 ~h:h0 ~id:2 in
      Server.end_session unbudgeted s0;
      Server.shutdown unbudgeted;
      let config = { Server.default_config with mem_budget = 16_384 } in
      let srv = Server.create ~config () in
      let s = Server.session srv in
      let h = open_handle srv s ~mpl ~seg in
      let r1 = flowback_result srv s ~h ~id:2 in
      Alcotest.(check string) "byte-identical under a memory budget"
        (jstr r0 "output") (jstr r1 "output");
      let ss = result_of (Server.handle_line srv s (req ~id:3 "serverStats" [])) in
      (match J.member "memory" ss with
      | Some m ->
        Alcotest.(check int) "cap reported" 16_384 (jint m "budgetCap");
        Alcotest.(check bool) "usage within budget after rebalance" true
          (jint m "budgetUsed" <= 16_384)
      | None -> Alcotest.fail "serverStats without memory block");
      Server.end_session srv s;
      Server.shutdown srv)

let with_journal f =
  let jpath = Filename.temp_file "serve" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove jpath with Sys_error _ -> ())
    (fun () -> f jpath)

let test_journal_resume_attach () =
  with_fixture (fun ~mpl ~seg ->
      with_journal (fun jpath ->
          let srv1 = Server.create ~journal:jpath () in
          let s1 = Server.session srv1 in
          let h = open_handle srv1 s1 ~mpl ~seg in
          let r1 = flowback_result srv1 s1 ~h ~id:2 in
          let sid = Server.session_id s1 in
          (* "SIGKILL": neither end_session nor shutdown runs *)
          let srv2 = Server.create ~resume:jpath () in
          let s2 = Server.session srv2 in
          let ss =
            result_of (Server.handle_line srv2 s2 (req ~id:1 "serverStats" []))
          in
          Alcotest.(check int) "one recoverable session" 1
            (jint ss "recoverable");
          let at =
            result_of
              (Server.handle_line srv2 s2
                 (req ~id:2 "attach" [ ("session", J.Int sid) ]))
          in
          Alcotest.(check int) "replay-step quota inherited"
            (jint r1 "replaySteps")
            (jint at "replaySteps");
          let r2 = flowback_result srv2 s2 ~h ~id:3 in
          Alcotest.(check string) "byte-identical across the crash"
            (jstr r1 "output") (jstr r2 "output");
          (* the recovered session can only be adopted once *)
          let s3 = Server.session srv2 in
          Alcotest.(check string) "second attach is stale" Rpc.err_stale
            (error_code_of
               (Server.handle_line srv2 s3
                  (req ~id:4 "attach" [ ("session", J.Int sid) ])));
          Server.end_session srv2 s2;
          Server.end_session srv2 s3;
          Server.shutdown srv2))

let test_stale_handle_ppd092 () =
  with_fixture (fun ~mpl ~seg ->
      with_journal (fun jpath ->
          let srv1 = Server.create ~journal:jpath () in
          let s1 = Server.session srv1 in
          ignore (open_handle srv1 s1 ~mpl ~seg);
          let sid = Server.session_id s1 in
          (* crash, and the log vanishes before the daemon is resumed *)
          Sys.remove seg;
          let srv2 = Server.create ~resume:jpath () in
          let s2 = Server.session srv2 in
          let at =
            result_of
              (Server.handle_line srv2 s2
                 (req ~id:1 "attach" [ ("session", J.Int sid) ]))
          in
          (match J.member "handles" at with
          | Some (J.List (hd :: _)) ->
            Alcotest.(check bool) "handle recovered stale" true
              (J.member "live" hd = Some (J.Bool false))
          | _ -> Alcotest.fail "attach without handles");
          Alcotest.(check string) "stale handle answers PPD092" Rpc.err_stale
            (error_code_of
               (Server.handle_line srv2 s2
                  (req ~id:2 "flowback" [ ("handle", J.Int 1) ])));
          (* a stale handle can still be closed cleanly *)
          ignore
            (result_of
               (Server.handle_line srv2 s2
                  (req ~id:3 "close" [ ("handle", J.Int 1) ])));
          Server.end_session srv2 s2;
          Server.shutdown srv2))

let suite =
  ( "serve",
    [
      json_roundtrip;
      Alcotest.test_case "JSON accepts" `Quick test_json_accepts;
      Alcotest.test_case "JSON rejects" `Quick test_json_rejects;
      Alcotest.test_case "RPC parse" `Quick test_rpc_parse;
      Alcotest.test_case "RPC rejects" `Quick test_rpc_rejects;
      Alcotest.test_case "RPC response lines" `Quick test_rpc_lines;
      Alcotest.test_case "gate sheds beyond the queue" `Quick test_gate_shed;
      Alcotest.test_case "gate queues and wakes" `Quick test_gate_queues;
      Alcotest.test_case "gate releases on raise" `Quick
        test_gate_with_slot_releases_on_raise;
      Alcotest.test_case "gate serves in FIFO order" `Quick
        test_gate_fifo_order;
      Alcotest.test_case "gate abandons on deadline" `Quick test_gate_deadline;
      Alcotest.test_case "dispatch basics" `Quick test_dispatch_basics;
      Alcotest.test_case "registry refcounts" `Quick test_registry_refcounts;
      Alcotest.test_case "open-log quota" `Quick test_open_quota;
      Alcotest.test_case "shared cache across sessions" `Quick
        test_shared_cache_across_sessions;
      Alcotest.test_case "-j4 replay byte-identical" `Quick
        test_replay_parallel_matches_serial;
      Alcotest.test_case "watchdog, degraded, caps" `Quick
        test_watchdog_and_degraded;
      Alcotest.test_case "step quota" `Quick test_step_quota;
      Alcotest.test_case "fsck method" `Quick test_fsck_method;
      Alcotest.test_case "Obs namespace invariant" `Quick
        test_obs_namespace_invariant;
      Alcotest.test_case "deadline answers PPD090" `Quick test_deadline_ppd090;
      Alcotest.test_case "quarantine answers PPD091" `Quick
        test_quarantine_ppd091;
      Alcotest.test_case "quarantine isolates co-tenants" `Quick
        test_quarantine_isolates;
      Alcotest.test_case "memory budget bounds the caches" `Quick
        test_mem_budget;
      Alcotest.test_case "journal, resume, attach" `Quick
        test_journal_resume_attach;
      Alcotest.test_case "stale handles answer PPD092" `Quick
        test_stale_handle_ppd092;
    ] )
