(* State restoration from postlogs (§5.7): rebuild the shared store at
   successive e-block boundaries from the accumulated postlogs, without
   re-executing anything. *)

let () =
  let src = Workloads.counter ~workers:3 ~incs:5 ~mutex:true in
  let session = Ppd.Session.run src in
  let p = Ppd.Session.prog session in
  let log = Ppd.Session.log session in
  Printf.printf "halt: %s\n" (Ppd.Session.explain_halt session);

  (* Every worker interval end, in time order. *)
  let boundaries = ref [] in
  for pid = 0 to log.Trace.Log.nprocs - 1 do
    Array.iter
      (fun (iv : Trace.Log.interval) ->
        match iv.iv_postlog with
        | Some idx -> (
          match log.Trace.Log.entries.(pid).(idx) with
          | Trace.Log.Postlog { step_at; _ } ->
            boundaries := (step_at, pid, iv) :: !boundaries
          | _ -> ())
        | None -> ())
      (Trace.Log.intervals log ~pid)
  done;
  let boundaries = List.sort compare !boundaries in

  print_endline "shared store reconstructed at each e-block boundary:";
  List.iter
    (fun (step, pid, (iv : Trace.Log.interval)) ->
      let snap = Ppd.Restore.shared_at p log ~step in
      let count = snap.Ppd.Restore.globals.(0) in
      Printf.printf "  step %4d (process %d finished %s): count = %s\n" step
        pid p.Lang.Prog.funcs.(iv.iv_fid).fname
        (Runtime.Value.to_string count))
    boundaries;

  (* The final reconstruction must agree with the machine's real state. *)
  let final = Ppd.Restore.final p log in
  let real = Runtime.Machine.read_global (Ppd.Session.machine session) 0 in
  Printf.printf "final restored count = %s, machine says %s (agree: %b)\n"
    (Runtime.Value.to_string final.Ppd.Restore.globals.(0))
    (Runtime.Value.to_string real)
    (Runtime.Value.equal final.Ppd.Restore.globals.(0) real)
