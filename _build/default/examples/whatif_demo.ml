(* What-if experiments (§5.7): "the user could change the values of
   variables and re-start the program from the same point to see the
   effect of these changes on program behavior."

   We run a buggy program once, then — without ever re-executing the
   real program — ask three questions against the log: does the failure
   reproduce? which input fixes it? what happens under a perturbation
   that changes control flow entirely? *)

let src =
  {|
shared int threshold = 10;

func grade(score) {
  if (score >= threshold) {
    return 1;
  }
  return 0;
}

func main() {
  var s1 = grade(12);
  var s2 = grade(7);
  var passed = s1 + s2;
  assert(passed == 2);
}
|}

let report label (o : Ppd.Emulator.outcome) =
  Printf.printf "%-28s %s\n" label
    (match o.fault with
    | Some f -> "halted: " ^ f
    | None -> Printf.sprintf "completed (%d events)" (List.length o.events))

let () =
  let session = Ppd.Session.run src in
  Printf.printf "original run: %s\n\n" (Ppd.Session.explain_halt session);

  let what_if overrides =
    match Ppd.Session.what_if session ~pid:0 ~iv_id:0 ~overrides with
    | Ok o -> o
    | Error e -> failwith e
  in

  (* 1. the identity experiment reproduces the failure *)
  report "unchanged:" (what_if []);

  (* 2. would a lower threshold have passed? *)
  report "threshold = 5:" (what_if [ ("threshold", 5) ]);

  (* 3. an extreme threshold fails the other grade too *)
  report "threshold = 100:" (what_if [ ("threshold", 100) ]);

  (* 4. experiments also work on inner intervals: re-run just the second
     grade() call with its parameter perturbed *)
  let p = Ppd.Session.prog session in
  let ivs = Trace.Log.intervals (Ppd.Session.log session) ~pid:0 in
  let grade_iv =
    Array.to_list ivs
    |> List.filter (fun iv ->
           match iv.Trace.Log.iv_block with
           | Trace.Log.Bfunc fid -> p.Lang.Prog.funcs.(fid).fname = "grade"
           | _ -> false)
    |> fun l -> List.nth l 1
  in
  (match
     Ppd.Session.what_if session ~pid:0 ~iv_id:grade_iv.Trace.Log.iv_id
       ~overrides:[ ("score", 11) ]
   with
  | Ok o ->
    let ret =
      List.fold_left
        (fun acc (_, ev) ->
          match ev with
          | Runtime.Event.E_stmt
              { kind = Runtime.Event.K_return { value = Some v }; _ } ->
            Some v
          | _ -> acc)
        None o.Ppd.Emulator.events
    in
    Printf.printf "\ngrade(7) re-run as grade(11) returns %s (was 0)\n"
      (match ret with Some v -> Runtime.Value.to_string v | None -> "?")
  | Error e -> print_endline e)
