(* Reproduce Figure 4.1 of the paper: the dynamic program dependence
   graph of the fragment

       s1  a = 1;
       s2  b = 2;
       s3  c = 3;
       s4  d = SubD(a, b, a+b+c);
       s5  if (d > 0) sq = sqrt(d); else sq = sqrt(-d);
       s6  a = a + sq;

   at the moment s6 executes, including the fictional %3 node for the
   expression argument and the SubD sub-graph node. We print the graph
   both as text and as Graphviz dot. *)

let () =
  let session = Ppd.Session.run Workloads.fig41 in
  Printf.printf "halt: %s\n\n" (Ppd.Session.explain_halt session);
  let ctl = Ppd.Session.controller session in
  (* Build the graph for the main process's (single) interval. *)
  (match Ppd.Controller.last_event_node ctl ~pid:0 with
  | None -> failwith "no events"
  | Some _ -> ());
  let g = Ppd.Controller.graph ctl in
  Format.printf "%a@." Ppd.Dyn_graph.pp g;

  (* The paper's figure is drawn at the moment s6 = `a = a + sq`
     executes; flowback from that node shows its incoming dependence
     edges exactly as in the figure. *)
  let a_update = ref None in
  for i = 0 to Ppd.Dyn_graph.nnodes g - 1 do
    let n = Ppd.Dyn_graph.node g i in
    if n.Ppd.Dyn_graph.nd_label = "a = a + sq" then a_update := Some i
  done;
  (match !a_update with
  | None -> print_endline "s6 not found"
  | Some node ->
    Format.printf "@.Figure 4.1 root (s6):@.%a@."
      (Ppd.Flowback.pp_explain ~max_depth:2 ctl)
      node);

  print_endline "\n=== graphviz ===";
  print_string (Ppd.Dyn_graph.to_dot g)
