examples/race_demo.ml: Format Ppd Printf Runtime Workloads
