examples/fig4_1.ml: Format Ppd Printf Workloads
