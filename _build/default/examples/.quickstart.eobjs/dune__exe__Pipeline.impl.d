examples/pipeline.ml: Array Format Lang List Option Ppd Printf Runtime Workloads
