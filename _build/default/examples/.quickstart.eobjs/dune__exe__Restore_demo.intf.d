examples/restore_demo.mli:
