examples/pipeline.mli:
