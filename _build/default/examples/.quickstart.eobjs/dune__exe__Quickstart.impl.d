examples/quickstart.ml: Format List Ppd Printf Trace Workloads
