examples/quickstart.mli:
