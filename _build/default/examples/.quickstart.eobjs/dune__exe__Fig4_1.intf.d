examples/fig4_1.mli:
