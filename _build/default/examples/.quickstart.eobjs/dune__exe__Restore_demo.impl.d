examples/restore_demo.ml: Array Lang List Ppd Printf Runtime Trace Workloads
