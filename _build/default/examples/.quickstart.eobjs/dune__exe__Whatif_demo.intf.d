examples/whatif_demo.mli:
