examples/deadlock_demo.ml: Format Ppd Printf Runtime Workloads
