examples/race_demo.mli:
