(* Race detection (§6.3–6.4): two unsynchronised withdrawals from a
   shared bank balance. The parallel dynamic graph orders the processes'
   internal edges by their synchronization edges only; the two
   withdraw bodies are simultaneous and both read and write `balance` —
   a read/write and a write/write race. Adding a semaphore makes the
   edges ordered through the V->P token edges and the races disappear. *)

let analyse name src =
  Printf.printf "=== %s ===\n" name;
  let session = Ppd.Session.run ~sched:(Runtime.Sched.Random_seed 11) src in
  Printf.printf "%s; final balance: %s" (Ppd.Session.explain_halt session)
    (Ppd.Session.output session);
  let pd = Ppd.Session.pardyn session in
  Format.printf "%a@.@." Ppd.Pardyn.pp pd;
  let naive = Ppd.Race.detect ~algo:Ppd.Race.Naive pd in
  let indexed = Ppd.Race.detect ~algo:Ppd.Race.Indexed pd in
  assert (naive.Ppd.Race.races = indexed.Ppd.Race.races);
  Printf.printf "edge pairs examined: %d naive vs %d indexed\n"
    naive.Ppd.Race.pairs_examined indexed.Ppd.Race.pairs_examined;
  Format.printf "%a@.@." (Ppd.Race.pp_report pd) indexed.Ppd.Race.races

let () =
  analyse "racy bank account" Workloads.racy_bank;
  analyse "bank account with semaphore" Workloads.fixed_bank;

  (* §6.3's exact scenario: SV written in two edges, read in a third. *)
  analyse "SV written twice, read once (§6.3)" Workloads.sv_race
