(* Deadlock-cause analysis (§6): two processes take two semaphores in
   opposite orders. A scripted schedule forces the deadlock; the
   analysis exposes the wait-for cycle p1 -> p2 -> p1. *)

let () =
  (* script: let main spawn both (3 steps), then p1 start + P(a),
     p2 start + P(b); then each tries its second P and blocks. *)
  let sched =
    Runtime.Sched.Scripted [ 0; 0; 0; 1; 1; 2; 2; 1; 2; 0 ]
  in
  let session = Ppd.Session.run ~sched Workloads.deadlock_ab in
  print_endline (Ppd.Session.explain_halt session);
  let analysis = Ppd.Session.deadlock session in
  Format.printf "%a@." (Ppd.Deadlock.pp (Ppd.Session.prog session)) analysis;
  Printf.printf "deadlock confirmed by cycle analysis: %b\n"
    (Ppd.Deadlock.is_deadlocked analysis);

  (* For contrast: under plain round-robin this program happens to
     complete (the window for the deadlock is narrow) — exactly the
     irreproducibility that motivates log-based debugging. *)
  let lucky = Ppd.Session.run ~sched:(Runtime.Sched.Round_robin 8) Workloads.deadlock_ab in
  Printf.printf "same program, coarser schedule: %s\n"
    (Ppd.Session.explain_halt lucky)
