(* Quickstart: compile an MPL program, run it under the PPD logger, and
   use flowback analysis to explain the error — without re-executing the
   program.

   The program computes min3(7, 3, 5) and asserts a wrong expectation,
   so execution faults at the assert; flowback walks the causal chain
   from the failed assert back through the call to the inputs. *)

let src = Workloads.buggy_min

let () =
  print_endline "=== source ===";
  print_string src;

  (* Phases 1+2: preparatory (compile + analyses) and execution (logged
     run). The Session module packages §3.2's pipeline. *)
  let session = Ppd.Session.run src in
  Printf.printf "\n=== execution ===\n%s\n" (Ppd.Session.explain_halt session);

  (* How little was traced: the log vs the events that actually ran. *)
  let log = Ppd.Session.log session in
  Printf.printf "log entries: %d (every other event will be regenerated \
                 on demand)\n"
    (Trace.Log.entry_count log);

  (* Phase 3: debugging. The controller builds the dynamic dependence
     graph incrementally, starting at the last executed statement. *)
  let ctl = Ppd.Session.controller session in
  match Ppd.Session.error_node session with
  | None -> print_endline "nothing to debug"
  | Some root ->
    print_endline "\n=== flowback ===";
    Format.printf "%a@." (Ppd.Flowback.pp_explain ~max_depth:3 ctl) root;

    (* Expand the min3 sub-graph node to see inside the call. *)
    let g = Ppd.Controller.graph ctl in
    let subgraphs = ref [] in
    for i = 0 to Ppd.Dyn_graph.nnodes g - 1 do
      match (Ppd.Dyn_graph.node g i).Ppd.Dyn_graph.nd_kind with
      | Ppd.Dyn_graph.N_subgraph _ -> subgraphs := i :: !subgraphs
      | _ -> ()
    done;
    List.iter (fun n -> ignore (Ppd.Controller.expand_subgraph ctl n)) !subgraphs;
    print_endline "=== flowback after expanding the call ===";
    Format.printf "%a@." (Ppd.Flowback.pp_explain ~max_depth:5 ctl) root;

    let st = Ppd.Controller.stats ctl in
    Printf.printf
      "incremental tracing: emulated %d of %d log intervals (%d steps)\n"
      st.Ppd.Controller.replays st.Ppd.Controller.intervals_total
      st.Ppd.Controller.replay_steps
