(* Figure 6.1: three processes connected by synchronous (blocking-send)
   channels. P1 sends to P2 (nodes n3/n4, sync edge), P2 is unblocked
   (n5, sync edge back), P2 forwards to P3. We print the parallel
   dynamic graph and then ask flowback to explain the value P3 printed —
   the controller chases the dependence across both channel hops and all
   three processes' log intervals. *)

let () =
  let session = Ppd.Session.run Workloads.fig61 in
  Printf.printf "halt: %s\noutput: %s\n" (Ppd.Session.explain_halt session)
    (Ppd.Session.output session);

  print_endline "=== parallel dynamic graph (Figure 6.1) ===";
  let pd = Ppd.Session.pardyn session in
  Format.printf "%a@.@." Ppd.Pardyn.pp pd;

  (* Find p3's print node and flow back across processes. *)
  let ctl = Ppd.Session.controller session in
  let printing_pid =
    (* p3 is the process whose root function contains the print *)
    let m = Ppd.Session.machine session in
    let p = Ppd.Session.prog session in
    let rec find pid =
      if pid >= Runtime.Machine.nprocs m then 0
      else
        let f = p.Lang.Prog.funcs.(Runtime.Machine.proc_root m pid) in
        if f.Lang.Prog.fname = "p3" then pid else find (pid + 1)
    in
    find 0
  in
  match Ppd.Controller.last_event_node ctl ~pid:printing_pid with
  | None -> print_endline "no events for p3"
  | Some exit_node ->
    (* the last event is p3's exit; its flow predecessor is the print *)
    let g = Ppd.Controller.graph ctl in
    let print_node =
      List.fold_left
        (fun acc (src, kind) ->
          match kind with Ppd.Dyn_graph.Flow -> Some src | _ -> acc)
        None
        (Ppd.Dyn_graph.preds g exit_node)
    in
    let root = Option.value ~default:exit_node print_node in
    print_endline "=== cross-process flowback of the printed value ===";
    Format.printf "%a@." (Ppd.Flowback.pp_explain ~max_depth:6 ctl) root;
    let st = Ppd.Controller.stats ctl in
    Printf.printf "emulated %d of %d intervals to answer this query\n"
      st.Ppd.Controller.replays st.Ppd.Controller.intervals_total
