(* Race detection: Definitions 6.1–6.4 plus the naive/indexed agreement
   ablation (§7). *)

let detect ?sched src =
  let prog = Util.compile src in
  let obs = Ppd.Pardyn.observer prog in
  let m = Runtime.Machine.create ?sched ~hooks:(Ppd.Pardyn.factory obs) prog in
  ignore (Runtime.Machine.run m);
  let g = Ppd.Pardyn.finish obs in
  (g, Ppd.Race.detect ~algo:Ppd.Race.Naive g, Ppd.Race.detect ~algo:Ppd.Race.Indexed g)

let var_names races =
  List.map (fun r -> r.Ppd.Race.rc_var.Lang.Prog.vname) races
  |> List.sort_uniq compare

let test_racy_bank () =
  let g, naive, indexed = detect Workloads.racy_bank in
  Alcotest.(check bool) "races found" true (naive.Ppd.Race.races <> []);
  Alcotest.(check bool) "algorithms agree" true
    (naive.Ppd.Race.races = indexed.Ppd.Race.races);
  Alcotest.(check (list string)) "on balance" [ "balance" ]
    (var_names naive.Ppd.Race.races);
  Alcotest.(check bool) "both conflict kinds present" true
    (List.exists (fun r -> r.Ppd.Race.rc_kind = Ppd.Race.Write_write) naive.races
    && List.exists (fun r -> r.Ppd.Race.rc_kind = Ppd.Race.Read_write) naive.races);
  Alcotest.(check bool) "not race free" false (Ppd.Race.is_race_free g)

let test_fixed_bank () =
  let g, naive, indexed = detect Workloads.fixed_bank in
  Alcotest.(check (list string)) "no races" [] (var_names naive.Ppd.Race.races);
  Alcotest.(check bool) "agree" true (naive.Ppd.Race.races = indexed.Ppd.Race.races);
  Alcotest.(check bool) "race free" true (Ppd.Race.is_race_free g)

let test_sv_race_section_6_3 () =
  (* two writers and one reader, all concurrent: W/W between writers,
     R/W between the reader and each writer *)
  let _g, naive, _ = detect Workloads.sv_race in
  let ww =
    List.filter (fun r -> r.Ppd.Race.rc_kind = Ppd.Race.Write_write) naive.races
  in
  let rw =
    List.filter (fun r -> r.Ppd.Race.rc_kind = Ppd.Race.Read_write) naive.races
  in
  Alcotest.(check int) "one W/W race" 1 (List.length ww);
  Alcotest.(check int) "two R/W races" 2 (List.length rw)

let test_join_removes_race () =
  (* joining the writer before reading orders the accesses *)
  let src =
    {|
    shared int g = 0;
    func w() { g = 1; }
    func main() {
      var p = spawn w();
      join(p);
      print(g);
    }
    |}
  in
  let _g, naive, _ = detect src in
  Alcotest.(check (list string)) "no race through join" [] (var_names naive.races)

let test_message_removes_race () =
  (* the send->recv edge orders the write before the read *)
  let src =
    {|
    shared int g = 0;
    chan c[0];
    func w() { g = 5; send(c, 1); }
    func main() {
      var p = spawn w();
      var x = 0;
      recv(c, x);
      print(g);
      join(p);
    }
    |}
  in
  let _g, naive, _ = detect src in
  Alcotest.(check (list string)) "no race through message" []
    (var_names naive.races)

let test_read_read_not_a_race () =
  let src =
    {|
    shared int g = 7;
    func r() { var x = g; return x; }
    func main() {
      var p1 = spawn r();
      var p2 = spawn r();
      join(p1); join(p2);
    }
    |}
  in
  let _g, naive, _ = detect src in
  Alcotest.(check (list string)) "read/read is fine" [] (var_names naive.races)

let test_counter_scaling_agreement () =
  List.iter
    (fun workers ->
      let _g, naive, indexed =
        detect (Workloads.counter ~workers ~incs:3 ~mutex:false)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d workers agree" workers)
        true
        (naive.Ppd.Race.races = indexed.Ppd.Race.races);
      Alcotest.(check bool)
        (Printf.sprintf "%d workers race" workers)
        true (naive.Ppd.Race.races <> []);
      Alcotest.(check bool) "indexed examines fewer pairs" true
        (indexed.Ppd.Race.pairs_examined <= naive.Ppd.Race.pairs_examined))
    [ 2; 3; 4; 5 ]

let naive_indexed_agree =
  Util.qtest ~count:30 "naive = indexed on random programs"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let _g, naive, indexed =
        detect
          ~sched:(Runtime.Sched.Random_seed sseed)
          (Gen.parallel ~protect:`Sometimes seed)
      in
      naive.Ppd.Race.races = indexed.Ppd.Race.races)

let protected_is_race_free =
  Util.qtest ~count:30 "fully protected programs are race-free"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let g, _, _ =
        detect
          ~sched:(Runtime.Sched.Random_seed sseed)
          (Gen.parallel ~protect:`Always seed)
      in
      Ppd.Race.is_race_free g)

let suite =
  ( "race",
    [
      Alcotest.test_case "racy bank" `Quick test_racy_bank;
      Alcotest.test_case "fixed bank" `Quick test_fixed_bank;
      Alcotest.test_case "§6.3 scenario" `Quick test_sv_race_section_6_3;
      Alcotest.test_case "join orders" `Quick test_join_removes_race;
      Alcotest.test_case "message orders" `Quick test_message_removes_race;
      Alcotest.test_case "read/read ok" `Quick test_read_read_not_a_race;
      Alcotest.test_case "scaling agreement" `Quick test_counter_scaling_agreement;
      naive_indexed_agree;
      protected_is_race_free;
    ] )
