open Lang

let parse = Parser.parse_program

let parse_expr = Parser.parse_expr

let expr_str e = Pp_ast.expr_to_string e

let check_expr name src normalised =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name normalised (expr_str (parse_expr src)))

let parse_error name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | exception Diag.Error (_, msg) ->
        if not (Util.contains ~sub:fragment msg) then
          Alcotest.failf "error %S does not mention %S" msg fragment
      | _ -> Alcotest.fail "expected a parse error")

let ok name src =
  Alcotest.test_case name `Quick (fun () -> ignore (parse src))

let test_precedence () =
  (* * binds tighter than +, comparisons over arithmetic, && over || *)
  Alcotest.(check string) "mul/add" "1 + 2 * 3" (expr_str (parse_expr "1 + 2 * 3"));
  Alcotest.(check string)
    "parens preserved where needed" "(1 + 2) * 3"
    (expr_str (parse_expr "(1 + 2) * 3"));
  Alcotest.(check string)
    "cmp over arith" "a + 1 < b * 2"
    (expr_str (parse_expr "a + 1 < b * 2"));
  Alcotest.(check string)
    "and over or" "a < 1 || b < 2 && c < 3"
    (expr_str (parse_expr "a < 1 || (b < 2 && c < 3)"))

let test_left_assoc () =
  (* 1 - 2 - 3 = (1 - 2) - 3 *)
  match (parse_expr "1 - 2 - 3").edesc with
  | Ast.Binop (Ast.Sub, { edesc = Ast.Binop (Ast.Sub, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "subtraction must be left-associative"

let test_unary () =
  match (parse_expr "--x").edesc with
  | Ast.Unop (Ast.Neg, { edesc = Ast.Unop (Ast.Neg, _); _ }) -> ()
  | _ -> Alcotest.fail "double negation"

let test_call_decl_desugar () =
  (* `var x = f(1);` becomes declaration + call statement *)
  match parse "func f(a) { return a; } func main() { var x = f(1); }" with
  | [ _; Ast.Gfunc { fbody = [ { sdesc = Ast.Decl ("x", None); _ };
                               { sdesc = Ast.Call (Some (Ast.Lvar "x"), _); _ } ];
                     _ } ] ->
    ()
  | _ -> Alcotest.fail "call initialiser not desugared"

let test_else_if () =
  match parse "func main() { if (true) {} else if (false) {} else {} }" with
  | [ Ast.Gfunc { fbody = [ { sdesc = Ast.If (_, [], [ { sdesc = Ast.If _; _ } ]); _ } ]; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_for_shape () =
  match parse "func main() { var i = 0; for (i = 0; i < 3; i = i + 1) { print(i); } }" with
  | [ Ast.Gfunc { fbody = [ _; { sdesc = Ast.For (_, _, _, [ _ ]); _ } ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "for shape"

(* Robustness: arbitrary input never escapes the Diag.Error protocol. *)
let fuzz_no_crash =
  Util.qtest ~count:300 "lexer/parser never crash"
    QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 80))
    (fun s ->
      match Lang.Compile.compile_result s with
      | Ok _ | Error _ -> true)

let fuzz_token_soup =
  Util.qtest ~count:200 "token soup never crashes"
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (oneofl
           [ "func"; "main"; "("; ")"; "{"; "}"; "var"; "="; ";"; "if";
             "while"; "+"; "-"; "x"; "1"; "P"; "V"; "send"; "recv"; "spawn";
             "join"; "["; "]"; ","; "shared"; "int"; "sem"; "chan"; "return" ]))
    (fun toks ->
      let s = String.concat " " toks in
      match Lang.Compile.compile_result s with Ok _ | Error _ -> true)

let suite =
  ( "parser",
    [
      check_expr "flat arith" "1+2*3" "1 + 2 * 3";
      check_expr "index" "a[i+1]" "a[i + 1]";
      check_expr "logic" "!(a<b)&&c==d" "!(a < b) && c == d";
      Alcotest.test_case "precedence" `Quick test_precedence;
      Alcotest.test_case "left associativity" `Quick test_left_assoc;
      Alcotest.test_case "unary nesting" `Quick test_unary;
      Alcotest.test_case "var x = f(..) desugar" `Quick test_call_decl_desugar;
      Alcotest.test_case "else if" `Quick test_else_if;
      Alcotest.test_case "for statement" `Quick test_for_shape;
      ok "all statement forms"
        {|
        shared int g = 1;
        shared int arr[4];
        sem s = 1;
        chan c;
        chan cs[0];
        chan cb[3];
        func f(a, b) { return a + b; }
        func main() {
          var x;
          var y = 1;
          var a[3];
          x = 2;
          a[0] = x;
          x = f(1, 2);
          f(1, 2);
          var p = spawn f(1, 2);
          spawn f(3, 4);
          join(p);
          var r = join(p);
          P(s); V(s);
          send(c, 1);
          recv(c, x);
          recv(c, a[1]);
          print(x);
          assert(x > 0);
          if (x > 0) { x = 1; } else { x = 2; }
          while (x > 0) { x = x - 1; }
          for (y = 0; y < 2; y = y + 1) { print(y); }
          return;
        }
        |};
      parse_error "call in expression" "func main() { var x = 1 + f(2); }"
        "cannot appear inside an expression";
      parse_error "missing semicolon" "func main() { var x = 1 }" "expected ;";
      parse_error "bad toplevel" "int x;" "top-level";
      parse_error "unclosed brace" "func main() { " "expected statement";
      parse_error "garbage statement" "func main() { 42; }" "expected statement";
      fuzz_no_crash;
      fuzz_token_soup;
    ] )
