(* Deadlock-cause analysis. *)

module M = Runtime.Machine

let analyze ?sched src =
  let prog = Util.compile src in
  let m = M.create ?sched prog in
  let halt = M.run m in
  (halt, m, Ppd.Deadlock.analyze m)

let test_ab_cycle () =
  let sched = Runtime.Sched.Scripted [ 0; 0; 0; 1; 1; 2; 2; 1; 2 ] in
  let halt, _m, a = analyze ~sched Workloads.deadlock_ab in
  (match halt with
  | M.Deadlock _ -> ()
  | h -> Alcotest.failf "expected deadlock, got %s" (Util.halt_name h));
  Alcotest.(check bool) "deadlocked" true (Ppd.Deadlock.is_deadlocked a);
  Alcotest.(check (list (list int))) "the p1<->p2 cycle" [ [ 1; 2 ] ] a.cycles;
  (* main waits for p1 but is not part of the cycle *)
  Alcotest.(check bool) "main blocked on join" true
    (List.mem_assoc 0 a.wait_for)

let test_self_starvation () =
  let halt, _m, a = analyze "sem s = 0; func main() { P(s); }" in
  (match halt with M.Deadlock _ -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check (list int)) "hopeless" [ 0 ] a.hopeless;
  Alcotest.(check bool) "deadlocked" true (Ppd.Deadlock.is_deadlocked a);
  Alcotest.(check (list (list int))) "no cycle" [] a.cycles

let test_missing_sender () =
  let halt, _m, a = analyze "chan c; func main() { var x = 0; recv(c, x); }" in
  (match halt with M.Deadlock _ -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check (list int)) "nobody can send" [ 0 ] a.hopeless

let test_potential_helper_not_starved () =
  (* the consumer waits for a producer that exists but is blocked too:
     there is a helper, and the helper chain is a cycle *)
  let src =
    {|
    chan a[0];
    chan b[0];
    func w() { var x = 0; recv(b, x); send(a, x); }
    func main() {
      var p = spawn w();
      var y = 0;
      recv(a, y);   // waits for w, which waits for us
      send(b, 1);
      join(p);
    }
    |}
  in
  let halt, _m, a = analyze src in
  (match halt with M.Deadlock _ -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check bool) "cycle found" true (a.cycles <> []);
  Alcotest.(check (list int)) "nobody hopeless" [] a.hopeless

let test_no_deadlock_analysis_clean () =
  let halt, _m, a = analyze Workloads.fixed_bank in
  (match halt with M.Finished -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check bool) "nothing blocked" true (a.blocked = []);
  Alcotest.(check bool) "not deadlocked" false (Ppd.Deadlock.is_deadlocked a)

let suite =
  ( "deadlock",
    [
      Alcotest.test_case "AB/BA cycle" `Quick test_ab_cycle;
      Alcotest.test_case "starvation (no V anywhere)" `Quick test_self_starvation;
      Alcotest.test_case "missing sender" `Quick test_missing_sender;
      Alcotest.test_case "recv/recv cycle" `Quick test_potential_helper_not_starved;
      Alcotest.test_case "clean run analyzes clean" `Quick
        test_no_deadlock_analysis_clean;
    ] )
