(* Call graph (SCCs, leaves) and interprocedural MOD/REF. *)

open Analysis
module P = Lang.Prog

let fid p name = (Option.get (P.find_func p name)).P.fid

let gvid (p : P.t) name =
  (Array.to_list p.globals |> List.find (fun (v : P.var) -> v.vname = name)).vid

let test_callgraph () =
  let p =
    Util.compile
      {|
      func leaf() { return 1; }
      func mid() { var x = leaf(); return x; }
      func top() { var a = mid(); var b = leaf(); return a + b; }
      func worker() { return 0; }
      func main() { var t = top(); spawn worker(); print(t); }
      |}
  in
  let cg = Callgraph.compute p in
  Alcotest.(check (list int)) "top calls" [ fid p "leaf"; fid p "mid" ]
    (List.sort compare cg.calls.(fid p "top"));
  Alcotest.(check bool) "leaf is leaf" true (Callgraph.is_leaf cg (fid p "leaf"));
  Alcotest.(check bool) "mid not leaf" false (Callgraph.is_leaf cg (fid p "mid"));
  Alcotest.(check (list int)) "spawn edge separate" [ fid p "worker" ]
    cg.spawns.(fid p "main");
  Alcotest.(check bool) "spawn target is not a callee" true
    (not (List.mem (fid p "worker") cg.calls.(fid p "main")));
  Alcotest.(check (list int)) "leaf callers" [ fid p "mid"; fid p "top" ]
    (List.sort compare cg.callers.(fid p "leaf"))

let test_scc_recursion () =
  let p =
    Util.compile
      {|
      func even(n) { if (n == 0) { return 1; } var r = odd(n - 1); return r; }
      func odd(n) { if (n == 0) { return 0; } var r = even(n - 1); return r; }
      func solo() { return 3; }
      func main() { var e = even(4); print(e); solo(); }
      |}
  in
  let cg = Callgraph.compute p in
  let comp, comps = Callgraph.sccs cg in
  Alcotest.(check int) "even and odd share a component" comp.(fid p "even")
    comp.(fid p "odd");
  Alcotest.(check bool) "solo alone" true (comp.(fid p "solo") <> comp.(fid p "even"));
  Alcotest.(check bool) "mutual recursion detected" true
    (Callgraph.is_recursive cg (fid p "even"));
  Alcotest.(check bool) "solo not recursive" false
    (Callgraph.is_recursive cg (fid p "solo"));
  (* reverse topological: the even/odd component precedes main's *)
  let pos f =
    let rec go i = function
      | [] -> -1
      | members :: rest -> if List.mem f members then i else go (i + 1) rest
    in
    go 0 comps
  in
  Alcotest.(check bool) "callees before callers" true
    (pos (fid p "even") < pos (fid p "main"))

let test_modref () =
  let p =
    Util.compile
      {|
      shared int g1 = 0;
      shared int g2 = 0;
      shared int g3 = 0;
      func reader() { var x = g1; return x; }
      func writer() { g2 = 1; return 0; }
      func both() { var a = reader(); var b = writer(); g3 = g3 + 1; return a + b; }
      func main() { var r = both(); print(r); }
      |}
  in
  let s = Interproc.compute p in
  let check_set name set expected =
    Alcotest.(check (list int)) name (List.sort compare expected) (Varset.elements set)
  in
  check_set "reader REF" s.gref.(fid p "reader") [ gvid p "g1" ];
  check_set "reader MOD" s.gmod.(fid p "reader") [];
  check_set "writer MOD" s.gmod.(fid p "writer") [ gvid p "g2" ];
  check_set "both MOD transitively" s.gmod.(fid p "both")
    [ gvid p "g2"; gvid p "g3" ];
  check_set "both REF transitively" s.gref.(fid p "both")
    [ gvid p "g1"; gvid p "g3" ];
  check_set "main inherits" s.gmod.(fid p "main") [ gvid p "g2"; gvid p "g3" ]

let test_modref_recursion () =
  let p =
    Util.compile
      {|
      shared int acc = 0;
      func walk(n) { if (n > 0) { acc = acc + n; walk(n - 1); } }
      func main() { walk(3); print(acc); }
      |}
  in
  let s = Interproc.compute p in
  Alcotest.(check (list int)) "recursive MOD converges" [ gvid p "acc" ]
    (Varset.elements s.gmod.(fid p "walk"))

let test_modref_excludes_spawn () =
  let p =
    Util.compile
      {|
      shared int g = 0;
      func w() { g = 1; }
      func main() { var pid = spawn w(); join(pid); print(g); }
      |}
  in
  let s = Interproc.compute p in
  (* the spawned writer's effects are not main's own block effects *)
  Alcotest.(check (list int)) "spawn excluded" []
    (Varset.elements s.gmod.(fid p "main"))

(* Agreement of the two Varset representations on real fixpoints. *)
let modref_repr_agree =
  Util.qtest ~count:30 "Interproc(Bits) = Interproc(Lists)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p = Util.compile (Gen.parallel ~protect:`Always seed) in
      let module B = Interproc.Make (Varset.Bits) in
      let module L = Interproc.Make (Varset.Lists) in
      let sb = B.compute p and sl = L.compute p in
      Array.for_all2
        (fun a b -> Varset.Bits.elements a = Varset.Lists.elements b)
        sb.B.gmod sl.L.gmod
      && Array.for_all2
           (fun a b -> Varset.Bits.elements a = Varset.Lists.elements b)
           sb.B.gref sl.L.gref)

let suite =
  ( "interproc",
    [
      Alcotest.test_case "call graph" `Quick test_callgraph;
      Alcotest.test_case "SCCs and recursion" `Quick test_scc_recursion;
      Alcotest.test_case "MOD/REF" `Quick test_modref;
      Alcotest.test_case "MOD/REF with recursion" `Quick test_modref_recursion;
      Alcotest.test_case "MOD/REF excludes spawns" `Quick test_modref_excludes_spawn;
      modref_repr_agree;
    ] )
