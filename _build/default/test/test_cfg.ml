(* CFG construction, dominators/postdominators and the FOW control
   dependence computation. *)

open Analysis
module P = Lang.Prog

let cfg_of src fname =
  let p = Util.compile src in
  let f = Option.get (P.find_func p fname) in
  (p, Cfg.build p f)

let node_of (cfg : Cfg.t) sid = cfg.node_of_sid.(sid)

let test_linear () =
  let _, cfg = cfg_of "func main() { var a = 1; var b = 2; print(a + b); }" "main" in
  (* entry -> s0 -> s1 -> s2 -> exit *)
  Alcotest.(check int) "nodes" 5 (Cfg.nnodes cfg);
  Alcotest.(check (list int)) "entry succ" [ node_of cfg 0 ] (Cfg.succ_ids cfg cfg.entry);
  Alcotest.(check (list int)) "s2 succ" [ cfg.exit ] (Cfg.succ_ids cfg (node_of cfg 2))

let test_if_shape () =
  let _, cfg =
    cfg_of "func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } print(x); }" "main"
  in
  let cond = node_of cfg 1 in
  let succs = cfg.succs.(cond) in
  Alcotest.(check int) "two branch successors" 2 (List.length succs);
  let labels = List.map snd succs |> List.sort compare in
  Alcotest.(check bool) "labels T/F" true (labels = [ Cfg.True; Cfg.False ]);
  (* both branch statements flow to print *)
  Alcotest.(check (list int)) "then joins" [ node_of cfg 4 ] (Cfg.succ_ids cfg (node_of cfg 2));
  Alcotest.(check (list int)) "else joins" [ node_of cfg 4 ] (Cfg.succ_ids cfg (node_of cfg 3))

let test_while_backedge () =
  let _, cfg =
    cfg_of "func main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }" "main"
  in
  let head = node_of cfg 1 in
  let body = node_of cfg 2 in
  Alcotest.(check (list int)) "body loops back" [ head ] (Cfg.succ_ids cfg body);
  Alcotest.(check bool) "head branches" true (Cfg.is_branch cfg head)

let test_return_exits () =
  let _, cfg =
    cfg_of "func f(c) { if (c > 0) { return 1; } return 2; } func main() { }" "f"
  in
  let r1 = node_of cfg 1 and r2 = node_of cfg 2 in
  Alcotest.(check (list int)) "return 1 -> exit" [ cfg.exit ] (Cfg.succ_ids cfg r1);
  Alcotest.(check (list int)) "return 2 -> exit" [ cfg.exit ] (Cfg.succ_ids cfg r2)

let test_dominators () =
  let _, cfg =
    cfg_of "func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } print(x); }" "main"
  in
  let dom = Dominance.dominators cfg in
  let cond = node_of cfg 1 and then_ = node_of cfg 2 and print_ = node_of cfg 4 in
  Alcotest.(check bool) "cond dominates then" true (Dominance.dominates dom cond then_);
  Alcotest.(check bool) "cond dominates print" true (Dominance.dominates dom cond print_);
  Alcotest.(check bool) "then does not dominate print" false
    (Dominance.dominates dom then_ print_);
  Alcotest.(check int) "idom of then = cond" cond dom.idom.(then_)

let test_postdominators () =
  let _, cfg =
    cfg_of "func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } print(x); }" "main"
  in
  let pdom = Dominance.postdominators cfg in
  let cond = node_of cfg 1 and then_ = node_of cfg 2 and print_ = node_of cfg 4 in
  Alcotest.(check bool) "print postdominates cond" true
    (Dominance.dominates pdom print_ cond);
  Alcotest.(check bool) "then does not postdominate cond" false
    (Dominance.dominates pdom then_ cond)

let test_control_deps () =
  let _, cfg =
    cfg_of
      "func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } print(x); while (x > 0) { x = x - 1; } }"
      "main"
  in
  let pdom = Dominance.postdominators cfg in
  let deps = Dominance.control_deps cfg pdom in
  let cond = node_of cfg 1 in
  let then_ = node_of cfg 2 and else_ = node_of cfg 3 and print_ = node_of cfg 4 in
  let loop = node_of cfg 5 and body = node_of cfg 6 in
  let dep_srcs n = List.map fst deps.(n) |> List.sort compare in
  Alcotest.(check (list int)) "then dep on cond" [ cond ] (dep_srcs then_);
  Alcotest.(check (list int)) "else dep on cond" [ cond ] (dep_srcs else_);
  Alcotest.(check (list int)) "print depends on entry" [ cfg.entry ] (dep_srcs print_);
  Alcotest.(check (list int)) "body dep on loop head" [ loop ] (dep_srcs body);
  (* the loop predicate is control dependent on itself *)
  Alcotest.(check bool) "loop self-dependence" true (List.mem loop (dep_srcs loop))

let test_unreachable_code () =
  let _, cfg =
    cfg_of "func f() { return 1; print(99); } func main() { }" "f"
  in
  let reach = Cfg.reachable cfg in
  let dead = node_of cfg 1 in
  Alcotest.(check bool) "print unreachable" false (Bitset.mem reach dead)

let suite =
  ( "cfg+dominance",
    [
      Alcotest.test_case "linear chain" `Quick test_linear;
      Alcotest.test_case "if diamond" `Quick test_if_shape;
      Alcotest.test_case "while back edge" `Quick test_while_backedge;
      Alcotest.test_case "returns exit" `Quick test_return_exits;
      Alcotest.test_case "dominators" `Quick test_dominators;
      Alcotest.test_case "postdominators" `Quick test_postdominators;
      Alcotest.test_case "control dependences" `Quick test_control_deps;
      Alcotest.test_case "unreachable code" `Quick test_unreachable_code;
    ] )
