  $ ppd example buggy_min > buggy.mpl
  $ ppd example racy_bank > racy.mpl
  $ ppd example fixed_bank > fixed.mpl
  $ ppd example fig61 > fig61.mpl
  $ ppd check buggy.mpl
  $ ppd run fig61.mpl
  $ ppd run buggy.mpl
  $ echo 'func main() { print(nope); }' > bad.mpl
  $ ppd check bad.mpl
  $ ppd analyze fixed.mpl --show modref
  $ ppd flowback buggy.mpl --depth 2
  $ ppd race racy.mpl
  $ ppd race fixed.mpl
  $ ppd race racy.mpl --static
  $ cat > limit.mpl <<'MPL'
  > shared int limit = 10;
  > func main() {
  >   var i = 0;
  >   var n = 0;
  >   while (i < limit) { n = n + i; i = i + 1; }
  >   print(n);
  > }
  > MPL
  $ ppd run limit.mpl
  $ ppd whatif limit.mpl --set limit=3
  $ printf 'why\nstats\nquit\n' > script.txt
  $ ppd debug buggy.mpl --script script.txt
  $ ppd log fig61.mpl --save run.log > /dev/null
  $ test -f run.log && echo saved
