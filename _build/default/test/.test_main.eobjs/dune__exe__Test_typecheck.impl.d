test/test_typecheck.ml: Alcotest Util
