test/test_machine.ml: Alcotest List Printf Runtime String Util Workloads
