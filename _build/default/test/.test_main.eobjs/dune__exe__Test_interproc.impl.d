test/test_interproc.ml: Alcotest Analysis Array Callgraph Gen Interproc Lang List Option QCheck2 Util Varset
