test/test_parser.ml: Alcotest Ast Diag Lang Parser Pp_ast QCheck2 String Util
