test/test_log.ml: Alcotest Array Filename Fun Gen List Out_channel Printf QCheck2 Runtime Sys Trace Util Workloads
