test/test_whatif.ml: Alcotest Array Gen Lang List Ppd QCheck2 Runtime Trace Util Workloads
