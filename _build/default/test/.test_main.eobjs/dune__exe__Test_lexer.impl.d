test/test_lexer.ml: Alcotest Diag Lang Lexer List Loc Token Util
