test/test_simplified.ml: Alcotest Analysis Array Cfg Lang List Option Simplified Util Varset Workloads
