test/test_loop_eblock.ml: Alcotest Analysis Array Gen Lang List Option Ppd Printf QCheck2 Runtime Trace Util Workloads
