test/test_static_pdg.ml: Alcotest Analysis Array Cfg Format Lang List Option Ppd Printf Progdb Static_pdg Util Workloads
