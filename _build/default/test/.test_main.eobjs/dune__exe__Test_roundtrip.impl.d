test/test_roundtrip.ml: Alcotest Ast Diag Gen Lang List Loc Parser Pp_ast QCheck2 String Util Workloads
