test/gen.ml: Buffer Lang List Printf Random String
