test/test_emulator.ml: Alcotest Analysis Array Gen List Ppd QCheck2 Runtime Trace Util Workloads
