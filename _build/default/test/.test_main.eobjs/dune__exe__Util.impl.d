test/util.ml: Alcotest Analysis Array Format Lang List Ppd Printf QCheck2 QCheck_alcotest Runtime String Trace
