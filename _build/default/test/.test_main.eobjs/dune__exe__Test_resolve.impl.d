test/test_resolve.ml: Alcotest Array Lang List Option Prog Util Workloads
