test/test_interp.ml: Alcotest Lang List Printf Runtime Util
