test/test_race.ml: Alcotest Gen Lang List Ppd Printf QCheck2 Runtime Util Workloads
