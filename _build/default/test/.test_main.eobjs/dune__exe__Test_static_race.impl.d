test/test_static_race.ml: Alcotest Analysis Array Cfg Format Gen Lang List Ppd QCheck2 Runtime Static_race Util Workloads
