test/test_restore.ml: Alcotest Analysis Array Gen Lang List Ppd Printf QCheck2 Runtime Trace Util Workloads
