test/test_flowback.ml: Alcotest Array Format Lang List Option Ppd Runtime Util Workloads
