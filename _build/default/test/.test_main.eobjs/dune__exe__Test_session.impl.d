test/test_session.ml: Alcotest Analysis Array Gen Hashtbl Lang List Option Ppd QCheck2 Runtime Trace Util Workloads
