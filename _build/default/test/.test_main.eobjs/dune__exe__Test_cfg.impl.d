test/test_cfg.ml: Alcotest Analysis Array Bitset Cfg Dominance Lang List Option Util
