test/test_sets.ml: Alcotest Analysis Bitset QCheck2 Util Varset
