test/test_dataflow.ml: Alcotest Analysis Array Bitset Cfg Interproc Lang List Live Option Reaching_defs String Util Varset
