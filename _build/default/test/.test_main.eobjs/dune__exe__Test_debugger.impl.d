test/test_debugger.ml: Alcotest List Ppd String Util Workloads
