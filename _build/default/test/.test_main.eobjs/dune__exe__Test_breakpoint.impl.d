test/test_breakpoint.ml: Alcotest Array Lang List Ppd Runtime Util Workloads
