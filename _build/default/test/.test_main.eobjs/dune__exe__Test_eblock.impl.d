test/test_eblock.ml: Alcotest Analysis Array Eblock Lang List Option Printf Use_def Util Varset Workloads
