test/test_pardyn.ml: Alcotest Analysis Array Gen Lang List Ppd QCheck2 Runtime Trace Util Workloads
