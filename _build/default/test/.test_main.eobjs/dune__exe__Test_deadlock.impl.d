test/test_deadlock.ml: Alcotest List Ppd Runtime Util Workloads
