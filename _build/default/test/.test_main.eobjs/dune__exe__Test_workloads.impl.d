test/test_workloads.ml: Alcotest Lang List Printf Runtime Util Workloads
