test/test_units.ml: Alcotest Array Lang List Ppd Runtime Util
