(* Reaching definitions, liveness and upward-exposed uses. *)

open Analysis
module P = Lang.Prog

let setup src fname =
  let p = Util.compile src in
  let f = Option.get (P.find_func p fname) in
  let cfg = Cfg.build p f in
  (p, f, cfg)

let vid_of (p : P.t) name fid =
  (Array.to_list p.vars
  |> List.find (fun (v : P.var) ->
         String.equal v.vname name && (v.vfid = fid || P.is_global v)))
    .vid

let test_reaching_straightline () =
  let p, f, cfg =
    setup "func main() { var x = 1; x = 2; print(x); }" "main"
  in
  let rd = Reaching_defs.compute p cfg in
  let x = vid_of p "x" f.fid in
  let print_node = cfg.node_of_sid.(2) in
  let defs = Reaching_defs.reaching rd ~node:print_node ~vid:x in
  (* only the second assignment reaches the print *)
  Alcotest.(check int) "one def" 1 (List.length defs);
  match defs with
  | [ d ] -> Alcotest.(check int) "def node" cfg.node_of_sid.(1) d.def_node
  | _ -> assert false

let test_reaching_branch_merge () =
  let p, f, cfg =
    setup
      "func main() { var x = 0; if (x == 0) { x = 1; } else { x = 2; } print(x); }"
      "main"
  in
  let rd = Reaching_defs.compute p cfg in
  let x = vid_of p "x" f.fid in
  let print_node = cfg.node_of_sid.(4) in
  let defs = Reaching_defs.reaching rd ~node:print_node ~vid:x in
  Alcotest.(check int) "two defs merge" 2 (List.length defs)

let test_reaching_loop () =
  let p, f, cfg =
    setup
      "func main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }" "main"
  in
  let rd = Reaching_defs.compute p cfg in
  let i = vid_of p "i" f.fid in
  (* at the loop head both the init and the increment reach *)
  let head = cfg.node_of_sid.(1) in
  let defs = Reaching_defs.reaching rd ~node:head ~vid:i in
  Alcotest.(check int) "init + increment" 2 (List.length defs)

let test_entry_defines () =
  let p, f, cfg = setup "func f(a) { return a; } func main() { }" "f" in
  let rd = Reaching_defs.compute p cfg in
  let a = vid_of p "a" f.fid in
  let ret = cfg.node_of_sid.(0) in
  match Reaching_defs.reaching rd ~node:ret ~vid:a with
  | [ d ] -> Alcotest.(check int) "param defined at entry" cfg.entry d.def_node
  | l -> Alcotest.failf "expected 1 entry def, got %d" (List.length l)

let test_array_defs_accumulate () =
  let p, f, cfg =
    setup "func main() { var a[2]; a[0] = 1; a[1] = 2; print(a[0]); }" "main"
  in
  let rd = Reaching_defs.compute p cfg in
  let a = vid_of p "a" f.fid in
  let print_node = cfg.node_of_sid.(2) in
  (* array writes are not killing: entry + both element writes reach *)
  Alcotest.(check int) "three defs" 3
    (List.length (Reaching_defs.reaching rd ~node:print_node ~vid:a))

let test_call_mod_defs () =
  let src =
    "shared int g = 0; func set() { g = 1; } func main() { g = 5; set(); print(g); }"
  in
  let p = Util.compile src in
  let summary = Interproc.compute p in
  let f = Option.get (P.find_func p "main") in
  let cfg = Cfg.build p f in
  let rd = Reaching_defs.compute ~summary p cfg in
  let g = vid_of p "g" (-1) in
  let print_node = cfg.node_of_sid.(3) in
  let defs = Reaching_defs.reaching rd ~node:print_node ~vid:g in
  (* the call may define g (no kill), the direct assignment too *)
  Alcotest.(check int) "assign + call defs" 2 (List.length defs)

let test_upward_exposed () =
  let p, f, cfg =
    setup
      "shared int g = 1; func main() { var x = 0; var y = x + g; if (y > 0) { x = 1; } print(x); }"
      "main"
  in
  let ue = Live.upward_exposed p cfg in
  let at_entry = ue.Live.at_entry in
  let g = vid_of p "g" (-1) in
  let x = vid_of p "x" f.fid in
  Alcotest.(check bool) "g upward exposed" true (Varset.mem g at_entry);
  (* x is written before any read on every path *)
  Alcotest.(check bool) "x covered by write" false (Varset.mem x at_entry)

let test_upward_exposed_conditional_write () =
  let p, f, cfg =
    setup
      "func main() { var x = 0; var c = 0; if (c > 0) { x = 1; } print(x); }"
      "main"
  in
  ignore f;
  let ue = Live.upward_exposed p cfg in
  (* both x and c are definitely initialised first: nothing exposed *)
  Alcotest.(check int) "nothing exposed" 0 (Varset.cardinal ue.Live.at_entry)

let test_upward_exposed_param () =
  let p, f, cfg = setup "func f(a, b) { return a; } func main() { }" "f" in
  let ue = Live.upward_exposed p cfg in
  let a = vid_of p "a" f.fid in
  let b = vid_of p "b" f.fid in
  Alcotest.(check bool) "used param exposed" true (Varset.mem a ue.Live.at_entry);
  Alcotest.(check bool) "unused param not exposed" false
    (Varset.mem b ue.Live.at_entry)

let test_liveness_globals_at_exit () =
  let p, _f, cfg =
    setup "shared int g = 0; func main() { g = 1; var x = 2; print(x); }" "main"
  in
  let live = Live.liveness p cfg in
  let ue = Live.upward_exposed p cfg in
  let g = vid_of p "g" (-1) in
  (* liveness keeps globals alive through EXIT (they outlive the call),
     so g is live after its write; upward-exposure ignores EXIT *)
  Alcotest.(check bool) "g live before print" true
    (Bitset.mem live.Live.live_in.(cfg.node_of_sid.(2)) g);
  Alcotest.(check bool) "g dead before its own write" false
    (Bitset.mem live.Live.live_in.(cfg.node_of_sid.(0)) g);
  Alcotest.(check bool) "g not upward exposed" false (Varset.mem g ue.Live.at_entry)

let suite =
  ( "dataflow",
    [
      Alcotest.test_case "reaching: straight line" `Quick test_reaching_straightline;
      Alcotest.test_case "reaching: branch merge" `Quick test_reaching_branch_merge;
      Alcotest.test_case "reaching: loop" `Quick test_reaching_loop;
      Alcotest.test_case "reaching: entry defines params" `Quick test_entry_defines;
      Alcotest.test_case "reaching: array writes accumulate" `Quick
        test_array_defs_accumulate;
      Alcotest.test_case "reaching: call MOD" `Quick test_call_mod_defs;
      Alcotest.test_case "upward exposed basics" `Quick test_upward_exposed;
      Alcotest.test_case "upward exposed: definite writes kill" `Quick
        test_upward_exposed_conditional_write;
      Alcotest.test_case "upward exposed: params" `Quick test_upward_exposed_param;
      Alcotest.test_case "liveness vs upward-exposure at exit" `Quick
        test_liveness_globals_at_exit;
    ] )
