(* The emulation package: replay fidelity. This is the paper's central
   correctness claim — re-executing one e-block from its prelog
   regenerates exactly the events of the original execution, for
   parallel programs, with nested e-blocks skipped via postlogs. *)

let replay_matches ?sched src =
  let eb, _halt, log, tr, _m = Util.run_instrumented ?sched src in
  Util.check_replay_equivalence eb log tr

let fixed name ?sched src =
  Alcotest.test_case name `Quick (fun () ->
      let n = replay_matches ?sched src in
      Alcotest.(check bool) "checked at least one interval" true (n >= 1))

let test_inlined_leaves_replayed () =
  (* with inlining, callee events appear inside the caller's replay *)
  let src = Workloads.deep_calls ~depth:4 in
  let eb, _h, log, tr, _m =
    Util.run_instrumented ~policy:{ Analysis.Eblock.leaf_inline_max_stmts = 3; loop_block_min_body = 0 } src
  in
  let n = Util.check_replay_equivalence eb log tr in
  (* f0 is inlined: fewer intervals than functions *)
  Alcotest.(check bool) "fewer intervals" true
    (n < Array.length (Trace.Log.intervals log ~pid:0) + 1
    || n = Array.length (Trace.Log.intervals log ~pid:0));
  Alcotest.(check int) "f0 inlined away" 4
    (Array.length (Trace.Log.intervals log ~pid:0))

let test_fault_reproduced () =
  let eb, halt, log, _tr, _m = Util.run_instrumented Workloads.buggy_min in
  (match halt with
  | Runtime.Machine.Fault { msg; _ } ->
    Alcotest.(check bool) "assert fault" true (Util.contains ~sub:"assert" msg)
  | h -> Alcotest.failf "expected fault, got %s" (Util.halt_name h));
  let ivs = Trace.Log.intervals log ~pid:0 in
  let open_iv =
    Array.to_list ivs |> List.find (fun iv -> iv.Trace.Log.iv_seq_end = None)
  in
  let o = Ppd.Emulator.replay eb log ~interval:open_iv in
  match o.Ppd.Emulator.fault with
  | Some msg ->
    Alcotest.(check bool) "same fault" true (Util.contains ~sub:"assert" msg)
  | None -> Alcotest.fail "replay should reproduce the fault"

let test_output_regenerated () =
  let src = Workloads.foo3 in
  let eb, _h, log, _tr, m = Util.run_instrumented src in
  let ivs = Trace.Log.intervals log ~pid:0 in
  let root =
    Array.to_list ivs |> List.find (fun iv -> iv.Trace.Log.iv_parent = None)
  in
  let o = Ppd.Emulator.replay eb log ~interval:root in
  (* foo3's prints happen in main's block *)
  Alcotest.(check string) "prints regenerated" (Runtime.Machine.output m)
    o.Ppd.Emulator.output

let test_tampered_log_detected () =
  (* §5.5: with invalid log entries, replay must not silently succeed —
     corrupt a recv value and watch the validation trip on a later
     event or produce different events *)
  let eb, _h, log, tr, _m = Util.run_instrumented Workloads.fig61 in
  let tampered_entries =
    Array.map
      (fun entries ->
        Array.map
          (fun e ->
            match e with
            | Trace.Log.Sync
                {
                  sid;
                  seq;
                  step_at;
                  data = Trace.Log.S_kind (Runtime.Event.K_recv { chan; value; src });
                } ->
              Trace.Log.Sync
                {
                  sid;
                  seq;
                  step_at;
                  data =
                    Trace.Log.S_kind
                      (Runtime.Event.K_recv { chan; value = value + 1000; src });
                }
            | e -> e)
          entries)
      log.Trace.Log.entries
  in
  let tampered = { log with Trace.Log.entries = tampered_entries } in
  (* any failure signal counts: a Replay_mismatch or divergent events *)
  let detected =
    match Util.check_replay_equivalence eb tampered tr with
    | _ -> false
    | exception _ -> true
  in
  Alcotest.(check bool) "tampering detected" true detected

let random_sequential =
  Util.qtest ~count:40 "random sequential programs replay exactly"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> replay_matches (Gen.sequential seed) >= 1)

let random_parallel =
  Util.qtest ~count:40 "random race-free parallel programs replay exactly"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      replay_matches
        ~sched:(Runtime.Sched.Random_seed sseed)
        (Gen.parallel ~protect:`Always seed)
      >= 1)

let random_parallel_inlined =
  Util.qtest ~count:20 "replay fidelity survives leaf inlining"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let src = Gen.sequential seed in
      let eb, _h, log, tr, _m =
        Util.run_instrumented
          ~policy:{ Analysis.Eblock.leaf_inline_max_stmts = 8; loop_block_min_body = 0 } src
      in
      Util.check_replay_equivalence eb log tr >= 1)

let random_large_programs =
  Util.qtest ~count:10 "large random programs replay exactly"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let src = Gen.sequential ~nfuncs:6 ~budget:20 seed in
      let eb, _h, log, tr, _m =
        Util.run_instrumented ~sched:(Runtime.Sched.Random_seed sseed) src
      in
      Util.check_replay_equivalence eb log tr >= 1)

let suite =
  ( "emulator",
    [
      fixed "fig41" Workloads.fig41;
      fixed "foo3" Workloads.foo3;
      fixed "fig61 (rendezvous)" Workloads.fig61;
      fixed "racy bank under RR" Workloads.racy_bank;
      fixed "fixed bank" Workloads.fixed_bank;
      fixed "counter with mutex" (Workloads.counter ~workers:3 ~incs:6 ~mutex:true);
      fixed "producer/consumer bounded" (Workloads.producer_consumer ~items:12 ~cap:3);
      fixed "producer/consumer rendezvous"
        (Workloads.producer_consumer ~items:8 ~cap:0);
      fixed "token ring" (Workloads.token_ring ~procs:4 ~rounds:2);
      fixed "deep calls (nested skipping)" (Workloads.deep_calls ~depth:8);
      fixed "fib (recursive nesting)" (Workloads.fib 8);
      fixed "matmul (loops + arrays)" (Workloads.matmul 5);
      fixed "branchy" (Workloads.branchy ~rounds:20);
      fixed "random seed schedule" ~sched:(Runtime.Sched.Random_seed 1234)
        (Workloads.token_ring ~procs:3 ~rounds:3);
      Alcotest.test_case "leaf inlining" `Quick test_inlined_leaves_replayed;
      Alcotest.test_case "fault reproduced" `Quick test_fault_reproduced;
      Alcotest.test_case "output regenerated" `Quick test_output_regenerated;
      Alcotest.test_case "tampered log detected" `Quick test_tampered_log_detected;
      random_sequential;
      random_parallel;
      random_parallel_inlined;
      random_large_programs;
      fixed "rpc rendezvous" Workloads.rpc;
    ] )
