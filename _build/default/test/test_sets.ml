(* Bitset and Varset: unit behaviour plus the agreement between the
   bitmask and sorted-list representations (the §7 ablation pair). *)

open Analysis

let test_bitset_basics () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check (list int)) "elements" [ 0; 63; 64; 99 ] (Bitset.elements s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check bool) "kept" true (Bitset.mem s 64)

let test_bitset_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "subset" true (Bitset.subset (Bitset.of_list 10 [ 1; 3 ]) a);
  Alcotest.(check bool) "not subset" false (Bitset.subset b a);
  Alcotest.(check bool) "disjoint" true
    (Bitset.disjoint a (Bitset.of_list 10 [ 5; 6 ]));
  let dst = Bitset.copy a in
  Alcotest.(check bool) "union_into changes" true (Bitset.union_into ~dst b);
  Alcotest.(check bool) "union_into stable" false (Bitset.union_into ~dst b)

let test_bitset_bounds () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "oob add" (Invalid_argument "Bitset: index 4 out of universe 4")
    (fun () -> Bitset.add s 4);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of universe 4")
    (fun () -> Bitset.mem s (-1) |> ignore)

(* Random small sets as (universe, elements). *)
let set_gen =
  QCheck2.Gen.(
    let* n = int_range 1 80 in
    let* xs = list_size (int_range 0 30) (int_range 0 (n - 1)) in
    let* ys = list_size (int_range 0 30) (int_range 0 (n - 1)) in
    return (n, xs, ys))

let agree name op_bits op_lists =
  Util.qtest ~count:200 name set_gen (fun (n, xs, ys) ->
      let ba = Varset.Bits.of_list n xs and bb = Varset.Bits.of_list n ys in
      let la = Varset.Lists.of_list n xs and lb = Varset.Lists.of_list n ys in
      Varset.Bits.elements (op_bits ba bb) = Varset.Lists.elements (op_lists la lb))

let agree_bool name op_bits op_lists =
  Util.qtest ~count:200 name set_gen (fun (n, xs, ys) ->
      let ba = Varset.Bits.of_list n xs and bb = Varset.Bits.of_list n ys in
      let la = Varset.Lists.of_list n xs and lb = Varset.Lists.of_list n ys in
      op_bits ba bb = op_lists la lb)

let prop_union_commutes =
  Util.qtest ~count:200 "bitset union commutes" set_gen (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_diff_inter =
  Util.qtest ~count:200 "a = (a\\b) ∪ (a∩b)" set_gen (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      Bitset.equal a (Bitset.union (Bitset.diff a b) (Bitset.inter a b)))

let suite =
  ( "sets",
    [
      Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
      Alcotest.test_case "bitset ops" `Quick test_bitset_ops;
      Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
      agree "bits/lists union agree" Varset.Bits.union Varset.Lists.union;
      agree "bits/lists inter agree" Varset.Bits.inter Varset.Lists.inter;
      agree "bits/lists diff agree" Varset.Bits.diff Varset.Lists.diff;
      agree_bool "bits/lists subset agree" Varset.Bits.subset Varset.Lists.subset;
      agree_bool "bits/lists disjoint agree" Varset.Bits.disjoint Varset.Lists.disjoint;
      agree_bool "bits/lists equal agree" Varset.Bits.equal Varset.Lists.equal;
      prop_union_commutes;
      prop_diff_inter;
    ] )
