(* Shared helpers for the test suites. *)

let compile = Lang.Compile.compile

(* naive substring test, avoiding extra dependencies *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let compile_err src =
  match Lang.Compile.compile_result src with
  | Ok _ -> None
  | Error (_, msg) -> Some msg

(* Run a program bare and return (halt, output). *)
let run ?(sched = Runtime.Sched.default) ?(max_steps = 200_000) src =
  let m = Runtime.Machine.create ~sched ~max_steps (compile src) in
  let halt = Runtime.Machine.run m in
  (halt, Runtime.Machine.output m)

let halt_name = function
  | Runtime.Machine.Finished -> "finished"
  | Runtime.Machine.Deadlock _ -> "deadlock"
  | Runtime.Machine.Fault { msg; _ } -> "fault: " ^ msg
  | Runtime.Machine.Breakpoint { sid; _ } ->
    Printf.sprintf "breakpoint at s%d" sid
  | Runtime.Machine.Out_of_fuel -> "out of fuel"

let run_output ?sched src =
  let halt, out = run ?sched src in
  (match halt with
  | Runtime.Machine.Finished -> ()
  | _ -> Alcotest.failf "expected normal completion, got: %s" (halt_name halt));
  out

(* Run with logger + full trace attached. *)
let run_instrumented ?(sched = Runtime.Sched.default) ?(max_steps = 200_000)
    ?policy src =
  let prog = compile src in
  let eb = Analysis.Eblock.analyze ?policy prog in
  let logger = Trace.Logger.create eb in
  let ft = Trace.Full_trace.create () in
  let hooks =
    Runtime.Hooks.both (Trace.Logger.factory logger) (Trace.Full_trace.factory ft)
  in
  let m = Runtime.Machine.create ~sched ~max_steps ~hooks prog in
  let halt = Runtime.Machine.run m in
  (eb, halt, Trace.Logger.finish logger, Trace.Full_trace.finish ft, m)

let event_str ev = Format.asprintf "%a" Runtime.Event.pp ev

(* Replay equivalence modulo prelog minimality: a parameter that is
   never read before being overwritten is (correctly) absent from the
   prelog, so the replayed E_enter/E_proc_start binds show [Vundef]
   where the original had the dead value. Everything else must match
   exactly. *)
let binds_equiv orig replay =
  List.length orig = List.length replay
  && List.for_all2
       (fun ((v : Lang.Prog.var), vo) ((v' : Lang.Prog.var), vr) ->
         v.vid = v'.vid
         && (vr = Runtime.Value.Vundef || Runtime.Value.equal vo vr))
       orig replay

let event_equiv orig replay =
  match (orig, replay) with
  | ( Runtime.Event.E_enter { fid = f1; call_sid = c1; binds = b1 },
      Runtime.Event.E_enter { fid = f2; call_sid = c2; binds = b2 } ) ->
    f1 = f2 && c1 = c2 && binds_equiv b1 b2
  | ( Runtime.Event.E_proc_start { fid = f1; spawn = s1; binds = b1 },
      Runtime.Event.E_proc_start { fid = f2; spawn = s2; binds = b2 } ) ->
    f1 = f2 && s1 = s2 && binds_equiv b1 b2
  | ( Runtime.Event.E_loop_exit { sid = s1; _ },
      Runtime.Event.E_loop_exit { sid = s2; writes } ) ->
    (* the emulator marks skipped loop e-blocks with their postlog
       writes; the original machine event has no payload *)
    s1 = s2 && (writes = None || writes <> None)
  | o, r -> String.equal (event_str o) (event_str r)

(* The replay-equivalence oracle: for every interval of every process,
   the emulated event stream must equal the full trace restricted to the
   interval's seq range minus nested child intervals. Returns the number
   of intervals checked. *)
let check_replay_equivalence ?(expect_mismatch = false) eb log tr =
  let checked = ref 0 in
  (try
     for pid = 0 to log.Trace.Log.nprocs - 1 do
       let ivs = Trace.Log.intervals log ~pid in
       Array.iter
         (fun (iv : Trace.Log.interval) ->
           incr checked;
           let o = Ppd.Emulator.replay eb log ~interval:iv in
           (match o.Ppd.Emulator.fault with
           | Some f when iv.iv_seq_end <> None ->
             Alcotest.failf "replay of closed interval faulted: %s" f
           | _ -> ());
           if o.Ppd.Emulator.postlog_mismatches <> [] then
             Alcotest.failf "postlog mismatch: %s"
               (String.concat "; " o.Ppd.Emulator.postlog_mismatches);
           let nested =
             List.map (fun k -> ivs.(k)) iv.Trace.Log.iv_children
           in
           let in_nested seq =
             List.exists
               (fun (c : Trace.Log.interval) ->
                 seq >= c.iv_seq_start
                 &&
                 match c.iv_seq_end with
                 | Some e -> seq < e
                 | None -> true)
               nested
           in
           let expected =
             Array.to_list tr.Trace.Full_trace.recs
             |> List.filter_map (fun (r : Trace.Full_trace.rec_) ->
                    if
                      r.tr_pid = pid
                      && r.tr_seq >= iv.iv_seq_start
                      && (match iv.iv_seq_end with
                         | Some e -> r.tr_seq < e
                         | None -> true)
                      && not (in_nested r.tr_seq)
                    then Some (r.tr_seq, r.tr_ev)
                    else None)
           in
           let got = o.Ppd.Emulator.events in
           let matches =
             List.length expected = List.length got
             && List.for_all2
                  (fun (s1, e1) (s2, e2) -> s1 = s2 && event_equiv e1 e2)
                  expected got
           in
           if not matches then begin
             let pp_side l =
               String.concat "\n"
                 (List.map
                    (fun (s, e) -> Printf.sprintf "  %d: %s" s (event_str e))
                    l)
             in
             Alcotest.failf
               "replay divergence in p%d interval %d (fid %d)\nexpected:\n%s\ngot:\n%s"
               pid iv.iv_id iv.iv_fid (pp_side expected) (pp_side got)
           end)
         ivs
     done
   with
  | Ppd.Emulator.Replay_mismatch m when expect_mismatch ->
    raise (Ppd.Emulator.Replay_mismatch m));
  !checked

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)
