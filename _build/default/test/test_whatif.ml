(* What-if experiments (§5.7): replay an interval from its restored
   prelog state with perturbed values and observe the divergent
   behaviour, without touching the recorded execution.

   Only values the block actually receives from its prelog (parameters,
   shared globals, values live at the block boundary) are meaningful to
   perturb — a variable the block immediately reassigns just loses the
   override, like in the paper's restoration model. *)

let session ?sched src = Ppd.Session.run ?sched src

let iv_of_func s pid fname =
  let p = Ppd.Session.prog s in
  let ivs = Trace.Log.intervals (Ppd.Session.log s) ~pid in
  (Array.to_list ivs
  |> List.find (fun iv ->
         p.Lang.Prog.funcs.(iv.Trace.Log.iv_fid).fname = fname))
    .Trace.Log.iv_id

let root_iv_id s pid =
  let ivs = Trace.Log.intervals (Ppd.Session.log s) ~pid in
  (Array.to_list ivs
  |> List.find (fun iv -> iv.Trace.Log.iv_parent = None))
    .Trace.Log.iv_id

let return_value o =
  List.fold_left
    (fun acc (_, ev) ->
      match ev with
      | Runtime.Event.E_stmt
          { kind = Runtime.Event.K_return { value = Some v }; _ } ->
        Some v
      | _ -> acc)
    None o.Ppd.Emulator.events

let test_identity_whatif () =
  (* overriding nothing reproduces the original behaviour *)
  let s = session Workloads.foo3 in
  match Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0) ~overrides:[] with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check (option string)) "no fault" None o.Ppd.Emulator.fault;
    Alcotest.(check string) "same output" (Ppd.Session.output s)
      o.Ppd.Emulator.output

let test_perturb_parameter () =
  (* replay min3's own interval with parameter y forced to 2: the
     recomputed minimum becomes 2 instead of 3 *)
  let s = session Workloads.buggy_min in
  let iv = iv_of_func s 0 "min3" in
  (match Ppd.Session.what_if s ~pid:0 ~iv_id:iv ~overrides:[] with
  | Ok o ->
    Alcotest.(check bool) "baseline returns 3" true
      (return_value o = Some (Runtime.Value.Vint 3))
  | Error e -> Alcotest.fail e);
  match Ppd.Session.what_if s ~pid:0 ~iv_id:iv ~overrides:[ ("y", 2) ] with
  | Ok o ->
    Alcotest.(check bool) "what-if returns 2" true
      (return_value o = Some (Runtime.Value.Vint 2))
  | Error e -> Alcotest.fail e

let branchy_shared_src =
  {|
  shared int a0 = 1;

  func subd(a, b, x) {
    return a * b - x;
  }

  func main() {
    var a = a0;
    var b = 2;
    var c = 3;
    var d = subd(a, b, a + b + c);
    var sq = 0;
    if (d > 0) {
      sq = d;
    } else {
      sq = -d;
    }
    print(sq);
  }
  |}

let test_whatif_changes_control_flow () =
  (* originally a0 = 1: d = 1*2-6 = -4, else branch, prints 4. Forcing
     a0 = 50: d = 100-55 = 45 > 0, then branch, prints 45 — and the
     nested subd call is genuinely re-executed with the new arguments *)
  let s = session branchy_shared_src in
  Alcotest.(check string) "original output" "4\n" (Ppd.Session.output s);
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("a0", 50) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    Alcotest.(check (option string)) "no fault" None o.Ppd.Emulator.fault;
    Alcotest.(check string) "then branch output" "45\n" o.Ppd.Emulator.output;
    let pred_true =
      List.exists
        (fun (_, ev) ->
          match ev with
          | Runtime.Event.E_stmt { kind = Runtime.Event.K_pred true; _ } -> true
          | _ -> false)
        o.Ppd.Emulator.events
    in
    Alcotest.(check bool) "then branch taken" true pred_true

let test_whatif_shared_override () =
  let src =
    {|
    shared int limit = 10;
    func main() {
      var i = 0;
      var n = 0;
      while (i < limit) {
        n = n + i;
        i = i + 1;
      }
      print(n);
    }
    |}
  in
  let s = session src in
  Alcotest.(check string) "original sum" "45\n" (Ppd.Session.output s);
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("limit", 3) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o -> Alcotest.(check string) "what-if sum" "3\n" o.Ppd.Emulator.output

let sync_branch_src =
  {|
  shared int gate = -1;
  chan c;
  func main() {
    var x = gate;
    if (x > 0) {
      send(c, x);
      var y = 0;
      recv(c, y);
      print(y);
    } else {
      print(x);
    }
  }
  |}

let test_whatif_away_from_sync () =
  (* the original took the sync-free branch; a perturbation that stays
     on sync-free paths replays fully *)
  let s = session sync_branch_src in
  Alcotest.(check string) "original" "-1\n" (Ppd.Session.output s);
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("gate", -5) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o -> Alcotest.(check string) "else output" "-5\n" o.Ppd.Emulator.output

let test_whatif_sync_divergence_detected () =
  (* perturbing the gate makes the replay reach a send the original
     never executed; the outcome reports the divergence instead of
     fabricating synchronization *)
  let s = session sync_branch_src in
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("gate", 5) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o -> (
    match o.Ppd.Emulator.fault with
    | Some msg ->
      Alcotest.(check bool) "explains divergence" true
        (Util.contains ~sub:"diverged" msg)
    | None -> Alcotest.fail "expected a divergence fault")

let test_whatif_fault_injection () =
  (* driving a shared divisor to zero reproduces a crash that never
     happened — the experiment in the other direction *)
  let src =
    {|
    shared int divisor = 4;
    func main() {
      var q = 100 / divisor;
      print(q);
    }
    |}
  in
  let s = session src in
  Alcotest.(check string) "original" "25\n" (Ppd.Session.output s);
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("divisor", 0) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o -> (
    match o.Ppd.Emulator.fault with
    | Some msg ->
      Alcotest.(check bool) "division fault" true
        (Util.contains ~sub:"division" msg)
    | None -> Alcotest.fail "expected an injected fault")

let test_unknown_variable () =
  let s = session Workloads.foo3 in
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:(root_iv_id s 0)
      ~overrides:[ ("nonexistent", 1) ]
  with
  | Error e ->
    Alcotest.(check bool) "mentions the name" true
      (Util.contains ~sub:"nonexistent" e)
  | Ok _ -> Alcotest.fail "expected an error"

let test_bad_interval () =
  let s = session Workloads.foo3 in
  match Ppd.Session.what_if s ~pid:0 ~iv_id:99 ~overrides:[] with
  | Error e ->
    Alcotest.(check bool) "mentions the interval" true (Util.contains ~sub:"99" e)
  | Ok _ -> Alcotest.fail "expected an error"

(* The strongest identity property: a what-if replay with no overrides
   regenerates the root interval's complete event stream — including
   nested blocks, which what-if re-executes rather than skips — exactly
   as the full trace recorded it. *)
let whatif_identity_prop =
  Util.qtest ~count:30 "what-if identity = full trace (random programs)"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let src = Gen.sequential seed in
      let eb, _h, log, tr, _m = Util.run_instrumented src in
      let ivs = Trace.Log.intervals log ~pid:0 in
      let root =
        Array.to_list ivs
        |> List.find (fun iv -> iv.Trace.Log.iv_parent = None)
      in
      let o =
        Ppd.Emulator.replay ~validate:false eb log ~interval:root
      in
      let expected =
        Array.to_list tr.Trace.Full_trace.recs
        |> List.filter_map (fun (r : Trace.Full_trace.rec_) ->
               if
                 r.tr_pid = 0
                 && r.tr_seq >= root.Trace.Log.iv_seq_start
                 && (match root.Trace.Log.iv_seq_end with
                    | Some e -> r.tr_seq < e
                    | None -> true)
               then Some (r.tr_seq, r.tr_ev)
               else None)
      in
      List.length expected = List.length o.Ppd.Emulator.events
      && List.for_all2
           (fun (s1, e1) (s2, e2) -> s1 = s2 && Util.event_equiv e1 e2)
           expected o.Ppd.Emulator.events)

let suite =
  ( "whatif",
    [
      Alcotest.test_case "identity" `Quick test_identity_whatif;
      Alcotest.test_case "perturb a parameter" `Quick test_perturb_parameter;
      Alcotest.test_case "control flow changes" `Quick
        test_whatif_changes_control_flow;
      Alcotest.test_case "shared override" `Quick test_whatif_shared_override;
      Alcotest.test_case "sync-free perturbation" `Quick
        test_whatif_away_from_sync;
      Alcotest.test_case "sync divergence" `Quick
        test_whatif_sync_divergence_detected;
      Alcotest.test_case "fault injection" `Quick test_whatif_fault_injection;
      Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
      Alcotest.test_case "bad interval" `Quick test_bad_interval;
      whatif_identity_prop;
    ] )
