(* The interpreter's expression evaluator: values AND the recorded read
   sets (their order and short-circuit behaviour feed the dynamic
   dependence graph, so they are load-bearing). *)

module I = Runtime.Interp
module P = Lang.Prog

(* Evaluate [expr] in a tiny program where locals a, b, c = 10, 0, -3
   and shared g = 7. *)
let eval_in expr_src =
  let src =
    Printf.sprintf
      "shared int g = 7;\nfunc main() {\n  var a = 10;\n  var b = 0;\n  var c = -3;\n  var arr[3];\n  arr[1] = 5;\n  print(%s);\n}\n"
      expr_src
  in
  let p = Util.compile src in
  (* run the machine up to the print and capture its event *)
  let acc = ref [] in
  let m = Runtime.Machine.create ~hooks:(Runtime.Hooks.collect acc) p in
  (match Runtime.Machine.run m with
  | Runtime.Machine.Finished -> ()
  | h -> Alcotest.failf "eval run failed: %s" (Util.halt_name h));
  let print_event =
    List.rev !acc
    |> List.find_map (fun (_, _, ev) ->
           match ev with
           | Runtime.Event.E_stmt
               { kind = Runtime.Event.K_print { value }; reads; _ } ->
             Some (value, reads)
           | _ -> None)
  in
  match print_event with
  | Some (value, reads) ->
    ( value,
      List.map
        (fun (rw : Runtime.Event.rw) ->
          (rw.var.P.vname, Runtime.Value.to_string rw.value))
        reads )
  | None -> Alcotest.fail "no print event"

let check_eval name expr expected_value expected_reads =
  Alcotest.test_case name `Quick (fun () ->
      let v, reads = eval_in expr in
      Alcotest.(check string) (name ^ " value") expected_value
        (Runtime.Value.to_string v);
      Alcotest.(check (list (pair string string))) (name ^ " reads")
        expected_reads reads)

let suite =
  ( "interp-eval",
    [
      check_eval "literal" "42" "42" [];
      check_eval "variable" "a" "10" [ ("a", "10") ];
      check_eval "shared" "g" "7" [ ("g", "7") ];
      check_eval "left-to-right reads" "a - c" "13" [ ("a", "10"); ("c", "-3") ];
      check_eval "nested reads in order" "(a + g) * (c + 1)" "-34"
        [ ("a", "10"); ("g", "7"); ("c", "-3") ];
      check_eval "repeat reads repeat" "a + a" "20" [ ("a", "10"); ("a", "10") ];
      check_eval "unary" "-(a)" "-10" [ ("a", "10") ];
      check_eval "division truncates" "a / c" "-3" [ ("a", "10"); ("c", "-3") ];
      check_eval "mod sign" "c % 2" "-1" [ ("c", "-3") ];
      check_eval "array element" "arr[1]" "5" [ ("arr", "5") ];
      check_eval "index expression reads first" "arr[b + 1]" "5"
        [ ("b", "0"); ("arr", "5") ];
      (* short-circuit: the unevaluated side leaves no reads *)
      check_eval "and short-circuits" "b > 0 && a / b > 0" "0" [ ("b", "0") ];
      check_eval "and evaluates both when needed" "a > 0 && c < 0" "1"
        [ ("a", "10"); ("c", "-3") ];
      check_eval "or short-circuits" "a > 0 || a / b > 0" "1" [ ("a", "10") ];
      check_eval "or falls through" "b > 0 || c < 0" "1"
        [ ("b", "0"); ("c", "-3") ];
      check_eval "comparison chain via parens" "(a > b) == (c < b)" "1"
        [ ("a", "10"); ("b", "0"); ("c", "-3"); ("b", "0") ];
    ] )
