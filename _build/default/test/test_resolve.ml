open Lang

let resolve_err name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Util.compile_err src with
      | Some msg ->
        if not (Util.contains ~sub:fragment msg) then
          Alcotest.failf "error %S does not mention %S" msg fragment
      | None -> Alcotest.fail "expected a resolution error")

let resolve_ok name src =
  Alcotest.test_case name `Quick (fun () -> ignore (Util.compile src))

let test_sids_preorder () =
  let p = Util.compile Workloads.fig41 in
  Array.iteri
    (fun i (s : Prog.stmt) -> Alcotest.(check int) "sid" i s.sid)
    p.stmts;
  (* every statement is attributed to a function *)
  Array.iter (fun fid -> Alcotest.(check bool) "fid" true (fid >= 0)) p.stmt_fid

let test_vids_unique () =
  let p = Util.compile Workloads.racy_bank in
  Array.iteri (fun i (v : Prog.var) -> Alcotest.(check int) "vid" i v.vid) p.vars;
  (* globals come first and carry Global scope *)
  Array.iteri
    (fun slot (v : Prog.var) ->
      match v.vscope with
      | Prog.Global s -> Alcotest.(check int) "slot" slot s
      | Prog.Local _ -> Alcotest.fail "global with local scope")
    p.globals

let test_for_desugar () =
  let p =
    Util.compile
      "func main() { var i = 0; var s = 0; for (i = 0; i < 3; i = i + 1) { s = s + i; } print(s); }"
  in
  (* no Sfor remains; a while with the step appended exists *)
  let found = ref false in
  Array.iter
    (fun (s : Prog.stmt) ->
      match s.desc with
      | Prog.Swhile (_, body) ->
        found := true;
        (match List.rev body with
        | { desc = Prog.Sassign (Prog.Lvar v, _); _ } :: _ ->
          Alcotest.(check string) "step var" "i" v.vname
        | _ -> Alcotest.fail "step statement not last in loop body")
      | _ -> ())
    p.stmts;
  Alcotest.(check bool) "while exists" true !found

let test_decl_init_desugar () =
  let p = Util.compile "func main() { var x = 1 + 2; print(x); }" in
  match p.funcs.(p.main_fid).body with
  | [ { desc = Prog.Sassign (Prog.Lvar v, _); _ }; _ ] ->
    Alcotest.(check string) "decl name" "x" v.vname
  | _ -> Alcotest.fail "decl with init should become an assignment"

let test_returns_value_flag () =
  let p =
    Util.compile "func f() { return 1; } func g() { return; } func main() { var x = f(); print(x); g(); }"
  in
  let f = Option.get (Prog.find_func p "f") in
  let g = Option.get (Prog.find_func p "g") in
  Alcotest.(check bool) "f returns" true f.returns_value;
  Alcotest.(check bool) "g void" false g.returns_value

let suite =
  ( "resolve",
    [
      Alcotest.test_case "sids are pre-order" `Quick test_sids_preorder;
      Alcotest.test_case "vids are dense" `Quick test_vids_unique;
      Alcotest.test_case "for desugars to while" `Quick test_for_desugar;
      Alcotest.test_case "var x = e desugars" `Quick test_decl_init_desugar;
      Alcotest.test_case "returns_value" `Quick test_returns_value_flag;
      resolve_ok "block scoping allows reuse after block"
        "func main() { if (true) { var x = 1; print(x); } var y = 2; print(y); }";
      resolve_err "unknown variable" "func main() { print(nope); }" "unknown variable";
      resolve_err "use before declaration" "func main() { x = 1; var x = 2; }"
        "unknown variable";
      resolve_err "out-of-scope after block"
        "func main() { if (true) { var x = 1; } print(x); }" "unknown variable";
      resolve_err "duplicate local" "func main() { var x = 1; var x = 2; }"
        "duplicate local";
      resolve_err "self-referential init" "func main() { var x = x; }"
        "unknown variable";
      resolve_err "shadowing a global"
        "shared int g = 0; func main() { var g = 1; }" "shadows";
      resolve_err "duplicate top-level" "sem a = 1; chan a;" "already declared";
      resolve_err "duplicate parameter" "func f(a, a) { return a; } func main() { }"
        "duplicate parameter";
      resolve_err "missing main" "func f() { return 1; }" "no 'main'";
      resolve_err "main with params" "func main(x) { print(x); }"
        "must take no parameters";
      resolve_err "arity mismatch" "func f(a) { return a; } func main() { f(1, 2); }"
        "expects 1 argument";
      resolve_err "call of non-function" "shared int g = 0; func main() { g(1); }"
        "not a function";
      resolve_err "P on non-semaphore" "chan c; func main() { P(c); }"
        "not a semaphore";
      resolve_err "send on semaphore" "sem s = 1; func main() { send(s, 1); }"
        "not a channel";
      resolve_err "variable as function" "func main() { var x = 1; x(2); }"
        "is a variable, not a function";
      resolve_err "semaphore as variable" "sem s = 1; func main() { print(s); }"
        "not a variable";
      resolve_err "assigning void call"
        "func g() { return; } func main() { var x = g(); }"
        "does not return a value";
      resolve_err "mixed returns" "func f(c) { if (c > 0) { return 1; } return; } func main() { }"
        "mixes";
      resolve_err "non-constant global" "shared int g = 1 + x; func main() { }"
        "constant";
      resolve_err "zero-length array" "func main() { var a[0]; }" "positive length";
      resolve_err "negative semaphore" "sem s = -1; func main() { }"
        "expected integer literal";
    ] )
