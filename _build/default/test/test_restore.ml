(* State restoration from postlogs (§5.7). *)

let test_final_agrees_with_machine () =
  let src = Workloads.counter ~workers:3 ~incs:7 ~mutex:true in
  let eb, _h, log, _tr, m = Util.run_instrumented src in
  let p = eb.Analysis.Eblock.prog in
  let snap = Ppd.Restore.final p log in
  Array.iteri
    (fun slot v ->
      Alcotest.(check bool)
        (Printf.sprintf "global %d" slot)
        true
        (Runtime.Value.equal v (Runtime.Machine.read_global m slot)))
    snap.Ppd.Restore.globals

let test_monotone_progress () =
  (* with a mutex-protected counter, restored values at successive
     boundaries never decrease *)
  let src = Workloads.counter ~workers:2 ~incs:5 ~mutex:true in
  let eb, _h, log, _tr, _m = Util.run_instrumented src in
  let p = eb.Analysis.Eblock.prog in
  let steps = List.init 30 (fun i -> i * 10) in
  let _ =
    List.fold_left
      (fun prev step ->
        let snap = Ppd.Restore.shared_at p log ~step in
        let v =
          match snap.Ppd.Restore.globals.(0) with
          | Runtime.Value.Vint n -> n
          | _ -> Alcotest.fail "int expected"
        in
        Alcotest.(check bool) "monotone" true (v >= prev);
        v)
      (-1) steps
  in
  ()

let test_initial_state () =
  let src = "shared int g = 42; func main() { g = 1; }" in
  let eb, _h, log, _tr, _m = Util.run_instrumented src in
  let p = eb.Analysis.Eblock.prog in
  (* before anything postlogs, the initial value stands *)
  let snap = Ppd.Restore.shared_at p log ~step:0 in
  Alcotest.(check bool) "initial value" true
    (Runtime.Value.equal snap.Ppd.Restore.globals.(0) (Runtime.Value.Vint 42))

let test_arrays_restored () =
  let src =
    "shared int a[3]; func main() { a[0] = 1; a[1] = 2; a[2] = a[0] + a[1]; }"
  in
  let eb, _h, log, _tr, m = Util.run_instrumented src in
  let p = eb.Analysis.Eblock.prog in
  let snap = Ppd.Restore.final p log in
  Alcotest.(check bool) "array contents" true
    (Runtime.Value.equal snap.Ppd.Restore.globals.(0)
       (Runtime.Machine.read_global m 0))

let test_interval_end_and_locals () =
  let src = Workloads.fig61 in
  let eb, _h, log, _tr, _m = Util.run_instrumented src in
  let p = eb.Analysis.Eblock.prog in
  let ivs = Trace.Log.intervals log ~pid:1 in
  let iv = ivs.(0) in
  let snap = Ppd.Restore.at_interval_end p log iv in
  Alcotest.(check bool) "snapshot exists" true (snap.Ppd.Restore.at_step >= 0);
  let locals = Ppd.Restore.locals_at_interval_end p log iv in
  (* p2's x received 41 *)
  Alcotest.(check bool) "x = 41 restored" true
    (List.exists
       (fun ((v : Lang.Prog.var), value) ->
         v.vname = "x" && Runtime.Value.equal value (Runtime.Value.Vint 41))
       locals)

let restore_equals_machine_prop =
  Util.qtest ~count:30 "restoration agrees with the machine (random)"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let src = Gen.parallel ~protect:`Always seed in
      let eb, _h, log, _tr, m =
        Util.run_instrumented ~sched:(Runtime.Sched.Random_seed sseed) src
      in
      let p = eb.Analysis.Eblock.prog in
      let snap = Ppd.Restore.final p log in
      let ok = ref true in
      Array.iteri
        (fun slot v ->
          if not (Runtime.Value.equal v (Runtime.Machine.read_global m slot))
          then ok := false)
        snap.Ppd.Restore.globals;
      !ok)

let suite =
  ( "restore",
    [
      Alcotest.test_case "final state agrees" `Quick test_final_agrees_with_machine;
      Alcotest.test_case "monotone counter" `Quick test_monotone_progress;
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "arrays" `Quick test_arrays_restored;
      Alcotest.test_case "interval end + locals" `Quick test_interval_end_and_locals;
      restore_equals_machine_prop;
    ] )
