open Lang

let toks src = List.map fst (Lexer.tokenize src)

let check_toks name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string))
        name
        (expected @ [ "end of input" ])
        (List.map Token.describe (toks src)))

let lex_error name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Lexer.tokenize src with
      | exception Diag.Error (_, msg) ->
        if not (Util.contains ~sub:fragment msg) then
          Alcotest.failf "error %S does not mention %S" msg fragment
      | _ -> Alcotest.fail "expected a lexer error")

let test_positions () =
  let toks = Lexer.tokenize "x =\n  42;" in
  match toks with
  | [ (Token.IDENT "x", l1); (Token.ASSIGN, l2); (Token.INT 42, l3);
      (Token.SEMI, _); (Token.EOF, _) ] ->
    Alcotest.(check int) "x line" 1 l1.Loc.line;
    Alcotest.(check int) "x col" 1 l1.Loc.col;
    Alcotest.(check int) "= col" 3 l2.Loc.col;
    Alcotest.(check int) "42 line" 2 l3.Loc.line;
    Alcotest.(check int) "42 col" 3 l3.Loc.col
  | _ -> Alcotest.fail "unexpected token stream"

let test_comments () =
  Alcotest.(check int)
    "both comment styles vanish" 3
    (List.length (toks "a // line\n/* block\nmore */ b"))

let test_keywords_vs_idents () =
  match toks "if iff P Px send sends" with
  | [ Token.IF; Token.IDENT "iff"; Token.PSEM; Token.IDENT "Px"; Token.SEND;
      Token.IDENT "sends"; Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "keyword/identifier split wrong"

let test_operators () =
  match toks "<= < == = != ! && ||" with
  | [ Token.LEQ; Token.LT; Token.EQ; Token.ASSIGN; Token.NEQ; Token.BANG;
      Token.ANDAND; Token.OROR; Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "operator lexing wrong"

let suite =
  ( "lexer",
    [
      check_toks "simple program" "func f() { return 1; }"
        [ "func"; "identifier"; "("; ")"; "{"; "return"; "integer literal"; ";"; "}" ];
      check_toks "brackets and commas" "a[1], b[i]"
        [ "identifier"; "["; "integer literal"; "]"; ",";
          "identifier"; "["; "identifier"; "]" ];
      Alcotest.test_case "positions" `Quick test_positions;
      Alcotest.test_case "comments" `Quick test_comments;
      Alcotest.test_case "keywords vs identifiers" `Quick test_keywords_vs_idents;
      Alcotest.test_case "operators" `Quick test_operators;
      lex_error "unterminated comment" "/* oops" "unterminated";
      lex_error "stray character" "a # b" "unexpected character";
      lex_error "lonely ampersand" "a & b" "&&";
      lex_error "lonely pipe" "a | b" "||";
      lex_error "huge literal" "999999999999999999999999" "out of range";
    ] )
