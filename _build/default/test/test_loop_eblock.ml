(* Loop e-blocks (§5.4): loops as units of incremental tracing. *)

module L = Trace.Log

let policy ~loops =
  { Analysis.Eblock.leaf_inline_max_stmts = 0; loop_block_min_body = loops }

(* A loop-heavy single-process program with an error after the loop. *)
let looped_src =
  {|
  shared int bias = 2;
  func main() {
    var acc = 0;
    var i = 0;
    while (i < 10) {
      acc = acc + i * bias;
      i = i + 1;
    }
    var final = acc + 1;
    assert(final == 0);
  }
  |}

let test_policy_detects_loops () =
  let p = Util.compile looped_src in
  let eb = Analysis.Eblock.analyze ~policy:(policy ~loops:3) p in
  let loop_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : Lang.Prog.stmt) ->
        match st.desc with Lang.Prog.Swhile _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  Alcotest.(check bool) "loop is a block" true
    (Analysis.Eblock.is_loop_block eb ~sid:loop_sid);
  match Analysis.Eblock.loop_block_vars eb ~sid:loop_sid with
  | None -> Alcotest.fail "no vars"
  | Some (pre, post) ->
    let names vs = List.map (fun (v : Lang.Prog.var) -> v.vname) vs in
    Alcotest.(check (list string)) "prelog vars" [ "bias"; "acc"; "i" ]
      (names pre);
    Alcotest.(check (list string)) "postlog vars" [ "acc"; "i" ] (names post)

let test_log_and_intervals () =
  let eb, halt, log, _tr, _m =
    Util.run_instrumented ~policy:(policy ~loops:3) looped_src
  in
  (match halt with
  | Runtime.Machine.Fault _ -> ()
  | h -> Alcotest.failf "expected fault, got %s" (Util.halt_name h));
  let prog = eb.Analysis.Eblock.prog in
  let ivs =
    L.intervals ~stmt_fid:(fun sid -> prog.stmt_fid.(sid)) log ~pid:0
  in
  (* main (open, due to the fault) + the loop (closed) *)
  Alcotest.(check int) "two intervals" 2 (Array.length ivs);
  let loop_iv =
    Array.to_list ivs
    |> List.find (fun iv ->
           match iv.L.iv_block with L.Bloop _ -> true | L.Bfunc _ -> false)
  in
  Alcotest.(check bool) "loop closed" true (loop_iv.L.iv_seq_end <> None);
  Alcotest.(check bool) "nested in main" true (loop_iv.L.iv_parent <> None);
  Alcotest.(check int) "enclosing function recorded" prog.main_fid
    loop_iv.L.iv_fid

let test_replay_equivalence_with_loops () =
  List.iter
    (fun src ->
      let eb, _h, log, tr, _m =
        Util.run_instrumented ~policy:(policy ~loops:3) src
      in
      ignore (Util.check_replay_equivalence eb log tr))
    [
      looped_src;
      Workloads.matmul 4;
      Workloads.branchy ~rounds:10;
      Workloads.counter ~workers:2 ~incs:5 ~mutex:true;
      Workloads.producer_consumer ~items:6 ~cap:2;
    ]

let test_parent_skips_loop () =
  (* replaying main must skip the loop region: far fewer steps *)
  let eb, _h, log, _tr, _m =
    Util.run_instrumented ~policy:(policy ~loops:3) looped_src
  in
  let ivs = L.intervals log ~pid:0 in
  let root =
    Array.to_list ivs |> List.find (fun iv -> iv.L.iv_parent = None)
  in
  let o = Ppd.Emulator.replay eb log ~interval:root in
  (* without loop skipping the loop alone costs > 30 steps *)
  Alcotest.(check bool)
    (Printf.sprintf "few steps (%d)" o.Ppd.Emulator.steps)
    true
    (o.Ppd.Emulator.steps < 15);
  (* the skipped loop appears as enter+exit with the postlog writes *)
  let skipped =
    List.exists
      (fun (_, ev) ->
        match ev with
        | Runtime.Event.E_loop_exit { writes = Some ws; _ } ->
          List.exists (fun ((v : Lang.Prog.var), _) -> v.vname = "acc") ws
        | _ -> false)
      o.Ppd.Emulator.events
  in
  Alcotest.(check bool) "loop skipped with writes" true skipped

let test_loop_interval_replays () =
  let eb, _h, log, _tr, _m =
    Util.run_instrumented ~policy:(policy ~loops:3) looped_src
  in
  let ivs = L.intervals log ~pid:0 in
  let loop_iv =
    Array.to_list ivs
    |> List.find (fun iv ->
           match iv.L.iv_block with L.Bloop _ -> true | L.Bfunc _ -> false)
  in
  let o = Ppd.Emulator.replay eb log ~interval:loop_iv in
  Alcotest.(check (option string)) "no fault" None o.Ppd.Emulator.fault;
  Alcotest.(check (list string)) "postlog validated" []
    o.Ppd.Emulator.postlog_mismatches;
  (* 10 iterations: 11 predicate tests + 20 body assignments *)
  let preds =
    List.length
      (List.filter
         (fun (_, ev) ->
           match ev with
           | Runtime.Event.E_stmt { kind = Runtime.Event.K_pred _; _ } -> true
           | _ -> false)
         o.Ppd.Emulator.events)
  in
  Alcotest.(check int) "11 predicate tests" 11 preds

let test_flowback_through_skipped_loop () =
  (* the error depends on acc, which the (collapsed) loop defines; the
     collapsed loop node carries the dependence until expanded *)
  let prog = Util.compile looped_src in
  let eb = Analysis.Eblock.analyze ~policy:(policy ~loops:3) prog in
  let logger = Trace.Logger.create eb in
  let m =
    Runtime.Machine.create ~hooks:(Trace.Logger.factory logger) prog
  in
  ignore (Runtime.Machine.run m);
  let log = Trace.Logger.finish logger in
  let ctl = Ppd.Controller.start eb log in
  let root = Option.get (Ppd.Controller.last_event_node ctl ~pid:0) in
  let g = Ppd.Controller.graph ctl in
  let deps = Ppd.Flowback.dependences ctl root in
  ignore deps;
  (* find the loop node and check it is the definer of acc's chain *)
  let find_kind pred =
    let r = ref None in
    for i = 0 to Ppd.Dyn_graph.nnodes g - 1 do
      if pred (Ppd.Dyn_graph.node g i) then r := Some i
    done;
    !r
  in
  let loop_node =
    find_kind (fun n ->
        match n.Ppd.Dyn_graph.nd_kind with
        | Ppd.Dyn_graph.N_loop _ -> true
        | _ -> false)
  in
  (match loop_node with
  | None -> Alcotest.fail "no loop node in graph"
  | Some ln ->
    let final_assign =
      find_kind (fun n -> n.Ppd.Dyn_graph.nd_label = "final = acc + 1")
    in
    (match final_assign with
    | None -> Alcotest.fail "final assignment missing"
    | Some fa ->
      let from_loop =
        List.exists
          (fun (src, k) ->
            src = ln
            && match k with Ppd.Dyn_graph.Data _ -> true | _ -> false)
          (Ppd.Dyn_graph.preds g fa)
      in
      Alcotest.(check bool) "acc flows from the collapsed loop" true from_loop);
    (* expanding the loop pulls in its iterations *)
    let st0 = (Ppd.Controller.stats ctl).Ppd.Controller.replays in
    (match Ppd.Controller.expand_subgraph ctl ln with
    | Some _ -> ()
    | None -> Alcotest.fail "loop should expand");
    let st1 = (Ppd.Controller.stats ctl).Ppd.Controller.replays in
    Alcotest.(check int) "one more replay" (st0 + 1) st1;
    let iter_assign =
      find_kind (fun n ->
          n.Ppd.Dyn_graph.nd_label = "acc = acc + (i * bias)"
          && n.Ppd.Dyn_graph.nd_owner = Some ln)
    in
    Alcotest.(check bool) "iteration detail owned by loop node" true
      (iter_assign <> None))

let test_return_inside_loop () =
  let src =
    {|
    func find(limit) {
      var i = 0;
      while (i < limit) {
        if (i * i > 20) {
          return i;
        }
        i = i + 1;
      }
      return -1;
    }
    func main() {
      var r = find(100);
      print(r);
    }
    |}
  in
  let eb, halt, log, tr, m =
    Util.run_instrumented ~policy:(policy ~loops:3) src
  in
  (match halt with
  | Runtime.Machine.Finished -> ()
  | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check string) "found 5" "5\n" (Runtime.Machine.output m);
  (* intervals close despite the early return, and replay matches *)
  ignore (Util.check_replay_equivalence eb log tr)

let test_sync_inside_loop_block () =
  (* a loop e-block whose body synchronizes: its interval contains sync
     records; skipping it must jump them, replaying it must consume
     them, and cross-process ordering still holds *)
  let src =
    {|
    shared int total = 0;
    sem m = 1;
    func worker(n) {
      var i = 0;
      while (i < n) {
        P(m);
        total = total + 1;
        V(m);
        i = i + 1;
      }
      return 0;
    }
    func main() {
      var p1 = spawn worker(4);
      var p2 = spawn worker(3);
      join(p1);
      join(p2);
      print(total);
    }
    |}
  in
  let eb, halt, log, tr, m = Util.run_instrumented ~policy:(policy ~loops:3) src in
  (match halt with
  | Runtime.Machine.Finished -> ()
  | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check string) "total" "7
" (Runtime.Machine.output m);
  ignore (Util.check_replay_equivalence eb log tr);
  (* each worker has a loop interval nested in its root *)
  List.iter
    (fun pid ->
      let ivs = L.intervals log ~pid in
      let loops =
        Array.to_list ivs
        |> List.filter (fun iv ->
               match iv.L.iv_block with L.Bloop _ -> true | _ -> false)
      in
      Alcotest.(check int) (Printf.sprintf "p%d loop interval" pid) 1
        (List.length loops))
    [ 1; 2 ];
  (* races: none (mutex-protected), even with loop blocks *)
  let pd = Ppd.Pardyn.of_log eb.Analysis.Eblock.prog log in
  ignore pd

let test_whatif_on_loop_interval () =
  (* §5.7 experiment on a loop e-block: re-run one loop execution with a
     different bound variable state *)
  let src =
    {|
    func main() {
      var n = 5;
      var acc = 0;
      var i = 0;
      while (i < n) {
        acc = acc + i;
        i = i + 1;
      }
      print(acc);
    }
    |}
  in
  let s =
    Ppd.Session.run ~policy:(policy ~loops:3) src
  in
  Alcotest.(check string) "original" "10
" (Ppd.Session.output s);
  let p = Ppd.Session.prog s in
  let ivs =
    Trace.Log.intervals
      ~stmt_fid:(fun sid -> p.Lang.Prog.stmt_fid.(sid))
      (Ppd.Session.log s) ~pid:0
  in
  let loop_iv =
    Array.to_list ivs
    |> List.find (fun iv ->
           match iv.Trace.Log.iv_block with
           | Trace.Log.Bloop _ -> true
           | _ -> false)
  in
  match
    Ppd.Session.what_if s ~pid:0 ~iv_id:loop_iv.Trace.Log.iv_id
      ~overrides:[ ("n", 3) ]
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
    (* fewer iterations: count the true predicates *)
    let trues =
      List.length
        (List.filter
           (fun (_, ev) ->
             match ev with
             | Runtime.Event.E_stmt { kind = Runtime.Event.K_pred true; _ } ->
               true
             | _ -> false)
           o.Ppd.Emulator.events)
    in
    Alcotest.(check int) "three iterations" 3 trues

let random_with_loop_blocks =
  Util.qtest ~count:25 "random programs replay exactly with loop e-blocks"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let eb, _h, log, tr, _m =
        Util.run_instrumented ~policy:(policy ~loops:2) (Gen.sequential seed)
      in
      Util.check_replay_equivalence eb log tr >= 1)

let random_parallel_with_loop_blocks =
  Util.qtest ~count:20 "random parallel programs + loop e-blocks"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let eb, _h, log, tr, _m =
        Util.run_instrumented
          ~sched:(Runtime.Sched.Random_seed sseed)
          ~policy:(policy ~loops:2)
          (Gen.parallel ~protect:`Always seed)
      in
      Util.check_replay_equivalence eb log tr >= 1)

let suite =
  ( "loop-eblocks",
    [
      Alcotest.test_case "policy detects loops" `Quick test_policy_detects_loops;
      Alcotest.test_case "log entries and intervals" `Quick test_log_and_intervals;
      Alcotest.test_case "replay equivalence" `Quick
        test_replay_equivalence_with_loops;
      Alcotest.test_case "parent skips the loop" `Quick test_parent_skips_loop;
      Alcotest.test_case "loop interval replays" `Quick test_loop_interval_replays;
      Alcotest.test_case "flowback through a skipped loop" `Quick
        test_flowback_through_skipped_loop;
      Alcotest.test_case "return inside loop" `Quick test_return_inside_loop;
      Alcotest.test_case "sync inside a loop block" `Quick
        test_sync_inside_loop_block;
      Alcotest.test_case "what-if on a loop interval" `Quick
        test_whatif_on_loop_interval;
      random_with_loop_blocks;
      random_parallel_with_loop_blocks;
    ] )
