(* The dynamic graph, the controller's incremental construction, and
   flowback queries — including the Figure 4.1 golden graph. *)

module DG = Ppd.Dyn_graph

let session ?sched src = Ppd.Session.run ?sched src

let graph_labels g =
  List.init (DG.nnodes g) (fun i -> (DG.node g i).DG.nd_label)

let find_label g label =
  let rec go i =
    if i >= DG.nnodes g then None
    else if (DG.node g i).DG.nd_label = label then Some i
    else go (i + 1)
  in
  go 0

let dep_labels ctl node =
  Ppd.Flowback.dependences ctl node
  |> List.map (fun d ->
         ( (DG.node (Ppd.Controller.graph ctl) d.Ppd.Flowback.d_node).DG.nd_label,
           Format.asprintf "%a"
             (fun ppf -> function
               | DG.Data v -> Format.fprintf ppf "data:%s" v.Lang.Prog.vname
               | DG.Dparam i -> Format.fprintf ppf "param:%d" i
               | DG.Control -> Format.fprintf ppf "ctrl"
               | DG.Sync -> Format.fprintf ppf "sync"
               | DG.Flow -> Format.fprintf ppf "flow")
             d.Ppd.Flowback.d_kind ))
  |> List.sort compare

let test_fig41_graph () =
  let s = session Workloads.fig41 in
  let ctl = Ppd.Session.controller s in
  let root = Option.get (Ppd.Session.error_node s) in
  ignore root;
  let g = Ppd.Controller.graph ctl in
  (* the paper's picture: a=1, b=2, c=3 feed SubD directly (a, b) and
     through the fictional %3 node (a+b+c) *)
  let sub = Option.get (find_label g "d = call#0(a, b, (a + b) + c)") in
  let incoming = DG.preds g sub in
  let data_srcs =
    List.filter_map
      (fun (src, k) ->
        match k with
        | DG.Data v -> Some (v.Lang.Prog.vname, (DG.node g src).DG.nd_label)
        | _ -> None)
      incoming
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "a and b feed SubD directly"
    [ ("a", "a = 1"); ("b", "b = 2") ]
    data_srcs;
  (* the fictional parameter node exists, fed by a, b and c *)
  let fict =
    List.filter_map
      (fun (src, k) -> match k with DG.Dparam 3 -> Some src | _ -> None)
      incoming
  in
  (match fict with
  | [ f ] ->
    let feeds =
      DG.preds g f
      |> List.filter_map (fun (src, k) ->
             match k with
             | DG.Data v -> Some (v.Lang.Prog.vname, (DG.node g src).DG.nd_label)
             | _ -> None)
      |> List.sort compare
    in
    Alcotest.(check (list (pair string string)))
      "%3 fed by a, b, c"
      [ ("a", "a = 1"); ("b", "b = 2"); ("c", "c = 3") ]
      feeds;
    Alcotest.(check bool) "%3 carries the value 6" true
      ((DG.node g f).DG.nd_value = Some (Runtime.Value.Vint 6))
  | l -> Alcotest.failf "expected one fictional node, got %d" (List.length l));
  (* the sub-graph node carries SubD's return value -4 *)
  Alcotest.(check bool) "SubD value" true
    ((DG.node g sub).DG.nd_value = Some (Runtime.Value.Vint (-4)));
  (* s6's node depends on a=1 and on the isqrt call result via sq *)
  let s6 = Option.get (find_label g "a = a + sq") in
  let s6_deps = dep_labels ctl s6 in
  Alcotest.(check bool) "a=1 is a source" true
    (List.mem ("a = 1", "data:a") s6_deps);
  Alcotest.(check bool) "sq call is a source" true
    (List.exists (fun (l, k) -> k = "data:sq" && Util.contains ~sub:"call#1" l) s6_deps)

let test_control_dependence_dynamic () =
  let s = session Workloads.fig41 in
  let ctl = Ppd.Session.controller s in
  ignore (Ppd.Session.error_node s);
  let g = Ppd.Controller.graph ctl in
  (* sq = isqrt(-d) executed in the else branch: control dependent on
     the (d > 0) predicate instance *)
  let sq_call = Option.get (find_label g "sq = call#1(-d)") in
  let ctrl_srcs =
    DG.preds g sq_call
    |> List.filter_map (fun (src, k) ->
           match k with DG.Control -> Some (DG.node g src).DG.nd_label | _ -> None)
  in
  Alcotest.(check (list string)) "governed by the predicate" [ "(d > 0)" ] ctrl_srcs

let test_incremental_building () =
  let s = session Workloads.fig41 in
  let ctl = Ppd.Session.controller s in
  ignore (Ppd.Session.error_node s);
  (* only main's interval was emulated so far *)
  let st0 = Ppd.Controller.stats ctl in
  Alcotest.(check int) "one replay" 1 st0.Ppd.Controller.replays;
  Alcotest.(check int) "three intervals exist" 3 st0.Ppd.Controller.intervals_total;
  (* expanding the SubD sub-graph node replays exactly one more *)
  let g = Ppd.Controller.graph ctl in
  let sub = Option.get (find_label g "d = call#0(a, b, (a + b) + c)") in
  (match Ppd.Controller.expand_subgraph ctl sub with
  | Some _ -> ()
  | None -> Alcotest.fail "expected expansion");
  let st1 = Ppd.Controller.stats ctl in
  Alcotest.(check int) "two replays" 2 st1.Ppd.Controller.replays;
  (* the callee's return node is now inside the graph and owned *)
  let ret = find_label g "return (a * b) - x" in
  Alcotest.(check bool) "callee detail present" true (ret <> None);
  (match ret with
  | Some r ->
    Alcotest.(check bool) "owned by the sub-graph node" true
      ((DG.node g r).DG.nd_owner <> None
      ||
      (* stitched expansion links the call node to the entry *)
      DG.preds g r <> [])
  | None -> ());
  (* expanding again is a no-op *)
  Alcotest.(check bool) "idempotent" true
    (Ppd.Controller.expand_subgraph ctl sub = None)

let test_param_resolution () =
  (* inside an expanded callee, reading a parameter resolves to the
     caller's argument chain *)
  let s = session Workloads.buggy_min in
  let ctl = Ppd.Session.controller s in
  let root = Option.get (Ppd.Session.error_node s) in
  let slice = Ppd.Flowback.backward_slice ctl root in
  let g = Ppd.Controller.graph ctl in
  let labels =
    List.map (fun d -> (DG.node g d.Ppd.Flowback.d_node).DG.nd_label) slice
  in
  (* the full chain from assert back to the three inputs *)
  List.iter
    (fun needed ->
      Alcotest.(check bool) needed true (List.mem needed labels))
    [ "assert(m == 2)"; "m = call#0(a, b, c)"; "a = 7"; "b = 3"; "c = 5" ]

let test_cross_process_flowback () =
  (* fig61: the value printed by p3 came from p2's send, which came from
     p1's send *)
  let s = session Workloads.fig61 in
  let ctl = Ppd.Session.controller s in
  (* find p3's print via its process *)
  let m = Ppd.Session.machine s in
  let p = Ppd.Session.prog s in
  let p3 =
    let rec go pid =
      if (p.Lang.Prog.funcs.(Runtime.Machine.proc_root m pid)).fname = "p3" then pid
      else go (pid + 1)
    in
    go 0
  in
  let last = Option.get (Ppd.Controller.last_event_node ctl ~pid:p3) in
  (* the last event is p3's EXIT; flowback starts at the print before it *)
  let g0 = Ppd.Controller.graph ctl in
  let root =
    List.fold_left
      (fun acc (src, kind) ->
        match kind with Ppd.Dyn_graph.Flow -> src | _ -> acc)
      last
      (Ppd.Dyn_graph.preds g0 last)
  in
  let slice = Ppd.Flowback.backward_slice ctl root in
  let g = Ppd.Controller.graph ctl in
  let kinds =
    List.map (fun d -> (DG.node g d.Ppd.Flowback.d_node).DG.nd_pid) slice
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "slice spans all three processes" [ 0; 1; 2 ] kinds;
  (* the original send of 41 is in the slice *)
  let labels =
    List.map (fun d -> (DG.node g d.Ppd.Flowback.d_node).DG.nd_label) slice
  in
  Alcotest.(check bool) "p1's send in slice" true
    (List.mem "send(c12, 41)" labels)

let test_shared_resolution_across_processes () =
  (* a shared value written by one process and read (after a join) by
     another: the external node resolves to the writer's assignment *)
  let src =
    {|
    shared int g = 0;
    func w() { g = 21; }
    func main() {
      var p = spawn w();
      join(p);
      var x = g * 2;
      assert(x == 0);
    }
    |}
  in
  let s = session src in
  let ctl = Ppd.Session.controller s in
  let root = Option.get (Ppd.Session.error_node s) in
  let slice = Ppd.Flowback.backward_slice ctl root in
  let g = Ppd.Controller.graph ctl in
  let labels =
    List.map (fun d -> (DG.node g d.Ppd.Flowback.d_node).DG.nd_label) slice
  in
  Alcotest.(check bool) "writer found in other process" true
    (List.mem "g = 21" labels)

let test_same_process_earlier_interval () =
  (* shared variable written by an earlier sibling e-block of the same
     process *)
  let src =
    {|
    shared int g = 0;
    func setup() { g = 9; return 0; }
    func use() { var x = g + 1; return x; }
    func main() {
      setup();
      var r = use();
      assert(r == 0);
    }
    |}
  in
  let s = session src in
  let ctl = Ppd.Session.controller s in
  let root = Option.get (Ppd.Session.error_node s) in
  let slice = Ppd.Flowback.backward_slice ctl root in
  let g = Ppd.Controller.graph ctl in
  let labels =
    List.map (fun d -> (DG.node g d.Ppd.Flowback.d_node).DG.nd_label) slice
  in
  Alcotest.(check bool) "setup's write found" true (List.mem "g = 9" labels)

let test_dot_output () =
  let s = session Workloads.buggy_min in
  let ctl = Ppd.Session.controller s in
  ignore (Ppd.Session.error_node s);
  let dot = DG.to_dot (Ppd.Controller.graph ctl) in
  Alcotest.(check bool) "digraph" true (Util.contains ~sub:"digraph ppd" dot);
  Alcotest.(check bool) "has edges" true (Util.contains ~sub:"->" dot)

let test_graph_labels_stable () =
  (* golden-ish: the fig41 graph has exactly these top-level nodes *)
  let s = session Workloads.fig41 in
  let ctl = Ppd.Session.controller s in
  ignore (Ppd.Session.error_node s);
  let labels = graph_labels (Ppd.Controller.graph ctl) in
  List.iter
    (fun l -> Alcotest.(check bool) l true (List.mem l labels))
    [
      "ENTRY main";
      "a = 1";
      "b = 2";
      "c = 3";
      "d = call#0(a, b, (a + b) + c)";
      "(d > 0)";
      "sq = call#1(-d)";
      "a = a + sq";
      "assert(a == 99)";
    ]

let suite =
  ( "flowback",
    [
      Alcotest.test_case "Figure 4.1 graph" `Quick test_fig41_graph;
      Alcotest.test_case "dynamic control dependence" `Quick
        test_control_dependence_dynamic;
      Alcotest.test_case "incremental building" `Quick test_incremental_building;
      Alcotest.test_case "parameter resolution" `Quick test_param_resolution;
      Alcotest.test_case "cross-process flowback" `Quick test_cross_process_flowback;
      Alcotest.test_case "shared write in other process" `Quick
        test_shared_resolution_across_processes;
      Alcotest.test_case "earlier interval same process" `Quick
        test_same_process_earlier_interval;
      Alcotest.test_case "dot output" `Quick test_dot_output;
      Alcotest.test_case "fig41 node labels" `Quick test_graph_labels_stable;
    ] )
