(* Vector clocks and the parallel dynamic graph: the §6 ordering. *)

module E = Runtime.Event

let test_vclock_basics () =
  let open Ppd.Vclock in
  let a = tick empty ~pid:0 in
  let b = tick a ~pid:0 in
  let c = tick a ~pid:1 in
  Alcotest.(check bool) "a <= b" true (leq a b);
  Alcotest.(check bool) "b !<= a" false (leq b a);
  Alcotest.(check bool) "b,c concurrent" true (compare_clocks b c = Concurrent);
  let j = join b c in
  Alcotest.(check bool) "join dominates both" true (leq b j && leq c j);
  Alcotest.(check int) "component" 2 (get j 0);
  Alcotest.(check int) "other component" 1 (get j 1)

let vclock_join_props =
  Util.qtest ~count:200 "vclock join is lub"
    QCheck2.Gen.(
      pair (list_size (int_range 0 5) (int_range 0 5))
        (list_size (int_range 0 5) (int_range 0 5)))
    (fun (xs, ys) ->
      let open Ppd.Vclock in
      let clock_of l = List.fold_left (fun c pid -> tick c ~pid) empty l in
      let a = clock_of xs and b = clock_of ys in
      let j = join a b in
      leq a j && leq b j && equal (join a b) (join b a)
      && equal (join a (join a b)) (join a b))

let pardyn_of ?sched src =
  let prog = Util.compile src in
  let obs = Ppd.Pardyn.observer prog in
  let m = Runtime.Machine.create ?sched ~hooks:(Ppd.Pardyn.factory obs) prog in
  let halt = Runtime.Machine.run m in
  (halt, Ppd.Pardyn.finish obs)

let test_fig61_structure () =
  let halt, g = pardyn_of Workloads.fig61 in
  (match halt with Runtime.Machine.Finished -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  (* nodes: 3 proc-starts + 3 proc-exits + 2 spawns + 2 joins + 2 sends
     + 2 recvs + 2 unblocks = 16 *)
  Alcotest.(check int) "nodes" 16 (Array.length g.Ppd.Pardyn.nodes);
  (* sync edges: 2 spawn->start, 2 exit->join, 2 send->recv, 2
     recv->unblock = 8 *)
  Alcotest.(check int) "sync edges" 8 (Array.length g.Ppd.Pardyn.sync_edges);
  (* the Fig 6.1 triple: send hb recv hb unblock *)
  let find_node pred =
    (Array.to_list g.Ppd.Pardyn.nodes
    |> List.find (fun n ->
           match n.Ppd.Pardyn.n_data with
           | Trace.Log.S_kind k -> pred k
           | _ -> false))
      .Ppd.Pardyn.n_id
  in
  let send1 = find_node (function E.K_send { value = 41; _ } -> true | _ -> false) in
  let recv1 = find_node (function E.K_recv { value = 41; _ } -> true | _ -> false) in
  let unb =
    (* p0's unblock: same pid as send1, kind unblocked *)
    (Array.to_list g.Ppd.Pardyn.nodes
    |> List.find (fun n ->
           n.Ppd.Pardyn.n_pid = g.Ppd.Pardyn.nodes.(send1).Ppd.Pardyn.n_pid
           &&
           match n.Ppd.Pardyn.n_data with
           | Trace.Log.S_kind (E.K_send_unblocked _) -> true
           | _ -> false))
      .Ppd.Pardyn.n_id
  in
  Alcotest.(check bool) "send hb recv" true (Ppd.Pardyn.node_hb g send1 recv1);
  Alcotest.(check bool) "recv hb unblock" true (Ppd.Pardyn.node_hb g recv1 unb);
  Alcotest.(check bool) "recv not hb send" false (Ppd.Pardyn.node_hb g recv1 send1)

let test_edge_sets () =
  let _halt, g = pardyn_of Workloads.racy_bank in
  let p = g.Ppd.Pardyn.prog in
  let balance =
    (Array.to_list p.globals |> List.find (fun v -> v.Lang.Prog.vname = "balance")).vid
  in
  (* each worker's single internal edge reads and writes balance *)
  let worker_edges =
    Array.to_list g.Ppd.Pardyn.iedges
    |> List.filter (fun e -> e.Ppd.Pardyn.ie_pid > 0)
  in
  Alcotest.(check int) "two worker edges" 2 (List.length worker_edges);
  List.iter
    (fun e ->
      Alcotest.(check bool) "reads balance" true
        (Analysis.Varset.mem balance e.Ppd.Pardyn.ie_reads);
      Alcotest.(check bool) "writes balance" true
        (Analysis.Varset.mem balance e.Ppd.Pardyn.ie_writes))
    worker_edges;
  Alcotest.(check bool) "worker edges simultaneous" true
    (match worker_edges with
    | [ e1; e2 ] -> Ppd.Pardyn.simultaneous g e1 e2
    | _ -> false)

let test_mutex_orders_edges () =
  let _halt, g = pardyn_of ~sched:(Runtime.Sched.Round_robin 2) Workloads.fixed_bank in
  (* the two critical sections are ordered through the V->P edge *)
  let crit_edges =
    Array.to_list g.Ppd.Pardyn.iedges
    |> List.filter (fun e ->
           e.Ppd.Pardyn.ie_pid > 0
           && not (Analysis.Varset.is_empty e.Ppd.Pardyn.ie_writes))
  in
  match crit_edges with
  | [ e1; e2 ] ->
    Alcotest.(check bool) "ordered" true
      (Ppd.Pardyn.edge_before g e1 e2 || Ppd.Pardyn.edge_before g e2 e1)
  | l -> Alcotest.failf "expected 2 writing edges, got %d" (List.length l)

let test_of_log_matches_observer_structure () =
  let src = Workloads.fig61 in
  let eb, _h, log, _tr, _m = Util.run_instrumented src in
  let from_log = Ppd.Pardyn.of_log eb.Analysis.Eblock.prog log in
  let _, from_obs = pardyn_of src in
  Alcotest.(check int) "same node count"
    (Array.length from_obs.Ppd.Pardyn.nodes)
    (Array.length from_log.Ppd.Pardyn.nodes);
  Alcotest.(check int) "same sync edges"
    (Array.length from_obs.Ppd.Pardyn.sync_edges)
    (Array.length from_log.Ppd.Pardyn.sync_edges);
  (* same clocks per ref *)
  Array.iter
    (fun n ->
      match Ppd.Pardyn.node_of from_log n.Ppd.Pardyn.n_ref with
      | Some id ->
        Alcotest.(check bool) "clock equal" true
          (Ppd.Vclock.equal n.Ppd.Pardyn.n_clock
             from_log.Ppd.Pardyn.nodes.(id).Ppd.Pardyn.n_clock)
      | None -> Alcotest.fail "node missing in log-built graph")
    from_obs.Ppd.Pardyn.nodes

(* The central ordering property: vector-clock happened-before agrees
   with graph reachability, on random parallel executions. *)
let hb_equals_reachability =
  Util.qtest ~count:25 "vclock hb = reachability"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000))
    (fun (seed, sseed) ->
      let _halt, g =
        pardyn_of
          ~sched:(Runtime.Sched.Random_seed sseed)
          (Gen.parallel ~protect:`Sometimes seed)
      in
      let n = Array.length g.Ppd.Pardyn.nodes in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Ppd.Pardyn.node_hb g a b <> Ppd.Pardyn.node_reaches g a b then
            ok := false
        done
      done;
      !ok)

let test_rpc_rendezvous () =
  (* §6.2.3: an RPC needs one sync edge for the call and one for the
     return; with synchronous channels each direction also gets its
     unblock edge, and the caller's events between call and return are
     ordered entirely through the server *)
  let halt, g = pardyn_of Workloads.rpc in
  (match halt with Runtime.Machine.Finished -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  let find kindp =
    (Array.to_list g.Ppd.Pardyn.nodes
    |> List.find (fun n ->
           match n.Ppd.Pardyn.n_data with
           | Trace.Log.S_kind k -> kindp k
           | _ -> false))
      .Ppd.Pardyn.n_id
  in
  let call_send = find (function E.K_send { chan = 0; _ } -> true | _ -> false) in
  let call_recv = find (function E.K_recv { chan = 0; _ } -> true | _ -> false) in
  let reply_send = find (function E.K_send { chan = 1; _ } -> true | _ -> false) in
  let reply_recv = find (function E.K_recv { chan = 1; _ } -> true | _ -> false) in
  (* the paper's two RPC edges: call and return *)
  Alcotest.(check bool) "call edge" true (Ppd.Pardyn.node_hb g call_send call_recv);
  Alcotest.(check bool) "return edge" true (Ppd.Pardyn.node_hb g reply_send reply_recv);
  (* the server's computation is ordered between them *)
  Alcotest.(check bool) "call before reply" true
    (Ppd.Pardyn.node_hb g call_recv reply_send);
  (* the reply value is 49 = 7*7 *)
  (match g.Ppd.Pardyn.nodes.(reply_recv).Ppd.Pardyn.n_data with
  | Trace.Log.S_kind (E.K_recv { value; _ }) ->
    Alcotest.(check int) "squared" 49 value
  | _ -> Alcotest.fail "not a recv")

let suite =
  ( "pardyn",
    [
      Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
      vclock_join_props;
      Alcotest.test_case "Fig 6.1 structure" `Quick test_fig61_structure;
      Alcotest.test_case "edge access sets" `Quick test_edge_sets;
      Alcotest.test_case "mutex orders edges" `Quick test_mutex_orders_edges;
      Alcotest.test_case "of_log = observer (structure)" `Quick
        test_of_log_matches_observer_structure;
      hb_equals_reachability;
      Alcotest.test_case "RPC rendezvous (§6.2.3)" `Quick test_rpc_rendezvous;
    ] )
