(* The workload generators the benchmarks rely on: their outputs must
   match the closed forms, across parameters and schedules. *)

let out ?sched src = Util.run_output ?sched src

let test_counter_formula () =
  List.iter
    (fun (workers, incs) ->
      Alcotest.(check string)
        (Printf.sprintf "%dx%d" workers incs)
        (Printf.sprintf "%d\n" (workers * incs))
        (out (Workloads.counter ~workers ~incs ~mutex:true)))
    [ (1, 1); (2, 7); (5, 10) ]

let test_prodcons_formula () =
  List.iter
    (fun (items, cap) ->
      Alcotest.(check string)
        (Printf.sprintf "%d items cap %d" items cap)
        (Printf.sprintf "%d\n" (items * (items + 1) / 2))
        (out (Workloads.producer_consumer ~items ~cap)))
    [ (1, 0); (10, 0); (10, 1); (25, 4); (25, 100) ]

let test_token_ring_formula () =
  (* the token is incremented once per hop: procs * rounds hops *)
  List.iter
    (fun (procs, rounds) ->
      Alcotest.(check string)
        (Printf.sprintf "%d procs %d rounds" procs rounds)
        (Printf.sprintf "%d\n" (procs * rounds))
        (out (Workloads.token_ring ~procs ~rounds)))
    [ (2, 1); (3, 4); (6, 2) ]

let test_token_ring_schedule_independent () =
  (* deterministic result under any interleaving: fully synchronized *)
  let src = Workloads.token_ring ~procs:4 ~rounds:3 in
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d" seed)
        "12\n"
        (out ~sched:(Runtime.Sched.Random_seed seed) src))
    [ 3; 17; 91 ]

let test_deep_calls_formula () =
  List.iter
    (fun depth ->
      Alcotest.(check string)
        (Printf.sprintf "depth %d" depth)
        (Printf.sprintf "%d\n" depth)
        (out (Workloads.deep_calls ~depth)))
    [ 1; 2; 7; 30 ]

let test_fib_values () =
  List.iter
    (fun (n, f) ->
      Alcotest.(check string)
        (Printf.sprintf "fib %d" n)
        (Printf.sprintf "%d\n" f)
        (out (Workloads.fib n)))
    [ (0, 0); (1, 1); (2, 1); (7, 13); (13, 233) ]

let test_matmul_checksum () =
  (* trace(A*B) with A = i+j, B = i-j has the closed form
     sum_i sum_k (i+k)(k-i) = sum_i sum_k (k^2 - i^2) = 0 *)
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "matmul %d" n)
        "0\n"
        (out (Workloads.matmul n)))
    [ 2; 5; 9 ]

let test_all_fixed_compile () =
  List.iter
    (fun (name, src) ->
      match Lang.Compile.compile_result src with
      | Ok _ -> ()
      | Error (_, msg) -> Alcotest.failf "%s does not compile: %s" name msg)
    Workloads.all_fixed

let test_rpc_output () =
  Alcotest.(check string) "49" "49\n" (out Workloads.rpc)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "counter formula" `Quick test_counter_formula;
      Alcotest.test_case "producer/consumer formula" `Quick test_prodcons_formula;
      Alcotest.test_case "token ring formula" `Quick test_token_ring_formula;
      Alcotest.test_case "token ring schedule-independent" `Quick
        test_token_ring_schedule_independent;
      Alcotest.test_case "deep calls formula" `Quick test_deep_calls_formula;
      Alcotest.test_case "fib values" `Quick test_fib_values;
      Alcotest.test_case "matmul checksum" `Quick test_matmul_checksum;
      Alcotest.test_case "fixed corpus compiles" `Quick test_all_fixed_compile;
      Alcotest.test_case "rpc output" `Quick test_rpc_output;
    ] )
