(* Breakpoints: halting by user intervention (§3.2.2) and the §5.7
   timely-halt story — from a breakpoint, every other process's state is
   available at its own last e-block boundary via the postlogs. *)

module M = Runtime.Machine

let counter_sid src pred =
  let p = Util.compile src in
  let s = ref (-1) in
  Array.iter
    (fun (st : Lang.Prog.stmt) -> if pred st then s := st.sid)
    p.stmts;
  !s

let test_halt_at_statement () =
  let src = Workloads.foo3 in
  let p = Util.compile src in
  (* break at the first print in main *)
  let print_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : Lang.Prog.stmt) ->
        match st.desc with
        | Lang.Prog.Sprint _ when !s = -1 -> s := st.sid
        | _ -> ())
      p.stmts;
    !s
  in
  let m = M.create ~breakpoints:[ print_sid ] p in
  (match M.run m with
  | M.Breakpoint { pid; sid } ->
    Alcotest.(check int) "main" 0 pid;
    Alcotest.(check int) "at the print" print_sid sid
  | h -> Alcotest.failf "expected breakpoint, got %s" (Util.halt_name h));
  (* only the first print ran *)
  Alcotest.(check string) "partial output" "3\n" (M.output m)

let test_flowback_from_breakpoint () =
  let src = Workloads.fig41 in
  let p = Util.compile src in
  (* break at `a = a + sq` — the exact moment Figure 4.1 is drawn *)
  let sid =
    counter_sid src (fun st -> Lang.Prog.stmt_label st = "a = a + sq")
  in
  let s = Ppd.Session.run ~breakpoints:[ sid ] src in
  ignore p;
  (match Ppd.Session.halt s with
  | M.Breakpoint _ -> ()
  | h -> Alcotest.failf "expected breakpoint, got %s" (Util.halt_name h));
  Alcotest.(check bool) "explained" true
    (Util.contains ~sub:"breakpoint" (Ppd.Session.explain_halt s));
  match Ppd.Session.error_node s with
  | None -> Alcotest.fail "no node at breakpoint"
  | Some root ->
    let ctl = Ppd.Session.controller s in
    let g = Ppd.Controller.graph ctl in
    Alcotest.(check string) "focus is s6" "a = a + sq"
      (Ppd.Dyn_graph.node g root).Ppd.Dyn_graph.nd_label;
    (* the assert after the breakpoint never executed *)
    let labels =
      List.init (Ppd.Dyn_graph.nnodes g) (fun i ->
          (Ppd.Dyn_graph.node g i).Ppd.Dyn_graph.nd_label)
    in
    Alcotest.(check bool) "assert not reached" false
      (List.mem "assert(a == 99)" labels)

let test_other_processes_restorable () =
  (* break in one worker; the other processes' shared contributions are
     reconstructible from their postlogs (§5.7's timely halt) *)
  let src = Workloads.counter ~workers:2 ~incs:5 ~mutex:true in
  let p = Util.compile src in
  let print_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : Lang.Prog.stmt) ->
        match st.desc with Lang.Prog.Sprint _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  let s = Ppd.Session.run ~breakpoints:[ print_sid ] src in
  (match Ppd.Session.halt s with
  | M.Breakpoint _ -> ()
  | h -> Alcotest.failf "expected breakpoint, got %s" (Util.halt_name h));
  (* at the final print both workers have finished: restoration agrees
     with the live store *)
  let snap = Ppd.Restore.final (Ppd.Session.prog s) (Ppd.Session.log s) in
  Alcotest.(check bool) "count restored" true
    (Runtime.Value.equal snap.Ppd.Restore.globals.(0)
       (M.read_global (Ppd.Session.machine s) 0))

let test_breakpoint_beats_fault () =
  (* the breakpoint statement executes before the program would fault *)
  let src = "func main() { var x = 1; print(x); var y = 0; print(1 / y); }" in
  let sid = counter_sid src (fun st -> Lang.Prog.stmt_label st = "print(x)") in
  let halt, out = ((fun s -> (Ppd.Session.halt s, Ppd.Session.output s))
                     (Ppd.Session.run ~breakpoints:[ sid ] src)) in
  (match halt with
  | M.Breakpoint _ -> ()
  | h -> Alcotest.failf "expected breakpoint, got %s" (Util.halt_name h));
  Alcotest.(check string) "stopped before the fault" "1\n" out

let test_debugger_over_breakpoint () =
  let src = Workloads.fig41 in
  let sid =
    counter_sid src (fun st -> Lang.Prog.stmt_label st = "a = a + sq")
  in
  let d = Ppd.Debugger.create (Ppd.Session.run ~breakpoints:[ sid ] src) in
  let why = Ppd.Debugger.eval d "why" in
  Alcotest.(check bool) "sq dependence visible" true
    (Util.contains ~sub:"data:sq" why)

let test_blocked_process_replay () =
  (* regression: the open interval of a process blocked at halt time
     replays up to exactly its last real event — no phantom events, no
     "log exhausted" crash *)
  let sched = Runtime.Sched.Scripted [ 0; 0; 0; 1; 1; 2; 2; 1; 2 ] in
  let eb, halt, log, tr, _m =
    Util.run_instrumented ~sched Workloads.deadlock_ab
  in
  (match halt with
  | M.Deadlock _ -> ()
  | h -> Alcotest.failf "expected deadlock, got %s" (Util.halt_name h));
  let n = Util.check_replay_equivalence eb log tr in
  Alcotest.(check bool) "all open intervals replayed" true (n >= 3)

let test_preempted_process_replay () =
  (* a fault in one process halts the machine while others are mid-block *)
  let src =
    {|
    shared int g = 0;
    func spinner() {
      var i = 0;
      while (i < 1000) {
        g = g + 1;
        i = i + 1;
      }
    }
    func main() {
      spawn spinner();
      var x = 0;
      print(1 / x);
    }
    |}
  in
  let eb, halt, log, tr, _m =
    Util.run_instrumented ~sched:(Runtime.Sched.Round_robin 3) src
  in
  (match halt with
  | M.Fault _ -> ()
  | h -> Alcotest.failf "expected fault, got %s" (Util.halt_name h));
  ignore (Util.check_replay_equivalence eb log tr)

let suite =
  ( "breakpoint",
    [
      Alcotest.test_case "halt at statement" `Quick test_halt_at_statement;
      Alcotest.test_case "flowback from breakpoint" `Quick
        test_flowback_from_breakpoint;
      Alcotest.test_case "other processes restorable" `Quick
        test_other_processes_restorable;
      Alcotest.test_case "breakpoint beats fault" `Quick test_breakpoint_beats_fault;
      Alcotest.test_case "debugger over breakpoint" `Quick
        test_debugger_over_breakpoint;
      Alcotest.test_case "blocked process replay" `Quick
        test_blocked_process_replay;
      Alcotest.test_case "preempted process replay" `Quick
        test_preempted_process_replay;
    ] )
