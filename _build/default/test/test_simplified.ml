(* Simplified static graph and synchronization units (§5.5, Fig 5.3). *)

open Analysis
module P = Lang.Prog

let build src fname =
  let p = Util.compile src in
  let f = Option.get (P.find_func p fname) in
  let cfg = Cfg.build p f in
  (p, Simplified.build p cfg)

let gvid (p : P.t) name =
  (Array.to_list p.globals |> List.find (fun (v : P.var) -> v.vname = name)).vid

let count_kind t pred =
  Array.to_list t.Simplified.kinds
  |> List.filter (fun k -> match k with Some k -> pred k | None -> false)
  |> List.length

let test_foo3_structure () =
  (* Figure 5.3: foo3 has branching nodes for the two predicates, no
     sync operations, and its only unit starts at ENTRY. *)
  let _p, t = build Workloads.foo3 "foo3" in
  Alcotest.(check int) "branching nodes" 2
    (count_kind t (function Simplified.Branch _ -> true | _ -> false));
  Alcotest.(check int) "operation nodes" 0
    (count_kind t (function Simplified.Op _ -> true | _ -> false));
  Alcotest.(check int) "one unit" 1 (Array.length t.units);
  Alcotest.(check bool) "unit starts at entry" true
    (t.units.(0).su_start = Simplified.At_entry)

let test_foo3_shared_reads () =
  let p, t = build Workloads.foo3 "foo3" in
  (* the entry unit may read SV (on the else path) *)
  Alcotest.(check (list int)) "SV read in entry unit" [ gvid p "SV" ]
    (Varset.elements (Simplified.shared_reads_at_entry t))

let test_units_partition_by_sync () =
  let src =
    {|
    shared int g = 0;
    sem m = 1;
    func main() {
      var x = g;      // unit 0 (entry): reads g
      P(m);
      x = x + g;      // unit after P: reads g
      V(m);
      print(x);       // unit after V: no shared reads
    }
    |}
  in
  let p, t = build src "main" in
  (* units: entry, after P, after V *)
  Alcotest.(check int) "three units" 3 (Array.length t.units);
  let psid, vsid =
    let ps = ref (-1) and vs = ref (-1) in
    Array.iter
      (fun (s : P.stmt) ->
        match s.desc with
        | P.Sp _ -> ps := s.sid
        | P.Sv _ -> vs := s.sid
        | _ -> ())
      p.stmts;
    (!ps, !vs)
  in
  Alcotest.(check bool) "g needed after P" true
    (Simplified.shared_reads_after t psid <> None);
  Alcotest.(check bool) "nothing needed after V" true
    (Simplified.shared_reads_after t vsid = None);
  Alcotest.(check (list int)) "entry unit reads g" [ gvid p "g" ]
    (Varset.elements (Simplified.shared_reads_at_entry t))

let test_send_payload_attribution () =
  (* a send's own payload read happens inside the unit that ENDS at the
     send, so the entry unit must cover it *)
  let src =
    {|
    shared int g = 7;
    chan c;
    func main() {
      send(c, g + 1);
      var x = 0;
      recv(c, x);
      print(x);
    }
    |}
  in
  let p, t = build src "main" in
  Alcotest.(check (list int)) "payload read in entry unit" [ gvid p "g" ]
    (Varset.elements (Simplified.shared_reads_at_entry t));
  (* after the send, no shared reads remain *)
  let send_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : P.stmt) ->
        match st.desc with P.Ssend _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  Alcotest.(check bool) "after send: none" true
    (Simplified.shared_reads_after t send_sid = None)

let test_calls_bound_units () =
  let src =
    {|
    shared int g = 1;
    func helper() { return 2; }
    func main() {
      var a = g;        // entry unit reads g
      var b = helper(); // call is a unit boundary
      var c = g + b;    // unit after the call reads g again
      print(a + c);
    }
    |}
  in
  let p, t = build src "main" in
  let call_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : P.stmt) ->
        match st.desc with P.Scall _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  (match Simplified.shared_reads_after t call_sid with
  | Some set ->
    Alcotest.(check (list int)) "g re-snapshot after call" [ gvid p "g" ]
      (Varset.elements set)
  | None -> Alcotest.fail "expected a unit after the call");
  Alcotest.(check int) "two units" 2 (Array.length t.units)

let test_loop_units () =
  (* a sync op inside a loop: the unit after it flows around the back
     edge and through the loop exit *)
  let src =
    {|
    shared int g = 0;
    sem m = 1;
    func main() {
      var i = 0;
      var x = 0;
      while (i < 3) {
        P(m);
        x = x + g;
        i = i + 1;
      }
      print(x);
    }
    |}
  in
  let p, t = build src "main" in
  let psid =
    let s = ref (-1) in
    Array.iter
      (fun (st : P.stmt) -> match st.desc with P.Sp _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  match Simplified.shared_reads_after t psid with
  | Some set ->
    Alcotest.(check bool) "g read in P's unit" true
      (Varset.mem (gvid p "g") set)
  | None -> Alcotest.fail "expected shared reads after P"

let suite =
  ( "simplified",
    [
      Alcotest.test_case "foo3 structure (Fig 5.3)" `Quick test_foo3_structure;
      Alcotest.test_case "foo3 shared reads" `Quick test_foo3_shared_reads;
      Alcotest.test_case "units partitioned by sync ops" `Quick
        test_units_partition_by_sync;
      Alcotest.test_case "send payload attribution" `Quick
        test_send_payload_attribution;
      Alcotest.test_case "calls bound units" `Quick test_calls_bound_units;
      Alcotest.test_case "sync inside loop" `Quick test_loop_units;
    ] )
