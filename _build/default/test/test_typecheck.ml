let type_err name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Util.compile_err src with
      | Some msg ->
        if not (Util.contains ~sub:fragment msg) then
          Alcotest.failf "error %S does not mention %S" msg fragment
      | None -> Alcotest.fail "expected a type error")

let type_ok name src =
  Alcotest.test_case name `Quick (fun () -> ignore (Util.compile src))

let suite =
  ( "typecheck",
    [
      type_ok "print accepts bool" "func main() { print(1 < 2); }";
      type_ok "print accepts int" "func main() { print(42); }";
      type_ok "equality on bools" "func main() { assert((1 < 2) == (3 < 4)); }";
      type_ok "arrays indexed" "func main() { var a[2]; a[0] = 1; print(a[0] + a[1]); }";
      type_err "bool stored" "func main() { var x = 1 < 2; }" "must be an integer";
      type_err "int condition" "func main() { if (1) { } }" "must be a boolean";
      type_err "int while" "func main() { while (0) { } }" "must be a boolean";
      type_err "assert int" "func main() { assert(1); }" "must be a boolean";
      type_err "arith on bool" "func main() { print((1 < 2) + 1); }"
        "must be an integer";
      type_err "not on int" "func main() { print(!1); }" "must be a boolean";
      type_err "neg on bool" "func main() { print(-(1 < 2)); }" "must be an integer";
      type_err "mixed equality" "func main() { assert(1 == (2 < 3)); }" "compare";
      type_err "array as scalar" "func main() { var a[2]; print(a); }"
        "cannot be used as a scalar";
      type_err "scalar indexed" "func main() { var x = 1; print(x[0]); }"
        "cannot be indexed";
      type_err "assign whole array" "func main() { var a[2]; a = 1; }"
        "whole array";
      type_err "bool index" "func main() { var a[2]; print(a[1 < 2]); }"
        "array index must be an integer";
      type_err "bool argument" "func f(x) { return x; } func main() { f(1 < 2); }"
        "argument must be an integer";
      type_err "bool return" "func f() { return 1 < 2; } func main() { var x = f(); print(x); }"
        "returned value must be an integer";
      type_err "bool send" "chan c; func main() { send(c, 1 < 2); }"
        "message payload";
      type_err "bool join target" "func f() { return; } func main() { var p = spawn f(); join(p > 0); }"
        "join target";
    ] )
