(* E-block partitioning, prelog/postlog variable sets and the §5.4
   leaf-inlining policy. *)

open Analysis
module P = Lang.Prog

let fid p name = (Option.get (P.find_func p name)).P.fid

let names (_p : P.t) vars = List.map (fun (v : P.var) -> v.vname) vars

let test_default_everything_is_eblock () =
  let p = Util.compile Workloads.fig41 in
  let eb = Eblock.analyze p in
  Array.iter
    (fun (f : P.func) ->
      Alcotest.(check bool) f.fname true eb.is_eblock.(f.fid))
    p.funcs

let test_prelog_is_upward_exposed () =
  let p = Util.compile Workloads.fig41 in
  let eb = Eblock.analyze p in
  (* subd(a, b, x) reads all three params before writing anything *)
  Alcotest.(check (list string)) "subd prelog" [ "a"; "b"; "x" ]
    (names p eb.prelog_vars.(fid p "subd"));
  (* subd writes nothing: empty postlog (the return value is recorded
     separately) *)
  Alcotest.(check (list string)) "subd postlog" []
    (names p eb.postlog_vars.(fid p "subd"));
  (* isqrt(n): reads n, writes r (and its loop tests read r) *)
  Alcotest.(check (list string)) "isqrt prelog" [ "n" ]
    (names p eb.prelog_vars.(fid p "isqrt"));
  Alcotest.(check (list string)) "isqrt postlog" [ "r" ]
    (names p eb.postlog_vars.(fid p "isqrt"))

let test_shared_in_sets () =
  let p = Util.compile Workloads.racy_bank in
  let eb = Eblock.analyze p in
  let w = fid p "withdraw" in
  Alcotest.(check bool) "withdraw prelog snapshots balance" true
    (List.mem "balance" (names p eb.prelog_vars.(w)));
  Alcotest.(check bool) "withdraw postlog includes balance" true
    (List.mem "balance" (names p eb.postlog_vars.(w)))

let test_leaf_inlining () =
  let src =
    {|
    shared int g = 0;
    func tiny(x) { g = g + x; return g; }
    func big(x) {
      var acc = 0;
      var i = 0;
      while (i < x) { acc = acc + i; i = i + 1; }
      var t = tiny(acc);
      return t;
    }
    func main() { var r = big(5); print(r); }
    |}
  in
  let p = Util.compile src in
  (* default: tiny is its own e-block *)
  let eb0 = Eblock.analyze p in
  Alcotest.(check bool) "tiny e-block by default" true eb0.is_eblock.(fid p "tiny");
  (* inlining threshold 5: tiny (2 stmts) is inlined, big keeps block
     status (it is not a leaf) *)
  let eb =
    Eblock.analyze ~policy:{ Eblock.leaf_inline_max_stmts = 5; loop_block_min_body = 0 } p
  in
  Alcotest.(check bool) "tiny inlined" false eb.is_eblock.(fid p "tiny");
  Alcotest.(check bool) "big still e-block" true eb.is_eblock.(fid p "big");
  Alcotest.(check bool) "main always e-block" true eb.is_eblock.(fid p "main");
  (* big inherits tiny's global effects (§5.4: ancestors inherit the
     USED and DEFINED sets of inlined leaves) *)
  Alcotest.(check bool) "big prelog snapshots g" true
    (List.mem "g" (names p eb.prelog_vars.(fid p "big")));
  Alcotest.(check bool) "big postlog includes g" true
    (List.mem "g" (names p eb.postlog_vars.(fid p "big")))

let test_spawned_never_inlined () =
  let src =
    {|
    func w() { print(1); }
    func main() { var p = spawn w(); join(p); }
    |}
  in
  let p = Util.compile src in
  let eb = Eblock.analyze ~policy:{ Eblock.leaf_inline_max_stmts = 100; loop_block_min_body = 0 } p in
  Alcotest.(check bool) "process roots stay e-blocks" true
    (eb.is_eblock.(fid p "w"))

let test_used_defined_are_supersets () =
  (* static USED/DEFINED must cover the syntactic per-statement sets *)
  let p = Util.compile Workloads.foo3 in
  let eb = Eblock.analyze p in
  Array.iter
    (fun (f : P.func) ->
      P.iter_stmts
        (fun s ->
          List.iter
            (fun (v : P.var) ->
              if P.is_global v || v.vfid = f.fid then
                Alcotest.(check bool)
                  (Printf.sprintf "%s used in %s" v.vname f.fname)
                  true
                  (Varset.mem v.vid eb.used.(f.fid)))
            (Use_def.direct_uses s);
          List.iter
            (fun (v : P.var) ->
              if P.is_global v || v.vfid = f.fid then
                Alcotest.(check bool)
                  (Printf.sprintf "%s defined in %s" v.vname f.fname)
                  true
                  (Varset.mem v.vid eb.defined.(f.fid)))
            (Use_def.direct_defs s))
        f.body)
    p.funcs

let suite =
  ( "eblock",
    [
      Alcotest.test_case "default partition" `Quick test_default_everything_is_eblock;
      Alcotest.test_case "prelog = upward exposed" `Quick test_prelog_is_upward_exposed;
      Alcotest.test_case "shared variables in sets" `Quick test_shared_in_sets;
      Alcotest.test_case "leaf inlining (§5.4)" `Quick test_leaf_inlining;
      Alcotest.test_case "spawned functions stay e-blocks" `Quick
        test_spawned_never_inlined;
      Alcotest.test_case "USED/DEFINED supersets" `Quick test_used_defined_are_supersets;
    ] )
