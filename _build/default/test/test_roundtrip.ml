(* Pretty-printer / parser round trips: parse (print (parse src)) must
   equal parse src, structurally, for fixed programs and for randomly
   generated ones. *)

open Lang

let roundtrip_ok ast =
  let printed = Pp_ast.program_to_string ast in
  match Parser.parse_program printed with
  | reparsed -> Ast.program_equal ast reparsed
  | exception Diag.Error (loc, msg) ->
    QCheck2.Test.fail_reportf "re-parse failed at %s: %s\n%s"
      (Loc.to_string loc) msg printed

let fixed name src =
  Alcotest.test_case name `Quick (fun () ->
      let ast = Parser.parse_program src in
      if not (roundtrip_ok ast) then
        Alcotest.failf "round trip changed the program:\n%s"
          (Pp_ast.program_to_string ast))

let random_roundtrip =
  Util.qtest ~count:100 "random program round trip"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed -> roundtrip_ok (Gen.sequential_ast seed))

let random_parallel_roundtrip =
  Util.qtest ~count:60 "random parallel program round trip"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      roundtrip_ok (Parser.parse_program (Gen.parallel ~protect:`Sometimes seed)))

let idempotent =
  Util.qtest ~count:60 "printing is idempotent"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let ast = Gen.sequential_ast seed in
      let once = Pp_ast.program_to_string ast in
      let twice = Pp_ast.program_to_string (Parser.parse_program once) in
      String.equal once twice)

let suite =
  ( "roundtrip",
    (List.map (fun (n, s) -> fixed n s) Workloads.all_fixed)
    @ [
        fixed "matmul" (Workloads.matmul 3);
        fixed "token ring" (Workloads.token_ring ~procs:3 ~rounds:2);
        fixed "producer consumer" (Workloads.producer_consumer ~items:4 ~cap:2);
        random_roundtrip;
        random_parallel_roundtrip;
        idempotent;
      ] )
