(* The execution machine: sequential semantics, faults, processes,
   semaphores, channels of all three kinds, scheduling. *)

module M = Runtime.Machine

let out name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected (Util.run_output src))

let fault name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match Util.run src with
      | M.Fault { msg; _ }, _ ->
        if not (Util.contains ~sub:fragment msg) then
          Alcotest.failf "fault %S does not mention %S" msg fragment
      | h, _ -> Alcotest.failf "expected fault, got %s" (Util.halt_name h))

let test_deadlock_status () =
  match Util.run "sem s = 0; func main() { P(s); }" with
  | M.Deadlock [ (0, _) ], _ -> ()
  | h, _ -> Alcotest.failf "expected deadlock, got %s" (Util.halt_name h)

let test_fuel () =
  let m =
    M.create ~max_steps:100
      (Util.compile "func main() { var x = 1; while (x > 0) { x = x + 1; } }")
  in
  match M.run m with
  | M.Out_of_fuel -> Alcotest.(check int) "steps capped" 100 (M.nsteps m)
  | h -> Alcotest.failf "expected fuel exhaustion, got %s" (Util.halt_name h)

let test_spawn_pids () =
  let m =
    M.create
      (Util.compile
         "func w() { return 7; } func main() { var a = spawn w(); var b = spawn w(); print(a); print(b); join(a); join(b); }")
  in
  (match M.run m with M.Finished -> () | h -> Alcotest.failf "%s" (Util.halt_name h));
  Alcotest.(check string) "pids are 1 and 2" "1\n2\n" (M.output m);
  Alcotest.(check int) "three processes" 3 (M.nprocs m)

let test_join_result () =
  let out =
    Util.run_output
      "func w(n) { return n * n; } func main() { var p = spawn w(6); var r = join(p); print(r); }"
  in
  Alcotest.(check string) "join carries return value" "36\n" out

let test_determinism () =
  let src = Workloads.counter ~workers:3 ~incs:5 ~mutex:false in
  let run () =
    let acc = ref [] in
    let m =
      M.create ~sched:(Runtime.Sched.Random_seed 99)
        ~hooks:(Runtime.Hooks.collect acc) (Util.compile src)
    in
    ignore (M.run m);
    (M.output m, List.rev_map (fun (p, s, e) -> (p, s, Util.event_str e)) !acc)
  in
  let o1, e1 = run () and o2, e2 = run () in
  Alcotest.(check string) "same output" o1 o2;
  Alcotest.(check bool) "same event stream" true (e1 = e2)

let test_schedules_differ () =
  (* the racy counter loses updates under some interleavings *)
  let src = Workloads.counter ~workers:2 ~incs:40 ~mutex:false in
  let results =
    List.map
      (fun seed ->
        let _, out = Util.run ~sched:(Runtime.Sched.Random_seed seed) src in
        out)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "some interleaving differs" true
    (List.exists (fun r -> r <> List.hd results) (List.tl results)
    || List.hd results <> "80\n")

let test_sem_counting () =
  let out =
    Util.run_output
      {|
      sem s = 2;
      func main() {
        P(s); P(s);       // two initial credits
        V(s); P(s);       // recycle one
        print(1);
      }
      |}
  in
  Alcotest.(check string) "counting semaphore" "1\n" out

let test_sem_mutual_exclusion () =
  (* with a mutex the final count is always exact, whatever the seed *)
  let src = Workloads.counter ~workers:4 ~incs:25 ~mutex:true in
  List.iter
    (fun seed ->
      let _, out = Util.run ~sched:(Runtime.Sched.Random_seed seed) src in
      Alcotest.(check string) (Printf.sprintf "seed %d" seed) "100\n" out)
    [ 11; 22; 33 ]

let test_channel_fifo () =
  let out =
    Util.run_output
      {|
      chan c;
      func main() {
        send(c, 1); send(c, 2); send(c, 3);
        var x = 0;
        recv(c, x); print(x);
        recv(c, x); print(x);
        recv(c, x); print(x);
      }
      |}
  in
  Alcotest.(check string) "FIFO order" "1\n2\n3\n" out

let test_bounded_channel_blocks () =
  (* capacity 1: a lone process sending twice deadlocks on the second *)
  match
    Util.run "chan c[1]; func main() { send(c, 1); send(c, 2); }"
  with
  | M.Deadlock _, _ -> ()
  | h, _ -> Alcotest.failf "expected deadlock on full channel, got %s" (Util.halt_name h)

let test_sync_channel_rendezvous () =
  (* capacity 0: send blocks until the receive happens *)
  let out = Util.run_output (Workloads.producer_consumer ~items:5 ~cap:0) in
  Alcotest.(check string) "sum received" "15\n" out

let test_sync_channel_order_events () =
  let acc = ref [] in
  let m =
    M.create ~hooks:(Runtime.Hooks.collect acc)
      (Util.compile Workloads.fig61)
  in
  ignore (M.run m);
  (* the Figure 6.1 pattern: send (n3) happens-before recv (n4)
     happens-before the sender's unblock (n5) *)
  let events = List.rev !acc in
  let find kind_pred =
    List.filter_map
      (fun (pid, seq, ev) ->
        match ev with
        | Runtime.Event.E_stmt { kind; _ } when kind_pred kind -> Some (pid, seq)
        | _ -> None)
      events
  in
  let sends = find (function Runtime.Event.K_send _ -> true | _ -> false) in
  let recvs = find (function Runtime.Event.K_recv _ -> true | _ -> false) in
  let unblocks =
    find (function Runtime.Event.K_send_unblocked _ -> true | _ -> false)
  in
  Alcotest.(check int) "two sends" 2 (List.length sends);
  Alcotest.(check int) "two recvs" 2 (List.length recvs);
  Alcotest.(check int) "two unblocks" 2 (List.length unblocks)

let test_round_robin_quantum () =
  (* with quantum 1 two independent workers interleave strictly *)
  let src =
    {|
    func w(n) { print(n); print(n); return 0; }
    func main() {
      var a = spawn w(1);
      var b = spawn w(2);
      join(a); join(b);
    }
    |}
  in
  let _, out = Util.run ~sched:(Runtime.Sched.Round_robin 1) src in
  (* both workers' prints appear, four lines total *)
  Alcotest.(check int) "four prints" 4
    (List.length (String.split_on_char '\n' (String.trim out)))

let test_nested_spawn () =
  (* a spawned process spawning further processes *)
  let out =
    Util.run_output
      {|
      func leafw(n) { return n * 10; }
      func midw(n) {
        var a = spawn leafw(n);
        var b = spawn leafw(n + 1);
        var ra = join(a);
        var rb = join(b);
        return ra + rb;
      }
      func main() {
        var p = spawn midw(1);
        var r = join(p);
        print(r);
      }
      |}
  in
  Alcotest.(check string) "grandchildren results" "30
" out

let test_two_consumers () =
  (* two consumers share one producer's channel; each item delivered once *)
  let out =
    Util.run_output
      {|
      chan c;
      func consumer(n) {
        var i = 0;
        var sum = 0;
        var x = 0;
        for (i = 0; i < n; i = i + 1) {
          recv(c, x);
          sum = sum + x;
        }
        return sum;
      }
      func main() {
        var c1 = spawn consumer(2);
        var c2 = spawn consumer(2);
        send(c, 1); send(c, 2); send(c, 3); send(c, 4);
        var s1 = join(c1);
        var s2 = join(c2);
        print(s1 + s2);
      }
      |}
  in
  Alcotest.(check string) "every item once" "10
" out

let test_semaphore_as_barrier () =
  (* sem initialised to 0: pure signalling *)
  let out =
    Util.run_output
      {|
      shared int ready = 0;
      sem go = 0;
      func waiter() {
        P(go);
        return ready;
      }
      func main() {
        var p = spawn waiter();
        ready = 42;
        V(go);
        var r = join(p);
        print(r);
      }
      |}
  in
  Alcotest.(check string) "signalled value" "42
" out

let test_multiple_waiters_all_released () =
  let out =
    Util.run_output
      {|
      sem gate = 0;
      func w(n) { P(gate); return n; }
      func main() {
        var a = spawn w(1);
        var b = spawn w(2);
        var c = spawn w(3);
        V(gate); V(gate); V(gate);
        var ra = join(a); var rb = join(b); var rc = join(c);
        print(ra + rb + rc);
      }
      |}
  in
  Alcotest.(check string) "all three released" "6
" out

let test_global_array_across_processes () =
  let out =
    Util.run_output ~sched:(Runtime.Sched.Round_robin 2)
      {|
      shared int slots[4];
      func filler(i) { slots[i] = i * i; }
      func main() {
        var p0 = spawn filler(0);
        var p1 = spawn filler(1);
        var p2 = spawn filler(2);
        var p3 = spawn filler(3);
        join(p0); join(p1); join(p2); join(p3);
        print(slots[0] + slots[1] + slots[2] + slots[3]);
      }
      |}
  in
  Alcotest.(check string) "0+1+4+9" "14
" out

let test_fault_in_child_halts_machine () =
  let src =
    {|
    func bad() { var x = 0; print(1 / x); }
    func main() { var p = spawn bad(); join(p); }
    |}
  in
  match Util.run src with
  | M.Fault { pid; msg; _ }, _ ->
    Alcotest.(check bool) "child pid" true (pid = 1);
    Alcotest.(check bool) "division" true (Util.contains ~sub:"division" msg)
  | h, _ -> Alcotest.failf "expected fault, got %s" (Util.halt_name h)

let test_main_exit_does_not_kill_children () =
  (* main finishing does not terminate the others; the run completes
     when everyone does *)
  let out =
    Util.run_output ~sched:(Runtime.Sched.Round_robin 1)
      {|
      func late() {
        var i = 0;
        while (i < 20) { i = i + 1; }
        print(i);
      }
      func main() { spawn late(); }
      |}
  in
  Alcotest.(check string) "child finished after main" "20
" out

let suite =
  ( "machine",
    [
      out "arithmetic" "func main() { print(2 + 3 * 4 - 6 / 2); }" "11\n";
      out "modulo" "func main() { print(17 % 5); }" "2\n";
      out "unary minus" "func main() { var x = 5; print(-x + 1); }" "-4\n";
      out "bool printing" "func main() { print(1 < 2); print(2 < 1); }" "1\n0\n";
      out "short circuit and"
        "func main() { var x = 0; if (x != 0 && 10 / x > 1) { print(1); } else { print(2); } }"
        "2\n";
      out "short circuit or"
        "func main() { var x = 0; if (x == 0 || 10 / x > 1) { print(1); } }" "1\n";
      out "while loop" "func main() { var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s); }"
        "10\n";
      out "nested ifs" Workloads.foo3 "3\n3\n";
      out "arrays" "func main() { var a[3]; a[0] = 5; a[1] = a[0] * 2; a[2] = a[0] + a[1]; print(a[2]); }"
        "15\n";
      out "shared array"
        "shared int g[2]; func main() { g[0] = 3; g[1] = g[0] + 1; print(g[0] + g[1]); }"
        "7\n";
      out "recursion" (Workloads.fib 12) "144\n";
      out "call chain" (Workloads.deep_calls ~depth:6) "6\n";
      out "global init" "shared int g = 6 * 7; func main() { print(g); }" "42\n";
      fault "division by zero" "func main() { var x = 0; print(1 / x); }" "division by zero";
      fault "modulo by zero" "func main() { var x = 0; print(1 % x); }" "modulo by zero";
      fault "uninitialised read" "func main() { var x; print(x); }" "uninitialised";
      fault "array out of bounds" "func main() { var a[2]; a[2] = 1; }" "out of bounds";
      fault "negative index" "func main() { var a[2]; var i = 0 - 1; print(a[i]); }"
        "out of bounds";
      fault "assert failure" "func main() { assert(1 == 2); }" "assertion failed";
      fault "join bad pid" "func main() { join(42); }" "no process";
      fault "join self" "func main() { join(0); }" "joining itself";
      fault "void result used"
        "func f(c) { if (c > 0) { return 1; } } func main() { var x = f(0); print(x); }"
        "uninitialised";
      Alcotest.test_case "deadlock status" `Quick test_deadlock_status;
      Alcotest.test_case "fuel" `Quick test_fuel;
      Alcotest.test_case "spawn pids" `Quick test_spawn_pids;
      Alcotest.test_case "join result" `Quick test_join_result;
      Alcotest.test_case "seeded determinism" `Quick test_determinism;
      Alcotest.test_case "schedules can differ" `Quick test_schedules_differ;
      Alcotest.test_case "semaphore counting" `Quick test_sem_counting;
      Alcotest.test_case "mutual exclusion" `Quick test_sem_mutual_exclusion;
      Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
      Alcotest.test_case "bounded channel blocks" `Quick test_bounded_channel_blocks;
      Alcotest.test_case "synchronous rendezvous" `Quick test_sync_channel_rendezvous;
      Alcotest.test_case "Fig 6.1 event pattern" `Quick test_sync_channel_order_events;
      Alcotest.test_case "round robin quantum" `Quick test_round_robin_quantum;
      Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
      Alcotest.test_case "two consumers" `Quick test_two_consumers;
      Alcotest.test_case "semaphore as signal" `Quick test_semaphore_as_barrier;
      Alcotest.test_case "multiple waiters released" `Quick
        test_multiple_waiters_all_released;
      Alcotest.test_case "global array across processes" `Quick
        test_global_array_across_processes;
      Alcotest.test_case "fault in child" `Quick test_fault_in_child_halts_machine;
      Alcotest.test_case "main exit keeps children" `Quick
        test_main_exit_does_not_kill_children;
    ] )
