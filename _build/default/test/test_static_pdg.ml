(* Static program dependence graphs (§4.1) and the program database. *)

open Analysis
module P = Lang.Prog

let build src fname =
  let p = Util.compile src in
  let pdgs = Static_pdg.build_program p in
  let f = Option.get (P.find_func p fname) in
  (p, pdgs.Static_pdg.cfgs.(f.fid), pdgs.Static_pdg.pdgs.(f.fid))

let test_data_edges () =
  let _p, cfg, pdg =
    build "func main() { var x = 1; var y = x + 2; print(y); }" "main"
  in
  let n_x = cfg.Cfg.node_of_sid.(0) in
  let n_y = cfg.Cfg.node_of_sid.(1) in
  let n_print = cfg.Cfg.node_of_sid.(2) in
  Alcotest.(check (list int)) "y's x comes from s0"
    [ n_x ]
    (Static_pdg.data_sources pdg n_y
       ~vid:
         (let v =
            List.find
              (fun (v : P.var) -> v.vname = "x")
              (Array.to_list _p.vars)
          in
          v.vid));
  (* print(y) depends on y's definition *)
  let y_vid =
    (List.find (fun (v : P.var) -> v.vname = "y") (Array.to_list _p.vars)).vid
  in
  Alcotest.(check (list int)) "print's y" [ n_y ]
    (Static_pdg.data_sources pdg n_print ~vid:y_vid)

let test_control_edges () =
  let _p, cfg, pdg =
    build "func main() { var c = 1; if (c > 0) { print(1); } else { print(2); } }" "main"
  in
  let cond = cfg.Cfg.node_of_sid.(1) in
  let t = cfg.Cfg.node_of_sid.(2) and e = cfg.Cfg.node_of_sid.(3) in
  Alcotest.(check (list (pair int string))) "then arm"
    [ (cond, "T") ]
    (List.map
       (fun (s, l) ->
         (s, match l with Cfg.True -> "T" | Cfg.False -> "F" | Cfg.Seq -> "S"))
       (Static_pdg.control_parents pdg t));
  Alcotest.(check (list (pair int string))) "else arm"
    [ (cond, "F") ]
    (List.map
       (fun (s, l) ->
         (s, match l with Cfg.True -> "T" | Cfg.False -> "F" | Cfg.Seq -> "S"))
       (Static_pdg.control_parents pdg e))

let test_pdg_matches_dynamic_on_straightline () =
  (* every data dependence the dynamic builder finds must be licensed by
     the static graph (static = superset of dynamic) on a branchy
     program *)
  let src = Workloads.foo3 in
  let s = Ppd.Session.run src in
  let ctl = Ppd.Session.controller s in
  ignore (Ppd.Session.error_node s);
  let g = Ppd.Controller.graph ctl in
  let p = Ppd.Session.prog s in
  let pdgs = Static_pdg.build_program p in
  let sid_of_node n =
    match (Ppd.Dyn_graph.node g n).Ppd.Dyn_graph.nd_kind with
    | Ppd.Dyn_graph.N_singular sid -> Some sid
    | _ -> None
  in
  for dst = 0 to Ppd.Dyn_graph.nnodes g - 1 do
    List.iter
      (fun (src_node, kind) ->
        match (kind, sid_of_node src_node, sid_of_node dst) with
        | Ppd.Dyn_graph.Data v, Some src_sid, Some dst_sid ->
          let fid = p.stmt_fid.(dst_sid) in
          if p.stmt_fid.(src_sid) = fid then begin
            let cfg = pdgs.Static_pdg.cfgs.(fid) in
            let pdg = pdgs.Static_pdg.pdgs.(fid) in
            let statically_allowed =
              List.mem
                cfg.Cfg.node_of_sid.(src_sid)
                (Static_pdg.data_sources pdg cfg.Cfg.node_of_sid.(dst_sid)
                   ~vid:v.P.vid)
            in
            Alcotest.(check bool)
              (Printf.sprintf "dynamic edge s%d->s%d (%s) licensed" src_sid
                 dst_sid v.vname)
              true statically_allowed
          end
        | _ -> ())
      (Ppd.Dyn_graph.preds g dst)
  done

let test_progdb_sites () =
  let p = Util.compile Workloads.racy_bank in
  let db = Progdb.build p in
  let balance =
    (List.find (fun (v : P.var) -> v.vname = "balance") (Array.to_list p.vars)).vid
  in
  (* defined in withdraw (balance = tmp) and used in withdraw + main *)
  Alcotest.(check int) "one def site" 1 (List.length db.def_sites.(balance));
  Alcotest.(check int) "two use sites" 2 (List.length db.use_sites.(balance));
  let defining = Progdb.defining_functions db ~vid:balance in
  let w = Option.get (P.find_func p "withdraw") in
  Alcotest.(check (list int)) "withdraw defines it" [ w.fid ] defining

let test_progdb_report () =
  let p = Util.compile Workloads.racy_bank in
  let db = Progdb.build p in
  let report = Format.asprintf "%a" (Progdb.pp_var_report db) "balance" in
  Alcotest.(check bool) "scope" true (Util.contains ~sub:"shared global" report);
  Alcotest.(check bool) "unknown" true
    (Util.contains ~sub:"no variable"
       (Format.asprintf "%a" (Progdb.pp_var_report db) "zzz"))

let test_progdb_parent () =
  let p =
    Util.compile
      "func main() { var i = 0; while (i < 2) { if (i > 0) { print(i); } i = i + 1; } }"
  in
  let db = Progdb.build p in
  (* print(i) is inside the if, which is inside the while *)
  let print_sid =
    let s = ref (-1) in
    Array.iter
      (fun (st : P.stmt) ->
        match st.desc with P.Sprint _ -> s := st.sid | _ -> ())
      p.stmts;
    !s
  in
  let if_sid = db.parent.(print_sid) in
  Alcotest.(check bool) "print inside if" true
    (match p.stmts.(if_sid).desc with P.Sif _ -> true | _ -> false);
  let while_sid = db.parent.(if_sid) in
  Alcotest.(check bool) "if inside while" true
    (match p.stmts.(while_sid).desc with P.Swhile _ -> true | _ -> false);
  Alcotest.(check int) "while is top level" (-1) db.parent.(while_sid)

let suite =
  ( "static-pdg",
    [
      Alcotest.test_case "data edges" `Quick test_data_edges;
      Alcotest.test_case "control edges" `Quick test_control_edges;
      Alcotest.test_case "dynamic edges licensed statically" `Quick
        test_pdg_matches_dynamic_on_straightline;
      Alcotest.test_case "progdb def/use sites" `Quick test_progdb_sites;
      Alcotest.test_case "progdb report" `Quick test_progdb_report;
      Alcotest.test_case "progdb nesting" `Quick test_progdb_parent;
    ] )
