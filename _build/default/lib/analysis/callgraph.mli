(** Call graph over MPL functions.

    [call] edges come from [x = f(..)] / [f(..);] statements; [spawn]
    edges from process creation. The two are kept apart because a
    spawned function runs in a {e different process}: its effects on
    shared variables are not part of the caller's e-block (they are
    ordered by synchronization edges instead, §6). *)

type t = {
  calls : int list array;  (** fid -> callee fids (deduplicated) *)
  spawns : int list array;  (** fid -> spawned fids (deduplicated) *)
  callers : int list array;  (** fid -> caller fids via [calls] *)
  call_sites : (int * int) list array;
      (** fid -> (sid, callee) for every call statement *)
}

val compute : Lang.Prog.t -> t

val is_leaf : t -> int -> bool
(** A leaf makes no calls (spawns permitted): candidate for the paper's
    §5.4 "don't make e-blocks out of small leaf subroutines" policy. *)

val sccs : t -> int array * int list list
(** Tarjan strongly-connected components over [calls] edges. Returns
    [(comp, comps)] where [comp.(fid)] is the component index and
    [comps] lists components in reverse topological order (callees
    before callers), each as its member fids. *)

val is_recursive : t -> int -> bool
(** Member of a non-trivial SCC, or directly self-recursive. *)
