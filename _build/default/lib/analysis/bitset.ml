type t = { n : int; words : int array }

let word_bits = Sys.int_size (* 63 on 64-bit systems *)

let nwords n = (n + word_bits - 1) / word_bits

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (nwords n) 0 }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of universe %d" i t.n)

let add t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  t.words.(i / word_bits) <-
    t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let copy t = { n = t.n; words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let union_into ~dst src =
  same_universe dst src;
  let changed = ref false in
  for i = 0 to Array.length dst.words - 1 do
    let w = dst.words.(i) lor src.words.(i) in
    if w <> dst.words.(i) then begin
      dst.words.(i) <- w;
      changed := true
    end
  done;
  !changed

let inter_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let diff_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let union a b =
  let r = copy a in
  ignore (union_into ~dst:r b);
  r

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~dst:r b;
  r

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  same_universe a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  same_universe a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then ok := false
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    if t.words.(w) <> 0 then
      for b = 0 to word_bits - 1 do
        if t.words.(w) land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)
