module P = Lang.Prog

module Make (VS : Varset.S) = struct
  type t = { gmod : VS.t array; gref : VS.t array; iterations : int }

  let compute (p : P.t) =
    let nf = Array.length p.funcs in
    let n = p.nvars in
    let globals_only vars =
      List.filter_map
        (fun (v : P.var) -> if P.is_global v then Some v.vid else None)
        vars
    in
    (* Direct per-function global effects. *)
    let dmod =
      Array.map (fun f -> VS.of_list n (globals_only (Use_def.func_defs f))) p.funcs
    in
    let dref =
      Array.map (fun f -> VS.of_list n (globals_only (Use_def.func_uses f))) p.funcs
    in
    let cg = Callgraph.compute p in
    let gmod = Array.map (fun s -> s) dmod in
    let gref = Array.map (fun s -> s) dref in
    (* Round-robin fixpoint; converges in O(depth of call graph) rounds
       and handles recursion without explicit SCC ordering. *)
    let iterations = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      incr iterations;
      for f = 0 to nf - 1 do
        List.iter
          (fun g ->
            let m = VS.union gmod.(f) gmod.(g) in
            if not (VS.equal m gmod.(f)) then begin
              gmod.(f) <- m;
              changed := true
            end;
            let r = VS.union gref.(f) gref.(g) in
            if not (VS.equal r gref.(f)) then begin
              gref.(f) <- r;
              changed := true
            end)
          cg.Callgraph.calls.(f)
      done
    done;
    { gmod; gref; iterations = !iterations }
end

module Default = Make (Varset.Bits)

type t = Default.t = {
  gmod : Varset.t array;
  gref : Varset.t array;
  iterations : int;
}

let compute = Default.compute

let to_vars (p : P.t) set = List.map (fun vid -> p.vars.(vid)) (Varset.elements set)

let gmod_vars p (t : t) fid = to_vars p t.gmod.(fid)

let gref_vars p (t : t) fid = to_vars p t.gref.(fid)
