module P = Lang.Prog

type result = {
  at_entry : Varset.t;
  live_in : Bitset.t array;
  iterations : int;
}

let solve ~exit_uses_globals ?(call_uses = fun _ -> []) ?(call_defs = fun _ -> [])
    (p : P.t) (cfg : Cfg.t) =
  let nnodes = Cfg.nnodes cfg in
  let universe = p.nvars in
  let empty = Bitset.create universe in
  let gen = Array.make nnodes empty in
  let kill = Array.make nnodes empty in
  let set_of vars =
    let s = Bitset.create universe in
    List.iter (fun (v : P.var) -> Bitset.add s v.vid) vars;
    s
  in
  for node = 0 to nnodes - 1 do
    match Cfg.kind cfg node with
    | Cfg.Entry -> ()
    | Cfg.Exit ->
      if exit_uses_globals then
        gen.(node) <- set_of (Array.to_list p.globals)
    | Cfg.Stmt s ->
      let uses = Use_def.direct_uses s in
      let uses =
        match s.desc with
        | P.Scall (_, c) -> uses @ call_uses c.callee
        | _ -> uses
      in
      (* Call defs are may-writes: they never kill upward exposure. *)
      ignore call_defs;
      gen.(node) <- set_of uses;
      kill.(node) <- set_of (Use_def.definite_defs s)
  done;
  let result =
    Dataflow.solve ~nnodes ~preds:(Cfg.pred_ids cfg) ~succs:(Cfg.succ_ids cfg)
      ~direction:Dataflow.Backward
      ~gen:(fun n -> gen.(n))
      ~kill:(fun n -> kill.(n))
      ~universe ~boundary:[]
  in
  let live_in = result.Dataflow.live_in in
  let at_entry =
    Varset.of_list universe (Bitset.elements live_in.(cfg.entry))
  in
  { at_entry; live_in; iterations = result.Dataflow.iterations }

let upward_exposed ?call_uses ?call_defs p cfg =
  solve ~exit_uses_globals:false ?call_uses ?call_defs p cfg

let liveness ?call_uses ?call_defs p cfg =
  solve ~exit_uses_globals:true ?call_uses ?call_defs p cfg
