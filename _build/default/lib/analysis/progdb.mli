(** The program database (§3.2.1, §4.1): "information on the program
    text such as the places where an identifier is defined or used",
    plus the semantic-analysis results other phases consult — the
    MOD/REF summaries and call sites.

    Used by the PPD controller to locate the log intervals whose traces
    can define a requested variable, and by the CLI to answer
    [defs]/[uses] queries. *)

type t = {
  prog : Lang.Prog.t;
  def_sites : int list array;  (** vid -> sids that may write it *)
  use_sites : int list array;  (** vid -> sids that may read it *)
  parent : int array;  (** sid -> enclosing structured stmt's sid, or -1 *)
  summary : Interproc.t;
  callgraph : Callgraph.t;
}

val build : ?summary:Interproc.t -> Lang.Prog.t -> t

val lookup_var : t -> string -> Lang.Prog.var list
(** All variables with this name (a global, or one local per function
    using the name). *)

val defining_functions : t -> vid:int -> int list
(** Functions containing a statement that may write [vid]; for globals
    this consults GMOD so callers of writers are excluded (they log the
    write in the callee's own interval). *)

val pp_var_report : t -> Format.formatter -> string -> unit
(** Human-readable listing of where a name is declared, defined and
    used. *)
