lib/analysis/cfg.ml: Array Bitset Format Lang List
