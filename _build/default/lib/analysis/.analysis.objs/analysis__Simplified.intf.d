lib/analysis/simplified.mli: Cfg Format Hashtbl Lang Varset
