lib/analysis/use_def.mli: Lang
