lib/analysis/callgraph.ml: Array Int Lang List
