lib/analysis/static_race.mli: Cfg Format Lang
