lib/analysis/live.ml: Array Bitset Cfg Dataflow Lang List Use_def Varset
