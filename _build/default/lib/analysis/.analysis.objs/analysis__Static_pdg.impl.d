lib/analysis/static_pdg.ml: Array Cfg Dominance Format Interproc Lang List Reaching_defs
