lib/analysis/static_pdg.mli: Cfg Dominance Format Interproc Lang Reaching_defs
