lib/analysis/eblock.mli: Callgraph Cfg Format Hashtbl Interproc Lang Simplified Varset
