lib/analysis/varset.mli: Format Lang
