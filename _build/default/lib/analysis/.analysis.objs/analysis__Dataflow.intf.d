lib/analysis/dataflow.mli: Bitset
