lib/analysis/dominance.ml: Array Bitset Cfg List
