lib/analysis/callgraph.mli: Lang
