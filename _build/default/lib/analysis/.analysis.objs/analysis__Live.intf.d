lib/analysis/live.mli: Bitset Cfg Lang Varset
