lib/analysis/reaching_defs.mli: Bitset Cfg Interproc Lang
