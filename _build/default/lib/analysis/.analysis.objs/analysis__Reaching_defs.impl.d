lib/analysis/reaching_defs.ml: Array Bitset Cfg Dataflow Int Interproc Lang List Use_def
