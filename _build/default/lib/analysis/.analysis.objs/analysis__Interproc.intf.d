lib/analysis/interproc.mli: Lang Varset
