lib/analysis/progdb.ml: Array Callgraph Format Interproc Lang List Printf String Use_def
