lib/analysis/varset.ml: Array Bitset Format Int Lang List
