lib/analysis/dataflow.ml: Array Bitset List Queue
