lib/analysis/eblock.ml: Array Callgraph Cfg Format Hashtbl Int Interproc Lang List Live Simplified Use_def Varset
