lib/analysis/simplified.ml: Array Cfg Format Hashtbl Lang List Printf String Use_def Varset
