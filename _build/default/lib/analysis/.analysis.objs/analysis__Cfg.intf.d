lib/analysis/cfg.mli: Bitset Format Lang
