lib/analysis/static_race.ml: Array Bitset Callgraph Cfg Dataflow Format Fun Hashtbl Lang List Printf String Use_def
