lib/analysis/interproc.ml: Array Callgraph Lang List Use_def Varset
