lib/analysis/bitset.ml: Array Format List Printf Sys
