lib/analysis/progdb.mli: Callgraph Format Interproc Lang
