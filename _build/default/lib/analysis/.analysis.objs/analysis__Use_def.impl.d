lib/analysis/use_def.ml: Lang List
