type direction = Forward | Backward

type result = {
  live_in : Bitset.t array;
  live_out : Bitset.t array;
  iterations : int;
}

let solve ~nnodes ~preds ~succs ~direction ~gen ~kill ~universe ~boundary =
  (* Normalise to a forward problem over [flow_preds]/[flow_succs]. *)
  let flow_preds, flow_succs =
    match direction with Forward -> (preds, succs) | Backward -> (succs, preds)
  in
  let in_ = Array.init nnodes (fun _ -> Bitset.create universe) in
  let out = Array.init nnodes (fun _ -> Bitset.create universe) in
  List.iter (fun (n, fact) -> ignore (Bitset.union_into ~dst:in_.(n) fact)) boundary;
  (* Simple worklist: push all nodes, recompute until stable. *)
  let queue = Queue.create () in
  let queued = Array.make nnodes false in
  let push n =
    if not queued.(n) then begin
      queued.(n) <- true;
      Queue.add n queue
    end
  in
  for n = 0 to nnodes - 1 do
    push n
  done;
  let iterations = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.take queue in
    queued.(n) <- false;
    incr iterations;
    (* in(n) = ∪ out(flow_pred) joined with any boundary seed already
       stored in in_(n). *)
    List.iter
      (fun p -> ignore (Bitset.union_into ~dst:in_.(n) out.(p)))
      (flow_preds n);
    let fresh = Bitset.copy in_.(n) in
    Bitset.diff_into ~dst:fresh (kill n);
    ignore (Bitset.union_into ~dst:fresh (gen n));
    if not (Bitset.equal fresh out.(n)) then begin
      ignore (Bitset.union_into ~dst:out.(n) fresh);
      List.iter push (flow_succs n)
    end
  done;
  match direction with
  | Forward -> { live_in = in_; live_out = out; iterations = !iterations }
  | Backward -> { live_in = out; live_out = in_; iterations = !iterations }
