type t = { idom : int array; root : int; order : int array }

(* Reverse postorder of the subgraph reachable from [root]. *)
let rev_postorder ~nnodes ~succs ~root =
  let visited = Array.make nnodes false in
  let out = ref [] in
  (* Iterative DFS with an explicit stack of (node, remaining succs). *)
  let rec visit n =
    if not visited.(n) then begin
      visited.(n) <- true;
      List.iter visit (succs n);
      out := n :: !out
    end
  in
  visit root;
  Array.of_list !out

let compute ~nnodes ~succs ~root =
  let rpo = rev_postorder ~nnodes ~succs ~root in
  let order = Array.make nnodes (-1) in
  Array.iteri (fun rank n -> order.(n) <- rank) rpo;
  (* Predecessor lists restricted to reachable nodes. *)
  let preds = Array.make nnodes [] in
  Array.iter
    (fun n ->
      List.iter
        (fun s -> if order.(s) >= 0 then preds.(s) <- n :: preds.(s))
        (succs n))
    rpo;
  let idom = Array.make nnodes (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if order.(a) > order.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
        if n <> root then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with
                  | None -> Some p
                  | Some a -> Some (intersect a p))
              None preds.(n)
          in
          match new_idom with
          | None -> ()
          | Some d ->
            if idom.(n) <> d then begin
              idom.(n) <- d;
              changed := true
            end
        end)
      rpo
  done;
  { idom; root; order }

let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else begin
    let rec up n = if n = a then true else if n = t.root then false else up t.idom.(n) in
    up b
  end

let children t =
  let kids = Array.make (Array.length t.idom) [] in
  Array.iteri
    (fun n d -> if d >= 0 && n <> t.root then kids.(d) <- n :: kids.(d))
    t.idom;
  kids

let dominators (cfg : Cfg.t) =
  compute ~nnodes:(Cfg.nnodes cfg) ~succs:(Cfg.succ_ids cfg) ~root:cfg.entry

let postdominators (cfg : Cfg.t) =
  compute ~nnodes:(Cfg.nnodes cfg) ~succs:(Cfg.pred_ids cfg) ~root:cfg.exit

let control_deps (cfg : Cfg.t) (pdom : t) =
  let deps = Array.make (Cfg.nnodes cfg) [] in
  Array.iteri
    (fun u out ->
      List.iter
        (fun (v, label) ->
          (* Skip edges whose endpoints can't reach EXIT. *)
          if pdom.idom.(u) >= 0 && pdom.idom.(v) >= 0 then
            if not (dominates pdom v u) then begin
              let stop = pdom.idom.(u) in
              let rec walk w =
                if w <> stop then begin
                  deps.(w) <- (u, label) :: deps.(w);
                  if w <> pdom.root then walk pdom.idom.(w)
                end
              in
              walk v
            end)
        out)
    cfg.succs;
  (* Statements governed by no branch are control dependent on ENTRY. *)
  let reach = Cfg.reachable cfg in
  Array.iteri
    (fun n k ->
      match k with
      | Cfg.Stmt _ when deps.(n) = [] && Bitset.mem reach n ->
        deps.(n) <- [ (cfg.entry, Cfg.Seq) ]
      | Cfg.Stmt _ | Cfg.Entry | Cfg.Exit -> ())
    cfg.kinds;
  deps
