module P = Lang.Prog

type def_site = { def_id : int; def_node : int; def_var : P.var }

type t = {
  cfg : Cfg.t;
  sites : def_site array;
  sites_of_var : int list array;
  reach_in : Bitset.t array;
  iterations : int;
  node_uses : P.var list array;  (* per node, incl. callee GREF *)
  node_defs : P.var list array;  (* per node, incl. callee GMOD *)
  node_definite : P.var list array;
}

let visible_vars (p : P.t) (f : P.func) =
  Array.to_list p.globals @ f.locals

let node_effects ?summary (p : P.t) (cfg : Cfg.t) =
  let n = Cfg.nnodes cfg in
  let uses = Array.make n [] in
  let defs = Array.make n [] in
  let definite = Array.make n [] in
  let callee_mod fid =
    match summary with
    | None -> []
    | Some s -> Interproc.gmod_vars p s fid
  in
  let callee_ref fid =
    match summary with
    | None -> []
    | Some s -> Interproc.gref_vars p s fid
  in
  for node = 0 to n - 1 do
    match Cfg.kind cfg node with
    | Cfg.Entry ->
      (* ENTRY defines everything visible (definitely). *)
      let vs = visible_vars p cfg.func in
      defs.(node) <- vs;
      definite.(node) <- vs
    | Cfg.Exit -> ()
    | Cfg.Stmt s ->
      let u = Use_def.direct_uses s in
      let d = Use_def.direct_defs s in
      let dd = Use_def.definite_defs s in
      (match s.desc with
      | P.Scall (_, c) ->
        uses.(node) <- u @ callee_ref c.callee;
        defs.(node) <- d @ callee_mod c.callee;
        (* callee effects are may-defs: keep only the direct definite *)
        definite.(node) <- dd
      | _ ->
        uses.(node) <- u;
        defs.(node) <- d;
        definite.(node) <- dd)
  done;
  (uses, defs, definite)

let compute ?summary (p : P.t) (cfg : Cfg.t) =
  let nnodes = Cfg.nnodes cfg in
  let node_uses, node_defs, node_definite = node_effects ?summary p cfg in
  (* Enumerate definition sites. *)
  let sites_rev = ref [] in
  let nsites = ref 0 in
  let sites_at = Array.make nnodes [] in
  for node = 0 to nnodes - 1 do
    List.iter
      (fun v ->
        let site = { def_id = !nsites; def_node = node; def_var = v } in
        incr nsites;
        sites_rev := site :: !sites_rev;
        sites_at.(node) <- site :: sites_at.(node))
      (List.sort_uniq
         (fun (a : P.var) b -> Int.compare a.vid b.vid)
         node_defs.(node))
  done;
  let sites = Array.of_list (List.rev !sites_rev) in
  let universe = !nsites in
  let sites_of_var = Array.make p.nvars [] in
  Array.iter
    (fun s -> sites_of_var.(s.def_var.vid) <- s.def_id :: sites_of_var.(s.def_var.vid))
    sites;
  let gen = Array.make nnodes (Bitset.create universe) in
  let kill = Array.make nnodes (Bitset.create universe) in
  for node = 0 to nnodes - 1 do
    let g = Bitset.create universe in
    List.iter (fun s -> Bitset.add g s.def_id) sites_at.(node);
    gen.(node) <- g;
    let k = Bitset.create universe in
    List.iter
      (fun (v : P.var) ->
        List.iter (fun id -> Bitset.add k id) sites_of_var.(v.vid))
      node_definite.(node);
    (* a definite def kills other sites but generates its own *)
    Bitset.diff_into ~dst:k g;
    kill.(node) <- k
  done;
  let result =
    Dataflow.solve ~nnodes ~preds:(Cfg.pred_ids cfg) ~succs:(Cfg.succ_ids cfg)
      ~direction:Dataflow.Forward
      ~gen:(fun n -> gen.(n))
      ~kill:(fun n -> kill.(n))
      ~universe ~boundary:[]
  in
  {
    cfg;
    sites;
    sites_of_var;
    reach_in = result.Dataflow.live_in;
    iterations = result.Dataflow.iterations;
    node_uses;
    node_defs;
    node_definite;
  }

let reaching t ~node ~vid =
  List.filter_map
    (fun id -> if Bitset.mem t.reach_in.(node) id then Some t.sites.(id) else None)
    t.sites_of_var.(vid)

let du_edges t =
  let edges = ref [] in
  for node = 0 to Cfg.nnodes t.cfg - 1 do
    let used =
      List.sort_uniq
        (fun (a : P.var) b -> Int.compare a.vid b.vid)
        t.node_uses.(node)
    in
    List.iter
      (fun (v : P.var) ->
        List.iter
          (fun site -> edges := (site.def_node, node, v) :: !edges)
          (reaching t ~node ~vid:v.vid))
      used
  done;
  List.rev !edges
