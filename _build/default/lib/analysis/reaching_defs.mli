(** Reaching definitions and def-use chains over a function CFG.

    Definition sites are (node, variable) pairs; ENTRY is a definition
    site for every variable visible in the function (parameters receive
    their argument values, globals their pre-invocation values, locals
    are "defined" as uninitialised), so every use has at least one
    reaching definition and ENTRY-reaching uses are exactly the values a
    prelog must capture.

    Call statements additionally define their callee's GMOD globals and
    use its GREF globals when a summary is supplied — these are may
    definitions and never kill. *)

type def_site = { def_id : int; def_node : int; def_var : Lang.Prog.var }

type t = {
  cfg : Cfg.t;
  sites : def_site array;  (** indexed by [def_id] *)
  sites_of_var : int list array;  (** vid -> def_ids defining it *)
  reach_in : Bitset.t array;  (** node -> def_ids reaching its entry *)
  iterations : int;
  node_uses : Lang.Prog.var list array;
      (** per-node uses including callee GREF globals *)
  node_defs : Lang.Prog.var list array;
      (** per-node defs including callee GMOD globals *)
  node_definite : Lang.Prog.var list array;  (** killing defs only *)
}

val compute : ?summary:Interproc.t -> Lang.Prog.t -> Cfg.t -> t

val reaching : t -> node:int -> vid:int -> def_site list
(** Definitions of [vid] reaching the entry of [node]. *)

val du_edges : t -> (int * int * Lang.Prog.var) list
(** All def-use chains as [(def_node, use_node, var)] triples, the data
    dependence edges of the static PDG. Uses at a node are its
    {!Use_def.direct_uses} plus callee GREF globals if a summary was
    supplied at {!compute} time. *)
