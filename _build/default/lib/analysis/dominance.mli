(** Dominator trees via the Cooper–Harvey–Kennedy algorithm.

    Generic over any rooted digraph given as successor lists, so the
    same code computes dominators (over the CFG from ENTRY) and
    postdominators (over the reversed CFG from EXIT). Nodes unreachable
    from the root get [idom = -1] and are ignored. *)

type t = {
  idom : int array;  (** immediate dominator; root maps to itself, unreachable nodes to [-1] *)
  root : int;
  order : int array;  (** reverse-postorder rank; [-1] if unreachable *)
}

val compute : nnodes:int -> succs:(int -> int list) -> root:int -> t

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)

val children : t -> int list array
(** Dominator-tree children. *)

val postdominators : Cfg.t -> t
(** Postdominator tree of a CFG (dominators of the reverse graph rooted
    at EXIT). Nodes that cannot reach EXIT (e.g. bodies of infinite
    loops) are unreachable here and get [-1]. *)

val dominators : Cfg.t -> t

val control_deps : Cfg.t -> t -> (int * Cfg.edge_label) list array
(** [control_deps cfg pdom] computes, per CFG node, the list of nodes it
    is directly control dependent on, labelled with the branch edge that
    decides it (Ferrante–Ottenstein–Warren construction: for each CFG
    edge [(u,v)] where [v] does not postdominate [u], every node on the
    postdominator-tree path from [v] up to, but excluding, [ipdom(u)] is
    control dependent on [u]). Statements not governed by any branch are
    control dependent on ENTRY. *)
