(** Syntactic per-statement USE and DEF sets.

    These are the building blocks of the paper's USED(i)/DEFINED(i)
    e-block sets (§5.1): a statement's direct variable reads and writes,
    before any interprocedural extension. Nested bodies of [if]/[while]
    are {e not} included — at CFG granularity each nested statement is
    its own node.

    Array variables are treated as scalars (any element access reads or
    writes the whole array; the paper defers pointer/alias analysis to
    future work, §7). Consequently an array-element write is {e not} a
    definite (killing) definition, and it also counts as a {e use} of
    the array: under the whole-array abstraction it is a
    read-modify-write, so the previous array state flows through it
    (prelogs capture partially-overwritten arrays, and dynamic
    dependence chains link successive element writes). *)

val direct_uses : Lang.Prog.stmt -> Lang.Prog.var list
(** Variables read when the statement itself executes: right-hand
    sides, predicates, indices, arguments, send payloads. Call/spawn
    statements do {e not} include callee effects (see {!Interproc}). *)

val direct_defs : Lang.Prog.stmt -> Lang.Prog.var list
(** Variables written by the statement itself: assignment targets,
    receive targets, call/spawn/join result targets. *)

val definite_defs : Lang.Prog.stmt -> Lang.Prog.var list
(** The subset of {!direct_defs} guaranteed to overwrite the whole
    variable (used as dataflow kills): scalar targets only. *)

val func_uses : Lang.Prog.func -> Lang.Prog.var list
(** Union of {!direct_uses} over every statement of the function
    (duplicates possible). *)

val func_defs : Lang.Prog.func -> Lang.Prog.var list
