module type S = sig
  type t

  val name : string

  val empty : int -> t

  val add : int -> t -> t

  val mem : int -> t -> bool

  val union : t -> t -> t

  val inter : t -> t -> t

  val diff : t -> t -> t

  val equal : t -> t -> bool

  val subset : t -> t -> bool

  val disjoint : t -> t -> bool

  val is_empty : t -> bool

  val cardinal : t -> int

  val elements : t -> int list

  val of_list : int -> int list -> t

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

  val pp : Format.formatter -> t -> unit
end

module Bits : S = struct
  type t = Bitset.t

  let name = "bitmask"

  let empty n = Bitset.create n

  let add i t =
    let t' = Bitset.copy t in
    Bitset.add t' i;
    t'

  let mem i t = Bitset.mem t i

  let union = Bitset.union

  let inter = Bitset.inter

  let diff = Bitset.diff

  let equal = Bitset.equal

  let subset = Bitset.subset

  let disjoint = Bitset.disjoint

  let is_empty = Bitset.is_empty

  let cardinal = Bitset.cardinal

  let elements = Bitset.elements

  let of_list = Bitset.of_list

  let fold = Bitset.fold

  let pp = Bitset.pp
end

module Lists : S = struct
  (* Strictly increasing, duplicate-free int lists. The universe size is
     irrelevant to the representation but kept out of the type to match
     the signature; bounds are not checked. *)
  type t = int list

  let name = "list"

  let empty _n = []

  let rec add i = function
    | [] -> [ i ]
    | x :: rest as l ->
      if i < x then i :: l else if i = x then l else x :: add i rest

  let rec mem i = function
    | [] -> false
    | x :: rest -> if x = i then true else if x > i then false else mem i rest

  let rec union a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
      if x < y then x :: union xs b
      else if x > y then y :: union a ys
      else x :: union xs ys

  let rec inter a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | x :: xs, y :: ys ->
      if x < y then inter xs b
      else if x > y then inter a ys
      else x :: inter xs ys

  let rec diff a b =
    match (a, b) with
    | [], _ -> []
    | l, [] -> l
    | x :: xs, y :: ys ->
      if x < y then x :: diff xs b else if x > y then diff a ys else diff xs ys

  let equal = List.equal Int.equal

  let rec subset a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys ->
      if x < y then false else if x > y then subset a ys else subset xs ys

  let rec disjoint a b =
    match (a, b) with
    | [], _ | _, [] -> true
    | x :: xs, y :: ys ->
      if x < y then disjoint xs b
      else if x > y then disjoint a ys
      else false

  let is_empty = function [] -> true | _ :: _ -> false

  let cardinal = List.length

  let elements t = t

  let of_list _n l = List.sort_uniq Int.compare l

  let fold f t init = List.fold_left (fun acc i -> f i acc) init t

  let pp ppf t =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      t
end

include Bits

let vars n vs = of_list n (List.map (fun v -> v.Lang.Prog.vid) vs)

let pp_named (p : Lang.Prog.t) ppf t =
  let names = List.map (fun i -> p.vars.(i).vname) (elements t) in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    names
