module P = Lang.Prog

type edge = Control of Cfg.edge_label | Data of P.var

type t = {
  cfg : Cfg.t;
  pdom : Dominance.t;
  preds_of : (int * edge) list array;
  succs_of : (int * edge) list array;
  du : Reaching_defs.t;
}

let build ?summary (p : P.t) (cfg : Cfg.t) =
  let pdom = Dominance.postdominators cfg in
  let nnodes = Cfg.nnodes cfg in
  let preds_of = Array.make nnodes [] in
  let succs_of = Array.make nnodes [] in
  let add_edge src dst e =
    preds_of.(dst) <- (src, e) :: preds_of.(dst);
    succs_of.(src) <- (dst, e) :: succs_of.(src)
  in
  let cdeps = Dominance.control_deps cfg pdom in
  Array.iteri
    (fun node deps ->
      List.iter (fun (src, label) -> add_edge src node (Control label)) deps)
    cdeps;
  let du = Reaching_defs.compute ?summary p cfg in
  List.iter
    (fun (def_node, use_node, v) -> add_edge def_node use_node (Data v))
    (Reaching_defs.du_edges du);
  { cfg; pdom; preds_of; succs_of; du }

let control_parents t node =
  List.filter_map
    (fun (src, e) ->
      match e with Control label -> Some (src, label) | Data _ -> None)
    t.preds_of.(node)

let data_sources t node ~vid =
  List.filter_map
    (fun (src, e) ->
      match e with
      | Data v when v.P.vid = vid -> Some src
      | Data _ | Control _ -> None)
    t.preds_of.(node)

let pp_node (cfg : Cfg.t) ppf node =
  match Cfg.kind cfg node with
  | Cfg.Entry -> Format.pp_print_string ppf "ENTRY"
  | Cfg.Exit -> Format.pp_print_string ppf "EXIT"
  | Cfg.Stmt s -> Format.fprintf ppf "s%d" s.P.sid

let pp (_p : P.t) ppf t =
  Format.fprintf ppf "@[<v>pdg %s:" t.cfg.Cfg.func.P.fname;
  Array.iteri
    (fun node incoming ->
      if incoming <> [] then begin
        Format.fprintf ppf "@,  %a <-" (pp_node t.cfg) node;
        List.iter
          (fun (src, e) ->
            match e with
            | Control label ->
              let l =
                match label with
                | Cfg.Seq -> ""
                | Cfg.True -> "T"
                | Cfg.False -> "F"
              in
              Format.fprintf ppf " ctrl(%a%s)" (pp_node t.cfg) src l
            | Data v ->
              Format.fprintf ppf " data(%a,%s)" (pp_node t.cfg) src v.P.vname)
          (List.rev incoming)
      end)
    t.preds_of;
  Format.fprintf ppf "@]"

type program_pdgs = {
  prog : P.t;
  summary : Interproc.t;
  cfgs : Cfg.t array;
  pdgs : t array;
}

let build_program (p : P.t) =
  let summary = Interproc.compute p in
  let cfgs = Array.map (fun f -> Cfg.build p f) p.funcs in
  let pdgs = Array.map (fun cfg -> build ~summary p cfg) cfgs in
  { prog = p; summary; cfgs; pdgs }
