(** Iterative bit-vector dataflow framework.

    Solves gen/kill problems with union as the join, in either
    direction, using a FIFO worklist. This is the engine behind
    {!Reaching_defs} and {!Live} (the "data flow analysis commonly used
    in optimizing compilers" the paper leans on, §1/§3.1). *)

type direction = Forward | Backward

type result = {
  live_in : Bitset.t array;  (** fact at node entry (forward: join of preds) *)
  live_out : Bitset.t array;  (** fact at node exit *)
  iterations : int;  (** node visits until fixpoint, for benchmarks *)
}

val solve :
  nnodes:int ->
  preds:(int -> int list) ->
  succs:(int -> int list) ->
  direction:direction ->
  gen:(int -> Bitset.t) ->
  kill:(int -> Bitset.t) ->
  universe:int ->
  boundary:(int * Bitset.t) list ->
  result
(** [solve ...] computes the maximal-fixpoint solution of
    [out(n) = gen(n) ∪ (in(n) \ kill(n))] with
    [in(n) = ⋃ out(pred n)] (direction-adjusted). [boundary] seeds the
    in-fact of the given nodes (e.g. ENTRY for forward problems). *)
