(** Dense mutable bitsets over [0 .. n-1].

    The workhorse set representation of the analyses (the paper's §7
    notes that bit-mask representations of variable sets "can have a
    large payoff"; see {!Varset} for the list-based alternative used in
    the ablation benchmark). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val length : t -> int
(** Universe size. *)

val add : t -> int -> unit

val remove : t -> int -> unit

val mem : t -> int -> bool

val is_empty : t -> bool

val cardinal : t -> int

val copy : t -> t

val clear : t -> unit

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] adds [src] to [dst]; returns [true] iff [dst]
    changed. The primitive used by fixpoint loops. *)

val inter_into : dst:t -> t -> unit

val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] removes every element of [src] from [dst]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool

val disjoint : t -> t -> bool

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit
(** Prints ["{1, 5, 7}"]. *)
