module P = Lang.Prog

type t = {
  prog : P.t;
  def_sites : int list array;
  use_sites : int list array;
  parent : int array;
  summary : Interproc.t;
  callgraph : Callgraph.t;
}

let build ?summary (p : P.t) =
  let summary = match summary with Some s -> s | None -> Interproc.compute p in
  let callgraph = Callgraph.compute p in
  let def_sites = Array.make p.nvars [] in
  let use_sites = Array.make p.nvars [] in
  let nstmts = Array.length p.stmts in
  let parent = Array.make nstmts (-1) in
  Array.iter
    (fun (f : P.func) ->
      let rec walk parent_sid stmts =
        List.iter
          (fun (s : P.stmt) ->
            parent.(s.sid) <- parent_sid;
            List.iter
              (fun (v : P.var) ->
                def_sites.(v.vid) <- s.sid :: def_sites.(v.vid))
              (Use_def.direct_defs s);
            List.iter
              (fun (v : P.var) ->
                use_sites.(v.vid) <- s.sid :: use_sites.(v.vid))
              (Use_def.direct_uses s);
            match s.desc with
            | P.Sif (_, t, e) ->
              walk s.sid t;
              walk s.sid e
            | P.Swhile (_, b) -> walk s.sid b
            | P.Sassign _ | P.Scall _ | P.Sspawn _ | P.Sjoin _ | P.Sreturn _
            | P.Sp _ | P.Sv _ | P.Ssend _ | P.Srecv _ | P.Sprint _
            | P.Sassert _ ->
              ())
          stmts
      in
      walk (-1) f.body)
    p.funcs;
  let def_sites = Array.map List.rev def_sites in
  let use_sites = Array.map List.rev use_sites in
  { prog = p; def_sites; use_sites; parent; summary; callgraph }

let lookup_var t name =
  Array.to_list t.prog.vars
  |> List.filter (fun (v : P.var) -> String.equal v.vname name)

let defining_functions t ~vid =
  let v = t.prog.vars.(vid) in
  if P.is_global v then
    Array.to_list t.prog.funcs
    |> List.filter_map (fun (f : P.func) ->
           let direct =
             List.exists
               (fun sid -> t.prog.stmt_fid.(sid) = f.fid)
               t.def_sites.(vid)
           in
           if direct then Some f.fid else None)
  else [ v.vfid ]

let pp_var_report t ppf name =
  match lookup_var t name with
  | [] -> Format.fprintf ppf "no variable named '%s'" name
  | vars ->
    Format.fprintf ppf "@[<v>";
    List.iteri
      (fun i (v : P.var) ->
        if i > 0 then Format.fprintf ppf "@,";
        let where =
          match v.vscope with
          | P.Global _ -> "shared global"
          | P.Local _ ->
            Printf.sprintf "local of %s" t.prog.funcs.(v.vfid).fname
        in
        let sids l =
          String.concat ", "
            (List.map (fun sid -> "s" ^ string_of_int sid) l)
        in
        Format.fprintf ppf "%s (vid %d, %s)@,  defined at: %s@,  used at: %s"
          v.vname v.vid where
          (sids t.def_sites.(v.vid))
          (sids t.use_sites.(v.vid)))
      vars;
    Format.fprintf ppf "@]"
