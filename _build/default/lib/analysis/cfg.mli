(** Per-function control-flow graphs at statement granularity.

    Nodes are ENTRY, EXIT and one node per statement (including [if] /
    [while] predicates, which become branch nodes with [True]/[False]
    out-edges). Matching the paper's graphs, there is no basic-block
    merging: each CFG node is one program component. *)

type edge_label = Seq | True | False

type node_kind = Entry | Exit | Stmt of Lang.Prog.stmt

type t = {
  func : Lang.Prog.func;
  kinds : node_kind array;  (** node id -> kind *)
  succs : (int * edge_label) list array;
  preds : (int * edge_label) list array;
  entry : int;
  exit : int;
  node_of_sid : int array;
      (** statement id -> node id; only meaningful for sids of this
          function, [-1] elsewhere. Indexed by program-wide sid. *)
}

val build : Lang.Prog.t -> Lang.Prog.func -> t

val nnodes : t -> int

val kind : t -> int -> node_kind

val stmt_of_node : t -> int -> Lang.Prog.stmt option

val succ_ids : t -> int -> int list

val pred_ids : t -> int -> int list

val is_branch : t -> int -> bool
(** True for [if]/[while] predicate nodes. *)

val reachable : t -> Bitset.t
(** Nodes reachable from ENTRY. *)

val pp : Format.formatter -> t -> unit
(** Debug dump: one line per node with its successors. *)
