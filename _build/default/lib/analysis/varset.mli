(** Variable sets with interchangeable representations.

    The paper (§7) observes that "using bit-mask representations for
    sets of variables (as opposed to a list structure) can have a large
    payoff" in the debugging-phase algorithms. We provide both behind
    one (persistent) signature so the interprocedural analysis can be
    functorised over the representation and benchmarked (table T4).

    Elements are variable ids ([Prog.var.vid]); the universe size is the
    program's [nvars]. *)

module type S = sig
  type t

  val name : string
  (** Representation name shown in benchmark output. *)

  val empty : int -> t
  (** [empty n] over universe [0..n-1]. *)

  val add : int -> t -> t

  val mem : int -> t -> bool

  val union : t -> t -> t

  val inter : t -> t -> t

  val diff : t -> t -> t

  val equal : t -> t -> bool

  val subset : t -> t -> bool

  val disjoint : t -> t -> bool

  val is_empty : t -> bool

  val cardinal : t -> int

  val elements : t -> int list

  val of_list : int -> int list -> t

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

  val pp : Format.formatter -> t -> unit
end

module Bits : S
(** Bit-mask representation (copy-on-write over {!Bitset}). *)

module Lists : S
(** Sorted strictly-increasing int list representation. *)

include S with type t = Bits.t
(** The default representation used throughout the analyses. *)

val vars : int -> Lang.Prog.var list -> t
(** [vars n vs] builds the default-representation set of [vs]' ids. *)

val pp_named : Lang.Prog.t -> Format.formatter -> t -> unit
(** Render using variable names, e.g. ["{a, b, sv}"]. *)
