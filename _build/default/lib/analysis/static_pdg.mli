(** Static program dependence graphs (§4.1).

    Per function: CFG nodes plus control dependence edges
    (Ferrante–Ottenstein–Warren over the postdominator tree) and data
    dependence edges (def-use chains from {!Reaching_defs}). This is the
    paper's variation of the Kuck program dependence graph: it shows the
    {e possible} dependences, against which the PPD controller resolves
    the {e actual} ones when building dynamic graphs. *)

type edge =
  | Control of Cfg.edge_label  (** which branch arm governs the target *)
  | Data of Lang.Prog.var

type t = {
  cfg : Cfg.t;
  pdom : Dominance.t;
  preds_of : (int * edge) list array;
      (** node -> its dependence sources (incoming dependence edges) *)
  succs_of : (int * edge) list array;
  du : Reaching_defs.t;
}

val build : ?summary:Interproc.t -> Lang.Prog.t -> Cfg.t -> t

val control_parents : t -> int -> (int * Cfg.edge_label) list
(** The nodes this node is directly control dependent on. *)

val data_sources : t -> int -> vid:int -> int list
(** CFG nodes whose definition of [vid] may reach this node's use. *)

val pp : Lang.Prog.t -> Format.formatter -> t -> unit
(** Per-node dump of dependences, used in golden tests. *)

type program_pdgs = {
  prog : Lang.Prog.t;
  summary : Interproc.t;
  cfgs : Cfg.t array;  (** per fid *)
  pdgs : t array;  (** per fid *)
}

val build_program : Lang.Prog.t -> program_pdgs
(** Build CFGs + PDGs for every function with a shared MOD/REF summary. *)
