(** Interprocedural MOD/REF analysis over shared (global) variables.

    Following the flow-insensitive side-effect analyses the paper cites
    (Banning '79, Cooper–Kennedy–Torczon '86): [gmod f] is the set of
    globals possibly written during an invocation of [f], including its
    transitive callees; [gref f] the globals possibly read. Spawned
    functions are excluded — they execute in another process and their
    shared accesses belong to that process's own e-blocks.

    The computation is a fixpoint over the call graph (round-robin over
    SCCs handles recursion). It is functorised over the set
    representation to support the paper's §7 bitmask-vs-list ablation
    (benchmark T4). *)

module Make (VS : Varset.S) : sig
  type t = {
    gmod : VS.t array;  (** fid -> globals possibly written *)
    gref : VS.t array;  (** fid -> globals possibly read *)
    iterations : int;  (** fixpoint rounds, for benchmarks *)
  }

  val compute : Lang.Prog.t -> t
end

type t = {
  gmod : Varset.t array;
  gref : Varset.t array;
  iterations : int;
}

val compute : Lang.Prog.t -> t
(** Default (bitmask) instantiation. *)

val gmod_vars : Lang.Prog.t -> t -> int -> Lang.Prog.var list
(** [gmod_vars p s fid]: {!t.gmod} of [fid] as variable records. *)

val gref_vars : Lang.Prog.t -> t -> int -> Lang.Prog.var list
