module P = Lang.Prog

type edge_label = Seq | True | False

type node_kind = Entry | Exit | Stmt of P.stmt

type t = {
  func : P.func;
  kinds : node_kind array;
  succs : (int * edge_label) list array;
  preds : (int * edge_label) list array;
  entry : int;
  exit : int;
  node_of_sid : int array;
}

type builder = {
  mutable bkinds : node_kind list;  (* reversed *)
  mutable nnodes : int;
  mutable edges : (int * int * edge_label) list;
}

let new_node b kind =
  let id = b.nnodes in
  b.bkinds <- kind :: b.bkinds;
  b.nnodes <- b.nnodes + 1;
  id

let add_edge b src dst label = b.edges <- (src, dst, label) :: b.edges

(* A dangling edge: a (node, label) pair waiting for its target. *)
let connect b dangling target =
  List.iter (fun (src, label) -> add_edge b src target label) dangling

(* Build the CFG of [stmts], entered via [dangling] edges; [exit_node] is
   the function EXIT (target of returns). Returns the out-dangling
   edges. *)
let rec build_stmts b dangling exit_node stmts =
  List.fold_left (fun dangling s -> build_stmt b dangling exit_node s)
    dangling stmts

and build_stmt b dangling exit_node (s : P.stmt) =
  match s.desc with
  | P.Sif (_, then_, else_) ->
    let n = new_node b (Stmt s) in
    connect b dangling n;
    let then_out = build_stmts b [ (n, True) ] exit_node then_ in
    let else_out = build_stmts b [ (n, False) ] exit_node else_ in
    then_out @ else_out
  | P.Swhile (_, body) ->
    let n = new_node b (Stmt s) in
    connect b dangling n;
    let body_out = build_stmts b [ (n, True) ] exit_node body in
    connect b body_out n;
    [ (n, False) ]
  | P.Sreturn _ ->
    let n = new_node b (Stmt s) in
    connect b dangling n;
    add_edge b n exit_node Seq;
    []
  | P.Sassign _ | P.Scall _ | P.Sspawn _ | P.Sjoin _ | P.Sp _ | P.Sv _
  | P.Ssend _ | P.Srecv _ | P.Sprint _ | P.Sassert _ ->
    let n = new_node b (Stmt s) in
    connect b dangling n;
    [ (n, Seq) ]

let build (p : P.t) (func : P.func) =
  let b = { bkinds = []; nnodes = 0; edges = [] } in
  let entry = new_node b Entry in
  let exit = new_node b Exit in
  let out = build_stmts b [ (entry, Seq) ] exit func.body in
  connect b out exit;
  let kinds = Array.of_list (List.rev b.bkinds) in
  let succs = Array.make b.nnodes [] in
  let preds = Array.make b.nnodes [] in
  (* edges were accumulated in reverse; restore source order *)
  List.iter
    (fun (src, dst, label) ->
      succs.(src) <- (dst, label) :: succs.(src);
      preds.(dst) <- (src, label) :: preds.(dst))
    b.edges;
  let node_of_sid = Array.make (Array.length p.stmts) (-1) in
  Array.iteri
    (fun id k ->
      match k with
      | Stmt s -> node_of_sid.(s.sid) <- id
      | Entry | Exit -> ())
    kinds;
  { func; kinds; succs; preds; entry; exit; node_of_sid }

let nnodes t = Array.length t.kinds

let kind t n = t.kinds.(n)

let stmt_of_node t n =
  match t.kinds.(n) with Stmt s -> Some s | Entry | Exit -> None

let succ_ids t n = List.map fst t.succs.(n)

let pred_ids t n = List.map fst t.preds.(n)

let is_branch t n =
  match t.kinds.(n) with
  | Stmt { desc = P.Sif _ | P.Swhile _; _ } -> true
  | Stmt _ | Entry | Exit -> false

let reachable t =
  let seen = Bitset.create (nnodes t) in
  let rec go n =
    if not (Bitset.mem seen n) then begin
      Bitset.add seen n;
      List.iter go (succ_ids t n)
    end
  in
  go t.entry;
  seen

let pp_kind ppf = function
  | Entry -> Format.pp_print_string ppf "ENTRY"
  | Exit -> Format.pp_print_string ppf "EXIT"
  | Stmt s -> Format.fprintf ppf "s%d %s" s.P.sid (P.stmt_label s)

let pp_label ppf = function
  | Seq -> ()
  | True -> Format.pp_print_string ppf "T"
  | False -> Format.pp_print_string ppf "F"

let pp ppf t =
  Format.fprintf ppf "@[<v>cfg %s:" t.func.P.fname;
  Array.iteri
    (fun n k ->
      Format.fprintf ppf "@,  %d: %a ->" n pp_kind k;
      List.iter
        (fun (dst, label) -> Format.fprintf ppf " %d%a" dst pp_label label)
        t.succs.(n))
    t.kinds;
  Format.fprintf ppf "@]"
