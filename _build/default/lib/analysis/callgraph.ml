module P = Lang.Prog

type t = {
  calls : int list array;
  spawns : int list array;
  callers : int list array;
  call_sites : (int * int) list array;
}

let compute (p : P.t) =
  let n = Array.length p.funcs in
  let calls = Array.make n [] in
  let spawns = Array.make n [] in
  let call_sites = Array.make n [] in
  Array.iter
    (fun (f : P.func) ->
      P.iter_stmts
        (fun s ->
          match s.desc with
          | P.Scall (_, c) ->
            calls.(f.fid) <- c.callee :: calls.(f.fid);
            call_sites.(f.fid) <- (s.sid, c.callee) :: call_sites.(f.fid)
          | P.Sspawn (_, c) -> spawns.(f.fid) <- c.callee :: spawns.(f.fid)
          | P.Sassign _ | P.Sjoin _ | P.Sif _ | P.Swhile _ | P.Sreturn _
          | P.Sp _ | P.Sv _ | P.Ssend _ | P.Srecv _ | P.Sprint _ | P.Sassert _
            ->
            ())
        f.body)
    p.funcs;
  let dedup l = List.sort_uniq Int.compare l in
  let calls = Array.map dedup calls in
  let spawns = Array.map dedup spawns in
  let callers = Array.make n [] in
  Array.iteri
    (fun f cs -> List.iter (fun g -> callers.(g) <- f :: callers.(g)) cs)
    calls;
  { calls; spawns; callers; call_sites }

let is_leaf t fid = t.calls.(fid) = []

(* Tarjan's SCC algorithm, iterative-enough for our sizes (recursion
   depth is bounded by the call-graph size). *)
let sccs t =
  let n = Array.length t.calls in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let ncomps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      t.calls.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomps;
          if w = v then w :: acc else pop (w :: acc)
      in
      let members = pop [] in
      incr ncomps;
      comps := members :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order already
     (a component is finished only after everything it reaches);
     [comps] was accumulated by prepending, so reverse it back. *)
  (comp, List.rev !comps)

let is_recursive t fid =
  List.mem fid t.calls.(fid)
  ||
  let comp, comps = sccs t in
  List.exists
    (fun members -> List.length members > 1 && comp.(fid) = comp.(List.hd members))
    comps
