module P = Lang.Prog

(* Under the whole-array abstraction an element write is a
   read-modify-write: the rest of the array flows through, so the array
   counts as used wherever an element of it is assigned. *)
let target_uses (l : P.lhs) =
  match l with
  | P.Lvar _ -> P.lhs_index_reads l
  | P.Lidx (v, _) -> v :: P.lhs_index_reads l

let lhs_uses = function None -> [] | Some l -> target_uses l

let lhs_defs = function None -> [] | Some l -> [ P.lhs_writes l ]

let direct_uses (s : P.stmt) =
  match s.desc with
  | P.Sassign (l, e) -> P.expr_reads e @ target_uses l
  | P.Scall (l, c) | P.Sspawn (l, c) ->
    List.concat_map P.expr_reads c.cargs @ lhs_uses l
  | P.Sjoin (l, e) -> P.expr_reads e @ lhs_uses l
  | P.Sif (c, _, _) | P.Swhile (c, _) -> P.expr_reads c
  | P.Sreturn (Some e) -> P.expr_reads e
  | P.Sreturn None -> []
  | P.Sp _ | P.Sv _ -> []
  | P.Ssend (_, e) -> P.expr_reads e
  | P.Srecv (_, l) -> target_uses l
  | P.Sprint e | P.Sassert e -> P.expr_reads e

let direct_defs (s : P.stmt) =
  match s.desc with
  | P.Sassign (l, _) | P.Srecv (_, l) -> [ P.lhs_writes l ]
  | P.Scall (l, _) | P.Sspawn (l, _) | P.Sjoin (l, _) -> lhs_defs l
  | P.Sif _ | P.Swhile _ | P.Sreturn _ | P.Sp _ | P.Sv _ | P.Ssend _
  | P.Sprint _ | P.Sassert _ ->
    []

let definite_defs (s : P.stmt) =
  List.filter
    (fun (v : P.var) -> match v.vty with P.Tint -> true | P.Tarr _ -> false)
    (direct_defs s)

let collect extract (f : P.func) =
  let acc = ref [] in
  P.iter_stmts (fun s -> acc := extract s @ !acc) f.body;
  !acc

let func_uses f = collect direct_uses f

let func_defs f = collect direct_defs f
