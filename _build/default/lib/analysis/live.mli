(** Backward dataflow over variables: liveness and upward-exposed uses.

    Upward-exposed uses are the heart of prelog minimisation (§5.1): a
    variable belongs in an e-block's prelog exactly when some execution
    path can read it before the block itself writes it. That is a
    liveness-style analysis whose kills are restricted to {e definite}
    writes ({!Use_def.definite_defs}).

    The per-call-node effects are parameterised so {!Eblock} can treat
    calls to functions that are themselves e-blocks as opaque (their
    reads are satisfied by their own prelogs and their writes by their
    postlogs during emulation). *)

type result = {
  at_entry : Varset.t;  (** fact at function ENTRY *)
  live_in : Bitset.t array;  (** per CFG node (universe: vids) *)
  iterations : int;
}

val upward_exposed :
  ?call_uses:(int -> Lang.Prog.var list) ->
  ?call_defs:(int -> Lang.Prog.var list) ->
  Lang.Prog.t ->
  Cfg.t ->
  result
(** [upward_exposed p cfg] computes, per node, the variables that may be
    read below this point before being definitely written.
    [call_uses fid] / [call_defs fid] supply the extra effects of a call
    to [fid] (default: none); call defs never kill. *)

val liveness :
  ?call_uses:(int -> Lang.Prog.var list) ->
  ?call_defs:(int -> Lang.Prog.var list) ->
  Lang.Prog.t ->
  Cfg.t ->
  result
(** Classic liveness (same equations; exposed for tests and the program
    database). For MPL the two differ only in boundary conditions:
    liveness treats EXIT as using every global (they outlive the call),
    upward-exposed treats EXIT as using nothing. *)
