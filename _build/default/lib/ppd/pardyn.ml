module P = Lang.Prog
module E = Runtime.Event
module VS = Analysis.Varset

type eref = E.eref

type node = {
  n_id : int;
  n_ref : eref;
  n_pid : int;
  n_sid : int option;
  n_data : Trace.Log.sync_data;
  mutable n_clock : Vclock.t;
}

type iedge = {
  ie_id : int;
  ie_pid : int;
  ie_from : int;
  ie_to : int option;
  ie_reads : VS.t;
  ie_writes : VS.t;
}

type t = {
  prog : P.t;
  nodes : node array;
  sync_edges : (int * int) array;
  iedges : iedge array;
  iedges_of_pid : int list array;
  succs : int list array;
  preds : int list array;
  node_of_ref : (eref, int) Hashtbl.t;
}

(* Per-process chronological stream consumed by the generic builder. *)
type raw_sync = {
  r_ref : eref;
  r_sid : int option;
  r_data : Trace.Log.sync_data;
  r_reads : int list;  (* shared vids read by the sync event itself *)
  r_writes : int list;  (* shared vids written by it *)
}

type item = I_sync of raw_sync | I_access of int list * int list

(* The incoming synchronization edge a sync node implies, if any. *)
let link_of (data : Trace.Log.sync_data) : eref option =
  match data with
  | Trace.Log.S_kind k -> (
    match k with
    | E.K_p { src; _ } -> src
    | E.K_recv { src; _ } -> Some src
    | E.K_send_unblocked { by; _ } -> Some by
    | E.K_join { child_exit; _ } -> Some child_exit
    | E.K_v _ | E.K_send _ | E.K_spawn _ | E.K_assign | E.K_pred _
    | E.K_call _ | E.K_call_return _ | E.K_return _ | E.K_print _
    | E.K_assert _ ->
      None)
  | Trace.Log.S_proc_start { spawn; _ } -> spawn
  | Trace.Log.S_proc_exit _ -> None

let build (prog : P.t) (streams : item list array) =
  let nvars = prog.nvars in
  let nodes = ref [] and nnodes = ref 0 in
  let node_of_ref = Hashtbl.create 64 in
  let iedges = ref [] and niedges = ref 0 in
  let iedges_of_pid = Array.make (Array.length streams) [] in
  Array.iteri
    (fun pid items ->
      let last_node = ref None in
      let cur_reads = ref (Analysis.Bitset.create nvars) in
      let cur_writes = ref (Analysis.Bitset.create nvars) in
      let add_all set vids = List.iter (fun vid -> Analysis.Bitset.add set vid) vids in
      let close_edge to_node =
        match !last_node with
        | None -> () (* the stream starts with proc_start; nothing before *)
        | Some from_node ->
          let e =
            {
              ie_id = !niedges;
              ie_pid = pid;
              ie_from = from_node;
              ie_to = to_node;
              ie_reads = VS.of_list nvars (Analysis.Bitset.elements !cur_reads);
              ie_writes = VS.of_list nvars (Analysis.Bitset.elements !cur_writes);
            }
          in
          incr niedges;
          iedges := e :: !iedges;
          iedges_of_pid.(pid) <- e.ie_id :: iedges_of_pid.(pid);
          cur_reads := Analysis.Bitset.create nvars;
          cur_writes := Analysis.Bitset.create nvars
      in
      List.iter
        (fun item ->
          match item with
          | I_access (reads, writes) ->
            add_all !cur_reads reads;
            add_all !cur_writes writes
          | I_sync r ->
            (* the sync event's own reads belong to the incoming edge *)
            add_all !cur_reads r.r_reads;
            let id = !nnodes in
            incr nnodes;
            let n =
              {
                n_id = id;
                n_ref = r.r_ref;
                n_pid = pid;
                n_sid = r.r_sid;
                n_data = r.r_data;
                n_clock = Vclock.empty;
              }
            in
            nodes := n :: !nodes;
            Hashtbl.replace node_of_ref r.r_ref id;
            close_edge (Some id);
            last_node := Some id;
            (* its writes are protected by the incoming sync edge *)
            add_all !cur_writes r.r_writes)
        items;
      (* trailing accesses after the last sync node (halt mid-edge) *)
      if
        (not (Analysis.Bitset.is_empty !cur_reads)) || not (Analysis.Bitset.is_empty !cur_writes)
      then close_edge None)
    streams;
  let nodes = Array.of_list (List.rev !nodes) in
  let iedges = Array.of_list (List.rev !iedges) in
  let iedges_of_pid = Array.map List.rev iedges_of_pid in
  (* synchronization edges from the per-node links *)
  let sync_edges =
    Array.to_list nodes
    |> List.filter_map (fun n ->
           match link_of n.n_data with
           | None -> None
           | Some src -> (
             match Hashtbl.find_opt node_of_ref src with
             | Some from -> Some (from, n.n_id)
             | None -> None))
    |> Array.of_list
  in
  let nn = Array.length nodes in
  let succs = Array.make nn [] and preds = Array.make nn [] in
  let add_edge (a, b) =
    succs.(a) <- b :: succs.(a);
    preds.(b) <- a :: preds.(b)
  in
  Array.iter add_edge sync_edges;
  Array.iter
    (fun e -> match e.ie_to with Some b -> add_edge (e.ie_from, b) | None -> ())
    iedges;
  (* vector clocks by Kahn topological traversal *)
  let indeg = Array.make nn 0 in
  Array.iteri (fun n ps -> indeg.(n) <- List.length ps) preds;
  let q = Queue.create () in
  Array.iteri (fun n d -> if d = 0 then Queue.add n q) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty q) do
    let n = Queue.take q in
    incr visited;
    let joined =
      List.fold_left
        (fun acc p -> Vclock.join acc nodes.(p).n_clock)
        Vclock.empty preds.(n)
    in
    nodes.(n).n_clock <- Vclock.tick joined ~pid:nodes.(n).n_pid;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s q)
      succs.(n)
  done;
  assert (!visited = nn);
  {
    prog;
    nodes;
    sync_edges;
    iedges;
    iedges_of_pid;
    succs;
    preds;
    node_of_ref;
  }

(* ------------------------------------------------------------------ *)
(* Constructors.                                                        *)
(* ------------------------------------------------------------------ *)

let of_log (prog : P.t) (log : Trace.Log.t) =
  let streams =
    Array.mapi
      (fun pid entries ->
        Array.to_list entries
        |> List.filter_map (fun entry ->
               match entry with
               | Trace.Log.Sync { sid; seq; data; _ } ->
                 Some
                   (I_sync
                      {
                        r_ref = { E.epid = pid; eseq = seq };
                        r_sid = sid;
                        r_data = data;
                        r_reads = [];
                        r_writes = [];
                      })
               | Trace.Log.Prelog _ | Trace.Log.Postlog _
               | Trace.Log.Sync_prelog _ ->
                 None))
      log.Trace.Log.entries
  in
  build prog streams

type obs = {
  oprog : P.t;
  mutable ostreams : item list ref array;  (* per pid, reversed *)
}

let observer prog = { oprog = prog; ostreams = [| ref [] |] }

let ensure_pid o pid =
  let n = Array.length o.ostreams in
  if pid >= n then
    o.ostreams <-
      Array.init (pid + 1) (fun i -> if i < n then o.ostreams.(i) else ref [])

let shared_vids rws =
  List.filter_map
    (fun (rw : E.rw) ->
      if P.is_shared rw.var then Some rw.var.P.vid else None)
    rws

let obs_event o ~pid ~seq (ev : E.t) =
  ensure_pid o pid;
  let cell = o.ostreams.(pid) in
  let push item = cell := item :: !cell in
  let r = { E.epid = pid; eseq = seq } in
  match ev with
  | E.E_proc_start { fid; spawn; _ } ->
    push
      (I_sync
         {
           r_ref = r;
           r_sid = None;
           r_data = Trace.Log.S_proc_start { fid; spawn };
           r_reads = [];
           r_writes = [];
         })
  | E.E_proc_exit { fid; result } ->
    push
      (I_sync
         {
           r_ref = r;
           r_sid = None;
           r_data = Trace.Log.S_proc_exit { fid; result };
           r_reads = [];
           r_writes = [];
         })
  | E.E_enter _ | E.E_leave _ | E.E_loop_enter _ -> ()
  | E.E_loop_exit { writes; _ } -> (
    (* a skipped loop e-block's writes still count as this edge's shared
       accesses (the collapsed block wrote them) *)
    match writes with
    | None -> ()
    | Some ws ->
      let wvids =
        List.filter_map
          (fun ((v : P.var), _) -> if P.is_shared v then Some v.P.vid else None)
          ws
      in
      if wvids <> [] then push (I_access ([], wvids)))
  | E.E_stmt { sid; reads; write; kind } -> (
    let rvids = shared_vids reads in
    let wvids = shared_vids (Option.to_list write) in
    match kind with
    | E.K_p _ | E.K_v _ | E.K_send _ | E.K_send_unblocked _ | E.K_recv _
    | E.K_spawn _ | E.K_join _ ->
      push
        (I_sync
           {
             r_ref = r;
             r_sid = Some sid;
             r_data = Trace.Log.S_kind kind;
             r_reads = rvids;
             r_writes = wvids;
           })
    | E.K_assign | E.K_pred _ | E.K_call _ | E.K_call_return _ | E.K_return _
    | E.K_print _ | E.K_assert _ ->
      if rvids <> [] || wvids <> [] then push (I_access (rvids, wvids)))

let factory o _port =
  { Runtime.Hooks.on_event = (fun ~pid ~seq ev -> obs_event o ~pid ~seq ev) }

let finish o =
  build o.oprog (Array.map (fun cell -> List.rev !cell) o.ostreams)

(* ------------------------------------------------------------------ *)
(* Ordering queries.                                                    *)
(* ------------------------------------------------------------------ *)

let node_of t ref_ = Hashtbl.find_opt t.node_of_ref ref_

let node_hb t a b =
  let na = t.nodes.(a) in
  Vclock.happened_before ~own_pid:na.n_pid na.n_clock t.nodes.(b).n_clock

let node_reaches t a b =
  let seen = Hashtbl.create 16 in
  let rec go n =
    n = b
    ||
    if Hashtbl.mem seen n then false
    else begin
      Hashtbl.add seen n ();
      List.exists go t.succs.(n)
    end
  in
  go a

let edge_before t e1 e2 =
  match e1.ie_to with
  | None -> false
  | Some n1_end -> node_hb t n1_end e2.ie_from

let simultaneous t e1 e2 =
  (not (edge_before t e1 e2)) && not (edge_before t e2 e1)

let pp_node ppf n =
  Format.fprintf ppf "n%d %a %s %a" n.n_id E.pp_eref n.n_ref
    (Format.asprintf "%a" (Trace.Log.pp_sync_data) n.n_data)
    Vclock.pp n.n_clock

let pp ppf t =
  Format.fprintf ppf "@[<v>parallel dynamic graph:";
  Array.iteri
    (fun pid edge_ids ->
      Format.fprintf ppf "@,process %d:" pid;
      let nodes_of_pid =
        Array.to_list t.nodes |> List.filter (fun n -> n.n_pid = pid)
      in
      List.iter (fun n -> Format.fprintf ppf "@,  %a" pp_node n) nodes_of_pid;
      List.iter
        (fun eid ->
          let e = t.iedges.(eid) in
          Format.fprintf ppf "@,  edge e%d: n%d -> %s reads=%a writes=%a"
            e.ie_id e.ie_from
            (match e.ie_to with
            | Some n -> "n" ^ string_of_int n
            | None -> "(open)")
            (VS.pp_named t.prog) e.ie_reads (VS.pp_named t.prog) e.ie_writes)
        edge_ids)
    t.iedges_of_pid;
  Format.fprintf ppf "@,sync edges:";
  Array.iter
    (fun (a, b) -> Format.fprintf ppf "@,  n%d -> n%d" a b)
    t.sync_edges;
  Format.fprintf ppf "@]"
