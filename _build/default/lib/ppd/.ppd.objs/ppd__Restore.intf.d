lib/ppd/restore.mli: Lang Runtime Trace
