lib/ppd/controller.mli: Analysis Dyn_graph Emulator Lang Pardyn Runtime Trace
