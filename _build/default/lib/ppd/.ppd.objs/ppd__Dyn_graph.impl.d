lib/ppd/dyn_graph.ml: Array Buffer Format Hashtbl Lang List Option Printf Runtime String
