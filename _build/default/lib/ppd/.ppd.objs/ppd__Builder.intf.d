lib/ppd/builder.mli: Analysis Dyn_graph Emulator Runtime Trace
