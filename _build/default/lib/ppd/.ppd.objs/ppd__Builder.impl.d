lib/ppd/builder.ml: Analysis Array Dyn_graph Emulator Hashtbl Lang List Option Printf Runtime Trace
