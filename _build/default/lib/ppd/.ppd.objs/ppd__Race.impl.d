lib/ppd/race.ml: Analysis Array Format Hashtbl Int Lang List Pardyn Printf Trace
