lib/ppd/vclock.mli: Format
