lib/ppd/session.mli: Analysis Controller Deadlock Emulator Lang Pardyn Race Runtime Trace
