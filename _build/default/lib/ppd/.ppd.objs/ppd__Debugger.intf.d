lib/ppd/debugger.mli: Session
