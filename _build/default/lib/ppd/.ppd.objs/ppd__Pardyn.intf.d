lib/ppd/pardyn.mli: Analysis Format Hashtbl Lang Runtime Trace Vclock
