lib/ppd/dyn_graph.mli: Format Lang Runtime
