lib/ppd/emulator.mli: Analysis Lang Runtime Trace
