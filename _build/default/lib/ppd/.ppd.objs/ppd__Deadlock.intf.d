lib/ppd/deadlock.mli: Format Lang Runtime
