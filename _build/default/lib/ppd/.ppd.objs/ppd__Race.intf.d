lib/ppd/race.mli: Format Lang Pardyn
