lib/ppd/vclock.ml: Array Format
