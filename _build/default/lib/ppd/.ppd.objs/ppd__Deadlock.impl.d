lib/ppd/deadlock.ml: Analysis Array Format Fun Lang List Runtime String
