lib/ppd/flowback.mli: Controller Dyn_graph Format
