lib/ppd/debugger.ml: Analysis Array Controller Deadlock Dyn_graph Emulator Flowback Format Fun Lang List Printf Race Restore Result Runtime Session String Trace
