lib/ppd/restore.ml: Array Int Lang List Runtime Trace
