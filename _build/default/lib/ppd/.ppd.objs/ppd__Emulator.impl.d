lib/ppd/emulator.ml: Analysis Array Buffer Format Lang List Option Printf Restore Runtime Trace
