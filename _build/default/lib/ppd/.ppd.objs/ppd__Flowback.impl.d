lib/ppd/flowback.ml: Controller Dyn_graph Format Hashtbl Lang List Queue Runtime
