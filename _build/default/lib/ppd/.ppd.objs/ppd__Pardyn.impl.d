lib/ppd/pardyn.ml: Analysis Array Format Hashtbl Lang List Option Queue Runtime Trace Vclock
