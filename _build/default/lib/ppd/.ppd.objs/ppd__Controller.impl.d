lib/ppd/controller.ml: Analysis Array Builder Dyn_graph Emulator Hashtbl Int Lang List Option Pardyn Runtime Trace
