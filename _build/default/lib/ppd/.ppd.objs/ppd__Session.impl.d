lib/ppd/session.ml: Analysis Array Controller Deadlock Emulator Lang List Option Pardyn Printf Race Runtime String Trace
