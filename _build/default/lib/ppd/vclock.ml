type t = int array

let empty = [||]

let get t pid = if pid < Array.length t then t.(pid) else 0

let tick t ~pid =
  let n = max (Array.length t) (pid + 1) in
  Array.init n (fun i -> if i = pid then get t pid + 1 else get t i)

let join a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i -> max (get a i) (get b i))

let leq a b =
  let ok = ref true in
  Array.iteri (fun i x -> if x > get b i then ok := false) a;
  !ok

let equal a b = leq a b && leq b a

type order = Before | After | Equal | Concurrent

let compare_clocks a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let happened_before ~own_pid a b = get a own_pid <= get b own_pid

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
