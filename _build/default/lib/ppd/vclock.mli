(** Vector clocks implementing the Lamport partial order "->" of §6
    over synchronization events.

    Clocks are width-polymorphic: comparisons treat missing components
    as zero, so processes created mid-execution need no global resizing. *)

type t

val empty : t

val get : t -> int -> int

val tick : t -> pid:int -> t
(** Increment the [pid] component. *)

val join : t -> t -> t
(** Componentwise maximum. *)

val leq : t -> t -> bool
(** [leq a b]: every component of [a] <= the corresponding one of [b]. *)

val equal : t -> t -> bool

type order = Before | After | Equal | Concurrent

val compare_clocks : t -> t -> order

val happened_before : own_pid:int -> t -> t -> bool
(** [happened_before ~own_pid a b] where [a] is the clock of an event of
    process [own_pid]: the standard O(1) test
    [a.(own_pid) <= b.(own_pid)] — valid when both clocks come from the
    same tick discipline (every event ticks its own component). Includes
    the case [a = b]. *)

val pp : Format.formatter -> t -> unit
