(** The parallel dynamic program dependence graph (§6.1).

    A subset of the dynamic graph abstracting process interactions:
    one {b synchronization node} per sync event (P, V, send, recv,
    send-unblock, spawn, join, process start/exit), {b internal edges}
    chaining each process's consecutive sync nodes (each representing
    the local events between them — the execution instance of a
    synchronization unit), and {b synchronization edges} for the causal
    pairs of §6.2: V→P (token provenance), send→recv,
    recv→send-unblock (blocking send, Figure 6.1), spawn→process-start
    and process-exit→join.

    Vector clocks computed over the graph give the partial order "→" of
    §6.1; internal edges carry the shared-variable READ/WRITE sets of
    Definition 6.2 when built by the runtime {!observer} (the log-only
    constructor {!of_log} yields the structure with empty sets, enough
    for cross-process flowback).

    Attribution of a sync event's own accesses: its reads (send
    payloads, join pid expressions) happen before its synchronization
    takes effect and belong to the {e incoming} internal edge; its
    writes (recv targets, join results) are protected by the incoming
    synchronization edge and belong to the {e outgoing} internal edge. *)

type eref = Runtime.Event.eref

type node = {
  n_id : int;
  n_ref : eref;
  n_pid : int;
  n_sid : int option;
  n_data : Trace.Log.sync_data;
  mutable n_clock : Vclock.t;
}

type iedge = {
  ie_id : int;
  ie_pid : int;
  ie_from : int;  (** start node id *)
  ie_to : int option;  (** end node id; [None] if the process halted mid-edge *)
  ie_reads : Analysis.Varset.t;  (** shared variables read (Def. 6.2) *)
  ie_writes : Analysis.Varset.t;
}

type t = {
  prog : Lang.Prog.t;
  nodes : node array;
  sync_edges : (int * int) array;  (** (from node, to node) *)
  iedges : iedge array;
  iedges_of_pid : int list array;
  succs : int list array;  (** node-level, sync + internal *)
  preds : int list array;
  node_of_ref : (eref, int) Hashtbl.t;
}

val of_log : Lang.Prog.t -> Trace.Log.t -> t
(** Structure from the execution log (empty access sets). *)

type obs
(** Runtime observer accumulating sync nodes and per-edge shared
    access sets. *)

val observer : Lang.Prog.t -> obs

val factory : obs -> Runtime.Hooks.factory

val finish : obs -> t

val node_of : t -> eref -> int option

val node_hb : t -> int -> int -> bool
(** Reflexive happened-before via vector clocks ("→" on nodes). *)

val node_reaches : t -> int -> int -> bool
(** Reflexive graph reachability — semantically equal to {!node_hb}
    (property-tested); exponentially slower, kept as the oracle. *)

val edge_before : t -> iedge -> iedge -> bool
(** Definition §6.1(2): [e1 → e2] iff [end(e1) → start(e2)]. *)

val simultaneous : t -> iedge -> iedge -> bool
(** Definition 6.1: neither [e1 → e2] nor [e2 → e1]. *)

val pp : Format.formatter -> t -> unit
(** Figure-6.1-style dump: per-process node chains plus sync edges. *)
