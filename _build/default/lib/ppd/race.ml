module P = Lang.Prog
module VS = Analysis.Varset

type conflict = Write_write | Read_write

type race = {
  rc_var : P.var;
  rc_edge1 : int;
  rc_edge2 : int;
  rc_kind : conflict;
}

type stats = { pairs_examined : int; races : race list }

type algo = Naive | Indexed

(* Canonicalise so the two algorithms produce literally equal lists:
   edge ids ordered within a race, then races sorted. *)
let norm r =
  if r.rc_edge1 <= r.rc_edge2 then r
  else { r with rc_edge1 = r.rc_edge2; rc_edge2 = r.rc_edge1 }

let compare_race a b =
  match Int.compare a.rc_var.P.vid b.rc_var.P.vid with
  | 0 -> (
    match Int.compare a.rc_edge1 b.rc_edge1 with
    | 0 -> (
      match Int.compare a.rc_edge2 b.rc_edge2 with
      | 0 -> compare a.rc_kind b.rc_kind
      | c -> c)
    | c -> c)
  | c -> c

let dedup_sort races =
  List.sort_uniq compare_race (List.map norm races)

(* Conflicts between one ordered pair of edges, as (var, kind). The
   write/write conflict is reported once; read/write in either
   direction. *)
let conflicts (g : Pardyn.t) (e1 : Pardyn.iedge) (e2 : Pardyn.iedge) =
  let p = g.Pardyn.prog in
  let ww = VS.inter e1.ie_writes e2.ie_writes in
  let rw = VS.inter e1.ie_writes e2.ie_reads in
  let wr = VS.inter e1.ie_reads e2.ie_writes in
  List.concat
    [
      List.map
        (fun vid ->
          {
            rc_var = p.vars.(vid);
            rc_edge1 = e1.ie_id;
            rc_edge2 = e2.ie_id;
            rc_kind = Write_write;
          })
        (VS.elements ww);
      List.map
        (fun vid ->
          {
            rc_var = p.vars.(vid);
            rc_edge1 = e1.ie_id;
            rc_edge2 = e2.ie_id;
            rc_kind = Read_write;
          })
        (VS.elements rw);
      List.map
        (fun vid ->
          {
            rc_var = p.vars.(vid);
            rc_edge1 = e2.ie_id;
            rc_edge2 = e1.ie_id;
            rc_kind = Read_write;
          })
        (VS.elements wr);
    ]

let may_conflict e1 e2 =
  let open Pardyn in
  (not (VS.disjoint e1.ie_writes e2.ie_writes))
  || (not (VS.disjoint e1.ie_writes e2.ie_reads))
  || not (VS.disjoint e1.ie_reads e2.ie_writes)

let detect_naive (g : Pardyn.t) =
  let pairs = ref 0 in
  let races = ref [] in
  let edges = g.Pardyn.iedges in
  let n = Array.length edges in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let e1 = edges.(i) and e2 = edges.(j) in
      (* edges of one process are totally ordered by their chain *)
      if e1.ie_pid <> e2.ie_pid then begin
        incr pairs;
        if Pardyn.simultaneous g e1 e2 && may_conflict e1 e2 then
          races := conflicts g e1 e2 @ !races
      end
    done
  done;
  { pairs_examined = !pairs; races = dedup_sort !races }

let detect_indexed (g : Pardyn.t) =
  let p = g.Pardyn.prog in
  let edges = g.Pardyn.iedges in
  (* per shared variable: which edges write / read it *)
  let writers = Array.make p.nvars [] in
  let readers = Array.make p.nvars [] in
  Array.iter
    (fun (e : Pardyn.iedge) ->
      List.iter (fun vid -> writers.(vid) <- e.ie_id :: writers.(vid))
        (VS.elements e.ie_writes);
      List.iter (fun vid -> readers.(vid) <- e.ie_id :: readers.(vid))
        (VS.elements e.ie_reads))
    edges;
  let pairs = ref 0 in
  let races = ref [] in
  let seen = Hashtbl.create 64 in
  let test vid i j kind =
    let e1 = edges.(i) and e2 = edges.(j) in
    if e1.ie_pid <> e2.ie_pid then begin
      let key = (vid, min i j, max i j, kind) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        incr pairs;
        if Pardyn.simultaneous g e1 e2 then
          races :=
            {
              rc_var = p.vars.(vid);
              rc_edge1 = i;
              rc_edge2 = j;
              rc_kind = (match kind with `Ww -> Write_write | `Rw -> Read_write);
            }
            :: !races
      end
    end
  in
  for vid = 0 to p.nvars - 1 do
    let ws = writers.(vid) and rs = readers.(vid) in
    List.iter
      (fun i ->
        List.iter (fun j -> if i < j then test vid i j `Ww) ws;
        List.iter (fun j -> if i <> j then test vid i j `Rw) rs)
      ws
  done;
  { pairs_examined = !pairs; races = dedup_sort !races }

let detect ?(algo = Indexed) g =
  match algo with Naive -> detect_naive g | Indexed -> detect_indexed g

let is_race_free g = (detect g).races = []

let pp_conflict ppf = function
  | Write_write -> Format.pp_print_string ppf "write/write"
  | Read_write -> Format.pp_print_string ppf "read/write"

let pp_race (_p : P.t) ppf r =
  Format.fprintf ppf "%a conflict on shared '%s' between edges e%d and e%d"
    pp_conflict r.rc_kind r.rc_var.P.vname r.rc_edge1 r.rc_edge2

let pp_edge_context (g : Pardyn.t) ppf eid =
  let e = g.Pardyn.iedges.(eid) in
  let node i = g.Pardyn.nodes.(i) in
  let label n =
    Format.asprintf "%a" Trace.Log.pp_sync_data (node n).Pardyn.n_data
  in
  Format.fprintf ppf "e%d (process %d, after %s%s)" eid e.ie_pid
    (label e.ie_from)
    (match e.ie_to with
    | None -> ", open"
    | Some n -> Printf.sprintf ", before %s" (label n))

let pp_report g ppf races =
  match races with
  | [] -> Format.fprintf ppf "no races detected: execution instance is race-free"
  | _ ->
    Format.fprintf ppf "@[<v>%d race(s) detected:" (List.length races);
    List.iter
      (fun r ->
        Format.fprintf ppf "@,- %a@,    %a@,    %a"
          (pp_race g.Pardyn.prog) r (pp_edge_context g) r.rc_edge1
          (pp_edge_context g) r.rc_edge2)
      races;
    Format.fprintf ppf "@]"
