(** Deadlock-cause analysis (§6: "the parallel dynamic graph can also
    help the user analyze the causes of deadlocks").

    When the machine halts in deadlock, every live process is blocked on
    a semaphore, channel or join. We build a {e wait-for} graph: process
    [p] waits for process [q] when [q] could in principle perform the
    operation that would unblock [p] — [q] is the join target, or [q]'s
    code (transitively through its calls) contains a matching [V] /
    [send] / [recv]. Cycles in this graph are the deadlock's cause;
    blocked processes with no candidate helper at all are starved. *)

type analysis = {
  blocked : (int * Runtime.Machine.wait) list;
  wait_for : (int * int list) list;
      (** per blocked pid: the processes that could unblock it *)
  cycles : int list list;  (** simple cycles found in the wait-for graph *)
  hopeless : int list;  (** blocked pids no live process can ever unblock *)
}

val analyze : Runtime.Machine.t -> analysis

val is_deadlocked : analysis -> bool
(** True when there is a cycle or a hopeless blocked process. *)

val pp : Lang.Prog.t -> Format.formatter -> analysis -> unit
