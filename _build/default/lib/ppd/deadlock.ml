module P = Lang.Prog
module M = Runtime.Machine

type analysis = {
  blocked : (int * M.wait) list;
  wait_for : (int * int list) list;
  cycles : int list list;
  hopeless : int list;
}

(* Which sync operations each function may (transitively through its
   calls) perform. *)
type caps = {
  may_v : bool array array;  (* fid -> sem_id -> bool *)
  may_send : bool array array;  (* fid -> chan_id -> bool *)
  may_recv : bool array array;
}

let capabilities (p : P.t) =
  let nf = Array.length p.funcs in
  let mk () = Array.init nf (fun _ -> Array.make (max 1 (max (Array.length p.sems) (Array.length p.chans))) false) in
  let may_v = mk () and may_send = mk () and may_recv = mk () in
  Array.iter
    (fun (f : P.func) ->
      P.iter_stmts
        (fun s ->
          match s.desc with
          | P.Sv sem -> may_v.(f.fid).(sem.sem_id) <- true
          | P.Ssend (c, _) -> may_send.(f.fid).(c.ch_id) <- true
          | P.Srecv (c, _) -> may_recv.(f.fid).(c.ch_id) <- true
          | _ -> ())
        f.body)
    p.funcs;
  (* close over calls *)
  let cg = Analysis.Callgraph.compute p in
  let changed = ref true in
  let merge dst src =
    Array.iteri
      (fun i b ->
        if b && not (dst.(i)) then begin
          dst.(i) <- true;
          changed := true
        end)
      src
  in
  while !changed do
    changed := false;
    for f = 0 to nf - 1 do
      List.iter
        (fun g ->
          merge may_v.(f) may_v.(g);
          merge may_send.(f) may_send.(g);
          merge may_recv.(f) may_recv.(g))
        cg.Analysis.Callgraph.calls.(f)
    done
  done;
  { may_v; may_send; may_recv }

let analyze m =
  let p = M.prog m in
  let caps = capabilities p in
  let n = M.nprocs m in
  let blocked = ref [] in
  for pid = n - 1 downto 0 do
    match M.blocked_wait m pid with
    | Some w -> blocked := (pid, w) :: !blocked
    | None -> ()
  done;
  let blocked = !blocked in
  (* which processes are still live (not Done) and what they could do;
     a blocked process can still eventually perform its later ops, so
     blocked processes count as capable *)
  let live =
    List.init n (fun pid ->
        match M.proc_state m pid with
        | M.Done -> None
        | M.Ready | M.Blocked _ -> Some pid)
    |> List.filter_map Fun.id
  in
  let helpers (waiter : int) (w : M.wait) =
    List.filter
      (fun q ->
        q <> waiter
        &&
        let root = M.proc_root m q in
        match w with
        | M.Wjoin target -> q = target
        | M.Wsem s -> caps.may_v.(root).(s)
        | M.Wsend c -> caps.may_recv.(root).(c)
        | M.Wrecv c -> caps.may_send.(root).(c))
      live
  in
  let wait_for = List.map (fun (pid, w) -> (pid, helpers pid w)) blocked in
  let hopeless =
    List.filter_map
      (fun (pid, hs) -> if hs = [] then Some pid else None)
      wait_for
  in
  (* cycles restricted to blocked processes: DFS from each *)
  let succs pid = try List.assoc pid wait_for with Not_found -> [] in
  let blocked_pids = List.map fst blocked in
  let cycles = ref [] in
  let rec dfs start path node =
    List.iter
      (fun next ->
        if next = start then cycles := List.rev (node :: path) :: !cycles
        else if (not (List.mem next path)) && List.mem next blocked_pids && next > start
        then dfs start (node :: path) next)
      (succs node)
  in
  List.iter (fun pid -> dfs pid [] pid) blocked_pids;
  let cycles = List.sort_uniq compare !cycles in
  { blocked; wait_for; cycles; hopeless }

let is_deadlocked a = a.cycles <> [] || a.hopeless <> []

let pp_wait (p : P.t) ppf = function
  | M.Wsem s -> Format.fprintf ppf "P(%s)" p.sems.(s).P.sem_name
  | M.Wsend c -> Format.fprintf ppf "send(%s, ..)" p.chans.(c).P.ch_name
  | M.Wrecv c -> Format.fprintf ppf "recv(%s, ..)" p.chans.(c).P.ch_name
  | M.Wjoin q -> Format.fprintf ppf "join(process %d)" q

let pp (p : P.t) ppf a =
  Format.fprintf ppf "@[<v>deadlock analysis:";
  List.iter
    (fun (pid, w) ->
      Format.fprintf ppf "@,  process %d blocked in %a, could be unblocked by: %s"
        pid (pp_wait p) w
        (match List.assoc pid a.wait_for with
        | [] -> "nobody (starved)"
        | hs -> String.concat ", " (List.map (fun q -> "p" ^ string_of_int q) hs)))
    a.blocked;
  (match a.cycles with
  | [] -> Format.fprintf ppf "@,  no wait-for cycle"
  | cs ->
    List.iter
      (fun c ->
        Format.fprintf ppf "@,  wait-for cycle: %s"
          (String.concat " -> "
             (List.map (fun q -> "p" ^ string_of_int q) (c @ [ List.hd c ]))))
      cs);
  Format.fprintf ppf "@]"
