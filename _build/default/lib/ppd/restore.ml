module P = Lang.Prog
module V = Runtime.Value
module L = Trace.Log

type snapshot = {
  at_step : int;
  globals : V.t array;
  entries_scanned : int;
}

let init_globals (p : P.t) =
  Array.map
    (function
      | P.Ginit_int n -> V.Vint n
      | P.Ginit_arr len -> V.Varr (Array.make len 0))
    p.global_inits

(* Collect every value-carrying log record as (step, vals), merge-sort
   by step, and apply in order. *)
let shared_at (p : P.t) (log : L.t) ~step =
  let records = ref [] in
  let scanned = ref 0 in
  Array.iter
    (fun entries ->
      Array.iter
        (fun e ->
          incr scanned;
          match e with
          | L.Postlog { step_at; vals; _ } when step_at <= step ->
            records := (step_at, vals) :: !records
          | L.Sync_prelog { step_at; vals; _ } when step_at <= step ->
            records := (step_at, vals) :: !records
          | L.Postlog _ | L.Sync_prelog _ | L.Prelog _ | L.Sync _ -> ())
        entries)
    log.L.entries;
  let records =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !records)
  in
  let globals = init_globals p in
  List.iter
    (fun (_, vals) ->
      List.iter
        (fun (vid, v) ->
          match p.vars.(vid).vscope with
          | P.Global slot -> globals.(slot) <- V.copy v
          | P.Local _ -> ())
        vals)
    records;
  { at_step = step; globals; entries_scanned = !scanned }

let at_interval_end (p : P.t) (log : L.t) (iv : L.interval) =
  match iv.L.iv_postlog with
  | None -> invalid_arg "Restore.at_interval_end: interval still open"
  | Some idx -> (
    match log.L.entries.(iv.L.iv_pid).(idx) with
    | L.Postlog { step_at; _ } -> shared_at p log ~step:step_at
    | _ -> assert false)

let locals_at_interval_end (p : P.t) (log : L.t) (iv : L.interval) =
  match iv.L.iv_postlog with
  | None -> []
  | Some idx -> (
    match log.L.entries.(iv.L.iv_pid).(idx) with
    | L.Postlog { vals; _ } ->
      List.filter_map
        (fun (vid, v) ->
          let var = p.vars.(vid) in
          if P.is_global var then None else Some (var, v))
        vals
    | _ -> [])

let final (p : P.t) (log : L.t) = shared_at p log ~step:max_int
