(** Race detection over the parallel dynamic graph (§6.4).

    Definitions 6.1–6.4: two {e simultaneous} (unordered) internal edges
    race when their shared-variable access sets conflict — a
    write/write or read/write intersection. An execution instance is
    race-free when all simultaneous edge pairs are race-free.

    Two algorithms, property-tested to agree (the §7 "we are currently
    investigating algorithms to reduce the cost" ablation, benchmark
    T5):
    - {b naive}: examine every cross-process edge pair;
    - {b indexed}: per shared variable, examine only pairs drawn from
      the edges that actually access it (writers × accessors), skipping
      same-process pairs before the ordering test. *)

type conflict = Write_write | Read_write

type race = {
  rc_var : Lang.Prog.var;
  rc_edge1 : int;  (** internal-edge id; [rc_edge1 < rc_edge2] *)
  rc_edge2 : int;
  rc_kind : conflict;
}

type stats = {
  pairs_examined : int;  (** edge pairs whose ordering was tested *)
  races : race list;  (** deduplicated, deterministic order *)
}

type algo = Naive | Indexed

val detect : ?algo:algo -> Pardyn.t -> stats

val is_race_free : Pardyn.t -> bool
(** Definition 6.4 over the whole execution instance. *)

val pp_race : Lang.Prog.t -> Format.formatter -> race -> unit

val pp_report : Pardyn.t -> Format.formatter -> race list -> unit
(** Human-readable report with the statements covered by each edge. *)
