exception Error of Loc.t * string

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let pp_error ppf (loc, msg) = Format.fprintf ppf "error at %a: %s" Loc.pp loc msg

let protect f =
  match f () with v -> Ok v | exception Error (loc, msg) -> Error (loc, msg)
