type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }

let loc st = Loc.make ~line:st.line ~col:st.col

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
    advance st;
    skip_ws st
  | '/' when peek2 st = '/' ->
    let rec to_eol () =
      if (not (at_end st)) && peek st <> '\n' then begin
        advance st;
        to_eol ()
      end
    in
    to_eol ();
    skip_ws st
  | '/' when peek2 st = '*' ->
    let start = loc st in
    advance st;
    advance st;
    let rec to_close () =
      if at_end st then Diag.error start "unterminated /* comment"
      else if peek st = '*' && peek2 st = '/' then begin
        advance st;
        advance st
      end
      else begin
        advance st;
        to_close ()
      end
    in
    to_close ();
    skip_ws st
  | _ -> ()

let keyword = function
  | "true" -> Some Token.TRUE
  | "false" -> Some Token.FALSE
  | "func" -> Some Token.FUNC
  | "var" -> Some Token.VAR
  | "shared" -> Some Token.SHARED
  | "sem" -> Some Token.SEM
  | "chan" -> Some Token.CHAN
  | "if" -> Some Token.IF
  | "else" -> Some Token.ELSE
  | "while" -> Some Token.WHILE
  | "for" -> Some Token.FOR
  | "return" -> Some Token.RETURN
  | "spawn" -> Some Token.SPAWN
  | "join" -> Some Token.JOIN
  | "P" -> Some Token.PSEM
  | "V" -> Some Token.VSEM
  | "send" -> Some Token.SEND
  | "recv" -> Some Token.RECV
  | "print" -> Some Token.PRINT
  | "assert" -> Some Token.ASSERT
  | "int" -> Some Token.KINT
  | "bool" -> Some Token.KBOOL
  | _ -> None

let lex_number st =
  let start = loc st in
  let b = Buffer.create 8 in
  while is_digit (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  match int_of_string_opt (Buffer.contents b) with
  | Some n -> Token.INT n
  | None -> Diag.error start "integer literal %s out of range" (Buffer.contents b)

let lex_ident st =
  let b = Buffer.create 8 in
  while is_ident_char (peek st) do
    Buffer.add_char b (peek st);
    advance st
  done;
  let s = Buffer.contents b in
  match keyword s with Some t -> t | None -> Token.IDENT s

(* Lex one token; [skip_ws] has already run and input is non-empty. *)
let lex_token st =
  let l = loc st in
  let c = peek st in
  let single t =
    advance st;
    t
  in
  let with_eq base eq =
    advance st;
    if peek st = '=' then begin
      advance st;
      eq
    end
    else base
  in
  let tok =
    if is_digit c then lex_number st
    else if is_ident_start c then lex_ident st
    else
      match c with
      | '(' -> single Token.LPAREN
      | ')' -> single Token.RPAREN
      | '{' -> single Token.LBRACE
      | '}' -> single Token.RBRACE
      | '[' -> single Token.LBRACKET
      | ']' -> single Token.RBRACKET
      | ',' -> single Token.COMMA
      | ';' -> single Token.SEMI
      | '+' -> single Token.PLUS
      | '-' -> single Token.MINUS
      | '*' -> single Token.STAR
      | '/' -> single Token.SLASH
      | '%' -> single Token.PERCENT
      | '=' -> with_eq Token.ASSIGN Token.EQ
      | '<' -> with_eq Token.LT Token.LEQ
      | '>' -> with_eq Token.GT Token.GEQ
      | '!' -> with_eq Token.BANG Token.NEQ
      | '&' ->
        advance st;
        if peek st = '&' then begin
          advance st;
          Token.ANDAND
        end
        else Diag.error l "expected '&&'"
      | '|' ->
        advance st;
        if peek st = '|' then begin
          advance st;
          Token.OROR
        end
        else Diag.error l "expected '||'"
      | c -> Diag.error l "unexpected character %C" c
  in
  (tok, l)

let tokenize src =
  let st = make src in
  let rec loop acc =
    skip_ws st;
    if at_end st then List.rev ((Token.EOF, loc st) :: acc)
    else loop (lex_token st :: acc)
  in
  loop []
