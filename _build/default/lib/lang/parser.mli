(** Recursive-descent parser for MPL.

    Grammar sketch (precedence-climbing expressions, C-like statements):

    {v
    program  ::= topdecl*
    topdecl  ::= "shared" "int" ident ("=" expr | "[" INT "]")? ";"
               | "sem" ident "=" INT ";"
               | "chan" ident ("[" INT "]")? ";"
               | "func" ident "(" params? ")" block
    stmt     ::= "var" ident ("=" expr)? ";" | "var" ident "[" INT "]" ";"
               | lhs "=" rhs ";" | ident "(" args ")" ";"
               | "if" "(" expr ")" block ("else" (block | if-stmt))?
               | "while" "(" expr ")" block
               | "for" "(" simple ";" expr ";" simple ")" block
               | "return" expr? ";"
               | "P" "(" ident ")" ";" | "V" "(" ident ")" ";"
               | "send" "(" ident "," expr ")" ";"
               | "recv" "(" ident "," lhs ")" ";"
               | "spawn" ident "(" args ")" ";"
               | "join" "(" expr ")" ";"
               | "print" "(" expr ")" ";" | "assert" "(" expr ")" ";"
    rhs      ::= expr | ident "(" args ")" | "spawn" ident "(" args ")"
               | "join" "(" expr ")"
    v}

    Function calls are statements (optionally assigning their result);
    they cannot be nested inside expressions. Raises {!Diag.Error} on
    syntax errors. *)

val parse_program : string -> Ast.program
(** Parse a complete compilation unit from source text. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (used by tests and the CLI). *)
