open Ast

type state = { mutable toks : (Token.t * Loc.t) list }

let peek st = match st.toks with [] -> (Token.EOF, Loc.none) | t :: _ -> t

let peek_tok st = fst (peek st)

let peek2_tok st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Token.EOF

let cur_loc st = snd (peek st)

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let t, l = peek st in
  if Token.equal t tok then advance st
  else
    Diag.error l "expected %s but found %s" (Token.describe tok)
      (Token.describe t)

let expect_ident st =
  match peek st with
  | Token.IDENT s, _ ->
    advance st;
    s
  | t, l -> Diag.error l "expected identifier but found %s" (Token.describe t)

let expect_int st =
  match peek st with
  | Token.INT n, _ ->
    advance st;
    n
  | t, l ->
    Diag.error l "expected integer literal but found %s" (Token.describe t)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing.                                   *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Token.OROR -> Some Or
  | Token.ANDAND -> Some And
  | Token.EQ -> Some Eq
  | Token.NEQ -> Some Neq
  | Token.LT -> Some Lt
  | Token.LEQ -> Some Leq
  | Token.GT -> Some Gt
  | Token.GEQ -> Some Geq
  | Token.PLUS -> Some Add
  | Token.MINUS -> Some Sub
  | Token.STAR -> Some Mul
  | Token.SLASH -> Some Div
  | Token.PERCENT -> Some Mod
  | _ -> None

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match binop_of_token (peek_tok st) with
  | Some op when binop_prec op >= min_prec ->
    let l = cur_loc st in
    advance st;
    (* all MPL binary operators are left-associative *)
    let rhs = parse_expr_prec st (binop_prec op + 1) in
    climb st { eloc = l; edesc = Binop (op, lhs, rhs) } min_prec
  | Some _ | None -> lhs

and parse_unary st =
  match peek st with
  | Token.MINUS, l ->
    advance st;
    let e = parse_unary st in
    { eloc = l; edesc = Unop (Neg, e) }
  | Token.BANG, l ->
    advance st;
    let e = parse_unary st in
    { eloc = l; edesc = Unop (Not, e) }
  | _ -> parse_atom st

and parse_atom st =
  let t, l = peek st in
  match t with
  | Token.INT n ->
    advance st;
    { eloc = l; edesc = Int n }
  | Token.TRUE ->
    advance st;
    { eloc = l; edesc = Bool true }
  | Token.FALSE ->
    advance st;
    { eloc = l; edesc = Bool false }
  | Token.IDENT x ->
    advance st;
    if Token.equal (peek_tok st) Token.LBRACKET then begin
      advance st;
      let idx = parse_expr_prec st 0 in
      expect st Token.RBRACKET;
      { eloc = l; edesc = Index (x, idx) }
    end
    else if Token.equal (peek_tok st) Token.LPAREN then
      Diag.error l
        "function call '%s(..)' cannot appear inside an expression; calls \
         are statements: 'x = %s(..);' or '%s(..);'"
        x x x
    else { eloc = l; edesc = Var x }
  | Token.LPAREN ->
    advance st;
    let e = parse_expr_prec st 0 in
    expect st Token.RPAREN;
    e
  | t -> Diag.error l "expected expression but found %s" (Token.describe t)

let parse_expression st = parse_expr_prec st 0

(* ------------------------------------------------------------------ *)
(* Statements.                                                          *)
(* ------------------------------------------------------------------ *)

let parse_args st =
  expect st Token.LPAREN;
  if Token.equal (peek_tok st) Token.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expression st in
      if Token.equal (peek_tok st) Token.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    loop []

let parse_call st name cloc =
  let cargs = parse_args st in
  { cname = name; cargs; cloc }

(* Right-hand side of "lhs = ...": expression, call, spawn or join. *)
let parse_rhs st lhs sloc =
  match peek st with
  | Token.SPAWN, _ ->
    advance st;
    let l = cur_loc st in
    let name = expect_ident st in
    let c = parse_call st name l in
    { sloc; sdesc = Spawn (Some lhs, c) }
  | Token.JOIN, _ ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expression st in
    expect st Token.RPAREN;
    { sloc; sdesc = Join (Some lhs, e) }
  | Token.IDENT name, _ when Token.equal (peek2_tok st) Token.LPAREN ->
    let l = cur_loc st in
    advance st;
    let c = parse_call st name l in
    { sloc; sdesc = Call (Some lhs, c) }
  | _ ->
    let e = parse_expression st in
    { sloc; sdesc = Assign (lhs, e) }

(* A "simple" statement usable in for-headers: assignment or call,
   without the trailing semicolon. *)
let parse_simple st =
  let t, sloc = peek st in
  match t with
  | Token.IDENT x -> (
    advance st;
    match peek_tok st with
    | Token.ASSIGN ->
      advance st;
      parse_rhs st (Lvar x) sloc
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expression st in
      expect st Token.RBRACKET;
      expect st Token.ASSIGN;
      parse_rhs st (Lindex (x, idx)) sloc
    | Token.LPAREN ->
      let c = parse_call st x sloc in
      { sloc; sdesc = Call (None, c) }
    | t ->
      Diag.error sloc "expected '=', '[' or '(' after '%s' but found %s" x
        (Token.describe t))
  | t -> Diag.error sloc "expected statement but found %s" (Token.describe t)

(* [parse_stmt] returns a list because `var x = f(..);` desugars into a
   declaration followed by a call statement. *)
let rec parse_stmt st =
  let t, sloc = peek st in
  match t with
  | Token.VAR -> (
    advance st;
    let x = expect_ident st in
    match peek_tok st with
    | Token.ASSIGN -> (
      advance st;
      match peek_tok st with
      | Token.SPAWN | Token.JOIN -> decl_with_call st x sloc
      | Token.IDENT _ when Token.equal (peek2_tok st) Token.LPAREN ->
        decl_with_call st x sloc
      | _ ->
        let e = parse_expression st in
        expect st Token.SEMI;
        [ { sloc; sdesc = Decl (x, Some e) } ])
    | Token.LBRACKET ->
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      expect st Token.SEMI;
      [ { sloc; sdesc = Decl_array (x, n) } ]
    | _ ->
      expect st Token.SEMI;
      [ { sloc; sdesc = Decl (x, None) } ])
  | Token.IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if Token.equal (peek_tok st) Token.ELSE then begin
        advance st;
        if Token.equal (peek_tok st) Token.IF then parse_stmt st
        else parse_block st
      end
      else []
    in
    [ { sloc; sdesc = If (cond, then_, else_) } ]
  | Token.WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expression st in
    expect st Token.RPAREN;
    let body = parse_block st in
    [ { sloc; sdesc = While (cond, body) } ]
  | Token.FOR ->
    advance st;
    expect st Token.LPAREN;
    let init = parse_simple st in
    expect st Token.SEMI;
    let cond = parse_expression st in
    expect st Token.SEMI;
    let step = parse_simple st in
    expect st Token.RPAREN;
    let body = parse_block st in
    [ { sloc; sdesc = For (init, cond, step, body) } ]
  | Token.RETURN ->
    advance st;
    if Token.equal (peek_tok st) Token.SEMI then begin
      advance st;
      [ { sloc; sdesc = Return None } ]
    end
    else begin
      let e = parse_expression st in
      expect st Token.SEMI;
      [ { sloc; sdesc = Return (Some e) } ]
    end
  | Token.PSEM ->
    advance st;
    expect st Token.LPAREN;
    let s = expect_ident st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Sem_p s } ]
  | Token.VSEM ->
    advance st;
    expect st Token.LPAREN;
    let s = expect_ident st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Sem_v s } ]
  | Token.SEND ->
    advance st;
    expect st Token.LPAREN;
    let c = expect_ident st in
    expect st Token.COMMA;
    let e = parse_expression st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Send (c, e) } ]
  | Token.RECV ->
    advance st;
    expect st Token.LPAREN;
    let c = expect_ident st in
    expect st Token.COMMA;
    let l = parse_lhs st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Recv (c, l) } ]
  | Token.SPAWN ->
    advance st;
    let l = cur_loc st in
    let name = expect_ident st in
    let c = parse_call st name l in
    expect st Token.SEMI;
    [ { sloc; sdesc = Spawn (None, c) } ]
  | Token.JOIN ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expression st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Join (None, e) } ]
  | Token.PRINT ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expression st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Print e } ]
  | Token.ASSERT ->
    advance st;
    expect st Token.LPAREN;
    let e = parse_expression st in
    expect st Token.RPAREN;
    expect st Token.SEMI;
    [ { sloc; sdesc = Assert e } ]
  | Token.IDENT _ ->
    let s = parse_simple st in
    expect st Token.SEMI;
    [ s ]
  | t -> Diag.error sloc "expected statement but found %s" (Token.describe t)

and decl_with_call st x sloc =
  let decl = { sloc; sdesc = Decl (x, None) } in
  let call = parse_rhs st (Lvar x) sloc in
  expect st Token.SEMI;
  [ decl; call ]

and parse_lhs st =
  let x = expect_ident st in
  if Token.equal (peek_tok st) Token.LBRACKET then begin
    advance st;
    let idx = parse_expression st in
    expect st Token.RBRACKET;
    Lindex (x, idx)
  end
  else Lvar x

and parse_block st =
  expect st Token.LBRACE;
  let rec loop acc =
    if Token.equal (peek_tok st) Token.RBRACE then begin
      advance st;
      List.concat (List.rev acc)
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Top-level declarations.                                              *)
(* ------------------------------------------------------------------ *)

let parse_topdecl st =
  let t, l = peek st in
  match t with
  | Token.SHARED -> (
    advance st;
    expect st Token.KINT;
    let x = expect_ident st in
    match peek_tok st with
    | Token.ASSIGN ->
      advance st;
      let e = parse_expression st in
      expect st Token.SEMI;
      Gshared (x, Gscalar (Some e), l)
    | Token.LBRACKET ->
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      expect st Token.SEMI;
      Gshared (x, Garray n, l)
    | _ ->
      expect st Token.SEMI;
      Gshared (x, Gscalar None, l))
  | Token.SEM ->
    advance st;
    let x = expect_ident st in
    expect st Token.ASSIGN;
    let n = expect_int st in
    expect st Token.SEMI;
    Gsem (x, n, l)
  | Token.CHAN ->
    advance st;
    let x = expect_ident st in
    if Token.equal (peek_tok st) Token.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Token.RBRACKET;
      expect st Token.SEMI;
      Gchan (x, Some n, l)
    end
    else begin
      expect st Token.SEMI;
      Gchan (x, None, l)
    end
  | Token.FUNC ->
    advance st;
    let fname = expect_ident st in
    expect st Token.LPAREN;
    let fparams =
      if Token.equal (peek_tok st) Token.RPAREN then begin
        advance st;
        []
      end
      else
        let rec loop acc =
          let p = expect_ident st in
          if Token.equal (peek_tok st) Token.COMMA then begin
            advance st;
            loop (p :: acc)
          end
          else begin
            expect st Token.RPAREN;
            List.rev (p :: acc)
          end
        in
        loop []
    in
    let fbody = parse_block st in
    Gfunc { fname; fparams; fbody; floc = l }
  | t ->
    Diag.error l
      "expected top-level declaration (shared, sem, chan, func) but found %s"
      (Token.describe t)

let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    if Token.equal (peek_tok st) Token.EOF then List.rev acc
    else loop (parse_topdecl st :: acc)
  in
  loop []

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Token.EOF;
  e
