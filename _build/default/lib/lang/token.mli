(** Lexical tokens of MPL. *)

type t =
  (* literals and identifiers *)
  | INT of int
  | IDENT of string
  | TRUE
  | FALSE
  (* keywords *)
  | FUNC
  | VAR
  | SHARED
  | SEM
  | CHAN
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | SPAWN
  | JOIN
  | PSEM (* P *)
  | VSEM (* V *)
  | SEND
  | RECV
  | PRINT
  | ASSERT
  | KINT (* type int *)
  | KBOOL (* type bool *)
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | ANDAND
  | OROR
  | BANG
  (* end of input *)
  | EOF

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val describe : t -> string
(** Human-friendly name used in parse-error messages, e.g. [")"] or
    ["identifier"]. *)
