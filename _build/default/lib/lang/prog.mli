(** Resolved MPL programs.

    This is the representation every later phase consumes. Identifiers
    are resolved to {!var} records carrying a program-wide unique id
    [vid] (used to index variable sets in the analyses and values in
    prelogs/postlogs) and a storage slot:

    - globals live in the shared store, indexed by their global slot;
    - locals (including parameters) live in per-process frames, indexed
      by their frame slot.

    Every statement carries a program-wide unique id [sid] assigned in
    pre-order; [sid]s index the static CFG/PDG and identify program
    components in dynamic-graph nodes. [var x = e;] declarations are
    desugared to assignments, [var x;]/[var a\[n\];] reserve a slot only,
    and [for] loops are desugared to [while] loops, so the statement
    vocabulary seen by analyses is minimal. *)

type ty = Tint | Tarr of int  (** array length *)

type scope =
  | Global of int  (** slot in the shared store *)
  | Local of int  (** slot in the owning function's frame *)

type var = {
  vid : int;  (** program-wide unique id *)
  vname : string;
  vty : ty;
  vscope : scope;
  vfid : int;  (** owning function id, or -1 for globals *)
}

type sem = { sem_id : int; sem_name : string; sem_init : int }

type chan = {
  ch_id : int;
  ch_name : string;
  ch_cap : int option;
      (** [None] = unbounded buffer; [Some 0] = synchronous (blocking
          send); [Some k] = bounded buffer of capacity [k]. *)
}

type expr =
  | Eint of int
  | Ebool of bool
  | Evar of var
  | Eidx of var * expr
  | Eunop of Ast.unop * expr
  | Ebinop of Ast.binop * expr * expr

type lhs = Lvar of var | Lidx of var * expr

type call = { callee : int; cargs : expr list }

type stmt = { sid : int; loc : Loc.t; desc : stmt_desc }

and stmt_desc =
  | Sassign of lhs * expr
  | Scall of lhs option * call
  | Sspawn of lhs option * call
  | Sjoin of lhs option * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sreturn of expr option
  | Sp of sem
  | Sv of sem
  | Ssend of chan * expr
  | Srecv of chan * lhs
  | Sprint of expr
  | Sassert of expr

type func = {
  fid : int;
  fname : string;
  params : var list;
  locals : var list;  (** every frame variable, parameters first *)
  nslots : int;  (** frame size *)
  body : stmt list;
  floc : Loc.t;
  returns_value : bool;
}

type ginit = Ginit_int of int | Ginit_arr of int

type t = {
  funcs : func array;  (** indexed by [fid] *)
  globals : var array;  (** indexed by global slot *)
  global_inits : ginit array;
  sems : sem array;
  chans : chan array;
  main_fid : int;
  nvars : int;  (** total number of distinct variables, globals first *)
  stmts : stmt array;  (** indexed by [sid] *)
  stmt_fid : int array;  (** [sid] -> owning function *)
  vars : var array;  (** indexed by [vid] *)
}

val func_of_stmt : t -> int -> func
(** [func_of_stmt p sid] is the function containing statement [sid]. *)

val find_func : t -> string -> func option
(** Look a function up by name. *)

val is_global : var -> bool

val is_shared : var -> bool
(** In MPL every global is shared between processes; alias of
    {!is_global}, named for readability at call sites that reason about
    inter-process visibility. *)

val expr_reads : expr -> var list
(** Variables read by an expression, in evaluation order, duplicates
    preserved. Reading [a\[i\]] reads both [a] and the variables of [i]. *)

val lhs_writes : lhs -> var
(** The variable written by an assignment target ([a\[i\] = ..] writes
    [a]). *)

val lhs_index_reads : lhs -> var list
(** Variables read while evaluating the target's index expression. *)

val stmt_label : stmt -> string
(** Short display label used for graph nodes, e.g. ["d = SubD(..)"],
    ["(d > 0)"], ["P(mutex)"]. *)

val pp_expr : Format.formatter -> expr -> unit

val pp_stmt_head : Format.formatter -> stmt -> unit
(** One-line rendering of a statement without its nested bodies. *)

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Pre-order traversal of a statement forest, visiting nested bodies. *)
