lib/lang/compile.ml: Diag Resolve Typecheck
