lib/lang/loc.ml: Format Int
