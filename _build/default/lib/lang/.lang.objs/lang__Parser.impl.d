lib/lang/parser.ml: Ast Diag Lexer List Loc Token
