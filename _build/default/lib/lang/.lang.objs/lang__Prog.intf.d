lib/lang/prog.mli: Ast Format Loc
