lib/lang/resolve.ml: Array Ast Diag Hashtbl Int List Loc Map Option Parser Prog String
