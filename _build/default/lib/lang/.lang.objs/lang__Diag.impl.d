lib/lang/diag.ml: Format Loc
