lib/lang/typecheck.ml: Array Ast Diag Format List Option Prog
