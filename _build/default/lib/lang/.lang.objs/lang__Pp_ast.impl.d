lib/lang/pp_ast.ml: Ast Format List
