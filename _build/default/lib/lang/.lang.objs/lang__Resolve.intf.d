lib/lang/resolve.mli: Ast Prog
