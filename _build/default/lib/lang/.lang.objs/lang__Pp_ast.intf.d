lib/lang/pp_ast.mli: Ast Format
