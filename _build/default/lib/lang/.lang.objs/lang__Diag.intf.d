lib/lang/diag.mli: Format Loc
