lib/lang/token.ml: Format
