lib/lang/typecheck.mli: Loc Prog
