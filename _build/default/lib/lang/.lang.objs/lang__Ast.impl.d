lib/lang/ast.ml: Format List Loc String
