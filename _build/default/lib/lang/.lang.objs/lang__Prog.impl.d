lib/lang/prog.ml: Array Ast Format List Loc String
