lib/lang/compile.mli: Loc Prog
