type ty = Tint | Tarr of int

type scope = Global of int | Local of int

type var = {
  vid : int;
  vname : string;
  vty : ty;
  vscope : scope;
  vfid : int;
}

type sem = { sem_id : int; sem_name : string; sem_init : int }

type chan = { ch_id : int; ch_name : string; ch_cap : int option }

type expr =
  | Eint of int
  | Ebool of bool
  | Evar of var
  | Eidx of var * expr
  | Eunop of Ast.unop * expr
  | Ebinop of Ast.binop * expr * expr

type lhs = Lvar of var | Lidx of var * expr

type call = { callee : int; cargs : expr list }

type stmt = { sid : int; loc : Loc.t; desc : stmt_desc }

and stmt_desc =
  | Sassign of lhs * expr
  | Scall of lhs option * call
  | Sspawn of lhs option * call
  | Sjoin of lhs option * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sreturn of expr option
  | Sp of sem
  | Sv of sem
  | Ssend of chan * expr
  | Srecv of chan * lhs
  | Sprint of expr
  | Sassert of expr

type func = {
  fid : int;
  fname : string;
  params : var list;
  locals : var list;
  nslots : int;
  body : stmt list;
  floc : Loc.t;
  returns_value : bool;
}

type ginit = Ginit_int of int | Ginit_arr of int

type t = {
  funcs : func array;
  globals : var array;
  global_inits : ginit array;
  sems : sem array;
  chans : chan array;
  main_fid : int;
  nvars : int;
  stmts : stmt array;
  stmt_fid : int array;
  vars : var array;
}

let func_of_stmt p sid = p.funcs.(p.stmt_fid.(sid))

let find_func p name =
  Array.find_opt (fun f -> String.equal f.fname name) p.funcs

let is_global v = match v.vscope with Global _ -> true | Local _ -> false

let is_shared = is_global

let rec expr_reads = function
  | Eint _ | Ebool _ -> []
  | Evar v -> [ v ]
  | Eidx (v, i) -> v :: expr_reads i
  | Eunop (_, e) -> expr_reads e
  | Ebinop (_, a, b) -> expr_reads a @ expr_reads b

let lhs_writes = function Lvar v -> v | Lidx (v, _) -> v

let lhs_index_reads = function Lvar _ -> [] | Lidx (_, i) -> expr_reads i

let rec pp_expr ppf = function
  | Eint n -> Format.pp_print_int ppf n
  | Ebool b -> Format.pp_print_bool ppf b
  | Evar v -> Format.pp_print_string ppf v.vname
  | Eidx (v, i) -> Format.fprintf ppf "%s[%a]" v.vname pp_expr i
  | Eunop (op, e) -> Format.fprintf ppf "%a%a" Ast.pp_unop op pp_expr_atom e
  | Ebinop (op, a, b) ->
    Format.fprintf ppf "%a %a %a" pp_expr_atom a Ast.pp_binop op pp_expr_atom b

and pp_expr_atom ppf e =
  match e with
  | Ebinop _ -> Format.fprintf ppf "(%a)" pp_expr e
  | Eint _ | Ebool _ | Evar _ | Eidx _ | Eunop _ -> pp_expr ppf e

let pp_lhs ppf = function
  | Lvar v -> Format.pp_print_string ppf v.vname
  | Lidx (v, i) -> Format.fprintf ppf "%s[%a]" v.vname pp_expr i

let pp_target ppf = function
  | None -> ()
  | Some l -> Format.fprintf ppf "%a = " pp_lhs l

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let pp_stmt_head ppf s =
  match s.desc with
  | Sassign (l, e) -> Format.fprintf ppf "%a = %a" pp_lhs l pp_expr e
  | Scall (l, c) -> Format.fprintf ppf "%acall#%d(%a)" pp_target l c.callee pp_args c.cargs
  | Sspawn (l, c) ->
    Format.fprintf ppf "%aspawn#%d(%a)" pp_target l c.callee pp_args c.cargs
  | Sjoin (l, e) -> Format.fprintf ppf "%ajoin(%a)" pp_target l pp_expr e
  | Sif (c, _, _) -> Format.fprintf ppf "if (%a)" pp_expr c
  | Swhile (c, _) -> Format.fprintf ppf "while (%a)" pp_expr c
  | Sreturn None -> Format.pp_print_string ppf "return"
  | Sreturn (Some e) -> Format.fprintf ppf "return %a" pp_expr e
  | Sp s -> Format.fprintf ppf "P(%s)" s.sem_name
  | Sv s -> Format.fprintf ppf "V(%s)" s.sem_name
  | Ssend (c, e) -> Format.fprintf ppf "send(%s, %a)" c.ch_name pp_expr e
  | Srecv (c, l) -> Format.fprintf ppf "recv(%s, %a)" c.ch_name pp_lhs l
  | Sprint e -> Format.fprintf ppf "print(%a)" pp_expr e
  | Sassert e -> Format.fprintf ppf "assert(%a)" pp_expr e

let stmt_label s =
  match s.desc with
  | Sif (c, _, _) | Swhile (c, _) -> Format.asprintf "(%a)" pp_expr c
  | _ -> Format.asprintf "%a" pp_stmt_head s

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.desc with
      | Sif (_, t, e) ->
        iter_stmts f t;
        iter_stmts f e
      | Swhile (_, b) -> iter_stmts f b
      | Sassign _ | Scall _ | Sspawn _ | Sjoin _ | Sreturn _ | Sp _ | Sv _
      | Ssend _ | Srecv _ | Sprint _ | Sassert _ ->
        ())
    stmts
