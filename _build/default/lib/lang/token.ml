type t =
  | INT of int
  | IDENT of string
  | TRUE
  | FALSE
  | FUNC
  | VAR
  | SHARED
  | SEM
  | CHAN
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | SPAWN
  | JOIN
  | PSEM
  | VSEM
  | SEND
  | RECV
  | PRINT
  | ASSERT
  | KINT
  | KBOOL
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | ANDAND
  | OROR
  | BANG
  | EOF

let describe = function
  | INT _ -> "integer literal"
  | IDENT _ -> "identifier"
  | TRUE -> "true"
  | FALSE -> "false"
  | FUNC -> "func"
  | VAR -> "var"
  | SHARED -> "shared"
  | SEM -> "sem"
  | CHAN -> "chan"
  | IF -> "if"
  | ELSE -> "else"
  | WHILE -> "while"
  | FOR -> "for"
  | RETURN -> "return"
  | SPAWN -> "spawn"
  | JOIN -> "join"
  | PSEM -> "P"
  | VSEM -> "V"
  | SEND -> "send"
  | RECV -> "recv"
  | PRINT -> "print"
  | ASSERT -> "assert"
  | KINT -> "int"
  | KBOOL -> "bool"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "end of input"

let pp ppf t =
  match t with
  | INT n -> Format.fprintf ppf "INT(%d)" n
  | IDENT s -> Format.fprintf ppf "IDENT(%s)" s
  | other -> Format.pp_print_string ppf (describe other)

let to_string t = Format.asprintf "%a" pp t

let equal (a : t) (b : t) = a = b
