(** Hand-written lexer for MPL source text.

    Comments are C++-style ([// ... \n]) and C-style ([/* ... */], no
    nesting). Raises {!Diag.Error} on malformed input (unterminated
    comment, stray character, integer overflow). *)

val tokenize : string -> (Token.t * Loc.t) list
(** [tokenize src] lexes the whole of [src]. The result always ends with
    a single [(EOF, loc)] pair. *)
