let compile src =
  let p = Resolve.parse_and_resolve src in
  Typecheck.check p;
  p

let compile_result src = Diag.protect (fun () -> compile src)
