(** Raw (unresolved) abstract syntax of MPL, as produced by the parser.

    Identifiers are plain strings; {!Resolve} turns this into the
    slot-indexed {!Prog} representation that all later phases consume.

    MPL is deliberately close to the C fragment used throughout the
    paper: functions, scalar and array variables, structured control
    flow, shared globals, semaphores, message channels and
    process creation. Function calls appear only as complete right-hand
    sides of assignments or as call statements, so every call site is a
    distinct statement — exactly the granularity at which the paper's
    dynamic graphs introduce sub-graph nodes. *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or

type expr = { eloc : Loc.t; edesc : expr_desc }

and expr_desc =
  | Int of int
  | Bool of bool
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

(** Left-hand sides of assignments and receive targets. *)
type lhs = Lvar of string | Lindex of string * expr

(** A call to a user function: callee name and actual arguments. *)
type call = { cname : string; cargs : expr list; cloc : Loc.t }

type stmt = { sloc : Loc.t; sdesc : stmt_desc }

and stmt_desc =
  | Decl of string * expr option  (** [var x;] or [var x = e;] *)
  | Decl_array of string * int  (** [var a\[n\];] *)
  | Assign of lhs * expr
  | Call of lhs option * call  (** [f(..);] or [x = f(..);] *)
  | Spawn of lhs option * call  (** [spawn f(..);] or [x = spawn f(..);] *)
  | Join of lhs option * expr  (** [join(e);] or [x = join(e);] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
      (** [for (init; cond; step) body] — desugared by {!Resolve}. *)
  | Return of expr option
  | Sem_p of string  (** [P(s);] *)
  | Sem_v of string  (** [V(s);] *)
  | Send of string * expr  (** [send(c, e);] *)
  | Recv of string * lhs  (** [recv(c, x);] *)
  | Print of expr
  | Assert of expr

type global_init = Gscalar of expr option | Garray of int

type topdecl =
  | Gshared of string * global_init * Loc.t
      (** [shared int g = e;] / [shared int a\[n\];] — all globals are
          shared between processes. *)
  | Gsem of string * int * Loc.t  (** [sem s = n;] *)
  | Gchan of string * int option * Loc.t
      (** [chan c;] (unbounded), [chan c\[0\];] (synchronous / blocking
          send), [chan c\[k\];] (bounded). *)
  | Gfunc of func

and func = {
  fname : string;
  fparams : string list;
  fbody : stmt list;
  floc : Loc.t;
}

type program = topdecl list

val expr_equal : expr -> expr -> bool
(** Structural equality ignoring locations. *)

val stmt_equal : stmt -> stmt -> bool

val program_equal : program -> program -> bool

val pp_unop : Format.formatter -> unop -> unit

val pp_binop : Format.formatter -> binop -> unit

val binop_prec : binop -> int
(** Binding strength used by the parser and pretty-printer; higher binds
    tighter. *)
