(** Name resolution: raw {!Ast.program} -> resolved {!Prog.t}.

    Responsibilities:
    - binds every identifier to a variable / semaphore / channel /
      function, with a single flat namespace for top-level names;
    - allocates frame slots for locals (parameters first) and shared
      store slots for globals, and assigns program-wide [vid]s;
    - assigns pre-order statement ids ([sid]s) and builds the statement
      table;
    - desugars [var x = e;] to assignments, [for] to [while], and drops
      bare declarations;
    - evaluates global initialisers (constant expressions only);
    - enforces scoping (declare-before-use, block scope, no shadowing of
      top-level names, no duplicate locals) and structural rules (arity
      of calls, [main()] exists and takes no parameters, assigning calls
      target value-returning functions, returns are all-valued or
      all-void per function).

    Raises {!Diag.Error} with a source location on any violation. *)

val resolve : Ast.program -> Prog.t

val parse_and_resolve : string -> Prog.t
(** Convenience: {!Parser.parse_program} followed by {!resolve}. *)
