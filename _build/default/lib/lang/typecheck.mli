(** Static type checking of resolved MPL programs.

    MPL storage is monomorphic: every scalar variable holds an integer,
    arrays hold integers, and booleans exist only transiently inside
    expressions (comparisons, logical operators, conditions, asserts).
    The checker enforces:

    - arrays are only used indexed, scalars never indexed;
    - arithmetic on integers, logic on booleans, comparisons between
      integers;
    - conditions of [if]/[while]/[assert] are boolean;
    - assigned expressions, call/spawn arguments, send payloads and
      valued returns are integers;
    - [print] accepts either type.

    Raises {!Diag.Error} on the first violation. *)

val check : Prog.t -> unit

val check_expr : Prog.t -> Loc.t -> Prog.expr -> [ `Int | `Bool ]
(** Type of a single expression in a context-free setting; exposed for
    the interactive CLI. *)
