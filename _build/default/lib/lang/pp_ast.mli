(** Pretty-printer for raw MPL syntax.

    Output is valid MPL: [Parser.parse_program (to_string p)] yields a
    program structurally equal to [p] (property-tested). *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string

val program_to_string : Ast.program -> string
