open Prog

type ety = [ `Int | `Bool ]

let pp_ety ppf = function
  | `Int -> Format.pp_print_string ppf "int"
  | `Bool -> Format.pp_print_string ppf "bool"

let rec type_expr loc (e : expr) : ety =
  match e with
  | Eint _ -> `Int
  | Ebool _ -> `Bool
  | Evar v -> (
    match v.vty with
    | Tint -> `Int
    | Tarr _ ->
      Diag.error loc "array '%s' cannot be used as a scalar value" v.vname)
  | Eidx (v, i) -> (
    expect_int loc i "array index";
    match v.vty with
    | Tarr _ -> `Int
    | Tint -> Diag.error loc "'%s' is a scalar and cannot be indexed" v.vname)
  | Eunop (Ast.Neg, a) ->
    expect_int loc a "operand of unary '-'";
    `Int
  | Eunop (Ast.Not, a) ->
    expect_bool loc a "operand of '!'";
    `Bool
  | Ebinop (op, a, b) -> (
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      expect_int loc a "arithmetic operand";
      expect_int loc b "arithmetic operand";
      `Int
    | Ast.Lt | Ast.Leq | Ast.Gt | Ast.Geq ->
      expect_int loc a "comparison operand";
      expect_int loc b "comparison operand";
      `Bool
    | Ast.Eq | Ast.Neq ->
      let ta = type_expr loc a and tb = type_expr loc b in
      if ta <> tb then
        Diag.error loc "'==' / '!=' compare %a with %a" pp_ety ta pp_ety tb;
      `Bool
    | Ast.And | Ast.Or ->
      expect_bool loc a "logical operand";
      expect_bool loc b "logical operand";
      `Bool)

and expect_int loc e what =
  match type_expr loc e with
  | `Int -> ()
  | `Bool -> Diag.error loc "%s must be an integer, found bool" what

and expect_bool loc e what =
  match type_expr loc e with
  | `Bool -> ()
  | `Int -> Diag.error loc "%s must be a boolean, found int" what

let check_lhs loc (l : lhs) =
  match l with
  | Lvar v -> (
    match v.vty with
    | Tint -> ()
    | Tarr _ ->
      Diag.error loc "cannot assign to whole array '%s'; assign elements"
        v.vname)
  | Lidx (v, i) -> (
    expect_int loc i "array index";
    match v.vty with
    | Tarr _ -> ()
    | Tint -> Diag.error loc "'%s' is a scalar and cannot be indexed" v.vname)

let rec check_stmt (s : stmt) =
  let loc = s.loc in
  match s.desc with
  | Sassign (l, e) ->
    check_lhs loc l;
    expect_int loc e "assigned value"
  | Scall (l, c) | Sspawn (l, c) ->
    Option.iter (check_lhs loc) l;
    List.iter (fun a -> expect_int loc a "argument") c.cargs
  | Sjoin (l, e) ->
    Option.iter (check_lhs loc) l;
    expect_int loc e "join target (process id)"
  | Sif (c, t, e) ->
    expect_bool loc c "if condition";
    List.iter check_stmt t;
    List.iter check_stmt e
  | Swhile (c, b) ->
    expect_bool loc c "while condition";
    List.iter check_stmt b
  | Sreturn None -> ()
  | Sreturn (Some e) -> expect_int loc e "returned value"
  | Sp _ | Sv _ -> ()
  | Ssend (_, e) -> expect_int loc e "message payload"
  | Srecv (_, l) -> check_lhs loc l
  | Sprint e -> ignore (type_expr loc e)
  | Sassert e -> expect_bool loc e "assert condition"

let check (p : t) = Array.iter (fun f -> List.iter check_stmt f.body) p.funcs

let check_expr (_p : t) loc e = type_expr loc e
