(** Source locations for MPL programs.

    A location is a [line]/[column] pair, both 1-based. The distinguished
    value {!none} marks synthesised program points (e.g. statements created
    by desugaring) that have no source position. *)

type t = { line : int; col : int }

val none : t
(** Location of synthesised nodes; prints as ["?"]. *)

val make : line:int -> col:int -> t

val is_none : t -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** [pp] prints ["line:col"], or ["?"] for {!none}. *)

val to_string : t -> string
