module P = Prog
module StrMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Constant evaluation of global initialisers.                          *)
(* ------------------------------------------------------------------ *)

type cval = Cint of int | Cbool of bool

let rec const_eval (e : Ast.expr) : cval =
  let int_of v loc =
    match v with
    | Cint n -> n
    | Cbool _ -> Diag.error loc "expected integer constant"
  in
  let bool_of v loc =
    match v with
    | Cbool b -> b
    | Cint _ -> Diag.error loc "expected boolean constant"
  in
  match e.edesc with
  | Ast.Int n -> Cint n
  | Ast.Bool b -> Cbool b
  | Ast.Var x ->
    Diag.error e.eloc "global initialisers must be constant; '%s' is not" x
  | Ast.Index _ ->
    Diag.error e.eloc "global initialisers must be constant expressions"
  | Ast.Unop (Ast.Neg, a) -> Cint (-int_of (const_eval a) a.eloc)
  | Ast.Unop (Ast.Not, a) -> Cbool (not (bool_of (const_eval a) a.eloc))
  | Ast.Binop (op, a, b) -> (
    let va = const_eval a and vb = const_eval b in
    let ia () = int_of va a.eloc and ib () = int_of vb b.eloc in
    let ba () = bool_of va a.eloc and bb () = bool_of vb b.eloc in
    match op with
    | Ast.Add -> Cint (ia () + ib ())
    | Ast.Sub -> Cint (ia () - ib ())
    | Ast.Mul -> Cint (ia () * ib ())
    | Ast.Div ->
      if ib () = 0 then Diag.error e.eloc "division by zero in constant"
      else Cint (ia () / ib ())
    | Ast.Mod ->
      if ib () = 0 then Diag.error e.eloc "division by zero in constant"
      else Cint (ia () mod ib ())
    | Ast.Eq -> Cbool (ia () = ib ())
    | Ast.Neq -> Cbool (ia () <> ib ())
    | Ast.Lt -> Cbool (ia () < ib ())
    | Ast.Leq -> Cbool (ia () <= ib ())
    | Ast.Gt -> Cbool (ia () > ib ())
    | Ast.Geq -> Cbool (ia () >= ib ())
    | Ast.And -> Cbool (ba () && bb ())
    | Ast.Or -> Cbool (ba () || bb ()))

(* ------------------------------------------------------------------ *)
(* Top-level environment.                                               *)
(* ------------------------------------------------------------------ *)

type top_entry =
  | Tvar of P.var
  | Tsem of P.sem
  | Tchan of P.chan
  | Tfunc of int (* fid *)

let describe_entry = function
  | Tvar _ -> "a shared variable"
  | Tsem _ -> "a semaphore"
  | Tchan _ -> "a channel"
  | Tfunc _ -> "a function"

type ctx = {
  mutable top : top_entry StrMap.t;
  mutable vars_rev : P.var list;  (* all vars, reversed *)
  mutable nvars : int;
  mutable stmts_rev : P.stmt list;  (* all stmts, reversed by sid *)
  mutable nstmts : int;
  (* raw function declarations, for arity checks before bodies resolve *)
  mutable fsigs : (string * int * bool) array;
      (* name, arity, returns_value -- indexed by fid *)
}

let fresh_var ctx ~name ~ty ~scope ~fid =
  let v =
    { P.vid = ctx.nvars; vname = name; vty = ty; vscope = scope; vfid = fid }
  in
  ctx.nvars <- ctx.nvars + 1;
  ctx.vars_rev <- v :: ctx.vars_rev;
  v

let fresh_sid ctx =
  let sid = ctx.nstmts in
  ctx.nstmts <- ctx.nstmts + 1;
  sid

let record_stmt ctx s = ctx.stmts_rev <- s :: ctx.stmts_rev

(* ------------------------------------------------------------------ *)
(* Pre-pass: does a raw function body contain a valued return?          *)
(* ------------------------------------------------------------------ *)

let rec raw_stmts_return stmts = List.exists raw_stmt_returns stmts

and raw_stmt_returns (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Return (Some _) -> true
  | Ast.Return None -> false
  | Ast.If (_, t, e) -> raw_stmts_return t || raw_stmts_return e
  | Ast.While (_, b) -> raw_stmts_return b
  | Ast.For (_, _, _, b) -> raw_stmts_return b
  | Ast.Decl _ | Ast.Decl_array _ | Ast.Assign _ | Ast.Call _ | Ast.Spawn _
  | Ast.Join _ | Ast.Sem_p _ | Ast.Sem_v _ | Ast.Send _ | Ast.Recv _
  | Ast.Print _ | Ast.Assert _ ->
    false

let rec raw_stmts_return_void stmts = List.exists raw_stmt_returns_void stmts

and raw_stmt_returns_void (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Return None -> true
  | Ast.Return (Some _) -> false
  | Ast.If (_, t, e) -> raw_stmts_return_void t || raw_stmts_return_void e
  | Ast.While (_, b) -> raw_stmts_return_void b
  | Ast.For (_, _, _, b) -> raw_stmts_return_void b
  | Ast.Decl _ | Ast.Decl_array _ | Ast.Assign _ | Ast.Call _ | Ast.Spawn _
  | Ast.Join _ | Ast.Sem_p _ | Ast.Sem_v _ | Ast.Send _ | Ast.Recv _
  | Ast.Print _ | Ast.Assert _ ->
    false

(* ------------------------------------------------------------------ *)
(* Per-function resolution.                                             *)
(* ------------------------------------------------------------------ *)

type fctx = {
  ctx : ctx;
  fid : int;
  mutable slots : int;  (* next free frame slot *)
  mutable all_locals_rev : P.var list;
  mutable local_names : unit StrMap.t;  (* every local ever declared *)
  mutable scope_stack : string list ref list;
      (* names declared in each open block, innermost first *)
  mutable visible : P.var StrMap.t;  (* currently visible locals *)
}

let enter_block fc = fc.scope_stack <- ref [] :: fc.scope_stack

let exit_block fc =
  match fc.scope_stack with
  | [] -> assert false
  | declared :: rest ->
    List.iter (fun n -> fc.visible <- StrMap.remove n fc.visible) !declared;
    fc.scope_stack <- rest

let declare_local fc ~loc ~name ~ty =
  (match StrMap.find_opt name fc.ctx.top with
  | Some entry ->
    Diag.error loc "local '%s' shadows %s" name (describe_entry entry)
  | None -> ());
  if StrMap.mem name fc.local_names then
    Diag.error loc "duplicate local variable '%s'" name;
  let v =
    fresh_var fc.ctx ~name ~ty ~scope:(P.Local fc.slots) ~fid:fc.fid
  in
  fc.slots <- fc.slots + 1;
  fc.all_locals_rev <- v :: fc.all_locals_rev;
  fc.local_names <- StrMap.add name () fc.local_names;
  fc.visible <- StrMap.add name v fc.visible;
  (match fc.scope_stack with
  | [] -> assert false
  | declared :: _ -> declared := name :: !declared);
  v

let lookup_var fc ~loc name =
  match StrMap.find_opt name fc.visible with
  | Some v -> v
  | None -> (
    match StrMap.find_opt name fc.ctx.top with
    | Some (Tvar v) -> v
    | Some entry ->
      Diag.error loc "'%s' is %s, not a variable" name (describe_entry entry)
    | None -> Diag.error loc "unknown variable '%s'" name)

let check_not_local fc ~loc name what =
  if StrMap.mem name fc.visible then
    Diag.error loc "'%s' is a variable, not %s" name what

let lookup_sem fc ~loc name =
  check_not_local fc ~loc name "a semaphore";
  match StrMap.find_opt name fc.ctx.top with
  | Some (Tsem s) -> s
  | Some entry ->
    Diag.error loc "'%s' is %s, not a semaphore" name (describe_entry entry)
  | None -> Diag.error loc "unknown semaphore '%s'" name

let lookup_chan fc ~loc name =
  check_not_local fc ~loc name "a channel";
  match StrMap.find_opt name fc.ctx.top with
  | Some (Tchan c) -> c
  | Some entry ->
    Diag.error loc "'%s' is %s, not a channel" name (describe_entry entry)
  | None -> Diag.error loc "unknown channel '%s'" name

let lookup_func fc ~loc name =
  check_not_local fc ~loc name "a function";
  match StrMap.find_opt name fc.ctx.top with
  | Some (Tfunc fid) -> fid
  | Some entry ->
    Diag.error loc "'%s' is %s, not a function" name (describe_entry entry)
  | None -> Diag.error loc "unknown function '%s'" name

let rec resolve_expr fc (e : Ast.expr) : P.expr =
  match e.edesc with
  | Ast.Int n -> P.Eint n
  | Ast.Bool b -> P.Ebool b
  | Ast.Var x -> P.Evar (lookup_var fc ~loc:e.eloc x)
  | Ast.Index (x, i) ->
    P.Eidx (lookup_var fc ~loc:e.eloc x, resolve_expr fc i)
  | Ast.Unop (op, a) -> P.Eunop (op, resolve_expr fc a)
  | Ast.Binop (op, a, b) ->
    P.Ebinop (op, resolve_expr fc a, resolve_expr fc b)

let resolve_lhs fc ~loc (l : Ast.lhs) : P.lhs =
  match l with
  | Ast.Lvar x -> P.Lvar (lookup_var fc ~loc x)
  | Ast.Lindex (x, i) -> P.Lidx (lookup_var fc ~loc x, resolve_expr fc i)

let resolve_call fc (c : Ast.call) : P.call =
  let fid = lookup_func fc ~loc:c.cloc c.cname in
  let _, arity, _ = fc.ctx.fsigs.(fid) in
  let nargs = List.length c.cargs in
  if nargs <> arity then
    Diag.error c.cloc "function '%s' expects %d argument(s) but got %d"
      c.cname arity nargs;
  { P.callee = fid; cargs = List.map (resolve_expr fc) c.cargs }

let check_call_returns fc (c : Ast.call) =
  let name, _, returns = fc.ctx.fsigs.(lookup_func fc ~loc:c.cloc c.cname) in
  if not returns then
    Diag.error c.cloc
      "function '%s' does not return a value; it cannot be assigned from"
      name

(* Resolve one raw statement to zero or more resolved statements. *)
let rec resolve_stmt fc (s : Ast.stmt) : P.stmt list =
  let loc = s.sloc in
  match s.sdesc with
  | Ast.Decl (x, init) -> (
    (* Resolve the initialiser before declaring so `var x = x;` errors. *)
    let init = Option.map (resolve_expr fc) init in
    let v = declare_local fc ~loc ~name:x ~ty:P.Tint in
    match init with
    | None -> []
    | Some e ->
      let sid = fresh_sid fc.ctx in
      let st = { P.sid; loc; desc = P.Sassign (P.Lvar v, e) } in
      record_stmt fc.ctx st;
      [ st ])
  | Ast.Decl_array (x, n) ->
    if n <= 0 then Diag.error loc "array '%s' must have positive length" x;
    let _ = declare_local fc ~loc ~name:x ~ty:(P.Tarr n) in
    []
  | Ast.Assign (l, e) ->
    let e = resolve_expr fc e in
    let l = resolve_lhs fc ~loc l in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sassign (l, e) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Call (l, c) ->
    Option.iter (fun _ -> check_call_returns fc c) l;
    let call = resolve_call fc c in
    let l = Option.map (resolve_lhs fc ~loc) l in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Scall (l, call) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Spawn (l, c) ->
    let call = resolve_call fc c in
    let l = Option.map (resolve_lhs fc ~loc) l in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sspawn (l, call) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Join (l, e) ->
    let e = resolve_expr fc e in
    let l = Option.map (resolve_lhs fc ~loc) l in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sjoin (l, e) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.If (c, t, e) ->
    let c = resolve_expr fc c in
    let sid = fresh_sid fc.ctx in
    let t = resolve_block fc t in
    let e = resolve_block fc e in
    let st = { P.sid; loc; desc = P.Sif (c, t, e) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.While (c, b) ->
    let c = resolve_expr fc c in
    let sid = fresh_sid fc.ctx in
    let b = resolve_block fc b in
    let st = { P.sid; loc; desc = P.Swhile (c, b) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.For (init, cond, step, body) ->
    (* for (i; c; s) b  ==>  i; while (c) { b; s } — the loop variable
       must already be in scope (for-headers cannot declare). *)
    enter_block fc;
    let init_stmts = resolve_stmt fc init in
    let cond = resolve_expr fc cond in
    let wsid = fresh_sid fc.ctx in
    enter_block fc;
    let body = List.concat_map (resolve_stmt fc) body in
    let step_stmts = resolve_stmt fc step in
    exit_block fc;
    let wst = { P.sid = wsid; loc; desc = P.Swhile (cond, body @ step_stmts) } in
    record_stmt fc.ctx wst;
    exit_block fc;
    init_stmts @ [ wst ]
  | Ast.Return e ->
    let e = Option.map (resolve_expr fc) e in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sreturn e } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Sem_p x ->
    let s' = lookup_sem fc ~loc x in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sp s' } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Sem_v x ->
    let s' = lookup_sem fc ~loc x in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sv s' } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Send (c, e) ->
    let ch = lookup_chan fc ~loc c in
    let e = resolve_expr fc e in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Ssend (ch, e) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Recv (c, l) ->
    let ch = lookup_chan fc ~loc c in
    let l = resolve_lhs fc ~loc l in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Srecv (ch, l) } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Print e ->
    let e = resolve_expr fc e in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sprint e } in
    record_stmt fc.ctx st;
    [ st ]
  | Ast.Assert e ->
    let e = resolve_expr fc e in
    let sid = fresh_sid fc.ctx in
    let st = { P.sid; loc; desc = P.Sassert e } in
    record_stmt fc.ctx st;
    [ st ]

and resolve_block fc stmts =
  enter_block fc;
  let resolved = List.concat_map (resolve_stmt fc) stmts in
  exit_block fc;
  resolved

(* ------------------------------------------------------------------ *)
(* Whole program.                                                       *)
(* ------------------------------------------------------------------ *)

let resolve (prog : Ast.program) : P.t =
  let ctx =
    {
      top = StrMap.empty;
      vars_rev = [];
      nvars = 0;
      stmts_rev = [];
      nstmts = 0;
      fsigs = [||];
    }
  in
  let add_top ~loc name entry =
    (match StrMap.find_opt name ctx.top with
    | Some prev ->
      Diag.error loc "'%s' is already declared as %s" name
        (describe_entry prev)
    | None -> ());
    ctx.top <- StrMap.add name entry ctx.top
  in
  (* Pass 1: collect top-level names, slots for globals, signatures. *)
  let globals_rev = ref [] and global_inits_rev = ref [] and nglobals = ref 0 in
  let sems_rev = ref [] and nsems = ref 0 in
  let chans_rev = ref [] and nchans = ref 0 in
  let funcs_raw_rev = ref [] and nfuncs = ref 0 in
  List.iter
    (fun d ->
      match d with
      | Ast.Gshared (x, init, loc) ->
        let ty, ginit =
          match init with
          | Ast.Gscalar None -> (P.Tint, P.Ginit_int 0)
          | Ast.Gscalar (Some e) -> (
            match const_eval e with
            | Cint n -> (P.Tint, P.Ginit_int n)
            | Cbool _ ->
              Diag.error loc "global '%s' must be initialised to an integer" x)
          | Ast.Garray n ->
            if n <= 0 then
              Diag.error loc "array '%s' must have positive length" x;
            (P.Tarr n, P.Ginit_arr n)
        in
        let v =
          fresh_var ctx ~name:x ~ty ~scope:(P.Global !nglobals) ~fid:(-1)
        in
        add_top ~loc x (Tvar v);
        globals_rev := v :: !globals_rev;
        global_inits_rev := ginit :: !global_inits_rev;
        incr nglobals
      | Ast.Gsem (x, n, loc) ->
        if n < 0 then
          Diag.error loc "semaphore '%s' must have non-negative initial value"
            x;
        let s = { P.sem_id = !nsems; sem_name = x; sem_init = n } in
        add_top ~loc x (Tsem s);
        sems_rev := s :: !sems_rev;
        incr nsems
      | Ast.Gchan (x, cap, loc) ->
        (match cap with
        | Some n when n < 0 ->
          Diag.error loc "channel '%s' must have non-negative capacity" x
        | Some _ | None -> ());
        let c = { P.ch_id = !nchans; ch_name = x; ch_cap = cap } in
        add_top ~loc x (Tchan c);
        chans_rev := c :: !chans_rev;
        incr nchans
      | Ast.Gfunc f ->
        let fid = !nfuncs in
        add_top ~loc:f.floc f.fname (Tfunc fid);
        (* duplicate parameter names *)
        let seen = Hashtbl.create 8 in
        List.iter
          (fun p ->
            if Hashtbl.mem seen p then
              Diag.error f.floc "duplicate parameter '%s' in function '%s'" p
                f.fname;
            Hashtbl.add seen p ())
          f.fparams;
        let has_val = raw_stmts_return f.fbody in
        if has_val && raw_stmts_return_void f.fbody then
          Diag.error f.floc
            "function '%s' mixes 'return;' and 'return expr;'" f.fname;
        funcs_raw_rev := (fid, f) :: !funcs_raw_rev;
        incr nfuncs)
    prog;
  let funcs_raw = List.rev !funcs_raw_rev in
  ctx.fsigs <-
    Array.of_list
      (List.map
         (fun (_, (f : Ast.func)) ->
           (f.fname, List.length f.fparams, raw_stmts_return f.fbody))
         funcs_raw);
  (* Pass 2: resolve function bodies. *)
  let funcs =
    List.map
      (fun (fid, (f : Ast.func)) ->
        let fc =
          {
            ctx;
            fid;
            slots = 0;
            all_locals_rev = [];
            local_names = StrMap.empty;
            scope_stack = [];
            visible = StrMap.empty;
          }
        in
        enter_block fc;
        let params =
          List.map
            (fun p -> declare_local fc ~loc:f.floc ~name:p ~ty:P.Tint)
            f.fparams
        in
        let body = List.concat_map (resolve_stmt fc) f.fbody in
        exit_block fc;
        {
          P.fid;
          fname = f.fname;
          params;
          locals = List.rev fc.all_locals_rev;
          nslots = fc.slots;
          body;
          floc = f.floc;
          returns_value = raw_stmts_return f.fbody;
        })
      funcs_raw
  in
  let funcs = Array.of_list funcs in
  let main_fid =
    match Array.find_opt (fun f -> String.equal f.P.fname "main") funcs with
    | Some f ->
      if f.P.params <> [] then
        Diag.error f.P.floc "main() must take no parameters";
      f.P.fid
    | None -> Diag.error Loc.none "program has no 'main' function"
  in
  (* Statements are recorded when their record is built (children before
     parents), so sort the table back into sid order. *)
  let stmts = Array.of_list ctx.stmts_rev in
  Array.sort (fun a b -> Int.compare a.P.sid b.P.sid) stmts;
  Array.iteri (fun i s -> assert (s.P.sid = i)) stmts;
  let stmt_fid = Array.make (Array.length stmts) (-1) in
  Array.iter
    (fun (f : P.func) ->
      P.iter_stmts (fun s -> stmt_fid.(s.P.sid) <- f.P.fid) f.P.body)
    funcs;
  {
    P.funcs;
    globals = Array.of_list (List.rev !globals_rev);
    global_inits = Array.of_list (List.rev !global_inits_rev);
    sems = Array.of_list (List.rev !sems_rev);
    chans = Array.of_list (List.rev !chans_rev);
    main_fid;
    nvars = ctx.nvars;
    stmts;
    stmt_fid;
    vars = Array.of_list (List.rev ctx.vars_rev);
  }

let parse_and_resolve src = resolve (Parser.parse_program src)
