(** Diagnostics shared by the MPL front end.

    All front-end passes (lexer, parser, resolver, type checker) report
    failures by raising {!Error} with the offending location and a
    human-readable message. *)

exception Error of Loc.t * string

val error : Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Error} with a formatted message. *)

val pp_error : Format.formatter -> Loc.t * string -> unit
(** Renders ["error at LINE:COL: MSG"]. *)

val protect : (unit -> 'a) -> ('a, Loc.t * string) result
(** [protect f] runs [f], converting a raised {!Error} into [Error]. *)
