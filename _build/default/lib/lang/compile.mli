(** Front-end driver: source text -> checked {!Prog.t}. *)

val compile : string -> Prog.t
(** Parse, resolve and type-check. Raises {!Diag.Error} on any failure. *)

val compile_result : string -> (Prog.t, Loc.t * string) result
(** Like {!compile} but returns diagnostics as a value. *)
