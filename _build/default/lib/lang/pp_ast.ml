open Ast

(* Expressions print with minimal parentheses: a subexpression is
   parenthesised only when its operator binds no tighter than the
   context requires. All binary operators are left-associative, so the
   right operand needs one more unit of binding strength. *)
let rec pp_expr_prec prec ppf e =
  match e.edesc with
  | Int n -> if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Bool true -> Format.pp_print_string ppf "true"
  | Bool false -> Format.pp_print_string ppf "false"
  | Var x -> Format.pp_print_string ppf x
  | Index (x, i) -> Format.fprintf ppf "%s[%a]" x (pp_expr_prec 0) i
  | Unop (op, e) -> Format.fprintf ppf "%a%a" pp_unop op (pp_expr_prec 7) e
  | Binop (op, a, b) ->
    let p = binop_prec op in
    let open_paren = p < prec in
    if open_paren then Format.pp_print_char ppf '(';
    Format.fprintf ppf "%a %a %a" (pp_expr_prec p) a pp_binop op
      (pp_expr_prec (p + 1)) b;
    if open_paren then Format.pp_print_char ppf ')'

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lhs ppf = function
  | Lvar x -> Format.pp_print_string ppf x
  | Lindex (x, i) -> Format.fprintf ppf "%s[%a]" x pp_expr i

let pp_call ppf { cname; cargs; _ } =
  Format.fprintf ppf "%s(%a)" cname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_expr)
    cargs

let pp_assign_target ppf = function
  | None -> ()
  | Some l -> Format.fprintf ppf "%a = " pp_lhs l

(* Statement form without the trailing ";" (for for-headers). *)
let rec pp_simple ppf s =
  match s.sdesc with
  | Assign (l, e) -> Format.fprintf ppf "%a = %a" pp_lhs l pp_expr e
  | Call (l, c) -> Format.fprintf ppf "%a%a" pp_assign_target l pp_call c
  | Spawn (l, c) -> Format.fprintf ppf "%aspawn %a" pp_assign_target l pp_call c
  | Join (l, e) -> Format.fprintf ppf "%ajoin(%a)" pp_assign_target l pp_expr e
  | _ -> invalid_arg "Pp_ast.pp_simple: not a simple statement"

and pp_stmt ppf s =
  match s.sdesc with
  | Decl (x, None) -> Format.fprintf ppf "var %s;" x
  | Decl (x, Some e) -> Format.fprintf ppf "var %s = %a;" x pp_expr e
  | Decl_array (x, n) -> Format.fprintf ppf "var %s[%d];" x n
  | Assign _ | Call _ | Spawn _ | Join _ -> Format.fprintf ppf "%a;" pp_simple s
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,}" pp_expr c pp_body t
  | If (c, t, [ ({ sdesc = If _; _ } as elif) ]) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,} else %a" pp_expr c pp_body t
      pp_stmt elif
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr c
      pp_body t pp_body e
  | While (c, b) ->
    Format.fprintf ppf "@[<v 2>while (%a) {%a@]@,}" pp_expr c pp_body b
  | For (i, c, s, b) ->
    Format.fprintf ppf "@[<v 2>for (%a; %a; %a) {%a@]@,}" pp_simple i pp_expr c
      pp_simple s pp_body b
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Sem_p s -> Format.fprintf ppf "P(%s);" s
  | Sem_v s -> Format.fprintf ppf "V(%s);" s
  | Send (c, e) -> Format.fprintf ppf "send(%s, %a);" c pp_expr e
  | Recv (c, l) -> Format.fprintf ppf "recv(%s, %a);" c pp_lhs l
  | Print e -> Format.fprintf ppf "print(%a);" pp_expr e
  | Assert e -> Format.fprintf ppf "assert(%a);" pp_expr e

and pp_body ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_topdecl ppf = function
  | Gshared (x, Gscalar None, _) -> Format.fprintf ppf "shared int %s;" x
  | Gshared (x, Gscalar (Some e), _) ->
    Format.fprintf ppf "shared int %s = %a;" x pp_expr e
  | Gshared (x, Garray n, _) -> Format.fprintf ppf "shared int %s[%d];" x n
  | Gsem (x, n, _) -> Format.fprintf ppf "sem %s = %d;" x n
  | Gchan (x, None, _) -> Format.fprintf ppf "chan %s;" x
  | Gchan (x, Some n, _) -> Format.fprintf ppf "chan %s[%d];" x n
  | Gfunc { fname; fparams; fbody; _ } ->
    Format.fprintf ppf "@[<v 2>func %s(%a) {%a@]@,}" fname
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_string)
      fparams pp_body fbody

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf "@,@,";
      pp_topdecl ppf d)
    p;
  Format.fprintf ppf "@]"

let expr_to_string e = Format.asprintf "%a" pp_expr e

let program_to_string p = Format.asprintf "%a@." pp_program p
