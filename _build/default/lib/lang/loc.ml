type t = { line : int; col : int }

let none = { line = 0; col = 0 }

let make ~line ~col = { line; col }

let is_none l = l.line = 0

let compare a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c

let equal a b = compare a b = 0

let pp ppf l =
  if is_none l then Format.pp_print_string ppf "?"
  else Format.fprintf ppf "%d:%d" l.line l.col

let to_string l = Format.asprintf "%a" pp l
