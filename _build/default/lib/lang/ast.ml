type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq
  | And
  | Or

type expr = { eloc : Loc.t; edesc : expr_desc }

and expr_desc =
  | Int of int
  | Bool of bool
  | Var of string
  | Index of string * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lhs = Lvar of string | Lindex of string * expr

type call = { cname : string; cargs : expr list; cloc : Loc.t }

type stmt = { sloc : Loc.t; sdesc : stmt_desc }

and stmt_desc =
  | Decl of string * expr option
  | Decl_array of string * int
  | Assign of lhs * expr
  | Call of lhs option * call
  | Spawn of lhs option * call
  | Join of lhs option * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Sem_p of string
  | Sem_v of string
  | Send of string * expr
  | Recv of string * lhs
  | Print of expr
  | Assert of expr

type global_init = Gscalar of expr option | Garray of int

type topdecl =
  | Gshared of string * global_init * Loc.t
  | Gsem of string * int * Loc.t
  | Gchan of string * int option * Loc.t
  | Gfunc of func

and func = {
  fname : string;
  fparams : string list;
  fbody : stmt list;
  floc : Loc.t;
}

type program = topdecl list

let rec expr_equal a b =
  match (a.edesc, b.edesc) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Var x, Var y -> String.equal x y
  | Index (x, e), Index (y, f) -> String.equal x y && expr_equal e f
  | Unop (o, e), Unop (p, f) -> o = p && expr_equal e f
  | Binop (o, e1, e2), Binop (p, f1, f2) ->
    o = p && expr_equal e1 f1 && expr_equal e2 f2
  | (Int _ | Bool _ | Var _ | Index _ | Unop _ | Binop _), _ -> false

let lhs_equal a b =
  match (a, b) with
  | Lvar x, Lvar y -> String.equal x y
  | Lindex (x, e), Lindex (y, f) -> String.equal x y && expr_equal e f
  | (Lvar _ | Lindex _), _ -> false

let opt_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | (None | Some _), _ -> false

let call_equal a b =
  String.equal a.cname b.cname
  && List.length a.cargs = List.length b.cargs
  && List.for_all2 expr_equal a.cargs b.cargs

let rec stmt_equal a b =
  match (a.sdesc, b.sdesc) with
  | Decl (x, e), Decl (y, f) -> String.equal x y && opt_equal expr_equal e f
  | Decl_array (x, n), Decl_array (y, m) -> String.equal x y && n = m
  | Assign (l, e), Assign (m, f) -> lhs_equal l m && expr_equal e f
  | Call (l, c), Call (m, d) -> opt_equal lhs_equal l m && call_equal c d
  | Spawn (l, c), Spawn (m, d) -> opt_equal lhs_equal l m && call_equal c d
  | Join (l, e), Join (m, f) -> opt_equal lhs_equal l m && expr_equal e f
  | If (c, t, e), If (d, u, f) ->
    expr_equal c d && stmts_equal t u && stmts_equal e f
  | While (c, b1), While (d, b2) -> expr_equal c d && stmts_equal b1 b2
  | For (i, c, s, b1), For (j, d, t, b2) ->
    stmt_equal i j && expr_equal c d && stmt_equal s t && stmts_equal b1 b2
  | Return e, Return f -> opt_equal expr_equal e f
  | Sem_p x, Sem_p y | Sem_v x, Sem_v y -> String.equal x y
  | Send (c, e), Send (d, f) -> String.equal c d && expr_equal e f
  | Recv (c, l), Recv (d, m) -> String.equal c d && lhs_equal l m
  | Print e, Print f | Assert e, Assert f -> expr_equal e f
  | ( ( Decl _ | Decl_array _ | Assign _ | Call _ | Spawn _ | Join _ | If _
      | While _ | For _ | Return _ | Sem_p _ | Sem_v _ | Send _ | Recv _
      | Print _ | Assert _ ),
      _ ) ->
    false

and stmts_equal a b = List.length a = List.length b && List.for_all2 stmt_equal a b

let topdecl_equal a b =
  match (a, b) with
  | Gshared (x, Gscalar e, _), Gshared (y, Gscalar f, _) ->
    String.equal x y && opt_equal expr_equal e f
  | Gshared (x, Garray n, _), Gshared (y, Garray m, _) ->
    String.equal x y && n = m
  | Gsem (x, n, _), Gsem (y, m, _) -> String.equal x y && n = m
  | Gchan (x, n, _), Gchan (y, m, _) -> String.equal x y && n = m
  | Gfunc f, Gfunc g ->
    String.equal f.fname g.fname
    && f.fparams = g.fparams
    && stmts_equal f.fbody g.fbody
  | (Gshared _ | Gsem _ | Gchan _ | Gfunc _), _ -> false

let program_equal a b =
  List.length a = List.length b && List.for_all2 topdecl_equal a b

let pp_unop ppf = function
  | Neg -> Format.pp_print_string ppf "-"
  | Not -> Format.pp_print_string ppf "!"

let pp_binop ppf op =
  let s =
    match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Eq -> "=="
    | Neq -> "!="
    | Lt -> "<"
    | Leq -> "<="
    | Gt -> ">"
    | Geq -> ">="
    | And -> "&&"
    | Or -> "||"
  in
  Format.pp_print_string ppf s

let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Leq | Gt | Geq -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6
