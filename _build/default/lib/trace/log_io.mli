(** Log persistence: "there is one log file for each process" (§5.6).

    Logs are saved with OCaml's [Marshal] under a small versioned
    header; [measure] reports serialized sizes for the log-volume
    benchmarks without touching the filesystem. *)

val save : string -> Log.t -> unit
(** Write one file containing every process's log. *)

val load : string -> Log.t
(** @raise Failure on version or format mismatch. *)

val save_per_process : dir:string -> basename:string -> Log.t -> string list
(** Write [basename.pid.log] per process (the paper's layout); returns
    the paths. *)

val measure : Log.t -> int
(** Serialized size in bytes. *)

val measure_trace : Full_trace.t -> int
(** Serialized size of a full trace, for comparison. *)
