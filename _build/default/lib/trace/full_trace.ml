type rec_ = { tr_pid : int; tr_seq : int; tr_step : int; tr_ev : Runtime.Event.t }

type t = { recs : rec_ array }

type state = {
  mutable acc : rec_ list;
  mutable n : int;
  mutable port : Runtime.Hooks.port option;
}

let create () = { acc = []; n = 0; port = None }

let factory st port =
  st.port <- Some port;
  {
    Runtime.Hooks.on_event =
      (fun ~pid ~seq ev ->
        let step =
          match st.port with
          | None -> 0
          | Some p -> p.Runtime.Hooks.now ()
        in
        st.acc <- { tr_pid = pid; tr_seq = seq; tr_step = step; tr_ev = ev } :: st.acc;
        st.n <- st.n + 1);
  }

let finish st = { recs = Array.of_list (List.rev st.acc) }

let nevents t = Array.length t.recs

let slice t ~pid ~lo ~hi =
  Array.to_list t.recs
  |> List.filter_map (fun r ->
         if
           r.tr_pid = pid && r.tr_seq >= lo
           && match hi with None -> true | Some h -> r.tr_seq < h
         then Some r.tr_ev
         else None)

let run_traced ?sched ?max_steps prog =
  let st = create () in
  let m = Runtime.Machine.create ?sched ?max_steps ~hooks:(factory st) prog in
  let halt = Runtime.Machine.run m in
  (halt, finish st, m)
