lib/trace/log_io.mli: Full_trace Log
