lib/trace/full_trace.mli: Lang Runtime
