lib/trace/log.mli: Format Lang Runtime
