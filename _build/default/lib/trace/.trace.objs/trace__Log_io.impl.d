lib/trace/log_io.ml: Array Filename Full_trace Fun Log Marshal Printf String
