lib/trace/logger.ml: Analysis Array Lang List Log Runtime
