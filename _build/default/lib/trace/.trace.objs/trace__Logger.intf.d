lib/trace/logger.mli: Analysis Log Runtime
