lib/trace/full_trace.ml: Array List Runtime
