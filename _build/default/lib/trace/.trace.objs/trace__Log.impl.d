lib/trace/log.ml: Array Format Int Lang List Printf Runtime
