(** The trace-everything baseline (§2): record every event of every
    process during execution.

    This is what flowback analysis would need without incremental
    tracing. It serves two purposes here: the log-size / overhead
    comparison of benchmarks T1/T2, and a test oracle — the emulation
    package must regenerate exactly the slice of this trace covered by a
    log interval (minus nested e-blocks). *)

type rec_ = { tr_pid : int; tr_seq : int; tr_step : int; tr_ev : Runtime.Event.t }

type t = { recs : rec_ array }

type state

val create : unit -> state

val factory : state -> Runtime.Hooks.factory

val finish : state -> t

val nevents : t -> int

val slice : t -> pid:int -> lo:int -> hi:int option -> Runtime.Event.t list
(** Events of [pid] with sequence number in [lo, hi) ([hi = None] means
    unbounded), in order. *)

val run_traced :
  ?sched:Runtime.Sched.policy ->
  ?max_steps:int ->
  Lang.Prog.t ->
  Runtime.Machine.halt * t * Runtime.Machine.t
