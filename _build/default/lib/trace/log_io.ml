let magic = "PPDLOG1\n"

let save path (log : Log.t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc log [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let hdr = really_input_string ic (String.length magic) in
      if not (String.equal hdr magic) then
        failwith (path ^ ": not a PPD log file (bad magic)");
      (Marshal.from_channel ic : Log.t))

let save_per_process ~dir ~basename (log : Log.t) =
  Array.to_list
    (Array.mapi
       (fun pid entries ->
         let path = Filename.concat dir (Printf.sprintf "%s.%d.log" basename pid) in
         let one =
           {
             Log.nprocs = 1;
             entries = [| entries |];
             stops = [| log.Log.stops.(pid) |];
           }
         in
         save path one;
         path)
       log.Log.entries)

let measure (log : Log.t) = String.length (Marshal.to_string log [])

let measure_trace (tr : Full_trace.t) = String.length (Marshal.to_string tr [])
