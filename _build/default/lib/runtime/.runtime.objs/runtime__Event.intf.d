lib/runtime/event.mli: Format Lang Value
