lib/runtime/hooks.mli: Event Lang Value
