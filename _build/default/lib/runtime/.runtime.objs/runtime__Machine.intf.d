lib/runtime/machine.mli: Hooks Lang Sched Value
