lib/runtime/value.ml: Array Format
