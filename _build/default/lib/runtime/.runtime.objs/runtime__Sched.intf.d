lib/runtime/sched.mli:
