lib/runtime/machine.ml: Analysis Array Buffer Event Hooks Interp Lang List Printf Queue Sched Value
