lib/runtime/interp.ml: Array Event Format Lang List Value
