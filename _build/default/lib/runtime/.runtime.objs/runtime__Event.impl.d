lib/runtime/event.ml: Format Lang List Printf Value
