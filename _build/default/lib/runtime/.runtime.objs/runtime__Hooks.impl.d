lib/runtime/hooks.ml: Event Lang Value
