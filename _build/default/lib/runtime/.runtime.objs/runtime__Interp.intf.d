lib/runtime/interp.mli: Event Lang Value
