type eref = { epid : int; eseq : int }

let pp_eref ppf { epid; eseq } = Format.fprintf ppf "p%d:%d" epid eseq

type rw = { var : Lang.Prog.var; value : Value.t }

type kind =
  | K_assign
  | K_pred of bool
  | K_call of { callee : int; args : Value.t list }
  | K_call_return of { callee : int; ret : Value.t option }
  | K_return of { value : Value.t option }
  | K_p of { sem : int; src : eref option; was_blocked : bool }
  | K_v of { sem : int }
  | K_send of { chan : int; value : int }
  | K_send_unblocked of { chan : int; by : eref }
  | K_recv of { chan : int; value : int; src : eref }
  | K_spawn of { child : int; callee : int; args : Value.t list }
  | K_join of { child : int; result : Value.t option; child_exit : eref }
  | K_print of { value : Value.t }
  | K_assert of { ok : bool }

type stmt_event = {
  sid : int;
  reads : rw list;
  write : rw option;
  kind : kind;
}

type t =
  | E_stmt of stmt_event
  | E_enter of {
      fid : int;
      call_sid : int option;
      binds : (Lang.Prog.var * Value.t) list;
    }
  | E_leave of { fid : int; call_sid : int option; ret : Value.t option }
  | E_proc_start of {
      fid : int;
      binds : (Lang.Prog.var * Value.t) list;
      spawn : eref option;
    }
  | E_proc_exit of { fid : int; result : Value.t option }
  | E_loop_enter of { sid : int }
  | E_loop_exit of {
      sid : int;
      writes : (Lang.Prog.var * Value.t) list option;
    }

let is_sync = function
  | E_stmt { kind; _ } -> (
    match kind with
    | K_p _ | K_v _ | K_send _ | K_send_unblocked _ | K_recv _ | K_spawn _
    | K_join _ ->
      true
    | K_assign | K_pred _ | K_call _ | K_call_return _ | K_return _
    | K_print _ | K_assert _ ->
      false)
  | E_proc_start _ | E_proc_exit _ -> true
  | E_enter _ | E_leave _ | E_loop_enter _ | E_loop_exit _ -> false

let sid_of = function
  | E_stmt { sid; _ } | E_loop_enter { sid } | E_loop_exit { sid; _ } ->
    Some sid
  | E_enter { call_sid; _ } | E_leave { call_sid; _ } -> call_sid
  | E_proc_start _ | E_proc_exit _ -> None

let pp_value_opt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> Value.pp ppf v

let pp_rw ppf { var; value } =
  Format.fprintf ppf "%s=%a" var.Lang.Prog.vname Value.pp value

let pp_rws ppf rws =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    pp_rw ppf rws

let pp_kind ppf = function
  | K_assign -> Format.pp_print_string ppf "assign"
  | K_pred b -> Format.fprintf ppf "pred:%b" b
  | K_call { callee; _ } -> Format.fprintf ppf "call f%d" callee
  | K_call_return { callee; ret } ->
    Format.fprintf ppf "call-return f%d=%a" callee pp_value_opt ret
  | K_return { value } -> Format.fprintf ppf "return %a" pp_value_opt value
  | K_p { sem; src; was_blocked } ->
    Format.fprintf ppf "P(sem%d)%s%s" sem
      (match src with
      | None -> ""
      | Some r -> Format.asprintf "<-%a" pp_eref r)
      (if was_blocked then " [blocked]" else "")
  | K_v { sem } -> Format.fprintf ppf "V(sem%d)" sem
  | K_send { chan; value } -> Format.fprintf ppf "send(ch%d,%d)" chan value
  | K_send_unblocked { chan; by } ->
    Format.fprintf ppf "send-unblocked(ch%d)<-%a" chan pp_eref by
  | K_recv { chan; value; src } ->
    Format.fprintf ppf "recv(ch%d,%d)<-%a" chan value pp_eref src
  | K_spawn { child; callee; _ } ->
    Format.fprintf ppf "spawn p%d (f%d)" child callee
  | K_join { child; result; child_exit } ->
    Format.fprintf ppf "join p%d=%a<-%a" child pp_value_opt result pp_eref
      child_exit
  | K_print { value } -> Format.fprintf ppf "print %a" Value.pp value
  | K_assert { ok } -> Format.fprintf ppf "assert:%b" ok

let pp ppf = function
  | E_stmt { sid; reads; write; kind } ->
    Format.fprintf ppf "s%d %a reads[%a]" sid pp_kind kind pp_rws reads;
    (match write with
    | None -> ()
    | Some w -> Format.fprintf ppf " write[%a]" pp_rw w)
  | E_enter { fid; call_sid; binds } ->
    Format.fprintf ppf "enter f%d%s binds[%a]" fid
      (match call_sid with
      | None -> ""
      | Some sid -> Printf.sprintf " from s%d" sid)
      pp_rws
      (List.map (fun (var, value) -> { var; value }) binds)
  | E_leave { fid; ret; _ } ->
    Format.fprintf ppf "leave f%d ret=%a" fid pp_value_opt ret
  | E_proc_start { fid; spawn; _ } ->
    Format.fprintf ppf "proc-start f%d%s" fid
      (match spawn with
      | None -> ""
      | Some r -> Format.asprintf " by %a" pp_eref r)
  | E_proc_exit { fid; result } ->
    Format.fprintf ppf "proc-exit f%d result=%a" fid pp_value_opt result
  | E_loop_enter { sid } -> Format.fprintf ppf "loop-enter s%d" sid
  | E_loop_exit { sid; writes } -> (
    Format.fprintf ppf "loop-exit s%d" sid;
    match writes with
    | None -> ()
    | Some ws ->
      Format.fprintf ppf " skipped[%a]" pp_rws
        (List.map (fun (var, value) -> { var; value }) ws))
