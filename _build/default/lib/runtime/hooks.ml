type port = {
  read_var : pid:int -> Lang.Prog.var -> Value.t;
  now : unit -> int;
}

type t = { on_event : pid:int -> seq:int -> Event.t -> unit }

type factory = port -> t

let nil _port = { on_event = (fun ~pid:_ ~seq:_ _ -> ()) }

let both f g port =
  let a = f port and b = g port in
  {
    on_event =
      (fun ~pid ~seq ev ->
        a.on_event ~pid ~seq ev;
        b.on_event ~pid ~seq ev);
  }

let collect acc _port =
  { on_event = (fun ~pid ~seq ev -> acc := (pid, seq, ev) :: !acc) }
