module P = Lang.Prog

exception Fault of string

let fault fmt = Format.kasprintf (fun msg -> raise (Fault msg)) fmt

type work = Wstmt of P.stmt | Wloop of P.stmt

type frame = {
  ffid : int;
  slots : Value.t array;
  mutable work : work list;
  mutable active_loops : int list;  (* sids of loops being executed, innermost first *)
  ret_lhs : P.lhs option;
  call_sid : int option;
}

type ctx = {
  prog : P.t;
  read_global : int -> Value.t;
  write_global : int -> Value.t -> unit;
  frame : frame;
}

let make_frame (p : P.t) ~fid ~args ~ret_lhs ~call_sid =
  let f = p.funcs.(fid) in
  let slots = Array.make f.nslots Value.Vundef in
  List.iter
    (fun (v : P.var) ->
      match (v.vscope, v.vty) with
      | P.Local slot, P.Tarr n -> slots.(slot) <- Value.Varr (Array.make n 0)
      | P.Local _, P.Tint -> ()
      | P.Global _, _ -> assert false)
    f.locals;
  (try
     List.iter2
       (fun (v : P.var) arg ->
         match v.vscope with
         | P.Local slot -> slots.(slot) <- arg
         | P.Global _ -> assert false)
       f.params args
   with Invalid_argument _ -> fault "arity mismatch calling %s" f.fname);
  let work = List.map (fun s -> Wstmt s) f.body in
  { ffid = fid; slots; work; active_loops = []; ret_lhs; call_sid }

let binds_of_frame (p : P.t) frame =
  let f = p.funcs.(frame.ffid) in
  List.map
    (fun (v : P.var) ->
      match v.vscope with
      | P.Local slot -> (v, frame.slots.(slot))
      | P.Global _ -> assert false)
    f.params

let read_var ctx (v : P.var) =
  match v.vscope with
  | P.Global slot -> ctx.read_global slot
  | P.Local slot ->
    if v.vfid <> ctx.frame.ffid then
      fault "internal: read of %s outside its frame" v.vname
    else ctx.frame.slots.(slot)

let write_var ctx (v : P.var) value =
  match v.vscope with
  | P.Global slot -> ctx.write_global slot value
  | P.Local slot ->
    if v.vfid <> ctx.frame.ffid then
      fault "internal: write of %s outside its frame" v.vname
    else ctx.frame.slots.(slot) <- value

let read_scalar ctx (v : P.var) =
  match read_var ctx v with
  | Value.Vint n -> n
  | Value.Vundef -> fault "read of uninitialised variable '%s'" v.vname
  | Value.Varr _ -> fault "array '%s' used as a scalar" v.vname

let read_elem ctx (v : P.var) idx =
  match read_var ctx v with
  | Value.Varr a ->
    if idx < 0 || idx >= Array.length a then
      fault "index %d out of bounds for '%s' (length %d)" idx v.vname
        (Array.length a)
    else a.(idx)
  | Value.Vint _ | Value.Vundef -> fault "'%s' is not an array" v.vname

type ev = Ei of int | Eb of bool

let as_int = function
  | Ei n -> n
  | Eb _ -> fault "internal: boolean where integer expected"

let as_bool = function
  | Eb b -> b
  | Ei _ -> fault "internal: integer where boolean expected"

(* Evaluate an expression, accumulating reads (in evaluation order,
   short-circuit aware) onto [acc] in reverse. *)
let rec eval ctx acc (e : P.expr) : ev =
  match e with
  | P.Eint n -> Ei n
  | P.Ebool b -> Eb b
  | P.Evar v ->
    let n = read_scalar ctx v in
    acc := { Event.var = v; value = Value.Vint n } :: !acc;
    Ei n
  | P.Eidx (v, ie) ->
    let idx = as_int (eval ctx acc ie) in
    let n = read_elem ctx v idx in
    acc := { Event.var = v; value = Value.Vint n } :: !acc;
    Ei n
  | P.Eunop (Lang.Ast.Neg, a) -> Ei (-as_int (eval ctx acc a))
  | P.Eunop (Lang.Ast.Not, a) -> Eb (not (as_bool (eval ctx acc a)))
  | P.Ebinop (op, a, b) -> (
    match op with
    | Lang.Ast.And ->
      if as_bool (eval ctx acc a) then Eb (as_bool (eval ctx acc b))
      else Eb false
    | Lang.Ast.Or ->
      if as_bool (eval ctx acc a) then Eb true
      else Eb (as_bool (eval ctx acc b))
    | Lang.Ast.Add -> arith ctx acc ( + ) a b
    | Lang.Ast.Sub -> arith ctx acc ( - ) a b
    | Lang.Ast.Mul -> arith ctx acc ( * ) a b
    | Lang.Ast.Div ->
      let x = as_int (eval ctx acc a) and y = as_int (eval ctx acc b) in
      if y = 0 then fault "division by zero" else Ei (x / y)
    | Lang.Ast.Mod ->
      let x = as_int (eval ctx acc a) and y = as_int (eval ctx acc b) in
      if y = 0 then fault "modulo by zero" else Ei (x mod y)
    | Lang.Ast.Lt -> cmp ctx acc ( < ) a b
    | Lang.Ast.Leq -> cmp ctx acc ( <= ) a b
    | Lang.Ast.Gt -> cmp ctx acc ( > ) a b
    | Lang.Ast.Geq -> cmp ctx acc ( >= ) a b
    | Lang.Ast.Eq -> equality ctx acc true a b
    | Lang.Ast.Neq -> equality ctx acc false a b)

and arith ctx acc op a b =
  let x = as_int (eval ctx acc a) in
  let y = as_int (eval ctx acc b) in
  Ei (op x y)

and cmp ctx acc op a b =
  let x = as_int (eval ctx acc a) in
  let y = as_int (eval ctx acc b) in
  Eb (op x y)

and equality ctx acc positive a b =
  let va = eval ctx acc a in
  let vb = eval ctx acc b in
  let same =
    match (va, vb) with
    | Ei x, Ei y -> x = y
    | Eb x, Eb y -> x = y
    | (Ei _ | Eb _), _ -> fault "'==' between int and bool"
  in
  Eb (if positive then same else not same)

let eval_int ctx e =
  let acc = ref [] in
  let n = as_int (eval ctx acc e) in
  (n, List.rev !acc)

let eval_bool ctx e =
  let acc = ref [] in
  let b = as_bool (eval ctx acc e) in
  (b, List.rev !acc)

let write_lhs ctx (l : P.lhs) value =
  match l with
  | P.Lvar v ->
    write_var ctx v value;
    ([], { Event.var = v; value })
  | P.Lidx (v, ie) -> (
    let acc = ref [] in
    let idx = as_int (eval ctx acc ie) in
    match read_var ctx v with
    | Value.Varr a ->
      if idx < 0 || idx >= Array.length a then
        fault "index %d out of bounds for '%s' (length %d)" idx v.vname
          (Array.length a)
      else begin
        let n =
          match value with
          | Value.Vint n -> n
          | Value.Vundef -> fault "storing missing value into array '%s'" v.vname
          | Value.Varr _ -> fault "storing array into array '%s'" v.vname
        in
        (* an element write is a read-modify-write of the whole array
           under the array-as-scalar abstraction: record the read *)
        acc := { Event.var = v; value = Value.Vint a.(idx) } :: !acc;
        (* For globals, write back through the context so overlay stores
           (copy-on-write emulation) observe the mutation. *)
        (match v.vscope with
        | P.Global slot ->
          a.(idx) <- n;
          ctx.write_global slot (Value.Varr a)
        | P.Local _ -> a.(idx) <- n);
        (List.rev !acc, { Event.var = v; value = Value.Vint n })
      end
    | Value.Vint _ | Value.Vundef -> fault "'%s' is not an array" v.vname)

let consume_work frame =
  match frame.work with
  | [] -> invalid_arg "Interp.consume_work: empty work list"
  | _ :: rest -> frame.work <- rest

type local_result =
  | Event of Event.stmt_event
  | Driver of P.stmt
  | Frame_done

let push_stmts frame stmts =
  frame.work <- List.map (fun s -> Wstmt s) stmts @ frame.work

(* Loop handling is driver-side so the drivers can emit the §5.4 loop
   e-block boundary events. [loop_entry] converts the head [Wstmt] of a
   while statement into its [Wloop] retest form; [loop_test] performs
   one condition test, entering the body or leaving the loop. *)
let loop_entry frame (s : P.stmt) =
  match frame.work with
  | Wstmt s' :: rest when s' == s ->
    frame.work <- Wloop s :: rest;
    frame.active_loops <- s.sid :: frame.active_loops
  | _ -> invalid_arg "Interp.loop_entry: head is not the loop statement"

let loop_test ctx (s : P.stmt) =
  match (ctx.frame.work, s.P.desc) with
  | Wloop s' :: rest, P.Swhile (cond, body) when s' == s ->
    let b, reads = eval_bool ctx cond in
    ctx.frame.work <- rest;
    if b then begin
      ctx.frame.work <- Wloop s :: ctx.frame.work;
      push_stmts ctx.frame body
    end
    else
      ctx.frame.active_loops <-
        (match ctx.frame.active_loops with
        | l :: ls when l = s.sid -> ls
        | ls -> ls);
    ({ Event.sid = s.sid; reads; write = None; kind = Event.K_pred b }, b)
  | _ -> invalid_arg "Interp.loop_test: head is not the loop retest"

let step_local ctx =
  let frame = ctx.frame in
  match frame.work with
  | [] -> Frame_done
  | Wloop s :: _ -> Driver s
  | Wstmt s :: rest -> (
    match s.P.desc with
    | P.Sassign (l, e) ->
      let n, reads = eval_int ctx e in
      let idx_reads, write = write_lhs ctx l (Value.Vint n) in
      frame.work <- rest;
      Event
        {
          Event.sid = s.sid;
          reads = reads @ idx_reads;
          write = Some write;
          kind = Event.K_assign;
        }
    | P.Sif (cond, then_, else_) ->
      let b, reads = eval_bool ctx cond in
      frame.work <- rest;
      push_stmts frame (if b then then_ else else_);
      Event { Event.sid = s.sid; reads; write = None; kind = Event.K_pred b }
    | P.Swhile _ -> Driver s
    | P.Sprint e ->
      let acc = ref [] in
      let v =
        match eval ctx acc e with
        | Ei n -> Value.Vint n
        | Eb b -> Value.Vint (if b then 1 else 0)
      in
      let reads = List.rev !acc in
      frame.work <- rest;
      Event
        { Event.sid = s.sid; reads; write = None; kind = Event.K_print { value = v } }
    | P.Sassert e ->
      let ok, reads = eval_bool ctx e in
      frame.work <- rest;
      Event
        { Event.sid = s.sid; reads; write = None; kind = Event.K_assert { ok } }
    | P.Scall _ | P.Sspawn _ | P.Sjoin _ | P.Sreturn _ | P.Sp _ | P.Sv _
    | P.Ssend _ | P.Srecv _ ->
      Driver s)
