(** The fine-grained event vocabulary of program execution.

    Every observable step of a process — a statement execution, a frame
    entry/exit, process start/stop — is one event. Events are pure data:
    the logger turns a thin selection of them into log entries
    (incremental tracing), the full tracer records all of them (the
    trace-everything baseline of §2), and the emulation package
    re-produces them during the debugging phase for the dynamic-graph
    builder.

    Events are identified by {!eref} = (process id, per-process sequence
    number); synchronization payloads carry the refs needed to construct
    the synchronization edges of the parallel dynamic graph (§6.2). *)

type eref = { epid : int; eseq : int }

val pp_eref : Format.formatter -> eref -> unit

(** One variable access with the transferred value (array accesses are
    attributed to the whole array variable; [value] is the element). *)
type rw = { var : Lang.Prog.var; value : Value.t }

type kind =
  | K_assign
  | K_pred of bool  (** [if]/[while] predicate with its outcome *)
  | K_call of { callee : int; args : Value.t list }
      (** call statement: frame pushed *)
  | K_call_return of { callee : int; ret : Value.t option }
      (** attributed to the call statement when the callee returns;
          [write] holds the assignment of the returned value *)
  | K_return of { value : Value.t option }
  | K_p of { sem : int; src : eref option; was_blocked : bool }
      (** successful P; [src] is the V that provided the token, [None]
          for an initial credit *)
  | K_v of { sem : int }
  | K_send of { chan : int; value : int }
  | K_send_unblocked of { chan : int; by : eref }
      (** a synchronous sender resuming; [by] is the receive event *)
  | K_recv of { chan : int; value : int; src : eref }
      (** [src] is the send event *)
  | K_spawn of { child : int; callee : int; args : Value.t list }
  | K_join of { child : int; result : Value.t option; child_exit : eref }
  | K_print of { value : Value.t }
  | K_assert of { ok : bool }

type stmt_event = {
  sid : int;
  reads : rw list;  (** in evaluation order (short-circuit aware) *)
  write : rw option;
  kind : kind;
}

type t =
  | E_stmt of stmt_event
  | E_enter of {
      fid : int;
      call_sid : int option;
      binds : (Lang.Prog.var * Value.t) list;  (** parameter bindings *)
    }
  | E_leave of { fid : int; call_sid : int option; ret : Value.t option }
  | E_proc_start of {
      fid : int;
      binds : (Lang.Prog.var * Value.t) list;
      spawn : eref option;  (** the parent's spawn event; [None] for main *)
    }
  | E_proc_exit of { fid : int; result : Value.t option }
  | E_loop_enter of { sid : int }
      (** a [while] loop's execution begins (before the first condition
          test) — the boundary at which a loop e-block's prelog is taken
          (§5.4) *)
  | E_loop_exit of {
      sid : int;
      writes : (Lang.Prog.var * Value.t) list option;
    }
      (** the loop's execution ended. [writes] is [None] for a normally
          executed loop; the emulation package sets it to the postlog
          values when it skips a loop e-block, so graph builders know
          which variables the collapsed loop node defines. *)

val is_sync : t -> bool
(** Synchronization events: P/V/send/recv/send-unblock/spawn/join
    statement events plus process start/exit. These become the nodes of
    the parallel dynamic graph. *)

val sid_of : t -> int option

val pp_kind : Format.formatter -> kind -> unit

val pp : Format.formatter -> t -> unit
