(** Runtime values of MPL.

    Scalars are integers; arrays are mutable integer arrays; [Vundef]
    marks uninitialised locals (reading one is a runtime fault, which is
    itself a useful debugging signal). *)

type t = Vint of int | Varr of int array | Vundef

exception Undefined
(** Raised by the integer projections on [Vundef]. *)

val vint : int -> t

val to_int : t -> int
(** @raise Undefined on [Vundef]; @raise Invalid_argument on arrays. *)

val copy : t -> t
(** Deep copy (arrays are duplicated) — used by prelog/postlog
    snapshots so later mutation cannot corrupt the log. *)

val equal : t -> t -> bool
(** Structural equality (arrays by contents). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
