(** Instrumentation interface between the machine and observers.

    A hooks {e factory} receives a {!port} — callbacks into the running
    machine for reading variable values and the global step clock — and
    returns the event consumer. The logger uses the port to snapshot
    prelog/postlog variable values at e-block boundaries; the full
    tracer just stores events. *)

type port = {
  read_var : pid:int -> Lang.Prog.var -> Value.t;
      (** Current value: globals from the shared store, locals from the
          process's top frame. *)
  now : unit -> int;  (** Global machine step counter. *)
}

type t = { on_event : pid:int -> seq:int -> Event.t -> unit }

type factory = port -> t

val nil : factory
(** No instrumentation (the bare execution baseline). *)

val both : factory -> factory -> factory
(** Fan events out to two observers (e.g. logger + full tracer). *)

val collect : (int * int * Event.t) list ref -> factory
(** Append [(pid, seq, event)] triples to a list (newest first); handy
    in tests. *)
