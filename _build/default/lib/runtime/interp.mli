(** Sequential interpreter core shared by the execution-phase machine
    ("object code") and the debugging-phase emulation package.

    The core knows how to evaluate expressions (collecting reads in
    short-circuit-aware evaluation order), perform writes, manage frames
    and execute {e local} statements (assignments, predicates, prints,
    asserts). Synchronization operations, calls and returns are left to
    the driver — the real {!Machine} performs them against live
    semaphores/channels/processes, while the emulator replays them from
    the log. This split is exactly the paper's object-code vs
    emulation-package distinction (§5.3): same code, different
    surrounding protocol. *)

exception Fault of string
(** Runtime error: division by zero, uninitialised read, array index out
    of bounds, failed assertion, bad process id... The driver converts
    this into a halt. *)

type work =
  | Wstmt of Lang.Prog.stmt
  | Wloop of Lang.Prog.stmt  (** re-test of a [while] condition *)

type frame = {
  ffid : int;
  slots : Value.t array;
  mutable work : work list;
  mutable active_loops : int list;
      (** sids of the [while] loops currently executing in this frame,
          innermost first — the driver closes their loop e-blocks when a
          [return] unwinds them *)
  ret_lhs : Lang.Prog.lhs option;  (** where the caller stores the result *)
  call_sid : int option;  (** the call statement, [None] for process roots *)
}

type ctx = {
  prog : Lang.Prog.t;
  read_global : int -> Value.t;  (** by global slot *)
  write_global : int -> Value.t -> unit;
  frame : frame;
}

val make_frame :
  Lang.Prog.t ->
  fid:int ->
  args:Value.t list ->
  ret_lhs:Lang.Prog.lhs option ->
  call_sid:int option ->
  frame
(** Fresh frame: parameters bound to [args], scalars [Vundef], local
    arrays allocated zero-filled. *)

val binds_of_frame : Lang.Prog.t -> frame -> (Lang.Prog.var * Value.t) list
(** Parameter bindings, for [E_enter]/[E_proc_start] events. *)

val read_var : ctx -> Lang.Prog.var -> Value.t

val eval_int : ctx -> Lang.Prog.expr -> int * Event.rw list

val eval_bool : ctx -> Lang.Prog.expr -> bool * Event.rw list

val write_lhs : ctx -> Lang.Prog.lhs -> Value.t -> Event.rw list * Event.rw
(** [write_lhs ctx l v] evaluates the index (if any), performs the
    write, and returns (index reads, the write record). Writing [Vundef]
    to a scalar is allowed (it faults only when later read); writing it
    to an array element faults immediately. *)

val consume_work : frame -> unit
(** Pop the head work item (used by drivers after completing a
    driver-handled statement). *)

type local_result =
  | Event of Event.stmt_event
      (** a local statement executed; work consumed *)
  | Driver of Lang.Prog.stmt
      (** head is a sync/call/return/loop statement; work {e not}
          consumed so a blocking driver can retry it *)
  | Frame_done  (** the frame's work list is empty (fell off the end) *)

val step_local : ctx -> local_result

val loop_entry : frame -> Lang.Prog.stmt -> unit
(** Begin executing a [while] loop whose [Wstmt] is the head work item:
    convert it to the [Wloop] retest form and mark it active. The driver
    emits [E_loop_enter] around this. *)

val loop_test : ctx -> Lang.Prog.stmt -> Event.stmt_event * bool
(** One condition test of the head [Wloop]: enters the body ([true]) or
    leaves the loop ([false], driver emits [E_loop_exit]). *)
