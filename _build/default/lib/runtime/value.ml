type t = Vint of int | Varr of int array | Vundef

exception Undefined

let vint n = Vint n

let to_int = function
  | Vint n -> n
  | Vundef -> raise Undefined
  | Varr _ -> invalid_arg "Value.to_int: array"

let copy = function
  | Vint _ as v -> v
  | Vundef -> Vundef
  | Varr a -> Varr (Array.copy a)

let equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vundef, Vundef -> true
  | Varr x, Varr y -> x = y
  | (Vint _ | Varr _ | Vundef), _ -> false

let pp ppf = function
  | Vint n -> Format.pp_print_int ppf n
  | Vundef -> Format.pp_print_string ppf "undef"
  | Varr a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      (Array.to_list a)

let to_string v = Format.asprintf "%a" pp v
