#!/bin/sh
# Chaos sweep: prove the degraded-mode contract under every crash and
# fault shape the injection substrate can produce.
#
#  1. Truncate a saved v2 segment at EVERY byte offset: fsck and
#     `log stats` must exit 0/4/6 (never crash), and a --degraded
#     --load flowback over the remains must exit 0.
#  2. Kill the streaming log sink at every byte offset (injected crash
#     in the writer): exactly that many bytes reach disk, and the
#     durable prefix always recovers.
#  3. A seeded fault matrix over the other injection points: bit flips
#     are caught by fsck, read faults and replay-budget exhaustion
#     degrade to holes, and a transient pool fault leaves -j4 output
#     byte-identical to a clean -j1 run.
#  4. The same truncation contract over an order-tier log (sync order +
#     checkpoint frames + tier footer), and cross-tier flowback
#     identity on the intact file.
#
# Every damage report must carry the EXACT absolute offset of the
# enclosing frame start: re-truncating at the reported offset must
# report damage at that same offset (or none) — never an offset that
# was relative to a frame payload.
set -eu

PPD=${PPD:-_build/default/bin/ppd_cli.exe}

# First damage offset fsck reports for a file, or -1 when clean.
damage_offset() {
  "$PPD" fsck "$1" 2>/dev/null | python3 -c '
import json, sys
d = json.load(sys.stdin)
print(d["damage"][0]["offset"] if d["damage"] else -1)' 2>/dev/null || echo -1
}

# The exact-offset contract for one truncated file $1 cut at $2 bytes.
check_damage_offset() {
  o=$(damage_offset "$1")
  if [ "$o" -lt 0 ]; then return 0; fi
  if [ "$o" -gt "$2" ]; then
    echo "chaos: damage offset $o beyond the $2-byte cut" >&2
    exit 1
  fi
  head -c "$o" "$1" >"$dir/recut.log"
  o2=$(damage_offset "$dir/recut.log")
  if [ "$o2" -ne -1 ] && [ "$o2" -ne "$o" ]; then
    echo "chaos: damage offset $o is not a frame start (re-cut reports $o2)" >&2
    exit 1
  fi
}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

"$PPD" example fig61 >"$dir/fig61.mpl"
"$PPD" log "$dir/fig61.mpl" --save "$dir/run.log" >/dev/null
size=$(wc -c <"$dir/run.log")

# -------------------------------------------------------------------
# 1. Exhaustive truncation sweep.
# -------------------------------------------------------------------
k=0
while [ "$k" -lt "$size" ]; do
  head -c "$k" "$dir/run.log" >"$dir/cut.log"

  set +e
  "$PPD" fsck "$dir/cut.log" >/dev/null 2>&1
  fsck_code=$?
  "$PPD" log stats "$dir/cut.log" >/dev/null 2>&1
  stats_code=$?
  "$PPD" flowback "$dir/fig61.mpl" --load "$dir/cut.log" --degraded \
    >/dev/null 2>&1
  flow_code=$?
  set -e

  case "$fsck_code" in
  0 | 4 | 6) ;;
  *)
    echo "chaos: fsck exited $fsck_code on a $k-byte truncation" >&2
    exit 1
    ;;
  esac
  case "$stats_code" in
  0 | 4 | 6) ;;
  *)
    echo "chaos: log stats exited $stats_code on a $k-byte truncation" >&2
    exit 1
    ;;
  esac
  # a full v2 magic means the salvage path must carry flowback to a
  # clean exit; shorter prefixes are PPD050 (exit 6)
  if [ "$k" -ge 8 ]; then
    if [ "$flow_code" -ne 0 ]; then
      echo "chaos: degraded flowback exited $flow_code on a $k-byte truncation" >&2
      exit 1
    fi
  elif [ "$flow_code" -ne 6 ]; then
    echo "chaos: expected PPD050 (exit 6) on a $k-byte file, got $flow_code" >&2
    exit 1
  fi

  check_damage_offset "$dir/cut.log" "$k"

  k=$((k + 1))
done
echo "chaos: truncation sweep ok ($size cut points)"

# -------------------------------------------------------------------
# 2. Sink-crash sweep: kill the logger mid-write at every byte.
# -------------------------------------------------------------------
k=9
while [ "$k" -lt "$size" ]; do
  "$PPD" log "$dir/fig61.mpl" --save "$dir/crash.log" \
    --fault "trace.sink:$k" >/dev/null
  got=$(wc -c <"$dir/crash.log")
  if [ "$got" -ne "$k" ]; then
    echo "chaos: sink crash at byte $k left $got bytes on disk" >&2
    exit 1
  fi
  set +e
  "$PPD" fsck "$dir/crash.log" >/dev/null
  fsck_code=$?
  "$PPD" flowback "$dir/fig61.mpl" --load "$dir/crash.log" --degraded \
    >/dev/null
  flow_code=$?
  set -e
  if [ "$fsck_code" -ne 4 ] && [ "$fsck_code" -ne 0 ]; then
    echo "chaos: fsck exited $fsck_code after a sink crash at byte $k" >&2
    exit 1
  fi
  if [ "$flow_code" -ne 0 ]; then
    echo "chaos: degraded flowback exited $flow_code after a sink crash at byte $k" >&2
    exit 1
  fi
  # sweep every offset for small logs; stride for big ones to bound CI time
  k=$((k + 7))
done
echo "chaos: sink-crash sweep ok"

# -------------------------------------------------------------------
# 3. Seeded fault matrix.
# -------------------------------------------------------------------

# a flipped bit in a page payload must be caught by fsck (exit 4)
"$PPD" log "$dir/fig61.mpl" --save "$dir/flip.log" \
  --fault store.segment.write:2:flip --fault-seed 7 >/dev/null
set +e
"$PPD" fsck "$dir/flip.log" >/dev/null
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "chaos: fsck missed an injected bit flip (exit $code)" >&2
  exit 1
fi

# a damaged page read degrades to an explicit hole, never a crash
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/run.log" --degraded \
  --fault store.segment.read:1 >"$dir/holes.out"
grep -q "history unavailable" "$dir/holes.out" || {
  echo "chaos: degraded flowback did not report the hole" >&2
  exit 1
}

# replay-budget exhaustion degrades to a hole too
"$PPD" flowback "$dir/fig61.mpl" --degraded --max-replay-steps 1 \
  >"$dir/budget.out"
grep -q "history unavailable" "$dir/budget.out" || {
  echo "chaos: watchdog hole missing from degraded flowback" >&2
  exit 1
}

# ... and is PPD060 (exit 7) outside degraded mode
set +e
"$PPD" flowback "$dir/fig61.mpl" --max-replay-steps 1 >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 7 ]; then
  echo "chaos: expected PPD060/exit 7 from the watchdog, got $code" >&2
  exit 1
fi

# a transient pool fault is retried: -j4 under fault == clean -j1
"$PPD" flowback "$dir/fig61.mpl" --depth 2 -j 1 >"$dir/clean.out"
"$PPD" flowback "$dir/fig61.mpl" --depth 2 -j 4 \
  --fault exec.pool.task:1 >"$dir/faulted.out"
cmp "$dir/clean.out" "$dir/faulted.out" || {
  echo "chaos: transient pool fault changed the flowback output" >&2
  exit 1
}

echo "chaos: fault matrix ok (flip, read, budget, transient)"

# -------------------------------------------------------------------
# 4. Order-tier sweep: sync order + checkpoints + tier footer obey the
#    same truncation contract, and debugging the intact order log
#    gives byte-identical answers to the content log.
# -------------------------------------------------------------------
"$PPD" log "$dir/fig61.mpl" --save "$dir/order.log" --log-mode order \
  --ckpt-every 8 >/dev/null

# line 1 of `flowback --load` names the log file, so compare from line 2
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/run.log" \
  | tail -n +2 >"$dir/fb.content.out"
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/order.log" \
  | tail -n +2 >"$dir/fb.order.out"
cmp "$dir/fb.content.out" "$dir/fb.order.out" || {
  echo "chaos: order-tier flowback differs from the content tier" >&2
  exit 1
}

osize=$(wc -c <"$dir/order.log")
k=0
while [ "$k" -lt "$osize" ]; do
  head -c "$k" "$dir/order.log" >"$dir/ocut.log"

  set +e
  "$PPD" fsck "$dir/ocut.log" >/dev/null 2>&1
  fsck_code=$?
  "$PPD" log stats "$dir/ocut.log" >/dev/null 2>&1
  stats_code=$?
  "$PPD" flowback "$dir/fig61.mpl" --load "$dir/ocut.log" --degraded \
    >/dev/null 2>&1
  flow_code=$?
  set -e

  case "$fsck_code" in
  0 | 4 | 6) ;;
  *)
    echo "chaos: fsck exited $fsck_code on a $k-byte order truncation" >&2
    exit 1
    ;;
  esac
  case "$stats_code" in
  0 | 4 | 6) ;;
  *)
    echo "chaos: log stats exited $stats_code on a $k-byte order truncation" >&2
    exit 1
    ;;
  esac
  # a salvaged order prefix either debugs degraded (0), is too short to
  # carry the magic (PPD050, 6), or keeps enough footer to demand a
  # reconstruction the partial sync skeleton fails (PPD061, 8) — it
  # must never crash
  case "$flow_code" in
  0 | 6 | 8) ;;
  *)
    echo "chaos: degraded flowback exited $flow_code on a $k-byte order truncation" >&2
    exit 1
    ;;
  esac

  check_damage_offset "$dir/ocut.log" "$k"

  k=$((k + 1))
done
echo "chaos: order-tier truncation sweep ok ($osize cut points)"

# -------------------------------------------------------------------
# 5. Survivability: `ppd log repair` must salvage every damage shape
#    above into a file that fscks clean, and a SIGKILLed daemon must
#    come back with --resume and re-answer byte-identically.
# -------------------------------------------------------------------

# repair the flip artifact: bytes are lost (exit 4), the output is clean
set +e
"$PPD" log repair "$dir/flip.log" -o "$dir/flip.repaired" >/dev/null
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "chaos: repair of the flip artifact exited $code (want 4)" >&2
  exit 1
fi
"$PPD" fsck "$dir/flip.repaired" >/dev/null || {
  echo "chaos: repaired flip artifact does not fsck clean" >&2
  exit 1
}

# repair a mid-page truncation: clean prefix kept, output clean
head -c $((size / 2)) "$dir/run.log" >"$dir/half.log"
set +e
"$PPD" log repair "$dir/half.log" -o "$dir/half.repaired" >/dev/null
code=$?
set -e
case "$code" in
0 | 4) ;;
*)
  echo "chaos: repair of a truncated log exited $code" >&2
  exit 1
  ;;
esac
"$PPD" fsck "$dir/half.repaired" >/dev/null || {
  echo "chaos: repaired truncation does not fsck clean" >&2
  exit 1
}

# repairing the intact log drops nothing and the repaired file answers
# the same bytes
"$PPD" log repair "$dir/run.log" -o "$dir/run.repaired" >/dev/null || {
  echo "chaos: repair of an intact log did not exit 0" >&2
  exit 1
}
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/run.repaired" \
  | tail -n +2 >"$dir/fb.repaired.out"
cmp "$dir/fb.content.out" "$dir/fb.repaired.out" || {
  echo "chaos: repaired log changed the flowback answer" >&2
  exit 1
}
echo "chaos: repair ok (flip, truncation, intact identity)"

# daemon SIGKILL -> --resume -> attach -> byte-identical re-query
sock="$dir/ppd.sock"
journal="$dir/journal.jsonl"
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/run.log" --depth 2 \
  >"$dir/fb.oneshot"
"$PPD" serve --socket "$sock" -j 2 --journal "$journal" \
  2>"$dir/daemon.log" &
daemon_pid=$!
trap 'kill -9 "$daemon_pid" 2>/dev/null || true; rm -rf "$dir"' EXIT
k=0
while [ ! -S "$sock" ]; do
  k=$((k + 1))
  [ "$k" -gt 100 ] && { echo "chaos: daemon never bound $sock" >&2; exit 1; }
  sleep 0.1
done

{
  printf '%s\n' \
    "{\"id\":1,\"method\":\"open\",\"params\":{\"log\":\"$dir/run.log\",\"program\":\"$dir/fig61.mpl\"}}" \
    "{\"id\":2,\"method\":\"flowback\",\"params\":{\"handle\":1,\"depth\":2}}"
  sleep 30
} | "$PPD" connect --socket "$sock" >"$dir/before.out" 2>/dev/null &
client_pid=$!
k=0
while [ "$(wc -l <"$dir/before.out")" -lt 2 ]; do
  k=$((k + 1))
  [ "$k" -gt 100 ] && { echo "chaos: daemon session never answered" >&2; exit 1; }
  sleep 0.1
done

kill -9 "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true
kill -9 "$client_pid" 2>/dev/null || true
rm -f "$sock"

"$PPD" serve --socket "$sock" -j 2 --resume "$journal" \
  2>>"$dir/daemon.log" &
daemon_pid=$!
k=0
while [ ! -S "$sock" ]; do
  k=$((k + 1))
  [ "$k" -gt 100 ] && { echo "chaos: resumed daemon never bound $sock" >&2; exit 1; }
  sleep 0.1
done

sid=$(python3 - "$journal" <<'PYEOF'
import json, sys
live = {}
for line in open(sys.argv[1]):
    try:
        ev = json.loads(line)
    except ValueError:
        break
    e, sid = ev.get("ev"), ev.get("sid")
    if e == "open":
        live.setdefault(sid, set()).add(ev["handle"])
    elif e == "close":
        live.get(sid, set()).discard(ev["handle"])
    elif e == "end":
        live.pop(sid, None)
print([s for s, hs in live.items() if hs][-1])
PYEOF
)
printf '%s\n' \
  "{\"id\":1,\"method\":\"attach\",\"params\":{\"session\":$sid}}" \
  '{"id":2,"method":"flowback","params":{"handle":1,"depth":2}}' |
  "$PPD" connect --socket "$sock" >"$dir/after.out"
python3 - "$dir/before.out" "$dir/after.out" "$dir/fb.oneshot" <<'PYEOF'
import json, sys
before = [json.loads(l) for l in open(sys.argv[1])]
after = [json.loads(l) for l in open(sys.argv[2])]
oneshot = open(sys.argv[3]).read()
for r in before + after:
    assert "error" not in r, f"protocol error: {r}"
assert before[1]["result"]["output"] == oneshot, "pre-kill answer differs from one-shot CLI"
assert after[1]["result"]["output"] == oneshot, "post-resume answer differs from one-shot CLI"
PYEOF
kill -TERM "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "chaos: daemon SIGKILL -> --resume -> byte-identical re-query ok"
