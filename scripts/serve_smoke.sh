#!/bin/sh
# Smoke the serve daemon over a real unix socket: N concurrent clients
# drive the same conversation through `ppd connect`, every response
# must carry the id of its request, the flowback answers must be
# byte-identical to the one-shot CLI, and SIGTERM must shut the daemon
# down cleanly — socket removed, no orphan process. CI runs this so
# the transport layer (accept loop, per-connection threads, signal
# path) stays exercised, not just the in-process dispatcher.
set -eu

PPD=${PPD:-_build/default/bin/ppd_cli.exe}
CLIENTS=${CLIENTS:-8}

dir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

"$PPD" example fig61 >"$dir/fig61.mpl"
"$PPD" log "$dir/fig61.mpl" --save "$dir/fig61.seg" >/dev/null

# the answers the daemon must reproduce byte for byte
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/fig61.seg" --depth 2 >"$dir/flowback.one"
"$PPD" replay "$dir/fig61.mpl" --load "$dir/fig61.seg" >"$dir/replay.one"

sock="$dir/ppd.sock"
"$PPD" serve --socket "$sock" -j 2 2>"$dir/daemon.log" &
daemon_pid=$!

# wait for the socket to appear
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve-smoke: daemon never bound $sock" >&2
    cat "$dir/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done

# N concurrent clients, each a full conversation over ppd connect.
# (wait on their pids specifically: a bare `wait` would also wait on
# the daemon, which only exits on SIGTERM)
client_pids=""
n=0
while [ "$n" -lt "$CLIENTS" ]; do
  n=$((n + 1))
  {
    printf '%s\n' \
      "{\"id\":1,\"method\":\"ping\"}" \
      "{\"id\":2,\"method\":\"open\",\"params\":{\"log\":\"$dir/fig61.seg\",\"program\":\"$dir/fig61.mpl\"}}" \
      "{\"id\":3,\"method\":\"flowback\",\"params\":{\"handle\":1,\"depth\":2}}" \
      "{\"id\":4,\"method\":\"replay\",\"params\":{\"handle\":1}}" \
      "{\"id\":5,\"method\":\"close\",\"params\":{\"handle\":1}}" |
      "$PPD" connect --socket "$sock" >"$dir/client$n.out"
  } &
  client_pids="$client_pids $!"
done
for pid in $client_pids; do
  wait "$pid"
done

# every client: 5 id-matched responses, none an error, and the
# flowback/replay outputs byte-match the one-shot CLI
n=0
while [ "$n" -lt "$CLIENTS" ]; do
  n=$((n + 1))
  python3 - "$dir/client$n.out" "$dir/flowback.one" "$dir/replay.one" <<'EOF'
import json, sys
out, flow, rep = sys.argv[1], sys.argv[2], sys.argv[3]
lines = [json.loads(l) for l in open(out)]
assert [r["id"] for r in lines] == [1, 2, 3, 4, 5], f"{out}: ids {[r['id'] for r in lines]}"
for r in lines:
    assert "error" not in r, f"{out}: unexpected error response {r}"
assert lines[2]["result"]["output"] == open(flow).read(), f"{out}: flowback differs"
assert lines[3]["result"]["output"] == open(rep).read(), f"{out}: replay differs"
EOF
done
echo "serve-smoke: $CLIENTS concurrent clients, all responses id-matched and byte-identical"

# clean shutdown on SIGTERM: process exits, socket file removed
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve-smoke: daemon ignored SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
daemon_pid=""
if [ -e "$sock" ]; then
  echo "serve-smoke: daemon leaked its socket file $sock" >&2
  exit 1
fi
grep -q "stopped (pool drained, socket removed)" "$dir/daemon.log" || {
  echo "serve-smoke: daemon did not report a clean stop" >&2
  cat "$dir/daemon.log" >&2
  exit 1
}

echo "serve-smoke: clean SIGTERM shutdown, no leaked socket"
