#!/bin/sh
# Exercise the ppd verify-log exit-code contract on a freshly saved v2
# segment: 0 for a clean file, 4 for detected damage (mid-page
# truncation), 6 for a file that is not a PPD log at all. CI runs this
# so the crash-recovery paths stay wired to their documented exits.
set -eu

PPD=${PPD:-_build/default/bin/ppd_cli.exe}

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

"$PPD" example fig61 >"$dir/fig61.mpl"
"$PPD" log "$dir/fig61.mpl" --save "$dir/run.log" >/dev/null

"$PPD" verify-log "$dir/run.log"

head -c 150 "$dir/run.log" >"$dir/cut.log"
set +e
"$PPD" verify-log "$dir/cut.log"
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "verify-log: expected exit 4 on a truncated segment, got $code" >&2
  exit 1
fi
# salvage still recovers the complete pages before the cut
"$PPD" log stats "$dir/cut.log"

echo garbage >"$dir/bad.log"
set +e
"$PPD" verify-log "$dir/bad.log"
code=$?
set -e
if [ "$code" -ne 6 ]; then
  echo "verify-log: expected exit 6 on a non-log file, got $code" >&2
  exit 1
fi

echo "verify-log: exit-code contract holds (0 clean, 4 damaged, 6 not a log)"
