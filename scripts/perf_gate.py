#!/usr/bin/env python3
"""CI perf gate over the bench JSON (dune exec bench/main.exe -- --json t1 t9 t10 t11 t12 t16)
and, optionally, a ppd profile JSON (--profile FILE).

Checks on the T10 (parallel replay) table:

1. Determinism — every workload's parallel runs must have produced a
   graph byte-identical to the serial (-j1) one. Enforced everywhere.
2. Speedup — the -j4 run must beat -j1 by a sanity margin (default
   1.4x; the paper-level target is ~2x). Only enforced when the host
   reports at least MIN_CORES cores: a 1- or 2-core runner physically
   cannot show the speedup, so the gate prints the numbers and skips
   the margin there instead of failing spuriously.

Checks on the T1 (engine comparison) table, when present:

A. Per-workload VM speedup floors — interp_bare_ns / vm_bare_ns must
   clear a committed per-workload floor. The floors are calibrated,
   not uniform: matmul is local-step dominated so the bytecode VM's
   full dispatch-loop advantage shows (measured 5.3-5.9x -> floor
   4.0), while sync-heavy workloads spend most of their steps in the
   shared scheduler/driver that both engines use by design (the
   single-driver architecture is what makes traces identical by
   construction), so their physically attainable ratio is bounded by
   the driver share — their floors encode "the VM never loses and
   keeps its measured edge", not 10x.
B. Logged-path sanity — vm_logged_ns must stay within
   T1_VM_LOGGED_MAX_RATIO of interp_logged_ns on every workload: the
   VM must not surrender its advantage once the trace logger is on
   (zero-copy prelog/postlog contract, DESIGN §15).
C. VM tracing overhead — on the local-dominated workload the cost of
   log writes over event materialization alone,
   (vm_logged - vm_instr) / vm_instr, must stay under a loose bound.
   Measured 7-22% across runs; the bound (50%) is a tripwire for the
   zero-copy contract breaking (per-event allocation on the VM log
   path shows up as 2-3x), not the paper's tight claim — wall-clock
   ratios of two sub-100ns paths are too noisy on shared runners for
   a tight gate.

Checks on the T11 (observability overhead) table, when present:

3. A disabled counter operation must cost under DISABLED_OP_MAX_NS —
   the "free when off" contract of lib/obs (one atomic load). This is
   the machine-independent form of "instrumentation off stays within
   2% of the uninstrumented baseline": the absolute per-op bound holds
   on any runner, where a wall-clock ratio between two CI runs would
   be noise.
4. The obs-on run must not be absurdly slower than obs-off (> 2x means
   a hot path is doing real work when it should be gated).

Checks on the T12 (fault-injection overhead) table, when present:

5. A disarmed fault check must cost under DISABLED_OP_MAX_NS — the
   same "free when off" contract as T11, for the chaos layer that is
   compiled into every I/O and execution edge.
6. Arming a plan whose entries never match must not slow the full
   log-and-flowback pass by more than 2x.

Checks on the T16 (protocol analysis) table, when present:

7. Refinement monotonicity — on every workload the protocol-refined
   MHP must discharge at least as many conflicting pairs as the
   spawn/join baseline (discharged_proto >= discharged_base), and the
   refined count must not regress below the committed floor for that
   workload. Precision, unlike wall-clock, is deterministic, so the
   floors are exact numbers.

Checks on the T13 (serve daemon) table, when present:

8. Zero protocol errors across every session count — a daemon that
   sheds or misdispatches under the bench's load is broken, not slow.
9. Cache sharing — the shared-fragment-cache hit rate at 16
   concurrent sessions must beat the single-session run: if it does
   not, sessions are not actually sharing replayed fragments.

Checks on a serve profile JSON (--serve-profile FILE), when given:

10. Namespace coherence — every global serve.* counter must equal the
    sum of its per-session serve.s<ID>.* mirrors (the satellite
    invariant of the per-session accounting).

Checks on the profile JSON (--profile FILE), when given:

11. Counter coherence — cache hits + misses == lookups; the emulator's
   replay count >= the controller's assembled replays (speculation can
   only add); assembled replays <= lookups; at least one phase span
   of each of "execution" and "debugging" was recorded.

Usage: perf_gate.py BENCH_JSON [MARGIN] [--profile PROFILE_JSON]
                    [--serve-profile SERVE_PROFILE_JSON]
"""

import json
import sys

MIN_CORES = 4
DISABLED_OP_MAX_NS = 25.0
ON_OFF_MAX_RATIO = 2.0


def fail(msg):
    print(f"perf-gate: FAIL: {msg}")
    sys.exit(1)


def check_t10(data, margin, failures):
    rows = data.get("t10")
    if not rows:
        fail("no t10 table in the bench JSON")
    cores = int(data.get("host_cores", 0))
    enforce = cores >= MIN_CORES

    for row in rows:
        name = row["workload"]
        if not row.get("identical", False):
            failures.append(f"{name}: parallel graph differs from serial")
            continue
        runs = {r["jobs"]: r for r in row["runs"]}
        if 1 not in runs or 4 not in runs:
            failures.append(f"{name}: missing -j1/-j4 runs")
            continue
        s1 = runs[1]["seconds"]
        s4 = runs[4]["seconds"]
        speedup = s1 / s4 if s4 > 0 else float("inf")
        print(
            f"perf-gate: {name}: {row['intervals']} interval(s), "
            f"-j1 {s1:.4f}s, -j4 {s4:.4f}s "
            f"({runs[4]['domains']} domain(s)) -> {speedup:.2f}x"
        )
        if enforce and speedup < margin:
            failures.append(
                f"{name}: -j4 speedup {speedup:.2f}x below the "
                f"{margin:.2f}x margin"
            )

    if not enforce:
        print(
            f"perf-gate: host has {cores} core(s) (< {MIN_CORES}); "
            f"determinism checked, speedup margin skipped"
        )
    return len(rows)


# Committed per-workload floors for the T1 bare-execution speedup
# (interp_bare_ns / vm_bare_ns). Calibrated from bench runs on the
# committing host with roughly 25-35% headroom below the measured
# ratio; see the module docstring for why the floors differ per
# workload (local-step share vs shared-driver share).
T1_VM_SPEEDUP_FLOOR = {
    "matmul-12": 4.0,     # measured 5.3-5.9x; local-step dominated
    "branchy-150": 1.7,   # measured 2.2-3.0x
    "prodcons-300": 1.4,  # measured 1.9-2.1x; channel driver heavy
    "counter-4x50": 1.3,  # measured 1.6-1.9x; semaphore driver heavy
    "ring-6x12": 1.0,     # measured 1.1-1.4x; almost all sync steps
    "fib-15": 1.0,        # measured 1.1-1.3x; call/return driver heavy
}
T1_VM_LOGGED_MAX_RATIO = 1.05
T1_VM_TRACE_OVH_MAX = {"matmul-12": 0.5}


def check_t1_vm(data, failures):
    rows = data.get("t1")
    if not rows:
        return
    seen = set()
    for row in rows:
        name = row["workload"]
        seen.add(name)
        ib = float(row["interp_bare_ns"])
        vb = float(row["vm_bare_ns"])
        il = float(row["interp_logged_ns"])
        vi = float(row["vm_instr_ns"])
        vl = float(row["vm_logged_ns"])
        steps = int(row["steps"])
        if not (ib and vb and il and vi and vl):
            failures.append(f"t1/{name}: missing engine timings")
            continue
        speedup = ib / vb
        print(
            f"perf-gate: t1/{name}: {steps} step(s), interp "
            f"{ib / steps:.1f} ns/step, vm {vb / steps:.1f} ns/step "
            f"-> {speedup:.2f}x bare"
        )
        floor = T1_VM_SPEEDUP_FLOOR.get(name)
        if floor is not None and speedup < floor:
            failures.append(
                f"t1/{name}: vm speedup {speedup:.2f}x below the "
                f"committed {floor:.1f}x floor"
            )
        logged_ratio = vl / il
        print(
            f"perf-gate: t1/{name}: logged vm/interp = {logged_ratio:.3f}x"
        )
        if logged_ratio > T1_VM_LOGGED_MAX_RATIO:
            failures.append(
                f"t1/{name}: vm-with-logging is {logged_ratio:.2f}x the "
                f"interp-with-logging time (> {T1_VM_LOGGED_MAX_RATIO:.2f}x)"
                f" — the VM lost its advantage once the logger came on"
            )
        ovh_max = T1_VM_TRACE_OVH_MAX.get(name)
        if ovh_max is not None:
            ovh = (vl - vi) / vi
            print(f"perf-gate: t1/{name}: vm log-write overhead "
                  f"{100 * ovh:.0f}%")
            if ovh > ovh_max:
                failures.append(
                    f"t1/{name}: log writes cost {100 * ovh:.0f}% over "
                    f"event materialization (> {100 * ovh_max:.0f}%) — "
                    f"the zero-copy logging contract looks broken"
                )
    for name in T1_VM_SPEEDUP_FLOOR:
        if name not in seen:
            failures.append(f"t1: committed workload {name} missing "
                            f"from the bench JSON")


def check_t11(data, failures):
    t11 = data.get("t11")
    if not t11:
        return
    op = t11.get("disabled_op_ns")
    if op is None:
        failures.append("t11: no disabled_op_ns measurement")
    else:
        print(f"perf-gate: t11: disabled counter op {op:.2f} ns/call")
        if op > DISABLED_OP_MAX_NS:
            failures.append(
                f"t11: disabled counter op {op:.2f} ns exceeds the "
                f"{DISABLED_OP_MAX_NS:.0f} ns bound — instrumentation "
                f"is not free when off"
            )
    for row in t11.get("rows", []):
        name, off, on = row["workload"], row["off_ns"], row["on_ns"]
        if not off or not on:
            failures.append(f"t11/{name}: missing off/on timing")
            continue
        ratio = on / off
        print(f"perf-gate: t11/{name}: obs-on/obs-off = {ratio:.3f}x")
        if ratio > ON_OFF_MAX_RATIO:
            failures.append(
                f"t11/{name}: enabling collection costs {ratio:.2f}x "
                f"(> {ON_OFF_MAX_RATIO:.1f}x) — a hot path is doing "
                f"ungated work"
            )


def check_t12(data, failures):
    t12 = data.get("t12")
    if not t12:
        return
    op = t12.get("disabled_op_ns")
    if op is None:
        failures.append("t12: no disabled_op_ns measurement")
    else:
        print(f"perf-gate: t12: disarmed fault check {op:.2f} ns/call")
        if op > DISABLED_OP_MAX_NS:
            failures.append(
                f"t12: disarmed fault check {op:.2f} ns exceeds the "
                f"{DISABLED_OP_MAX_NS:.0f} ns bound — fault injection "
                f"is not free when off"
            )
    for row in t12.get("rows", []):
        name, off, armed = row["workload"], row["off_ns"], row["armed_ns"]
        if not off or not armed:
            failures.append(f"t12/{name}: missing off/armed timing")
            continue
        ratio = armed / off
        print(f"perf-gate: t12/{name}: armed/disarmed = {ratio:.3f}x")
        if ratio > ON_OFF_MAX_RATIO:
            failures.append(
                f"t12/{name}: an armed-but-inert plan costs {ratio:.2f}x "
                f"(> {ON_OFF_MAX_RATIO:.1f}x) — a check site is doing "
                f"ungated work"
            )


def check_t13(data, failures):
    rows = data.get("t13")
    if not rows:
        return
    by_sessions = {}
    for row in rows:
        n = int(row["sessions"])
        by_sessions[n] = row
        print(
            f"perf-gate: t13/{n} session(s): {row['requests']} request(s), "
            f"{row['errors']} error(s), p50 {row['p50_ns'] / 1e6:.2f} ms, "
            f"p99 {row['p99_ns'] / 1e6:.2f} ms, hit rate "
            f"{100 * row['hit_rate']:.0f}%, {row['shed']} shed"
        )
        if int(row["errors"]) != 0:
            failures.append(
                f"t13/{n}: {row['errors']} protocol error(s) — the bench "
                f"drives only well-formed requests, so every one must "
                f"succeed"
            )
        if int(row["requests"]) == 0:
            failures.append(f"t13/{n}: no requests completed")
    if 1 in by_sessions and 16 in by_sessions:
        lone = float(by_sessions[1]["hit_rate"])
        many = float(by_sessions[16]["hit_rate"])
        if many <= lone:
            failures.append(
                f"t13: hit rate at 16 sessions ({100 * many:.0f}%) does "
                f"not beat the single-session run ({100 * lone:.0f}%) — "
                f"sessions are not sharing the fragment cache"
            )
    else:
        failures.append("t13: missing the 1- or 16-session row")


# Order-tier byte gate (T14): on sync-heavy workloads — critical
# sections reading sizeable shared state, where the content tier's
# sync-unit snapshots dominate — the order tier must cut the log by
# an order of magnitude; 0.3x is the never-regress ceiling, the
# committed rows sit near 0.06x. Reconstruction identity must hold on
# every row (it is the correctness contract, not a perf number), and
# checkpoint seeding must actually bound the seek scan.
T14_ORDER_MAX_RATIO = 0.3


def check_t14(data, failures):
    rows = data.get("t14")
    if not rows:
        return
    for row in rows:
        name = row["workload"]
        content = int(row["content_bytes"])
        order = int(row["order_bytes"])
        ratio = order / content if content else 1.0
        print(
            f"perf-gate: t14/{name}: {content}B content, {order}B order "
            f"({ratio:.3f}x), {row['checkpoints']} checkpoint(s), "
            f"identity={row['identity']}, seek scan "
            f"{row['scan_full']} -> {row['scan_ckpt']}"
        )
        if not row["identity"]:
            failures.append(
                f"t14/{name}: reconstruction did not reproduce the "
                f"content log entry-for-entry — order-tier debugging "
                f"would diverge from the recording"
            )
        if row["sync_heavy"] and ratio > T14_ORDER_MAX_RATIO:
            failures.append(
                f"t14/{name}: order log is {ratio:.2f}x of the content "
                f"log (> {T14_ORDER_MAX_RATIO}x) — the order tier is "
                f"recording more than the sync order"
            )
        scan_full, scan_ckpt = int(row["scan_full"]), int(row["scan_ckpt"])
        if scan_ckpt > scan_full:
            failures.append(
                f"t14/{name}: checkpoint-seeded restore scanned "
                f"{scan_ckpt} entries, more than the {scan_full} a full "
                f"scan needs"
            )
        if int(row["checkpoints"]) >= 2 and scan_full >= 50 \
                and scan_ckpt * 2 > scan_full:
            failures.append(
                f"t14/{name}: checkpoint-seeded restore scanned "
                f"{scan_ckpt}/{scan_full} entries — checkpoints are not "
                f"bounding the seek"
            )


def check_serve_profile(path, failures):
    with open(path) as f:
        prof = json.load(f)
    c = {k: int(v) for k, v in prof.get("counters", {}).items()}
    names = ("requests", "errors", "cache.hits", "cache.misses",
             "queue_wait_ns", "shed")
    for name in names:
        total = sum(
            v
            for k, v in c.items()
            if k.startswith("serve.s") and k.endswith("." + name)
            and k != f"serve.{name}"
        )
        glob = c.get(f"serve.{name}", 0)
        print(f"perf-gate: serve profile: serve.{name} = {glob}, "
              f"session sum = {total}")
        if glob != total:
            failures.append(
                f"serve profile: serve.{name} ({glob}) != sum of the "
                f"per-session serve.s<ID>.{name} mirrors ({total})"
            )
    if c.get("serve.requests", 0) == 0:
        failures.append("serve profile: no serve.requests recorded")


# Committed precision floors for T16: pairs the protocol-refined MHP
# discharged on each workload when the gate was last updated. The
# analysis is deterministic, so any dip below these is a real
# precision regression, not noise.
T16_DISCHARGE_FLOOR = {
    "pipeline/w2": 7,
    "pipeline/w3": 7,
    "pipeline/w4": 7,
    "ping_pong": 30,
}


def check_t16(data, failures):
    rows = data.get("t16")
    if not rows:
        return
    for row in rows:
        name = row["workload"]
        base = int(row["discharged_base"])
        proto = int(row["discharged_proto"])
        print(
            f"perf-gate: t16/{name}: {row['states']} state(s), "
            f"{base}/{row['conflicting']} pair(s) discharged by "
            f"spawn/join, {proto} with protocol refinement"
        )
        if proto < base:
            failures.append(
                f"t16/{name}: protocol refinement discharged {proto} "
                f"pair(s), fewer than the {base} the spawn/join "
                f"baseline already proves — refinement lost pairs"
            )
        floor = T16_DISCHARGE_FLOOR.get(name)
        if floor is not None and proto < floor:
            failures.append(
                f"t16/{name}: discharged pairs regressed to {proto} "
                f"(committed floor {floor})"
            )


# Daemon survivability (T17): the bench injects every failure the
# resilience layer exists for — deadlines it cannot meet, a poisoned
# co-tenant, a crash/resume cycle, 64 sessions under a byte budget —
# and the acceptance bar is (a) zero protocol errors anywhere, (b)
# every injected failure actually refused (PPD090/PPD050/PPD091
# observed where designed), (c) the healthy p99 beside the poisoned
# co-tenant within 2x the baseline p99 (with a small absolute floor so
# microsecond-scale noise cannot flake the gate), and (d) the memory
# high-water mark within the configured budget plus eviction slack.
T17_ISOLATION_MAX_RATIO = 2.0
T17_ISOLATION_FLOOR_NS = 2_000_000  # both p99s under 2 ms: noise, pass
T17_BUDGET_SLACK = 1.25


def check_t17(data, failures):
    rows = data.get("t17")
    if not rows:
        return
    by_scenario = {}
    for row in rows:
        name = row["scenario"]
        by_scenario[name] = row
        print(
            f"perf-gate: t17/{name}: {row['requests']} request(s), "
            f"{row['errors']} error(s), {row['refused']} refused, "
            f"p50 {row['p50_ns'] / 1e6:.2f} ms, "
            f"p99 {row['p99_ns'] / 1e6:.2f} ms"
        )
        if int(row["errors"]) != 0:
            failures.append(
                f"t17/{name}: {row['errors']} protocol error(s) — "
                f"refusals must be typed PPD090/PPD091/PPD050 answers, "
                f"never malformed or unexpected errors"
            )
        if int(row["requests"]) == 0:
            failures.append(f"t17/{name}: no requests completed")
    for name in (
        "deadline",
        "quarantine_baseline",
        "quarantine_healthy",
        "quarantine_poisoned",
        "recovery",
        "soak64",
    ):
        if name not in by_scenario:
            failures.append(f"t17: missing the {name} row")
    if "deadline" in by_scenario and int(by_scenario["deadline"]["refused"]) == 0:
        failures.append(
            "t17/deadline: no request was refused — the deadline "
            "mechanism never fired under a clock it cannot meet"
        )
    if (
        "quarantine_poisoned" in by_scenario
        and int(by_scenario["quarantine_poisoned"]["refused"]) == 0
    ):
        failures.append(
            "t17/quarantine_poisoned: the poisoned log was never "
            "refused — hard faults are not reaching the breaker"
        )
    if (
        "quarantine_healthy" in by_scenario
        and int(by_scenario["quarantine_healthy"].get("breaker_trips", 0)) == 0
    ):
        failures.append(
            "t17/quarantine_healthy: the co-tenant's breaker never "
            "tripped — quarantine was not exercised"
        )
    if "quarantine_baseline" in by_scenario and "quarantine_healthy" in by_scenario:
        base = float(by_scenario["quarantine_baseline"]["p99_ns"])
        beside = float(by_scenario["quarantine_healthy"]["p99_ns"])
        if (
            beside > T17_ISOLATION_FLOOR_NS
            and base > 0
            and beside / base > T17_ISOLATION_MAX_RATIO
        ):
            failures.append(
                f"t17: healthy p99 beside the poisoned co-tenant is "
                f"{beside / base:.2f}x the baseline "
                f"(> {T17_ISOLATION_MAX_RATIO:.1f}x) — quarantine is "
                f"not isolating sessions"
            )
    if "soak64" in by_scenario:
        row = by_scenario["soak64"]
        cap = int(row.get("budget_cap", 0))
        used = int(row.get("budget_used", 0))
        high = int(row.get("budget_used_max", used))
        if cap <= 0:
            failures.append("t17/soak64: no memory budget was configured")
        else:
            print(
                f"perf-gate: t17/soak64: budget {cap} byte(s), settled "
                f"{used}, high-water {high}"
            )
            if used <= 0:
                failures.append(
                    "t17/soak64: the settled budget gauge reads zero "
                    "with a handle open — memory accounting is dead"
                )
            if high > cap * T17_BUDGET_SLACK:
                failures.append(
                    f"t17/soak64: memory high-water mark {high} exceeds "
                    f"the {cap}-byte budget beyond the "
                    f"{T17_BUDGET_SLACK:.2f}x eviction slack"
                )


def check_profile(path, failures):
    with open(path) as f:
        prof = json.load(f)
    c = prof.get("counters", {})

    def cnt(name):
        return int(c.get(name, 0))

    lookups = cnt("ppd.controller.cache.lookups")
    hits = cnt("ppd.controller.cache.hits")
    misses = cnt("ppd.controller.cache.misses")
    ctl_replays = cnt("ppd.controller.replays")
    emu_replays = cnt("ppd.emulator.replays")
    print(
        f"perf-gate: profile: {lookups} lookup(s) = {hits} hit(s) + "
        f"{misses} miss(es); {ctl_replays} assembled replay(s), "
        f"{emu_replays} emulator replay(s)"
    )
    if hits + misses != lookups:
        failures.append(
            f"profile: cache hits ({hits}) + misses ({misses}) != "
            f"lookups ({lookups})"
        )
    if lookups == 0:
        failures.append("profile: no interval-cache lookups recorded")
    if emu_replays < ctl_replays:
        failures.append(
            f"profile: emulator replays ({emu_replays}) < assembled "
            f"replays ({ctl_replays}) — speculation can only add"
        )
    if ctl_replays > lookups:
        failures.append(
            f"profile: assembled replays ({ctl_replays}) > lookups "
            f"({lookups})"
        )
    phases = {
        s["name"] for s in prof.get("spans", []) if s.get("cat") == "phase"
    }
    for want in ("execution", "debugging"):
        if want not in phases:
            failures.append(f"profile: no '{want}' phase span recorded")


def main():
    args = sys.argv[1:]
    profile = None
    if "--profile" in args:
        i = args.index("--profile")
        profile = args[i + 1]
        del args[i : i + 2]
    serve_profile = None
    if "--serve-profile" in args:
        i = args.index("--serve-profile")
        serve_profile = args[i + 1]
        del args[i : i + 2]
    path = args[0] if args else "bench.json"
    margin = float(args[1]) if len(args) > 1 else 1.4
    with open(path) as f:
        data = json.load(f)

    failures = []
    nrows = check_t10(data, margin, failures)
    check_t1_vm(data, failures)
    check_t11(data, failures)
    check_t12(data, failures)
    check_t13(data, failures)
    check_t14(data, failures)
    check_t16(data, failures)
    check_t17(data, failures)
    if profile:
        check_profile(profile, failures)
    if serve_profile:
        check_serve_profile(serve_profile, failures)
    if failures:
        fail("; ".join(failures))
    cores = int(data.get("host_cores", 0))
    print(f"perf-gate: OK ({nrows} workload(s), host_cores={cores})")


if __name__ == "__main__":
    main()
