#!/usr/bin/env python3
"""CI perf gate over the bench JSON (dune exec bench/main.exe -- --json t9 t10).

Two checks on the T10 (parallel replay) table:

1. Determinism — every workload's parallel runs must have produced a
   graph byte-identical to the serial (-j1) one. Enforced everywhere.
2. Speedup — the -j4 run must beat -j1 by a sanity margin (default
   1.4x; the paper-level target is ~2x). Only enforced when the host
   reports at least MIN_CORES cores: a 1- or 2-core runner physically
   cannot show the speedup, so the gate prints the numbers and skips
   the margin there instead of failing spuriously.

Usage: perf_gate.py BENCH_JSON [MARGIN]
"""

import json
import sys

MIN_CORES = 4


def fail(msg):
    print(f"perf-gate: FAIL: {msg}")
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench.json"
    margin = float(sys.argv[2]) if len(sys.argv) > 2 else 1.4
    with open(path) as f:
        data = json.load(f)

    rows = data.get("t10")
    if not rows:
        fail(f"no t10 table in {path}")
    cores = int(data.get("host_cores", 0))
    enforce = cores >= MIN_CORES

    failures = []
    for row in rows:
        name = row["workload"]
        if not row.get("identical", False):
            failures.append(f"{name}: parallel graph differs from serial")
            continue
        runs = {r["jobs"]: r for r in row["runs"]}
        if 1 not in runs or 4 not in runs:
            failures.append(f"{name}: missing -j1/-j4 runs")
            continue
        s1 = runs[1]["seconds"]
        s4 = runs[4]["seconds"]
        speedup = s1 / s4 if s4 > 0 else float("inf")
        print(
            f"perf-gate: {name}: {row['intervals']} interval(s), "
            f"-j1 {s1:.4f}s, -j4 {s4:.4f}s "
            f"({runs[4]['domains']} domain(s)) -> {speedup:.2f}x"
        )
        if enforce and speedup < margin:
            failures.append(
                f"{name}: -j4 speedup {speedup:.2f}x below the "
                f"{margin:.2f}x margin"
            )

    if not enforce:
        print(
            f"perf-gate: host has {cores} core(s) (< {MIN_CORES}); "
            f"determinism checked, speedup margin skipped"
        )
    if failures:
        fail("; ".join(failures))
    print(f"perf-gate: OK ({len(rows)} workload(s), host_cores={cores})")


if __name__ == "__main__":
    main()
