#!/bin/sh
# Lint every bundled MPL example and compare the JSON diagnostics
# against the golden file. Any unexpected PPD0xx finding (or a missing
# expected one) fails the run. Used by the CI lint-examples job;
# regenerate the golden with scripts/lint_examples.sh --update after
# an intentional diagnostics change.
set -eu

PPD=${PPD:-_build/default/bin/ppd_cli.exe}
GOLDEN=${GOLDEN:-test/lint_examples.golden}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

for f in examples/mpl/*.mpl; do
  set +e
  json=$("$PPD" lint --format=json "$f")
  code=$?
  set -e
  # lint exits 0 (clean) or 5 (findings); anything else is a crash
  if [ "$code" -ne 0 ] && [ "$code" -ne 5 ]; then
    echo "lint-examples: $f: ppd lint exited $code" >&2
    exit 1
  fi
  printf '%s exit=%d %s\n' "$(basename "$f")" "$code" "$json" >>"$out"

  # the protocol analysis must never crash on an example; its JSON
  # verdict (and certificate replay status) is pinned too
  set +e
  pjson=$("$PPD" proto --format=json "$f")
  pcode=$?
  set -e
  if [ "$pcode" -ne 0 ] && [ "$pcode" -ne 5 ]; then
    echo "lint-examples: $f: ppd proto exited $pcode" >&2
    exit 1
  fi
  printf '%s proto exit=%d %s\n' "$(basename "$f")" "$pcode" "$pjson" >>"$out"
done

if [ "${1:-}" = "--update" ]; then
  cp "$out" "$GOLDEN"
  echo "lint-examples: golden updated ($GOLDEN)"
  exit 0
fi

if ! diff -u "$GOLDEN" "$out"; then
  echo "lint-examples: diagnostics differ from $GOLDEN (run scripts/lint_examples.sh --update if intended)" >&2
  exit 1
fi
echo "lint-examples: $(wc -l <"$out" | tr -d ' ') example(s) match the golden diagnostics"
