#!/bin/sh
# Chaos soak for the serve daemon (DESIGN §17): concurrent clients
# under injected transient faults, clients killed mid-conversation,
# one SIGKILL of the daemon followed by `--resume` and an `attach`
# that must re-answer byte-identically, and finally a SIGTERM landing
# while requests are in flight. The acceptance bar is zero protocol
# errors on every surviving conversation and byte-identity of every
# surviving answer against the one-shot CLI.
#
# On failure the work directory is kept (journal, daemon log, client
# transcripts, last serverStats dump) so CI can upload it as an
# artifact; set SOAK_DIR to choose where it lives.
set -eu

PPD=${PPD:-_build/default/bin/ppd_cli.exe}
CLIENTS=${CLIENTS:-6}
ROUNDS=${ROUNDS:-4}

dir=${SOAK_DIR:-$(mktemp -d)}
mkdir -p "$dir"
daemon_pid=""
ok=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  if [ -n "$ok" ]; then
    rm -rf "$dir"
  else
    echo "soak-serve: FAILED — artifacts kept in $dir" >&2
  fi
}
trap cleanup EXIT

sock="$dir/ppd.sock"
journal="$dir/journal.jsonl"

"$PPD" example fig61 >"$dir/fig61.mpl"
"$PPD" log "$dir/fig61.mpl" --save "$dir/fig61.seg" >/dev/null

# the answers every surviving query must reproduce byte for byte
"$PPD" flowback "$dir/fig61.mpl" --load "$dir/fig61.seg" --depth 2 >"$dir/flowback.one"
"$PPD" replay "$dir/fig61.mpl" --load "$dir/fig61.seg" >"$dir/replay.one"

start_daemon() {
  rm -f "$sock"
  "$PPD" serve --socket "$sock" -j 2 "$@" 2>>"$dir/daemon.log" &
  daemon_pid=$!
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "soak-serve: daemon never bound $sock" >&2
      cat "$dir/daemon.log" >&2
      exit 1
    fi
    sleep 0.1
  done
}

stats_dump() {
  printf '{"id":1,"method":"serverStats"}\n' |
    "$PPD" connect --socket "$sock" >"$dir/serverstats.json" 2>/dev/null || true
}

# ---------------------------------------------------------------- #
# Phase 1: concurrent clients under injected transient faults,      #
# with two co-tenants killed mid-conversation.                      #
# ---------------------------------------------------------------- #

start_daemon --journal "$journal" \
  --fault 'exec.pool.task:1,exec.pool.task:3,exec.pool.task:7' --fault-seed 7

# two victims: opened a handle, got one answer, then SIGKILLed — the
# daemon must shrug the dropped connections off
victim_pids=""
for v in 1 2; do
  {
    printf '%s\n' \
      "{\"id\":1,\"method\":\"open\",\"params\":{\"log\":\"$dir/fig61.seg\",\"program\":\"$dir/fig61.mpl\"}}" \
      "{\"id\":2,\"method\":\"flowback\",\"params\":{\"handle\":1,\"depth\":2}}"
    sleep 30
  } | "$PPD" connect --socket "$sock" >"$dir/victim$v.out" 2>/dev/null &
  victim_pids="$victim_pids $!"
done

client_pids=""
n=0
while [ "$n" -lt "$CLIENTS" ]; do
  n=$((n + 1))
  {
    {
      printf '{"id":1,"method":"open","params":{"log":"%s","program":"%s"}}\n' \
        "$dir/fig61.seg" "$dir/fig61.mpl"
      k=0
      while [ "$k" -lt "$ROUNDS" ]; do
        k=$((k + 1))
        printf '{"id":%d,"method":"flowback","params":{"handle":1,"depth":2}}\n' $((2 * k))
        printf '{"id":%d,"method":"replay","params":{"handle":1}}\n' $((2 * k + 1))
      done
      printf '{"id":99,"method":"close","params":{"handle":1}}\n'
    } | "$PPD" connect --socket "$sock" >"$dir/client$n.out"
  } &
  client_pids="$client_pids $!"
done

# kill the victims while the fleet is talking
sleep 0.3
for pid in $victim_pids; do
  kill -9 "$pid" 2>/dev/null || true
done

for pid in $client_pids; do
  wait "$pid"
done

n=0
while [ "$n" -lt "$CLIENTS" ]; do
  n=$((n + 1))
  python3 - "$dir/client$n.out" "$dir/flowback.one" "$dir/replay.one" "$ROUNDS" <<'EOF'
import json, sys
out, flow, rep, rounds = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
lines = [json.loads(l) for l in open(out)]
assert len(lines) == 2 * rounds + 2, f"{out}: {len(lines)} response(s)"
for r in lines:
    assert "error" not in r, f"{out}: protocol error {r}"
flow_want, rep_want = open(flow).read(), open(rep).read()
for i, r in enumerate(lines[1:-1]):
    want = flow_want if i % 2 == 0 else rep_want
    assert r["result"]["output"] == want, f"{out}: response {r['id']} differs"
EOF
done
echo "soak-serve: $CLIENTS clients x $ROUNDS rounds under transient faults, 2 clients killed: all surviving answers byte-identical"

stats_dump

# ---------------------------------------------------------------- #
# Phase 2: a session with an open handle survives SIGKILL via the   #
# journal — resume, attach, and the same query answers the same     #
# bytes.                                                            #
# ---------------------------------------------------------------- #

{
  printf '%s\n' \
    "{\"id\":1,\"method\":\"open\",\"params\":{\"log\":\"$dir/fig61.seg\",\"program\":\"$dir/fig61.mpl\"}}" \
    "{\"id\":2,\"method\":\"flowback\",\"params\":{\"handle\":1,\"depth\":2}}"
  sleep 30
} | "$PPD" connect --socket "$sock" >"$dir/survivor.out" 2>/dev/null &
survivor_pid=$!

# wait for the flowback answer to prove the handle is open and journaled
i=0
while [ "$(wc -l <"$dir/survivor.out")" -lt 2 ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "soak-serve: survivor session never answered" >&2
    exit 1
  fi
  sleep 0.1
done

kill -9 "$daemon_pid" 2>/dev/null
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
kill -9 "$survivor_pid" 2>/dev/null || true

# the journal knows which session died with handles open
sid=$(python3 - "$journal" <<'EOF'
import json, sys
live = {}
for line in open(sys.argv[1]):
    try:
        ev = json.loads(line)
    except ValueError:
        break  # torn tail from the SIGKILL: trust the prefix
    e, sid = ev.get("ev"), ev.get("sid")
    if e == "open":
        live.setdefault(sid, set()).add(ev["handle"])
    elif e == "close":
        live.get(sid, set()).discard(ev["handle"])
    elif e == "end":
        live.pop(sid, None)
recoverable = [s for s, hs in live.items() if hs]
assert recoverable, "no recoverable session in the journal"
print(recoverable[-1])
EOF
)

start_daemon --resume "$journal"

printf '%s\n' \
  '{"id":1,"method":"serverStats"}' \
  "{\"id\":2,\"method\":\"attach\",\"params\":{\"session\":$sid}}" \
  '{"id":3,"method":"flowback","params":{"handle":1,"depth":2}}' |
  "$PPD" connect --socket "$sock" >"$dir/resume.out"

python3 - "$dir/resume.out" "$dir/flowback.one" <<'EOF'
import json, sys
out, flow = sys.argv[1], sys.argv[2]
lines = [json.loads(l) for l in open(out)]
assert len(lines) == 3, f"{out}: {len(lines)} response(s)"
for r in lines:
    assert "error" not in r, f"{out}: protocol error {r}"
assert lines[0]["result"]["recoverable"] >= 1, f"{out}: nothing recoverable after --resume"
handles = lines[1]["result"]["handles"]
assert any(h["handle"] == 1 and h["live"] for h in handles), f"{out}: handle 1 not live after attach"
assert lines[2]["result"]["output"] == open(flow).read(), f"{out}: post-resume flowback differs"
EOF
echo "soak-serve: SIGKILL -> --resume -> attach session $sid: byte-identical re-query"

stats_dump

# ---------------------------------------------------------------- #
# Phase 3: SIGTERM landing mid-request — the daemon drains and      #
# stops cleanly, socket removed.                                    #
# ---------------------------------------------------------------- #

{
  printf '{"id":1,"method":"open","params":{"log":"%s","program":"%s"}}\n' \
    "$dir/fig61.seg" "$dir/fig61.mpl"
  k=1
  while [ "$k" -lt 200 ]; do
    k=$((k + 1))
    printf '{"id":%d,"method":"flowback","params":{"handle":1,"depth":2}}\n' "$k"
  done
} | "$PPD" connect --socket "$sock" >"$dir/inflight.out" 2>/dev/null &
inflight_pid=$!

sleep 0.3
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "soak-serve: daemon ignored SIGTERM with requests in flight" >&2
    exit 1
  fi
  sleep 0.1
done
daemon_pid=""
wait "$inflight_pid" 2>/dev/null || true
if [ -e "$sock" ]; then
  echo "soak-serve: daemon leaked its socket file $sock" >&2
  exit 1
fi
grep -q "stopped (pool drained, socket removed)" "$dir/daemon.log" || {
  echo "soak-serve: daemon did not report a clean stop" >&2
  cat "$dir/daemon.log" >&2
  exit 1
}

# whatever the in-flight client did receive must be clean protocol
python3 - "$dir/inflight.out" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    r = json.loads(line)
    assert "error" not in r, f"protocol error during drain: {r}"
EOF
echo "soak-serve: mid-request SIGTERM drained cleanly, no leaked socket"

ok=1
echo "soak-serve: OK"
