(** Process schedulers for the simulated shared-memory multiprocessor.

    The debugger never relies on scheduling reproducibility (that is the
    point of the paper), but seeded schedulers let the test suite
    quantify over many interleavings deterministically. *)

type policy =
  | Round_robin of int
      (** quantum: steps a process runs before yielding *)
  | Random_seed of int
      (** uniformly random runnable process each step *)
  | Scripted of int list
      (** follow the given pid script while possible (skipping
          non-runnable entries), then fall back to round-robin — used to
          force specific interleavings in tests *)
  | Guided of (runnable:int list -> int)
      (** delegate each decision to a callback (certificate-guided
          replay); a pick outside [runnable] falls back to round-robin *)

type t

val create : policy -> t

val pick : t -> runnable:int list -> int
(** Choose the next process to step. [runnable] is non-empty and
    sorted. *)

val burst : t -> runnable:int list -> pid:int -> int
(** After {!pick} on [runnable] just returned [pid]: how many further
    consecutive calls to {!pick} are guaranteed to return [pid] again,
    provided the runnable set does not change in between. Non-zero only
    for round-robin — the rest of the current quantum, or unbounded
    ([max_int]) when [pid] is the sole runnable process; random,
    scripted and guided schedulers give no guarantee. Does not consume
    the picks. *)

val commit : t -> pid:int -> int -> unit
(** Consume [n] of the picks promised by {!burst} — the machine calls
    this after stepping [pid] [n] extra times without re-entering
    {!pick}. [n] must not exceed the last {!burst} answer. *)

val default : policy
(** [Round_robin 3]. *)

val string_of_policy : policy -> string
(** ["rr:<quantum>"] or ["random:<seed>"] — the reproducible policies a
    flag can name. Order-tier logs persist this spec so reconstruction
    can replay the recording schedule. @raise Invalid_argument on
    scripted/guided policies, which are not serialisable. *)

val policy_of_string : string -> policy option
(** Inverse of {!string_of_policy}; [None] on anything else. *)
