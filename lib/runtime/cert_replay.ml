module P = Lang.Prog
module Proto = Analysis.Proto
module Eff = Analysis.Effects

type result =
  | Confirmed of { schedule : int list; blocked : (int * string) list }
  | Diverged of string

let halt_name = function
  | Machine.Finished -> "finished"
  | Machine.Deadlock _ -> "deadlock"
  | Machine.Fault { msg; _ } -> "fault: " ^ msg
  | Machine.Breakpoint _ -> "breakpoint"
  | Machine.Out_of_fuel -> "out of fuel"

(* Communication events are the only ones a certificate step can match
   (or diverge on); everything else a process emits on the way to its
   next synchronization is ignored. [K_send_unblocked] is deliberately
   not a communication kind here: the abstract model folds a rendezvous
   into one send + one recv step, and the sender's resume event has no
   counterpart in the certificate. *)
let comm_kind = function
  | Event.K_p _ | Event.K_v _ | Event.K_send _ | Event.K_recv _
  | Event.K_spawn _ | Event.K_join _ ->
    true
  | _ -> false

let pp_kind_short k = Format.asprintf "%a" Event.pp_kind k

let validate ?(max_steps = 200_000) (p : P.t) (cert : Proto.cert) =
  let remaining = ref cert.Proto.cert_steps in
  let nsteps_total = List.length cert.Proto.cert_steps in
  (* thread-class id -> concrete pid; the main class is pid 0, spawned
     classes are learned from their spawn events *)
  let cls_pid = Hashtbl.create 8 in
  Hashtbl.replace cls_pid 0 0;
  let diverged = ref None in
  let fail fmt =
    Printf.ksprintf (fun m -> if !diverged = None then diverged := Some m) fmt
  in
  let schedule = ref [] in
  let matches (act : Eff.action) (k : Event.kind) =
    match (act, k) with
    | Eff.Send c, Event.K_send { chan; _ } -> chan = c
    | Eff.Recv c, Event.K_recv { chan; _ } -> chan = c
    | Eff.SemP s, Event.K_p { sem; _ } -> sem = s
    | Eff.SemV s, Event.K_v { sem } -> sem = s
    | Eff.Spawn _, Event.K_spawn _ ->
      (* the spawn sid identified the site, and a site is one class *)
      true
    | Eff.Join c2, Event.K_join { child; _ } ->
      Hashtbl.find_opt cls_pid c2 = Some child
    | _ -> false
  in
  let on_event ~pid ~seq:_ (ev : Event.t) =
    if !diverged = None then
      match !remaining with
      | [] -> () (* draining the blocked prefix into the deadlock *)
      | step :: rest -> (
        if Hashtbl.find_opt cls_pid step.Proto.st_cls = Some pid then
          match (step.Proto.st_act, ev) with
          | Proto.Finish, Event.E_proc_exit _ -> remaining := rest
          | Proto.Finish, Event.E_stmt { sid; kind; _ } when comm_kind kind ->
            fail "pid %d performed %s at s%d where the certificate finishes"
              pid (pp_kind_short kind) sid
          | Proto.Act act, Event.E_stmt { sid; kind; _ } when comm_kind kind ->
            if sid = step.Proto.st_sid && matches act kind then begin
              (match (act, kind) with
              | Eff.Spawn c2, Event.K_spawn { child; _ } ->
                Hashtbl.replace cls_pid c2 child
              | _ -> ());
              remaining := rest
            end
            else
              fail "pid %d performed %s at s%d, certificate expected %s at s%d"
                pid (pp_kind_short kind) sid
                (Format.asprintf "%a" (Proto.pp_step p) step)
                step.Proto.st_sid
          | Proto.Act _, Event.E_proc_exit _ ->
            fail "pid %d exited with %d certificate step(s) left for it" pid
              (List.length !remaining)
          | _ -> () (* non-communication event en route to the action *))
  in
  let hooks _port = { Hooks.on_event } in
  let fallback runnable =
    let pick = List.hd runnable in
    schedule := pick :: !schedule;
    pick
  in
  let chooser ~runnable =
    match !remaining with
    | [] -> fallback runnable
    | step :: _ -> (
      match Hashtbl.find_opt cls_pid step.Proto.st_cls with
      | Some t when List.mem t runnable ->
        schedule := t :: !schedule;
        t
      | Some t ->
        fail
          "class %d (pid %d) is not runnable for certificate step %d of %d"
          step.Proto.st_cls t
          (nsteps_total - List.length !remaining + 1)
          nsteps_total;
        fallback runnable
      | None ->
        fail "certificate steps class %d before its spawn" step.Proto.st_cls;
        fallback runnable)
  in
  let m = Machine.create ~sched:(Sched.Guided chooser) ~max_steps ~hooks p in
  let halt = Machine.run m in
  match (!diverged, halt, !remaining) with
  | Some msg, _, _ -> Diverged msg
  | None, Machine.Deadlock blocked, [] ->
    Confirmed { schedule = List.rev !schedule; blocked }
  | None, Machine.Deadlock _, _ :: _ ->
    Diverged "machine deadlocked before consuming every certificate step"
  | None, halt, _ ->
    Diverged
      (Printf.sprintf "machine halted with %s instead of a deadlock"
         (halt_name halt))

let confirm_scripted ?(max_steps = 200_000) (p : P.t) schedule =
  let m = Machine.create ~sched:(Sched.Scripted schedule) ~max_steps p in
  match Machine.run m with Machine.Deadlock _ -> true | _ -> false
