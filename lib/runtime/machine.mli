(** The execution-phase machine: a simulated shared-memory
    multiprocessor running an MPL program.

    Processes are lightweight interpreter states scheduled one event at
    a time by a {!Sched} policy; they share the global store, semaphores
    and channels. Instrumentation ({!Hooks.factory}) observes every
    event — this is how the "object code" of the paper emits its log,
    and how the full tracer and race detector watch execution.

    Synchronization semantics (matching §6.2):
    - [P]/[V]: counting semaphores with token provenance — each [V]
      deposits a token carrying its event ref; a successful [P] consumes
      the oldest token, which becomes the V→P synchronization edge.
      Initial credits carry no provenance.
    - channels: capacity [None] = unbounded buffer, [Some k > 0] =
      bounded buffer (send blocks when full, without an event), and
      [Some 0] = synchronous: the send event is emitted immediately, the
      sender then blocks until the matching receive, and resumes with a
      distinct send-unblocked event (Figure 6.1's n3 → n4 → n5 pattern).
    - [spawn] creates a process whose start event links back to the
      spawn event; [join] blocks until the child exits and links from
      the child's exit event.

    A runtime fault (division by zero, failed assert, uninitialised
    read, ...) halts the whole machine — that is the "program halts due
    to an error" moment at which the debugging phase begins.

    Two execution engines share this machine (DESIGN §15). The default
    {!Vm_engine} compiles each function to {!Lang.Bytecode} and runs
    local statements on a dispatch-loop VM; {!Interp_engine} walks the
    AST and survives as the differential-testing oracle. Both engines
    share the driver for sync ops, calls and returns, and the slot
    representation read by instrumentation, so event streams, trace
    logs, scheduling decisions and halts are identical — only steps/sec
    differs. *)

type engine = Interp_engine | Vm_engine

type halt =
  | Finished  (** every process ran to completion *)
  | Deadlock of (int * string) list
      (** no process runnable; blocked pids with reasons *)
  | Fault of { pid : int; sid : int option; msg : string }
  | Breakpoint of { pid : int; sid : int }
      (** halted by user intervention (§3.2.2): the breakpoint statement
          has just executed in this process *)
  | Out_of_fuel

type proc_state = Ready | Blocked of string | Done

(** Structured blocking information, for deadlock analysis. *)
type wait =
  | Wsem of int  (** blocked in [P] on this semaphore *)
  | Wsend of int  (** blocked sending on this channel (full or synchronous) *)
  | Wrecv of int  (** blocked receiving on this channel *)
  | Wjoin of int  (** waiting for this process to exit *)

type t

val create :
  ?engine:engine ->
  ?sched:Sched.policy ->
  ?max_steps:int ->
  ?hooks:Hooks.factory ->
  ?breakpoints:int list ->
  Lang.Prog.t ->
  t
(** Defaults: {!Vm_engine}, {!Sched.default}, one million steps, no
    instrumentation, no breakpoints. When [hooks] is omitted the machine
    skips event materialization entirely — the VM takes its bare local
    fast path and the driver accounts for sync/call/return events
    without allocating them — which is the bare-execution fast path
    benchmarked by T1. Sequence numbers, the step clock, breakpoint
    checks and program output are identical either way. [breakpoints] are
    statement ids; the machine halts with {!Breakpoint} right after any
    of them produces an event — postlog-based restoration then gives
    every other process's state at its own last e-block boundary, the
    paper's answer to the timely-halt problem (§5.7). *)

val engine : t -> engine

val run : t -> halt
(** Run to halt. *)

val step_one : t -> bool
(** Advance one scheduled event; [false] when halted (inspect
    {!status}). Exposed for tests that interleave inspection. *)

val status : t -> halt option

val output : t -> string
(** Everything printed so far, one line per [print]. *)

val nsteps : t -> int

val nprocs : t -> int

val proc_state : t -> int -> proc_state

val blocked_wait : t -> int -> wait option
(** What process [pid] is currently blocked on, if anything. *)

val proc_seq : t -> int -> int
(** Events emitted by process [pid] so far. *)

val proc_root : t -> int -> int
(** The function this process was created to run. *)

val read_global : t -> int -> Value.t
(** Shared-store slot value (used by tests and the restorer). *)

val prog : t -> Lang.Prog.t
