module P = Lang.Prog

type halt =
  | Finished
  | Deadlock of (int * string) list
  | Fault of { pid : int; sid : int option; msg : string }
  | Breakpoint of { pid : int; sid : int }
  | Out_of_fuel

type proc_state = Ready | Blocked of string | Done

type wait = Wsem of int | Wsend of int | Wrecv of int | Wjoin of int

type block_reason =
  | Bsem of int
  | Bsend of int  (** bounded channel full; no send event emitted yet *)
  | Bsend_ack of int  (** synchronous send emitted, awaiting receive *)
  | Brecv of int
  | Bjoin of int

type pending =
  | Pnone
  | Precv_value of { value : int; src : Event.eref; sender : int option }
      (** a synchronous sender handed us this value while we were
          blocked in recv *)
  | Punblock of { by : Event.eref }
      (** our synchronous send was received; emit the unblock event *)

type pstatus = Sready | Sblocked of block_reason | Sdone

type proc = {
  pid : int;
  root_fid : int;
  mutable frames : Interp.frame list;  (** top first; empty iff done *)
  mutable status : pstatus;
  mutable pending : pending;
  mutable seq : int;
  mutable started : bool;
  spawn_ref : Event.eref option;
  mutable exit_info : (Value.t option * Event.eref) option;
  mutable p_waited : bool;  (** blocked at least once on the current P *)
}

type sem_state = {
  tokens : Event.eref option Queue.t;
  sem_waiters : int Queue.t;
}

type chan_state = {
  cap : int option;
  buf : (int * Event.eref) Queue.t;
  sync_senders : (int * int * Event.eref) Queue.t;
      (** synchronous senders that emitted their send and wait:
          (pid, value, send event) *)
  mutable full_senders : int list;  (** bounded-channel senders, FIFO *)
  mutable recv_waiters : int list;  (** blocked receivers, FIFO *)
}

type t = {
  prog : P.t;
  shared : Value.t array;
  sems : sem_state array;
  chans : chan_state array;
  mutable procs : proc array;
  sched : Sched.t;
  mutable hooks : Hooks.t;
  max_steps : int;
  mutable steps : int;
  out : Buffer.t;
  mutable halted : halt option;
  mutable current_sid : int option;  (** for fault attribution *)
  breakpoints : Analysis.Bitset.t option;  (** statement ids that halt the run *)
}

let prog t = t.prog

let init_shared (p : P.t) =
  Array.map
    (function
      | P.Ginit_int n -> Value.Vint n
      | P.Ginit_arr len -> Value.Varr (Array.make len 0))
    p.global_inits

let create ?(sched = Sched.default) ?(max_steps = 1_000_000) ?(hooks = Hooks.nil)
    ?(breakpoints = []) (p : P.t) =
  let sems =
    Array.map
      (fun (s : P.sem) ->
        let tokens = Queue.create () in
        for _ = 1 to s.sem_init do
          Queue.add None tokens
        done;
        { tokens; sem_waiters = Queue.create () })
      p.sems
  in
  let chans =
    Array.map
      (fun (c : P.chan) ->
        {
          cap = c.ch_cap;
          buf = Queue.create ();
          sync_senders = Queue.create ();
          full_senders = [];
          recv_waiters = [];
        })
      p.chans
  in
  let main_frame =
    Interp.make_frame p ~fid:p.main_fid ~args:[] ~ret_lhs:None ~call_sid:None
  in
  let main =
    {
      pid = 0;
      root_fid = p.main_fid;
      frames = [ main_frame ];
      status = Sready;
      pending = Pnone;
      seq = 0;
      started = false;
      spawn_ref = None;
      exit_info = None;
      p_waited = false;
    }
  in
  let t =
    {
      prog = p;
      shared = init_shared p;
      sems;
      chans;
      procs = [| main |];
      sched = Sched.create sched;
      hooks = Hooks.nil { Hooks.read_var = (fun ~pid:_ _ -> Value.Vundef); now = (fun () -> 0) };
      max_steps;
      steps = 0;
      out = Buffer.create 256;
      halted = None;
      current_sid = None;
      breakpoints =
        (match breakpoints with
        | [] -> None
        | sids ->
          let b = Analysis.Bitset.create (Array.length p.stmts) in
          List.iter (Analysis.Bitset.add b) sids;
          Some b);
    }
  in
  let port =
    {
      Hooks.read_var =
        (fun ~pid (v : P.var) ->
          match v.vscope with
          | P.Global slot -> t.shared.(slot)
          | P.Local slot -> (
            match t.procs.(pid).frames with
            | [] -> Value.Vundef
            | top :: _ -> top.Interp.slots.(slot)));
      now = (fun () -> t.steps);
    }
  in
  t.hooks <- hooks port;
  t

let proc t pid =
  if pid < 0 || pid >= Array.length t.procs then
    raise (Interp.Fault (Printf.sprintf "no process with id %d" pid))
  else t.procs.(pid)

let emit t (pr : proc) ev =
  let r = { Event.epid = pr.pid; eseq = pr.seq } in
  pr.seq <- pr.seq + 1;
  t.hooks.Hooks.on_event ~pid:pr.pid ~seq:r.eseq ev;
  (match (t.breakpoints, Event.sid_of ev) with
  | Some bps, Some sid when t.halted = None && Analysis.Bitset.mem bps sid ->
    t.halted <- Some (Breakpoint { pid = pr.pid; sid })
  | _ -> ());
  (match ev with
  | Event.E_stmt { kind = Event.K_print { value }; _ } ->
    Buffer.add_string t.out (Value.to_string value);
    Buffer.add_char t.out '\n'
  | _ -> ());
  r

let ctx t (pr : proc) =
  match pr.frames with
  | [] -> invalid_arg "Machine.ctx: no frame"
  | top :: _ ->
    {
      Interp.prog = t.prog;
      read_global = (fun slot -> t.shared.(slot));
      write_global = (fun slot v -> t.shared.(slot) <- v);
      frame = top;
    }

let wake t pid =
  let pr = t.procs.(pid) in
  match pr.status with Sblocked _ -> pr.status <- Sready | Sready | Sdone -> ()

let wake_joiners t child_pid =
  Array.iter
    (fun pr ->
      match pr.status with
      | Sblocked (Bjoin q) when q = child_pid -> pr.status <- Sready
      | _ -> ())
    t.procs

(* Process termination: emit the exit event while the root frame is
   still in place (so observers can snapshot its locals for the
   postlog), then record the result and wake joiners. *)
let finish_proc t (pr : proc) result =
  let r = emit t pr (Event.E_proc_exit { fid = pr.root_fid; result }) in
  pr.exit_info <- Some (result, r);
  pr.frames <- [];
  pr.status <- Sdone;
  wake_joiners t pr.pid

(* Deliver [ret] into the caller frame after a pop: emit the
   call-return event attributed to the call statement. *)
let deliver_return t (pr : proc) ~callee ~call_sid ~ret_lhs ret =
  match call_sid with
  | None -> assert false
  | Some sid ->
    let write =
      match ret_lhs with
      | None -> None
      | Some l ->
        let c = ctx t pr in
        let value = match ret with Some v -> v | None -> Value.Vundef in
        let _idx_reads, w = Interp.write_lhs c l value in
        Some w
    in
    ignore
      (emit t pr
         (Event.E_stmt
            {
              sid;
              reads = [];
              write;
              kind = Event.K_call_return { callee; ret };
            }))

(* Pop the top frame with return value [ret] (already evaluated). The
   root frame emits only E_proc_exit (the process boundary is the
   e-block boundary); nested frames emit E_leave before popping so the
   postlog can still read their locals. *)
let pop_frame t (pr : proc) ret =
  match pr.frames with
  | [] -> assert false
  | [ _root ] -> finish_proc t pr ret
  | top :: rest ->
    ignore
      (emit t pr
         (Event.E_leave { fid = top.ffid; call_sid = top.call_sid; ret }));
    pr.frames <- rest;
    deliver_return t pr ~callee:top.ffid ~call_sid:top.call_sid
      ~ret_lhs:top.ret_lhs ret

let spawn_proc t ~fid ~args ~spawn_ref =
  let pid = Array.length t.procs in
  let frame =
    Interp.make_frame t.prog ~fid ~args ~ret_lhs:None ~call_sid:None
  in
  let pr =
    {
      pid;
      root_fid = fid;
      frames = [ frame ];
      status = Sready;
      pending = Pnone;
      seq = 0;
      started = false;
      spawn_ref = Some spawn_ref;
      exit_info = None;
      p_waited = false;
    }
  in
  t.procs <- Array.append t.procs [| pr |];
  pid

let block pr reason = pr.status <- Sblocked reason

(* ------------------------------------------------------------------ *)
(* Driver-handled statements.                                           *)
(* ------------------------------------------------------------------ *)

let exec_driver t (pr : proc) (s : P.stmt) =
  let c = ctx t pr in
  match s.desc with
  | P.Sreturn e ->
    let ret, reads =
      match e with
      | None -> (None, [])
      | Some e ->
        let n, reads = Interp.eval_int c e in
        (Some (Value.Vint n), reads)
    in
    ignore
      (emit t pr
         (Event.E_stmt
            { sid = s.sid; reads; write = None; kind = Event.K_return { value = ret } }));
    (* returning unwinds any loops still executing in this frame: close
       their loop e-blocks (§5.4), then drop the work and leave *)
    (match pr.frames with
    | top :: _ ->
      List.iter
        (fun sid ->
          ignore (emit t pr (Event.E_loop_exit { sid; writes = None })))
        top.Interp.active_loops;
      top.Interp.active_loops <- [];
      top.work <- []
    | [] -> assert false);
    pop_frame t pr ret
  | P.Scall (lhs, call) ->
    let args_rev, reads_rev =
      List.fold_left
        (fun (args, reads) a ->
          let n, r = Interp.eval_int c a in
          (Value.Vint n :: args, List.rev_append r reads))
        ([], []) call.cargs
    in
    let args = List.rev args_rev and reads = List.rev reads_rev in
    ignore
      (emit t pr
         (Event.E_stmt
            {
              sid = s.sid;
              reads;
              write = None;
              kind = Event.K_call { callee = call.callee; args };
            }));
    Interp.consume_work (List.hd pr.frames);
    let frame =
      Interp.make_frame t.prog ~fid:call.callee ~args ~ret_lhs:lhs
        ~call_sid:(Some s.sid)
    in
    pr.frames <- frame :: pr.frames;
    ignore
      (emit t pr
         (Event.E_enter
            {
              fid = call.callee;
              call_sid = Some s.sid;
              binds = Interp.binds_of_frame t.prog frame;
            }))
  | P.Sspawn (lhs, call) ->
    let args_rev, reads_rev =
      List.fold_left
        (fun (args, reads) a ->
          let n, r = Interp.eval_int c a in
          (Value.Vint n :: args, List.rev_append r reads))
        ([], []) call.cargs
    in
    let args = List.rev args_rev and reads = List.rev reads_rev in
    let child = Array.length t.procs in
    let write =
      match lhs with
      | None -> None
      | Some l ->
        let _idx, w = Interp.write_lhs c l (Value.Vint child) in
        Some w
    in
    let r =
      emit t pr
        (Event.E_stmt
           {
             sid = s.sid;
             reads;
             write;
             kind = Event.K_spawn { child; callee = call.callee; args };
           })
    in
    let child' = spawn_proc t ~fid:call.callee ~args ~spawn_ref:r in
    assert (child' = child);
    Interp.consume_work (List.hd pr.frames)
  | P.Sjoin (lhs, e) ->
    let q, reads = Interp.eval_int c e in
    let target = proc t q in
    if target.pid = pr.pid then raise (Interp.Fault "process joining itself");
    (match target.exit_info with
    | Some (result, exit_ref) ->
      let write =
        match lhs with
        | None -> None
        | Some l ->
          let value = match result with Some v -> v | None -> Value.Vundef in
          let _idx, w = Interp.write_lhs c l value in
          Some w
      in
      ignore
        (emit t pr
           (Event.E_stmt
              {
                sid = s.sid;
                reads;
                write;
                kind = Event.K_join { child = q; result; child_exit = exit_ref };
              }));
      Interp.consume_work (List.hd pr.frames)
    | None -> block pr (Bjoin q))
  | P.Sp sem ->
    let st = t.sems.(sem.sem_id) in
    if Queue.is_empty st.tokens then begin
      if not (Queue.fold (fun acc p -> acc || p = pr.pid) false st.sem_waiters)
      then Queue.add pr.pid st.sem_waiters;
      pr.p_waited <- true;
      block pr (Bsem sem.sem_id)
    end
    else begin
      let src = Queue.take st.tokens in
      ignore
        (emit t pr
           (Event.E_stmt
              {
                sid = s.sid;
                reads = [];
                write = None;
                kind =
                  Event.K_p { sem = sem.sem_id; src; was_blocked = pr.p_waited };
              }));
      pr.p_waited <- false;
      Interp.consume_work (List.hd pr.frames)
    end
  | P.Sv sem ->
    let st = t.sems.(sem.sem_id) in
    let r =
      emit t pr
        (Event.E_stmt
           { sid = s.sid; reads = []; write = None; kind = Event.K_v { sem = sem.sem_id } })
    in
    Queue.add (Some r) st.tokens;
    if not (Queue.is_empty st.sem_waiters) then wake t (Queue.take st.sem_waiters);
    Interp.consume_work (List.hd pr.frames)
  | P.Ssend (ch, e) -> (
    let st = t.chans.(ch.ch_id) in
    match pr.pending with
    | Punblock { by } ->
      pr.pending <- Pnone;
      ignore
        (emit t pr
           (Event.E_stmt
              {
                sid = s.sid;
                reads = [];
                write = None;
                kind = Event.K_send_unblocked { chan = ch.ch_id; by };
              }));
      Interp.consume_work (List.hd pr.frames)
    | Precv_value _ -> assert false
    | Pnone -> (
      match st.cap with
      | Some 0 -> (
        (* synchronous: emit send, then block awaiting the receive *)
        let value, reads = Interp.eval_int c e in
        let r =
          emit t pr
            (Event.E_stmt
               {
                 sid = s.sid;
                 reads;
                 write = None;
                 kind = Event.K_send { chan = ch.ch_id; value };
               })
        in
        match st.recv_waiters with
        | rcv :: rest ->
          st.recv_waiters <- rest;
          let receiver = t.procs.(rcv) in
          receiver.pending <-
            Precv_value { value; src = r; sender = Some pr.pid };
          wake t rcv;
          block pr (Bsend_ack ch.ch_id)
        | [] ->
          Queue.add (pr.pid, value, r) st.sync_senders;
          block pr (Bsend_ack ch.ch_id))
      | Some cap when Queue.length st.buf >= cap ->
        if not (List.mem pr.pid st.full_senders) then
          st.full_senders <- st.full_senders @ [ pr.pid ];
        block pr (Bsend ch.ch_id)
      | Some _ | None ->
        let value, reads = Interp.eval_int c e in
        let r =
          emit t pr
            (Event.E_stmt
               {
                 sid = s.sid;
                 reads;
                 write = None;
                 kind = Event.K_send { chan = ch.ch_id; value };
               })
        in
        Queue.add (value, r) st.buf;
        (match st.recv_waiters with
        | rcv :: rest ->
          st.recv_waiters <- rest;
          wake t rcv
        | [] -> ());
        Interp.consume_work (List.hd pr.frames)))
  | P.Srecv (ch, lhs) -> (
    let st = t.chans.(ch.ch_id) in
    let complete value src sender =
      let idx_reads, w = Interp.write_lhs c lhs (Value.Vint value) in
      let r =
        emit t pr
          (Event.E_stmt
             {
               sid = s.sid;
               reads = idx_reads;
               write = Some w;
               kind = Event.K_recv { chan = ch.ch_id; value; src };
             })
      in
      Interp.consume_work (List.hd pr.frames);
      match sender with
      | Some sp ->
        let sender = t.procs.(sp) in
        sender.pending <- Punblock { by = r };
        wake t sp
      | None -> ()
    in
    match pr.pending with
    | Precv_value { value; src; sender } ->
      pr.pending <- Pnone;
      complete value src sender
    | Punblock _ -> assert false
    | Pnone ->
      if not (Queue.is_empty st.buf) then begin
        let value, src = Queue.take st.buf in
        complete value src None;
        (* a slot freed: let a blocked bounded-channel sender retry *)
        match st.full_senders with
        | sp :: rest ->
          st.full_senders <- rest;
          wake t sp
        | [] -> ()
      end
      else if not (Queue.is_empty st.sync_senders) then begin
        let sp, value, src = Queue.take st.sync_senders in
        complete value src (Some sp)
      end
      else begin
        if not (List.mem pr.pid st.recv_waiters) then
          st.recv_waiters <- st.recv_waiters @ [ pr.pid ];
        block pr (Brecv ch.ch_id)
      end)
  | P.Swhile _ -> (
    let top = List.hd pr.frames in
    match top.Interp.work with
    | Interp.Wstmt _ :: _ ->
      (* loop e-block boundary: enter before the first condition test *)
      ignore (emit t pr (Event.E_loop_enter { sid = s.sid }));
      Interp.loop_entry top s
    | Interp.Wloop _ :: _ ->
      let ev, continued = Interp.loop_test c s in
      ignore (emit t pr (Event.E_stmt ev));
      if not continued then
        ignore (emit t pr (Event.E_loop_exit { sid = s.sid; writes = None }))
    | [] -> assert false)
  | P.Sassign _ | P.Sif _ | P.Sprint _ | P.Sassert _ -> assert false

(* ------------------------------------------------------------------ *)
(* Stepping and the run loop.                                           *)
(* ------------------------------------------------------------------ *)

let step_proc t (pr : proc) =
  if not pr.started then begin
    pr.started <- true;
    let binds =
      match pr.frames with
      | top :: _ -> Interp.binds_of_frame t.prog top
      | [] -> []
    in
    ignore
      (emit t pr
         (Event.E_proc_start { fid = pr.root_fid; binds; spawn = pr.spawn_ref }))
  end
  else
    match pr.frames with
    | [] -> assert false
    | _ :: _ -> (
      let c = ctx t pr in
      (* remember the sid for fault attribution *)
      (match (List.hd pr.frames).Interp.work with
      | Interp.Wstmt s :: _ | Interp.Wloop s :: _ ->
        t.current_sid <- Some s.P.sid
      | [] -> t.current_sid <- None);
      match Interp.step_local c with
      | Interp.Event ev ->
        ignore (emit t pr (Event.E_stmt ev));
        (match ev.kind with
        | Event.K_assert { ok = false } ->
          raise (Interp.Fault "assertion failed")
        | _ -> ())
      | Interp.Frame_done -> pop_frame t pr None
      | Interp.Driver s -> exec_driver t pr s)

let runnable t =
  Array.to_list t.procs
  |> List.filter_map (fun pr ->
         match pr.status with
         | Sready -> Some pr.pid
         | Sblocked _ | Sdone -> None)

let describe_block = function
  | Bsem s -> Printf.sprintf "P on semaphore %d" s
  | Bsend c -> Printf.sprintf "send on full channel %d" c
  | Bsend_ack c -> Printf.sprintf "synchronous send on channel %d awaiting receive" c
  | Brecv c -> Printf.sprintf "recv on empty channel %d" c
  | Bjoin p -> Printf.sprintf "join of process %d" p

let step_one t =
  match t.halted with
  | Some _ -> false
  | None -> (
    match runnable t with
    | [] ->
      let blocked =
        Array.to_list t.procs
        |> List.filter_map (fun pr ->
               match pr.status with
               | Sblocked r -> Some (pr.pid, describe_block r)
               | Sready | Sdone -> None)
      in
      t.halted <- Some (if blocked = [] then Finished else Deadlock blocked);
      false
    | pids ->
      if t.steps >= t.max_steps then begin
        t.halted <- Some Out_of_fuel;
        false
      end
      else begin
        let pid = Sched.pick t.sched ~runnable:pids in
        t.steps <- t.steps + 1;
        (try step_proc t t.procs.(pid)
         with Interp.Fault msg ->
           t.halted <- Some (Fault { pid; sid = t.current_sid; msg }));
        true
      end)

(* Execution-phase step counter (a no-op until [Obs.enable]): bumped
   once per [run], not per step, so the hot loop stays untouched. *)
let c_steps = Obs.counter "runtime.machine_steps"

let run t =
  let before = t.steps in
  while step_one t do
    ()
  done;
  Obs.add c_steps (t.steps - before);
  match t.halted with Some h -> h | None -> assert false

let status t = t.halted

let output t = Buffer.contents t.out

let nsteps t = t.steps

let nprocs t = Array.length t.procs

let proc_state t pid =
  match t.procs.(pid).status with
  | Sready -> Ready
  | Sblocked r -> Blocked (describe_block r)
  | Sdone -> Done

let blocked_wait t pid =
  match t.procs.(pid).status with
  | Sready | Sdone -> None
  | Sblocked r ->
    Some
      (match r with
      | Bsem s -> Wsem s
      | Bsend c | Bsend_ack c -> Wsend c
      | Brecv c -> Wrecv c
      | Bjoin p -> Wjoin p)

let proc_seq t pid = t.procs.(pid).seq

let proc_root t pid = t.procs.(pid).root_fid

let read_global t slot = t.shared.(slot)
