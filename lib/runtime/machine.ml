module P = Lang.Prog
module B = Lang.Bytecode

type engine = Interp_engine | Vm_engine

type halt =
  | Finished
  | Deadlock of (int * string) list
  | Fault of { pid : int; sid : int option; msg : string }
  | Breakpoint of { pid : int; sid : int }
  | Out_of_fuel

type proc_state = Ready | Blocked of string | Done

type wait = Wsem of int | Wsend of int | Wrecv of int | Wjoin of int

type block_reason =
  | Bsem of int
  | Bsend of int  (** bounded channel full; no send event emitted yet *)
  | Bsend_ack of int  (** synchronous send emitted, awaiting receive *)
  | Brecv of int
  | Bjoin of int

type pending =
  | Pnone
  | Precv_value of { value : int; src : Event.eref; sender : int option }
      (** a synchronous sender handed us this value while we were
          blocked in recv *)
  | Punblock of { by : Event.eref }
      (** our synchronous send was received; emit the unblock event *)

type pstatus = Sready | Sblocked of block_reason | Sdone

(* Both engines hang their state off the same process record: a frame is
   either an interpreter frame or a VM frame that embeds one. The embed
   shares the [Value.t array] slot representation, so instrumentation
   reads and driver-side operand evaluation are engine-blind. *)
type eframe = Fi of Interp.frame | Fv of Vm.frame

let iframe = function Fi f -> f | Fv vf -> vf.Vm.fr

type veng = { vst : Vm.pstate; vhost : Vm.host }

type proc = {
  pid : int;
  root_fid : int;
  mutable frames : eframe list;  (** top first; empty iff done *)
  mutable status : pstatus;
  mutable pending : pending;
  seq : int ref;  (** shared with the VM host for inline bumping *)
  mutable started : bool;
  spawn_ref : Event.eref option;
  mutable exit_info : (Value.t option * Event.eref) option;
  mutable p_waited : bool;  (** blocked at least once on the current P *)
  mutable veng : veng option;  (** VM register arena + host, Vm engine only *)
}

type sem_state = {
  tokens : Event.eref option Queue.t;
  sem_waiters : int Queue.t;
}

type chan_state = {
  cap : int option;
  buf : (int * Event.eref) Queue.t;
  sync_senders : (int * int * Event.eref) Queue.t;
      (** synchronous senders that emitted their send and wait:
          (pid, value, send event) *)
  mutable full_senders : int list;  (** bounded-channel senders, FIFO *)
  mutable recv_waiters : int list;  (** blocked receivers, FIFO *)
}

type t = {
  prog : P.t;
  plan : B.prog option;  (** [Some] iff the Vm engine is selected *)
  instrumented : bool;
  shared : Value.t array;
  sems : sem_state array;
  chans : chan_state array;
  mutable procs : proc array;
  sched : Sched.t;
  mutable hooks : Hooks.t;
  max_steps : int;
  steps : int ref;  (** shared with the VM hosts for inline ticking *)
  out : Buffer.t;
  mutable halted : halt option;
  mutable current_sid : int;  (** for fault attribution; -1 = none *)
  mutable runnable_cache : int list;
      (** ascending pids; valid iff [runnable_valid]. Local statements
          never change a process status, so the hot loop reuses this
          list and only sync ops / spawns / exits rebuild it. *)
  mutable runnable_valid : bool;
  breakpoints : Analysis.Bitset.t option;  (** statement ids that halt the run *)
}

let sched_dirty t = t.runnable_valid <- false

let prog t = t.prog

let engine t = match t.plan with Some _ -> Vm_engine | None -> Interp_engine

let init_shared (p : P.t) =
  Array.map
    (function
      | P.Ginit_int n -> Value.Vint n
      | P.Ginit_arr len -> Value.Varr (Array.make len 0))
    p.global_inits

let proc t pid =
  if pid < 0 || pid >= Array.length t.procs then
    raise (Interp.Fault (Printf.sprintf "no process with id %d" pid))
  else t.procs.(pid)

let emit t (pr : proc) ev =
  let r = { Event.epid = pr.pid; eseq = !(pr.seq) } in
  incr pr.seq;
  t.hooks.Hooks.on_event ~pid:pr.pid ~seq:r.eseq ev;
  (match (t.breakpoints, Event.sid_of ev) with
  | Some bps, Some sid when t.halted = None && Analysis.Bitset.mem bps sid ->
    t.halted <- Some (Breakpoint { pid = pr.pid; sid })
  | _ -> ());
  (match ev with
  | Event.E_stmt { kind = Event.K_print { value }; _ } ->
    Buffer.add_string t.out (Value.to_string value);
    Buffer.add_char t.out '\n'
  | _ -> ());
  r

(* Uninstrumented fast path: account for a VM-local statement event
   without materializing it — same seq bump and breakpoint check as
   [emit], minus the allocation and the (nil) hook call. Every VM-local
   event carries its own sid, so the check is exactly [emit]'s. *)
let fast_account t (pr : proc) sid =
  incr pr.seq;
  match t.breakpoints with
  | Some bps when t.halted = None && Analysis.Bitset.mem bps sid ->
    t.halted <- Some (Breakpoint { pid = pr.pid; sid })
  | _ -> ()

(* Bare-run driver accounting: [emit]'s seq bump, breakpoint check and
   provenance ref without materializing the event. Driver sites switch
   on [t.instrumented] so an uninstrumented run never allocates event
   records, read lists or frame-bind lists on the sync path — the same
   contract the VM's [want] flag gives local statements. [sid] must be
   what [Event.sid_of] would have reported for the skipped event. *)
let bare_ref t (pr : proc) sid =
  let r = { Event.epid = pr.pid; eseq = !(pr.seq) } in
  incr pr.seq;
  (match (t.breakpoints, sid) with
  | Some bps, Some sid when t.halted = None && Analysis.Bitset.mem bps sid ->
    t.halted <- Some (Breakpoint { pid = pr.pid; sid })
  | _ -> ());
  r

let attach_vm t (pr : proc) =
  match t.plan with
  | None -> ()
  | Some _ ->
    let vst = Vm.make_pstate () in
    let stop = ref false in
    (* [emit] only ever halts the machine at a breakpoint, so without
       breakpoints the host never has to re-check [t.halted] and the
       bare fast path reduces to the inline seq bump in the VM. *)
    let vhost =
      match t.breakpoints with
      | None ->
        {
          Vm.want = t.instrumented;
          emit = (fun ev -> ignore (emit t pr ev));
          fast_event = (fun _sid -> incr pr.seq);
          fast_print =
            (fun _sid n ->
              incr pr.seq;
              Buffer.add_string t.out (string_of_int n);
              Buffer.add_char t.out '\n');
          has_bp = false;
          seq = pr.seq;
          steps = t.steps;
          stop;
          glb = t.shared;
        }
      | Some _ ->
        let check () =
          match t.halted with Some _ -> stop := true | None -> ()
        in
        {
          Vm.want = t.instrumented;
          emit =
            (fun ev ->
              ignore (emit t pr ev);
              check ());
          fast_event =
            (fun sid ->
              fast_account t pr sid;
              check ());
          fast_print =
            (fun sid n ->
              fast_account t pr sid;
              check ();
              Buffer.add_string t.out (string_of_int n);
              Buffer.add_char t.out '\n');
          has_bp = true;
          seq = pr.seq;
          steps = t.steps;
          stop;
          glb = t.shared;
        }
    in
    pr.veng <- Some { vst; vhost }

let make_eframe t (pr : proc) ~fid ~args ~ret_lhs ~call_sid =
  match (t.plan, pr.veng) with
  | Some bp, Some v ->
    Fv (Vm.make_frame bp t.prog v.vst ~fid ~args ~ret_lhs ~call_sid)
  | _ -> Fi (Interp.make_frame t.prog ~fid ~args ~ret_lhs ~call_sid)

let new_proc t ~fid ~args ~spawn_ref =
  let pid = Array.length t.procs in
  let pr =
    {
      pid;
      root_fid = fid;
      frames = [];
      status = Sready;
      pending = Pnone;
      seq = ref 0;
      started = false;
      spawn_ref;
      exit_info = None;
      p_waited = false;
      veng = None;
    }
  in
  attach_vm t pr;
  pr.frames <- [ make_eframe t pr ~fid ~args ~ret_lhs:None ~call_sid:None ];
  t.procs <- Array.append t.procs [| pr |];
  sched_dirty t;
  pid

let create ?(engine = Vm_engine) ?(sched = Sched.default)
    ?(max_steps = 1_000_000) ?hooks ?(breakpoints = []) (p : P.t) =
  let sems =
    Array.map
      (fun (s : P.sem) ->
        let tokens = Queue.create () in
        for _ = 1 to s.sem_init do
          Queue.add None tokens
        done;
        { tokens; sem_waiters = Queue.create () })
      p.sems
  in
  let chans =
    Array.map
      (fun (c : P.chan) ->
        {
          cap = c.ch_cap;
          buf = Queue.create ();
          sync_senders = Queue.create ();
          full_senders = [];
          recv_waiters = [];
        })
      p.chans
  in
  let t =
    {
      prog = p;
      plan =
        (match engine with
        | Vm_engine -> Some (B.plan p)
        | Interp_engine -> None);
      instrumented = Option.is_some hooks;
      shared = init_shared p;
      sems;
      chans;
      procs = [||];
      sched = Sched.create sched;
      hooks = Hooks.nil { Hooks.read_var = (fun ~pid:_ _ -> Value.Vundef); now = (fun () -> 0) };
      max_steps;
      steps = ref 0;
      out = Buffer.create 256;
      halted = None;
      current_sid = -1;
      runnable_cache = [];
      runnable_valid = false;
      breakpoints =
        (match breakpoints with
        | [] -> None
        | sids ->
          let b = Analysis.Bitset.create (Array.length p.stmts) in
          List.iter (Analysis.Bitset.add b) sids;
          Some b);
    }
  in
  let port =
    {
      Hooks.read_var =
        (fun ~pid (v : P.var) ->
          match v.vscope with
          | P.Global slot -> t.shared.(slot)
          | P.Local slot -> (
            match t.procs.(pid).frames with
            | [] -> Value.Vundef
            | top :: _ -> (iframe top).Interp.slots.(slot)));
      now = (fun () -> !(t.steps));
    }
  in
  t.hooks <- (match hooks with Some h -> h port | None -> Hooks.nil port);
  let pid0 = new_proc t ~fid:p.main_fid ~args:[] ~spawn_ref:None in
  assert (pid0 = 0);
  t

let ctx t (pr : proc) =
  match pr.frames with
  | [] -> invalid_arg "Machine.ctx: no frame"
  | top :: _ ->
    {
      Interp.prog = t.prog;
      read_global = (fun slot -> t.shared.(slot));
      write_global = (fun slot v -> t.shared.(slot) <- v);
      frame = iframe top;
    }

(* The driver completed the statement at the top frame's head. *)
let consume_top (pr : proc) =
  match pr.frames with
  | Fi f :: _ -> Interp.consume_work f
  | Fv vf :: _ -> Vm.consume vf
  | [] -> assert false

(* Return the top VM frame's register window to the process arena.
   Registers hold only transient expression temporaries — the logged
   state all lives in slots — so release order vs. event emission is
   immaterial; it only has to precede pushing another frame. *)
let release_top (pr : proc) =
  match (pr.frames, pr.veng) with
  | Fv vf :: _, Some v -> Vm.release v.vst vf
  | _ -> ()

let wake t pid =
  let pr = t.procs.(pid) in
  match pr.status with
  | Sblocked _ ->
    pr.status <- Sready;
    sched_dirty t
  | Sready | Sdone -> ()

let wake_joiners t child_pid =
  Array.iter
    (fun pr ->
      match pr.status with
      | Sblocked (Bjoin q) when q = child_pid ->
        pr.status <- Sready;
        sched_dirty t
      | _ -> ())
    t.procs

(* Process termination: emit the exit event while the root frame is
   still in place (so observers can snapshot its locals for the
   postlog), then record the result and wake joiners. *)
let finish_proc t (pr : proc) result =
  let r =
    if t.instrumented then
      emit t pr (Event.E_proc_exit { fid = pr.root_fid; result })
    else bare_ref t pr None
  in
  pr.exit_info <- Some (result, r);
  pr.frames <- [];
  pr.status <- Sdone;
  sched_dirty t;
  wake_joiners t pr.pid

(* Deliver [ret] into the caller frame after a pop: emit the
   call-return event attributed to the call statement. *)
let deliver_return t (pr : proc) ~callee ~call_sid ~ret_lhs ret =
  match call_sid with
  | None -> assert false
  | Some sid ->
    if t.instrumented then begin
      let write =
        match ret_lhs with
        | None -> None
        | Some l ->
          let c = ctx t pr in
          let value = match ret with Some v -> v | None -> Value.Vundef in
          let _idx_reads, w = Interp.write_lhs c l value in
          Some w
      in
      ignore
        (emit t pr
           (Event.E_stmt
              {
                sid;
                reads = [];
                write;
                kind = Event.K_call_return { callee; ret };
              }))
    end
    else begin
      (* the lhs write is semantics, not instrumentation *)
      (match ret_lhs with
      | None -> ()
      | Some l ->
        let c = ctx t pr in
        let value = match ret with Some v -> v | None -> Value.Vundef in
        ignore (Interp.write_lhs c l value));
      ignore (bare_ref t pr (Some sid))
    end

(* Pop the top frame with return value [ret] (already evaluated). The
   root frame emits only E_proc_exit (the process boundary is the
   e-block boundary); nested frames emit E_leave before popping so the
   postlog can still read their locals. *)
let pop_frame t (pr : proc) ret =
  match pr.frames with
  | [] -> assert false
  | [ _root ] ->
    release_top pr;
    finish_proc t pr ret
  | top :: rest ->
    let f = iframe top in
    if t.instrumented then
      ignore
        (emit t pr
           (Event.E_leave { fid = f.Interp.ffid; call_sid = f.Interp.call_sid; ret }))
    else ignore (bare_ref t pr f.Interp.call_sid);
    release_top pr;
    pr.frames <- rest;
    deliver_return t pr ~callee:f.Interp.ffid ~call_sid:f.Interp.call_sid
      ~ret_lhs:f.Interp.ret_lhs ret

let spawn_proc t ~fid ~args ~spawn_ref =
  new_proc t ~fid ~args ~spawn_ref:(Some spawn_ref)

let block t pr reason =
  pr.status <- Sblocked reason;
  sched_dirty t

(* ------------------------------------------------------------------ *)
(* Driver-handled statements.                                           *)
(* ------------------------------------------------------------------ *)

let exec_driver t (pr : proc) (s : P.stmt) =
  let c = ctx t pr in
  match s.desc with
  | P.Sreturn e ->
    let ret, reads =
      match e with
      | None -> (None, [])
      | Some e ->
        let n, reads = Interp.eval_int c e in
        (Some (Value.Vint n), reads)
    in
    if t.instrumented then
      ignore
        (emit t pr
           (Event.E_stmt
              { sid = s.sid; reads; write = None; kind = Event.K_return { value = ret } }))
    else ignore (bare_ref t pr (Some s.sid));
    (* returning unwinds any loops still executing in this frame: close
       their loop e-blocks (§5.4), then drop the work and leave *)
    (match pr.frames with
    | top :: _ ->
      let f = iframe top in
      List.iter
        (fun sid ->
          if t.instrumented then
            ignore (emit t pr (Event.E_loop_exit { sid; writes = None }))
          else ignore (bare_ref t pr (Some sid)))
        f.Interp.active_loops;
      f.Interp.active_loops <- [];
      f.Interp.work <- []
    | [] -> assert false);
    pop_frame t pr ret
  | P.Scall (lhs, call) ->
    let args_rev, reads_rev =
      List.fold_left
        (fun (args, reads) a ->
          let n, r = Interp.eval_int c a in
          (Value.Vint n :: args, List.rev_append r reads))
        ([], []) call.cargs
    in
    let args = List.rev args_rev and reads = List.rev reads_rev in
    if t.instrumented then
      ignore
        (emit t pr
           (Event.E_stmt
              {
                sid = s.sid;
                reads;
                write = None;
                kind = Event.K_call { callee = call.callee; args };
              }))
    else ignore (bare_ref t pr (Some s.sid));
    consume_top pr;
    let frame =
      make_eframe t pr ~fid:call.callee ~args ~ret_lhs:lhs
        ~call_sid:(Some s.sid)
    in
    pr.frames <- frame :: pr.frames;
    if t.instrumented then
      ignore
        (emit t pr
           (Event.E_enter
              {
                fid = call.callee;
                call_sid = Some s.sid;
                binds = Interp.binds_of_frame t.prog (iframe frame);
              }))
    else ignore (bare_ref t pr (Some s.sid))
  | P.Sspawn (lhs, call) ->
    let args_rev, reads_rev =
      List.fold_left
        (fun (args, reads) a ->
          let n, r = Interp.eval_int c a in
          (Value.Vint n :: args, List.rev_append r reads))
        ([], []) call.cargs
    in
    let args = List.rev args_rev and reads = List.rev reads_rev in
    let child = Array.length t.procs in
    let r =
      if t.instrumented then begin
        let write =
          match lhs with
          | None -> None
          | Some l ->
            let _idx, w = Interp.write_lhs c l (Value.Vint child) in
            Some w
        in
        emit t pr
          (Event.E_stmt
             {
               sid = s.sid;
               reads;
               write;
               kind = Event.K_spawn { child; callee = call.callee; args };
             })
      end
      else begin
        (match lhs with
        | None -> ()
        | Some l -> ignore (Interp.write_lhs c l (Value.Vint child)));
        bare_ref t pr (Some s.sid)
      end
    in
    let child' = spawn_proc t ~fid:call.callee ~args ~spawn_ref:r in
    assert (child' = child);
    consume_top pr
  | P.Sjoin (lhs, e) ->
    let q, reads = Interp.eval_int c e in
    let target = proc t q in
    if target.pid = pr.pid then raise (Interp.Fault "process joining itself");
    (match target.exit_info with
    | Some (result, exit_ref) ->
      if t.instrumented then begin
        let write =
          match lhs with
          | None -> None
          | Some l ->
            let value = match result with Some v -> v | None -> Value.Vundef in
            let _idx, w = Interp.write_lhs c l value in
            Some w
        in
        ignore
          (emit t pr
             (Event.E_stmt
                {
                  sid = s.sid;
                  reads;
                  write;
                  kind = Event.K_join { child = q; result; child_exit = exit_ref };
                }))
      end
      else begin
        (match lhs with
        | None -> ()
        | Some l ->
          let value = match result with Some v -> v | None -> Value.Vundef in
          ignore (Interp.write_lhs c l value));
        ignore (bare_ref t pr (Some s.sid))
      end;
      consume_top pr
    | None -> block t pr (Bjoin q))
  | P.Sp sem ->
    let st = t.sems.(sem.sem_id) in
    if Queue.is_empty st.tokens then begin
      if not (Queue.fold (fun acc p -> acc || p = pr.pid) false st.sem_waiters)
      then Queue.add pr.pid st.sem_waiters;
      pr.p_waited <- true;
      block t pr (Bsem sem.sem_id)
    end
    else begin
      let src = Queue.take st.tokens in
      if t.instrumented then
        ignore
          (emit t pr
             (Event.E_stmt
                {
                  sid = s.sid;
                  reads = [];
                  write = None;
                  kind =
                    Event.K_p { sem = sem.sem_id; src; was_blocked = pr.p_waited };
                }))
      else ignore (bare_ref t pr (Some s.sid));
      pr.p_waited <- false;
      consume_top pr
    end
  | P.Sv sem ->
    let st = t.sems.(sem.sem_id) in
    let r =
      if t.instrumented then
        emit t pr
          (Event.E_stmt
             { sid = s.sid; reads = []; write = None; kind = Event.K_v { sem = sem.sem_id } })
      else bare_ref t pr (Some s.sid)
    in
    Queue.add (Some r) st.tokens;
    if not (Queue.is_empty st.sem_waiters) then wake t (Queue.take st.sem_waiters);
    consume_top pr
  | P.Ssend (ch, e) -> (
    let st = t.chans.(ch.ch_id) in
    match pr.pending with
    | Punblock { by } ->
      pr.pending <- Pnone;
      if t.instrumented then
        ignore
          (emit t pr
             (Event.E_stmt
                {
                  sid = s.sid;
                  reads = [];
                  write = None;
                  kind = Event.K_send_unblocked { chan = ch.ch_id; by };
                }))
      else ignore (bare_ref t pr (Some s.sid));
      consume_top pr
    | Precv_value _ -> assert false
    | Pnone -> (
      match st.cap with
      | Some 0 -> (
        (* synchronous: emit send, then block awaiting the receive *)
        let value, reads = Interp.eval_int c e in
        let r =
          if t.instrumented then
            emit t pr
              (Event.E_stmt
                 {
                   sid = s.sid;
                   reads;
                   write = None;
                   kind = Event.K_send { chan = ch.ch_id; value };
                 })
          else bare_ref t pr (Some s.sid)
        in
        match st.recv_waiters with
        | rcv :: rest ->
          st.recv_waiters <- rest;
          let receiver = t.procs.(rcv) in
          receiver.pending <-
            Precv_value { value; src = r; sender = Some pr.pid };
          wake t rcv;
          block t pr (Bsend_ack ch.ch_id)
        | [] ->
          Queue.add (pr.pid, value, r) st.sync_senders;
          block t pr (Bsend_ack ch.ch_id))
      | Some cap when Queue.length st.buf >= cap ->
        if not (List.mem pr.pid st.full_senders) then
          st.full_senders <- st.full_senders @ [ pr.pid ];
        block t pr (Bsend ch.ch_id)
      | Some _ | None ->
        let value, reads = Interp.eval_int c e in
        let r =
          if t.instrumented then
            emit t pr
              (Event.E_stmt
                 {
                   sid = s.sid;
                   reads;
                   write = None;
                   kind = Event.K_send { chan = ch.ch_id; value };
                 })
          else bare_ref t pr (Some s.sid)
        in
        Queue.add (value, r) st.buf;
        (match st.recv_waiters with
        | rcv :: rest ->
          st.recv_waiters <- rest;
          wake t rcv
        | [] -> ());
        consume_top pr))
  | P.Srecv (ch, lhs) -> (
    let st = t.chans.(ch.ch_id) in
    let complete value src sender =
      let idx_reads, w = Interp.write_lhs c lhs (Value.Vint value) in
      let r =
        if t.instrumented then
          emit t pr
            (Event.E_stmt
               {
                 sid = s.sid;
                 reads = idx_reads;
                 write = Some w;
                 kind = Event.K_recv { chan = ch.ch_id; value; src };
               })
        else bare_ref t pr (Some s.sid)
      in
      consume_top pr;
      match sender with
      | Some sp ->
        let sender = t.procs.(sp) in
        sender.pending <- Punblock { by = r };
        wake t sp
      | None -> ()
    in
    match pr.pending with
    | Precv_value { value; src; sender } ->
      pr.pending <- Pnone;
      complete value src sender
    | Punblock _ -> assert false
    | Pnone ->
      if not (Queue.is_empty st.buf) then begin
        let value, src = Queue.take st.buf in
        complete value src None;
        (* a slot freed: let a blocked bounded-channel sender retry *)
        match st.full_senders with
        | sp :: rest ->
          st.full_senders <- rest;
          wake t sp
        | [] -> ()
      end
      else if not (Queue.is_empty st.sync_senders) then begin
        let sp, value, src = Queue.take st.sync_senders in
        complete value src (Some sp)
      end
      else begin
        if not (List.mem pr.pid st.recv_waiters) then
          st.recv_waiters <- st.recv_waiters @ [ pr.pid ];
        block t pr (Brecv ch.ch_id)
      end)
  | P.Swhile _ -> (
    (* interpreter engine only: the VM compiles loops to jumps *)
    match pr.frames with
    | Fi top :: _ -> (
      match top.Interp.work with
      | Interp.Wstmt _ :: _ ->
        (* loop e-block boundary: enter before the first condition test *)
        ignore (emit t pr (Event.E_loop_enter { sid = s.sid }));
        Interp.loop_entry top s
      | Interp.Wloop _ :: _ ->
        let ev, continued = Interp.loop_test c s in
        ignore (emit t pr (Event.E_stmt ev));
        if not continued then
          ignore (emit t pr (Event.E_loop_exit { sid = s.sid; writes = None }))
      | [] -> assert false)
    | Fv _ :: _ | [] -> assert false)
  | P.Sassign _ | P.Sif _ | P.Sprint _ | P.Sassert _ -> assert false

(* ------------------------------------------------------------------ *)
(* Stepping and the run loop.                                           *)
(* ------------------------------------------------------------------ *)

let step_proc t (pr : proc) =
  if not pr.started then begin
    pr.started <- true;
    if t.instrumented then begin
      let binds =
        match pr.frames with
        | top :: _ -> Interp.binds_of_frame t.prog (iframe top)
        | [] -> []
      in
      ignore
        (emit t pr
           (Event.E_proc_start { fid = pr.root_fid; binds; spawn = pr.spawn_ref }))
    end
    else ignore (bare_ref t pr None)
  end
  else
    match pr.frames with
    | [] -> assert false
    | Fi top :: _ -> (
      let c = ctx t pr in
      (* remember the sid for fault attribution *)
      (match top.Interp.work with
      | Interp.Wstmt s :: _ | Interp.Wloop s :: _ -> t.current_sid <- s.P.sid
      | [] -> t.current_sid <- -1);
      match Interp.step_local c with
      | Interp.Event ev ->
        ignore (emit t pr (Event.E_stmt ev));
        (match ev.kind with
        | Event.K_assert { ok = false } ->
          raise (Interp.Fault "assertion failed")
        | _ -> ())
      | Interp.Frame_done -> pop_frame t pr None
      | Interp.Driver s -> exec_driver t pr s)
    | Fv _ :: _ ->
      (* started VM processes go through the burst path in [step_one] *)
      assert false

let runnable t =
  if t.runnable_valid then t.runnable_cache
  else begin
    let l =
      Array.to_list t.procs
      |> List.filter_map (fun pr ->
             match pr.status with
             | Sready -> Some pr.pid
             | Sblocked _ | Sdone -> None)
    in
    t.runnable_cache <- l;
    t.runnable_valid <- true;
    l
  end

let describe_block = function
  | Bsem s -> Printf.sprintf "P on semaphore %d" s
  | Bsend c -> Printf.sprintf "send on full channel %d" c
  | Bsend_ack c -> Printf.sprintf "synchronous send on channel %d awaiting receive" c
  | Brecv c -> Printf.sprintf "recv on empty channel %d" c
  | Bjoin p -> Printf.sprintf "join of process %d" p

let step_one t =
  match t.halted with
  | Some _ -> false
  | None -> (
    match runnable t with
    | [] ->
      let blocked =
        Array.to_list t.procs
        |> List.filter_map (fun pr ->
               match pr.status with
               | Sblocked r -> Some (pr.pid, describe_block r)
               | Sready | Sdone -> None)
      in
      t.halted <- Some (if blocked = [] then Finished else Deadlock blocked);
      false
    | pids ->
      if !(t.steps) >= t.max_steps then begin
        t.halted <- Some Out_of_fuel;
        false
      end
      else begin
        let pid = Sched.pick t.sched ~runnable:pids in
        let pr = t.procs.(pid) in
        (match pr.frames with
        | Fv vf :: _ when pr.started -> (
          (* Burst path: local statements never change process statuses,
             so the scheduler's remaining quantum can run inside the VM
             dispatch loop without re-entering this loop. Ticks bump
             [t.steps]; afterwards the extra picks are committed, which
             is observationally identical to single-stepping. *)
          let v = match pr.veng with Some v -> v | None -> assert false in
          let promised = Sched.burst t.sched ~runnable:pids ~pid in
          let budget =
            (* careful: [promised] may be [max_int] (sole runnable) *)
            min (if promised < max_int then promised + 1 else max_int)
              (t.max_steps - !(t.steps))
          in
          let before = !(t.steps) in
          try
            let res = Vm.run vf v.vst v.vhost ~budget in
            Sched.commit t.sched ~pid (!(t.steps) - before - 1);
            match res with
            | Vm.Stepped -> ()
            | Vm.Frame_done -> pop_frame t pr None
            | Vm.Driver s -> exec_driver t pr s
          with Interp.Fault msg ->
            (* the machine halts here, so the uncommitted extra picks
               are never observed *)
            let s = Vm.current_sid vf in
            t.halted <-
              Some (Fault { pid; sid = (if s < 0 then None else Some s); msg }))
        | _ -> (
          incr t.steps;
          try step_proc t pr
          with Interp.Fault msg ->
            let sid = if t.current_sid < 0 then None else Some t.current_sid in
            t.halted <- Some (Fault { pid; sid; msg })));
        true
      end)

(* Execution-phase step counter (a no-op until [Obs.enable]): bumped
   once per [run], not per step, so the hot loop stays untouched. *)
let c_steps = Obs.counter "runtime.machine_steps"

let run t =
  let before = !(t.steps) in
  while step_one t do
    ()
  done;
  Obs.add c_steps (!(t.steps) - before);
  match t.halted with Some h -> h | None -> assert false

let status t = t.halted

let output t = Buffer.contents t.out

let nsteps t = !(t.steps)

let nprocs t = Array.length t.procs

let proc_state t pid =
  match t.procs.(pid).status with
  | Sready -> Ready
  | Sblocked r -> Blocked (describe_block r)
  | Sdone -> Done

let blocked_wait t pid =
  match t.procs.(pid).status with
  | Sready | Sdone -> None
  | Sblocked r ->
    Some
      (match r with
      | Bsem s -> Wsem s
      | Bsend c | Bsend_ack c -> Wsend c
      | Brecv c -> Wrecv c
      | Bjoin p -> Wjoin p)

let proc_seq t pid = !(t.procs.(pid).seq)

let proc_root t pid = t.procs.(pid).root_fid

let read_global t slot = t.shared.(slot)
