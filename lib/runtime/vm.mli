(** Dispatch-loop VM over {!Lang.Bytecode} — the execution-phase fast
    path (DESIGN §15).

    {!run} executes up to [budget] statements of one process in a
    burst: expression instructions run to each statement's terminator,
    mirroring {!Interp.step_local} statement for statement, and every
    statement costs one [tick] so the machine's step clock and
    scheduler accounting stay identical to single-stepping.
    Driver-handled statements are returned unconsumed ([Driver]) so the
    machine can retry a blocking sync op, and a frame that falls off
    the end of its code reports [Frame_done].

    Registers are unboxed ints drawn from a per-process arena
    ({!pstate}); variable slots stay in the {!Interp.frame} embedded in
    every VM frame, which is what keeps instrumentation snapshots and
    driver-side operand evaluation engine-blind. *)

type pstate = {
  mutable regs : int array;
  mutable rtop : int;
  mutable acc : Event.rw list;
  mutable budget : int;
}

val make_pstate : unit -> pstate

type frame = {
  fr : Interp.frame;
  code : Lang.Bytecode.instr array;
  sids : int array;
  rbase : int;
  mutable pc : int;
}

(** How the VM talks back to the machine. With [want] true (machine
    instrumented) every completed statement is materialized as the exact
    event the interpreter would emit; otherwise only [fast_event]/
    [fast_print] fire (seq accounting, breakpoints, program output). *)
type host = {
  want : bool;
  emit : Event.t -> unit;
  fast_event : int -> unit;
  fast_print : int -> int -> unit;
  has_bp : bool;
      (** breakpoints exist, so bare statements must route through
          [fast_event] (halt check) instead of the inline seq bump *)
  seq : int ref;  (** the process's event-seq counter (shared cell) *)
  steps : int ref;
      (** the machine's global step clock (shared cell) — bumped once
          at the start of every statement of a burst so log timestamps
          match single-stepping byte for byte *)
  stop : bool ref;
      (** set by the machine when an emitted event halted it
          (breakpoint); ends the burst after the current statement *)
  glb : Value.t array;
}

type result = Stepped | Driver of Lang.Prog.stmt | Frame_done

val make_frame :
  Lang.Bytecode.prog ->
  Lang.Prog.t ->
  pstate ->
  fid:int ->
  args:Value.t list ->
  ret_lhs:Lang.Prog.lhs option ->
  call_sid:int option ->
  frame
(** Fresh frame with a register window carved from the arena; slot
    initialization (and the arity fault) is identical to
    {!Interp.make_frame}. *)

val release : pstate -> frame -> unit
(** Return the frame's register window to the arena (call when the
    frame is popped). *)

val current_sid : frame -> int
(** Statement id at the resting pc, [-1] at the implicit return — the
    machine's fault-attribution sid, matching the interpreter's
    work-list head convention. *)

val consume : frame -> unit
(** The driver completed the sync statement at the pc: advance past
    it. *)

val run : frame -> pstate -> host -> budget:int -> result
(** Execute up to [budget] (>= 1) statements of the top frame as one
    burst. Returns [Stepped] when the budget ran out (or the host set
    [stop]) with the frame intact, [Driver s] when a sync statement
    needs the machine (its tick already counted; the pc rests on it
    until {!consume}), and [Frame_done] at the implicit return. *)
