(** Guided replay of {!Analysis.Proto} deadlock certificates.

    A certificate is a witness of the {e abstract} protocol model
    (data-insensitive: both branch arms, loops as cycles), so it may
    describe an interleaving no concrete execution follows. [validate]
    drives the real {!Machine} with a {!Sched.Guided} policy that
    schedules, at each decision, the process whose class owns the next
    certificate step, and watches the event stream: the step is consumed
    when that process performs the matching communication event (same
    statement, same channel/semaphore/child), intermediate
    non-communication events pass freely, and any mismatching
    synchronization — or the target process being blocked or already
    finished — is a divergence.

    A [Confirmed] result carries the concrete pid [schedule] actually
    taken; feeding it back through {!Sched.Scripted}
    ([confirm_scripted]) reproduces the deadlock with the seeded
    scheduler, which is how tests pin certificates as replayable. *)

type result =
  | Confirmed of { schedule : int list; blocked : (int * string) list }
      (** the machine followed every certificate step and then
          deadlocked; [blocked] is {!Machine.Deadlock}'s payload *)
  | Diverged of string  (** why the concrete execution left the trace *)

val validate : ?max_steps:int -> Lang.Prog.t -> Analysis.Proto.cert -> result
(** Default [max_steps]: 200000. *)

val confirm_scripted : ?max_steps:int -> Lang.Prog.t -> int list -> bool
(** Run the program under [Sched.Scripted schedule]; [true] iff the
    machine halts in a deadlock. *)
