(* The execution-phase bytecode VM (DESIGN §15).

   One [step] executes expression instructions until a statement
   terminator completes — exactly one scheduler step, mirroring
   [Interp.step_local] statement for statement. Driver-handled
   statements ([Isync]) are returned to the machine unconsumed so a
   blocking sync op can be retried, and falling off the end of the code
   reports [Frame_done]; the machine's single driver then behaves
   identically under both engines.

   Frame state is split struct-of-arrays style: every frame of a
   process draws its register window from the process's one growable
   int arena ([pstate.regs]), while variable slots stay in the shared
   [Value.t array] representation of [Interp.frame] — that is what the
   instrumentation port reads, so prelogs/postlogs snapshot the live
   slots with no intermediate copy, and driver-side operand evaluation
   ([Interp.eval_int] / [Interp.write_lhs]) runs unchanged against VM
   frames.

   Two execution modes share the dispatch loop. When the machine was
   created with instrumentation, [host.want] is true and the VM
   materializes the exact event the interpreter would have produced
   (reads in short-circuit evaluation order, the read-modify-write
   element read, identical fault messages). Bare runs skip event and
   read-list allocation entirely: a completed statement costs one
   [fast_event] callback (seq bump + breakpoint check).

   The dispatch loop is a toplevel recursive function, not a nest of
   per-[step] closures: a step on the bare path allocates nothing. *)

module P = Lang.Prog
module B = Lang.Bytecode

let fault fmt = Format.kasprintf (fun msg -> raise (Interp.Fault msg)) fmt

type pstate = {
  mutable regs : int array;  (* register arena, one window per live frame *)
  mutable rtop : int;
  mutable acc : Event.rw list;  (* reads of the current step, reversed *)
  mutable budget : int;  (* statements left in the current burst *)
}

let make_pstate () = { regs = Array.make 16 0; rtop = 0; acc = []; budget = 0 }

type frame = {
  fr : Interp.frame;
      (* slots / ffid / ret_lhs / call_sid / active_loops live here;
         the work list stays empty — control is the pc *)
  code : B.instr array;
  sids : int array;
  rbase : int;
  mutable pc : int;
}

type host = {
  want : bool;  (* materialize events (instrumented machine)? *)
  emit : Event.t -> unit;
  fast_event : int -> unit;  (* sid: seq bump + breakpoint check *)
  fast_print : int -> int -> unit;  (* sid, value: bump + output line *)
  has_bp : bool;
      (* breakpoints exist: bare statements must go through [fast_event]
         for the halt check instead of the inline seq bump *)
  seq : int ref;  (* the process's event-seq counter, shared *)
  steps : int ref;  (* the machine's step clock, shared *)
  stop : bool ref;  (* the machine halted mid-burst (breakpoint) *)
  glb : Value.t array;  (* the machine's shared store *)
}

type result = Stepped | Driver of P.stmt | Frame_done

(* ------------------------------------------------------------------ *)
(* Frames.                                                              *)
(* ------------------------------------------------------------------ *)

(* Same slot initialization as [Interp.make_frame] (scalars undefined,
   local arrays zero-filled, arity checked) without allocating the work
   list the VM never consults. *)
let make_frame (bp : B.prog) (p : P.t) (st : pstate) ~fid ~args ~ret_lhs
    ~call_sid =
  let f = p.funcs.(fid) in
  let slots = Array.make f.nslots Value.Vundef in
  List.iter
    (fun (v : P.var) ->
      match (v.vscope, v.vty) with
      | P.Local slot, P.Tarr n -> slots.(slot) <- Value.Varr (Array.make n 0)
      | P.Local _, P.Tint -> ()
      | P.Global _, _ -> assert false)
    f.locals;
  (try
     List.iter2
       (fun (v : P.var) arg ->
         match v.vscope with
         | P.Local slot -> slots.(slot) <- arg
         | P.Global _ -> assert false)
       f.params args
   with Invalid_argument _ -> fault "arity mismatch calling %s" f.fname);
  let fr =
    { Interp.ffid = fid; slots; work = []; active_loops = []; ret_lhs; call_sid }
  in
  let fc = bp.B.by_fid.(fid) in
  let need = st.rtop + fc.B.nregs in
  if need > Array.length st.regs then begin
    let regs = Array.make (max need (2 * Array.length st.regs)) 0 in
    Array.blit st.regs 0 regs 0 st.rtop;
    st.regs <- regs
  end;
  let vf =
    { fr; code = fc.B.code; sids = fc.B.code_sids; rbase = st.rtop; pc = 0 }
  in
  st.rtop <- st.rtop + fc.B.nregs;
  vf

let release (st : pstate) (vf : frame) = st.rtop <- vf.rbase

(* Compiler-produced indices (pc, register numbers, slot numbers, jump
   targets) are valid by construction — the dispatch loop reads them
   unchecked. User-computed array subscripts keep their explicit bounds
   test. *)
let ( .!() ) : int array -> int -> int = Array.unsafe_get

let ( .!()<- ) : int array -> int -> int -> unit = Array.unsafe_set

(* Jumps are layout, not statements: chase them whenever the pc comes
   to rest so every resting pc is a real instruction (and [current_sid]
   attributes faults like the interpreter's work-list head does). *)
let rec chase (code : B.instr array) pc =
  match Array.unsafe_get code pc with B.Ijmp t -> chase code t | _ -> pc

let current_sid (vf : frame) = vf.sids.(vf.pc)

(* The driver completed the sync statement resting at the pc. *)
let consume (vf : frame) = vf.pc <- chase vf.code (vf.pc + 1)

(* ------------------------------------------------------------------ *)
(* The dispatch loop.                                                   *)
(* ------------------------------------------------------------------ *)

let add_read (st : pstate) (v : P.var) n =
  st.acc <- { Event.var = v; value = Value.Vint n } :: st.acc

let load_scalar (st : pstate) want (v : P.var) cell =
  match cell with
  | Value.Vint n ->
    if want then add_read st v n;
    n
  | Value.Vundef -> fault "read of uninitialised variable '%s'" v.vname
  | Value.Varr _ -> fault "array '%s' used as a scalar" v.vname

let load_elem (st : pstate) want (v : P.var) cell idx =
  match cell with
  | Value.Varr a ->
    if idx < 0 || idx >= Array.length a then
      fault "index %d out of bounds for '%s' (length %d)" idx v.vname
        (Array.length a)
    else begin
      let n = a.!(idx) in
      if want then add_read st v n;
      n
    end
  | Value.Vint _ | Value.Vundef -> fault "'%s' is not an array" v.vname

(* an element write is a read-modify-write of the whole array under the
   array-as-scalar abstraction: record the old-element read *)
let store_elem (st : pstate) want (v : P.var) cell idx n =
  match cell with
  | Value.Varr a ->
    if idx < 0 || idx >= Array.length a then
      fault "index %d out of bounds for '%s' (length %d)" idx v.vname
        (Array.length a)
    else begin
      if want then add_read st v a.!(idx);
      a.!(idx) <- n;
      a
    end
  | Value.Vint _ | Value.Vundef -> fault "'%s' is not an array" v.vname

let assign_event (h : host) (st : pstate) sid (v : P.var) n =
  h.emit
    (Event.E_stmt
       {
         sid;
         reads = List.rev st.acc;
         write = Some { Event.var = v; value = Value.Vint n };
         kind = Event.K_assign;
       })

(* Bare-path per-statement accounting: just the seq bump, unless
   breakpoints force the full check through the machine's callback. *)
let[@inline] account (h : host) sid =
  if h.has_bp then h.fast_event sid else incr h.seq

let pred_event (h : host) (st : pstate) sid b =
  h.emit
    (Event.E_stmt
       { sid; reads = List.rev st.acc; write = None; kind = Event.K_pred b })

let[@inline] cmp_eval (c : B.cmp) (x : int) (y : int) =
  match c with
  | B.Clt -> x < y
  | B.Cle -> x <= y
  | B.Cgt -> x > y
  | B.Cge -> x >= y
  | B.Ceq -> x = y
  | B.Cne -> x <> y

let rec exec (vf : frame) (st : pstate) (h : host) (code : B.instr array) regs
    base slots glb want pc : result =
  match Array.unsafe_get code pc with
  | B.Iconst (r, n) ->
    regs.!(base + r) <- n;
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Iload (r, v, slot) ->
    regs.!(base + r) <- load_scalar st want v (Array.unsafe_get slots slot);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Igload (r, v, slot) ->
    regs.!(base + r) <- load_scalar st want v (Array.unsafe_get glb slot);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ilelem (r, v, slot) ->
    regs.!(base + r) <-
      load_elem st want v (Array.unsafe_get slots slot) regs.!(base + r);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Igelem (r, v, slot) ->
    regs.!(base + r) <-
      load_elem st want v (Array.unsafe_get glb slot) regs.!(base + r);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ineg r ->
    regs.!(base + r) <- -regs.!(base + r);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Inot r ->
    regs.!(base + r) <- (if regs.!(base + r) = 0 then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Iadd r ->
    regs.!(base + r) <- regs.!(base + r) + regs.!(base + r + 1);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Isub r ->
    regs.!(base + r) <- regs.!(base + r) - regs.!(base + r + 1);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Imul r ->
    regs.!(base + r) <- regs.!(base + r) * regs.!(base + r + 1);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Idiv r ->
    let y = regs.!(base + r + 1) in
    if y = 0 then fault "division by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) / y;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Imod r ->
    let y = regs.!(base + r + 1) in
    if y = 0 then fault "modulo by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) mod y;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Ilt r ->
    regs.!(base + r) <- (if regs.!(base + r) < regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ile r ->
    regs.!(base + r) <-
      (if regs.!(base + r) <= regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Igt r ->
    regs.!(base + r) <- (if regs.!(base + r) > regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ige r ->
    regs.!(base + r) <-
      (if regs.!(base + r) >= regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ieq r ->
    regs.!(base + r) <- (if regs.!(base + r) = regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ine r ->
    regs.!(base + r) <-
      (if regs.!(base + r) <> regs.!(base + r + 1) then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  (* ---- fused binops: literal right operand ---- *)
  | B.Iaddk (r, k) ->
    regs.!(base + r) <- regs.!(base + r) + k;
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Isubk (r, k) ->
    regs.!(base + r) <- regs.!(base + r) - k;
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Imulk (r, k) ->
    regs.!(base + r) <- regs.!(base + r) * k;
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Idivk (r, k) ->
    if k = 0 then fault "division by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) / k;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Imodk (r, k) ->
    if k = 0 then fault "modulo by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) mod k;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Icmpk (c, r, k) ->
    regs.!(base + r) <- (if cmp_eval c regs.!(base + r) k then 1 else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  (* ---- fused binops: local-scalar right operand ---- *)
  | B.Iaddv (r, v, slot) ->
    regs.!(base + r) <-
      regs.!(base + r) + load_scalar st want v (Array.unsafe_get slots slot);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Isubv (r, v, slot) ->
    regs.!(base + r) <-
      regs.!(base + r) - load_scalar st want v (Array.unsafe_get slots slot);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Imulv (r, v, slot) ->
    regs.!(base + r) <-
      regs.!(base + r) * load_scalar st want v (Array.unsafe_get slots slot);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Idivv (r, v, slot) ->
    let y = load_scalar st want v (Array.unsafe_get slots slot) in
    if y = 0 then fault "division by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) / y;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Imodv (r, v, slot) ->
    let y = load_scalar st want v (Array.unsafe_get slots slot) in
    if y = 0 then fault "modulo by zero"
    else begin
      regs.!(base + r) <- regs.!(base + r) mod y;
      exec vf st h code regs base slots glb want (pc + 1)
    end
  | B.Icmpv (c, r, v, slot) ->
    regs.!(base + r) <-
      (if
         cmp_eval c regs.!(base + r)
           (load_scalar st want v (Array.unsafe_get slots slot))
       then 1
       else 0);
    exec vf st h code regs base slots glb want (pc + 1)
  | B.Ijmp t -> exec vf st h code regs base slots glb want t
  | B.Ijz (r, t) ->
    exec vf st h code regs base slots glb want
      (if regs.!(base + r) = 0 then t else pc + 1)
  | B.Ijnz (r, t) ->
    exec vf st h code regs base slots glb want
      (if regs.!(base + r) <> 0 then t else pc + 1)
  (* ---- statement terminators ---- *)
  | B.Iassign_l (r, v, slot) ->
    let n = regs.!(base + r) in
    Array.unsafe_set slots slot (Value.Vint n);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iassign_g (r, v, slot) ->
    let n = regs.!(base + r) in
    Array.unsafe_set glb slot (Value.Vint n);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iassign_le (r, v, slot) ->
    let n = regs.!(base + r) and idx = regs.!(base + r + 1) in
    ignore (store_elem st want v (Array.unsafe_get slots slot) idx n);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iassign_ge (r, v, slot) ->
    let n = regs.!(base + r) and idx = regs.!(base + r + 1) in
    let a = store_elem st want v (Array.unsafe_get glb slot) idx n in
    (* write back through the store like the interpreter's context does,
       so overlay stores observe the mutation *)
    Array.unsafe_set glb slot (Value.Varr a);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iinc_l (v, dslot, w, sslot, k) ->
    let n = load_scalar st want w (Array.unsafe_get slots sslot) + k in
    Array.unsafe_set slots dslot (Value.Vint n);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iinc_g (v, dslot, w, sslot, k) ->
    let n = load_scalar st want w (Array.unsafe_get glb sslot) + k in
    Array.unsafe_set glb dslot (Value.Vint n);
    if want then assign_event h st vf.sids.!(pc) v n
    else account h vf.sids.!(pc);
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Ipred (r, ftarget) ->
    let b = regs.!(base + r) <> 0 in
    let sid = vf.sids.!(pc) in
    if want then pred_event h st sid b else account h sid;
    next_stmt vf st h code regs base slots glb want
      (chase code (if b then pc + 1 else ftarget))
  | B.Iloop_head ->
    let sid = vf.sids.!(pc) in
    if want then h.emit (Event.E_loop_enter { sid }) else account h sid;
    vf.fr.Interp.active_loops <- sid :: vf.fr.Interp.active_loops;
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iloop_test (r, exit_target) ->
    let b = regs.!(base + r) <> 0 in
    let sid = vf.sids.!(pc) in
    if want then pred_event h st sid b else account h sid;
    if b then next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
    else begin
      vf.fr.Interp.active_loops <-
        (match vf.fr.Interp.active_loops with
        | l :: ls when l = sid -> ls
        | ls -> ls);
      if want then h.emit (Event.E_loop_exit { sid; writes = None })
      else account h sid;
      next_stmt vf st h code regs base slots glb want (chase code exit_target)
    end
  | B.Iloop_test_vk (c, v, slot, k, exit_target) ->
    let b = cmp_eval c (load_scalar st want v (Array.unsafe_get slots slot)) k in
    let sid = vf.sids.!(pc) in
    if want then pred_event h st sid b else account h sid;
    if b then next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
    else begin
      vf.fr.Interp.active_loops <-
        (match vf.fr.Interp.active_loops with
        | l :: ls when l = sid -> ls
        | ls -> ls);
      if want then h.emit (Event.E_loop_exit { sid; writes = None })
      else account h sid;
      next_stmt vf st h code regs base slots glb want (chase code exit_target)
    end
  | B.Iprint r ->
    let n = regs.!(base + r) in
    let sid = vf.sids.!(pc) in
    if want then
      h.emit
        (Event.E_stmt
           {
             sid;
             reads = List.rev st.acc;
             write = None;
             kind = Event.K_print { value = Value.Vint n };
           })
    else h.fast_print sid n;
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Iassert r ->
    let ok = regs.!(base + r) <> 0 in
    let sid = vf.sids.!(pc) in
    if want then
      h.emit
        (Event.E_stmt
           {
             sid;
             reads = List.rev st.acc;
             write = None;
             kind = Event.K_assert { ok };
           })
    else account h sid;
    if not ok then raise (Interp.Fault "assertion failed");
    next_stmt vf st h code regs base slots glb want (chase code (pc + 1))
  | B.Isync s -> Driver s
  | B.Iret_void -> Frame_done

(* One statement finished and the pc rests at [pc]. Keep going within
   the same burst — same process, registers and code still hot — unless
   the budget ran out or the machine halted (breakpoint) mid-burst. The
   next statement starts exactly like a machine-loop entry would start
   it: clock tick, fresh read accumulator. *)
and next_stmt vf st h code regs base slots glb want pc : result =
  vf.pc <- pc;
  if st.budget <= 1 || !(h.stop) then Stepped
  else begin
    st.budget <- st.budget - 1;
    incr h.steps;
    if want then st.acc <- [];
    exec vf st h code regs base slots glb want pc
  end

(* Execute up to [budget] (>= 1) statements of the top frame. Every
   statement — including a final [Isync]/[Iret_void] hand-off — costs
   one [tick]; the machine translates ticks into scheduler-pick commits
   ([Sched.commit]), so a burst is observationally the same as [budget]
   single steps of the same process. *)
let run (vf : frame) (st : pstate) (h : host) ~budget : result =
  st.budget <- budget;
  incr h.steps;
  if h.want then st.acc <- [];
  exec vf st h vf.code st.regs vf.rbase vf.fr.Interp.slots h.glb h.want vf.pc
