type policy =
  | Round_robin of int
  | Random_seed of int
  | Scripted of int list
  | Guided of (runnable:int list -> int)

type t = {
  policy : policy;
  mutable rr_current : int;
  mutable rr_left : int;
  rng : Random.State.t;
  mutable script : int list;
}

let create policy =
  {
    policy;
    rr_current = -1;
    rr_left = 0;
    rng =
      (match policy with
      | Random_seed seed -> Random.State.make [| seed |]
      | Round_robin _ | Scripted _ | Guided _ -> Random.State.make [| 0 |]);
    script = (match policy with Scripted s -> s | _ -> []);
  }

let round_robin t ~runnable quantum =
  if t.rr_left > 0 && List.mem t.rr_current runnable then begin
    t.rr_left <- t.rr_left - 1;
    t.rr_current
  end
  else begin
    (* "next runnable pid strictly greater than the current one,
       wrapping" is only the *smallest* such pid when the list is
       sorted; callers other than the machine may pass any order, so
       sort defensively (cheap: runnable lists are process-count
       sized) rather than mis-rotate the quantum *)
    let runnable = List.sort_uniq Int.compare runnable in
    let next =
      match List.find_opt (fun p -> p > t.rr_current) runnable with
      | Some p -> p
      | None -> List.hd runnable
    in
    t.rr_current <- next;
    t.rr_left <- quantum - 1;
    next
  end

let pick t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.pick: no runnable process"
  | _ -> (
    match t.policy with
    | Round_robin quantum -> round_robin t ~runnable quantum
    | Random_seed _ ->
      List.nth runnable (Random.State.int t.rng (List.length runnable))
    | Scripted _ ->
      (* skip script entries that are not currently runnable *)
      let rec next_scripted () =
        match t.script with
        | [] -> round_robin t ~runnable 1
        | p :: rest ->
          t.script <- rest;
          if List.mem p runnable then p else next_scripted ()
      in
      next_scripted ()
    | Guided f ->
      let p = f ~runnable in
      if List.mem p runnable then p else round_robin t ~runnable 1)

let default = Round_robin 3
