type policy =
  | Round_robin of int
  | Random_seed of int
  | Scripted of int list
  | Guided of (runnable:int list -> int)

type t = {
  policy : policy;
  mutable rr_current : int;
  mutable rr_left : int;
  rng : Random.State.t;
  mutable script : int list;
}

let create policy =
  {
    policy;
    rr_current = -1;
    rr_left = 0;
    rng =
      (match policy with
      | Random_seed seed -> Random.State.make [| seed |]
      | Round_robin _ | Scripted _ | Guided _ -> Random.State.make [| 0 |]);
    script = (match policy with Scripted s -> s | _ -> []);
  }

let round_robin t ~runnable quantum =
  if t.rr_left > 0 && List.mem t.rr_current runnable then begin
    t.rr_left <- t.rr_left - 1;
    t.rr_current
  end
  else begin
    (* "next runnable pid strictly greater than the current one,
       wrapping" is only the *smallest* such pid when the list is
       sorted; callers other than the machine may pass any order, so
       sort defensively (cheap: runnable lists are process-count
       sized) rather than mis-rotate the quantum *)
    let runnable = List.sort_uniq Int.compare runnable in
    let next =
      match List.find_opt (fun p -> p > t.rr_current) runnable with
      | Some p -> p
      | None -> List.hd runnable
    in
    t.rr_current <- next;
    t.rr_left <- quantum - 1;
    next
  end

let pick t ~runnable =
  match runnable with
  | [] -> invalid_arg "Sched.pick: no runnable process"
  | _ -> (
    match t.policy with
    | Round_robin quantum -> round_robin t ~runnable quantum
    | Random_seed _ ->
      List.nth runnable (Random.State.int t.rng (List.length runnable))
    | Scripted _ ->
      (* skip script entries that are not currently runnable *)
      let rec next_scripted () =
        match t.script with
        | [] -> round_robin t ~runnable 1
        | p :: rest ->
          t.script <- rest;
          if List.mem p runnable then p else next_scripted ()
      in
      next_scripted ()
    | Guided f ->
      let p = f ~runnable in
      if List.mem p runnable then p else round_robin t ~runnable 1)

(* Burst scheduling: after [pick] returned [pid], a round-robin
   scheduler is committed to the same pid for its remaining quantum as
   long as the runnable set does not change — and when [pid] is the
   only runnable process, every future pick is determined, so the
   guarantee is unbounded. The machine exploits that to run many VM
   statements per scheduler entry. [burst] reports the guarantee
   without consuming it; [commit] consumes [n] picks after the fact
   (n picks that [pick] would provably have returned [pid] for).

   Only round-robin gives a guarantee: random draws advance the rng
   state per pick (skipping would shift every later draw), scripted
   picks consume script entries, and guided picks run a user callback
   whose calls must not be elided. *)
let burst t ~runnable ~pid =
  match t.policy with
  | Round_robin _ -> (
    match runnable with
    | [ p ] when p = pid -> max_int
    | _ -> if t.rr_current = pid then t.rr_left else 0)
  | Random_seed _ | Scripted _ | Guided _ -> 0

let commit t ~pid n =
  if n > 0 then begin
    assert (t.rr_current = pid);
    if n <= t.rr_left then t.rr_left <- t.rr_left - n
    else begin
      (* sole-runnable fast-forward: n picks from (current = pid,
         left = L) wrap the quantum, landing on left = (L - n) mod q *)
      let q =
        match t.policy with Round_robin q -> max 1 q | _ -> assert false
      in
      t.rr_left <- (((t.rr_left - n) mod q) + q) mod q
    end
  end

let default = Round_robin 3

(* The two policies a CLI flag can name — exactly the reproducible
   ones. Order-tier logs store this spec so reconstruction can re-run
   the recording schedule without the original command line. *)
let string_of_policy = function
  | Round_robin q -> Printf.sprintf "rr:%d" q
  | Random_seed s -> Printf.sprintf "random:%d" s
  | Scripted _ -> invalid_arg "Sched.string_of_policy: scripted"
  | Guided _ -> invalid_arg "Sched.string_of_policy: guided"

let policy_of_string s =
  match String.index_opt s ':' with
  | Some i -> (
    let name = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match (name, int_of_string_opt arg) with
    | "rr", Some q when q > 0 -> Some (Round_robin q)
    | "random", Some seed -> Some (Random_seed seed)
    | _ -> None)
  | None -> None
