(** An interactive command-driven debugger over a {!Session} — the
    user-facing loop the paper sketches in §3.2.3: the controller
    presents a portion of the dynamic graph rooted at the last executed
    statement, and the user asks for more dependences, expansion of
    sub-graph nodes, race reports, restored states or what-if
    experiments; each request triggers exactly the emulation it needs.

    The engine is a pure-ish command interpreter ([eval] maps a command
    line to its textual answer), so the same code backs the [ppd debug]
    CLI and the test suite. *)

type t

val create : Session.t -> t

val eval : t -> string -> string
(** Execute one command line and return the rendered answer. Unknown
    commands answer with the help text. Commands:

    {v
    where                 the halt reason and the current focus node
    focus <node>          move the focus to a graph node id
    why [<node>]          immediate dependences of the focus (or node)
    slice [<depth>]       backward slice from the focus
    expand <node>         expand a sub-graph / loop node
    graph                 dump the dynamic graph built so far
    node <id>             show one node
    intervals [<pid>]     list log intervals
    log [<pid>]           dump the log entries
    races                 run race detection
    lint [<pass> ...]     static diagnostics with PPD0xx codes
    deadlock              wait-for analysis
    restore <step>        shared store reconstructed at a machine step
    whatif [p<pid>#<iv>] x=1 y=2   re-execute with overrides
    vars <name>           program-database report for an identifier
    stats                 controller statistics
    help                  this text
    v}

    [quit]/[exit] answer ["bye"]; the CLI wrapper stops on them. *)

val is_quit : string -> bool

val focus : t -> int option
(** The current focus node, initialised to the session's error node. *)
