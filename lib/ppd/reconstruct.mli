(** Order-tier reconstruction (DESIGN §16).

    An order log stores only the sync-event partial order plus periodic
    checkpoints — none of the value snapshots the emulation package
    needs. Debugging one first {e reconstructs} an equivalent content
    log by re-executing the program deterministically with the recorded
    scheduler, engine and step budget (both engines produce identical
    traces, DESIGN §15), then validates the re-execution against the
    recorded order: every process must perform exactly the recorded
    sync events, in order, and stop at the recorded sequence number.

    Validation failing means the recording and the re-execution are not
    the same computation (program text, analysis flags or build drift)
    — surfaced by the CLI as PPD061/exit 8, never as silently wrong
    flowback answers. *)

exception Divergence of { reason : string }

val reconstruct : Analysis.Eblock.t -> Trace.Log.t -> Trace.Log.t
(** [reconstruct eb log] is [log] itself for content logs. For an order
    log it re-executes [eb]'s program and returns the full content log
    of that run, carrying over the order log's checkpoints (the
    execution is identical, so the checkpoint cuts remain valid).
    @raise Divergence when the re-execution does not match the recorded
    sync order. *)
