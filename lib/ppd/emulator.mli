(** The emulation package (§5.3): re-execute a single log interval from
    its prelog, regenerating the full event trace that the execution
    phase deliberately did not record.

    Replay is local to one process. The prelog restores the frame and
    the reachable shared variables into a private overlay store;
    synchronization statements do not touch real semaphores or channels
    but consume the interval's {e sync records} (received values, token
    provenance, spawned pids, join results) and apply the following
    {e sync-unit prelogs} to the overlay (§5.5) — this is what makes
    replay faithful for parallel programs despite irreproducible
    interleavings. Nested e-block calls are skipped per §5.2: their
    postlog is applied to the overlay and the call shows up as an
    unexpanded sub-graph node; inlined callees are re-executed.

    Replay validates itself against the log: every sync record must
    match the statement and sequence number reached, and regenerated
    postlog values can be checked against the recorded ones. A
    {!Replay_mismatch} means the log is inconsistent with re-execution —
    for race-free programs this is a bug; in the presence of data races
    it is expected (§5.5: "the log entries are not valid") and the race
    detector explains why. *)

exception Replay_mismatch of string

type outcome = {
  events : (int * Runtime.Event.t) list;
      (** (seq, event), exactly matching the original execution's
          numbering; skipped nested e-blocks leave seq gaps *)
  steps : int;
  output : string;  (** re-generated [print] output *)
  fault : string option;
      (** the runtime fault reproduced, for intervals that crashed *)
  overrun : bool;
      (** true iff the replay hit its step budget before reaching the
          interval's end — a runaway replay, not a reproduced fault *)
  postlog_mismatches : string list;
      (** non-empty when regenerated final values differ from the
          recorded postlog (races or analysis bugs) *)
}

val replay :
  ?on_event:(seq:int -> Runtime.Event.t -> unit) ->
  ?max_steps:int ->
  ?overrides:(Lang.Prog.var * Runtime.Value.t) list ->
  ?validate:bool ->
  Analysis.Eblock.t ->
  Trace.Log.t ->
  interval:Trace.Log.interval ->
  outcome
(** [overrides] perturbs the restored prelog state before re-execution —
    the §5.7 experiment: "the user could change the values of variables
    and re-start the program from the same point to see the effect of
    these changes on program behavior". With overrides the re-executed
    control flow may diverge from the log, so pass [~validate:false] to
    tolerate sync records that no longer line up (the replay then treats
    the log as an oracle for values it still needs, best-effort). *)
