type dep = { d_node : int; d_kind : Dyn_graph.edge_kind; d_depth : int }

let causal kind =
  match (kind : Dyn_graph.edge_kind) with
  | Dyn_graph.Data _ | Dyn_graph.Dparam _ | Dyn_graph.Control | Dyn_graph.Sync
    ->
    true
  | Dyn_graph.Flow -> false

let dependences ?(expand_loops = false) ctl node =
  (* slices trace through calls: expand a sub-graph node on first visit.
     Collapsed loop e-blocks stay collapsed unless asked (the paper's
     point: the controller re-executes loops only when the user is
     interested in their details, §5.4) *)
  (match (Dyn_graph.node (Controller.graph ctl) node).Dyn_graph.nd_kind with
  | Dyn_graph.N_subgraph _ -> ignore (Controller.expand_subgraph ctl node)
  | Dyn_graph.N_loop _ when expand_loops ->
    ignore (Controller.expand_subgraph ctl node)
  | _ -> ());
  Controller.why ctl node
  |> List.filter_map (fun (src, kind) ->
         if causal kind then Some { d_node = src; d_kind = kind; d_depth = 1 }
         else None)

let backward_slice ?(max_depth = max_int) ?expand_loops ctl root =
  let g = Controller.graph ctl in
  ignore g;
  let seen = Hashtbl.create 64 in
  let out = ref [ { d_node = root; d_kind = Dyn_graph.Flow; d_depth = 0 } ] in
  Hashtbl.add seen root ();
  let q = Queue.create () in
  Queue.add (root, 0) q;
  while not (Queue.is_empty q) do
    let node, depth = Queue.take q in
    if depth < max_depth then
      List.iter
        (fun d ->
          if not (Hashtbl.mem seen d.d_node) then begin
            Hashtbl.add seen d.d_node ();
            let d = { d with d_depth = depth + 1 } in
            out := d :: !out;
            Queue.add (d.d_node, depth + 1) q
          end)
        (dependences ?expand_loops ctl node)
  done;
  List.rev !out

let pp_edge_kind ppf (k : Dyn_graph.edge_kind) =
  match k with
  | Dyn_graph.Data v -> Format.fprintf ppf "data(%s)" v.Lang.Prog.vname
  | Dyn_graph.Dparam 0 -> Format.pp_print_string ppf "returns"
  | Dyn_graph.Dparam i -> Format.fprintf ppf "param(%%%d)" i
  | Dyn_graph.Control -> Format.pp_print_string ppf "control"
  | Dyn_graph.Sync -> Format.pp_print_string ppf "sync"
  | Dyn_graph.Flow -> Format.pp_print_string ppf "flow"

let pp_explain ?(max_depth = 3) ctl ppf root =
  let g = Controller.graph ctl in
  let seen = Hashtbl.create 64 in
  let pp_one ppf node =
    let n = Dyn_graph.node g node in
    Format.fprintf ppf "[p%d] %s" n.Dyn_graph.nd_pid n.Dyn_graph.nd_label;
    match n.Dyn_graph.nd_value with
    | Some v -> Format.fprintf ppf " = %a" Runtime.Value.pp v
    | None -> ()
  in
  let rec go depth prefix node kind =
    Format.fprintf ppf "@,%s%s%a" prefix
      (if depth = 0 then ""
       else Format.asprintf "<- %a " pp_edge_kind kind)
      pp_one node;
    if Hashtbl.mem seen node then
      (if dependences_nonempty node then Format.fprintf ppf " (seen)")
    else begin
      Hashtbl.add seen node ();
      if depth < max_depth then
        List.iter
          (fun d -> go (depth + 1) (prefix ^ "  ") d.d_node d.d_kind)
          (dependences ctl node)
    end
  and dependences_nonempty node = dependences ctl node <> [] in
  Format.fprintf ppf "@[<v>flowback from:";
  go 0 "  " root Dyn_graph.Flow;
  Format.fprintf ppf "@]"

(* Degraded-mode postscript: one line per hole the query ran into, so a
   flowback answer never silently pretends a damaged interval was
   empty. Prints nothing on a clean run — output stays byte-identical
   to a build without holes. *)
let pp_holes ctl ppf =
  List.iter
    (fun (h : Controller.hole) ->
      Format.fprintf ppf "history unavailable for p%d steps %d-%d (%s)@."
        h.Controller.h_pid h.Controller.h_seq_lo h.Controller.h_seq_hi
        h.Controller.h_reason)
    (Controller.holes ctl)
