module P = Lang.Prog
module E = Runtime.Event
module L = Trace.Log

(* Where the entries come from: a whole in-memory log, or an open
   segment file that is decoded interval by interval as queries touch
   it (the demand-paged debugging phase). *)
type source = S_mem of L.t | S_paged of Store.Segment.reader

(* Degraded-mode policy (DESIGN §12) plus the per-request resilience
   envelope (DESIGN §17). [degraded] turns damaged or unreplayable
   intervals into explicit hole nodes instead of letting the exception
   abort the query; [retries] bounds how many times a
   transiently-failed pool replay is re-attempted (serially, on the
   querying domain, so -jN output stays identical to -j1) before a hole
   is declared; [max_replay_steps] is the runaway-replay watchdog fed
   to {!Emulator.replay}; [deadline] is checked at every e-block
   assembly boundary ([build_interval] entry) and propagates as
   [Resil.Deadline.Expired]; [backoff] (with [retry_seed]) spaces the
   serial retries out instead of hammering a recovering store — delays
   never change what is computed, so outputs stay byte-identical. *)
type config = {
  degraded : bool;
  retries : int;
  max_replay_steps : int;
  deadline : Resil.Deadline.t;
  backoff : Resil.Backoff.policy option;
  retry_seed : int;
}

let default_config =
  {
    degraded = false;
    retries = 2;
    max_replay_steps = 1_000_000;
    deadline = Resil.Deadline.none;
    backoff = None;
    retry_seed = 0;
  }

exception Replay_overrun of { pid : int; iv_id : int; budget : int }

type hole = {
  h_pid : int;
  h_iv_id : int;
  h_seq_lo : int;
  h_seq_hi : int;
  h_reason : string;
}

type t = {
  eb : Analysis.Eblock.t;
  pdgs : Analysis.Static_pdg.program_pdgs;
  db : Analysis.Progdb.t;
  src : source;
  pd : Pardyn.t Lazy.t;  (* race queries force a full decode *)
  g : Dyn_graph.t;
  ivs : L.interval array array;  (* per pid *)
  outcomes : (int * int, Emulator.outcome) Hashtbl.t;
      (* intervals whose fragment is in the graph *)
  mutable pool : Exec.Pool.t option;
      (* None = the bit-identical serial path; {!detach_pool} drops a
         shut-down pool so later queries fall back to serial replay *)
  shared : Fragcache.t option;
      (* cross-controller fragment cache (one per log identity in the
         `ppd serve` registry); clean outcomes are published here and
         consulted before any replay *)
  src_tier : string;
      (* tier of the *original* source ("content"/"order") — the shared
         cache key prefix, so outcomes derived from a reconstructed
         order log never mix with directly-recorded ones *)
  frag_lock : Mutex.t;
  frags : (int * int, Emulator.outcome) Hashtbl.t;
      (* raw replay outcomes produced by pool workers (batch or
         speculative), not yet assembled into the graph; every access
         goes through [frag_lock] *)
  inflight : (int * int, Emulator.outcome Exec.Pool.future) Hashtbl.t;
      (* submitted to the pool, result not yet collected; main-domain
         state, so no lock *)
  mutable pending : (E.eref * int) list;
  mutable replays : int;
  mutable replay_steps : int;
  mutable spec_steps : int;
      (* replay work charged against the watchdog budget that
         [replay_steps] does not see: steps burned by speculative
         prefetch replays (awaited in {!prefetch}) and by overrun
         attempts (which never assemble). [prefetch] stops submitting
         once [replay_steps + spec_steps] reaches the budget, so a
         [--degraded] run cannot keep burning budget-sized replays
         silently. *)
  mutable prefetched : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  config : config;
  mutable holes_rev : hole list;
  mutable retried : int;
}

type stats = {
  replays : int;
  replay_steps : int;
  intervals_total : int;
  prefetched : int;
  cache_hits : int;
  cache_misses : int;
  holes : int;
  retried : int;
}

(* Debugging-phase counters (no-ops until [Obs.enable]). A cache
   "lookup" is one [build_interval] assembly request; it "hits" when
   the outcome already exists (assembled, speculative fragment, or in
   flight on the pool) and "misses" when a serial replay is forced —
   exactly one of the two per lookup, so hits + misses = lookups. *)
let c_replays = Obs.counter "ppd.controller.replays"

let c_replay_steps = Obs.counter "ppd.controller.replay_steps"

let c_prefetched = Obs.counter "ppd.controller.prefetched"

let c_lookups = Obs.counter "ppd.controller.cache.lookups"

let c_hits = Obs.counter "ppd.controller.cache.hits"

let c_misses = Obs.counter "ppd.controller.cache.misses"

let c_holes = Obs.counter "ctl.holes"

let c_retries = Obs.counter "ctl.retries"

let make ?pool ?shared ?(config = default_config) eb src =
  (* An order-tier log carries no value snapshots, so nothing here can
     emulate from it directly. Reconstruct the equivalent content log
     up front (DESIGN §16) and debug that: the reconstruction is
     validated against the recorded sync order, so every downstream
     answer is byte-identical to debugging a content recording of the
     same execution. *)
  let src_tier =
    L.tier_name
      (match src with
      | S_mem log -> log.L.tier
      | S_paged r -> Store.Segment.tier r)
  in
  let src =
    match src with
    | S_mem log when log.L.tier <> L.T_content ->
      S_mem (Reconstruct.reconstruct eb log)
    | S_paged r when Store.Segment.tier r <> L.T_content ->
      S_mem (Reconstruct.reconstruct eb (Store.Segment.to_log r))
    | src -> src
  in
  let prog = eb.Analysis.Eblock.prog in
  let stmt_fid sid = prog.P.stmt_fid.(sid) in
  let ivs, pd =
    match src with
    | S_mem log ->
      ( Array.init log.L.nprocs (fun pid -> L.intervals ~stmt_fid log ~pid),
        lazy (Pardyn.of_log prog log) )
    | S_paged r ->
      ( Array.init (Store.Segment.nprocs r) (fun pid ->
            Store.Segment.intervals r ~stmt_fid ~pid),
        lazy (Pardyn.of_log prog (Store.Segment.to_log r)) )
  in
  {
    eb;
    pdgs = Analysis.Static_pdg.build_program prog;
    db = Analysis.Progdb.build ~summary:eb.Analysis.Eblock.summary prog;
    src;
    pd;
    g = Dyn_graph.create ();
    ivs;
    outcomes = Hashtbl.create 16;
    pool;
    shared;
    src_tier;
    frag_lock = Mutex.create ();
    frags = Hashtbl.create 16;
    inflight = Hashtbl.create 16;
    pending = [];
    replays = 0;
    replay_steps = 0;
    spec_steps = 0;
    prefetched = 0;
    cache_hits = 0;
    cache_misses = 0;
    config;
    holes_rev = [];
    retried = 0;
  }

let start ?pool ?shared ?config eb log = make ?pool ?shared ?config eb (S_mem log)

let start_paged ?pool ?shared ?config eb reader =
  make ?pool ?shared ?config eb (S_paged reader)

(* Forget the pool: later queries replay serially on the calling
   domain. In-flight futures stay consumable (a shut-down pool has
   drained every queued task, so they are already resolved); only new
   submissions stop. This is what lets a {!Session} answer queries
   after its pool was shut down instead of raising. *)
let detach_pool t = t.pool <- None

(* The log slice an interval's emulation touches: entries
   [iv_prelog - 1 .. iv_postlog] (the preceding sync record through the
   closing postlog, or the process's end for open intervals). A paged
   source decodes exactly that window. *)
let interval_log t (iv : L.interval) =
  match t.src with
  | S_mem log -> log
  | S_paged r ->
    let pid = iv.L.iv_pid in
    let hi =
      match iv.L.iv_postlog with
      | Some p -> p
      | None -> Store.Segment.pid_entry_count r ~pid - 1
    in
    Store.Segment.window r ~pid ~lo:(iv.L.iv_prelog - 1) ~hi

let graph t = t.g

let prog t = t.eb.Analysis.Eblock.prog

let pardyn t = Lazy.force t.pd

let intervals t ~pid = t.ivs.(pid)

let retry_pending t =
  let unresolved = ref [] in
  List.iter
    (fun (src, dst) ->
      match Dyn_graph.find_ref t.g src with
      | Some n -> Dyn_graph.add_edge t.g ~src:n ~dst ~kind:Dyn_graph.Sync
      | None -> unresolved := (src, dst) :: !unresolved)
    t.pending;
  t.pending <- !unresolved

(* Replay an interval on the calling domain. Safe on a pool worker:
   the emulator touches only its own state, and a paged source's page
   cache is sharded per domain ({!Store.Segment}). *)
let replay_outcome t (iv : L.interval) =
  Emulator.replay ~max_steps:t.config.max_replay_steps t.eb (interval_log t iv)
    ~interval:iv

(* Consult the cross-controller fragment cache. A cached outcome whose
   step count exceeds *this* controller's watchdog budget is ignored:
   the consumer must see the same overrun a fresh replay would report,
   so a generous producer cannot mask a tight consumer's PPD060. *)
let shared_find t (pid, iv_id) =
  match t.shared with
  | None -> None
  | Some sh -> (
    match Fragcache.find sh (t.src_tier, pid, iv_id) with
    | Some o when o.Emulator.steps <= t.config.max_replay_steps -> Some o
    | Some _ | None -> None)

let shared_mem t (pid, iv_id) =
  match t.shared with
  | None -> false
  | Some sh -> Fragcache.mem sh (t.src_tier, pid, iv_id)

(* Fetch (and drop) a worker-produced fragment, if one landed. *)
let take_frag t key =
  Mutex.lock t.frag_lock;
  let o = Hashtbl.find_opt t.frags key in
  if o <> None then Hashtbl.remove t.frags key;
  Mutex.unlock t.frag_lock;
  o

(* Speculatively replay [iv] on the pool; the raw outcome lands in the
   lock-protected fragment cache. Returns whether a task was submitted
   (false without a pool, or when the interval is already assembled,
   cached, or in flight). *)
let submit_replay t (iv : L.interval) =
  match t.pool with
  | None -> false
  | Some pool ->
    let key = (iv.L.iv_pid, iv.L.iv_id) in
    let cached =
      Mutex.lock t.frag_lock;
      let c = Hashtbl.mem t.frags key in
      Mutex.unlock t.frag_lock;
      c
    in
    if
      Hashtbl.mem t.outcomes key
      || Hashtbl.mem t.inflight key
      || cached || shared_mem t key
    then false
    else begin
      let fut =
        Exec.Pool.submit pool (fun () ->
            let o = replay_outcome t iv in
            Mutex.lock t.frag_lock;
            Hashtbl.replace t.frags key o;
            Mutex.unlock t.frag_lock;
            o)
      in
      Hashtbl.replace t.inflight key fut;
      true
    end

let pid_stop t pid =
  match t.src with
  | S_mem log -> log.L.stops.(pid)
  | S_paged r -> (Store.Segment.stops r).(pid)

(* An inert outcome standing in for an interval we could not replay:
   no events means no nodes, so downstream resolution simply fails to
   find writers there and moves on. *)
let hole_outcome reason =
  {
    Emulator.events = [];
    steps = 0;
    output = "";
    fault = Some reason;
    overrun = false;
    postlog_mismatches = [];
  }

(* Degraded mode's answer to a damaged or unreplayable interval: an
   explicit hole node in the graph (flowback annotates it instead of
   raising), recorded in assembly order on the querying domain, so
   -jN output stays identical to -j1. *)
let declare_hole t ~pid ~(iv : L.interval) reason =
  let lo = iv.L.iv_seq_start in
  let hi =
    match iv.L.iv_seq_end with
    | Some e -> e
    | None -> max lo (pid_stop t pid - 1)
  in
  let label =
    Printf.sprintf "history unavailable for p%d steps %d-%d (%s)" pid lo hi
      reason
  in
  ignore
    (Dyn_graph.add_node t.g ~pid
       ~kind:(Dyn_graph.N_hole { hole_lo = lo; hole_hi = hi })
       ~label ());
  t.holes_rev <-
    { h_pid = pid; h_iv_id = iv.L.iv_id; h_seq_lo = lo; h_seq_hi = hi;
      h_reason = reason }
    :: t.holes_rev;
  Obs.incr c_holes;
  hole_outcome reason

let holes t = List.rev t.holes_rev

(* Retry a transiently-failed replay up to the configured budget. The
   first attempt may have run on a pool worker; every retry runs
   serially right here, which both sidesteps the flaky worker and keeps
   graph assembly order deterministic. *)
let with_retries t (iv : L.interval) first =
  let rec go attempt thunk =
    match thunk () with
    | o -> o
    | exception Fault.Injected _ when attempt < t.config.retries ->
      t.retried <- t.retried + 1;
      Obs.incr c_retries;
      (* space retries out under the configured policy (DESIGN §17);
         the delay is deterministic in (seed, attempt) and changes
         nothing about what is recomputed *)
      (match t.config.backoff with
      | Some policy ->
        Resil.Backoff.sleep_ms
          (Resil.Backoff.delay_ms ~policy ~seed:t.config.retry_seed attempt)
      | None -> ());
      go (attempt + 1) (fun () -> replay_outcome t iv)
  in
  go 0 first

let reason_of_failure = function
  | Fault.Injected { site; kind } ->
    Printf.sprintf "injected %s fault at %s" (Fault.kind_to_string kind) site
  | Trace.Log_io.Unreadable { reason; _ } ->
    Printf.sprintf "log page damaged: %s" reason
  | Emulator.Replay_mismatch m -> Printf.sprintf "replay diverged: %s" m
  | e -> Printexc.to_string e

let build_interval (t : t) ~pid ~iv_id =
  (* the e-block boundary is the deadline propagation point: a query
     that expires mid-flowback stops before the next replay instead of
     holding its slot to completion (DESIGN §17) *)
  Resil.Deadline.check t.config.deadline;
  let key = (pid, iv_id) in
  Obs.incr c_lookups;
  let hit () =
    Obs.incr c_hits;
    t.cache_hits <- t.cache_hits + 1
  in
  match Hashtbl.find_opt t.outcomes key with
  | Some o ->
    hit ();
    o
  | None ->
    let iv = t.ivs.(pid).(iv_id) in
    let acquire () =
      match take_frag t key with
      | Some o ->
        hit ();
        o
      | None -> (
        match Hashtbl.find_opt t.inflight key with
        | Some fut ->
          hit ();
          let o = Exec.Pool.await fut in
          ignore (take_frag t key);
          o
        | None -> (
          match shared_find t key with
          | Some o ->
            hit ();
            o
          | None ->
            Obs.incr c_misses;
            t.cache_misses <- t.cache_misses + 1;
            replay_outcome t iv))
    in
    let is_hole = ref false in
    let hole reason =
      is_hole := true;
      declare_hole t ~pid ~iv reason
    in
    let outcome =
      match with_retries t iv acquire with
      | o ->
        if o.Emulator.overrun then begin
          (* the attempt burned its whole budget before the watchdog
             tripped; charge that work so eager speculation cannot keep
             launching budget-sized replays after the cap is blown *)
          t.spec_steps <- t.spec_steps + o.Emulator.steps;
          if t.config.degraded then hole "replay step budget exhausted"
          else
            raise
              (Replay_overrun { pid; iv_id; budget = t.config.max_replay_steps })
        end
        else o
      | exception
          ((Fault.Injected _ | Trace.Log_io.Unreadable _
           | Emulator.Replay_mismatch _) as e)
        when t.config.degraded ->
        hole (reason_of_failure e)
    in
    Hashtbl.remove t.inflight key;
    if !is_hole then begin
      (* a hole: nothing to assemble, and it does not count as a replay *)
      Hashtbl.replace t.outcomes key outcome;
      outcome
    end
    else begin
      (* Graph assembly always happens here, on the querying domain, in
         query order: replay never reads the graph, so feeding a
         worker-produced outcome builds the same fragment a serial replay
         would, and parallel and serial runs yield identical graphs. The
         counters are bumped the same way on every path, so [-jN]
         statistics match [-j1] byte for byte. *)
      let builder = Builder.build_from_outcome t.pdgs t.g ~interval:iv outcome in
      t.replays <- t.replays + 1;
      t.replay_steps <- t.replay_steps + outcome.Emulator.steps;
      Obs.incr c_replays;
      Obs.add c_replay_steps outcome.Emulator.steps;
      t.pending <- Builder.pending_links builder @ t.pending;
      retry_pending t;
      Hashtbl.replace t.outcomes key outcome;
      (* publish clean outcomes for sibling sessions on the same log
         ([Fragcache.publish] drops faulted/overrun ones itself) *)
      (match t.shared with
      | Some sh -> Fragcache.publish sh (t.src_tier, pid, iv_id) outcome
      | None -> ());
      outcome
    end

(* Batch-emulate a set of intervals: submit every missing one to the
   pool, then assemble in list order on this domain. Without a pool
   this degenerates to the serial loop and builds the same graph. *)
let build_intervals_par t keys =
  (match t.pool with
  | None -> ()
  | Some _ ->
    List.iter
      (fun (pid, iv_id) ->
        if not (Hashtbl.mem t.outcomes (pid, iv_id)) then
          ignore (submit_replay t t.ivs.(pid).(iv_id)))
      keys);
  List.iter (fun (pid, iv_id) -> ignore (build_interval t ~pid ~iv_id)) keys

let enclosing_interval t (r : E.eref) =
  L.find_enclosing t.ivs.(r.epid) ~seq:r.eseq

let node_of_event t (r : E.eref) =
  match Dyn_graph.find_ref t.g r with
  | Some n -> Some n
  | None -> (
    match enclosing_interval t r with
    | None -> None
    | Some iv ->
      ignore (build_interval t ~pid:r.epid ~iv_id:iv.L.iv_id);
      Dyn_graph.find_ref t.g r)

let last_event_node t ~pid =
  let ivs = t.ivs.(pid) in
  if Array.length ivs = 0 then None
  else begin
    (* the process halted inside the innermost open interval (greatest
       start among those without a postlog); if every interval closed,
       it ran to completion and the last event is in its root block *)
    let better a b =
      match a with
      | None -> Some b
      | Some a' -> if b.L.iv_seq_start > a'.L.iv_seq_start then Some b else a
    in
    let open_ =
      Array.fold_left
        (fun best iv -> if iv.L.iv_seq_end = None then better best iv else best)
        None ivs
    in
    let last =
      match open_ with
      | Some _ as l -> l
      | None ->
        Array.fold_left
          (fun best iv -> if iv.L.iv_parent = None then better best iv else best)
          None ivs
    in
    match last with
    | None -> None
    | Some iv ->
      let outcome = build_interval t ~pid ~iv_id:iv.L.iv_id in
      let rec last_ref acc = function
        | [] -> acc
        | (seq, _) :: rest -> last_ref (Some seq) rest
      in
      (match last_ref None outcome.Emulator.events with
      | None -> None
      | Some seq -> Dyn_graph.find_ref t.g { E.epid = pid; eseq = seq })
  end

let expand_subgraph t node_id =
  let node = Dyn_graph.node t.g node_id in
  match (node.Dyn_graph.nd_kind, node.Dyn_graph.nd_ref) with
  | Dyn_graph.N_loop _, Some enter_ref -> (
    (* loop e-block: the nested interval starts right after the
       loop-enter event; the fragment's nodes attach to this node *)
    let child_seq = enter_ref.E.eseq + 1 in
    match L.find_enclosing t.ivs.(enter_ref.E.epid) ~seq:child_seq with
    | Some iv
      when iv.L.iv_seq_start = child_seq
           && (match iv.L.iv_block with L.Bloop _ -> true | _ -> false) ->
      if Hashtbl.mem t.outcomes (enter_ref.E.epid, iv.L.iv_id) then None
      else Some (build_interval t ~pid:enter_ref.E.epid ~iv_id:iv.L.iv_id)
    | Some _ | None -> None)
  | Dyn_graph.N_subgraph _, Some call_ref -> (
    (* the nested interval starts right after the call event *)
    let child_seq = call_ref.E.eseq + 1 in
    match
      L.find_enclosing t.ivs.(call_ref.E.epid) ~seq:child_seq
    with
    | Some iv when iv.L.iv_seq_start = child_seq ->
      if Hashtbl.mem t.outcomes (call_ref.E.epid, iv.L.iv_id) then None
      else begin
        let outcome = build_interval t ~pid:call_ref.E.epid ~iv_id:iv.L.iv_id in
        (* stitch: the call node governs the callee's entry, and the
           callee's returned value flows back into the sub-graph node
           (the %0 mapping of §4.2) *)
        (match
           Dyn_graph.find_ref t.g
             { E.epid = call_ref.E.epid; eseq = child_seq }
         with
        | Some entry ->
          Dyn_graph.add_edge t.g ~src:node_id ~dst:entry
            ~kind:Dyn_graph.Control
        | None -> ());
        let return_seq =
          List.fold_left
            (fun acc (seq, ev) ->
              match ev with
              | E.E_stmt { kind = E.K_return _; _ } -> Some seq
              | _ -> acc)
            None outcome.Emulator.events
        in
        (match return_seq with
        | Some seq -> (
          match
            Dyn_graph.find_ref t.g { E.epid = call_ref.E.epid; eseq = seq }
          with
          | Some ret_node ->
            Dyn_graph.add_edge t.g ~src:ret_node ~dst:node_id
              ~kind:(Dyn_graph.Dparam 0)
          | None -> ())
        | None -> ());
        Some outcome
      end
    | Some _ | None -> None)
  | _, _ -> None

(* ------------------------------------------------------------------ *)
(* External (frontier) resolution.                                      *)
(* ------------------------------------------------------------------ *)

(* Interval that the external node's fragment belongs to: the reading
   event right after it in the same process. We recover it from the
   graph: external nodes have no ref, but their successors do. *)
let interval_of_node t node_id =
  let rec find_ref n seen =
    if List.mem n seen then None
    else
      match (Dyn_graph.node t.g n).Dyn_graph.nd_ref with
      | Some r -> Some r
      | None ->
        List.fold_left
          (fun acc (s, _) ->
            match acc with Some _ -> acc | None -> find_ref s (n :: seen))
          None
          (Dyn_graph.succs t.g n)
  in
  match find_ref node_id [] with
  | None -> None
  | Some r -> Option.map (fun iv -> (r, iv)) (enclosing_interval t r)

let prelog_step t (iv : L.interval) =
  match t.src with
  | S_paged r -> Store.Segment.interval_step r iv
  | S_mem log -> (
    match log.L.entries.(iv.L.iv_pid).(iv.L.iv_prelog) with
    | L.Prelog { step_at; _ } -> step_at
    | _ -> 0)

(* The moment the value read at [reader_seq] was snapshot: the latest
   prelog or sync-unit prelog of this process at or before the reading
   event. Paged sources answer from the footer's snapshot table. *)
let snapshot_step t ~pid ~reader_seq =
  match t.src with
  | S_paged r -> Store.Segment.snapshot_step r ~pid ~reader_seq
  | S_mem log ->
    Array.fold_left
      (fun acc e ->
        match e with
        | L.Prelog { seq_at; step_at; _ } | L.Sync_prelog { seq_at; step_at; _ }
          when seq_at <= reader_seq ->
          max acc step_at
        | _ -> acc)
      0
      log.L.entries.(pid)

(* The last node in the (already built) graph writing [vid] within the
   given interval: scan the builder outcome's events. *)
let last_write_node t (iv : L.interval) vid =
  match Hashtbl.find_opt t.outcomes (iv.L.iv_pid, iv.L.iv_id) with
  | None -> None
  | Some outcome ->
    List.fold_left
      (fun acc (seq, ev) ->
        match ev with
        | E.E_stmt { write = Some { var; value }; _ } when var.P.vid = vid ->
          Some (seq, value)
        | _ -> acc)
      None outcome.Emulator.events
    |> Option.map (fun (seq, value) ->
           (Dyn_graph.find_ref t.g { E.epid = iv.L.iv_pid; eseq = seq }, value))

(* The spawn event of a process-root interval, from the proc-start
   sync record just before its prelog (a single-record seek on a paged
   source). *)
let spawner_ref t (iv : L.interval) =
  if iv.L.iv_prelog > 0 then
    match
      (match t.src with
      | S_mem log -> log.L.entries.(iv.L.iv_pid).(iv.L.iv_prelog - 1)
      | S_paged r ->
        Store.Segment.entry r ~pid:iv.L.iv_pid ~idx:(iv.L.iv_prelog - 1))
    with
    | L.Sync { data = L.S_proc_start { spawn; _ }; _ } -> spawn
    | _ -> None
    | exception Trace.Log_io.Unreadable _ when t.config.degraded ->
      (* the sync record sits in a damaged page: the spawn link is lost,
         which degraded resolution treats like any other missing writer *)
      None
  else None

(* Resolve a parameter external: the defining event is the caller's
   call (parent interval) or the spawner's spawn. *)
let resolve_param t node_id (iv : L.interval) =
  let pid = iv.L.iv_pid in
  let link writer =
    let var =
      match (Dyn_graph.node t.g node_id).Dyn_graph.nd_kind with
      | Dyn_graph.N_external v -> v
      | _ -> assert false
    in
    Dyn_graph.add_edge t.g ~src:writer ~dst:node_id ~kind:(Dyn_graph.Data var);
    Dyn_graph.resolve_external t.g node_id;
    Some writer
  in
  match iv.L.iv_parent with
  | Some parent_id ->
    ignore (build_interval t ~pid ~iv_id:parent_id);
    (* the call event immediately precedes this interval's E_enter *)
    let call_ref = { E.epid = pid; eseq = iv.L.iv_seq_start - 1 } in
    (match Dyn_graph.find_ref t.g call_ref with
    | Some writer -> link writer
    | None -> None)
  | None -> (
    (* process root: the spawner wrote the parameter *)
    match spawner_ref t iv with
    | None -> None
    | Some r -> (
      match node_of_event t r with
      | Some writer -> link writer
      | None -> None))

(* Intervals that may have produced the value of shared [vid] read at
   [read_step]: blocks whose function may define it (the DEFINED sets,
   or a loop block's post variables) that started before the value was
   snapshot — most recent first, the order resolution tries them in. *)
let shared_write_candidates t ~vid ~read_step ~(reading_iv : L.interval) =
  let candidates = ref [] in
  Array.iteri
    (fun pid ivs ->
      Array.iter
        (fun (iv : L.interval) ->
          let same = pid = reading_iv.L.iv_pid && iv.L.iv_id = reading_iv.L.iv_id in
          let may_define =
            match iv.L.iv_block with
            | L.Bfunc fid ->
              Analysis.Varset.mem vid t.eb.Analysis.Eblock.defined.(fid)
            | L.Bloop lsid -> (
              match Analysis.Eblock.loop_block_vars t.eb ~sid:lsid with
              | Some (_, post) ->
                List.exists (fun (v : P.var) -> v.vid = vid) post
              | None -> false)
          in
          if (not same) && may_define && prelog_step t iv <= read_step then
            candidates := iv :: !candidates)
        ivs)
    t.ivs;
  List.sort
    (fun a b -> Int.compare (prelog_step t b) (prelog_step t a))
    !candidates

(* Resolve a shared-variable external: emulate candidate intervals
   (recent first, among those whose function may define the variable)
   until a fragment's last write matches the observed value. *)
let resolve_shared t node_id var ~reader (reading_iv : L.interval) =
  let vid = var.P.vid in
  let observed = (Dyn_graph.node t.g node_id).Dyn_graph.nd_value in
  let read_step =
    snapshot_step t ~pid:reading_iv.L.iv_pid ~reader_seq:reader.Runtime.Event.eseq
  in
  let candidates = shared_write_candidates t ~vid ~read_step ~reading_iv in
  let rec try_candidates = function
    | [] -> None
    | iv :: rest -> (
      ignore (build_interval t ~pid:iv.L.iv_pid ~iv_id:iv.L.iv_id);
      match last_write_node t iv vid with
      | Some (Some writer, value)
        when match observed with
             | None -> true
             | Some o -> Runtime.Value.equal o value -> (
        (* only accept writers not ordered after the read (race-free
           executions have a unique such maximal writer) *)
        Dyn_graph.add_edge t.g ~src:writer ~dst:node_id
          ~kind:(Dyn_graph.Data var);
        Dyn_graph.resolve_external t.g node_id;
        match observed with _ -> Some writer)
      | Some _ | None -> try_candidates rest)
  in
  try_candidates candidates

let resolve_external t node_id =
  let node = Dyn_graph.node t.g node_id in
  match node.Dyn_graph.nd_kind with
  | Dyn_graph.N_external var -> (
    match interval_of_node t node_id with
    | None -> None
    | Some (reader, iv) ->
      if P.is_global var then resolve_shared t node_id var ~reader iv
      else resolve_param t node_id iv)
  | _ -> None

(* Eager mode: after a query pins an interval, speculatively emulate
   its dependence frontier on idle domains — the source intervals of
   pending sync links (the partner fragments a [why] on a sync node
   will need), and for each unresolved external the intervals its
   resolution would emulate: parent or spawner for parameters, the
   DEFINED-set shared-write candidates (§6.3) for globals, most recent
   first. Purely speculative: only raw outcomes are produced, into the
   fragment cache; the graph is untouched, so query results stay
   deterministic. Returns the number of replays submitted. *)
let prefetch ?(max_candidates = 8) t =
  match t.pool with
  | None -> 0
  | Some _ ->
    let n = ref 0 in
    let submitted = ref [] in
    (* Speculative replays are charged against the same watchdog budget
       as demand replays (PPD060): once the charged account — assembled
       work plus earlier speculation and overrun attempts — reaches
       [max_replay_steps], eager mode submits nothing more. Without the
       charge, a [--degraded] run with a tight budget would keep
       launching budget-sized speculative replays, silently exceeding
       the cap it was asked to respect. *)
    let spec iv =
      if
        t.replay_steps + t.spec_steps < t.config.max_replay_steps
        && submit_replay t iv
      then begin
        incr n;
        submitted := (iv.L.iv_pid, iv.L.iv_id) :: !submitted
      end
    in
    List.iter
      (fun ((src : E.eref), _) ->
        match enclosing_interval t src with
        | Some iv -> spec iv
        | None -> ())
      t.pending;
    List.iter
      (fun (node_id, (var : P.var)) ->
        match interval_of_node t node_id with
        | None -> ()
        | Some (reader, iv) ->
          if P.is_global var then begin
            let read_step =
              snapshot_step t ~pid:iv.L.iv_pid ~reader_seq:reader.E.eseq
            in
            let cands =
              shared_write_candidates t ~vid:var.P.vid ~read_step
                ~reading_iv:iv
            in
            List.iteri (fun i c -> if i < max_candidates then spec c) cands
          end
          else
            (match iv.L.iv_parent with
            | Some parent_id -> spec t.ivs.(iv.L.iv_pid).(parent_id)
            | None -> (
              match spawner_ref t iv with
              | Some r -> (
                match enclosing_interval t r with
                | Some siv -> spec siv
                | None -> ())
              | None -> ())))
      (Dyn_graph.externals t.g);
    (* Collect and charge the speculative work before returning, in
       submission order, so the account (and thus later submission
       decisions) is identical across [-jN]. A failed task charges
       nothing here — its exception is still delivered, with retries,
       when the interval is assembled. *)
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.inflight key with
        | None -> ()
        | Some fut -> (
          match Exec.Pool.await fut with
          | o -> t.spec_steps <- t.spec_steps + o.Emulator.steps
          | exception _ -> ()))
      (List.rev !submitted);
    t.prefetched <- t.prefetched + !n;
    Obs.add c_prefetched !n;
    !n

let why t node_id =
  (* build partner fragments for pending sync links into this node *)
  List.iter
    (fun (src, dst) -> if dst = node_id then ignore (node_of_event t src))
    t.pending;
  retry_pending t;
  (* resolve external predecessors *)
  List.iter
    (fun (p, _) ->
      match (Dyn_graph.node t.g p).Dyn_graph.nd_kind with
      | Dyn_graph.N_external _
        when List.exists (fun (i, _) -> i = p) (Dyn_graph.externals t.g) ->
        ignore (resolve_external t p)
      | _ -> ())
    (Dyn_graph.preds t.g node_id);
  Dyn_graph.preds t.g node_id

let stats (t : t) =
  {
    replays = t.replays;
    replay_steps = t.replay_steps;
    intervals_total = Array.fold_left (fun a ivs -> a + Array.length ivs) 0 t.ivs;
    prefetched = t.prefetched;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    holes = List.length t.holes_rev;
    retried = t.retried;
  }
