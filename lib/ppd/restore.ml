module P = Lang.Prog
module V = Runtime.Value
module L = Trace.Log

type snapshot = {
  at_step : int;
  globals : V.t array;
  clock : int array;
  entries_scanned : int;
}

let init_globals (p : P.t) =
  Array.map
    (function
      | P.Ginit_int n -> V.Vint n
      | P.Ginit_arr len -> V.Varr (Array.make len 0))
    p.global_inits

(* First index whose step_at exceeds [bound] ([step_at] is monotone
   non-decreasing within a process's entry array). *)
let lower_bound entries ~bound =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if L.entry_step_at entries.(mid) <= bound then lo := mid + 1 else hi := mid
  done;
  !lo

(* Seed from the nearest checkpoint at or before [step] (falling back
   to the initial store), then collect every value-carrying log record
   in the window as (step, vals), merge-sort by step, and apply in
   order.

   The checkpoint cut is inclusive: a checkpoint at step S covers
   exactly the entries with step_at <= S, so re-application must be
   strict — only entries with step_at > S. Re-applying the boundary
   entry would be harmless for values (last-writer-wins) but would
   double-count boundary sync events into the clock: a restore at an
   e-block head that coincides with a sync event would then observe a
   stale (over-advanced) vector-clock entry for that process. The same
   strict bound re-seeds the clock from ck_clock, never from zero. *)
let shared_at (p : P.t) (log : L.t) ~step =
  let ck =
    Array.fold_left
      (fun best c -> if c.L.ck_step <= step then Some c else best)
      None log.L.ckpts
  in
  let base_step = match ck with None -> -1 | Some c -> c.L.ck_step in
  let globals =
    match ck with
    | None -> init_globals p
    | Some c -> Array.map V.copy c.L.ck_globals
  in
  let clock =
    match ck with
    | None -> Array.make log.L.nprocs 0
    | Some c ->
      Array.init log.L.nprocs (fun pid ->
          if pid < Array.length c.L.ck_clock then c.L.ck_clock.(pid) else 0)
  in
  let records = ref [] in
  let scanned = ref 0 in
  Array.iteri
    (fun pid entries ->
      let n = Array.length entries in
      let i = ref (lower_bound entries ~bound:base_step) in
      let past = ref false in
      while (not !past) && !i < n do
        let e = entries.(!i) in
        incr scanned;
        if L.entry_step_at e > step then past := true
        else begin
          (match e with
          | L.Postlog { step_at; vals; _ } | L.Sync_prelog { step_at; vals; _ }
            ->
            records := (step_at, vals) :: !records
          | L.Sync _ -> clock.(pid) <- clock.(pid) + 1
          | L.Prelog _ -> ());
          incr i
        end
      done)
    log.L.entries;
  let records =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !records)
  in
  List.iter
    (fun (_, vals) ->
      List.iter
        (fun (vid, v) ->
          match p.vars.(vid).vscope with
          | P.Global slot -> globals.(slot) <- V.copy v
          | P.Local _ -> ())
        vals)
    records;
  { at_step = step; globals; clock; entries_scanned = !scanned }

let at_interval_end (p : P.t) (log : L.t) (iv : L.interval) =
  match iv.L.iv_postlog with
  | None -> invalid_arg "Restore.at_interval_end: interval still open"
  | Some idx -> (
    match log.L.entries.(iv.L.iv_pid).(idx) with
    | L.Postlog { step_at; _ } -> shared_at p log ~step:step_at
    | _ -> assert false)

let locals_at_interval_end (p : P.t) (log : L.t) (iv : L.interval) =
  match iv.L.iv_postlog with
  | None -> []
  | Some idx -> (
    match log.L.entries.(iv.L.iv_pid).(idx) with
    | L.Postlog { vals; _ } ->
      List.filter_map
        (fun (vid, v) ->
          let var = p.vars.(vid) in
          if P.is_global var then None else Some (var, v))
        vals
    | _ -> [])

let final (p : P.t) (log : L.t) = shared_at p log ~step:max_int
