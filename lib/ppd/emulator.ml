module P = Lang.Prog
module E = Runtime.Event
module V = Runtime.Value
module I = Runtime.Interp
module L = Trace.Log

exception Replay_mismatch of string

let mismatch fmt = Format.kasprintf (fun m -> raise (Replay_mismatch m)) fmt

type outcome = {
  events : (int * E.t) list;
  steps : int;
  output : string;
  fault : string option;
  overrun : bool;
  postlog_mismatches : string list;
}

type state = {
  eb : Analysis.Eblock.t;
  prog : P.t;
  pid : int;
  entries : L.entry array;
  mutable cursor : int;
  mutable seq : int;
  mutable frames : I.frame list;
  overlay : V.t option array;  (* by global slot *)
  mutable events_rev : (int * E.t) list;
  on_event : seq:int -> E.t -> unit;
  out : Buffer.t;
  mutable steps : int;
  root_is_proc : bool;
  root_loop : int option;  (* sid when replaying a loop e-block interval *)
  stop_seq : int;  (* reality's edge: no event at or past this seq happened *)
  iv : L.interval;
  mutable finished : bool;
  mutable validate : bool;  (* false during what-if replays *)
  root_frame : I.frame option ref;  (* kept for the postlog check *)
}

let emit st ev =
  let seq = st.seq in
  st.seq <- seq + 1;
  st.events_rev <- (seq, ev) :: st.events_rev;
  st.on_event ~seq ev;
  (match ev with
  | E.E_stmt { kind = E.K_print { value }; _ } ->
    Buffer.add_string st.out (V.to_string value);
    Buffer.add_char st.out '\n'
  | _ -> ());
  { E.epid = st.pid; eseq = seq }

let global_slot (st : state) vid =
  match st.prog.vars.(vid).vscope with
  | P.Global slot -> Some slot
  | P.Local _ -> None

(* Apply logged (vid, value) pairs: globals to the overlay, locals to
   the given frame (used for prelog application). *)
let apply_vals st ?frame vals =
  List.iter
    (fun (vid, v) ->
      match global_slot st vid with
      | Some slot -> st.overlay.(slot) <- Some (V.copy v)
      | None -> (
        match frame with
        | None -> ()
        | Some (f : I.frame) -> (
          match st.prog.vars.(vid).vscope with
          | P.Local slot -> f.slots.(slot) <- V.copy v
          | P.Global _ -> assert false)))
    vals

let apply_globals st vals =
  List.iter
    (fun (vid, v) ->
      match global_slot st vid with
      | Some slot -> st.overlay.(slot) <- Some (V.copy v)
      | None -> ())
    vals

let ctx st =
  match st.frames with
  | [] -> invalid_arg "Emulator.ctx"
  | top :: _ ->
    {
      I.prog = st.prog;
      read_global =
        (fun slot ->
          match st.overlay.(slot) with
          | Some v -> v
          | None ->
            mismatch
              "replay read of shared '%s' not covered by any prelog \
               (analysis gap or data race)"
              st.prog.globals.(slot).P.vname);
      write_global = (fun slot v -> st.overlay.(slot) <- Some v);
      frame = top;
    }

(* If the entry at the cursor is a sync-unit prelog for [point], apply
   it to the overlay and advance. *)
let maybe_sync_prelog st =
  if st.cursor < Array.length st.entries then
    match st.entries.(st.cursor) with
    | L.Sync_prelog { vals; _ } ->
      apply_globals st vals;
      st.cursor <- st.cursor + 1
    | L.Prelog _ | L.Postlog _ | L.Sync _ -> ()

let expect_sync st ~sid =
  if st.validate then begin
    if st.cursor >= Array.length st.entries then
      mismatch "log exhausted but replay reached sync statement s%d" sid;
    match st.entries.(st.cursor) with
    | L.Sync { sid = Some sid'; seq; data = L.S_kind kind; _ } ->
      if sid' <> sid then
        mismatch "replay at s%d but log records sync at s%d" sid sid';
      if seq <> st.seq then
        mismatch "replay at seq %d but sync record for s%d has seq %d" st.seq
          sid seq;
      st.cursor <- st.cursor + 1;
      kind
    | e ->
      mismatch "replay reached sync s%d but log entry is %s" sid
        (Format.asprintf "%a" (L.pp_entry st.prog) e)
  end
  else begin
    (* what-if mode: control flow may have diverged; best effort is to
       seek the next sync record (applying shared snapshots on the way)
       and use its payload if it still matches this statement *)
    let rec seek () =
      if st.cursor >= Array.length st.entries then
        raise
          (I.Fault
             (Printf.sprintf
                "what-if execution diverged: no sync record left for s%d" sid))
      else
        match st.entries.(st.cursor) with
        | L.Sync { sid = Some sid'; data = L.S_kind kind; _ } ->
          st.cursor <- st.cursor + 1;
          if sid' = sid then kind
          else
            raise
              (I.Fault
                 (Printf.sprintf
                    "what-if execution diverged: reached s%d but the log's                      next synchronization was at s%d"
                    sid sid'))
        | L.Sync_prelog { vals; _ } ->
          apply_globals st vals;
          st.cursor <- st.cursor + 1;
          seek ()
        | L.Sync _ | L.Prelog _ | L.Postlog _ ->
          st.cursor <- st.cursor + 1;
          seek ()
    in
    seek ()
  end

(* Skip a nested e-block: cursor is at its Prelog; jump past the
   matching Postlog, returning it. *)
let skip_nested st ~(block : L.block) =
  let describe = Format.asprintf "%a" L.pp_block block in
  (match st.entries.(st.cursor) with
  | L.Prelog { block = b; _ } when b = block -> ()
  | e ->
    mismatch "expected nested prelog of %s, found %s" describe
      (Format.asprintf "%a" (L.pp_entry st.prog) e));
  let depth = ref 0 in
  let result = ref None in
  while !result = None do
    (if st.cursor >= Array.length st.entries then
       mismatch "nested e-block %s has no matching postlog" describe);
    (match st.entries.(st.cursor) with
    | L.Prelog _ -> incr depth
    | L.Postlog { vals; ret; seq_at; via_return; _ } ->
      decr depth;
      if !depth = 0 then result := Some (vals, ret, seq_at, via_return)
    | L.Sync _ | L.Sync_prelog _ -> ());
    st.cursor <- st.cursor + 1
  done;
  Option.get !result

let is_sync_chan (_st : state) (ch : P.chan) = ch.ch_cap = Some 0

(* Close the interval root frame. *)
let finish_root st ret =
  let top = List.hd st.frames in
  st.root_frame := Some top;
  if st.root_is_proc then begin
    (* the machine emitted E_proc_exit; consume its sync record. In
       what-if mode the cursor may sit before entries of nested blocks
       that were re-executed rather than skipped: seek, and synthesize
       the exit if the divergent run simply outlived the log. *)
    let rec find_exit () =
      if st.cursor >= Array.length st.entries then None
      else
        match st.entries.(st.cursor) with
        | L.Sync { data = L.S_proc_exit { fid; result }; seq; _ } ->
          st.cursor <- st.cursor + 1;
          Some (fid, result, seq)
        | e ->
          if st.validate then
            mismatch "expected proc-exit sync record, found %s"
              (Format.asprintf "%a" (L.pp_entry st.prog) e)
          else begin
            st.cursor <- st.cursor + 1;
            find_exit ()
          end
    in
    match find_exit () with
    | Some (fid, result, seq) ->
      if st.validate && seq <> st.seq then
        mismatch "proc-exit seq %d but replay at %d" seq st.seq;
      let result = if st.validate then result else ret in
      ignore (emit st (E.E_proc_exit { fid; result }))
    | None ->
      ignore (emit st (E.E_proc_exit { fid = top.I.ffid; result = ret }))
  end
  else
    ignore
      (emit st (E.E_leave { fid = top.I.ffid; call_sid = top.I.call_sid; ret }));
  st.frames <- [];
  st.finished <- true

(* Pop a nested (inlined) frame and deliver the return value. *)
let pop_nested st ret =
  match st.frames with
  | [] -> assert false
  | top :: rest ->
    ignore
      (emit st (E.E_leave { fid = top.I.ffid; call_sid = top.I.call_sid; ret }));
    st.frames <- rest;
    let sid = match top.I.call_sid with Some s -> s | None -> assert false in
    let write =
      match top.I.ret_lhs with
      | None -> None
      | Some l ->
        let c = ctx st in
        let value = match ret with Some v -> v | None -> V.Vundef in
        let _idx, w = I.write_lhs c l value in
        Some w
    in
    ignore
      (emit st
         (E.E_stmt
            {
              sid;
              reads = [];
              write;
              kind = E.K_call_return { callee = top.I.ffid; ret };
            }));
    maybe_sync_prelog st

let pop_frame st ret =
  match st.frames with
  | [] -> assert false
  | [ _root ] -> finish_root st ret
  | _ :: _ -> pop_nested st ret

let eval_args c (call : P.call) =
  let args_rev, reads_rev =
    List.fold_left
      (fun (args, reads) a ->
        let n, r = I.eval_int c a in
        (V.Vint n :: args, List.rev_append r reads))
      ([], []) call.cargs
  in
  (List.rev args_rev, List.rev reads_rev)

let kind_name (k : E.kind) =
  Format.asprintf "%a" E.pp
    (E.E_stmt { sid = -1; reads = []; write = None; kind = k })

let exec_driver st (s : P.stmt) =
  let c = ctx st in
  let consume () = I.consume_work (List.hd st.frames) in
  match s.desc with
  | P.Sreturn e ->
    let ret, reads =
      match e with
      | None -> (None, [])
      | Some e ->
        let n, reads = I.eval_int c e in
        (Some (V.Vint n), reads)
    in
    ignore
      (emit st
         (E.E_stmt
            { sid = s.sid; reads; write = None; kind = E.K_return { value = ret } }));
    if st.root_loop <> None then begin
      (match st.frames with
      | top :: _ -> st.root_frame := Some top
      | [] -> ());
      st.finished <- true
    end
    else begin
      (match st.frames with
      | top :: _ ->
        List.iter
          (fun sid -> ignore (emit st (E.E_loop_exit { sid; writes = None })))
          top.I.active_loops;
        top.I.active_loops <- [];
        top.I.work <- []
      | [] -> assert false);
      pop_frame st ret
    end
  | P.Scall (lhs, call) ->
    let args, reads = eval_args c call in
    ignore
      (emit st
         (E.E_stmt
            {
              sid = s.sid;
              reads;
              write = None;
              kind = E.K_call { callee = call.callee; args };
            }));
    consume ();
    if st.validate && st.eb.Analysis.Eblock.is_eblock.(call.callee) then begin
      (* §5.2: skip the nested e-block via its postlog *)
      let vals, ret, post_seq, _via = skip_nested st ~block:(L.Bfunc call.callee) in
      apply_globals st vals;
      st.seq <- post_seq;
      let write =
        match lhs with
        | None -> None
        | Some l ->
          let value = match ret with Some v -> v | None -> V.Vundef in
          let _idx, w = I.write_lhs c l value in
          Some w
      in
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads = [];
                write;
                kind = E.K_call_return { callee = call.callee; ret };
              }));
      maybe_sync_prelog st
    end
    else begin
      let frame =
        I.make_frame st.prog ~fid:call.callee ~args ~ret_lhs:lhs
          ~call_sid:(Some s.sid)
      in
      st.frames <- frame :: st.frames;
      ignore
        (emit st
           (E.E_enter
              {
                fid = call.callee;
                call_sid = Some s.sid;
                binds = I.binds_of_frame st.prog frame;
              }));
      maybe_sync_prelog st
    end
  | P.Sspawn (lhs, call) -> (
    let args, reads = eval_args c call in
    match expect_sync st ~sid:s.sid with
    | E.K_spawn { child; callee; _ } ->
      if callee <> call.callee then
        mismatch "spawn callee mismatch at s%d" s.sid;
      let write =
        match lhs with
        | None -> None
        | Some l ->
          let _idx, w = I.write_lhs c l (V.Vint child) in
          Some w
      in
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads;
                write;
                kind = E.K_spawn { child; callee; args };
              }));
      maybe_sync_prelog st;
      consume ()
    | k -> mismatch "expected spawn record at s%d, got %s" s.sid (kind_name k))
  | P.Sjoin (lhs, e) -> (
    let _q, reads = I.eval_int c e in
    match expect_sync st ~sid:s.sid with
    | E.K_join { child; result; child_exit } ->
      let write =
        match lhs with
        | None -> None
        | Some l ->
          let value = match result with Some v -> v | None -> V.Vundef in
          let _idx, w = I.write_lhs c l value in
          Some w
      in
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads;
                write;
                kind = E.K_join { child; result; child_exit };
              }));
      maybe_sync_prelog st;
      consume ()
    | k -> mismatch "expected join record at s%d, got %s" s.sid (kind_name k))
  | P.Sp sem -> (
    match expect_sync st ~sid:s.sid with
    | E.K_p { sem = sem'; src; was_blocked } ->
      if sem' <> sem.sem_id then mismatch "semaphore mismatch at s%d" s.sid;
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads = [];
                write = None;
                kind = E.K_p { sem = sem'; src; was_blocked };
              }));
      maybe_sync_prelog st;
      consume ()
    | k -> mismatch "expected P record at s%d, got %s" s.sid (kind_name k))
  | P.Sv sem -> (
    match expect_sync st ~sid:s.sid with
    | E.K_v { sem = sem' } ->
      if sem' <> sem.sem_id then mismatch "semaphore mismatch at s%d" s.sid;
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads = [];
                write = None;
                kind = E.K_v { sem = sem' };
              }));
      maybe_sync_prelog st;
      consume ()
    | k -> mismatch "expected V record at s%d, got %s" s.sid (kind_name k))
  | P.Ssend (ch, e) -> (
    let value, reads = I.eval_int c e in
    match expect_sync st ~sid:s.sid with
    | E.K_send { chan; value = logged } ->
      if chan <> ch.ch_id then mismatch "channel mismatch at s%d" s.sid;
      if st.validate && logged <> value then
        mismatch
          "send payload at s%d re-evaluates to %d but log recorded %d \
           (data race?)"
          s.sid value logged;
      ignore
        (emit st
           (E.E_stmt
              { sid = s.sid; reads; write = None; kind = E.K_send { chan; value } }));
      maybe_sync_prelog st;
      if is_sync_chan st ch then begin
        match expect_sync st ~sid:s.sid with
        | E.K_send_unblocked { chan = chan'; by } ->
          ignore
            (emit st
               (E.E_stmt
                  {
                    sid = s.sid;
                    reads = [];
                    write = None;
                    kind = E.K_send_unblocked { chan = chan'; by };
                  }));
          maybe_sync_prelog st
        | k ->
          mismatch "expected send-unblocked record at s%d, got %s" s.sid
            (kind_name k)
      end;
      consume ()
    | k -> mismatch "expected send record at s%d, got %s" s.sid (kind_name k))
  | P.Srecv (ch, lhs) -> (
    match expect_sync st ~sid:s.sid with
    | E.K_recv { chan; value; src } ->
      if chan <> ch.ch_id then mismatch "channel mismatch at s%d" s.sid;
      let idx_reads, w = I.write_lhs c lhs (V.Vint value) in
      ignore
        (emit st
           (E.E_stmt
              {
                sid = s.sid;
                reads = idx_reads;
                write = Some w;
                kind = E.K_recv { chan; value; src };
              }));
      maybe_sync_prelog st;
      consume ()
    | k -> mismatch "expected recv record at s%d, got %s" s.sid (kind_name k))
  | P.Swhile _ -> (
    let top = List.hd st.frames in
    match top.I.work with
    | I.Wstmt _ :: _
      when st.validate
           && Analysis.Eblock.is_loop_block st.eb ~sid:s.sid
           && st.root_loop <> Some s.sid -> (
      (* §5.4: skip the nested loop e-block via its postlog; the
         collapsed execution becomes a loop node carrying its writes *)
      ignore (emit st (E.E_loop_enter { sid = s.sid }));
      let vals, _ret, post_seq, via_return =
        skip_nested st ~block:(L.Bloop s.sid)
      in
      (* loop writes land in the enclosing frame and the shared store *)
      apply_vals st ~frame:top vals;
      st.seq <- post_seq;
      let writes =
        List.map (fun (vid, v) -> (st.prog.vars.(vid), v)) vals
      in
      ignore (emit st (E.E_loop_exit { sid = s.sid; writes = Some writes }));
      consume ();
      maybe_sync_prelog st;
      match via_return with
      | None -> ()
      | Some ret ->
        (* the skipped loop ended because a return unwound it: finish
           unwinding exactly as the machine did — close the remaining
           active loops, then leave the frame *)
        if st.root_loop <> None then st.finished <- true
        else begin
          List.iter
            (fun sid -> ignore (emit st (E.E_loop_exit { sid; writes = None })))
            top.I.active_loops;
          top.I.active_loops <- [];
          top.I.work <- [];
          pop_frame st ret
        end)
    | I.Wstmt _ :: _ ->
      ignore (emit st (E.E_loop_enter { sid = s.sid }));
      I.loop_entry top s
    | I.Wloop _ :: _ ->
      let ev, continued = I.loop_test c s in
      ignore (emit st (E.E_stmt ev));
      if not continued then
        if st.root_loop = Some s.sid then begin
          st.root_frame := Some top;
          st.finished <- true
        end
        else
          ignore (emit st (E.E_loop_exit { sid = s.sid; writes = None }))
    | [] -> assert false)
  | P.Sassign _ | P.Sif _ | P.Sprint _ | P.Sassert _ -> assert false


let step st =
  (* stop exactly where the original process stopped: the machine halted
     (fault elsewhere, breakpoint, deadlock) or preempted it mid-block;
     events past this point never happened *)
  if st.seq >= st.stop_seq then st.finished <- true
  else begin
  st.steps <- st.steps + 1;
  match st.frames with
  | [] ->
    st.finished <- true
  | _ :: _ -> (
    let c = ctx st in
    match I.step_local c with
    | I.Event ev ->
      ignore (emit st (E.E_stmt ev));
      (match ev.kind with
      | E.K_assert { ok = false } -> raise (I.Fault "assertion failed")
      | _ -> ())
    | I.Frame_done -> pop_frame st None
    | I.Driver s -> exec_driver st s)
  end

(* Validate the regenerated final state against the recorded postlog.
   Locals are process-private and must match exactly. Shared variables
   are only compared when the whole run had a single process: in a
   parallel run another process may legitimately write a shared variable
   between this block's last access and its postlog snapshot, so the
   logged value can be newer than anything this replay can know. *)
let check_postlog st ~single_process =
  match st.iv.L.iv_postlog with
  | None -> []
  | Some idx -> (
    match st.entries.(idx) with
    | L.Postlog { vals; _ } ->
      List.filter_map
        (fun (vid, logged) ->
          let v = st.prog.vars.(vid) in
          let current =
            match v.P.vscope with
            | P.Global slot -> if single_process then st.overlay.(slot) else None
            | P.Local slot -> (
              match !(st.root_frame) with
              | Some f when v.P.vfid = f.I.ffid -> Some f.I.slots.(slot)
              | Some _ | None -> None)
          in
          match current with
          | None -> None
          | Some V.Vundef ->
            (* a may-write the replay never performed: the postlog shows
               the value from before the block (possible only for loop
               e-blocks, whose frame predates the block) — nothing to
               compare against *)
            None
          | Some cur ->
            if V.equal cur logged then None
            else
              Some
                (Printf.sprintf "%s: replayed %s, logged %s" v.P.vname
                   (V.to_string cur) (V.to_string logged)))
        vals
    | _ -> [])

(* Every interval emulation, whether demanded by a query or speculated
   by the prefetcher — so this is always ≥ the controller's assembled
   replay count. *)
let c_replays = Obs.counter "ppd.emulator.replays"

(* Chaos site: when armed with kind [budget] the Nth replay's step
   budget collapses to zero, which exercises the same overrun path a
   genuinely runaway replay would take. *)
let f_replay = Fault.site "ppd.emulator.replay"

let replay ?(on_event = fun ~seq:_ _ -> ()) ?(max_steps = 1_000_000)
    ?(overrides = []) ?(validate = true) eb (log : L.t)
    ~(interval : L.interval) =
  Obs.incr c_replays;
  let max_steps =
    match Fault.fire f_replay with Some _ -> 0 | None -> max_steps
  in
  Obs.with_span ~cat:"replay"
    ~arg:(Printf.sprintf "p%d#%d" interval.L.iv_pid interval.L.iv_id)
    "replay"
  @@ fun () ->
  let prog = eb.Analysis.Eblock.prog in
  let pid = interval.L.iv_pid in
  let entries = log.L.entries.(pid) in
  let prelog_vals, caller_sid, block =
    match entries.(interval.L.iv_prelog) with
    | L.Prelog { vals; caller_sid; block; _ } -> (vals, caller_sid, block)
    | _ -> invalid_arg "Emulator.replay: interval prelog index is not a prelog"
  in
  let fid, root_loop =
    match block with
    | L.Bfunc fid -> (fid, None)
    | L.Bloop sid -> (prog.stmt_fid.(sid), Some sid)
  in
  (* a process-root interval is preceded by its proc-start sync record *)
  let root_is_proc, spawn_ref =
    if interval.L.iv_prelog > 0 then
      match entries.(interval.L.iv_prelog - 1) with
      | L.Sync { data = L.S_proc_start { spawn; _ }; _ } -> (true, spawn)
      | _ -> (false, None)
    else (false, None)
  in
  (* parameters start undefined; the prelog supplies the ones that can
     be read (upward-exposed) *)
  let dummy_args = List.map (fun _ -> V.Vundef) prog.funcs.(fid).params in
  let frame =
    I.make_frame prog ~fid ~args:dummy_args ~ret_lhs:None ~call_sid:caller_sid
  in
  let st =
    {
      eb;
      prog;
      pid;
      entries;
      cursor = interval.L.iv_prelog + 1;
      seq = interval.L.iv_seq_start;
      frames = [ frame ];
      overlay = Array.make (Array.length prog.globals) None;
      events_rev = [];
      on_event;
      out = Buffer.create 64;
      steps = 0;
      root_is_proc;
      root_loop;
      stop_seq =
        (if pid < Array.length log.L.stops then log.L.stops.(pid) else max_int);
      iv = interval;
      finished = false;
      validate = true;
      root_frame = ref None;
    }
  in
  (* What-if replays re-execute nested e-blocks instead of consuming
     their logs, so any shared variable can be read — seed the overlay
     with the full restored store at the interval's start (§5.7:
     restoration, then modification, then re-start). *)
  if not validate then begin
    let snap =
      Restore.shared_at prog log
        ~step:
          (match entries.(interval.L.iv_prelog) with
          | L.Prelog { step_at; _ } -> step_at
          | _ -> 0)
    in
    Array.iteri
      (fun slot v -> st.overlay.(slot) <- Some (V.copy v))
      snap.Restore.globals
  end;
  (match root_loop with
  | None -> ()
  | Some sid ->
    (* a loop interval replays just the loop: its region re-executes
       from the first condition test (the enter event lives in the
       parent interval) *)
    let stmt = prog.stmts.(sid) in
    frame.I.work <- [ I.Wloop stmt ];
    frame.I.active_loops <- [ sid ]);
  apply_vals st ~frame prelog_vals;
  (* what-if experiments (§5.7): the user may perturb the restored
     state before re-execution. Overridden values make the log's sync
     records potentially inconsistent with the new control flow, so
     validation is normally relaxed alongside. *)
  apply_vals st ~frame
    (List.map (fun ((v : P.var), value) -> (v.vid, value)) overrides);
  st.validate <- validate;
  (* re-emit the interval's opening event *)
  let binds = I.binds_of_frame prog frame in
  (match root_loop with
  | Some _ -> () (* the E_loop_enter event belongs to the parent interval *)
  | None ->
    if root_is_proc then
      ignore (emit st (E.E_proc_start { fid; binds; spawn = spawn_ref }))
    else ignore (emit st (E.E_enter { fid; call_sid = caller_sid; binds })));
  let fault = ref None in
  (try
     while (not st.finished) && st.steps < max_steps do
       step st
     done
   with
  | I.Fault msg -> fault := Some msg
  | Replay_mismatch msg when not validate ->
    fault := Some ("what-if divergence: " ^ msg));
  let overrun = (not st.finished) && !fault = None && st.steps >= max_steps in
  if overrun then fault := Some "replay step budget exhausted";
  let postlog_mismatches =
    if st.finished && st.validate then
      check_postlog st ~single_process:(log.L.nprocs = 1)
    else []
  in
  {
    events = List.rev st.events_rev;
    steps = st.steps;
    output = Buffer.contents st.out;
    fault = !fault;
    overrun;
    postlog_mismatches;
  }
