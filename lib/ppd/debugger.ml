type t = { session : Session.t; mutable focus : int option }

let create session =
  let t = { session; focus = None } in
  t.focus <- Session.error_node session;
  t

let focus t = t.focus

let is_quit line =
  match String.lowercase_ascii (String.trim line) with
  | "quit" | "exit" | "q" -> true
  | _ -> false

let help_text =
  String.concat "\n"
    [
      "commands:";
      "  where                  halt reason and current focus";
      "  focus <node>           move the focus";
      "  why [<node>]           immediate dependences";
      "  slice [<depth>]        backward slice from the focus";
      "  expand <node>          expand a sub-graph or loop node";
      "  graph                  dump the dynamic graph built so far";
      "  node <id>              show one node";
      "  intervals [<pid>]      list log intervals";
      "  log [<pid>]            dump log entries";
      "  races [static]         race detection report (dynamic or static)";
      "  lint [<pass> ...]      static diagnostics (races, deadlocks, ...)";
      "  proto                  communication-protocol analysis (deadlock";
      "                         certificates, must-orderings, orphan comm)";
      "  deadlock               wait-for analysis";
      "  restore <step>         shared store at a machine step";
      "  whatif [p<pid>#<iv>] x=1 ...   what-if replay with overrides";
      "  vars <name>            identifier report from the program database";
      "  stats                  controller statistics";
      "  quit";
    ]

let fmt = Format.asprintf

let node_line t id =
  let g = Controller.graph (Session.controller t.session) in
  fmt "%a" Dyn_graph.pp_node (Dyn_graph.node g id)

let show_where t =
  let halt = Session.explain_halt t.session in
  match t.focus with
  | None -> halt ^ "\nno focus node"
  | Some id -> Printf.sprintf "%s\nfocus: %s" halt (node_line t id)

let show_why t id =
  let ctl = Session.controller t.session in
  let deps = Flowback.dependences ctl id in
  if deps = [] then node_line t id ^ "\n  (no dependences)"
  else
    let g = Controller.graph ctl in
    node_line t id
    :: List.map
         (fun (d : Flowback.dep) ->
           fmt "  <- %s #%d %s"
             (match d.d_kind with
             | Dyn_graph.Data v -> "data:" ^ v.Lang.Prog.vname
             | Dyn_graph.Dparam 0 -> "returns"
             | Dyn_graph.Dparam i -> Printf.sprintf "param:%%%d" i
             | Dyn_graph.Control -> "ctrl"
             | Dyn_graph.Sync -> "sync"
             | Dyn_graph.Flow -> "flow")
             d.d_node
             (Dyn_graph.node g d.d_node).Dyn_graph.nd_label)
         deps
    |> String.concat "\n"

let show_slice t id depth =
  let ctl = Session.controller t.session in
  let deps = Flowback.backward_slice ?max_depth:depth ctl id in
  let g = Controller.graph ctl in
  List.map
    (fun (d : Flowback.dep) ->
      fmt "%*s#%d %s" (2 * d.d_depth) "" d.d_node
        (Dyn_graph.node g d.d_node).Dyn_graph.nd_label)
    deps
  |> String.concat "\n"

let parse_overrides words =
  List.fold_left
    (fun acc w ->
      match acc with
      | Error _ -> acc
      | Ok l -> (
        match String.index_opt w '=' with
        | Some i -> (
          let name = String.sub w 0 i in
          let v = String.sub w (i + 1) (String.length w - i - 1) in
          match int_of_string_opt v with
          | Some n -> Ok ((name, n) :: l)
          | None -> Error (Printf.sprintf "bad value in %s" w))
        | None -> Error (Printf.sprintf "expected name=value, got %s" w)))
    (Ok []) words
  |> Result.map List.rev

let parse_target w =
  (* p<pid>#<iv> *)
  if String.length w >= 4 && w.[0] = 'p' then
    match String.index_opt w '#' with
    | Some i -> (
      match
        ( int_of_string_opt (String.sub w 1 (i - 1)),
          int_of_string_opt (String.sub w (i + 1) (String.length w - i - 1)) )
      with
      | Some pid, Some iv -> Some (pid, iv)
      | _ -> None)
    | None -> None
  else None

let show_whatif t words =
  let target, overrides_words =
    match words with
    | w :: rest when parse_target w <> None -> (parse_target w, rest)
    | rest -> (None, rest)
  in
  let pid, iv_id =
    match target with
    | Some (pid, iv) -> (pid, iv)
    | None -> (
      ( 0,
        let ivs = Trace.Log.intervals (Session.log t.session) ~pid:0 in
        (Array.to_list ivs
        |> List.find (fun iv -> iv.Trace.Log.iv_parent = None))
          .Trace.Log.iv_id ))
  in
  match parse_overrides overrides_words with
  | Error e -> e
  | Ok overrides -> (
    match Session.what_if t.session ~pid ~iv_id ~overrides with
    | Error e -> e
    | Ok o ->
      let lines =
        [
          Printf.sprintf "what-if on p%d#%d: %d events" pid iv_id
            (List.length o.Emulator.events);
        ]
        @ (match o.Emulator.fault with
          | Some f -> [ "halted: " ^ f ]
          | None -> [])
        @
        if o.Emulator.output = "" then []
        else [ "output: " ^ String.trim o.Emulator.output ]
      in
      String.concat "\n" lines)

let show_intervals t pid =
  let p = Session.prog t.session in
  let log = Session.log t.session in
  let pids =
    match pid with Some pid -> [ pid ] | None -> List.init log.Trace.Log.nprocs Fun.id
  in
  List.concat_map
    (fun pid ->
      let ivs =
        Trace.Log.intervals
          ~stmt_fid:(fun sid -> p.Lang.Prog.stmt_fid.(sid))
          log ~pid
      in
      Array.to_list ivs
      |> List.map (fun (iv : Trace.Log.interval) ->
             Printf.sprintf "p%d#%d %s seq[%d,%s)%s" pid iv.iv_id
               (fmt "%a" Trace.Log.pp_block iv.iv_block)
               iv.iv_seq_start
               (match iv.iv_seq_end with
               | Some e -> string_of_int e
               | None -> "open")
               (match iv.iv_parent with
               | Some par -> Printf.sprintf " in #%d" par
               | None -> "")))
    pids
  |> String.concat "\n"

let eval t line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let int_arg = function w :: _ -> int_of_string_opt w | [] -> None in
  let with_node args k =
    match (int_arg args, t.focus) with
    | Some id, _ | None, Some id -> k id
    | None, None -> "no focus node; use `focus <node>`"
  in
  if is_quit line then "bye"
  else
    match words with
    | [] | [ "help" ] -> help_text
    | "where" :: _ -> show_where t
    | "focus" :: rest -> (
      match int_arg rest with
      | Some id ->
        t.focus <- Some id;
        node_line t id
      | None -> "usage: focus <node>")
    | "why" :: rest -> with_node rest (fun id -> show_why t id)
    | "slice" :: rest ->
      with_node [] (fun id -> show_slice t id (int_arg rest))
    | "expand" :: rest ->
      with_node rest (fun id ->
          match Controller.expand_subgraph (Session.controller t.session) id with
          | Some _ -> "expanded:\n" ^ show_why t id
          | None -> "nothing to expand (not a collapsed call/loop node)")
    | "graph" :: _ ->
      fmt "%a" Dyn_graph.pp (Controller.graph (Session.controller t.session))
    | "node" :: rest -> with_node rest (fun id -> node_line t id)
    | "intervals" :: rest -> show_intervals t (int_arg rest)
    | "log" :: rest -> (
      let log = Session.log t.session in
      let p = Session.prog t.session in
      match int_arg rest with
      | Some pid when pid >= 0 && pid < log.Trace.Log.nprocs ->
        Array.to_list log.Trace.Log.entries.(pid)
        |> List.map (fun e -> fmt "%a" (Trace.Log.pp_entry p) e)
        |> String.concat "\n"
      | _ -> fmt "%a" (Trace.Log.pp p) log)
    | "races" :: "static" :: _ ->
      let p = Session.prog t.session in
      fmt "%a" (Analysis.Static_race.pp_report p) (Analysis.Static_race.analyze p)
    | "lint" :: rest ->
      let p = Session.prog t.session in
      let only = match rest with [] -> None | names -> Some names in
      (match Analysis.Lint.run ?only p with
      | diags -> fmt "%a" Lang.Diag.pp_human diags
      | exception Analysis.Lint.Unknown_pass n ->
        Printf.sprintf "unknown lint pass '%s'; available: %s" n
          (String.concat ", " Analysis.Lint.pass_names))
    | "races" :: _ ->
      let pd = Session.pardyn t.session in
      fmt "%a" (Race.pp_report pd) (Session.races t.session)
    | "proto" :: _ ->
      let p = Session.prog t.session in
      fmt "%a" Analysis.Proto.pp (Analysis.Proto.analyze p)
    | "deadlock" :: _ ->
      fmt "%a" (Deadlock.pp (Session.prog t.session)) (Session.deadlock t.session)
    | "restore" :: rest -> (
      match int_arg rest with
      | None -> "usage: restore <step>"
      | Some step ->
        let p = Session.prog t.session in
        let snap = Restore.shared_at p (Session.log t.session) ~step in
        Array.to_list p.Lang.Prog.globals
        |> List.mapi (fun slot (v : Lang.Prog.var) ->
               Printf.sprintf "%s = %s" v.vname
                 (Runtime.Value.to_string snap.Restore.globals.(slot)))
        |> String.concat "\n")
    | "whatif" :: rest -> show_whatif t rest
    | "vars" :: name :: _ ->
      let p = Session.prog t.session in
      let db = Analysis.Progdb.build p in
      fmt "%a" (Analysis.Progdb.pp_var_report db) name
    | "stats" :: _ ->
      let st = Controller.stats (Session.controller t.session) in
      Printf.sprintf "emulated %d of %d intervals (%d replay steps)%s"
        st.Controller.replays st.Controller.intervals_total
        st.Controller.replay_steps
        (if st.Controller.holes > 0 then
           Printf.sprintf ", %d hole(s)" st.Controller.holes
         else "")
    | cmd :: _ -> Printf.sprintf "unknown command %s\n%s" cmd help_text
