(** Build dynamic-graph fragments from (re-generated) event streams.

    Feed the events of one log interval — from the emulation package or
    a full trace — and the builder adds the corresponding nodes and
    dependence edges to a {!Dyn_graph.t}:

    - data dependences by tracking the last definition of each variable
      (globals in a table shared across frames, locals per frame scope);
      a read whose definition lies outside the fragment becomes an
      {e external} node recorded on the graph's frontier, which the
      controller later resolves against other intervals or processes;
    - dynamic control dependences from the nearest executed instance of
      the statement's static control parent ({!Analysis.Static_pdg});
    - call statements become sub-graph nodes with the §4.2
      actual/formal parameter mapping: fictional [%n] nodes for
      expression arguments, [Dparam] edges into the callee's formal
      parameter nodes when the callee is expanded, and a [%0] edge
      carrying the returned value back to the sub-graph node;
    - synchronization events become ref-carrying nodes; their incoming
      cross-process edges are connected immediately when the partner
      node is already in the graph, or recorded as pending links
      resolved when more fragments are built. *)

type t

val create : Analysis.Static_pdg.program_pdgs -> Dyn_graph.t -> pid:int -> t
(** A builder for one process's event stream, adding to the (possibly
    shared) graph. *)

val feed : t -> seq:int -> Runtime.Event.t -> unit

val last_node : t -> int option
(** The node created by the most recently fed event. *)

val pending_links : t -> (Runtime.Event.eref * int) list
(** Cross-process sync links whose source node is not in the graph yet:
    [(source event, target node)]. *)

val resolve_links : t -> unit
(** Connect any pending links whose source has appeared since. *)

val build_from_outcome :
  Analysis.Static_pdg.program_pdgs ->
  Dyn_graph.t ->
  interval:Trace.Log.interval ->
  Emulator.outcome ->
  t
(** Assemble the fragment for an interval from an already-computed
    replay outcome (possibly produced on another domain): seed the
    scope, feed every event, resolve pending sync links. Equivalent to
    the feeding {!build_interval} performs — replay never reads the
    graph, so replay-then-feed and feed-during-replay build identical
    graphs. *)

val build_interval :
  Analysis.Static_pdg.program_pdgs ->
  Analysis.Eblock.t ->
  Trace.Log.t ->
  Dyn_graph.t ->
  interval:Trace.Log.interval ->
  t * Emulator.outcome
(** Convenience: replay the interval and feed every event. *)
