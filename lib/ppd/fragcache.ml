(* Shared replayed-fragment cache (DESIGN §14, §17).

   One instance per opened log identity: every controller debugging
   that log — across daemon sessions, across requests — publishes the
   raw replay outcomes it produces and consults the cache before
   replaying. Outcomes are pure functions of (log, e-block analysis,
   interval), so sharing them across sessions is safe; only *clean*
   outcomes are published (no injected fault, no watchdog overrun), so
   one session's degraded holes can never leak into another session's
   answers.

   With a [Resil.Budget] attached, every insert charges a byte
   estimate and triggers a rebalance; the registered reclaimer calls
   {!reclaim}, which evicts in ascending replay-cost-per-byte order —
   the outcomes that are big but cheap to recompute go first, the
   small expensive ones are kept. Eviction is always safe: a future
   lookup just replays the interval again.

   The hit/miss counters are plain atomics, always live (unlike the
   Obs mirrors, which are no-ops until profiling is enabled): the T13
   bench and the `serverStats` method read exact numbers from here. *)

type stats = { hits : int; misses : int; inserts : int }

type entry = {
  e_outcome : Emulator.outcome;
  e_bytes : int;  (* charged estimate *)
  e_steps : int;  (* replay cost: what eviction throws away *)
}

(* Keys carry the *source tier* of the session that produced the
   outcome ("content" or "order"), not just (pid, iv_id): an order-tier
   session debugs a reconstructed log whose value snapshots are
   re-derived rather than recorded, so its outcomes are never exchanged
   with a content-tier session on the same registry identity — the two
   populations stay separate even if a registry ever maps both to one
   cache instance. *)
type t = {
  lock : Mutex.t;
  tbl : (string * int * int, entry) Hashtbl.t;
  budget : Resil.Budget.t option;
  bytes : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  inserts : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?budget () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    budget;
    bytes = Atomic.make 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    inserts = Atomic.make 0;
    evictions = Atomic.make 0;
  }

(* A coarse in-memory cost for one outcome: events dominate (boxed
   (seq, event) pairs on a list), plus the regenerated output string
   and a fixed overhead for the record and the table slot. *)
let cost_bytes (o : Emulator.outcome) =
  (List.length o.Emulator.events * 48) + String.length o.Emulator.output + 96

let find t key =
  Mutex.lock t.lock;
  let o = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.lock;
  (match o with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  Option.map (fun e -> e.e_outcome) o

(* Publish a clean outcome. Failed or truncated replays stay private to
   the controller that saw them: a transient fault or a tight watchdog
   budget is that session's business, not the log's. The budget charge
   and rebalance run *after* the table lock is released — the
   rebalance walk re-enters this cache through {!reclaim}. *)
let publish t key (o : Emulator.outcome) =
  if o.Emulator.fault = None && not o.Emulator.overrun then begin
    let cost = cost_bytes o in
    Mutex.lock t.lock;
    let inserted =
      if Hashtbl.mem t.tbl key then false
      else begin
        Hashtbl.replace t.tbl key
          { e_outcome = o; e_bytes = cost; e_steps = o.Emulator.steps };
        Atomic.incr t.inserts;
        ignore (Atomic.fetch_and_add t.bytes cost);
        true
      end
    in
    Mutex.unlock t.lock;
    match t.budget with
    | Some b when inserted ->
      Resil.Budget.charge b cost;
      Resil.Budget.rebalance b
    | _ -> ()
  end

(* Evict up to [want] accounted bytes, cheapest-to-recompute-per-byte
   first. Returns the bytes actually freed; releases them from the
   attached budget itself (the [Resil.Budget] reclaimer contract). *)
let reclaim t want =
  if want <= 0 then 0
  else begin
    Mutex.lock t.lock;
    let entries = Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl [] in
    let ranked =
      List.sort
        (fun (_, a) (_, b) ->
          compare
            (float_of_int a.e_steps /. float_of_int a.e_bytes)
            (float_of_int b.e_steps /. float_of_int b.e_bytes))
        entries
    in
    let freed = ref 0 in
    List.iter
      (fun (k, e) ->
        if !freed < want then begin
          Hashtbl.remove t.tbl k;
          freed := !freed + e.e_bytes;
          Atomic.incr t.evictions
        end)
      ranked;
    ignore (Atomic.fetch_and_add t.bytes (- !freed));
    Mutex.unlock t.lock;
    (match t.budget with
    | Some b -> Resil.Budget.release b !freed
    | None -> ());
    !freed
  end

let clear t = ignore (reclaim t max_int)

let mem t key =
  Mutex.lock t.lock;
  let m = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  m

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let bytes t = Atomic.get t.bytes

let evictions t = Atomic.get t.evictions

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    inserts = Atomic.get t.inserts;
  }

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
