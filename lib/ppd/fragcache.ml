(* Shared replayed-fragment cache (DESIGN §14).

   One instance per opened log identity: every controller debugging
   that log — across daemon sessions, across requests — publishes the
   raw replay outcomes it produces and consults the cache before
   replaying. Outcomes are pure functions of (log, e-block analysis,
   interval), so sharing them across sessions is safe; only *clean*
   outcomes are published (no injected fault, no watchdog overrun), so
   one session's degraded holes can never leak into another session's
   answers.

   The hit/miss counters are plain atomics, always live (unlike the
   Obs mirrors, which are no-ops until profiling is enabled): the T13
   bench and the `serverStats` method read exact numbers from here. *)

type stats = { hits : int; misses : int; inserts : int }

(* Keys carry the *source tier* of the session that produced the
   outcome ("content" or "order"), not just (pid, iv_id): an order-tier
   session debugs a reconstructed log whose value snapshots are
   re-derived rather than recorded, so its outcomes are never exchanged
   with a content-tier session on the same registry identity — the two
   populations stay separate even if a registry ever maps both to one
   cache instance. *)
type t = {
  lock : Mutex.t;
  tbl : (string * int * int, Emulator.outcome) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  inserts : int Atomic.t;
}

let create () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    inserts = Atomic.make 0;
  }

let find t key =
  Mutex.lock t.lock;
  let o = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.lock;
  (match o with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  o

(* Publish a clean outcome. Failed or truncated replays stay private to
   the controller that saw them: a transient fault or a tight watchdog
   budget is that session's business, not the log's. *)
let publish t key (o : Emulator.outcome) =
  if o.Emulator.fault = None && not o.Emulator.overrun then begin
    Mutex.lock t.lock;
    if not (Hashtbl.mem t.tbl key) then begin
      Hashtbl.replace t.tbl key o;
      Atomic.incr t.inserts
    end;
    Mutex.unlock t.lock
  end

let mem t key =
  Mutex.lock t.lock;
  let m = Hashtbl.mem t.tbl key in
  Mutex.unlock t.lock;
  m

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.lock;
  n

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    inserts = Atomic.get t.inserts;
  }

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
