(** One-stop debugging sessions: the three phases of §3.2 in one call.

    [run src] performs the preparatory phase (compile + semantic
    analyses + e-block construction), the execution phase (instrumented
    run producing the log, and optionally the runtime parallel-dynamic
    -graph observer with shared access sets), and hands back everything
    the debugging phase needs: the halt status, the log, a lazily
    created {!Controller}, race detection and deadlock analysis. *)

type t

val run :
  ?engine:Runtime.Machine.engine ->
  ?sched:Runtime.Sched.policy ->
  ?max_steps:int ->
  ?policy:Analysis.Eblock.policy ->
  ?race_sets:bool ->
  ?breakpoints:int list ->
  ?log_sink:Trace.Logger.sink ->
  ?log_order:bool ->
  ?ckpt_every:int ->
  ?jobs:int ->
  ?ctl_config:Controller.config ->
  string ->
  t
(** Compile and execute MPL source with logging attached.
    [race_sets] (default [true]) also attaches the {!Pardyn.observer}
    so races can be detected; switch it off to measure pure logging
    overhead. [log_sink] additionally streams every log entry out as it
    is produced (e.g. a {!Store.Segment.Writer} appending the durable
    segment file). [jobs] (default [1]) sets the size of the domain
    pool the debugging phase may replay intervals on; [1] is the
    serial path and both build byte-identical graphs. [ctl_config]
    sets the controller's degraded-mode policy (retries, watchdog,
    hole declaration — see {!Controller.config}). [log_order] (default
    [false]) records an order-tier log instead of a content log (DESIGN
    §16): only the sync-event partial order plus a checkpoint every
    [ckpt_every] machine steps ({!Trace.Logger.default_ckpt_every}) —
    the debugging phase then reconstructs the content log by validated
    re-execution on first use of the controller. Raises
    {!Lang.Diag.Error} on front-end errors, [Invalid_argument] when
    [log_order] is combined with a scripted/guided scheduler (no spec
    string to record). *)

val of_program :
  ?engine:Runtime.Machine.engine ->
  ?sched:Runtime.Sched.policy ->
  ?max_steps:int ->
  ?policy:Analysis.Eblock.policy ->
  ?race_sets:bool ->
  ?breakpoints:int list ->
  ?log_sink:Trace.Logger.sink ->
  ?log_order:bool ->
  ?ckpt_every:int ->
  ?jobs:int ->
  ?ctl_config:Controller.config ->
  Lang.Prog.t ->
  t
(** [breakpoints] halt the machine after any of the given statements
    executes (user intervention, §3.2.2); the debugging phase then
    starts from that event. *)

val prog : t -> Lang.Prog.t

val eblocks : t -> Analysis.Eblock.t

val halt : t -> Runtime.Machine.halt

val machine : t -> Runtime.Machine.t

val output : t -> string

val log : t -> Trace.Log.t

val controller : t -> Controller.t
(** Created on first use; cached. When the session was created with
    [jobs > 1], the controller gets a domain pool of that size. *)

val shutdown : t -> unit
(** Join the session's pool domains, if a pool was created. Idempotent
    (a closed session never joins or creates a pool again), and the
    controller keeps answering queries afterwards: the pool is detached
    first, so later [build_interval]s replay serially instead of
    raising on a shut-down pool. *)

val close : t -> unit
(** Alias of {!shutdown} — the registry-facing name. *)

val closed : t -> bool

val pardyn : t -> Pardyn.t
(** With access sets when [race_sets] was on; otherwise from the log. *)

val races : t -> Race.race list

val deadlock : t -> Deadlock.analysis

val error_node : t -> int option
(** The dynamic-graph node at which debugging starts: the last event of
    the faulting process (for faults), or of the main process
    otherwise. *)

val explain_halt : t -> string
(** One-paragraph description of why execution stopped. *)

val what_if :
  t ->
  pid:int ->
  iv_id:int ->
  overrides:(string * int) list ->
  (Emulator.outcome, string) result
(** §5.7's experiment: re-execute one log interval from its restored
    prelog state with some variables forced to new values, and observe
    the divergent behaviour (output, fault, final values) — without
    touching the recorded execution. Variable names resolve to the
    interval's function locals first, then shared globals; unknown
    names yield [Error]. *)
