module P = Lang.Prog
module E = Runtime.Event
module V = Runtime.Value
module SP = Analysis.Static_pdg

type scope = {
  sc_fid : int;
  sc_owner : int option;  (* sub-graph node owning the members *)
  sc_entry : int;
  sc_local_def : (int, int) Hashtbl.t;  (* vid -> node *)
  sc_last_pred : (int, int) Hashtbl.t;  (* predicate sid -> node instance *)
  mutable sc_open_calls : (int * int) list;  (* call sid -> sub-graph node *)
  mutable sc_open_loops : (int * int) list;  (* loop sid -> loop node *)
  mutable sc_last_return : int option;
}

type t = {
  pdgs : SP.program_pdgs;
  g : Dyn_graph.t;
  pid : int;
  mutable scopes : scope list;
  glob_def : (int, int) Hashtbl.t;  (* global vid -> node *)
  mutable last : int option;
  mutable pending : (E.eref * int) list;
  mutable popped_return : int option;
      (* return node of the callee just left, for the %0 edge *)
}

let create pdgs g ~pid =
  {
    pdgs;
    g;
    pid;
    scopes = [];
    glob_def = Hashtbl.create 32;
    last = None;
    pending = [];
    popped_return = None;
  }

let last_node t = t.last

let pending_links t = t.pending

let prog t = t.pdgs.SP.prog

let cur_scope t =
  match t.scopes with
  | [] -> invalid_arg "Builder: no open scope (stream must start with enter)"
  | s :: _ -> s

let flow_to t node =
  (match t.last with
  | Some prev -> Dyn_graph.add_edge t.g ~src:prev ~dst:node ~kind:Dyn_graph.Flow
  | None -> ());
  t.last <- Some node

(* Resolve the defining node of a read; creates a frontier node when
   the definition lies outside the fragment. *)
let resolve_read t (rw : E.rw) =
  let v = rw.var in
  let sc = cur_scope t in
  let table = if P.is_global v then t.glob_def else sc.sc_local_def in
  match Hashtbl.find_opt table v.vid with
  | Some node -> node
  | None ->
    let node =
      Dyn_graph.add_node t.g ?owner:sc.sc_owner ~value:rw.value ~pid:t.pid
        ~kind:(Dyn_graph.N_external v)
        ~label:(v.vname ^ " (external)")
        ()
    in
    Dyn_graph.mark_external t.g node v;
    Hashtbl.replace table v.vid node;
    node

let data_edges t node reads =
  (* one edge per distinct variable *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (rw : E.rw) ->
      if not (Hashtbl.mem seen rw.var.P.vid) then begin
        Hashtbl.add seen rw.var.P.vid ();
        let src = resolve_read t rw in
        Dyn_graph.add_edge t.g ~src ~dst:node ~kind:(Dyn_graph.Data rw.var)
      end)
    reads

let record_write t node (w : E.rw option) =
  match w with
  | None -> ()
  | Some { var; _ } ->
    let sc = cur_scope t in
    let table = if P.is_global var then t.glob_def else sc.sc_local_def in
    Hashtbl.replace table var.vid node

(* Dynamic control dependence: the latest executed instance of the
   statement's static control parent. *)
let control_edge t node sid =
  let sc = cur_scope t in
  let pdg = t.pdgs.SP.pdgs.(sc.sc_fid) in
  let cfg = t.pdgs.SP.cfgs.(sc.sc_fid) in
  let cnode = cfg.Analysis.Cfg.node_of_sid.(sid) in
  if cnode >= 0 then
    let parents = SP.control_parents pdg cnode in
    List.iter
      (fun (src, _label) ->
        match Analysis.Cfg.kind cfg src with
        | Analysis.Cfg.Entry ->
          Dyn_graph.add_edge t.g ~src:sc.sc_entry ~dst:node
            ~kind:Dyn_graph.Control
        | Analysis.Cfg.Stmt ps -> (
          match Hashtbl.find_opt sc.sc_last_pred ps.P.sid with
          | Some inst ->
            Dyn_graph.add_edge t.g ~src:inst ~dst:node ~kind:Dyn_graph.Control
          | None ->
            (* should not happen inside a complete interval; fall back *)
            Dyn_graph.add_edge t.g ~src:sc.sc_entry ~dst:node
              ~kind:Dyn_graph.Control)
        | Analysis.Cfg.Exit -> ())
      parents

let sync_link t ~src ~dst =
  match Dyn_graph.find_ref t.g src with
  | Some n -> Dyn_graph.add_edge t.g ~src:n ~dst ~kind:Dyn_graph.Sync
  | None -> t.pending <- (src, dst) :: t.pending

let resolve_links t =
  let unresolved = ref [] in
  List.iter
    (fun (src, dst) ->
      match Dyn_graph.find_ref t.g src with
      | Some n -> Dyn_graph.add_edge t.g ~src:n ~dst ~kind:Dyn_graph.Sync
      | None -> unresolved := (src, dst) :: !unresolved)
    t.pending;
  t.pending <- !unresolved

let open_scope t ~fid ~owner ~entry ~binds ~from_sub =
  let sc =
    {
      sc_fid = fid;
      sc_owner = owner;
      sc_entry = entry;
      sc_local_def = Hashtbl.create 16;
      sc_last_pred = Hashtbl.create 8;
      sc_open_calls = [];
      sc_open_loops = [];
      sc_last_return = None;
    }
  in
  t.scopes <- sc :: t.scopes;
  List.iteri
    (fun i ((v : P.var), value) ->
      let pnode =
        Dyn_graph.add_node t.g ?owner ~value ~pid:t.pid
          ~kind:(Dyn_graph.N_param (i + 1))
          ~label:(Printf.sprintf "%%%d (%s)" (i + 1) v.vname)
          ()
      in
      (match from_sub with
      | Some sub ->
        Dyn_graph.add_edge t.g ~src:sub ~dst:pnode
          ~kind:(Dyn_graph.Dparam (i + 1))
      | None ->
        Dyn_graph.add_edge t.g ~src:entry ~dst:pnode
          ~kind:(Dyn_graph.Dparam (i + 1)));
      Hashtbl.replace sc.sc_local_def v.vid pnode)
    binds

let stmt_of_sid t sid = (prog t).stmts.(sid)

let feed t ~seq (ev : E.t) =
  let ref_ = { E.epid = t.pid; eseq = seq } in
  match ev with
  | E.E_proc_start { fid; binds; spawn } ->
    let entry =
      Dyn_graph.add_node t.g ~ref_ ~pid:t.pid ~kind:(Dyn_graph.N_entry fid)
        ~label:(Printf.sprintf "ENTRY %s" (prog t).funcs.(fid).fname)
        ()
    in
    (match spawn with Some r -> sync_link t ~src:r ~dst:entry | None -> ());
    open_scope t ~fid ~owner:None ~entry ~binds ~from_sub:None;
    flow_to t entry
  | E.E_enter { fid; call_sid; binds } ->
    let sub =
      match (t.scopes, call_sid) with
      | sc :: _, Some sid -> List.assoc_opt sid sc.sc_open_calls
      | _, _ -> None
    in
    let entry =
      Dyn_graph.add_node t.g ~ref_ ?owner:sub ~pid:t.pid
        ~kind:(Dyn_graph.N_entry fid)
        ~label:(Printf.sprintf "ENTRY %s" (prog t).funcs.(fid).fname)
        ()
    in
    (match sub with
    | Some s -> Dyn_graph.add_edge t.g ~src:s ~dst:entry ~kind:Dyn_graph.Control
    | None -> ());
    open_scope t ~fid ~owner:sub ~entry ~binds ~from_sub:sub;
    flow_to t entry
  | E.E_leave _ -> (
    match t.scopes with
    | sc :: rest ->
      t.popped_return <- sc.sc_last_return;
      t.scopes <- rest
    | [] -> ())
  | E.E_proc_exit { fid; _ } ->
    let sc_owner = match t.scopes with sc :: _ -> sc.sc_owner | [] -> None in
    let exit_node =
      Dyn_graph.add_node t.g ~ref_ ?owner:sc_owner ~pid:t.pid
        ~kind:(Dyn_graph.N_exit fid)
        ~label:(Printf.sprintf "EXIT %s" (prog t).funcs.(fid).fname)
        ()
    in
    flow_to t exit_node;
    (match t.scopes with _ :: rest -> t.scopes <- rest | [] -> ())
  | E.E_loop_enter { sid } ->
    let sc = cur_scope t in
    let stmt = stmt_of_sid t sid in
    let node =
      Dyn_graph.add_node t.g ~ref_ ?owner:sc.sc_owner ~pid:t.pid
        ~kind:(Dyn_graph.N_loop sid)
        ~label:(Printf.sprintf "while %s" (P.stmt_label stmt))
        ()
    in
    control_edge t node sid;
    flow_to t node;
    sc.sc_open_loops <- (sid, node) :: sc.sc_open_loops
  | E.E_loop_exit { sid; writes } -> (
    let sc = cur_scope t in
    match List.assoc_opt sid sc.sc_open_loops with
    | None -> ()
    | Some lnode -> (
      sc.sc_open_loops <- List.remove_assoc sid sc.sc_open_loops;
      t.last <- Some lnode;
      match writes with
      | None -> ()
      | Some ws ->
        (* skipped loop e-block: the collapsed node defines its writes *)
        List.iter
          (fun ((v : P.var), _) ->
            let table = if P.is_global v then t.glob_def else sc.sc_local_def in
            Hashtbl.replace table v.vid lnode)
          ws))
  | E.E_stmt { sid; reads; write; kind } -> (
    let stmt = stmt_of_sid t sid in
    let label = P.stmt_label stmt in
    let singular ?value () =
      let sc = cur_scope t in
      let node =
        Dyn_graph.add_node t.g ~ref_ ?owner:sc.sc_owner ?value ~pid:t.pid
          ~kind:(Dyn_graph.N_singular sid)
          ~label ()
      in
      data_edges t node reads;
      control_edge t node sid;
      flow_to t node;
      node
    in
    match kind with
    | E.K_assign ->
      let value = Option.map (fun (w : E.rw) -> w.value) write in
      let node = singular ?value () in
      record_write t node write
    | E.K_pred b ->
      let node = singular ~value:(V.Vint (if b then 1 else 0)) () in
      (cur_scope t).sc_last_pred |> fun tbl -> Hashtbl.replace tbl sid node
    | E.K_print { value } -> ignore (singular ~value ())
    | E.K_assert { ok } -> ignore (singular ~value:(V.Vint (if ok then 1 else 0)) ())
    | E.K_return { value } ->
      let node = singular ?value () in
      (cur_scope t).sc_last_return <- Some node
    | E.K_call { callee; args } ->
      let sc = cur_scope t in
      let sub =
        Dyn_graph.add_node t.g ~ref_ ?owner:sc.sc_owner ~pid:t.pid
          ~kind:(Dyn_graph.N_subgraph { sid; callee })
          ~label ()
      in
      (* actual-parameter mapping (§4.2) *)
      let cargs =
        match stmt.desc with
        | P.Scall (_, c) | P.Sspawn (_, c) -> c.cargs
        | _ -> []
      in
      List.iteri
        (fun i arg ->
          let idx = i + 1 in
          match (arg : P.expr) with
          | P.Evar v ->
            let src = resolve_read t { E.var = v; value = List.nth args i } in
            Dyn_graph.add_edge t.g ~src ~dst:sub ~kind:(Dyn_graph.Data v)
          | P.Eint _ | P.Ebool _ -> ()
          | P.Eidx _ | P.Eunop _ | P.Ebinop _ ->
            (* fictional node for an expression argument *)
            let fict =
              Dyn_graph.add_node t.g ?owner:sc.sc_owner
                ~value:(List.nth args i) ~pid:t.pid
                ~kind:(Dyn_graph.N_param idx)
                ~label:(Printf.sprintf "%%%d" idx)
                ()
            in
            let seen = Hashtbl.create 4 in
            List.iter
              (fun (v : P.var) ->
                if not (Hashtbl.mem seen v.vid) then begin
                  Hashtbl.add seen v.vid ();
                  (* values of the reads are in the event's read list *)
                  let value =
                    match
                      List.find_opt
                        (fun (rw : E.rw) -> rw.var.P.vid = v.vid)
                        reads
                    with
                    | Some rw -> rw.value
                    | None -> V.Vundef
                  in
                  let src = resolve_read t { E.var = v; value } in
                  Dyn_graph.add_edge t.g ~src ~dst:fict
                    ~kind:(Dyn_graph.Data v)
                end)
              (P.expr_reads arg);
            Dyn_graph.add_edge t.g ~src:fict ~dst:sub
              ~kind:(Dyn_graph.Dparam idx))
        cargs;
      control_edge t sub sid;
      flow_to t sub;
      sc.sc_open_calls <- (sid, sub) :: sc.sc_open_calls
    | E.K_call_return { ret; _ } -> (
      let sc = cur_scope t in
      match List.assoc_opt sid sc.sc_open_calls with
      | None -> ()
      | Some sub ->
        sc.sc_open_calls <- List.remove_assoc sid sc.sc_open_calls;
        (match ret with Some v -> Dyn_graph.set_value t.g sub v | None -> ());
        (match t.popped_return with
        | Some rnode ->
          Dyn_graph.add_edge t.g ~src:rnode ~dst:sub
            ~kind:(Dyn_graph.Dparam 0);
          t.popped_return <- None
        | None -> ());
        record_write t sub write;
        t.last <- Some sub)
    | E.K_p { src; _ } ->
      let node = singular () in
      (match src with Some r -> sync_link t ~src:r ~dst:node | None -> ());
      record_write t node write
    | E.K_v _ -> ignore (singular ())
    | E.K_send { value; _ } -> ignore (singular ~value:(V.Vint value) ())
    | E.K_send_unblocked { by; _ } ->
      let node = singular () in
      sync_link t ~src:by ~dst:node
    | E.K_recv { value; src; _ } ->
      let node = singular ~value:(V.Vint value) () in
      sync_link t ~src ~dst:node;
      record_write t node write
    | E.K_spawn { child; _ } ->
      let node = singular ~value:(V.Vint child) () in
      record_write t node write
    | E.K_join { result; child_exit; _ } ->
      let node = singular ?value:result () in
      sync_link t ~src:child_exit ~dst:node;
      record_write t node write)

(* A builder with its scope seeded for the interval: a loop e-block
   interval replays without an opening enter event, so its nodes hang
   off the loop node of the parent fragment when it exists, or a fresh
   collapsed loop node otherwise. *)
let prepare pdgs g ~interval =
  let pid = interval.Trace.Log.iv_pid in
  let t = create pdgs g ~pid in
  (match interval.Trace.Log.iv_block with
  | Trace.Log.Bfunc _ -> ()
  | Trace.Log.Bloop sid ->
    let prog = pdgs.SP.prog in
    let fid = prog.P.stmt_fid.(sid) in
    let enter_ref =
      { E.epid = pid; eseq = interval.Trace.Log.iv_seq_start - 1 }
    in
    let entry =
      match Dyn_graph.find_ref g enter_ref with
      | Some n -> n
      | None ->
        Dyn_graph.add_node g ~ref_:enter_ref ~pid
          ~kind:(Dyn_graph.N_loop sid)
          ~label:
            (Printf.sprintf "while %s" (P.stmt_label prog.P.stmts.(sid)))
          ()
    in
    open_scope t ~fid ~owner:(Some entry) ~entry ~binds:[] ~from_sub:None;
    t.last <- Some entry);
  t

let build_from_outcome pdgs g ~interval (outcome : Emulator.outcome) =
  let t = prepare pdgs g ~interval in
  List.iter (fun (seq, ev) -> feed t ~seq ev) outcome.Emulator.events;
  resolve_links t;
  t

let build_interval pdgs eb log g ~interval =
  (* replay first, assemble after: the emulation does not read the
     graph, so feeding the finished event list yields the same graph as
     feeding during replay — and lets the replay run on another domain
     (Controller.build_intervals_par) while assembly stays serial *)
  let outcome = Emulator.replay eb log ~interval in
  (build_from_outcome pdgs g ~interval outcome, outcome)
