(** Dynamic program dependence graphs (§4.2).

    Nodes represent {e program events} — one execution of a program
    component: ENTRY/EXIT of a graph, {e singular} nodes (assignment or
    control-predicate executions, associated with the assigned value or
    the predicate outcome), {e sub-graph} nodes encapsulating a
    subroutine execution (associated with the returned value), the
    fictional ["%n"] parameter nodes of §4.2, and {e external} nodes —
    the fragment frontier, standing for values defined outside the part
    of the graph built so far (a previous log interval or another
    process; the controller resolves them on demand, §5.3/§5.6).

    Sub-graph nesting is flat: every member node carries the id of its
    owning sub-graph node ([owner]), so a sub-graph can be rendered
    collapsed or expanded and dependence edges cross boundaries freely.

    Edges follow §4.2: flow (execution order), data dependence (labelled
    with the variable, or the parameter index for actual→formal and
    return-value mapping), control dependence, and synchronization
    edges between processes. *)

type node_kind =
  | N_entry of int  (** fid *)
  | N_exit of int  (** fid *)
  | N_singular of int  (** sid *)
  | N_subgraph of { sid : int; callee : int }
  | N_loop of int
      (** a loop e-block execution (§5.4): collapsed when the loop was
          skipped during replay, expandable like a sub-graph node *)
  | N_param of int  (** parameter index, 1-based; 0 is the return value *)
  | N_external of Lang.Prog.var
  | N_hole of { hole_lo : int; hole_hi : int }
      (** a damaged or unreplayable interval, degraded mode's explicit
          "history unavailable" marker (seq range [lo..hi]) *)

type node = {
  nd_id : int;
  nd_ref : Runtime.Event.eref option;
  nd_kind : node_kind;
  nd_pid : int;
  nd_owner : int option;  (** enclosing sub-graph node *)
  nd_label : string;
  mutable nd_value : Runtime.Value.t option;
}

type edge_kind =
  | Flow
  | Data of Lang.Prog.var
  | Dparam of int  (** actual -> formal (index n), or return value (0) *)
  | Control
  | Sync

type t

val create : unit -> t

val add_node :
  t ->
  ?ref_:Runtime.Event.eref ->
  ?owner:int ->
  ?value:Runtime.Value.t ->
  pid:int ->
  kind:node_kind ->
  label:string ->
  unit ->
  int

val add_edge : t -> src:int -> dst:int -> kind:edge_kind -> unit
(** Idempotent: duplicate (src, dst, kind) edges are ignored. *)

val nnodes : t -> int

val nedges : t -> int

val node : t -> int -> node

val preds : t -> int -> (int * edge_kind) list
(** Incoming dependence edges (the sources this node depends on). *)

val succs : t -> int -> (int * edge_kind) list

val find_ref : t -> Runtime.Event.eref -> int option

val set_value : t -> int -> Runtime.Value.t -> unit

val members : t -> int -> int list
(** Nodes owned by a sub-graph node. *)

val externals : t -> (int * Lang.Prog.var) list
(** Unresolved frontier nodes. *)

val mark_external : t -> int -> Lang.Prog.var -> unit

val resolve_external : t -> int -> unit
(** Remove a node from the frontier once the controller has linked it. *)

val pp_node : Format.formatter -> node -> unit

val pp : Format.formatter -> t -> unit
(** Deterministic textual dump (golden-tested against Figure 4.1). *)

val to_dot : t -> string
(** Graphviz rendering with sub-graphs as clusters. *)
