(** Flowback analysis queries (§1, §4): follow the causal chains behind
    an observed error backward through the dynamic graph, across
    subroutine and process boundaries, without re-executing the
    program (beyond the e-blocks the controller emulates on demand).

    These are the operations the paper's debugger offers the user on the
    inverted dependence tree rooted at the last executed statement. *)

type dep = {
  d_node : int;  (** the depended-on node *)
  d_kind : Dyn_graph.edge_kind;
  d_depth : int;  (** distance from the query root *)
}

val dependences : ?expand_loops:bool -> Controller.t -> int -> dep list
(** Immediate dependence predecessors of a node (data, control, param
    and sync edges — flow edges are not causal and are excluded),
    resolving frontier nodes and cross-process links on demand. *)

val backward_slice :
  ?max_depth:int -> ?expand_loops:bool -> Controller.t -> int -> dep list
(** Breadth-first transitive closure of {!dependences} — the dynamic
    slice of the value at the root. Includes the root at depth 0.
    [max_depth] defaults to unlimited; [expand_loops] (default [false])
    also re-executes collapsed loop e-blocks the slice traverses — by
    default they stay collapsed (§5.4). *)

val pp_explain :
  ?max_depth:int -> Controller.t -> Format.formatter -> int -> unit
(** Render the dependence tree rooted at a node, one line per node with
    its label, value and edge kind — the textual form of the graph the
    PPD controller presents (§3.2.3). *)

val pp_holes : Controller.t -> Format.formatter -> unit
(** One ["history unavailable for pN steps A-B (reason)"] line per
    degraded-mode hole the queries declared, in assembly order; prints
    nothing on a clean run. *)
