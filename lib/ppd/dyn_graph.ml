module P = Lang.Prog

type node_kind =
  | N_entry of int
  | N_exit of int
  | N_singular of int
  | N_subgraph of { sid : int; callee : int }
  | N_loop of int
  | N_param of int
  | N_external of P.var
  | N_hole of { hole_lo : int; hole_hi : int }

type node = {
  nd_id : int;
  nd_ref : Runtime.Event.eref option;
  nd_kind : node_kind;
  nd_pid : int;
  nd_owner : int option;
  nd_label : string;
  mutable nd_value : Runtime.Value.t option;
}

type edge_kind = Flow | Data of P.var | Dparam of int | Control | Sync

type t = {
  mutable nodes : node array;
  mutable preds_ : (int * edge_kind) list array;
  mutable succs_ : (int * edge_kind) list array;
  mutable n : int;
  mutable nedges : int;
  by_ref : (Runtime.Event.eref, int) Hashtbl.t;
  mutable externals_ : (int * P.var) list;
}

let create () =
  {
    nodes = [||];
    preds_ = [||];
    succs_ = [||];
    n = 0;
    nedges = 0;
    by_ref = Hashtbl.create 64;
    externals_ = [];
  }

let grow t =
  let cap = Array.length t.nodes in
  if t.n >= cap then begin
    let ncap = max 16 (2 * cap) in
    let dummy =
      {
        nd_id = -1;
        nd_ref = None;
        nd_kind = N_entry (-1);
        nd_pid = -1;
        nd_owner = None;
        nd_label = "";
        nd_value = None;
      }
    in
    let nodes = Array.make ncap dummy in
    Array.blit t.nodes 0 nodes 0 cap;
    t.nodes <- nodes;
    let preds = Array.make ncap [] in
    Array.blit t.preds_ 0 preds 0 cap;
    t.preds_ <- preds;
    let succs = Array.make ncap [] in
    Array.blit t.succs_ 0 succs 0 cap;
    t.succs_ <- succs
  end

let add_node t ?ref_ ?owner ?value ~pid ~kind ~label () =
  grow t;
  let id = t.n in
  t.n <- t.n + 1;
  t.nodes.(id) <-
    {
      nd_id = id;
      nd_ref = ref_;
      nd_kind = kind;
      nd_pid = pid;
      nd_owner = owner;
      nd_label = label;
      nd_value = value;
    };
  (match ref_ with Some r -> Hashtbl.replace t.by_ref r id | None -> ());
  id

let edge_kind_equal a b =
  match (a, b) with
  | Flow, Flow | Control, Control | Sync, Sync -> true
  | Data v, Data w -> v.P.vid = w.P.vid
  | Dparam i, Dparam j -> i = j
  | (Flow | Data _ | Dparam _ | Control | Sync), _ -> false

let add_edge t ~src ~dst ~kind =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Dyn_graph.add_edge: bad node id";
  let dup =
    List.exists
      (fun (s, k) -> s = src && edge_kind_equal k kind)
      t.preds_.(dst)
  in
  if not dup then begin
    t.preds_.(dst) <- (src, kind) :: t.preds_.(dst);
    t.succs_.(src) <- (dst, kind) :: t.succs_.(src);
    t.nedges <- t.nedges + 1
  end

let nnodes t = t.n

let nedges t = t.nedges

let node t i =
  if i < 0 || i >= t.n then invalid_arg "Dyn_graph.node" else t.nodes.(i)

let preds t i = List.rev t.preds_.(i)

let succs t i = List.rev t.succs_.(i)

let find_ref t r = Hashtbl.find_opt t.by_ref r

let set_value t i v = (node t i).nd_value <- Some v

let members t sub =
  let out = ref [] in
  for i = t.n - 1 downto 0 do
    if t.nodes.(i).nd_owner = Some sub then out := i :: !out
  done;
  !out

let externals t = t.externals_

let mark_external t id var = t.externals_ <- (id, var) :: t.externals_

let resolve_external t id =
  t.externals_ <- List.filter (fun (i, _) -> i <> id) t.externals_

let pp_kind ppf = function
  | N_entry fid -> Format.fprintf ppf "entry(f%d)" fid
  | N_exit fid -> Format.fprintf ppf "exit(f%d)" fid
  | N_singular sid -> Format.fprintf ppf "s%d" sid
  | N_subgraph { sid; callee } -> Format.fprintf ppf "sub(s%d,f%d)" sid callee
  | N_loop sid -> Format.fprintf ppf "loop(s%d)" sid
  | N_param i -> Format.fprintf ppf "%%%d" i
  | N_external v -> Format.fprintf ppf "ext(%s)" v.P.vname
  | N_hole { hole_lo; hole_hi } ->
    Format.fprintf ppf "hole(%d-%d)" hole_lo hole_hi

let pp_node ppf n =
  Format.fprintf ppf "#%d p%d %a \"%s\"" n.nd_id n.nd_pid pp_kind n.nd_kind
    n.nd_label;
  (match n.nd_value with
  | None -> ()
  | Some v -> Format.fprintf ppf " = %a" Runtime.Value.pp v);
  match n.nd_owner with
  | None -> ()
  | Some o -> Format.fprintf ppf " in #%d" o

let pp_edge_kind ppf = function
  | Flow -> Format.pp_print_string ppf "flow"
  | Data v -> Format.fprintf ppf "data:%s" v.P.vname
  | Dparam i -> Format.fprintf ppf "param:%%%d" i
  | Control -> Format.pp_print_string ppf "ctrl"
  | Sync -> Format.pp_print_string ppf "sync"

let pp ppf t =
  Format.fprintf ppf "@[<v>dynamic graph (%d nodes, %d edges):" t.n t.nedges;
  for i = 0 to t.n - 1 do
    Format.fprintf ppf "@,%a" pp_node t.nodes.(i);
    let incoming = preds t i in
    List.iter
      (fun (src, k) -> Format.fprintf ppf "@,   <- #%d [%a]" src pp_edge_kind k)
      incoming
  done;
  Format.fprintf ppf "@]"

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_dot t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph ppd {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  (* group nodes by owner for clusters *)
  let top = ref [] in
  let by_owner = Hashtbl.create 16 in
  for i = 0 to t.n - 1 do
    match t.nodes.(i).nd_owner with
    | None -> top := i :: !top
    | Some o ->
      Hashtbl.replace by_owner o (i :: (Option.value ~default:[] (Hashtbl.find_opt by_owner o)))
  done;
  let emit_node i =
    let n = t.nodes.(i) in
    let shape =
      match n.nd_kind with
      | N_subgraph _ | N_loop _ -> "box"
      | N_external _ -> "diamond"
      | N_hole _ -> "octagon"
      | N_entry _ | N_exit _ -> "plaintext"
      | N_singular _ | N_param _ -> "ellipse"
    in
    let label =
      match n.nd_value with
      | Some v -> Printf.sprintf "%s = %s" n.nd_label (Runtime.Value.to_string v)
      | None -> n.nd_label
    in
    Buffer.add_string b
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" i (dot_escape label)
         shape)
  in
  List.iter emit_node (List.rev !top);
  Hashtbl.iter
    (fun owner members ->
      Buffer.add_string b
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" owner
           (dot_escape t.nodes.(owner).nd_label));
      List.iter
        (fun i ->
          let n = t.nodes.(i) in
          Buffer.add_string b
            (Printf.sprintf "    n%d [label=\"%s\"];\n" i (dot_escape n.nd_label)))
        (List.rev members);
      Buffer.add_string b "  }\n")
    by_owner;
  for dst = 0 to t.n - 1 do
    List.iter
      (fun (src, k) ->
        let style, label =
          match k with
          | Flow -> ("dotted", "")
          | Data v -> ("solid", v.P.vname)
          | Dparam i -> ("solid", Printf.sprintf "%%%d" i)
          | Control -> ("dashed", "")
          | Sync -> ("bold", "sync")
        in
        Buffer.add_string b
          (Printf.sprintf "  n%d -> n%d [style=%s, label=\"%s\"];\n" src dst
             style (dot_escape label)))
      (preds t dst)
  done;
  Buffer.add_string b "}\n";
  Buffer.contents b
