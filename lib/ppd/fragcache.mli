(** Shared replayed-fragment cache: raw {!Emulator.outcome}s keyed by
    [(tier, pid, iv_id)], shared by every controller debugging the same
    saved log (the `ppd serve` registry keeps one instance per log
    identity and analysis policy, so concurrent sessions hit each
    other's replays). The tier component ("content" or "order", DESIGN
    §16) keeps outcomes produced from a reconstructed order log
    separate from those of a directly-recorded content log.

    Thread- and domain-safe: the table is mutex-protected and the
    counters are atomics. Only clean outcomes (no injected fault, no
    watchdog overrun) are ever published, so a degraded session cannot
    poison its neighbours. *)

type t

type stats = { hits : int; misses : int; inserts : int }

val create : ?budget:Resil.Budget.t -> unit -> t
(** With [budget], every insert charges a byte estimate to it and
    triggers a rebalance (DESIGN §17). The daemon registers
    {!reclaim} as the budget's reclaimer for this cache; eviction is
    always safe — an evicted outcome is just replayed again on the
    next lookup. *)

val find : t -> string * int * int -> Emulator.outcome option
(** Look up an interval's outcome; counts a hit or a miss. *)

val publish : t -> string * int * int -> Emulator.outcome -> unit
(** Insert a clean outcome (first writer wins); failed or overrun
    outcomes are silently dropped. *)

val mem : t -> string * int * int -> bool
(** Presence probe; does not count as a lookup. *)

val size : t -> int
(** Cached outcomes. *)

val bytes : t -> int
(** Accounted byte estimate of everything cached right now. *)

val reclaim : t -> int -> int
(** [reclaim t want] evicts cached outcomes until at least [want]
    accounted bytes are freed (or the cache is empty), in ascending
    replay-cost-per-byte order — big-but-cheap-to-recompute outcomes
    go first. Returns the bytes freed; releases them from the
    attached budget itself. *)

val clear : t -> unit
(** Evict everything (releasing the budget charge). *)

val evictions : t -> int
(** Lifetime evicted-entry count. *)

val stats : t -> stats
(** Exact lifetime counters (always live, independent of {!Obs}). *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.0] before any lookup. *)
