(** Program-state restoration from postlogs (§5.7).

    "The accumulation of the information carried by all the postlogs
    from postlog(1) up to postlog(i) is the same as the information
    carried by the program state at the time postlog(i) is made."

    We restore the shared store by replaying postlog (and sync-prelog)
    value records in global step order up to the requested moment; a
    specific process's locals at an e-block boundary come from that
    block's own postlog. From a restored boundary state, the user can
    re-start execution — optionally with modified values — to
    experiment, which also solves the timely-halt problem the paper
    cites (Miller & Choi '88b): each process can be placed at an
    interesting e-block boundary cheaply. *)

type snapshot = {
  at_step : int;
  globals : Runtime.Value.t array;  (** by global slot *)
  clock : int array;
      (** per-pid count of sync events performed by [at_step] — the
          global sync frontier, re-seeded from the nearest checkpoint
          with strict-boundary semantics (a checkpoint at step S covers
          entries with [step_at <= S]; only strictly later entries are
          re-applied, so boundary sync events are never counted twice) *)
  entries_scanned : int;  (** cost metric for benchmarks T7/T14 *)
}

val shared_at : Lang.Prog.t -> Trace.Log.t -> step:int -> snapshot
(** Shared store as of machine step [step], accurate at e-block and
    synchronization-unit boundaries (exact for race-free executions
    whose writes have been postlogged by [step]). When the log carries
    checkpoints, seeds from the nearest one at or before [step] and
    scans only the tail window, so the cost is bounded by the
    checkpoint interval instead of the log length. *)

val at_interval_end : Lang.Prog.t -> Trace.Log.t -> Trace.Log.interval -> snapshot
(** State right after the interval's postlog. *)

val locals_at_interval_end :
  Lang.Prog.t -> Trace.Log.t -> Trace.Log.interval -> (Lang.Prog.var * Runtime.Value.t) list
(** The block's own frame variables recorded in its postlog. *)

val final : Lang.Prog.t -> Trace.Log.t -> snapshot
(** State at the end of the (halted) execution. *)
