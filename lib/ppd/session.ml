module M = Runtime.Machine

type t = {
  eb : Analysis.Eblock.t;
  halt : M.halt;
  machine : M.t;
  log : Trace.Log.t;
  pardyn_rt : Pardyn.t option;
  jobs : int;
  ctl_config : Controller.config option;
  mutable pool : Exec.Pool.t option;
  mutable ctl : Controller.t option;
  mutable closed : bool;
      (* mirrors the Pool.shutdown joined flag: close is idempotent,
         and a closed session never creates another pool *)
}

let of_program ?(engine = M.Vm_engine) ?(sched = Runtime.Sched.default)
    ?(max_steps = 1_000_000) ?policy ?(race_sets = true) ?breakpoints
    ?log_sink ?(log_order = false) ?ckpt_every ?(jobs = 1) ?ctl_config prog =
  let eb = Analysis.Eblock.analyze ?policy prog in
  (* Order-tier recording (DESIGN §16) must remember how to re-execute:
     the scheduler spec, engine and step budget go into the tier
     metadata so reconstruction can replay the identical run. Only
     nameable schedulers qualify — a scripted/guided policy has no
     spec string and [Sched.string_of_policy] rejects it. *)
  let tier =
    if log_order then
      Trace.Log.T_order
        {
          Trace.Log.o_sched = Runtime.Sched.string_of_policy sched;
          o_engine =
            (match engine with M.Vm_engine -> "vm" | M.Interp_engine -> "interp");
          o_max_steps = max_steps;
        }
    else Trace.Log.T_content
  in
  let logger = Trace.Logger.create ?sink:log_sink ~tier ?ckpt_every eb in
  let obs = if race_sets then Some (Pardyn.observer prog) else None in
  let hooks =
    match obs with
    | None -> Trace.Logger.factory logger
    | Some o -> Runtime.Hooks.both (Trace.Logger.factory logger) (Pardyn.factory o)
  in
  let machine = M.create ~engine ~sched ~max_steps ~hooks ?breakpoints prog in
  let halt = Obs.phase "execution" (fun () -> M.run machine) in
  {
    eb;
    halt;
    machine;
    log = Trace.Logger.finish logger;
    pardyn_rt = Option.map Pardyn.finish obs;
    jobs = max 1 jobs;
    ctl_config;
    pool = None;
    ctl = None;
    closed = false;
  }

let run ?engine ?sched ?max_steps ?policy ?race_sets ?breakpoints ?log_sink
    ?log_order ?ckpt_every ?jobs ?ctl_config src =
  of_program ?engine ?sched ?max_steps ?policy ?race_sets ?breakpoints
    ?log_sink ?log_order ?ckpt_every ?jobs ?ctl_config
    (Lang.Compile.compile src)

let prog t = t.eb.Analysis.Eblock.prog

let eblocks t = t.eb

let halt t = t.halt

let machine t = t.machine

let output t = M.output t.machine

let log t = t.log

let controller t =
  match t.ctl with
  | Some c -> c
  | None ->
    let pool =
      if t.jobs > 1 && not t.closed then begin
        let p = Exec.Pool.create ~jobs:t.jobs () in
        t.pool <- Some p;
        Some p
      end
      else None
    in
    let c = Controller.start ?pool ?config:t.ctl_config t.eb t.log in
    t.ctl <- Some c;
    c

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    (* detach before joining: once the pool is gone the controller
       must fall back to serial replay instead of raising on submit *)
    (match t.ctl with Some c -> Controller.detach_pool c | None -> ());
    (match t.pool with Some p -> Exec.Pool.shutdown p | None -> ());
    t.pool <- None
  end

let close = shutdown

let closed t = t.closed

let pardyn t =
  match t.pardyn_rt with
  | Some pd -> pd
  | None -> Controller.pardyn (controller t)

let races t = (Race.detect (pardyn t)).Race.races

let deadlock t = Deadlock.analyze t.machine

let error_node t =
  let pid =
    match t.halt with
    | M.Fault { pid; _ } | M.Breakpoint { pid; _ } -> pid
    | M.Finished | M.Deadlock _ | M.Out_of_fuel -> 0
  in
  Controller.last_event_node (controller t) ~pid

let what_if t ~pid ~iv_id ~overrides =
  let p = prog t in
  let ivs =
    Trace.Log.intervals
      ~stmt_fid:(fun sid -> p.Lang.Prog.stmt_fid.(sid))
      t.log ~pid
  in
  if iv_id < 0 || iv_id >= Array.length ivs then
    Error (Printf.sprintf "process %d has no interval %d" pid iv_id)
  else begin
    let iv = ivs.(iv_id) in
    let fid = iv.Trace.Log.iv_fid in
    let resolve name =
      let local =
        Array.to_list p.Lang.Prog.vars
        |> List.find_opt (fun (v : Lang.Prog.var) ->
               v.vname = name && v.vfid = fid)
      in
      match local with
      | Some v -> Ok v
      | None -> (
        match
          Array.to_list p.Lang.Prog.globals
          |> List.find_opt (fun (v : Lang.Prog.var) -> v.vname = name)
        with
        | Some v -> Ok v
        | None ->
          Error
            (Printf.sprintf "no variable '%s' in %s or the globals" name
               p.Lang.Prog.funcs.(fid).fname))
    in
    let rec resolve_all acc = function
      | [] -> Ok (List.rev acc)
      | (name, value) :: rest -> (
        match resolve name with
        | Ok v -> resolve_all ((v, Runtime.Value.Vint value) :: acc) rest
        | Error e -> Error e)
    in
    match resolve_all [] overrides with
    | Error e -> Error e
    | Ok overrides ->
      Ok (Emulator.replay ~overrides ~validate:false t.eb t.log ~interval:iv)
  end

let explain_halt t =
  match t.halt with
  | M.Finished -> "execution finished normally"
  | M.Out_of_fuel -> "execution stopped: step budget exhausted"
  | M.Deadlock blocked ->
    Printf.sprintf "deadlock: %s"
      (String.concat "; "
         (List.map
            (fun (pid, r) -> Printf.sprintf "process %d blocked in %s" pid r)
            blocked))
  | M.Breakpoint { pid; sid } ->
    Printf.sprintf "breakpoint: process %d stopped after s%d (%s)" pid sid
      (Lang.Prog.stmt_label (prog t).Lang.Prog.stmts.(sid))
  | M.Fault { pid; sid; msg } ->
    Printf.sprintf "fault in process %d%s: %s" pid
      (match sid with
      | None -> ""
      | Some s -> Printf.sprintf " at s%d (%s)" s
          (Lang.Prog.stmt_label (prog t).Lang.Prog.stmts.(s)))
      msg
