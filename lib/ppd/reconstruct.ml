module L = Trace.Log

exception
  Divergence of {
    reason : string;
  }

let divergence fmt = Printf.ksprintf (fun reason -> raise (Divergence { reason })) fmt

let engine_of_string = function
  | "vm" -> Runtime.Machine.Vm_engine
  | "interp" -> Runtime.Machine.Interp_engine
  | s -> divergence "order log names unknown engine %S" s

let sched_of_string s =
  match Runtime.Sched.policy_of_string s with
  | Some p -> p
  | None -> divergence "order log names unknown scheduler %S" s

(* One sync entry, printed compactly for divergence diagnostics. *)
let entry_desc = function
  | L.Sync { sid; seq; step_at; data } ->
    Format.asprintf "sync %s seq=%d step=%d %a"
      (match sid with None -> "-" | Some s -> "s" ^ string_of_int s)
      seq step_at L.pp_sync_data data
  | L.Prelog _ -> "prelog"
  | L.Postlog _ -> "postlog"
  | L.Sync_prelog _ -> "sync-prelog"

(* Validate that the re-executed run produced exactly the recorded
   sync-event order: same processes, same per-process sync skeleton,
   same stop counts. Any mismatch means the re-execution diverged from
   the recording (different build, program text, or flags) and the
   reconstruction cannot be trusted. *)
let validate ~(recorded : L.t) ~(recon : L.t) =
  if recon.L.nprocs <> recorded.L.nprocs then
    divergence "re-execution created %d process(es), the log records %d"
      recon.L.nprocs recorded.L.nprocs;
  for pid = 0 to recorded.L.nprocs - 1 do
    let want = L.sync_entries recorded ~pid in
    let got = L.sync_entries recon ~pid in
    let nw = List.length want and ng = List.length got in
    if nw <> ng then
      divergence "process %d performed %d sync event(s), the log records %d"
        pid ng nw;
    List.iter2
      (fun w g ->
        if w <> g then
          divergence "process %d diverged: log records [%s], re-execution did [%s]"
            pid (entry_desc w) (entry_desc g))
      want got;
    if recon.L.stops.(pid) <> recorded.L.stops.(pid) then
      divergence "process %d stopped at seq %d, the log records %d" pid
        recon.L.stops.(pid) recorded.L.stops.(pid)
  done

let reconstruct eb (log : L.t) =
  match log.L.tier with
  | L.T_content -> log
  | L.T_order { o_sched; o_engine; o_max_steps } ->
    let engine = engine_of_string o_engine in
    let sched = sched_of_string o_sched in
    let _halt, recon, _machine =
      Obs.phase "reconstruction" (fun () ->
          Trace.Logger.run_logged ~engine ~sched ~max_steps:o_max_steps eb)
    in
    validate ~recorded:log ~recon;
    (* Keep the order log's checkpoints: the execution is identical, so
       the checkpoint cuts are valid for the reconstructed entries and
       keep seek-to-step restores bounded by the checkpoint interval. *)
    { recon with L.tier = L.T_content; ckpts = log.L.ckpts }
