(** The PPD Controller (§3.2.3, §5.3, §5.6): owns the debugging phase.

    Starting from the execution log, the controller builds the dynamic
    program dependence graph {e incrementally}: it emulates only the log
    intervals needed to answer the user's current question, exactly as
    the paper prescribes ("since only the portions of the dynamic graph
    in which the user is interested are generated, this is called
    incremental tracing").

    Capabilities:
    - build the fragment for any log interval (once; results are
      cached);
    - locate and build the fragment containing an arbitrary event;
    - expand an unexpanded sub-graph node by emulating the nested
      e-block's interval (§5.2);
    - resolve {e external} frontier nodes: a parameter resolves to the
      caller's call/spawn event (parent interval), a shared variable to
      the writing interval — found via the program database's DEFINED
      information, ordered by recency and validated by value (§5.6);
    - follow synchronization links across processes, building the
      partner process's interval on demand (§6.3);
    - answer [why] queries: the immediate dependence predecessors of a
      node, with all of the above resolution applied. *)

type t

(** Degraded-mode policy (DESIGN §12) and per-request resilience
    envelope (DESIGN §17). *)
type config = {
  degraded : bool;
      (** map damaged/unreplayable intervals to explicit hole nodes
          instead of raising *)
  retries : int;
      (** serial re-attempts of a transiently-failed pool replay before
          a hole is declared (default 2) *)
  max_replay_steps : int;
      (** the runaway-replay watchdog budget per interval (default
          1_000_000) *)
  deadline : Resil.Deadline.t;
      (** checked at every {!build_interval} entry (the e-block replay
          boundary); expiry raises [Resil.Deadline.Expired], which the
          daemon answers as PPD090 (default: none) *)
  backoff : Resil.Backoff.policy option;
      (** when set, serial retries of transient faults sleep under
          this jittered-exponential policy instead of re-attempting
          immediately; delays never change the computed output
          (default: [None] — retry immediately, the CLI behavior) *)
  retry_seed : int;
      (** seed for the deterministic backoff jitter (default 0) *)
}

val default_config : config

exception Replay_overrun of { pid : int; iv_id : int; budget : int }
(** Raised (outside degraded mode) when an interval replay exhausts
    [max_replay_steps] — surfaced by the CLI as PPD060/exit 7. *)

(** A damaged or unreplayable interval that degraded mode mapped to an
    explicit hole node. *)
type hole = {
  h_pid : int;
  h_iv_id : int;
  h_seq_lo : int;
  h_seq_hi : int;
  h_reason : string;
}

val start :
  ?pool:Exec.Pool.t ->
  ?shared:Fragcache.t ->
  ?config:config ->
  Analysis.Eblock.t ->
  Trace.Log.t ->
  t
(** Debug over a whole in-memory log. With [pool], interval emulation
    can run on the pool's domains ({!build_intervals_par},
    {!prefetch}); graph assembly stays on the querying domain, so the
    resulting graph is byte-identical to the serial one. With [shared],
    raw replay outcomes are exchanged with every other controller bound
    to the same {!Fragcache} (the `ppd serve` registry keeps one per
    opened log): clean outcomes are published after assembly and the
    cache is consulted before any serial replay. Statistics
    ([replays]/[replay_steps]) count assembly, not raw replay work, so
    they are unchanged by sharing.

    An order-tier log (DESIGN §16) is reconstructed into the equivalent
    content log up front via {!Reconstruct.reconstruct} — may raise
    {!Reconstruct.Divergence} (PPD061/exit 8) when the re-execution
    does not match the recorded sync order. *)

val start_paged :
  ?pool:Exec.Pool.t ->
  ?shared:Fragcache.t ->
  ?config:config ->
  Analysis.Eblock.t ->
  Store.Segment.reader ->
  t
(** Debug over an open segment file: interval structure comes from the
    footer index, and only the intervals a query touches are ever
    decoded (through the reader's window LRU). Flowback answers are
    identical to {!start} on the same execution. *)

val detach_pool : t -> unit
(** Forget the pool: subsequent queries replay serially on the calling
    domain instead of raising on a shut-down pool. Used by
    {!Session.close} so a closed session stays queryable. *)

val holes : t -> hole list
(** Holes declared so far, in assembly order (deterministic across
    [-jN]). Empty unless running with [config.degraded]. *)

val graph : t -> Dyn_graph.t

val prog : t -> Lang.Prog.t

val pardyn : t -> Pardyn.t

val intervals : t -> pid:int -> Trace.Log.interval array

val build_interval : t -> pid:int -> iv_id:int -> Emulator.outcome
(** Emulate the interval (if not already built) and add its fragment to
    the graph. Consumes a pool-produced fragment when one is cached or
    in flight instead of replaying again. *)

val build_intervals_par : t -> (int * int) list -> unit
(** Batch-emulate a set of [(pid, iv_id)] intervals: every missing
    replay is submitted to the pool (if any), then the fragments are
    assembled into the graph in list order on the calling domain — so
    the graph equals the one a serial [build_interval] loop over the
    same list would build. *)

val prefetch : ?max_candidates:int -> t -> int
(** Eager mode: speculatively emulate the dependence frontier of what
    is built so far on idle pool domains — pending sync-link partner
    intervals and, per unresolved external, the intervals resolution
    would try (parent/spawner for parameters; up to [max_candidates]
    DEFINED-set shared-write candidates for globals, default 8). Only
    raw outcomes are produced, never graph nodes, so queries stay
    deterministic. Returns the number of replays submitted; [0]
    without a pool.

    Speculative work is charged against [config.max_replay_steps], the
    same budget the PPD060 watchdog enforces on demand replays: once
    the controller's charged account (assembled work plus earlier
    speculation and overrun attempts) reaches the budget, no further
    speculative replays are submitted — so a [--degraded] run with a
    tight budget cannot silently burn unbounded speculative steps. *)

val node_of_event : t -> Runtime.Event.eref -> int option
(** Locate the graph node for an event, building its enclosing interval
    on demand. *)

val last_event_node : t -> pid:int -> int option
(** The node of the last event process [pid] executed — the root of the
    inverted tree the debugger first presents (§3.2.3). Builds the
    process's final (possibly open/faulted) interval. *)

val expand_subgraph : t -> int -> Emulator.outcome option
(** Emulate the nested interval behind an unexpanded sub-graph node and
    stitch its detail graph in. [None] if the node is not a sub-graph
    node or has no nested interval (inlined callees are already
    expanded). *)

val resolve_external : t -> int -> int option
(** Find the definition behind a frontier node and link it with a data
    edge; returns the writer node. *)

val why : t -> int -> (int * Dyn_graph.edge_kind) list
(** Immediate dependence predecessors (data/control/sync), after
    resolving this node's external reads and pending sync links. *)

type stats = {
  replays : int;  (** intervals assembled into the graph so far *)
  replay_steps : int;  (** interpreter steps spent emulating *)
  intervals_total : int;  (** intervals available in the log *)
  prefetched : int;  (** speculative replays submitted by {!prefetch} *)
  cache_hits : int;
      (** assembly requests answered without a fresh serial replay
          (already assembled, pool fragment, in flight, or shared
          cache) — this instance only, always live unlike the Obs
          mirror *)
  cache_misses : int;  (** assembly requests that forced a serial replay *)
  holes : int;  (** degraded-mode holes declared *)
  retried : int;  (** transient replay failures retried *)
}

val stats : t -> stats
