(** A work-stealing double-ended queue (Arora/Blumofe/Plaxton shape).

    The owning worker pushes and pops at the {e bottom} (LIFO, so the
    hottest task — the one whose inputs are still in cache — runs
    first); thieves steal from the {e top} (FIFO, so they take the
    oldest, typically largest remaining unit of work). Operations are
    serialised by a per-deque mutex: the tasks this repository schedules
    are whole e-block replays (micro- to milliseconds each), so a
    lock-free Chase–Lev implementation would buy nothing measurable
    while adding memory-model risk; the deque {e discipline} (owner
    LIFO / thief FIFO) is what matters for locality and steal balance.

    All operations are safe from any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Add a task at the bottom (owner end). *)

val pop : 'a t -> 'a option
(** Take the most recently pushed task (owner end); [None] when empty. *)

val steal : 'a t -> 'a option
(** Take the oldest task (thief end); [None] when empty. *)

val length : 'a t -> int
(** Instantaneous size (racy by nature; for load estimates only). *)
