(** A fixed-size pool of OCaml 5 domains with futures — the parallel
    emulation engine's scheduler.

    The paper's §5/§7 observation is that e-block replay is
    embarrassingly parallel: every log interval re-executes from its own
    prelog with no shared mutable state, so a batch of intervals can be
    emulated on as many domains as the hardware offers. The pool gives
    that shape a home: [submit] hands a closure to one of [jobs]
    worker domains (each owning a {!Deque.t}; idle workers steal from
    their neighbours) and returns a future that [await] blocks on.

    Exceptions raised by a task are captured in its future and re-raised
    (with the original backtrace) by [await]; the worker that ran the
    task survives and keeps draining the queue, so one faulting replay
    cannot deadlock or poison the pool.

    [await] must not be called from inside a pool task: tasks never
    block on other tasks here (interval replays are independent), and
    keeping that rule makes the pool trivially deadlock-free.

    Pools are small, long-lived objects: create one per session or
    benchmark level and [shutdown] it when done ([shutdown] drains all
    queued work first, then joins the domains). *)

type t

type 'a future

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace
      (** Status of a future as reported by {!peek}. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val create : ?jobs:int -> unit -> t
(** Spawn the worker domains. [jobs] defaults to {!default_jobs} and is
    clamped to at least 1; values beyond 4× the recommended count are
    clamped down (oversubscription only adds scheduling noise). *)

val jobs : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (round-robin across worker deques) and return its
    future. @raise Invalid_argument after [shutdown]. *)

val await : 'a future -> 'a
(** Block until the task finished; re-raises the task's exception with
    its original backtrace if it failed. @raise Invalid_argument
    immediately when called from inside a pool task (detected via a
    worker-domain flag) instead of silently risking deadlock. *)

val peek : 'a future -> 'a state
(** Non-blocking status probe. Never raises: a failed task is reported
    as [Failed] (its exception is re-raised, once, by {!await}). *)

val shutdown : t -> unit
(** Drain every queued task, then stop and join the workers.
    Idempotent, and safe to call from several domains at once: every
    caller blocks until the join has completed, so no caller can
    observe worker domains still running after [shutdown] returns. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
