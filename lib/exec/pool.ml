type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable fstate : 'a state;
}

type t = {
  deques : (unit -> unit) Deque.t array;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_available : Condition.t;
  mutable outstanding : int;  (* queued tasks not yet taken by a worker *)
  mutable closing : bool;
  mutable next : int;  (* round-robin submit cursor *)
}

let default_jobs () = Domain.recommended_domain_count ()

let fill fut st =
  Mutex.lock fut.fm;
  fut.fstate <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

(* Own deque first (LIFO: best locality), then steal from the others in
   ring order (FIFO: oldest work first). *)
let find_task pool i =
  let n = Array.length pool.deques in
  match Deque.pop pool.deques.(i) with
  | Some _ as t -> t
  | None ->
    let rec try_steal k =
      if k >= n then None
      else
        match Deque.steal pool.deques.((i + k) mod n) with
        | Some _ as t -> t
        | None -> try_steal (k + 1)
    in
    try_steal 1

let rec worker pool i =
  match find_task pool i with
  | Some task ->
    Mutex.lock pool.m;
    pool.outstanding <- pool.outstanding - 1;
    Mutex.unlock pool.m;
    task ();
    worker pool i
  | None ->
    Mutex.lock pool.m;
    while pool.outstanding <= 0 && not pool.closing do
      Condition.wait pool.work_available pool.m
    done;
    let stop = pool.closing && pool.outstanding <= 0 in
    Mutex.unlock pool.m;
    if not stop then worker pool i

let create ?jobs () =
  let jobs =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested (4 * default_jobs ()))
  in
  let pool =
    {
      deques = Array.init jobs (fun _ -> Deque.create ());
      workers = [||];
      m = Mutex.create ();
      work_available = Condition.create ();
      outstanding = 0;
      closing = false;
      next = 0;
    }
  in
  pool.workers <- Array.init jobs (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let jobs pool = Array.length pool.deques

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); fstate = Pending } in
  let task () =
    match f () with
    | v -> fill fut (Done v)
    | exception e -> fill fut (Failed (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock pool.m;
  if pool.closing then begin
    Mutex.unlock pool.m;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end;
  Deque.push pool.deques.(pool.next) task;
  pool.next <- (pool.next + 1) mod Array.length pool.deques;
  pool.outstanding <- pool.outstanding + 1;
  Condition.signal pool.work_available;
  Mutex.unlock pool.m;
  fut

let await fut =
  Mutex.lock fut.fm;
  while fut.fstate = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.fstate in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let peek fut =
  Mutex.lock fut.fm;
  let st = fut.fstate in
  Mutex.unlock fut.fm;
  match st with
  | Pending -> None
  | Done v -> Some v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let shutdown pool =
  Mutex.lock pool.m;
  let was_closing = pool.closing in
  pool.closing <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.m;
  if not was_closing then Array.iter Domain.join pool.workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
