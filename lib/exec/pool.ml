type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable fstate : 'a state;
}

type t = {
  deques : (unit -> unit) Deque.t array;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_available : Condition.t;
  all_joined : Condition.t;  (* signalled once the workers are joined *)
  mutable outstanding : int;  (* queued tasks not yet taken by a worker *)
  mutable closing : bool;
  mutable joined : bool;  (* worker domains fully joined; under [m] *)
  mutable next : int;  (* round-robin submit cursor *)
}

(* Scheduler counters (no-ops until [Obs.enable]): total tasks, how
   many were taken by theft rather than from the owner's deque, and the
   high-watermark of queued-but-untaken tasks. *)
let c_tasks = Obs.counter "exec.pool.tasks"

let c_steals = Obs.counter "exec.pool.steals"

let c_queue_max = Obs.gauge_max "exec.pool.queue_depth_max"

(* Chaos site: the Nth submitted task dies with [Fault.Injected] when a
   plan is armed (lib/fault), modelling a transient worker failure. The
   exception travels through the future like any task exception. *)
let f_task = Fault.site "exec.pool.task"

(* True on worker domains; [await] consults it to catch the documented
   "no await inside a task" rule at runtime instead of deadlocking. *)
let in_worker = Domain.DLS.new_key (fun () -> ref false)

let default_jobs () = Domain.recommended_domain_count ()

let fill fut st =
  Mutex.lock fut.fm;
  fut.fstate <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

(* Own deque first (LIFO: best locality), then steal from the others in
   ring order (FIFO: oldest work first). *)
let find_task pool i =
  let n = Array.length pool.deques in
  match Deque.pop pool.deques.(i) with
  | Some _ as t -> t
  | None ->
    let rec try_steal k =
      if k >= n then None
      else
        match Deque.steal pool.deques.((i + k) mod n) with
        | Some _ as t ->
          Obs.incr c_steals;
          t
        | None -> try_steal (k + 1)
    in
    try_steal 1

let rec worker pool i =
  match find_task pool i with
  | Some task ->
    Mutex.lock pool.m;
    pool.outstanding <- pool.outstanding - 1;
    Mutex.unlock pool.m;
    task ();
    worker pool i
  | None ->
    Mutex.lock pool.m;
    while pool.outstanding <= 0 && not pool.closing do
      Condition.wait pool.work_available pool.m
    done;
    let stop = pool.closing && pool.outstanding <= 0 in
    Mutex.unlock pool.m;
    if not stop then worker pool i

let create ?jobs () =
  let jobs =
    let requested = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min requested (4 * default_jobs ()))
  in
  let pool =
    {
      deques = Array.init jobs (fun _ -> Deque.create ());
      workers = [||];
      m = Mutex.create ();
      work_available = Condition.create ();
      all_joined = Condition.create ();
      outstanding = 0;
      closing = false;
      joined = false;
      next = 0;
    }
  in
  pool.workers <-
    Array.init jobs (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.get in_worker := true;
            worker pool i));
  pool

let jobs pool = Array.length pool.deques

let submit pool f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); fstate = Pending } in
  let task () =
    match
      match Fault.fire f_task with
      | Some kind -> raise (Fault.Injected { site = "exec.pool.task"; kind })
      | None -> f ()
    with
    | v -> fill fut (Done v)
    | exception e -> fill fut (Failed (e, Printexc.get_raw_backtrace ()))
  in
  Mutex.lock pool.m;
  if pool.closing then begin
    Mutex.unlock pool.m;
    invalid_arg "Exec.Pool.submit: pool is shut down"
  end;
  Deque.push pool.deques.(pool.next) task;
  pool.next <- (pool.next + 1) mod Array.length pool.deques;
  pool.outstanding <- pool.outstanding + 1;
  Obs.incr c_tasks;
  Obs.observe c_queue_max pool.outstanding;
  Condition.signal pool.work_available;
  Mutex.unlock pool.m;
  fut

let await fut =
  if !(Domain.DLS.get in_worker) then
    invalid_arg
      "Exec.Pool.await: called from inside a pool task (deadlock risk)";
  Mutex.lock fut.fm;
  while fut.fstate = Pending do
    Condition.wait fut.fc fut.fm
  done;
  let st = fut.fstate in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

(* Non-blocking status probe. Reports a [Failed] state instead of
   re-raising: a poll must not blow up an unrelated caller every time
   it looks (the exception still surfaces exactly once, via [await]). *)
let peek fut =
  Mutex.lock fut.fm;
  let st = fut.fstate in
  Mutex.unlock fut.fm;
  st

(* Every caller — not just the first — blocks until the worker domains
   are joined. The first closer performs the joins outside the lock;
   latecomers wait on [all_joined] for the [joined] flag, so no caller
   can return while a worker domain is still running. *)
let shutdown pool =
  Mutex.lock pool.m;
  let was_closing = pool.closing in
  pool.closing <- true;
  Condition.broadcast pool.work_available;
  if was_closing then begin
    while not pool.joined do
      Condition.wait pool.all_joined pool.m
    done;
    Mutex.unlock pool.m
  end
  else begin
    Mutex.unlock pool.m;
    Array.iter Domain.join pool.workers;
    Mutex.lock pool.m;
    pool.joined <- true;
    Condition.broadcast pool.all_joined;
    Mutex.unlock pool.m
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
