(* Ring buffer with [top] (steal end) and [bottom] (owner end) cursors;
   grows by doubling when full. A single mutex serialises all three
   operations — see the .mli for why that is the right trade here. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;  (* next index to steal from *)
  mutable bottom : int;  (* next index to push at *)
  m : Mutex.t;
}

let create () =
  { buf = Array.make 64 None; top = 0; bottom = 0; m = Mutex.create () }

let size t = t.bottom - t.top

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = t.top to t.bottom - 1 do
    buf.(i land (2 * cap - 1)) <- t.buf.(i land (cap - 1))
  done;
  t.buf <- buf

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let push t x =
  with_lock t (fun () ->
      if size t = Array.length t.buf then grow t;
      t.buf.(t.bottom land (Array.length t.buf - 1)) <- Some x;
      t.bottom <- t.bottom + 1)

let pop t =
  with_lock t (fun () ->
      if size t = 0 then None
      else begin
        t.bottom <- t.bottom - 1;
        let i = t.bottom land (Array.length t.buf - 1) in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        x
      end)

let steal t =
  with_lock t (fun () ->
      if size t = 0 then None
      else begin
        let i = t.top land (Array.length t.buf - 1) in
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        t.top <- t.top + 1;
        x
      end)

let length t = with_lock t (fun () -> size t)
