(** Resilience substrate for the long-lived debugging phase
    (DESIGN §17): monotonic deadlines, deterministic jittered
    backoff, per-key circuit breakers and daemon-wide byte budgets.

    The daemon (`ppd serve`) is fault-{e confined} without this
    module — an injected fault maps to one error response — but not
    {e survivable}: a slow replay holds a gate slot forever, a
    poisoned log burns retries for every tenant, and caches grow
    without a global ceiling. Everything here is mechanism only;
    policy (which errors count as hard failures, what gets evicted
    first) stays with the callers.

    All components are thread-safe; none spin. The only blocking
    call is {!Backoff.sleep_ms}. *)

(** {1 Clock} *)

module Clock : sig
  (** Monotonic time source, overridable for tests.

      Deadlines and breakers read time through this indirection so
      the [test_resil] suite can prove "never fires early / always
      fires after" with an exact mocked clock instead of sleeping. *)

  val now_ns : unit -> int
  (** {!Obs.now_ns} unless a test source is installed. *)

  val set_source : (unit -> int) option -> unit
  (** [set_source (Some f)] makes {!now_ns} read [f]; [None]
      restores the real monotonic clock. Test-only. *)

  val with_source : (unit -> int) -> (unit -> 'a) -> 'a
  (** Install a source around a callback, restoring on exit. *)
end

(** {1 Deadlines} *)

module Deadline : sig
  (** An absolute point on the monotonic clock. Requests carry one;
      long-running loops call {!check} at natural boundaries
      (e-block replay heads, gate-queue wakeups) and the expiry
      propagates as an exception to the RPC layer (PPD090). *)

  type t = private int

  val none : t
  (** Never expires. The zero-cost default: [check none] is one
      integer compare. *)

  val after_ms : int -> t
  (** A deadline [ms] from now. [ms <= 0] means {!none} — callers
      can pass a config field through without special-casing
      "unset". *)

  val at_ns : int -> t
  (** An explicit absolute deadline, for tests. *)

  val is_none : t -> bool

  val expired : t -> bool

  val remaining_ns : t -> int
  (** Nanoseconds left; [max_int] for {!none}; never negative. *)

  exception Expired

  val check : t -> unit
  (** Raise {!Expired} iff the deadline has passed. *)
end

(** {1 Backoff} *)

module Backoff : sig
  (** Jittered exponential backoff with a deterministic PRNG.

      The jitter draw is a pure function of [(seed, attempt)] (a
      splitmix-style integer mix, the same construction as
      [Fault.mix]) so a retry schedule is reproducible from its
      seed: tests pin exact delays, and a daemon request's retry
      timing is a function of its request id rather than global
      mutable RNG state. *)

  type policy = {
    base_ms : int;  (** delay before the first retry *)
    max_ms : int;  (** cap on the uncapped exponential *)
    multiplier : int;  (** exponent base, >= 1 *)
    jitter_pct : int;  (** 0..100: delay drawn from [exp*(100-j)%, exp] *)
  }

  val default : policy
  (** [{ base_ms = 5; max_ms = 1000; multiplier = 2; jitter_pct = 50 }] *)

  val delay_ms : ?policy:policy -> seed:int -> int -> int
  (** [delay_ms ~seed attempt] — delay before retry [attempt]
      (0-based). Deterministic in [(policy, seed, attempt)]. *)

  val sleep_ms : int -> unit
  (** [Unix.sleepf] of that many milliseconds; no-op for [<= 0]. *)
end

(** {1 Circuit breakers} *)

module Breaker : sig
  (** Per-key circuit breaker: [Closed] (healthy) counts consecutive
      hard failures; at [failure_threshold] it trips to [Open] and
      {!acquire} fast-fails (PPD091) without touching the protected
      resource; after [cooldown_ms] the next {!acquire} takes the
      single [Half_open] probe token, and that probe's outcome
      decides — success closes the breaker, failure re-opens it and
      restarts the cooldown.

      Outcomes that prove nothing about the resource (deadline
      expiry, shedding, quota) must call {!abstain} to return the
      probe token without moving the state machine. *)

  type config = {
    failure_threshold : int;  (** consecutive hard failures to trip *)
    cooldown_ms : int;  (** Open -> Half_open delay *)
  }

  val default_config : config
  (** [{ failure_threshold = 3; cooldown_ms = 5000 }] *)

  type state =
    | Closed
    | Open
    | Half_open

  type t

  val create : ?config:config -> string -> t
  (** A fresh breaker named [key] (the name only labels stats). *)

  val acquire : t -> bool
  (** [true]: proceed (and report the outcome with exactly one of
      {!success}/{!failure}/{!abstain}). [false]: quarantined —
      fail fast, report nothing. *)

  val success : t -> unit

  val failure : t -> unit

  val abstain : t -> unit
  (** Outcome was inconclusive: release the probe token (if held)
      and leave both state and failure count alone. *)

  val state : t -> state

  type stats = {
    st_key : string;
    st_state : state;
    st_failures : int;  (** consecutive hard failures while closed *)
    st_trips : int;  (** lifetime Closed/Half_open -> Open transitions *)
    st_fast_fails : int;  (** lifetime [acquire = false] *)
  }

  val stats : t -> stats

  module Group : sig
    (** A string-keyed breaker registry — the daemon holds one and
        lazily creates a breaker per log-registry entry. *)

    type breaker := t

    type t

    val create : ?config:config -> unit -> t

    val get : t -> string -> breaker
    (** The breaker for [key], created on first use. *)

    val find : t -> string -> breaker option

    val all : t -> stats list
    (** Stats for every breaker, sorted by key — `serverStats`. *)

    val remove : t -> string -> unit
  end
end

(** {1 Byte budgets} *)

module Budget : sig
  (** Daemon-wide byte accounting with cost-weighted reclaim.

      Caches {!charge} an estimate when they insert and {!release}
      when they evict. When usage exceeds the cap, {!rebalance}
      walks registered reclaimers in ascending weight order, asking
      each to free bytes, until usage fits (or every reclaimer is
      dry). Reclaimers run caller callbacks — callers must invoke
      {!charge}/{!rebalance} {e outside} their own cache locks or a
      reclaim into the same cache deadlocks. *)

  type t

  val create : ?name:string -> cap:int -> unit -> t
  (** [cap <= 0] means unlimited (accounting still runs). [name]
      prefixes the Obs gauges ([<name>.budget.used] accumulated
      charges, [<name>.budget.used_max] high watermark,
      [<name>.budget.reclaims], [<name>.budget.reclaimed_bytes]);
      default ["resil"]. *)

  val cap : t -> int

  val used : t -> int

  val charge : t -> int -> unit
  (** Account [bytes] in. Never blocks, never fails: over-cap is
      resolved by the next {!rebalance}. *)

  val release : t -> int -> unit

  val over : t -> int
  (** Bytes above cap right now (0 when unlimited or under). *)

  val add_reclaimer : t -> name:string -> weight:int -> (int -> int) -> unit
  (** Register [f]: [f want] frees up to [want] bytes from its cache
      and returns the bytes actually freed (the reclaimer itself
      must {!release} them too — the return value only steers the
      walk). Lower [weight] is reclaimed first. Re-registering a
      name replaces it. *)

  val remove_reclaimer : t -> string -> unit

  val rebalance : t -> unit
  (** While over cap, ask reclaimers (ascending weight) to free the
      excess. Safe from any thread; concurrent calls serialize. *)
end
