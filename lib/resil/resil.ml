(* Resilience substrate (DESIGN §17). Mechanism only: deadlines,
   deterministic backoff, breakers and byte budgets. Policy — which
   outcomes are hard failures, what evicts first — lives with the
   callers (Serve.Server, Ppd.Controller, the caches). *)

module Clock = struct
  (* One atomic read on the hot path; tests swap in a counter. *)
  let source : (unit -> int) option Atomic.t = Atomic.make None

  let now_ns () =
    match Atomic.get source with
    | None -> Obs.now_ns ()
    | Some f -> f ()

  let set_source s = Atomic.set source s

  let with_source f body =
    let saved = Atomic.get source in
    Atomic.set source (Some f);
    Fun.protect ~finally:(fun () -> Atomic.set source saved) body
end

module Deadline = struct
  type t = int

  let none = max_int

  let at_ns ns = ns

  let after_ms ms =
    if ms <= 0 then none
    else
      let ns = Clock.now_ns () + (ms * 1_000_000) in
      (* overflow on a huge ms collapses to "never" *)
      if ns < 0 then none else ns

  let is_none d = d = none

  let expired d = d <> none && Clock.now_ns () > d

  let remaining_ns d =
    if d = none then max_int else max 0 (d - Clock.now_ns ())

  exception Expired

  let check d = if d <> none && Clock.now_ns () > d then raise Expired
end

module Backoff = struct
  type policy = {
    base_ms : int;
    max_ms : int;
    multiplier : int;
    jitter_pct : int;
  }

  let default = { base_ms = 5; max_ms = 1000; multiplier = 2; jitter_pct = 50 }

  (* Splitmix-style finalizer (same construction as Fault.mix): the
     jitter draw is a pure function of (seed, attempt). *)
  let mix seed attempt =
    let z = ref ((seed * 0x9e3779b9) + attempt + 1) in
    z := (!z lxor (!z lsr 30)) * 0x4e5b94d049bb1331;
    z := (!z lxor (!z lsr 27)) * 0x1ce4e5b9bf58476d;
    !z lxor (!z lsr 31) land max_int

  let delay_ms ?(policy = default) ~seed attempt =
    let base = max 0 policy.base_ms in
    let cap = max base policy.max_ms in
    let mult = max 1 policy.multiplier in
    (* capped exponential, guarding the power against overflow *)
    let rec expo acc n =
      if n <= 0 || acc >= cap then min acc cap else expo (acc * mult) (n - 1)
    in
    let upper = if base = 0 then 0 else expo base attempt in
    let jit = max 0 (min 100 policy.jitter_pct) in
    if upper = 0 || jit = 0 then upper
    else
      (* deterministic draw in [upper*(100-jit)%, upper] *)
      let span = upper * jit / 100 in
      let lo = upper - span in
      lo + (mix seed attempt mod (span + 1))

  let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)
end

module Breaker = struct
  type config = {
    failure_threshold : int;
    cooldown_ms : int;
  }

  let default_config = { failure_threshold = 3; cooldown_ms = 5000 }

  type state =
    | Closed
    | Open
    | Half_open

  type t = {
    key : string;
    cfg : config;
    lock : Mutex.t;
    mutable st : state;
    mutable opened_at : int;  (* Clock ns of the trip *)
    mutable failures : int;  (* consecutive, while Closed *)
    mutable probing : bool;  (* Half_open probe token out *)
    mutable trips : int;
    mutable fast_fails : int;
  }

  let create ?(config = default_config) key =
    {
      key;
      cfg =
        {
          failure_threshold = max 1 config.failure_threshold;
          cooldown_ms = max 0 config.cooldown_ms;
        };
      lock = Mutex.create ();
      st = Closed;
      opened_at = 0;
      failures = 0;
      probing = false;
      trips = 0;
      fast_fails = 0;
    }

  let locked t f =
    Mutex.lock t.lock;
    let r = f () in
    Mutex.unlock t.lock;
    r

  let cooled t = Clock.now_ns () - t.opened_at >= t.cfg.cooldown_ms * 1_000_000

  let acquire t =
    locked t (fun () ->
        match t.st with
        | Closed -> true
        | Open when cooled t ->
          t.st <- Half_open;
          t.probing <- true;
          true
        | Open ->
          t.fast_fails <- t.fast_fails + 1;
          false
        | Half_open when not t.probing ->
          (* one probe at a time; the rest still fast-fail *)
          t.probing <- true;
          true
        | Half_open ->
          t.fast_fails <- t.fast_fails + 1;
          false)

  let success t =
    locked t (fun () ->
        t.failures <- 0;
        t.probing <- false;
        t.st <- Closed)

  let trip t =
    t.st <- Open;
    t.opened_at <- Clock.now_ns ();
    t.probing <- false;
    t.trips <- t.trips + 1

  let failure t =
    locked t (fun () ->
        match t.st with
        | Half_open -> trip t
        | Open -> ()
        | Closed ->
          t.failures <- t.failures + 1;
          if t.failures >= t.cfg.failure_threshold then trip t)

  let abstain t = locked t (fun () -> t.probing <- false)

  let state t = locked t (fun () -> t.st)

  type stats = {
    st_key : string;
    st_state : state;
    st_failures : int;
    st_trips : int;
    st_fast_fails : int;
  }

  let stats t =
    locked t (fun () ->
        {
          st_key = t.key;
          st_state = t.st;
          st_failures = t.failures;
          st_trips = t.trips;
          st_fast_fails = t.fast_fails;
        })

  let make_breaker = create

  module Group = struct
    type breaker = t

    type t = {
      cfg : config;
      lock : Mutex.t;
      tbl : (string, breaker) Hashtbl.t;
    }

    let create ?(config = default_config) () =
      { cfg = config; lock = Mutex.create (); tbl = Hashtbl.create 16 }

    let get g key =
      Mutex.lock g.lock;
      let b =
        match Hashtbl.find_opt g.tbl key with
        | Some b -> b
        | None ->
          let b = make_breaker ~config:g.cfg key in
          Hashtbl.add g.tbl key b;
          b
      in
      Mutex.unlock g.lock;
      b

    let find g key =
      Mutex.lock g.lock;
      let b = Hashtbl.find_opt g.tbl key in
      Mutex.unlock g.lock;
      b

    let all g =
      Mutex.lock g.lock;
      let bs = Hashtbl.fold (fun _ b acc -> b :: acc) g.tbl [] in
      Mutex.unlock g.lock;
      List.sort compare (List.map stats bs)

    let remove g key =
      Mutex.lock g.lock;
      Hashtbl.remove g.tbl key;
      Mutex.unlock g.lock
  end
end

module Budget = struct
  type reclaimer = {
    r_name : string;
    r_weight : int;
    r_free : int -> int;
  }

  type t = {
    b_cap : int;  (* <= 0: unlimited *)
    b_used : int Atomic.t;
    lock : Mutex.t;  (* guards the reclaimer list *)
    walk : Mutex.t;  (* serializes rebalance walks *)
    mutable reclaimers : reclaimer list;  (* ascending weight *)
    g_used : Obs.counter;
    g_used_max : Obs.counter;
    c_reclaims : Obs.counter;
    c_reclaimed : Obs.counter;
  }

  let create ?(name = "resil") ~cap () =
    {
      b_cap = cap;
      b_used = Atomic.make 0;
      lock = Mutex.create ();
      walk = Mutex.create ();
      reclaimers = [];
      g_used = Obs.counter (name ^ ".budget.used");
      g_used_max = Obs.gauge_max (name ^ ".budget.used_max");
      c_reclaims = Obs.counter (name ^ ".budget.reclaims");
      c_reclaimed = Obs.counter (name ^ ".budget.reclaimed_bytes");
    }

  let cap t = t.b_cap

  let used t = Atomic.get t.b_used

  let charge t bytes =
    if bytes <> 0 then begin
      let u = Atomic.fetch_and_add t.b_used bytes + bytes in
      Obs.add t.g_used bytes;
      Obs.observe t.g_used_max u
    end

  let release t bytes =
    if bytes <> 0 then begin
      ignore (Atomic.fetch_and_add t.b_used (-bytes));
      Obs.add t.g_used (-bytes)
    end

  let over t =
    if t.b_cap <= 0 then 0 else max 0 (Atomic.get t.b_used - t.b_cap)

  let add_reclaimer t ~name ~weight f =
    Mutex.lock t.lock;
    let rest = List.filter (fun r -> r.r_name <> name) t.reclaimers in
    t.reclaimers <-
      List.sort
        (fun a b -> compare (a.r_weight, a.r_name) (b.r_weight, b.r_name))
        ({ r_name = name; r_weight = weight; r_free = f } :: rest);
    Mutex.unlock t.lock

  let remove_reclaimer t name =
    Mutex.lock t.lock;
    t.reclaimers <- List.filter (fun r -> r.r_name <> name) t.reclaimers;
    Mutex.unlock t.lock

  let rebalance t =
    if over t > 0 then begin
      (* one reclaim walk at a time; the list snapshot lets the
         reclaimers themselves add/remove entries reentrantly *)
      Mutex.lock t.walk;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.walk)
        (fun () ->
          Mutex.lock t.lock;
          let rs = t.reclaimers in
          Mutex.unlock t.lock;
          Obs.incr t.c_reclaims;
          List.iter
            (fun r ->
              let want = over t in
              if want > 0 then begin
                let freed = r.r_free want in
                if freed > 0 then Obs.add t.c_reclaimed freed
              end)
            rs)
    end
end
