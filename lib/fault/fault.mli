(** Deterministic fault injection.

    A chaos harness in the style of {!Obs}: subsystems declare named
    injection points ({!site}) at module-load time and consult them on
    every I/O or execution edge ({!fire} / {!fire_at}). With no fault
    plan armed, a check is a single atomic load — cheap enough to leave
    compiled into production paths (bench T12 pins the bound).

    A plan is parsed from a spec string of comma-separated entries

    {v POINT:N[:KIND] v}

    where [POINT] names a registered site, [N] is the 1-based arrival
    at which the fault fires (for byte-positioned sites such as the
    logger sink, the byte offset at which to crash), and [KIND] is one
    of [crash], [torn], [short], [flip], [enospc], [transient] or
    [budget], defaulting per site. Each entry fires exactly once, even
    when the site is reached concurrently from several domains; all
    randomness (e.g. which bit a [flip] damages) derives from the seed
    given to {!arm}, so a failing chaos run replays exactly. *)

type kind =
  | Crash  (** kill the writer mid-stream; bytes after the cut are lost *)
  | Torn  (** a partial page reaches disk, then the writer dies *)
  | Short  (** the final byte of a write is silently dropped *)
  | Flip  (** one seeded bit of the written chunk is inverted *)
  | Enospc  (** the device refuses the write (out of space) *)
  | Transient  (** a retryable failure (pool task dies once) *)
  | Budget  (** replay step budget collapses to zero *)

val kind_to_string : kind -> string

(** Raised by execution-edge sites (e.g. a pool task) when a fault
    fires. I/O sites do not raise; they corrupt state in kind-specific
    ways and let the normal damage-detection machinery find it. *)
exception Injected of { site : string; kind : kind }

type site

val site : string -> site
(** [site name] interns the injection point [name]. Call once at
    module-load time and keep the handle. *)

val arm : ?seed:int -> string -> (unit, string) result
(** [arm ?seed spec] parses [spec] and arms the plan, resetting every
    site's arrival count — each arm is a fresh experiment, so the same
    spec always names the same injection point. [Error msg] on a
    malformed spec (nothing is armed). [seed] (default 0) drives all
    fault-local randomness. *)

val disarm : unit -> unit
(** Disarm and forget the current plan. *)

val armed : unit -> bool

val fire : site -> kind option
(** [fire s] counts one arrival at [s] and returns the kind to inject
    if a plan entry matches this arrival. [None] when disarmed (the
    fast path: one atomic load). *)

val fire_at : site -> pos:int -> (kind * int) option
(** [fire_at s ~pos] is {!fire} for byte-positioned sites: fires the
    first time [pos] reaches an entry's threshold [N], returning the
    kind and the exact threshold so the caller can cut precisely at
    byte [N]. Does not count as an arrival for {!fire}. *)

val mix : site -> int -> int
(** [mix s salt] is a non-negative deterministic hash of the armed
    seed, the site name and [salt] — use it to pick which byte/bit a
    [Flip] damages. *)

val fired_count : unit -> int
(** Number of plan entries that have fired so far. *)
