(* Mirrors the Obs design: one global plan, because a process runs one
   chaos experiment at a time (the CLI arms it before the session
   starts). The disarmed fast path is a single atomic load so the
   check sites can stay compiled into release binaries. *)

type kind = Crash | Torn | Short | Flip | Enospc | Transient | Budget

let kind_to_string = function
  | Crash -> "crash"
  | Torn -> "torn"
  | Short -> "short"
  | Flip -> "flip"
  | Enospc -> "enospc"
  | Transient -> "transient"
  | Budget -> "budget"

let kind_of_string = function
  | "crash" -> Some Crash
  | "torn" -> Some Torn
  | "short" -> Some Short
  | "flip" -> Some Flip
  | "enospc" -> Some Enospc
  | "transient" -> Some Transient
  | "budget" -> Some Budget
  | _ -> None

exception Injected of { site : string; kind : kind }

(* An arrival counter per site: entries in the plan say "the Nth time
   this point is reached". The counter is atomic because pool workers
   reach sites concurrently. *)
type site = { s_name : string; s_arrivals : int Atomic.t }

let is_armed = Atomic.make false

type spec = {
  sp_site : string;
  sp_n : int; (* 1-based arrival, or byte threshold for fire_at *)
  sp_kind : kind;
  sp_fired : bool Atomic.t;
}

(* Written only by [arm]/[disarm] before/after the run; published to
   other domains by the release store to [is_armed]. *)
let plan : spec list ref = ref []

let the_seed = ref 0

let c_injected = Obs.counter "fault.injected"

let reg_lock = Mutex.create ()

let sites : (string, site) Hashtbl.t = Hashtbl.create 16

let site name =
  Mutex.lock reg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock reg_lock)
    (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> s
      | None ->
        let s = { s_name = name; s_arrivals = Atomic.make 0 } in
        Hashtbl.add sites name s;
        s)

(* Each point injects something sensible when the spec names no kind:
   the sink crashes, writes tear, reads and pool tasks fail
   transiently, replays blow their budget. *)
let default_kind point =
  if point = "trace.sink" then Crash
  else if point = "store.segment.write" then Torn
  else if point = "ppd.emulator.replay" then Budget
  else Transient

let parse_entry entry =
  match String.split_on_char ':' (String.trim entry) with
  | [ point; n ] | [ point; n; "" ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 ->
      Ok
        {
          sp_site = point;
          sp_n = n;
          sp_kind = default_kind point;
          sp_fired = Atomic.make false;
        }
    | _ -> Error (Printf.sprintf "bad arrival count %S in fault spec" n))
  | [ point; n; kind ] -> (
    match (int_of_string_opt n, kind_of_string kind) with
    | Some n, Some k when n >= 0 ->
      Ok { sp_site = point; sp_n = n; sp_kind = k; sp_fired = Atomic.make false }
    | _, None ->
      Error
        (Printf.sprintf
           "unknown fault kind %S (expected \
            crash|torn|short|flip|enospc|transient|budget)"
           kind)
    | _, Some _ -> Error (Printf.sprintf "bad arrival count %S in fault spec" n))
  | _ ->
    Error
      (Printf.sprintf "malformed fault spec entry %S (expected POINT:N[:KIND])"
         entry)

let arm ?(seed = 0) spec_string =
  let entries =
    String.split_on_char ',' spec_string
    |> List.filter (fun s -> String.trim s <> "")
  in
  if entries = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> (
        match parse_entry e with
        | Ok sp -> go (sp :: acc) rest
        | Error _ as err -> err)
    in
    match go [] entries with
    | Error _ as err -> err
    | Ok specs ->
      the_seed := seed;
      plan := specs;
      (* each arm is a fresh experiment: arrival counts restart so the
         same spec means the same injection point on every run *)
      Mutex.lock reg_lock;
      Hashtbl.iter (fun _ s -> Atomic.set s.s_arrivals 0) sites;
      Mutex.unlock reg_lock;
      Atomic.set is_armed true;
      Ok ()

let disarm () =
  Atomic.set is_armed false;
  plan := []

let armed () = Atomic.get is_armed

let hit sp =
  if Atomic.compare_and_set sp.sp_fired false true then begin
    Obs.incr c_injected;
    true
  end
  else false

let fire site =
  if not (Atomic.get is_armed) then None
  else
    let n = 1 + Atomic.fetch_and_add site.s_arrivals 1 in
    let rec scan = function
      | [] -> None
      | sp :: rest ->
        if sp.sp_site = site.s_name && sp.sp_n = n && hit sp then
          Some sp.sp_kind
        else scan rest
    in
    scan !plan

let fire_at site ~pos =
  if not (Atomic.get is_armed) then None
  else
    let rec scan = function
      | [] -> None
      | sp :: rest ->
        if sp.sp_site = site.s_name && pos >= sp.sp_n && hit sp then
          Some (sp.sp_kind, sp.sp_n)
        else scan rest
    in
    scan !plan

(* splitmix64-style finalizer over (seed, site, salt); good enough to
   scatter flipped bits and entirely deterministic. *)
let mix site salt =
  let h = ref (!the_seed * 0x9e3779b9 + salt) in
  String.iter (fun c -> h := (!h * 31) + Char.code c) site.s_name;
  let z = ref !h in
  z := (!z lxor (!z lsr 30)) * 0x4e5b94d049bb1331;
  z := (!z lxor (!z lsr 27)) * 0x1ce4e5b9bf58476d;
  !z lxor (!z lsr 31) land max_int

let fired_count () =
  List.fold_left
    (fun acc sp -> if Atomic.get sp.sp_fired then acc + 1 else acc)
    0 !plan
