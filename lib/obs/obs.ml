(* The single global registry. A process profiles one run at a time
   (the CLI enables collection around one command), so global state is
   the right shape — it lets every subsystem register counters at
   module load with no plumbing through a dozen constructors. *)

let on = Atomic.make false

let origin = Atomic.make 0

type kind = K_sum | K_max

type counter = { c_name : string; c_kind : kind; c_cell : int Atomic.t }

(* Registration happens at module-load time and on first use of dynamic
   names; reads of the table happen only at export. One mutex is
   plenty. *)
let reg_lock = Mutex.create ()

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register name kind =
  locked reg_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_kind = kind; c_cell = Atomic.make 0 } in
        Hashtbl.add registry name c;
        c)

let counter name = register name K_sum

let gauge_max name = register name K_max

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_cell n)

let incr c = add c 1

let rec observe_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then
    observe_max cell v

let observe c v = if Atomic.get on then observe_max c.c_cell v

let value c = Atomic.get c.c_cell

let counters () =
  locked reg_lock (fun () ->
      Hashtbl.fold (fun n c acc -> (n, Atomic.get c.c_cell) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Spans.                                                               *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_arg : string option;
  sp_domain : int;
  sp_depth : int;
  sp_start_ns : int;
  sp_dur_ns : int;
}

(* Nesting is a per-domain property (a worker's replay span must not
   become a child of whatever the main domain is doing), so the depth
   lives in domain-local storage; only the completed-span list is
   shared. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let span_lock = Mutex.create ()

let spans_rev : span list ref = ref []

let record sp = locked span_lock (fun () -> spans_rev := sp :: !spans_rev)

let with_span ?(cat = "span") ?arg name f =
  if not (Atomic.get on) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Monotonic_clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Monotonic_clock.elapsed_ns t0 in
        depth := d;
        record
          {
            sp_name = name;
            sp_cat = cat;
            sp_arg = arg;
            sp_domain = (Domain.self () :> int);
            sp_depth = d;
            sp_start_ns = t0 - Atomic.get origin;
            sp_dur_ns = dur;
          })
      f
  end

let phase name f = with_span ~cat:"phase" name f

let spans () = locked span_lock (fun () -> List.rev !spans_rev)

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  locked reg_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) registry);
  locked span_lock (fun () -> spans_rev := []);
  Atomic.set origin (Monotonic_clock.now_ns ())

let enable () =
  if not (Atomic.get on) then begin
    Atomic.set origin (Monotonic_clock.now_ns ());
    Atomic.set on true
  end

let disable () = Atomic.set on false

let enabled () = Atomic.get on

let now_ns = Monotonic_clock.now_ns

(* ------------------------------------------------------------------ *)
(* Export (hand-rolled JSON; this library depends on nothing).          *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_span b sp =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"arg\":%s,\"domain\":%d,\"depth\":%d,\
        \"start_ns\":%d,\"dur_ns\":%d}"
       (escape sp.sp_name) (escape sp.sp_cat)
       (match sp.sp_arg with
       | None -> "null"
       | Some a -> Printf.sprintf "\"%s\"" (escape a))
       sp.sp_domain sp.sp_depth sp.sp_start_ns sp.sp_dur_ns)

let to_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":1,\"enabled\":%b,\"counters\":{"
       (Atomic.get on));
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape n) v))
    (counters ());
  Buffer.add_string b "},\"spans\":[";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      json_span b sp)
    (spans ());
  Buffer.add_string b "]}";
  Buffer.contents b

(* chrome://tracing's JSON-array flavour: "X" (complete) events carry
   ts/dur in *microseconds*; "C" (counter) samples plot the final
   counter values at the trace end. tid = domain id, so each domain
   gets its own track. *)
let to_chrome_trace () =
  let b = Buffer.create 4096 in
  Buffer.add_char b '[';
  let all = spans () in
  let end_ts =
    List.fold_left
      (fun acc sp -> max acc (sp.sp_start_ns + sp.sp_dur_ns))
      0 all
  in
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\
            \"tid\":%d,\"ts\":%.3f,\"dur\":%.3f%s}"
           (escape sp.sp_name) (escape sp.sp_cat) sp.sp_domain
           (float_of_int sp.sp_start_ns /. 1e3)
           (float_of_int sp.sp_dur_ns /. 1e3)
           (match sp.sp_arg with
           | None -> ""
           | Some a ->
             Printf.sprintf ",\"args\":{\"detail\":\"%s\"}" (escape a))))
    all;
  let sep = ref (all <> []) in
  List.iter
    (fun (n, v) ->
      if !sep then Buffer.add_char b ',';
      sep := true;
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,\
            \"args\":{\"value\":%d}}"
           (escape n)
           (float_of_int end_ts /. 1e3)
           v))
    (counters ());
  Buffer.add_char b ']';
  Buffer.contents b

let write_file path s =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc s;
      Out_channel.output_char oc '\n')

let write_json path = write_file path (to_json ())

let write_chrome_trace path = write_file path (to_chrome_trace ())
