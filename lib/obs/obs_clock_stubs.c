/* Monotonic clock for the observability layer.
 *
 * CLOCK_MONOTONIC never steps with NTP/wall-clock adjustments, which is
 * the whole point: phase timings and the perf gate must not flip sign
 * because the host corrected its clock mid-benchmark. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value ppd_obs_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_int64(
      (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value ppd_obs_monotonic_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
#endif
