(** The observability layer: named counters, hierarchical spans and
    phase timers over the debugger's own two phases.

    PPD's premise is a cheap execution phase and a pay-as-you-go
    debugging phase; this module lets the repository {e measure} both
    from the inside (the DeWiz idea of event-based analysis, turned on
    ourselves). Subsystems register counters at module load and wrap
    interesting regions in spans; a profiling front end ([ppd profile],
    [--profile-out]) enables collection, runs, and exports.

    {b Disabled by default, and free when disabled.} Every operation
    first reads one atomic boolean; when it is false, counters and
    spans return immediately without allocating. The target (enforced
    by the perf-smoke gate) is <2% overhead on the T1 logging path.

    {b Domain safety.} Counters are atomics; span begin/end pairs are
    tracked per domain (so nesting is per-domain, as Chrome's
    trace_event model requires); the completed-span list is under a
    mutex. All operations are safe from any domain. *)

(** {1 Enabling} *)

val enable : unit -> unit
(** Start collecting. Records the export time origin; counter values
    accumulated while disabled are impossible (ops were no-ops). *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and drop every recorded span. Registered
    counters survive (registration is done at module load). *)

val now_ns : unit -> int
(** The raw monotonic clock, in nanoseconds since an arbitrary origin —
    for callers that time regions themselves (the bench harness).
    Always live, independent of {!enabled}; never wall-clock, so NTP
    adjustments cannot corrupt a measurement. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Registered sum counter; [add] accumulates. Re-registering a name
    returns the same counter. Use dotted names
    ([subsystem.thing.metric]). *)

val gauge_max : string -> counter
(** Registered high-watermark counter; [observe] keeps the maximum. *)

val add : counter -> int -> unit

val incr : counter -> unit

val observe : counter -> int -> unit
(** Raise a {!gauge_max} to [v] if [v] is larger (no-op on sum
    counters' semantics: it still takes the max). *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

(** {1 Spans} *)

val with_span : ?cat:string -> ?arg:string -> string -> (unit -> 'a) -> 'a
(** Time [f] as a span named [name]. Records the owning domain id and
    the per-domain nesting depth; exceptions propagate but the span is
    still closed. When disabled: exactly [f ()]. [cat] defaults to
    ["span"]; [arg] is a free-form detail string (e.g. ["p0#3"]). *)

val phase : string -> (unit -> 'a) -> 'a
(** [with_span ~cat:"phase"] — the §3.2 phase clock (execution vs
    debugging). *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_arg : string option;
  sp_domain : int;  (** [Domain.self] of the domain that ran it *)
  sp_depth : int;  (** nesting depth within that domain, 0 = root *)
  sp_start_ns : int;  (** relative to the {!enable} origin *)
  sp_dur_ns : int;
}

val spans : unit -> span list
(** Completed spans in completion order. *)

(** {1 Export} *)

val to_json : unit -> string
(** One JSON object: [{"version":1,"enabled":…,"counters":{…},
    "spans":[…]}]. Hand-rolled, no dependencies; counter names sorted,
    spans in completion order, so the output is deterministic for a
    deterministic run. *)

val to_chrome_trace : unit -> string
(** The Chrome [trace_event] JSON-array format (loadable in
    [chrome://tracing] / Perfetto): one ["ph":"X"] complete event per
    span (tid = domain id), then one ["ph":"C"] counter sample per
    registered counter at the trace end. *)

val write_json : string -> unit
(** [to_json] to a file. *)

val write_chrome_trace : string -> unit
