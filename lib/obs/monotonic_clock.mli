(** A monotonic, NTP-immune nanosecond clock (CLOCK_MONOTONIC).

    Every timing in the repository — phase spans, per-replay timings,
    the benchmark harness — goes through this module. Wall-clock time
    ([Unix.gettimeofday]) steps when the host corrects its clock, which
    can flip the sign of a short measurement; the monotonic clock only
    ever moves forward. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin (boot, typically). The
    origin is meaningless; only differences are. Fits an OCaml [int]
    for ~146 years of uptime. *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is [now_ns () - t0], clamped to be non-negative. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds, for human-facing reports. *)
