module P = Lang.Prog
module D = Lang.Diag

type ctx = {
  prog : P.t;
  cfgs : Cfg.t array;
  mhp : Mhp.t;
  proto : Proto.t Lazy.t;
}

type pass = {
  pass_name : string;
  pass_doc : string;
  pass_run : ctx -> D.collector -> unit;
}

let make_ctx (p : P.t) =
  let cfgs = Array.map (fun f -> Cfg.build p f) p.funcs in
  let mhp = Mhp.compute ~cfgs p in
  { prog = p; cfgs; mhp; proto = lazy (Proto.analyze ~mhp p) }

let stmt_loc (p : P.t) sid = p.stmts.(sid).P.loc

let fname_of (p : P.t) sid = p.funcs.(p.stmt_fid.(sid)).P.fname

(* ------------------------------------------------------------------ *)
(* PPD010 / PPD011: MHP-refined data races.                             *)
(* ------------------------------------------------------------------ *)

let describe_access (p : P.t) (a : Static_race.access) =
  Printf.sprintf "%s of '%s' at s%d in %s"
    (if a.Static_race.acc_write then "write" else "read")
    a.Static_race.acc_var.P.vname a.Static_race.acc_sid (fname_of p a.acc_sid)

let race_diagnostics ctx c =
  let p = ctx.prog in
  List.iter
    (fun (r : Static_race.report) ->
      let code = if r.pr_write_write then "PPD011" else "PPD010" in
      let kind = if r.pr_write_write then "write/write" else "read/write" in
      D.emit c ~code ~severity:D.Sev_warning
        (stmt_loc p r.pr_a1.acc_sid)
        ~related:
          [ (stmt_loc p r.pr_a2.acc_sid, describe_access p r.pr_a2) ]
        "potential %s race on shared '%s': %s may happen in parallel with %s"
        kind r.pr_var.P.vname
        (describe_access p r.pr_a1)
        (describe_access p r.pr_a2))
    (Static_race.analyze ~mhp:ctx.mhp p)

(* ------------------------------------------------------------------ *)
(* PPD020: static deadlock candidates (lock-order cycles).              *)
(* ------------------------------------------------------------------ *)

let deadlock_diagnostics ctx c =
  let p = ctx.prog in
  let ns = Array.length p.sems in
  if ns > 0 then begin
    let summaries = Static_race.compute_summaries p in
    (* acquisition edges: P(a) executed while h is must-held *)
    let edges = ref [] in
    Array.iter
      (fun (s : P.stmt) ->
        match s.desc with
        | P.Sp sem when Mhp.function_live ctx.mhp p.stmt_fid.(s.sid) ->
          let fid = p.stmt_fid.(s.sid) in
          let cfg = ctx.cfgs.(fid) in
          let node = cfg.Cfg.node_of_sid.(s.sid) in
          let held = Static_race.held_at ~summaries p cfg node in
          if List.mem sem.sem_id held then
            D.emit c ~code:"PPD020" ~severity:D.Sev_warning s.loc
              "self-deadlock: P on '%s' at s%d in %s while '%s' is already \
               held"
              sem.sem_name s.sid (fname_of p s.sid) sem.sem_name;
          List.iter
            (fun h ->
              if h <> sem.sem_id then edges := (h, sem.sem_id, s.sid) :: !edges)
            held
        | _ -> ())
      p.stmts;
    let edges = List.rev !edges in
    (* transitive closure of the held -> acquired order *)
    let reach = Array.make_matrix ns ns false in
    List.iter (fun (h, a, _) -> reach.(h).(a) <- true) edges;
    for k = 0 to ns - 1 do
      for i = 0 to ns - 1 do
        for j = 0 to ns - 1 do
          if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
        done
      done
    done;
    let follows a b = a = b || reach.(a).(b) in
    List.iter
      (fun (h1, a1, sid1) ->
        List.iter
          (fun (h2, a2, sid2) ->
            if
              sid1 < sid2 && follows a1 h2 && follows a2 h1
              && Mhp.may_parallel ctx.mhp sid1 sid2
            then
              D.emit c ~code:"PPD020" ~severity:D.Sev_warning (stmt_loc p sid1)
                ~related:
                  [
                    ( stmt_loc p sid2,
                      Printf.sprintf "P on '%s' while holding '%s' at s%d in %s"
                        p.sems.(a2).P.sem_name p.sems.(h2).P.sem_name sid2
                        (fname_of p sid2) );
                  ]
                "potential deadlock: lock-order cycle between '%s' and '%s' \
                 (P on '%s' while holding '%s' at s%d in %s can run in \
                 parallel with the reverse order)"
                p.sems.(h1).P.sem_name p.sems.(a1).P.sem_name
                p.sems.(a1).P.sem_name p.sems.(h1).P.sem_name sid1
                (fname_of p sid1))
          edges)
      edges
  end

(* ------------------------------------------------------------------ *)
(* PPD030 / PPD031: unreachable statements and dead functions.          *)
(* ------------------------------------------------------------------ *)

let unreachable_diagnostics ctx c =
  let p = ctx.prog in
  Array.iter
    (fun (f : P.func) ->
      if not (Mhp.function_live ctx.mhp f.fid) then begin
        if f.fid <> p.main_fid then
          D.emit c ~code:"PPD031" ~severity:D.Sev_note f.floc
            "function '%s' is never called or spawned" f.fname
      end
      else begin
        let cfg = ctx.cfgs.(f.fid) in
        let reachable = Cfg.reachable cfg in
        (* report only the first statement of each maximal dead run:
           sids are pre-order within a function, so a dead statement
           whose predecessor sid is also dead continues the same run *)
        let dead sid =
          sid >= 0
          && sid < Array.length p.stmts
          && p.stmt_fid.(sid) = f.fid
          && cfg.Cfg.node_of_sid.(sid) >= 0
          && not (Bitset.mem reachable cfg.Cfg.node_of_sid.(sid))
        in
        P.iter_stmts
          (fun s ->
            if dead s.sid && not (dead (s.sid - 1)) then
              D.emit c ~code:"PPD030" ~severity:D.Sev_note s.loc
                "unreachable statement s%d in %s (%s)" s.sid f.fname
                (P.stmt_label s))
          f.body
      end)
    p.funcs

(* ------------------------------------------------------------------ *)
(* PPD040: possibly-uninitialised reads.                                *)
(* ------------------------------------------------------------------ *)

let uninit_diagnostics ctx c =
  let p = ctx.prog in
  Array.iter
    (fun (f : P.func) ->
      if Mhp.function_live ctx.mhp f.fid then begin
        let cfg = ctx.cfgs.(f.fid) in
        let rd = Reaching_defs.compute p cfg in
        let reachable = Cfg.reachable cfg in
        let is_param (v : P.var) =
          List.exists (fun (q : P.var) -> q.vid = v.vid) f.params
        in
        P.iter_stmts
          (fun s ->
            let node = cfg.Cfg.node_of_sid.(s.sid) in
            if node >= 0 && Bitset.mem reachable node then
              List.iter
                (fun (v : P.var) ->
                  (* scalar locals only: parameters arrive initialised,
                     globals hold their pre-invocation value, array
                     element writes never kill *)
                  if
                    v.P.vfid = f.fid && v.P.vty = P.Tint && (not (is_param v))
                    && List.exists
                         (fun (d : Reaching_defs.def_site) ->
                           d.def_node = cfg.Cfg.entry)
                         (Reaching_defs.reaching rd ~node ~vid:v.vid)
                  then
                    D.emit c ~code:"PPD040" ~severity:D.Sev_warning s.loc
                      "'%s' may be read before initialisation at s%d in %s"
                      v.vname s.sid f.fname)
                (Use_def.direct_uses s))
          f.body
      end)
    p.funcs

(* ------------------------------------------------------------------ *)
(* PPD070 / PPD071 / PPD072: communication-protocol findings.           *)
(* ------------------------------------------------------------------ *)

let proto_deadlock_diagnostics ctx c =
  let p = ctx.prog in
  match (Lazy.force ctx.proto).Proto.verdict with
  | Proto.Deadlocks certs ->
    List.iter
      (fun (cert : Proto.cert) ->
        match cert.cert_blocked with
        | [] -> ()
        | first :: rest ->
          D.emit c ~code:"PPD070" ~severity:D.Sev_warning
            (stmt_loc p first.bk_sid)
            ~related:
              (List.map (fun (b : Proto.blocked) -> (stmt_loc p b.bk_sid, b.bk_what)) rest)
            "potential deadlock (%s): %s after %d protocol step(s); run \
             'ppd proto' for the certificate"
            (Proto.kind_name cert.cert_kind)
            first.bk_what
            (List.length cert.cert_steps))
      certs
  | _ -> ()

let orphan_comm_diagnostics ctx c =
  let p = ctx.prog in
  let proto = Lazy.force ctx.proto in
  List.iter
    (fun (ch, sid) ->
      if ch >= 0 then
        D.emit c ~code:"PPD071" ~severity:D.Sev_note (stmt_loc p sid)
          "orphan send: the message sent on '%s' at s%d in %s may never be \
           received"
          p.chans.(ch).P.ch_name sid (fname_of p sid))
    proto.Proto.orphan_sends;
  List.iter
    (fun sid ->
      D.emit c ~code:"PPD071" ~severity:D.Sev_warning (stmt_loc p sid)
        "dead receive: the recv at s%d in %s can never be satisfied" sid
        (fname_of p sid))
    proto.Proto.dead_recvs

let sem_leak_diagnostics ctx c =
  let p = ctx.prog in
  let proto = Lazy.force ctx.proto in
  List.iter
    (fun (sem, deficit) ->
      (* anchor the report at the first P on that semaphore *)
      let loc =
        Array.to_seq p.stmts
        |> Seq.find_map (fun (s : P.stmt) ->
               match s.desc with
               | P.Sp q when q.sem_id = sem -> Some s.loc
               | _ -> None)
        |> Option.value ~default:p.funcs.(p.main_fid).P.floc
      in
      D.emit c ~code:"PPD072" ~severity:D.Sev_warning loc
        "semaphore leak: '%s' may end the program %d token(s) short of its \
         initial %d (held at exit)"
        p.sems.(sem).P.sem_name deficit p.sems.(sem).P.sem_init)
    proto.Proto.sem_leaks

(* ------------------------------------------------------------------ *)
(* Registry.                                                            *)
(* ------------------------------------------------------------------ *)

let passes =
  [
    {
      pass_name = "races";
      pass_doc = "MHP-refined potential data races (PPD010, PPD011)";
      pass_run = race_diagnostics;
    };
    {
      pass_name = "deadlocks";
      pass_doc = "lock-order cycles over must-held semaphores (PPD020)";
      pass_run = deadlock_diagnostics;
    };
    {
      pass_name = "unreachable";
      pass_doc = "unreachable statements and dead functions (PPD030, PPD031)";
      pass_run = unreachable_diagnostics;
    };
    {
      pass_name = "uninit";
      pass_doc = "possibly-uninitialised local reads (PPD040)";
      pass_run = uninit_diagnostics;
    };
    {
      pass_name = "proto-deadlock";
      pass_doc = "communication-protocol deadlock certificates (PPD070)";
      pass_run = proto_deadlock_diagnostics;
    };
    {
      pass_name = "orphan-comm";
      pass_doc = "orphaned sends and dead receives (PPD071)";
      pass_run = orphan_comm_diagnostics;
    };
    {
      pass_name = "sem-leak";
      pass_doc = "semaphores still held at program exit (PPD072)";
      pass_run = sem_leak_diagnostics;
    };
  ]

let pass_names = List.map (fun p -> p.pass_name) passes

exception Unknown_pass of string

let run ?only (p : P.t) =
  let selected =
    match only with
    | None -> passes
    | Some names ->
      List.map
        (fun n ->
          match List.find_opt (fun q -> q.pass_name = n) passes with
          | Some q -> q
          | None -> raise (Unknown_pass n))
        names
  in
  let ctx = make_ctx p in
  let c = D.create () in
  List.iter (fun q -> q.pass_run ctx c) selected;
  D.diagnostics c
