module P = Lang.Prog

(* A spawn site: one [spawn] statement, matched to the [join]s that are
   guaranteed to wait for the process it creates. *)
type site = {
  site_sid : int;
  site_fid : int;  (* owner function *)
  site_node : int;  (* CFG node in the owner *)
  site_callee : int;
  site_joins : int list;  (* owner CFG nodes of matched joins *)
  site_in_loop : bool;
  site_self_seq : bool;
      (* spawn in a loop, but every cycle back to it passes a matched
         join: at most one instance is alive at a time *)
}

(* A thread class: [main]'s process, or the processes created by one
   spawn site. *)
type cls = {
  cls_id : int;
  cls_site : site option;  (* [None] for main *)
  cls_invoc : int array;
      (* per fid: 0 = never runs in this class, 1 = at most once per
         instance, 2 = possibly many times per instance *)
  mutable cls_live : bool;
  mutable cls_multi : bool;  (* may several instances be alive at once *)
}

(* A must-ordering chain: everything completing before [pre] in
   [pre_fid] happens-before everything dominated by [post] in
   [post_fid]. Built from unique-site send->recv and V->P pairs,
   closed under composition. *)
type chain = {
  ch_pre_fid : int;
  ch_pre_node : int;
  ch_post_fid : int;
  ch_post_node : int;
}

type t = {
  prog : P.t;
  cfgs : Cfg.t array;
  doms : Dominance.t array;
  classes : cls array;
  procs : cls list array;  (* fid -> live classes that may run it *)
  chains : chain list;
  shared_writes : int list array;  (* vid -> sids of live shared writes *)
  reach_memo : (int, Bitset.t) Hashtbl.t array;  (* per fid: node -> reach *)
  veto : (int -> int -> bool) option;
      (* external must-not-parallel oracle (protocol exclusion facts);
         consulted last in [may_parallel] *)
}

(* ------------------------------------------------------------------ *)
(* Intra-function ordering primitives.                                  *)
(* ------------------------------------------------------------------ *)

(* Nodes reachable from [node] via at least one edge (memoized). *)
let reach_from t fid node =
  let memo = t.reach_memo.(fid) in
  match Hashtbl.find_opt memo node with
  | Some b -> b
  | None ->
    let cfg = t.cfgs.(fid) in
    let b = Bitset.create (Cfg.nnodes cfg) in
    let q = Queue.create () in
    let push m =
      if not (Bitset.mem b m) then begin
        Bitset.add b m;
        Queue.add m q
      end
    in
    List.iter push (Cfg.succ_ids cfg node);
    while not (Queue.is_empty q) do
      List.iter push (Cfg.succ_ids cfg (Queue.pop q))
    done;
    Hashtbl.replace memo node b;
    b

(* Within a single invocation of [fid]: does every execution of [node]
   complete before any execution of [anchor] begins? True when [anchor]
   cannot flow back to [node]; the anchor itself counts (its reads and
   writes are part of the anchoring event). *)
let before_anchor t fid ~anchor node =
  node = anchor || not (Bitset.mem (reach_from t fid anchor) node)

(* Within a single invocation of [fid]: does every execution of [node]
   begin only after the last execution of [anchor] completed? True when
   [anchor] dominates [node] and [node] cannot flow back to [anchor]. *)
let after_anchor t fid ~anchor node =
  node = anchor
  || Dominance.dominates t.doms.(fid) anchor node
     && not (Bitset.mem (reach_from t fid node) anchor)

let node_of t sid =
  let fid = t.prog.P.stmt_fid.(sid) in
  (fid, t.cfgs.(fid).Cfg.node_of_sid.(sid))

(* The unique executor of [fid], when there is exactly one live class
   running it, at most one instance at a time, at most one invocation
   per instance. Only then does single-invocation CFG reasoning about
   statements of [fid] extend to whole-execution claims. *)
let solo t fid =
  match t.procs.(fid) with
  | [ c ] when (not c.cls_multi) && c.cls_invoc.(fid) = 1 -> Some c
  | _ -> None

(* Close a chain set under transitive composition through intermediate
   processes: the second chain's pre must be fully after the first
   chain's post. *)
let close_chains t base =
  let seen = Hashtbl.create 16 in
  let key c = (c.ch_pre_fid, c.ch_pre_node, c.ch_post_fid, c.ch_post_node) in
  let all = ref [] in
  List.iter
    (fun c ->
      if not (Hashtbl.mem seen (key c)) then begin
        Hashtbl.add seen (key c) ();
        all := c :: !all
      end)
    base;
  let grew = ref true in
  while !grew do
    grew := false;
    let cur = !all in
    List.iter
      (fun c1 ->
        List.iter
          (fun c2 ->
            if
              c1.ch_post_fid = c2.ch_pre_fid
              && after_anchor t c1.ch_post_fid ~anchor:c1.ch_post_node
                   c2.ch_pre_node
            then begin
              let c =
                {
                  ch_pre_fid = c1.ch_pre_fid;
                  ch_pre_node = c1.ch_pre_node;
                  ch_post_fid = c2.ch_post_fid;
                  ch_post_node = c2.ch_post_node;
                }
              in
              if not (Hashtbl.mem seen (key c)) then begin
                Hashtbl.add seen (key c) ();
                all := c :: !all;
                grew := true
              end
            end)
          cur)
      cur
  done;
  !all

(* ------------------------------------------------------------------ *)
(* Construction.                                                        *)
(* ------------------------------------------------------------------ *)

(* Per-instance invocation multiplicity of every function reachable
   from [root] through calls: 0 / 1 / many(2). A call site in a loop,
   a caller that itself runs many times, several call sites, or
   recursion all saturate to many. *)
let invocations (p : P.t) (cg : Callgraph.t) ~in_loop root =
  let nf = Array.length p.funcs in
  let count = Array.make nf 0 in
  count.(root) <- 1;
  let changed = ref true in
  while !changed do
    changed := false;
    let total = Array.make nf 0 in
    total.(root) <- 1;
    for g = 0 to nf - 1 do
      if count.(g) > 0 then
        List.iter
          (fun (sid, callee) ->
            let k = if count.(g) >= 2 || in_loop.(sid) then 2 else 1 in
            total.(callee) <- min 2 (total.(callee) + k))
          cg.Callgraph.call_sites.(g)
    done;
    for f = 0 to nf - 1 do
      if total.(f) > count.(f) then begin
        count.(f) <- total.(f);
        changed := true
      end
    done
  done;
  count

let collect_sites (p : P.t) cfgs =
  let sites = ref [] in
  Array.iter
    (fun (f : P.func) ->
      let cfg = cfgs.(f.P.fid) in
      let spawns = ref [] and joins = ref [] in
      let rec walk in_loop stmts =
        List.iter
          (fun (s : P.stmt) ->
            (match s.desc with
            | P.Sspawn (target, c) -> spawns := (s, target, c, in_loop) :: !spawns
            | P.Sjoin (_, h) -> joins := (s, h) :: !joins
            | _ -> ());
            match s.desc with
            | P.Sif (_, a, b) ->
              walk in_loop a;
              walk in_loop b
            | P.Swhile (_, b) -> walk true b
            | _ -> ())
          stmts
      in
      walk false f.body;
      if !spawns <> [] then begin
        let rd = Reaching_defs.compute p cfg in
        List.iter
          (fun ((s : P.stmt), target, (c : P.call), in_loop) ->
            let snode = cfg.Cfg.node_of_sid.(s.sid) in
            (* joins whose handle is, at the join, defined only by this
               spawn *)
            let matched =
              match target with
              | Some (P.Lvar v) when v.P.vty = P.Tint ->
                List.filter_map
                  (fun ((j : P.stmt), h) ->
                    match h with
                    | P.Evar hv when hv.P.vid = v.P.vid -> (
                      let jnode = cfg.Cfg.node_of_sid.(j.sid) in
                      match
                        Reaching_defs.reaching rd ~node:jnode ~vid:v.P.vid
                      with
                      | [ d ] when d.Reaching_defs.def_node = snode ->
                        Some jnode
                      | _ -> None)
                    | _ -> None)
                  !joins
              | _ -> []
            in
            (* in a loop: is every cycle spawn -> spawn cut by a matched
               join? *)
            let self_seq =
              in_loop && matched <> []
              && begin
                   let n = Cfg.nnodes cfg in
                   let seen = Array.make n false in
                   let q = Queue.create () in
                   let back = ref false in
                   let push m =
                     if m = snode then back := true
                     else if (not seen.(m)) && not (List.mem m matched) then begin
                       seen.(m) <- true;
                       Queue.add m q
                     end
                   in
                   List.iter push (Cfg.succ_ids cfg snode);
                   while not (Queue.is_empty q) do
                     List.iter push (Cfg.succ_ids cfg (Queue.pop q))
                   done;
                   not !back
                 end
            in
            sites :=
              {
                site_sid = s.sid;
                site_fid = f.P.fid;
                site_node = snode;
                site_callee = c.P.callee;
                site_joins = matched;
                site_in_loop = in_loop;
                site_self_seq = self_seq;
              }
              :: !sites)
          !spawns
      end)
    p.funcs;
  List.sort (fun a b -> Int.compare a.site_sid b.site_sid) !sites

let compute ?cfgs (p : P.t) =
  let cfgs =
    match cfgs with
    | Some c -> c
    | None -> Array.map (fun f -> Cfg.build p f) p.funcs
  in
  let doms = Array.map Dominance.dominators cfgs in
  let nf = Array.length p.funcs in
  (* statements lexically inside a [while] body *)
  let in_loop = Array.make (Array.length p.stmts) false in
  Array.iter
    (fun (f : P.func) ->
      let rec walk inl stmts =
        List.iter
          (fun (s : P.stmt) ->
            if inl then in_loop.(s.sid) <- true;
            match s.desc with
            | P.Sif (_, a, b) ->
              walk inl a;
              walk inl b
            | P.Swhile (_, b) -> walk true b
            | _ -> ())
          stmts
      in
      walk false f.body)
    p.funcs;
  let cg = Callgraph.compute p in
  let sites = collect_sites p cfgs in
  let classes =
    Array.of_list
      ({
         cls_id = 0;
         cls_site = None;
         cls_invoc = invocations p cg ~in_loop p.main_fid;
         cls_live = true;
         cls_multi = false;
       }
      :: List.mapi
           (fun i s ->
             {
               cls_id = i + 1;
               cls_site = Some s;
               cls_invoc = invocations p cg ~in_loop s.site_callee;
               cls_live = false;
               cls_multi = false;
             })
           sites)
  in
  (* liveness and multiplicity fixpoint *)
  let reachable = Array.map Cfg.reachable cfgs in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun c ->
        match c.cls_site with
        | None -> ()
        | Some s ->
          let owners =
            Array.to_list classes
            |> List.filter (fun o -> o.cls_live && o.cls_invoc.(s.site_fid) > 0)
          in
          let live =
            owners <> [] && Bitset.mem reachable.(s.site_fid) s.site_node
          in
          (* how many times may the site itself execute, over all alive
             owner instances and invocations? *)
          let slots =
            List.fold_left
              (fun acc o ->
                acc
                + (if o.cls_multi || o.cls_invoc.(s.site_fid) >= 2 then 2 else 1))
              0 owners
          in
          let multi = (s.site_in_loop && not s.site_self_seq) || slots > 1 in
          if live <> c.cls_live || multi <> c.cls_multi then begin
            c.cls_live <- live;
            c.cls_multi <- multi;
            changed := true
          end)
      classes
  done;
  let procs =
    Array.init nf (fun fid ->
        Array.to_list classes
        |> List.filter (fun c -> c.cls_live && c.cls_invoc.(fid) > 0))
  in
  let shared_writes = Array.make p.nvars [] in
  Array.iter
    (fun (s : P.stmt) ->
      if procs.(p.stmt_fid.(s.sid)) <> [] then
        List.iter
          (fun (v : P.var) ->
            if P.is_shared v then
              shared_writes.(v.vid) <- s.sid :: shared_writes.(v.vid))
          (Use_def.direct_defs s))
    p.stmts;
  Array.iteri (fun i l -> shared_writes.(i) <- List.rev l) shared_writes;
  let t0 =
    {
      prog = p;
      cfgs;
      doms;
      classes;
      procs;
      chains = [];
      shared_writes;
      reach_memo = Array.init nf (fun _ -> Hashtbl.create 8);
      veto = None;
    }
  in
  (* base chains: channels with a unique send and recv site; semaphores
     initialised to 0 with a unique V and P site *)
  let nchans = Array.length p.chans and nsems = Array.length p.sems in
  let ch_send = Array.make nchans [] and ch_recv = Array.make nchans [] in
  let sem_v = Array.make nsems [] and sem_p = Array.make nsems [] in
  Array.iter
    (fun (s : P.stmt) ->
      let fid = p.stmt_fid.(s.sid) in
      let here = (fid, cfgs.(fid).Cfg.node_of_sid.(s.sid)) in
      match s.desc with
      | P.Ssend (c, _) -> ch_send.(c.ch_id) <- here :: ch_send.(c.ch_id)
      | P.Srecv (c, _) -> ch_recv.(c.ch_id) <- here :: ch_recv.(c.ch_id)
      | P.Sv sem -> sem_v.(sem.sem_id) <- here :: sem_v.(sem.sem_id)
      | P.Sp sem -> sem_p.(sem.sem_id) <- here :: sem_p.(sem.sem_id)
      | _ -> ())
    p.stmts;
  let base = ref [] in
  let pair pre post =
    match (pre, post) with
    | [ (pre_fid, pre_node) ], [ (post_fid, post_node) ]
      when solo t0 pre_fid <> None && solo t0 post_fid <> None ->
      base :=
        {
          ch_pre_fid = pre_fid;
          ch_pre_node = pre_node;
          ch_post_fid = post_fid;
          ch_post_node = post_node;
        }
        :: !base
    | _ -> ()
  in
  for c = 0 to nchans - 1 do
    pair ch_send.(c) ch_recv.(c)
  done;
  for s = 0 to nsems - 1 do
    if p.sems.(s).P.sem_init = 0 then pair sem_v.(s) sem_p.(s)
  done;
  { t0 with chains = close_chains t0 !base }

(* ------------------------------------------------------------------ *)
(* Queries.                                                             *)
(* ------------------------------------------------------------------ *)

let function_live t fid = t.procs.(fid) <> []

let nclasses t =
  Array.fold_left (fun n c -> if c.cls_live then n + 1 else n) 0 t.classes

(* Everything before [sa] (inclusive) happens-before everything after
   some chain's post anchor that dominates [sb]. *)
let chain_hb t sa sb =
  let fa, na = node_of t sa and fb, nb = node_of t sb in
  List.exists
    (fun c ->
      c.ch_pre_fid = fa
      && c.ch_post_fid = fb
      && before_anchor t fa ~anchor:c.ch_pre_node na
      && after_anchor t fb ~anchor:c.ch_post_node nb)
    t.chains

(* Every CFG path from [site]'s spawn to [target] passes a matched
   join: any instance spawned before [target] runs has been joined by
   then. Only meaningful for non-multiple classes — with several
   instances alive, one join execution collects only the newest. *)
let joins_cut t fid ~(site : site) target =
  site.site_joins <> []
  && begin
       let cfg = t.cfgs.(fid) in
       let seen = Array.make (Cfg.nnodes cfg) false in
       let q = Queue.create () in
       let reached = ref false in
       let push m =
         if m = target then reached := true
         else if (not seen.(m)) && not (List.mem m site.site_joins) then begin
           seen.(m) <- true;
           Queue.add m q
         end
       in
       List.iter push (Cfg.succ_ids cfg site.site_node);
       while not (Queue.is_empty q) do
         List.iter push (Cfg.succ_ids cfg (Queue.pop q))
       done;
       not !reached
     end

(* Is statement [s] ordered against the whole of class [other] because
   [other] is spawned (and joined) inside [s]'s own function, whose
   sole executor runs it once? Either [s] precedes every spawn, or
   every spawn-to-[s] path passes a matched join — instances created
   after [s] cannot overlap it either way. *)
let class_shielded t s other =
  let fs, ns = node_of t s in
  match other.cls_site with
  | Some site
    when site.site_fid = fs && solo t fs <> None && not other.cls_multi ->
    before_anchor t fs ~anchor:site.site_node ns
    || joins_cut t fs ~site ns
  | _ -> false

(* Two spawned classes whose sites share a solo home function, with one
   joined before the other is spawned, can never overlap. *)
let classes_disjoint t c1 c2 =
  match (c1.cls_site, c2.cls_site) with
  | Some s1, Some s2 when s1.site_fid = s2.site_fid && solo t s1.site_fid <> None
    ->
    let h = s1.site_fid in
    List.exists (fun j -> after_anchor t h ~anchor:j s2.site_node) s1.site_joins
    || List.exists
         (fun j -> after_anchor t h ~anchor:j s1.site_node)
         s2.site_joins
  | _ -> false

let may_parallel t sa sb =
  let fa = t.prog.P.stmt_fid.(sa) and fb = t.prog.P.stmt_fid.(sb) in
  t.procs.(fa) <> []
  && t.procs.(fb) <> []
  && (not (chain_hb t sa sb))
  && (not (chain_hb t sb sa))
  && List.exists
       (fun c1 ->
         List.exists
           (fun c2 ->
             if c1.cls_id = c2.cls_id then c1.cls_multi
             else
               (not (classes_disjoint t c1 c2))
               && (not (class_shielded t sa c2))
               && not (class_shielded t sb c1))
           t.procs.(fb))
       t.procs.(fa)
  && match t.veto with None -> true | Some f -> not (f sa sb)

let same_sequential t sa sb =
  match
    (t.procs.(t.prog.P.stmt_fid.(sa)), t.procs.(t.prog.P.stmt_fid.(sb)))
  with
  | [ c1 ], [ c2 ] -> c1.cls_id = c2.cls_id && not c1.cls_multi
  | _ -> false

(* Every live class running [target_fid] is spawned, inside [stmt]'s
   own (solo) function, strictly after [stmt] completes. *)
let all_spawned_after t ~stmt ~target_fid =
  let fs, ns = node_of t stmt in
  t.procs.(target_fid) <> []
  && List.for_all
       (fun c ->
         match c.cls_site with
         | Some site ->
           site.site_fid = fs && solo t fs <> None
           && before_anchor t fs ~anchor:site.site_node ns
         | None -> false)
       t.procs.(target_fid)

(* Every live class running [target_fid] is joined, inside [stmt]'s own
   (solo) function, before [stmt] begins. Beyond [joins_cut] (every
   spawned instance is joined on the way to [stmt]), the spawn must not
   be reachable from [stmt] — a later spawn would run after it. *)
let all_joined_before t ~target_fid ~stmt =
  let fs, ns = node_of t stmt in
  t.procs.(target_fid) <> []
  && List.for_all
       (fun c ->
         match c.cls_site with
         | Some site ->
           site.site_fid = fs && solo t fs <> None && (not c.cls_multi)
           && joins_cut t fs ~site ns
           && not (Bitset.mem (reach_from t fs ns) site.site_node)
         | None -> false)
       t.procs.(target_fid)

let ordered_before t sa sb =
  chain_hb t sa sb
  || all_spawned_after t ~stmt:sa ~target_fid:(t.prog.P.stmt_fid.(sb))
  || all_joined_before t ~target_fid:(t.prog.P.stmt_fid.(sa)) ~stmt:sb

(* A write is harmless for the sync-unit prelog of [read_sid] when it
   is confined to the same single process (sequential replay already
   orders it), provably after the read, or provably before every spawn
   of the reader's process (the e-block entry prelogs of that process
   are taken after the write, so they already carry its value). *)
let prelog_required t ~read_sid ~vid =
  let fr = t.prog.P.stmt_fid.(read_sid) in
  t.procs.(fr) <> []
  && List.exists
       (fun w ->
         (not (same_sequential t w read_sid))
         && (not (ordered_before t read_sid w))
         && not (all_spawned_after t ~stmt:w ~target_fid:fr))
       t.shared_writes.(vid)

(* ------------------------------------------------------------------ *)
(* Exposure for the protocol tier (Effects/Proto).                      *)
(* ------------------------------------------------------------------ *)

type class_view = {
  cv_id : int;
  cv_root_fid : int;
  cv_spawn_sid : int option;  (* None for main *)
  cv_multi : bool;
}

let live_classes t =
  Array.to_list t.classes
  |> List.filter (fun c -> c.cls_live)
  |> List.map (fun c ->
         {
           cv_id = c.cls_id;
           cv_root_fid =
             (match c.cls_site with
             | None -> t.prog.P.main_fid
             | Some s -> s.site_callee);
           cv_spawn_sid = Option.map (fun s -> s.site_sid) c.cls_site;
           cv_multi = c.cls_multi;
         })

let class_of_spawn t sid =
  Array.to_list t.classes
  |> List.find_map (fun c ->
         match c.cls_site with
         | Some s when c.cls_live && s.site_sid = sid -> Some c.cls_id
         | _ -> None)

(* A join sid belongs to a class when its CFG node is one of the class
   site's matched joins (site_joins are owner-CFG node ids). *)
let class_of_join t sid =
  let fid = t.prog.P.stmt_fid.(sid) in
  let node = t.cfgs.(fid).Cfg.node_of_sid.(sid) in
  Array.to_list t.classes
  |> List.find_map (fun c ->
         match c.cls_site with
         | Some s
           when c.cls_live && s.site_fid = fid && List.mem node s.site_joins ->
           Some c.cls_id
         | _ -> None)

let solo_fid t fid = solo t fid <> None

let cfgs t = t.cfgs

let refine ?not_parallel ~chains t =
  let extra =
    List.filter_map
      (fun (pre_sid, post_sid) ->
        let pre_fid, pre_node = node_of t pre_sid
        and post_fid, post_node = node_of t post_sid in
        (* chain semantics only extend to whole-execution claims when
           each side's function has a unique single-shot executor *)
        if solo_fid t pre_fid && solo_fid t post_fid then
          Some
            {
              ch_pre_fid = pre_fid;
              ch_pre_node = pre_node;
              ch_post_fid = post_fid;
              ch_post_node = post_node;
            }
        else None)
      chains
  in
  let veto =
    match (not_parallel, t.veto) with
    | None, v -> v
    | Some f, None -> Some f
    | Some f, Some g -> Some (fun a b -> f a b || g a b)
  in
  { t with chains = close_chains t (t.chains @ extra); veto }

let pp ppf t =
  let p = t.prog in
  Format.fprintf ppf "@[<v>mhp: %d live class(es)" (nclasses t);
  Array.iter
    (fun c ->
      if c.cls_live then
        match c.cls_site with
        | None ->
          Format.fprintf ppf "@,  #0 main (%s)" p.funcs.(p.main_fid).P.fname
        | Some s ->
          let joins =
            match s.site_joins with
            | [] -> ""
            | js ->
              " joined@"
              ^ String.concat ","
                  (List.map (fun n -> "n" ^ string_of_int n) js)
          in
          Format.fprintf ppf "@,  #%d spawn s%d in %s -> %s%s%s%s" c.cls_id
            s.site_sid
            p.funcs.(s.site_fid).P.fname
            p.funcs.(s.site_callee).P.fname
            (if c.cls_multi then " [many]" else "")
            joins
            (if s.site_self_seq then " [self-seq]" else ""))
    t.classes;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  chain: %s/n%d -> %s/n%d"
        p.funcs.(c.ch_pre_fid).P.fname c.ch_pre_node
        p.funcs.(c.ch_post_fid).P.fname c.ch_post_node)
    t.chains;
  Format.fprintf ppf "@]"
