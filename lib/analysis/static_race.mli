(** Static potential-race detection (§7: "A second (and major) issue is
    how to detect all potential race conditions").

    The dynamic detector (Definitions 6.1–6.4, over the parallel dynamic
    graph) reports races in one execution instance. This complementary
    analysis inspects the program text: two shared-variable accesses are
    a {e potential} race when

    - the statements may happen in parallel per {!Mhp} (spawn/join
      structure, matched send/recv pairs and must-ordered V→P edges all
      discharge pairs the old function-granular
      {!concurrent_functions} closure had to keep),
    - at least one is a write, and
    - no semaphore is {e must-held} around both (an intraprocedural
      lockset analysis: a semaphore is held at a statement when every
      CFG path from entry performs [P(s)] without a later [V(s)]).

    Everything {!Mhp} cannot prove ordered stays flagged, so the
    analysis over-approximates: every race the dynamic detector can
    observe in some schedule is reported (property-tested), alongside
    possible false positives — the paper's "one cannot tell if a
    parallel program is race-free unless one considers every possible
    event". *)

type access = {
  acc_sid : int;
  acc_fid : int;
  acc_var : Lang.Prog.var;
  acc_write : bool;
  acc_locks : int list;  (** sem ids must-held at the access *)
}

type report = {
  pr_var : Lang.Prog.var;
  pr_a1 : access;
  pr_a2 : access;
  pr_write_write : bool;
}

val shared_accesses : Lang.Prog.t -> access list
(** Every shared-variable access in the program with its lockset,
    computed with interprocedural summaries ({!compute_summaries}):
    acquiring a lock inside a helper protects the caller's accesses. *)

type summaries
(** Per-function semaphore effect summaries: which semaphores a call
    may transitively release, and which it must hold on every return.
    Built over {!Callgraph.sccs} callees-first; recursive functions
    promise nothing (must-acquire empty) but still report their may
    releases, so the lockset stays a sound must-analysis. *)

val compute_summaries : Lang.Prog.t -> summaries

val held_at : ?summaries:summaries -> Lang.Prog.t -> Cfg.t -> int -> int list
(** Semaphores must-held at the entry of a CFG node (exposed for
    tests). Without [summaries], any call conservatively clobbers every
    lock. *)

val concurrent_functions : Lang.Prog.t -> (int -> int -> bool)
(** Legacy function-granular view: may functions [f] and [g] (by fid)
    run in distinct processes that overlap in time? Kept for comparison
    and the benchmark ablation; {!analyze} now uses {!Mhp} instead. *)

val analyze : ?mhp:Mhp.t -> Lang.Prog.t -> report list
(** All potential races, deduplicated and deterministically ordered.
    [mhp] avoids recomputing an {!Mhp.t} the caller already has. *)

val pp_report : Lang.Prog.t -> Format.formatter -> report list -> unit
