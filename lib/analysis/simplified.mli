(** Simplified static program dependence graph and synchronization units
    (§5.5, Figure 5.3).

    The simplified static graph is the CFG restricted to {e interesting}
    nodes — ENTRY, EXIT, branching nodes ([if]/[while] predicates), and
    non-branching operation nodes (synchronization operations [P], [V],
    [send], [recv], [spawn], [join], and subroutine calls) — with flow
    edges carrying the contracted chains of ordinary statements between
    them.

    A {e synchronization unit} (Definition 5.1) is the set of edges
    reachable from a non-branching node without passing through another
    non-branching node. The shared variables that may be read inside a
    unit determine the additional prelog the object code must emit at
    the unit's beginning so that e-block replay stays faithful for
    parallel programs. *)

type node_kind =
  | Entry
  | Exit
  | Branch of Lang.Prog.stmt
  | Op of Lang.Prog.stmt
      (** non-branching: sync operation or subroutine call *)

type edge = {
  edge_id : int;
  src : int;  (** CFG node id *)
  label : Cfg.edge_label;
  chain : Lang.Prog.stmt list;  (** contracted ordinary statements *)
  dst : int;  (** CFG node id *)
}

(** Where a unit's additional prelog is emitted. *)
type start_point =
  | At_entry
  | After_stmt of int  (** after the sync/call statement with this sid *)

type unit_ = {
  su_id : int;
  su_start : start_point;
  su_edges : int list;  (** edge ids *)
  su_shared_reads : Varset.t;
      (** shared (global) variables that may be read inside the unit,
          including by branch predicates passed through and by the
          terminating operation nodes themselves *)
}

type t = {
  cfg : Cfg.t;
  kinds : node_kind option array;
      (** CFG node -> interesting kind, [None] for contracted nodes *)
  edges : edge array;
  out_edges : int list array;  (** CFG node -> outgoing edge ids *)
  units : unit_ array;
  unit_starting_at : (int, int) Hashtbl.t;
      (** sid of sync/call stmt -> unit id; ENTRY's unit is
          [entry_unit] *)
  entry_unit : int;
}

val build :
  ?keep:(read_sid:int -> Lang.Prog.var -> bool) -> Lang.Prog.t -> Cfg.t -> t
(** [keep ~read_sid v] filters the shared reads collected into
    [su_shared_reads]: return [false] to exclude the read of [v] at
    statement [read_sid] from prelog sizing (used with
    {!Mhp.prelog_required} to drop reads whose every writer is ordered
    or same-process). Defaults to keeping everything. The graph and
    unit structure are unaffected. *)

val shared_reads_after : t -> int -> Varset.t option
(** [shared_reads_after t sid]: shared variables needing a prelog right
    after the sync/call statement [sid] executes, if [sid] starts a
    unit. [None] when the unit reads no shared variables (no log entry
    needed, §5.5 last paragraph) or [sid] starts no unit. *)

val shared_reads_at_entry : t -> Varset.t
(** Shared variables read by the unit beginning at ENTRY. *)

val pp : Lang.Prog.t -> Format.formatter -> t -> unit
(** Figure-5.3-style dump: nodes, edges and units. *)
